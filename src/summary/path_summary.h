// Path summaries (strong DataGuides) and their enhanced form with
// integrity-constraint edge annotations (thesis §4.2).
//
// A summary node exists for every distinct rooted label path in the
// document; φ maps every document node to its summary node (Def. 4.2.1).
// Enhanced summaries label each parent→child edge with:
//   kOne  ('1'): every instance of the parent path has exactly one child
//                on the child path;
//   kPlus ('+'): every instance has at least one such child ("strong edge");
//   kStar ('*'): no constraint.
#ifndef ULOAD_SUMMARY_PATH_SUMMARY_H_
#define ULOAD_SUMMARY_PATH_SUMMARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xml/node.h"

namespace uload {

// Summary node ids are small dense integers; 0 is the synthetic document
// node, real paths are numbered from 1 in order of first appearance (this
// matches the numbering convention of Fig. 4.6).
using SummaryNodeId = int32_t;
inline constexpr SummaryNodeId kNoSummaryNode = -1;

enum class EdgeAnnotation : uint8_t { kStar = 0, kPlus, kOne };

struct SummaryNode {
  // Element tag, "@name" for attribute paths, "#text" for text paths.
  std::string label;
  NodeKind kind = NodeKind::kElement;
  SummaryNodeId parent = kNoSummaryNode;
  std::vector<SummaryNodeId> children;
  // Annotation of the edge from `parent` to this node.
  EdgeAnnotation annotation = EdgeAnnotation::kStar;
  uint32_t depth = 0;  // document node = 0, root element = 1
  // Number of document nodes mapped to this path (for statistics / cost).
  int64_t cardinality = 0;
  // Pre/post interval over the summary tree, for O(1) ancestor tests.
  uint32_t pre = 0;
  uint32_t post = 0;
};

class PathSummary {
 public:
  // Builds the summary of `doc` and annotates every document node's
  // `path_id` with its summary node (the φ function).
  static PathSummary Build(Document* doc);

  int64_t size() const { return static_cast<int64_t>(nodes_.size()); }
  const SummaryNode& node(SummaryNodeId id) const { return nodes_[id]; }

  SummaryNodeId document_node() const { return 0; }
  // Summary node of the document's root element.
  SummaryNodeId root() const;

  // All summary nodes with the given label (element tags are stored bare,
  // attribute paths under "@name", text under "#text").
  const std::vector<SummaryNodeId>& NodesWithLabel(
      const std::string& label) const;

  // All element-kind summary nodes.
  std::vector<SummaryNodeId> ElementNodes() const;

  bool IsAncestor(SummaryNodeId a, SummaryNodeId b) const;
  bool IsParent(SummaryNodeId a, SummaryNodeId b) const;

  // Descendants of `a` (excluding `a`), optionally filtered by label;
  // empty label matches any element/attribute node.
  std::vector<SummaryNodeId> Descendants(SummaryNodeId a,
                                         const std::string& label) const;
  // Children of `a` filtered the same way.
  std::vector<SummaryNodeId> ChildrenWithLabel(SummaryNodeId a,
                                               const std::string& label) const;

  // "/site/people/person"-style rooted path.
  std::string PathString(SummaryNodeId id) const;
  // Summary node reached by the rooted label path, or kNoSummaryNode.
  SummaryNodeId NodeByPath(const std::vector<std::string>& labels) const;

  // True if every edge on the path from `a` down to descendant `b` is
  // annotated kOne (used by the nesting-sequence relaxation of §4.4.5).
  bool AllOneToOneBetween(SummaryNodeId a, SummaryNodeId b) const;

  // True if every edge from `a` down to descendant `b` is strong (kPlus or
  // kOne): every document instance of path `a` has a descendant on path `b`.
  bool AllStrongBetween(SummaryNodeId a, SummaryNodeId b) const;

  // Statistics for Fig. 4.13.
  int64_t strong_edge_count() const { return strong_edges_; }
  int64_t one_to_one_edge_count() const { return one_edges_; }

  // Conformance check: S |= doc (Def. 4.2.2) — doc's summary equals *this
  // structurally and doc satisfies all edge annotations.
  bool Conforms(const Document& doc) const;

  // Text serialization (one node per line: id, parent, kind, annotation,
  // cardinality, label) — summaries are persisted catalog metadata; the
  // original DataGuide proposal keeps them alongside the store.
  std::string Serialize() const;
  static Result<PathSummary> Deserialize(std::string_view text);

 private:
  std::vector<SummaryNode> nodes_;
  std::unordered_map<std::string, std::vector<SummaryNodeId>> by_label_;
  std::vector<SummaryNodeId> empty_;
  int64_t strong_edges_ = 0;
  int64_t one_edges_ = 0;

  void ComputePrePost();
};

}  // namespace uload

#endif  // ULOAD_SUMMARY_PATH_SUMMARY_H_
