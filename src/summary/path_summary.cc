#include "summary/path_summary.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/string_util.h"

namespace uload {
namespace {

// Key of a summary child: (parent summary node, label). Node kinds never
// collide because attribute/text labels are mangled ("@a", "#text").
using ChildKey = std::pair<SummaryNodeId, std::string>;

std::string SummaryLabel(const Node& n) {
  if (n.is_attribute()) return "@" + n.label;
  return n.label;  // elements keep their tag, texts are already "#text"
}

}  // namespace

PathSummary PathSummary::Build(Document* doc) {
  PathSummary s;
  s.nodes_.push_back(SummaryNode{
      "#document", NodeKind::kDocument, kNoSummaryNode, {}, EdgeAnnotation::kOne,
      0, 1, 0, 0});
  doc->mutable_node(doc->document_node()).path_id = 0;

  std::map<ChildKey, SummaryNodeId> child_index;

  // First pass: create summary nodes and map document nodes (φ).
  for (NodeIndex i = 1; i < doc->size(); ++i) {
    Node& n = doc->mutable_node(i);
    SummaryNodeId parent_path = doc->node(n.parent).path_id;
    ChildKey key{parent_path, SummaryLabel(n)};
    auto it = child_index.find(key);
    SummaryNodeId id;
    if (it == child_index.end()) {
      id = static_cast<SummaryNodeId>(s.nodes_.size());
      SummaryNode sn;
      sn.label = key.second;
      sn.kind = n.kind;
      sn.parent = parent_path;
      sn.depth = s.nodes_[parent_path].depth + 1;
      s.nodes_.push_back(std::move(sn));
      s.nodes_[parent_path].children.push_back(id);
      child_index.emplace(key, id);
    } else {
      id = it->second;
    }
    n.path_id = id;
    s.nodes_[id].cardinality++;
  }

  // Second pass: edge annotations. For every summary edge (p -> c), compute
  // the minimum and maximum number of c-children over all instances of p.
  // covered[c] counts parent instances with >= 1 such child.
  std::vector<int64_t> covered(s.nodes_.size(), 0);
  std::vector<int64_t> min_count(s.nodes_.size(), INT64_MAX);
  std::vector<int64_t> max_count(s.nodes_.size(), 0);
  {
    // Per-parent-instance counts, reset per document node.
    std::map<SummaryNodeId, int64_t> local;
    for (NodeIndex i = 0; i < doc->size(); ++i) {
      local.clear();
      for (NodeIndex c : doc->Children(i)) {
        local[doc->node(c).path_id]++;
      }
      for (auto& [cid, cnt] : local) {
        covered[cid]++;
        min_count[cid] = std::min(min_count[cid], cnt);
        max_count[cid] = std::max(max_count[cid], cnt);
      }
    }
  }
  for (SummaryNodeId id = 1; id < static_cast<SummaryNodeId>(s.nodes_.size());
       ++id) {
    SummaryNode& sn = s.nodes_[id];
    int64_t parent_instances = s.nodes_[sn.parent].cardinality;
    bool always_present = covered[id] == parent_instances;
    if (always_present && max_count[id] == 1) {
      sn.annotation = EdgeAnnotation::kOne;
      s.one_edges_++;
      s.strong_edges_++;  // one-to-one edges are also strong (>= 1)
    } else if (always_present) {
      sn.annotation = EdgeAnnotation::kPlus;
      s.strong_edges_++;
    } else {
      sn.annotation = EdgeAnnotation::kStar;
    }
    s.by_label_[sn.label].push_back(id);
  }

  s.ComputePrePost();
  return s;
}

void PathSummary::ComputePrePost() {
  uint32_t pre = 0;
  uint32_t post = 0;
  // Iterative DFS from the document node.
  std::vector<std::pair<SummaryNodeId, bool>> stack;
  stack.emplace_back(0, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      nodes_[id].post = ++post;
      continue;
    }
    nodes_[id].pre = ++pre;
    stack.emplace_back(id, true);
    const auto& kids = nodes_[id].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, false);
    }
  }
}

SummaryNodeId PathSummary::root() const {
  for (SummaryNodeId c : nodes_[0].children) {
    if (nodes_[c].kind == NodeKind::kElement) return c;
  }
  return kNoSummaryNode;
}

const std::vector<SummaryNodeId>& PathSummary::NodesWithLabel(
    const std::string& label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? empty_ : it->second;
}

std::vector<SummaryNodeId> PathSummary::ElementNodes() const {
  std::vector<SummaryNodeId> out;
  for (SummaryNodeId id = 1; id < static_cast<SummaryNodeId>(nodes_.size());
       ++id) {
    if (nodes_[id].kind == NodeKind::kElement) out.push_back(id);
  }
  return out;
}

bool PathSummary::IsAncestor(SummaryNodeId a, SummaryNodeId b) const {
  return nodes_[a].pre < nodes_[b].pre && nodes_[b].post < nodes_[a].post;
}

bool PathSummary::IsParent(SummaryNodeId a, SummaryNodeId b) const {
  return nodes_[b].parent == a;
}

std::vector<SummaryNodeId> PathSummary::Descendants(
    SummaryNodeId a, const std::string& label) const {
  std::vector<SummaryNodeId> out;
  std::vector<SummaryNodeId> work(nodes_[a].children.rbegin(),
                                  nodes_[a].children.rend());
  while (!work.empty()) {
    SummaryNodeId id = work.back();
    work.pop_back();
    const SummaryNode& sn = nodes_[id];
    bool matches = label.empty()
                       ? sn.kind != NodeKind::kText
                       : sn.label == label;
    if (matches) out.push_back(id);
    for (auto it = sn.children.rbegin(); it != sn.children.rend(); ++it) {
      work.push_back(*it);
    }
  }
  return out;
}

std::vector<SummaryNodeId> PathSummary::ChildrenWithLabel(
    SummaryNodeId a, const std::string& label) const {
  std::vector<SummaryNodeId> out;
  for (SummaryNodeId c : nodes_[a].children) {
    const SummaryNode& sn = nodes_[c];
    bool matches = label.empty()
                       ? sn.kind != NodeKind::kText
                       : sn.label == label;
    if (matches) out.push_back(c);
  }
  return out;
}

std::string PathSummary::PathString(SummaryNodeId id) const {
  if (id <= 0) return "/";
  std::vector<const std::string*> labels;
  for (SummaryNodeId cur = id; cur > 0; cur = nodes_[cur].parent) {
    labels.push_back(&nodes_[cur].label);
  }
  std::string out;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    out += '/';
    out += **it;
  }
  return out;
}

SummaryNodeId PathSummary::NodeByPath(
    const std::vector<std::string>& labels) const {
  SummaryNodeId cur = 0;
  for (const std::string& label : labels) {
    SummaryNodeId next = kNoSummaryNode;
    for (SummaryNodeId c : nodes_[cur].children) {
      if (nodes_[c].label == label) {
        next = c;
        break;
      }
    }
    if (next == kNoSummaryNode) return kNoSummaryNode;
    cur = next;
  }
  return cur;
}

bool PathSummary::AllOneToOneBetween(SummaryNodeId a, SummaryNodeId b) const {
  if (a == b) return true;
  if (!IsAncestor(a, b)) return false;
  for (SummaryNodeId cur = b; cur != a; cur = nodes_[cur].parent) {
    if (nodes_[cur].annotation != EdgeAnnotation::kOne) return false;
  }
  return true;
}

bool PathSummary::AllStrongBetween(SummaryNodeId a, SummaryNodeId b) const {
  if (a == b) return true;
  if (!IsAncestor(a, b)) return false;
  for (SummaryNodeId cur = b; cur != a; cur = nodes_[cur].parent) {
    if (nodes_[cur].annotation == EdgeAnnotation::kStar) return false;
  }
  return true;
}

bool PathSummary::Conforms(const Document& doc) const {
  // Structural part: every document path must exist in this summary with the
  // same shape. (We rebuild and compare paths; adequate for test usage.)
  Document copy = doc;  // Build annotates path ids; work on a copy
  PathSummary rebuilt = Build(&copy);
  if (rebuilt.size() > size()) return false;
  for (SummaryNodeId id = 1; id < rebuilt.size(); ++id) {
    // Each rebuilt path must exist here.
    std::vector<std::string> labels;
    for (SummaryNodeId cur = id; cur > 0; cur = rebuilt.nodes_[cur].parent) {
      labels.push_back(rebuilt.nodes_[cur].label);
    }
    std::reverse(labels.begin(), labels.end());
    SummaryNodeId here = NodeByPath(labels);
    if (here == kNoSummaryNode) return false;
    // Annotation part: this summary's constraints must hold in doc, i.e. the
    // rebuilt (exact) annotation must be at least as strict as ours.
    auto strictness = [](EdgeAnnotation a) {
      switch (a) {
        case EdgeAnnotation::kStar:
          return 0;
        case EdgeAnnotation::kPlus:
          return 1;
        case EdgeAnnotation::kOne:
          return 2;
      }
      return 0;
    };
    if (strictness(rebuilt.nodes_[id].annotation) <
        strictness(nodes_[here].annotation)) {
      return false;
    }
  }
  return true;
}

std::string PathSummary::Serialize() const {
  std::string out = "summary " + std::to_string(nodes_.size()) + "\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const SummaryNode& n = nodes_[i];
    out += std::to_string(i) + " " + std::to_string(n.parent) + " " +
           std::to_string(static_cast<int>(n.kind)) + " " +
           std::to_string(static_cast<int>(n.annotation)) + " " +
           std::to_string(n.cardinality) + " " + n.label + "\n";
  }
  return out;
}

Result<PathSummary> PathSummary::Deserialize(std::string_view text) {
  PathSummary s;
  s.nodes_.clear();
  size_t pos = 0;
  auto next_line = [&]() -> std::string_view {
    if (pos >= text.size()) return {};
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  std::string_view header = next_line();
  if (header.rfind("summary ", 0) != 0) {
    return Status::ParseError("missing summary header");
  }
  long count = std::strtol(std::string(header.substr(8)).c_str(), nullptr, 10);
  if (count <= 0) return Status::ParseError("bad summary node count");
  for (long i = 0; i < count; ++i) {
    std::string line(next_line());
    if (line.empty()) return Status::ParseError("truncated summary");
    // id parent kind annot cardinality label (label may contain no spaces).
    long id, parent, kind, annot;
    long long card;
    char label[256] = {0};
    if (std::sscanf(line.c_str(), "%ld %ld %ld %ld %lld %255s", &id, &parent,
                    &kind, &annot, &card, label) < 5) {
      return Status::ParseError("bad summary line: " + line);
    }
    if (id != static_cast<long>(s.nodes_.size())) {
      return Status::ParseError("summary nodes out of order");
    }
    SummaryNode n;
    n.parent = static_cast<SummaryNodeId>(parent);
    n.kind = static_cast<NodeKind>(kind);
    n.annotation = static_cast<EdgeAnnotation>(annot);
    n.cardinality = card;
    n.label = label;
    n.depth = parent >= 0 ? s.nodes_[parent].depth + 1 : 0;
    s.nodes_.push_back(std::move(n));
    if (parent >= 0) {
      s.nodes_[parent].children.push_back(
          static_cast<SummaryNodeId>(id));
    }
  }
  for (SummaryNodeId id = 1; id < static_cast<SummaryNodeId>(s.nodes_.size());
       ++id) {
    const SummaryNode& n = s.nodes_[id];
    if (n.annotation != EdgeAnnotation::kStar) s.strong_edges_++;
    if (n.annotation == EdgeAnnotation::kOne) s.one_edges_++;
    s.by_label_[n.label].push_back(id);
  }
  s.ComputePrePost();
  return s;
}

}  // namespace uload
