#include "opt/cost.h"

#include <algorithm>
#include <cmath>

#include "containment/embedding.h"

namespace uload {
namespace {

constexpr double kPredicateSelectivity = 0.1;

// Cardinality of the subtree rooted at `node`, per instance of the parent's
// path `at`: how many subtree matches hang below one parent node.
double SubtreePerParent(const Xam& p, XamNodeId node, SummaryNodeId at,
                        const PathSummary& s,
                        const std::vector<std::vector<SummaryNodeId>>& ann) {
  const XamNode& n = p.node(node);
  double total = 0;
  for (SummaryNodeId target : ann[node]) {
    bool related = p.IncomingEdge(node).axis == Axis::kChild
                       ? s.IsParent(at, target)
                       : s.IsAncestor(at, target);
    if (at == s.document_node()) related = true;
    if (!related) continue;
    double per_parent =
        s.node(at).cardinality > 0
            ? static_cast<double>(s.node(target).cardinality) /
                  static_cast<double>(std::max<int64_t>(
                      1, s.node(at).cardinality))
            : static_cast<double>(s.node(target).cardinality);
    // Children multiply (joins); semijoin/optional children only filter or
    // extend, approximated by a factor of min(1, child cardinality).
    double self = per_parent;
    for (const XamEdge& e : n.edges) {
      double child = SubtreePerParent(p, e.child, target, s, ann);
      if (e.semi() || e.optional()) {
        self *= std::min(1.0, std::max(child, 0.0) + (e.optional() ? 1.0 : 0.0));
      } else if (e.nested()) {
        // Nesting groups matches: one tuple per parent (if any child).
        self *= std::min(1.0, std::max(child, 1e-9));
      } else {
        self *= std::max(child, 0.0);
      }
    }
    if (!n.val_formula.IsTrue()) self *= kPredicateSelectivity;
    total += self;
  }
  return total;
}

}  // namespace

double EstimateCardinality(const Xam& pattern, const PathSummary& summary) {
  std::vector<std::vector<SummaryNodeId>> ann =
      PathAnnotations(pattern, summary);
  double total = 1;
  for (const XamEdge& e : pattern.node(kXamRoot).edges) {
    double branch =
        SubtreePerParent(pattern, e.child, summary.document_node(), summary,
                         ann);
    if (e.nested()) branch = std::min(branch, 1.0);
    total *= std::max(branch, 0.0);
  }
  return total;
}

size_t ChooseWorkerCount(int64_t rows, size_t budget) {
  if (budget < 2 || rows < 2) return 1;
  size_t workers = std::min(budget, static_cast<size_t>(64));
  return std::min(workers, static_cast<size_t>(rows));
}

size_t ExchangeQueueCapacity(size_t workers, bool per_worker,
                             int64_t budget_bytes, int64_t batch_bytes) {
  if (workers == 0) workers = 1;
  // Ungoverned defaults: 2 in-flight batches per worker for the shared
  // arrival-order queue, 4 per SPSC merge queue (the merge consumes
  // unevenly, so each worker gets more slack).
  size_t cap = per_worker ? 4 : 2 * workers;
  if (budget_bytes <= 0) return cap;
  if (batch_bytes <= 0) batch_bytes = 1;
  // Let at most ~half the budget sit in queue slots across all workers.
  int64_t total_slots = (budget_bytes / 2) / batch_bytes;
  int64_t share = per_worker ? total_slots / static_cast<int64_t>(workers)
                             : total_slots;
  if (share < 1) share = 1;
  return std::min(cap, static_cast<size_t>(share));
}

double IterationOverhead(double card, const CostModel& model) {
  double tuples = std::max(card, 0.0);
  double batches =
      std::max(1.0, std::ceil(tuples / std::max(1.0, model.batch_size)));
  return tuples * model.per_tuple_overhead +
         batches * model.per_batch_overhead;
}

double EstimatePlanCost(
    const LogicalPlan& plan, const PathSummary& summary,
    const std::function<double(const std::string&)>& view_card,
    const CostModel& model) {
  // Returns (cost, cardinality) bottom-up.
  struct Est {
    double cost = 0;
    double card = 0;
  };
  std::function<Est(const LogicalPlan&)> rec =
      [&](const LogicalPlan& p) -> Est {
    // Every operator additionally pays the batch-iteration overhead of
    // handing its output downstream.
    Est est = [&]() -> Est {
    switch (p.op()) {
      case PlanOp::kScan:
      case PlanOp::kIndexScan: {
        double card = view_card(p.relation());
        double factor = p.op() == PlanOp::kIndexScan ? 0.05 : 1.0;
        return Est{card * model.scan_weight * factor, card * factor};
      }
      case PlanOp::kSelect: {
        Est in = rec(*p.left());
        return Est{in.cost + in.card * model.select_weight,
                   in.card * model.value_selectivity};
      }
      case PlanOp::kProject:
      case PlanOp::kPrefixNames: {
        Est in = rec(*p.left());
        return Est{in.cost + in.card * 0.1, in.card};
      }
      case PlanOp::kProduct: {
        Est l = rec(*p.left());
        Est r = rec(*p.right());
        double card = l.card * r.card;
        return Est{l.cost + r.cost + card * model.join_weight, card};
      }
      case PlanOp::kValueJoin:
      case PlanOp::kStructuralJoin: {
        Est l = rec(*p.left());
        Est r = rec(*p.right());
        // Structural joins tend to be selective: assume each left tuple
        // meets a constant number of right tuples bounded by fanout.
        double card = std::min(l.card * r.card,
                               std::max(l.card, r.card) * 4.0);
        if (p.variant() == JoinVariant::kSemi) card = l.card;
        double join_cost = (l.card + r.card) * model.join_weight;
        // Structural joins are the operators the physical compiler can fan
        // out over worker threads (descendant side partitioned, exchange on
        // top): the join work divides across workers, but each worker costs
        // a startup and every output tuple crosses the exchange.
        size_t workers =
            p.op() == PlanOp::kStructuralJoin
                ? ChooseWorkerCount(static_cast<int64_t>(r.card),
                                    model.thread_budget)
                : 1;
        if (workers > 1) {
          join_cost = join_cost / static_cast<double>(workers) +
                      static_cast<double>(workers) * model.worker_startup +
                      card * model.exchange_tuple_weight;
        }
        return Est{l.cost + r.cost + join_cost, card};
      }
      case PlanOp::kUnion: {
        Est l = rec(*p.left());
        Est r = rec(*p.right());
        return Est{l.cost + r.cost, l.card + r.card};
      }
      case PlanOp::kDifference: {
        Est l = rec(*p.left());
        Est r = rec(*p.right());
        return Est{l.cost + r.cost + (l.card + r.card), l.card};
      }
      case PlanOp::kNest: {
        Est in = rec(*p.left());
        return Est{in.cost + in.card, 1};
      }
      case PlanOp::kUnnest: {
        Est in = rec(*p.left());
        return Est{in.cost + in.card, in.card * 4.0};
      }
      case PlanOp::kXmlConstruct: {
        Est in = rec(*p.left());
        return Est{in.cost + in.card, 1};
      }
      case PlanOp::kDeriveParent: {
        Est in = rec(*p.left());
        return Est{in.cost + in.card * 0.2, in.card};
      }
      case PlanOp::kNavigate: {
        Est in = rec(*p.left());
        double card = in.card * 4.0;
        if (p.variant() == JoinVariant::kSemi ||
            p.variant() == JoinVariant::kNestJoin ||
            p.variant() == JoinVariant::kNestOuter) {
          card = in.card;
        }
        return Est{in.cost + in.card * model.navigate_weight, card};
      }
      case PlanOp::kRetype: {
        // Metadata-only re-tag: the stream passes through untouched.
        Est in = rec(*p.left());
        return Est{in.cost, in.card};
      }
      case PlanOp::kSortOp: {
        // Sort_φ enforcer; the physical compiler elides it over streams
        // that already carry the order, so charge the n log n only as a
        // pessimistic bound.
        Est in = rec(*p.left());
        double n = std::max(in.card, 1.0);
        return Est{in.cost + n * std::log2(n + 1.0), in.card};
      }
      case PlanOp::kUnit:
        return Est{0, 1};
    }
    return Est{};
    }();
    est.cost += IterationOverhead(est.card, model);
    return est;
  };
  (void)summary;
  return rec(plan).cost;
}

}  // namespace uload
