// Cardinality and cost estimation over path summaries (thesis §1.2.4 notes
// that tree patterns are the common abstraction for XML cardinality
// estimation, so "preliminary cardinality information can be attached ...
// even before the actual optimisation").
//
// The summary stores the exact number of document nodes per path; pattern
// cardinalities derive from the per-path counts under an independence
// assumption for branch predicates. Plan costs combine input cardinalities
// per operator with simple per-tuple weights — enough to rank alternative
// rewritings, which is all the thesis's optimizer needs.
#ifndef ULOAD_OPT_COST_H_
#define ULOAD_OPT_COST_H_

#include <functional>

#include "algebra/logical_plan.h"
#include "summary/path_summary.h"
#include "xam/xam.h"

namespace uload {

// Estimated number of result tuples of the pattern over any document
// conforming to the summary (exact for conjunctive patterns without value
// predicates whose nodes map to single paths; an estimate otherwise).
// Value predicates apply a default selectivity of 0.1.
double EstimateCardinality(const Xam& pattern, const PathSummary& summary);

struct CostModel {
  double scan_weight = 1.0;        // per scanned tuple
  double join_weight = 2.0;        // per output tuple of a join
  double navigate_weight = 8.0;    // navigation touches the document
  double select_weight = 0.5;
  double value_selectivity = 0.1;  // default predicate selectivity

  // Batch-at-a-time iteration (exec/physical.h): virtual dispatch, runtime
  // accounting, and clock reads are paid once per NextBatch() call, while a
  // small residual (branching, cursor advance) stays per tuple. Separating
  // the two lets the model predict how batch size trades off against the
  // tuple-at-a-time degenerate case (batch_size = 1).
  double per_tuple_overhead = 0.05;  // residual cost per tuple per operator
  double per_batch_overhead = 2.0;   // fixed cost per NextBatch() call
  double batch_size = 1024.0;        // configured tuples per batch

  // Intra-query parallelism (exec/exchange.h): the physical compiler may
  // fan a structural join out over worker threads, partitioning the
  // descendant scan and collecting through an exchange. Spawning a worker
  // costs `worker_startup`; every tuple crossing the exchange queue plus
  // the k-way merge pays `exchange_tuple_weight`. `thread_budget` mirrors
  // ExecContext::thread_budget() so plan costs can be ranked for the
  // parallelism the engine will actually use (1 = serial).
  double worker_startup = 50.0;
  double exchange_tuple_weight = 0.1;
  size_t thread_budget = 1;
};

// Iteration overhead one operator pays to push `card` tuples downstream:
// per-tuple residual plus the per-batch cost of ceil(card / batch_size)
// NextBatch() calls (at least one call even for an empty stream).
double IterationOverhead(double card, const CostModel& model);

// Number of Exchange workers worth spawning to partition an input of `rows`
// tuples under `budget` threads: min(budget, rows), capped at 64 so a huge
// budget cannot degenerate into thousands of near-empty partitions. Returns
// 1 (serial) when the budget or the input cannot sustain two workers. The
// physical compiler and the cost estimator share this policy.
size_t ChooseWorkerCount(int64_t rows, size_t budget);

// Capacity (in batches) of the bounded queue(s) between `workers` exchange
// producers and the collector. `per_worker` selects the SPSC queues of the
// k-way merge (capacity per worker) vs. the shared MPSC queue of the
// arrival-order collector (capacity total). A per-query memory budget
// (`budget_bytes` > 0) shrinks the queues so governed queries buffer less
// in flight: roughly half the budget is allowed to sit in queue slots,
// assuming `batch_bytes` per slot, clamped to [1, ungoverned capacity].
// The exchange collectors and the cost estimator share this policy.
size_t ExchangeQueueCapacity(size_t workers, bool per_worker,
                             int64_t budget_bytes, int64_t batch_bytes);

// Estimated cost of a plan whose leaf scans are the named patterns.
// `view_cards` supplies per-relation base cardinalities (e.g. from the
// catalog); missing names fall back to `default_card`.
double EstimatePlanCost(
    const LogicalPlan& plan, const PathSummary& summary,
    const std::function<double(const std::string&)>& view_card,
    const CostModel& model = {});

}  // namespace uload

#endif  // ULOAD_OPT_COST_H_
