// Cardinality and cost estimation over path summaries (thesis §1.2.4 notes
// that tree patterns are the common abstraction for XML cardinality
// estimation, so "preliminary cardinality information can be attached ...
// even before the actual optimisation").
//
// The summary stores the exact number of document nodes per path; pattern
// cardinalities derive from the per-path counts under an independence
// assumption for branch predicates. Plan costs combine input cardinalities
// per operator with simple per-tuple weights — enough to rank alternative
// rewritings, which is all the thesis's optimizer needs.
#ifndef ULOAD_OPT_COST_H_
#define ULOAD_OPT_COST_H_

#include <functional>

#include "algebra/logical_plan.h"
#include "summary/path_summary.h"
#include "xam/xam.h"

namespace uload {

// Estimated number of result tuples of the pattern over any document
// conforming to the summary (exact for conjunctive patterns without value
// predicates whose nodes map to single paths; an estimate otherwise).
// Value predicates apply a default selectivity of 0.1.
double EstimateCardinality(const Xam& pattern, const PathSummary& summary);

struct CostModel {
  double scan_weight = 1.0;        // per scanned tuple
  double join_weight = 2.0;        // per output tuple of a join
  double navigate_weight = 8.0;    // navigation touches the document
  double select_weight = 0.5;
  double value_selectivity = 0.1;  // default predicate selectivity
};

// Estimated cost of a plan whose leaf scans are the named patterns.
// `view_cards` supplies per-relation base cardinalities (e.g. from the
// catalog); missing names fall back to `default_card`.
double EstimatePlanCost(
    const LogicalPlan& plan, const PathSummary& summary,
    const std::function<double(const std::string&)>& view_card,
    const CostModel& model = {});

}  // namespace uload

#endif  // ULOAD_OPT_COST_H_
