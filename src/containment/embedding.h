// Embeddings of XAM patterns into path summaries (thesis §4.1, §4.3).
//
// An embedding maps every pattern node to a summary node such that labels
// match (wildcards match anything of the right kind), ⊤ maps to the summary
// document node, and / and // edges map to parent / ancestor pairs.
#ifndef ULOAD_CONTAINMENT_EMBEDDING_H_
#define ULOAD_CONTAINMENT_EMBEDDING_H_

#include <vector>

#include "summary/path_summary.h"
#include "xam/xam.h"

namespace uload {

// One summary node per XAM node id; index 0 (⊤) is always the summary
// document node.
using SummaryEmbedding = std::vector<SummaryNodeId>;

// Enumerates all embeddings of the *strict* skeleton of `p` (optional and
// nested edges treated as plain structural edges). Stops after `limit`
// embeddings.
std::vector<SummaryEmbedding> EmbedIntoSummary(const Xam& p,
                                               const PathSummary& summary,
                                               size_t limit = SIZE_MAX);

// Path annotation (Def. 4.3.1): for every pattern node, the set of summary
// nodes it maps to under some embedding. Computed by arc-consistency
// filtering followed by embedding enumeration confirmation when needed;
// complexity is bounded by summary size × pattern size per refinement pass.
std::vector<std::vector<SummaryNodeId>> PathAnnotations(
    const Xam& p, const PathSummary& summary);

// True if the pattern has at least one embedding (S-satisfiability).
bool IsSatisfiable(const Xam& p, const PathSummary& summary);

}  // namespace uload

#endif  // ULOAD_CONTAINMENT_EMBEDDING_H_
