// Pattern containment under path-summary constraints (thesis §4.4).
//
// p ⊆_S q is decided via Prop. 4.4.1: build mod_S(p) and check that each
// canonical tree's return tuple belongs to q(t_e). The check supports every
// pattern extension of Chapter 4:
//  * decorated patterns — value formulas are verified by the multi-variable
//    implication condition of §4.4.2 (complete for unions of decorated
//    patterns, not merely per-node implication);
//  * optional edges — optional-embedding semantics with maximal matching;
//  * attribute patterns — paired return nodes must store the same
//    attributes (Prop. 4.4.3);
//  * nested patterns — nesting-depth and nesting-sequence conditions with
//    the one-to-one-edge relaxation (Prop. 4.4.4).
#ifndef ULOAD_CONTAINMENT_CONTAINMENT_H_
#define ULOAD_CONTAINMENT_CONTAINMENT_H_

#include <vector>

#include "common/status.h"
#include "containment/canonical_model.h"
#include "summary/path_summary.h"
#include "xam/xam.h"

namespace uload {

struct ContainmentOptions {
  // Cap on |mod_S(p)| (worst case is |S|^|p|; real patterns stay tiny).
  size_t model_limit = 1u << 16;
  // Check Prop. 4.4.3's attribute-spec condition on paired return nodes.
  bool check_attributes = true;
};

struct ContainmentStats {
  size_t canonical_model_size = 0;
  size_t embeddings_checked = 0;
};

// p ⊆_S q.
Result<bool> IsContained(const Xam& p, const Xam& q,
                         const PathSummary& summary,
                         const ContainmentOptions& opts = {},
                         ContainmentStats* stats = nullptr);

// p ⊆_S q1 ∪ ... ∪ qm (Prop. 4.4.2 / §4.4.2).
Result<bool> IsContainedInUnion(const Xam& p, const std::vector<const Xam*>& qs,
                                const PathSummary& summary,
                                const ContainmentOptions& opts = {},
                                ContainmentStats* stats = nullptr);

// Two-way containment.
Result<bool> AreEquivalent(const Xam& p, const Xam& q,
                           const PathSummary& summary,
                           const ContainmentOptions& opts = {});

}  // namespace uload

#endif  // ULOAD_CONTAINMENT_CONTAINMENT_H_
