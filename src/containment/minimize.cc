#include "containment/minimize.h"

#include <set>

#include "xam/xam_printer.h"

namespace uload {
namespace {

// Rebuilds `p` without node `victim`; the victim's children reattach to its
// parent with // edges (the weaker constraint — equivalence is then tested).
Xam EraseNode(const Xam& p, XamNodeId victim) {
  Xam out;
  out.set_ordered(p.ordered());
  std::vector<XamNodeId> map(p.size(), -1);
  map[kXamRoot] = kXamRoot;
  // Pre-order copy.
  struct Work {
    XamNodeId node;
    XamNodeId new_parent;
    Axis axis;
    JoinVariant variant;
    bool via_erased;
  };
  std::vector<Work> stack;
  const XamNode& top = p.node(kXamRoot);
  for (auto it = top.edges.rbegin(); it != top.edges.rend(); ++it) {
    stack.push_back({it->child, kXamRoot, it->axis, it->variant, false});
  }
  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    const XamNode& n = p.node(w.node);
    if (w.node == victim) {
      // Children reconnect to w.new_parent via //; the erased node's edge
      // variant propagates (an optional child of an optional node stays
      // optional).
      for (auto it = n.edges.rbegin(); it != n.edges.rend(); ++it) {
        JoinVariant v = it->variant;
        if (w.variant == JoinVariant::kLeftOuter ||
            w.variant == JoinVariant::kNestOuter) {
          // Erasing an optional node keeps its children optional.
          v = it->nested() || v == JoinVariant::kNestJoin ||
                      v == JoinVariant::kNestOuter
                  ? JoinVariant::kNestOuter
                  : JoinVariant::kLeftOuter;
        }
        stack.push_back({it->child, w.new_parent, Axis::kDescendant, v, true});
      }
      continue;
    }
    XamNodeId nid = out.AddNode(w.new_parent, w.axis, n.tag_value, w.variant,
                                n.name);
    XamNode& copy = out.node(nid);
    copy.is_attribute = n.is_attribute;
    copy.stores_id = n.stores_id;
    copy.id_kind = n.id_kind;
    copy.id_required = n.id_required;
    copy.stores_tag = n.stores_tag;
    copy.tag_required = n.tag_required;
    copy.stores_val = n.stores_val;
    copy.val_required = n.val_required;
    copy.val_formula = n.val_formula;
    copy.stores_cont = n.stores_cont;
    map[w.node] = nid;
    for (auto it = n.edges.rbegin(); it != n.edges.rend(); ++it) {
      stack.push_back({it->child, nid, it->axis, it->variant, false});
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Xam>> MinimizeByContraction(const Xam& p,
                                               const PathSummary& summary) {
  std::vector<Xam> frontier{p};
  std::vector<Xam> minima;
  std::set<std::string> seen;
  seen.insert(PrintXam(p));
  while (!frontier.empty()) {
    Xam cur = std::move(frontier.back());
    frontier.pop_back();
    bool contracted = false;
    for (XamNodeId id = 1; id < cur.size(); ++id) {
      const XamNode& n = cur.node(id);
      if (n.returning() || n.has_required()) continue;
      if (!n.val_formula.IsTrue()) continue;  // value constraints stay
      Xam smaller = EraseNode(cur, id);
      ULOAD_ASSIGN_OR_RETURN(bool equiv, AreEquivalent(cur, smaller, summary));
      if (!equiv) continue;
      contracted = true;
      std::string key = PrintXam(smaller);
      if (seen.insert(std::move(key)).second) {
        frontier.push_back(std::move(smaller));
      }
    }
    if (!contracted) {
      bool dup = false;
      for (const Xam& m : minima) {
        if (m.StructurallyEquals(cur)) {
          dup = true;
          break;
        }
      }
      if (!dup) minima.push_back(std::move(cur));
    }
  }
  // Keep only globally smallest contraction minima? The thesis keeps all
  // contraction-minimal patterns; so do we.
  return minima;
}

Result<std::vector<Xam>> MinimizeGlobally(const Xam& p,
                                          const PathSummary& summary) {
  ULOAD_ASSIGN_OR_RETURN(std::vector<Xam> minima,
                         MinimizeByContraction(p, summary));
  int best = INT32_MAX;
  for (const Xam& m : minima) best = std::min(best, m.size());

  std::vector<XamNodeId> returns = p.ReturnNodes();
  if (returns.size() != 1) return minima;
  const XamNode& ret = p.node(returns[0]);

  // Candidate chains //l1//l2//...//ret built from labels on the summary
  // paths above the return node's annotations.
  std::vector<std::vector<SummaryNodeId>> annots = PathAnnotations(p, summary);
  const std::vector<SummaryNodeId>& ret_paths = annots[returns[0]];
  std::set<std::string> labels;
  for (SummaryNodeId s : ret_paths) {
    for (SummaryNodeId cur = summary.node(s).parent; cur > 0;
         cur = summary.node(cur).parent) {
      labels.insert(summary.node(cur).label);
    }
  }

  std::vector<Xam> winners;
  auto consider = [&](const std::vector<std::string>& chain) -> Status {
    Xam cand;
    cand.set_ordered(p.ordered());
    XamNodeId cur = kXamRoot;
    for (const std::string& l : chain) {
      cur = cand.AddNode(cur, Axis::kDescendant, l);
    }
    XamNodeId last = cand.AddNode(cur, Axis::kDescendant, ret.tag_value);
    XamNode& copy = cand.node(last);
    copy.is_attribute = ret.is_attribute;
    copy.stores_id = ret.stores_id;
    copy.id_kind = ret.id_kind;
    copy.stores_tag = ret.stores_tag;
    copy.stores_val = ret.stores_val;
    copy.stores_cont = ret.stores_cont;
    copy.val_formula = ret.val_formula;
    ULOAD_ASSIGN_OR_RETURN(bool equiv, AreEquivalent(p, cand, summary));
    if (equiv) {
      if (cand.size() < best) {
        best = cand.size();
        winners.clear();
      }
      if (cand.size() == best) winners.push_back(std::move(cand));
    }
    return Status::Ok();
  };

  // Chains of length 0 and 1 (sizes 2 and 3 including ⊤ and return node).
  if (best > 2) {
    ULOAD_RETURN_NOT_OK(consider({}));
  }
  if (best > 3) {
    for (const std::string& l : labels) {
      ULOAD_RETURN_NOT_OK(consider({l}));
    }
  }
  if (!winners.empty()) return winners;
  // No strictly smaller chain: return contraction minima of the best size.
  std::vector<Xam> out;
  for (Xam& m : minima) {
    if (m.size() == best) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace uload
