#include "containment/embedding.h"

#include <algorithm>

namespace uload {
namespace {

// Candidate summary nodes for a pattern node, given its own constraints.
bool NodeMatches(const XamNode& pn, const SummaryNode& sn) {
  if (pn.is_attribute) {
    if (sn.kind != NodeKind::kAttribute) return false;
    // Attribute pattern labels carry the '@' prefix, as do summary labels.
    return pn.tag_value.empty() || sn.label == pn.tag_value;
  }
  if (sn.kind != NodeKind::kElement) return false;
  return pn.is_wildcard() || sn.label == pn.tag_value;
}

class Enumerator {
 public:
  Enumerator(const Xam& p, const PathSummary& s, size_t limit)
      : p_(p), s_(s), limit_(limit) {
    order_ = p_.PreOrder();
    image_.assign(p_.size(), kNoSummaryNode);
  }

  std::vector<SummaryEmbedding> Run() {
    image_[kXamRoot] = s_.document_node();
    Recurse(1);
    return std::move(found_);
  }

 private:
  std::vector<SummaryNodeId> Candidates(XamNodeId node,
                                        SummaryNodeId base) const {
    const XamNode& pn = p_.node(node);
    const XamEdge& edge = p_.IncomingEdge(node);
    std::vector<SummaryNodeId> raw =
        edge.axis == Axis::kChild
            ? s_.ChildrenWithLabel(base, pn.tag_value)
            : s_.Descendants(base, pn.tag_value);
    std::vector<SummaryNodeId> out;
    for (SummaryNodeId c : raw) {
      if (NodeMatches(pn, s_.node(c))) out.push_back(c);
    }
    return out;
  }

  // Whether `node`'s subtree fully embeds with `node` at `at` (optional
  // children may map to ⊥).
  bool SubtreeEmbeds(XamNodeId node, SummaryNodeId at) const {
    for (const XamEdge& e : p_.node(node).edges) {
      if (e.optional()) continue;
      bool found = false;
      for (SummaryNodeId c : Candidates(e.child, at)) {
        if (SubtreeEmbeds(e.child, c)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  void Recurse(size_t idx) {
    if (found_.size() >= limit_) return;
    if (idx == order_.size()) {
      found_.push_back(image_);
      return;
    }
    XamNodeId node = order_[idx];
    const XamEdge& edge = p_.IncomingEdge(node);
    SummaryNodeId base = image_[p_.node(node).parent];
    if (base == kNoSummaryNode) {
      // Inside an unembeddable optional subtree: stays ⊥.
      image_[node] = kNoSummaryNode;
      Recurse(idx + 1);
      return;
    }
    std::vector<SummaryNodeId> candidates;
    for (SummaryNodeId c : Candidates(node, base)) {
      if (SubtreeEmbeds(node, c)) candidates.push_back(c);
    }
    for (SummaryNodeId c : candidates) {
      image_[node] = c;
      Recurse(idx + 1);
      if (found_.size() >= limit_) return;
    }
    image_[node] = kNoSummaryNode;
    if (candidates.empty() && edge.optional()) {
      // No summary embedding for this optional subtree: it maps to ⊥ and
      // the rest of the pattern may still embed.
      Recurse(idx + 1);
    }
  }

  const Xam& p_;
  const PathSummary& s_;
  size_t limit_;
  std::vector<XamNodeId> order_;
  SummaryEmbedding image_;
  std::vector<SummaryEmbedding> found_;
};

}  // namespace

std::vector<SummaryEmbedding> EmbedIntoSummary(const Xam& p,
                                               const PathSummary& summary,
                                               size_t limit) {
  Enumerator e(p, summary, limit);
  return e.Run();
}

std::vector<std::vector<SummaryNodeId>> PathAnnotations(
    const Xam& p, const PathSummary& summary) {
  // Initial candidate sets from node constraints.
  std::vector<std::vector<SummaryNodeId>> cand(p.size());
  cand[kXamRoot] = {summary.document_node()};
  for (XamNodeId id = 1; id < p.size(); ++id) {
    const XamNode& pn = p.node(id);
    if (!pn.tag_value.empty()) {
      for (SummaryNodeId s : summary.NodesWithLabel(pn.tag_value)) {
        if (NodeMatches(pn, summary.node(s))) cand[id].push_back(s);
      }
    } else if (pn.is_attribute) {
      for (SummaryNodeId s = 1; s < summary.size(); ++s) {
        if (summary.node(s).kind == NodeKind::kAttribute) {
          cand[id].push_back(s);
        }
      }
    } else {
      for (SummaryNodeId s : summary.ElementNodes()) cand[id].push_back(s);
    }
  }
  // Arc-consistency: iterate until fixpoint — a candidate for a node must
  // have a compatible candidate at each neighbor (parent and children).
  bool changed = true;
  std::vector<XamNodeId> order = p.PreOrder();
  while (changed) {
    changed = false;
    // Downward: child candidates must connect to some parent candidate.
    for (XamNodeId id : order) {
      if (id == kXamRoot) continue;
      const XamEdge& edge = p.IncomingEdge(id);
      XamNodeId parent = p.node(id).parent;
      std::vector<SummaryNodeId> kept;
      for (SummaryNodeId c : cand[id]) {
        bool ok = false;
        for (SummaryNodeId pc : cand[parent]) {
          if (edge.axis == Axis::kChild ? summary.IsParent(pc, c)
                                        : (pc == summary.document_node()
                                               ? true
                                               : summary.IsAncestor(pc, c))) {
            ok = true;
            break;
          }
        }
        if (!ok) changed = true;
        if (ok) kept.push_back(c);
      }
      cand[id] = std::move(kept);
    }
    // Upward: parent candidates must have a compatible child candidate for
    // every child edge.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      XamNodeId id = *it;
      for (const XamEdge& e : p.node(id).edges) {
        // An optional child with no compatible placement maps to ⊥; it must
        // not prune its parent's candidates.
        if (e.optional()) continue;
        std::vector<SummaryNodeId> kept;
        for (SummaryNodeId pc : cand[id]) {
          bool ok = false;
          for (SummaryNodeId c : cand[e.child]) {
            bool rel = e.axis == Axis::kChild
                           ? summary.IsParent(pc, c)
                           : (pc == summary.document_node()
                                  ? true
                                  : summary.IsAncestor(pc, c));
            if (rel) {
              ok = true;
              break;
            }
          }
          if (!ok) changed = true;
          if (ok) kept.push_back(pc);
        }
        cand[id] = std::move(kept);
      }
    }
  }
  return cand;
}

bool IsSatisfiable(const Xam& p, const PathSummary& summary) {
  return !EmbedIntoSummary(p, summary, 1).empty();
}

}  // namespace uload
