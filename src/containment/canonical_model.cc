#include "containment/canonical_model.h"

#include <algorithm>
#include <functional>
#include <set>

namespace uload {
namespace {

// Builds the canonical tree for one embedding, skipping pattern subtrees
// whose root is flagged erased.
CanonicalTree BuildTree(const Xam& p, const PathSummary& s,
                        const SummaryEmbedding& e,
                        const std::vector<bool>& erased) {
  CanonicalTree t;
  t.image.assign(p.size(), -1);
  CanonicalNode root;
  root.label = "#document";
  root.kind = NodeKind::kDocument;
  root.path = s.document_node();
  t.nodes.push_back(std::move(root));
  t.image[kXamRoot] = 0;

  // Pre-order so parents are materialized before children.
  for (XamNodeId id : p.PreOrder()) {
    if (id == kXamRoot) continue;
    if (erased[id]) continue;
    if (e[id] == kNoSummaryNode) continue;  // unembeddable optional subtree
    XamNodeId pparent = p.node(id).parent;
    if (t.image[pparent] < 0) continue;  // inside an erased subtree
    // Chain of summary nodes strictly between e(parent) and e(id).
    std::vector<SummaryNodeId> chain;
    for (SummaryNodeId cur = s.node(e[id]).parent; cur != e[pparent];
         cur = s.node(cur).parent) {
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    int attach = t.image[pparent];
    for (SummaryNodeId mid : chain) {
      CanonicalNode cn;
      cn.label = s.node(mid).label;
      cn.kind = s.node(mid).kind;
      cn.path = mid;
      cn.parent = attach;
      int idx = static_cast<int>(t.nodes.size());
      t.nodes.push_back(std::move(cn));
      t.nodes[attach].children.push_back(idx);
      attach = idx;
    }
    CanonicalNode cn;
    cn.label = s.node(e[id]).label;
    cn.kind = s.node(e[id]).kind;
    cn.path = e[id];
    cn.formula = p.node(id).val_formula;
    cn.parent = attach;
    int idx = static_cast<int>(t.nodes.size());
    t.nodes.push_back(std::move(cn));
    t.nodes[attach].children.push_back(idx);
    t.image[id] = idx;
  }

  for (XamNodeId r : p.ReturnNodes()) {
    t.return_paths.push_back(t.image[r] >= 0 ? t.nodes[t.image[r]].path
                                             : kNoSummaryNode);
    t.return_images.push_back(t.image[r]);
  }
  return t;
}

// Serialization key for whole-tree duplicate elimination: children sorted.
std::string TreeKey(const CanonicalTree& t, int node,
                    const std::vector<int>& return_mark) {
  const CanonicalNode& n = t.nodes[node];
  std::string key = std::to_string(n.path);
  if (!n.formula.IsTrue()) key += "{" + n.formula.ToString() + "}";
  if (return_mark[node] >= 0) {
    key += "#" + std::to_string(return_mark[node]);
  }
  std::vector<std::string> kids;
  for (int c : n.children) kids.push_back(TreeKey(t, c, return_mark));
  std::sort(kids.begin(), kids.end());
  key += "(";
  for (const std::string& k : kids) key += k + ",";
  key += ")";
  return key;
}

std::string WholeTreeKey(const Xam& p, const CanonicalTree& t) {
  // Mark which canonical node realizes which return position.
  std::vector<int> mark(t.nodes.size(), -1);
  std::vector<XamNodeId> rets = p.ReturnNodes();
  std::string erased_suffix;
  for (size_t i = 0; i < rets.size(); ++i) {
    int img = t.image[rets[i]];
    if (img >= 0) {
      mark[img] = static_cast<int>(i);
    } else {
      erased_suffix += "!" + std::to_string(i);
    }
  }
  return TreeKey(t, 0, mark) + erased_suffix;
}

// Checks that an optional-edge erasure set is *maximal-consistent*: a
// subtree may only be erased if its entry edge is optional, and (per the
// optional-embedding semantics, §4.1) erasure is a modeling choice — any
// subset yields a canonical tree, but the resulting tree must still admit
// p itself (p(t_{e,F}) ≠ ∅, §4.3.2). For tree patterns this holds exactly
// when erasures happen at optional edges only, which the enumeration
// guarantees by construction.
void EnumerateErasures(const Xam& p, const std::vector<XamNodeId>& opt_edges,
                       size_t idx, std::vector<bool>* erased,
                       const std::function<void()>& emit) {
  if (idx == opt_edges.size()) {
    emit();
    return;
  }
  EnumerateErasures(p, opt_edges, idx + 1, erased, emit);
  // Erase the subtree below this optional edge.
  XamNodeId child = opt_edges[idx];
  std::vector<XamNodeId> stack{child};
  std::vector<XamNodeId> marked;
  while (!stack.empty()) {
    XamNodeId n = stack.back();
    stack.pop_back();
    if (!(*erased)[n]) {
      (*erased)[n] = true;
      marked.push_back(n);
    }
    for (const XamEdge& e : p.node(n).edges) stack.push_back(e.child);
  }
  EnumerateErasures(p, opt_edges, idx + 1, erased, emit);
  for (XamNodeId n : marked) (*erased)[n] = false;
}

}  // namespace

std::string CanonicalTree::ToString(const PathSummary& summary) const {
  std::string out;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [node, indent] = stack.back();
    stack.pop_back();
    out.append(indent * 2, ' ');
    const CanonicalNode& n = nodes[node];
    out += n.label + " @" + summary.PathString(n.path);
    if (!n.formula.IsTrue()) out += " [" + n.formula.ToString() + "]";
    out += "\n";
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, indent + 1);
    }
  }
  return out;
}

bool StrongGuaranteed(const Xam& p, XamNodeId node, Axis axis,
                      SummaryNodeId at, const PathSummary& summary) {
  const XamNode& pn = p.node(node);
  if (!pn.val_formula.IsTrue()) return false;  // values are never guaranteed
  // Candidate summary nodes for this pattern node below `at`.
  std::vector<SummaryNodeId> cands =
      axis == Axis::kChild ? summary.ChildrenWithLabel(at, pn.tag_value)
                           : summary.Descendants(at, pn.tag_value);
  for (SummaryNodeId cand : cands) {
    const SummaryNode& sn = summary.node(cand);
    bool kind_ok = pn.is_attribute ? sn.kind == NodeKind::kAttribute
                                   : sn.kind == NodeKind::kElement;
    if (!kind_ok) continue;
    if (axis == Axis::kChild) {
      if (sn.annotation == EdgeAnnotation::kStar) continue;
    } else {
      if (!summary.AllStrongBetween(at, cand)) continue;
    }
    bool children_ok = true;
    for (const XamEdge& e : pn.edges) {
      if (e.optional()) continue;  // may legally be absent
      if (!StrongGuaranteed(p, e.child, e.axis, cand, summary)) {
        children_ok = false;
        break;
      }
    }
    if (children_ok) return true;
  }
  return false;
}

void AugmentWithStrongClosure(const PathSummary& summary, CanonicalTree* t) {
  // Work on a growing node vector; newly added virtual nodes are themselves
  // expanded (the summary is a tree, so this terminates).
  for (size_t i = 0; i < t->nodes.size(); ++i) {
    if (t->nodes[i].kind == NodeKind::kText) continue;
    SummaryNodeId at = t->nodes[i].path;
    for (SummaryNodeId c : summary.node(at).children) {
      if (summary.node(c).annotation == EdgeAnnotation::kStar) continue;
      if (summary.node(c).kind == NodeKind::kText) continue;
      // Skip when a real child on this path already exists: for '1' edges it
      // IS the guaranteed instance; for '+' edges no *additional* instance
      // is guaranteed.
      bool realized = false;
      for (int child : t->nodes[i].children) {
        if (t->nodes[child].path == c) {
          realized = true;
          break;
        }
      }
      if (realized) continue;
      CanonicalNode vn;
      vn.label = summary.node(c).label;
      vn.kind = summary.node(c).kind;
      vn.path = c;
      vn.parent = static_cast<int>(i);
      vn.virtual_node = true;
      int idx = static_cast<int>(t->nodes.size());
      t->nodes.push_back(std::move(vn));
      t->nodes[i].children.push_back(idx);
    }
  }
}

bool ForEachCanonicalTree(const Xam& p, const PathSummary& summary,
                          size_t limit,
                          const std::function<bool(CanonicalTree&)>& fn) {
  // Unsatisfiable node formulas make the whole pattern S-unsatisfiable.
  for (XamNodeId id = 0; id < p.size(); ++id) {
    if (p.node(id).val_formula.IsFalse()) return true;
  }
  // Optional edges: children reachable via o / no edges.
  std::vector<XamNodeId> opt_children;
  for (XamNodeId id = 1; id < p.size(); ++id) {
    if (p.IncomingEdge(id).optional()) opt_children.push_back(id);
  }

  std::set<std::string> seen;
  std::vector<bool> erased(p.size(), false);
  bool keep_going = true;
  // Embeddings are enumerated lazily through a streaming variant: we reuse
  // EmbedIntoSummary in chunks is not possible without re-running, so the
  // enumerator below walks embeddings one at a time.
  class Walker {
   public:
    Walker(const Xam& p, const PathSummary& s) : p_(p), s_(s) {
      order_ = p_.PreOrder();
      image_.assign(p_.size(), kNoSummaryNode);
      image_[kXamRoot] = s_.document_node();
    }
    // Calls cb per embedding; cb returns false to abort. Returns false if
    // aborted.
    bool Run(const std::function<bool(const SummaryEmbedding&)>& cb) {
      return Recurse(1, cb);
    }

   private:
    // Summary candidates for `node` below `base`, filtered by kind/label.
    std::vector<SummaryNodeId> Candidates(XamNodeId node,
                                          SummaryNodeId base) const {
      const XamNode& pn = p_.node(node);
      const XamEdge& edge = p_.IncomingEdge(node);
      std::vector<SummaryNodeId> raw =
          edge.axis == Axis::kChild
              ? s_.ChildrenWithLabel(base, pn.tag_value)
              : s_.Descendants(base, pn.tag_value);
      std::vector<SummaryNodeId> out;
      for (SummaryNodeId c : raw) {
        const SummaryNode& sn = s_.node(c);
        bool kind_ok = pn.is_attribute
                           ? sn.kind == NodeKind::kAttribute &&
                                 (pn.tag_value.empty() ||
                                  sn.label == pn.tag_value)
                           : sn.kind == NodeKind::kElement;
        if (kind_ok) out.push_back(c);
      }
      return out;
    }

    // Whether the subtree rooted at `node` admits a full embedding when
    // `node` maps to `at` (optional children may be ⊥, required ones may
    // not).
    bool SubtreeEmbeds(XamNodeId node, SummaryNodeId at) const {
      for (const XamEdge& e : p_.node(node).edges) {
        if (e.optional()) continue;
        bool found = false;
        for (SummaryNodeId c : Candidates(e.child, at)) {
          if (SubtreeEmbeds(e.child, c)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }

    bool Recurse(size_t idx,
                 const std::function<bool(const SummaryEmbedding&)>& cb) {
      if (idx == order_.size()) return cb(image_);
      XamNodeId node = order_[idx];
      const XamEdge& edge = p_.IncomingEdge(node);
      SummaryNodeId base = image_[p_.node(node).parent];
      if (base == kNoSummaryNode) {
        // Inside an unembeddable optional subtree: the whole subtree is ⊥.
        image_[node] = kNoSummaryNode;
        return Recurse(idx + 1, cb);
      }
      std::vector<SummaryNodeId> candidates;
      for (SummaryNodeId c : Candidates(node, base)) {
        if (SubtreeEmbeds(node, c)) candidates.push_back(c);
      }
      for (SummaryNodeId c : candidates) {
        image_[node] = c;
        if (!Recurse(idx + 1, cb)) return false;
      }
      image_[node] = kNoSummaryNode;
      if (candidates.empty() && edge.optional()) {
        // An optional subtree with no summary embedding maps to ⊥ — the
        // documents conforming to S simply never realize it. Skipping the
        // embedding entirely (the pre-fix behavior) silently shrank the
        // canonical model and made containment accept too much.
        return Recurse(idx + 1, cb);
      }
      return true;
    }

    const Xam& p_;
    const PathSummary& s_;
    std::vector<XamNodeId> order_;
    SummaryEmbedding image_;
  };

  Walker walker(p, summary);
  walker.Run([&](const SummaryEmbedding& e) {
    EnumerateErasures(p, opt_children, 0, &erased, [&]() {
      if (!keep_going || seen.size() >= limit) return;
      // Enhanced-summary pruning: erasing an optional branch is impossible
      // when strong edges guarantee a match below the (kept) anchor.
      for (XamNodeId c : opt_children) {
        XamNodeId parent = p.node(c).parent;
        if (e[parent] == kNoSummaryNode) continue;  // parent itself is ⊥
        if (erased[c] && !erased[parent] &&
            StrongGuaranteed(p, c, p.IncomingEdge(c).axis, e[parent],
                             summary)) {
          return;
        }
      }
      CanonicalTree t = BuildTree(p, summary, e, erased);
      std::string key = WholeTreeKey(p, t);
      if (seen.insert(std::move(key)).second) {
        if (!fn(t)) keep_going = false;
      }
    });
    return keep_going && seen.size() < limit;
  });
  return keep_going;
}

std::vector<CanonicalTree> CanonicalModel(const Xam& p,
                                          const PathSummary& summary,
                                          size_t limit) {
  std::vector<CanonicalTree> out;
  ForEachCanonicalTree(p, summary, limit, [&](CanonicalTree& t) {
    out.push_back(std::move(t));
    return true;
  });
  return out;
}

}  // namespace uload
