// Pattern minimization under summary constraints (thesis §4.5).
//
// S-contraction erases one non-return node at a time (its children
// reconnect to its parent through // edges) while preserving S-equivalence;
// MinimizeByContraction drives this to a fixpoint. MinimizeGlobally
// additionally searches for strictly smaller S-equivalent chain patterns
// (the t'' of Fig. 4.12), which S-contraction alone cannot reach because
// the summary "brings in more nodes than are available in the pattern".
#ifndef ULOAD_CONTAINMENT_MINIMIZE_H_
#define ULOAD_CONTAINMENT_MINIMIZE_H_

#include <vector>

#include "common/status.h"
#include "containment/containment.h"

namespace uload {

// All patterns minimal under S-contraction derivable from `p` (several may
// exist). Result patterns are S-equivalent to p.
Result<std::vector<Xam>> MinimizeByContraction(const Xam& p,
                                               const PathSummary& summary);

// The smallest S-equivalent patterns found: the S-contraction minima, plus
// (for single-return-node patterns) chain patterns built from labels on the
// return node's path annotation. Returns all patterns of the smallest size
// discovered.
Result<std::vector<Xam>> MinimizeGlobally(const Xam& p,
                                          const PathSummary& summary);

}  // namespace uload

#endif  // ULOAD_CONTAINMENT_MINIMIZE_H_
