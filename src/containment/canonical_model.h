// S-canonical models of patterns (thesis §4.3).
//
// A canonical tree t_e is a small labeled tree derived from an embedding
// e : p → S: one node per pattern node (labeled with its image's label, and
// carrying the pattern node's value formula), plus the summary chain nodes
// connecting consecutive images (decorated with T). Canonical trees of
// optional patterns are additionally derived by erasing subtrees below
// subsets of optional edges (§4.3.2).
#ifndef ULOAD_CONTAINMENT_CANONICAL_MODEL_H_
#define ULOAD_CONTAINMENT_CANONICAL_MODEL_H_

#include <functional>
#include <string>
#include <vector>

#include "containment/embedding.h"
#include "summary/path_summary.h"
#include "xam/formula.h"
#include "xam/xam.h"

namespace uload {

struct CanonicalNode {
  std::string label;
  NodeKind kind = NodeKind::kElement;
  SummaryNodeId path = kNoSummaryNode;  // summary node this one sits on
  ValueFormula formula = ValueFormula::True();
  int parent = -1;
  std::vector<int> children;
  // Strong-closure node: guaranteed to exist (by +/1 edges) in every
  // conforming document containing the tree, but not part of the embedding
  // image — container patterns may match it, return nodes may not.
  bool virtual_node = false;
};

struct CanonicalTree {
  // nodes[0] is the root (the document node).
  std::vector<CanonicalNode> nodes;
  // Image of each pattern node (indexed by XamNodeId); -1 when the node was
  // erased by an optional-edge subset.
  std::vector<int> image;
  // For each pattern return node (pre-order): the *summary path* of its
  // image, or kNoSummaryNode (⊥) when erased. This is the return tuple of
  // Prop. 4.3.1 / 4.4.1.
  std::vector<SummaryNodeId> return_paths;
  // The canonical node realizing each return position (-1 = ⊥). Containment
  // requires the container's return nodes to map to these exact nodes
  // (Prop. 4.4.1 condition 2: "same return nodes").
  std::vector<int> return_images;

  std::string ToString(const PathSummary& summary) const;
};

// mod_S(p). `limit` bounds the number of trees (a safety valve for
// adversarial patterns; the thesis observes real models stay small).
// Erasure combinations that the enhanced summary's strong edges make
// impossible (an optional branch that is guaranteed to match) are pruned.
std::vector<CanonicalTree> CanonicalModel(const Xam& p,
                                          const PathSummary& summary,
                                          size_t limit = 1u << 16);

// Lazy enumeration of mod_S(p): `fn` receives each (deduplicated) canonical
// tree and returns false to stop early. This is how the containment check
// achieves the thesis's fast-negative behaviour — the model is never fully
// materialized when an early tree already refutes containment. Returns
// false if `fn` stopped the enumeration.
bool ForEachCanonicalTree(const Xam& p, const PathSummary& summary,
                          size_t limit,
                          const std::function<bool(CanonicalTree&)>& fn);

// Appends the strong closure to `t`: virtual children for every strong
// (+/1) summary edge not already realized by a real child. Every conforming
// document containing t also contains the closure.
void AugmentWithStrongClosure(const PathSummary& summary, CanonicalTree* t);

// True if a match for the pattern subtree rooted at `node` is guaranteed to
// exist below every document node on summary path `at` (its entry edge
// taken with axis `axis`): the node's formula is trivial and some summary
// node matching it is reachable through strong edges, recursively for all
// non-optional children.
bool StrongGuaranteed(const Xam& p, XamNodeId node, Axis axis,
                      SummaryNodeId at, const PathSummary& summary);

}  // namespace uload

#endif  // ULOAD_CONTAINMENT_CANONICAL_MODEL_H_
