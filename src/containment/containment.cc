#include "containment/containment.h"

#include <algorithm>
#include <map>

namespace uload {
namespace {

// Conjunction of per-variable formulas; variables are canonical-tree node
// indices (§4.4.2's v_1..v_|S| specialized to the tree at hand).
using VarConjunction = std::map<int, ValueFormula>;

bool ConjAddAtom(VarConjunction* conj, int var, const ValueFormula& f) {
  auto it = conj->find(var);
  if (it == conj->end()) {
    conj->emplace(var, f);
    return !f.IsFalse();
  }
  it->second = it->second.And(f);
  return !it->second.IsFalse();
}

// A ⇒ B_1 ∨ ... ∨ B_m over per-variable interval formulas: search for a
// counter-model by picking, for every disjunct, one violated atom. `budget`
// bounds the search; exhaustion reports "does not imply" (sound: the test
// may fail where a longer search could succeed, never the other way).
bool ImpliesDisjunction(const std::vector<VarConjunction>& bs, size_t idx,
                        VarConjunction* current, int* budget) {
  if (--*budget < 0) return false;
  if (idx == bs.size()) {
    // All disjuncts violated under `current`, which is satisfiable:
    // counter-model found, so the implication does NOT hold.
    return false;
  }
  const VarConjunction& b = bs[idx];
  for (const auto& [var, f] : b) {
    VarConjunction next = *current;
    if (!ConjAddAtom(&next, var, f.Not())) continue;  // atom can't be violated
    if (!ImpliesDisjunction(bs, idx + 1, &next, budget)) return false;
  }
  // Every way of violating disjunct idx is unsatisfiable: implication holds
  // down this branch.
  return true;
}

bool Implies(const VarConjunction& a, const std::vector<VarConjunction>& bs) {
  VarConjunction current = a;
  for (const auto& [var, f] : current) {
    (void)var;
    if (f.IsFalse()) return true;  // vacuous premise
  }
  int budget = 100000;
  return ImpliesDisjunction(bs, 0, &current, &budget);
}

// Label/kind compatibility between a pattern node and a canonical node.
bool NodeMatches(const XamNode& pn, const CanonicalNode& cn) {
  if (pn.is_attribute) {
    return cn.kind == NodeKind::kAttribute &&
           (pn.tag_value.empty() || cn.label == pn.tag_value);
  }
  if (cn.kind != NodeKind::kElement) return false;
  return pn.is_wildcard() || cn.label == pn.tag_value;
}

// Enumerates embeddings of pattern q into canonical tree t with
// optional-edge semantics. An embedding assigns a canonical node (or -1 for
// ⊥) to every q node.
class TreeMatcher {
 public:
  TreeMatcher(const Xam& q, const CanonicalTree& t, const PathSummary& s)
      : q_(q), t_(t), s_(s) {
    // Precompute descendants lists of every canonical node.
    desc_.resize(t_.nodes.size());
    anc_chain_.resize(t_.nodes.size());
    for (size_t i = 0; i < t_.nodes.size(); ++i) {
      for (int cur = t_.nodes[i].parent; cur >= 0;
           cur = t_.nodes[cur].parent) {
        desc_[cur].push_back(static_cast<int>(i));
        anc_chain_[i].push_back(cur);
      }
    }
  }

  // Value guards: extra per-variable constraints an embedding choice
  // depends on — taking the ⊥ branch of an optional node whose formula can
  // fail requires the formula to fail on every structural candidate.
  using Guards = std::vector<std::pair<int, ValueFormula>>;

  // Calls `emit(image, guards)` with each embedding (image indexed by
  // XamNodeId, -1 = ⊥); emit returns false to stop the enumeration (e.g.
  // once the tree is already verified). Returns the number emitted.
  template <typename Fn>
  size_t Enumerate(const Fn& emit) {
    std::vector<int> image(q_.size(), -1);
    image[kXamRoot] = 0;
    size_t count = 0;
    Guards guards;
    stop_ = false;
    Recurse(q_.PreOrder(), 1, &image, &guards, emit, &count);
    return count;
  }

 private:
  // Whether the subtree of q rooted at `node` admits at least one embedding
  // below canonical node `at` (for the maximality of optional matches).
  bool SubtreeEmbeddable(XamNodeId node, int candidate) {
    const XamNode& pn = q_.node(node);
    if (!NodeMatches(pn, t_.nodes[candidate])) return false;
    // Value compatibility: the tree node's formula must be satisfiable with
    // the pattern's (structure check; precise value reasoning happens in the
    // §4.4.2 implication condition).
    if (t_.nodes[candidate].formula.And(pn.val_formula).IsFalse()) {
      return false;
    }
    for (const XamEdge& e : pn.edges) {
      if (e.optional()) continue;  // may map to ⊥
      bool found = false;
      for (int next : CandidatesBelow(candidate, e.axis)) {
        if (SubtreeEmbeddable(e.child, next)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  const std::vector<int>& CandidatesBelow(int at, Axis axis) const {
    return axis == Axis::kDescendant ? desc_[at] : t_.nodes[at].children;
  }

  // True if no node in the subtree of `node` except possibly `node` itself
  // carries a non-trivial formula.
  bool SubtreeFormulaFreeBelow(XamNodeId node) const {
    for (const XamEdge& e : q_.node(node).edges) {
      if (!q_.node(e.child).val_formula.IsTrue()) return false;
      if (!SubtreeFormulaFreeBelow(e.child)) return false;
    }
    return true;
  }

  template <typename Fn>
  void Recurse(const std::vector<XamNodeId>& order, size_t idx,
               std::vector<int>* image, Guards* guards, const Fn& emit,
               size_t* count) {
    if (idx == order.size()) {
      if (!emit(*image, *guards)) stop_ = true;
      ++*count;
      return;
    }
    if (stop_) return;
    XamNodeId node = order[idx];
    const XamNode& pn = q_.node(node);
    const XamEdge& edge = q_.IncomingEdge(node);
    int base = (*image)[pn.parent];
    if (base < 0) {
      // Parent is ⊥: the whole subtree is ⊥ (only legal under optionals,
      // which is guaranteed because a ⊥ parent was itself optional).
      (*image)[node] = -1;
      Recurse(order, idx + 1, image, guards, emit, count);
      return;
    }
    // Collect viable candidates.
    std::vector<int> cands;
    for (int cand : CandidatesBelow(base, edge.axis)) {
      if (!NodeMatches(pn, t_.nodes[cand])) continue;
      if (t_.nodes[cand].formula.And(pn.val_formula).IsFalse()) continue;
      if (SubtreeEmbeddable(node, cand)) cands.push_back(cand);
    }
    if (cands.empty()) {
      if (!edge.optional()) return;  // dead end
      (*image)[node] = -1;
      Recurse(order, idx + 1, image, guards, emit, count);
      return;
    }
    // Maximality: when matches exist, an optional node must take one.
    for (int cand : cands) {
      if (stop_) return;
      (*image)[node] = cand;
      Recurse(order, idx + 1, image, guards, emit, count);
    }
    (*image)[node] = -1;
    // Value-aware ⊥ branch (§4.1 optional embeddings over decorated trees):
    // the match may still fail on *values*. When the node's own formula is
    // the only one in its subtree, ⊥ is legal exactly when every structural
    // candidate violates the formula — emit the choice guarded by ¬formula
    // on each candidate.
    if (edge.optional() && !pn.val_formula.IsTrue() &&
        SubtreeFormulaFreeBelow(node)) {
      ValueFormula negated = pn.val_formula.Not();
      size_t added = 0;
      bool possible = true;
      for (int cand : cands) {
        if (t_.nodes[cand].formula.And(negated).IsFalse()) {
          // This candidate always satisfies the formula: ⊥ impossible.
          possible = false;
          break;
        }
        guards->emplace_back(cand, negated);
        ++added;
      }
      if (possible) {
        Recurse(order, idx + 1, image, guards, emit, count);
      }
      guards->resize(guards->size() - added);
    }
  }

  const Xam& q_;
  const CanonicalTree& t_;
  [[maybe_unused]] const PathSummary& s_;
  std::vector<std::vector<int>> desc_;
  std::vector<std::vector<int>> anc_chain_;
  bool stop_ = false;
};

// Attribute-spec pairing (Prop. 4.4.3 condition 1).
bool AttributesCompatible(const Xam& p, const Xam& q) {
  std::vector<XamNodeId> pr = p.ReturnNodes();
  std::vector<XamNodeId> qr = q.ReturnNodes();
  if (pr.size() != qr.size()) return false;
  for (size_t i = 0; i < pr.size(); ++i) {
    const XamNode& a = p.node(pr[i]);
    const XamNode& b = q.node(qr[i]);
    if (a.stores_id != b.stores_id || a.stores_tag != b.stores_tag ||
        a.stores_val != b.stores_val || a.stores_cont != b.stores_cont) {
      return false;
    }
  }
  return true;
}

// Nesting depths per return node (Prop. 4.4.4 condition 2a).
bool NestingDepthsCompatible(const Xam& p, const Xam& q) {
  std::vector<XamNodeId> pr = p.ReturnNodes();
  std::vector<XamNodeId> qr = q.ReturnNodes();
  if (pr.size() != qr.size()) return false;
  for (size_t i = 0; i < pr.size(); ++i) {
    if (p.NestingDepth(pr[i]) != q.NestingDepth(qr[i])) return false;
  }
  return true;
}

// Nesting sequence of `node` under an image assignment: summary paths of the
// nested-edge ancestors, outermost first. `paths` maps pattern node -> path.
std::vector<SummaryNodeId> NestingSequence(
    const Xam& x, XamNodeId node, const std::vector<SummaryNodeId>& paths) {
  std::vector<SummaryNodeId> seq;
  for (XamNodeId cur = node; cur != kXamRoot; cur = x.node(cur).parent) {
    if (x.IncomingEdge(cur).nested()) seq.push_back(paths[cur]);
  }
  std::reverse(seq.begin(), seq.end());
  return seq;
}

bool SequencesCompatible(const std::vector<SummaryNodeId>& a,
                         const std::vector<SummaryNodeId>& b,
                         const PathSummary& s) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (a[i] == kNoSummaryNode || b[i] == kNoSummaryNode) return false;
    // One-to-one relaxation (§4.4.5): nesting under s1 equals nesting under
    // its child s2 when every edge between them is 1-annotated.
    if (!s.AllOneToOneBetween(a[i], b[i]) &&
        !s.AllOneToOneBetween(b[i], a[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<bool> IsContainedInUnion(const Xam& p, const std::vector<const Xam*>& qs,
                                const PathSummary& summary,
                                const ContainmentOptions& opts,
                                ContainmentStats* stats) {
  // Candidate q's must agree on arity/attributes (Prop. 4.4.3) and nesting
  // depths (Prop. 4.4.4 2a).
  std::vector<const Xam*> usable;
  for (const Xam* q : qs) {
    if (opts.check_attributes && !AttributesCompatible(p, *q)) continue;
    if (!opts.check_attributes &&
        p.ReturnNodes().size() != q->ReturnNodes().size()) {
      continue;
    }
    if (!NestingDepthsCompatible(p, *q)) continue;
    usable.push_back(q);
  }
  if (usable.empty()) {
    // p ⊆ ∅-union only when p itself is unsatisfiable.
    return !IsSatisfiable(p, summary);
  }

  const bool nested_check = p.HasNestedEdges();
  std::vector<XamNodeId> p_returns = p.ReturnNodes();

  // Lazy enumeration: stop at the first canonical tree that refutes
  // containment (this is why negative tests run faster, §4.6).
  bool contained = true;
  size_t model_size = 0;
  ForEachCanonicalTree(p, summary, opts.model_limit, [&](CanonicalTree& t) {
    ++model_size;
    // Strong closure: nodes that every conforming document is guaranteed to
    // contain alongside t (enhanced summary, §4.2.2). Container patterns may
    // match them; return positions may not (they are not p's nodes).
    AugmentWithStrongClosure(summary, &t);
    // Φ_te: conjunction of the tree's node formulas.
    VarConjunction phi_te;
    for (size_t i = 0; i < t.nodes.size(); ++i) {
      if (!t.nodes[i].formula.IsTrue()) {
        ConjAddAtom(&phi_te, static_cast<int>(i), t.nodes[i].formula);
      }
    }
    // p's nesting sequences under this tree (paths of p-node images).
    std::vector<SummaryNodeId> p_paths(p.size(), kNoSummaryNode);
    for (XamNodeId id = 0; id < p.size(); ++id) {
      if (t.image[id] >= 0) p_paths[id] = t.nodes[t.image[id]].path;
    }

    std::vector<VarConjunction> phis;
    bool any = false;
    bool tree_ok = false;  // an embedding free of value constraints
                           // verifies the tree outright
    for (const Xam* q : usable) {
      if (tree_ok) break;
      std::vector<XamNodeId> q_returns = q->ReturnNodes();
      TreeMatcher matcher(*q, t, summary);
      matcher.Enumerate([&](const std::vector<int>& image,
                            const TreeMatcher::Guards& guards) -> bool {
        // Return-tuple condition: the container's return nodes must land on
        // exactly p's return images ("same return nodes", Prop. 4.4.1(2)).
        for (size_t i = 0; i < q_returns.size(); ++i) {
          if (image[q_returns[i]] != t.return_images[i]) return true;
        }
        // Nesting sequences (Prop. 4.4.4 2b).
        if (nested_check || q->HasNestedEdges()) {
          std::vector<SummaryNodeId> q_paths(q->size(), kNoSummaryNode);
          for (XamNodeId id = 0; id < q->size(); ++id) {
            if (image[id] >= 0) q_paths[id] = t.nodes[image[id]].path;
          }
          for (size_t i = 0; i < q_returns.size(); ++i) {
            if (!SequencesCompatible(
                    NestingSequence(p, p_returns[i], p_paths),
                    NestingSequence(*q, q_returns[i], q_paths), summary)) {
              return true;
            }
          }
        }
        // Φ_m: the value constraints q imposes under this embedding, plus
        // the guards justifying value-dependent ⊥ choices.
        VarConjunction phi_m;
        bool sat = true;
        for (XamNodeId id = 1; id < q->size(); ++id) {
          if (image[id] < 0) continue;
          const ValueFormula& f = q->node(id).val_formula;
          if (!f.IsTrue() && !ConjAddAtom(&phi_m, image[id], f)) {
            sat = false;
            break;
          }
        }
        for (const auto& [var, f] : guards) {
          if (!ConjAddAtom(&phi_m, var, f)) {
            sat = false;
            break;
          }
        }
        if (!sat) return true;
        any = true;
        if (phi_m.empty()) {
          // No value constraints: this embedding alone verifies the tree.
          tree_ok = true;
          return false;  // stop matching this tree
        }
        phis.push_back(std::move(phi_m));
        // Incremental coverage: stop as soon as the accumulated disjunction
        // already covers the tree's constraints (§4.4.2's condition). The
        // size cap keeps adversarial cases bounded; truncation can only
        // make the test fail, never wrongly succeed (sound).
        if (Implies(phi_te, phis)) {
          tree_ok = true;
          return false;
        }
        return phis.size() < 64;
      });
      if (stats != nullptr) stats->embeddings_checked += phis.size();
    }
    if (!tree_ok) {
      contained = false;
      return false;  // stop the enumeration
    }
    (void)any;
    return true;
  });
  if (stats != nullptr) stats->canonical_model_size = model_size;
  return contained;
}

Result<bool> IsContained(const Xam& p, const Xam& q,
                         const PathSummary& summary,
                         const ContainmentOptions& opts,
                         ContainmentStats* stats) {
  return IsContainedInUnion(p, {&q}, summary, opts, stats);
}

Result<bool> AreEquivalent(const Xam& p, const Xam& q,
                           const PathSummary& summary,
                           const ContainmentOptions& opts) {
  ULOAD_ASSIGN_OR_RETURN(bool a, IsContained(p, q, summary, opts));
  if (!a) return false;
  return IsContained(q, p, summary, opts);
}

}  // namespace uload
