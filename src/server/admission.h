// Admission control for the query service (DESIGN.md §10).
//
// Every query crossing the wire passes through AdmissionController::Admit()
// before it reaches Engine::Run. The controller bounds the engine's
// concurrent load three ways, each shedding with kResourceExhausted rather
// than queueing without limit:
//
//   1. slots   — at most `max_concurrent` queries execute at once; up to
//                `max_queued` more wait (FIFO by wakeup), anything beyond
//                is shed immediately ("admission queue full").
//   2. time    — a queued query waits at most `queue_timeout_ms` before it
//                is shed ("admission queue timeout"); a client's patience
//                is not an unbounded buffer.
//   3. memory  — when the engine-level MemoryTracker is within
//                `memory_headroom` of its cap, new queries are shed up
//                front ("engine memory high water") instead of being
//                admitted to fail mid-flight and waste the work.
//
// The governor wiring happens at admit time: a granted Ticket carries a
// fresh QueryControl whose deadline is `query_timeout_ms` from the *admit*
// instant (queue wait already consumed part of the client's patience, not
// part of the query's budget) plus the per-query memory budget to install
// on the run. The Ticket is RAII — destruction releases the slot and wakes
// one waiter — and its release is what BeginDrain()/WaitIdle() observe, so
// a server holds tickets until the response bytes are written and drain
// covers response delivery, not just execution.
//
// Thread safety: every public member is safe from any thread.
#ifndef ULOAD_SERVER_ADMISSION_H_
#define ULOAD_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "exec/memory_tracker.h"
#include "exec/query_control.h"

namespace uload {

struct AdmissionConfig {
  // Executing-query slots; at least 1.
  int max_concurrent = 4;
  // Queries allowed to wait for a slot; 0 = shed the moment slots are full.
  int max_queued = 16;
  // Longest a query may wait in the queue before it is shed; 0 = no wait
  // (equivalent to max_queued = 0 for slow servers).
  int64_t queue_timeout_ms = 5000;
  // Per-query wall-clock budget assigned at admit; 0 = unlimited.
  int64_t query_timeout_ms = 0;
  // Per-query memory budget installed on the run; 0 = unlimited.
  int64_t query_memory_limit_bytes = 0;
  // Shed new queries once engine_memory->used() reaches this fraction of
  // its limit (only when the engine tracker has a limit). 1.0 disables
  // early shedding — queries then fail individually on Charge().
  double memory_headroom = 0.9;
};

class AdmissionController {
 public:
  // A granted admission. Move-only; releases its slot on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      control_ = std::move(other.control_);
      memory_limit_bytes_ = other.memory_limit_bytes_;
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    // The query's governor handle: deadline preset to the admit-time
    // budget, Cancel()able by a drain.
    const std::shared_ptr<QueryControl>& control() const { return control_; }
    int64_t memory_limit_bytes() const { return memory_limit_bytes_; }

    void Release();

   private:
    friend class AdmissionController;
    AdmissionController* controller_ = nullptr;
    std::shared_ptr<QueryControl> control_;
    int64_t memory_limit_bytes_ = 0;
  };

  struct Stats {
    int64_t admitted = 0;
    int64_t shed_queue_full = 0;
    int64_t shed_queue_timeout = 0;
    int64_t shed_memory = 0;
    int64_t shed_draining = 0;
    int executing = 0;
    int queued = 0;
  };

  // `engine_memory` may be null (no memory-based shedding); it must outlive
  // the controller.
  AdmissionController(AdmissionConfig config,
                      const MemoryTracker* engine_memory);

  // Blocks until a slot is granted or the query is shed. Every shed path
  // returns kResourceExhausted with a distinguishing message.
  Result<Ticket> Admit();

  // Sheds every queued waiter and every future Admit() with
  // "server draining". Irreversible.
  void BeginDrain();

  // Blocks until no query is executing or queued, up to `timeout_ms`
  // (0 = indefinitely). Returns true when idle.
  bool WaitIdle(int64_t timeout_ms);

  Stats stats() const;

 private:
  void ReleaseSlot();

  AdmissionConfig config_;
  const MemoryTracker* engine_memory_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool draining_ = false;
  Stats stats_;
};

}  // namespace uload

#endif  // ULOAD_SERVER_ADMISSION_H_
