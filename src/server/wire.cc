#include "server/wire.h"

#include <cstring>

namespace uload {

WireCode StatusToWireCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kParseError:
      return WireCode::kParseError;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kNotImplemented:
      return WireCode::kNotImplemented;
    case StatusCode::kTypeError:
      return WireCode::kTypeError;
    case StatusCode::kInternal:
      return WireCode::kInternal;
    case StatusCode::kCancelled:
      return WireCode::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case StatusCode::kResourceExhausted:
      return WireCode::kResourceExhausted;
  }
  return WireCode::kInternal;
}

StatusCode WireCodeToStatusCode(uint32_t code) {
  switch (static_cast<WireCode>(code)) {
    case WireCode::kOk:
      return StatusCode::kOk;
    case WireCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireCode::kParseError:
      return StatusCode::kParseError;
    case WireCode::kNotFound:
      return StatusCode::kNotFound;
    case WireCode::kNotImplemented:
      return StatusCode::kNotImplemented;
    case WireCode::kTypeError:
      return StatusCode::kTypeError;
    case WireCode::kInternal:
      return StatusCode::kInternal;
    case WireCode::kCancelled:
      return StatusCode::kCancelled;
    case WireCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case WireCode::kResourceExhausted:
      return StatusCode::kResourceExhausted;
  }
  return StatusCode::kInternal;
}

Status WireError(uint32_t code, std::string message) {
  switch (WireCodeToStatusCode(code)) {
    case StatusCode::kOk:
      // An error frame claiming OK is itself a protocol defect; surface it.
      return Status::Internal("error frame carried OK wire code: " +
                              std::move(message));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(message));
    case StatusCode::kTypeError:
      return Status::TypeError(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
  }
  return Status::Internal(std::move(message));
}

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, sizeof(bytes));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

bool ReadU32(std::string_view buf, size_t offset, uint32_t* out) {
  if (offset + 4 > buf.size()) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(buf.data()) + offset;
  *out = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

bool ReadU64(std::string_view buf, size_t offset, uint64_t* out) {
  uint32_t lo = 0, hi = 0;
  if (!ReadU32(buf, offset, &lo) || !ReadU32(buf, offset + 4, &hi)) {
    return false;
  }
  *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(4 + 1 + payload.size());
  AppendU32(&out, static_cast<uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(StatusToWireCode(status.code())));
  out.append(status.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload) {
  uint32_t code = 0;
  if (!ReadU32(payload, 0, &code)) {
    return Status::Internal("malformed error frame (" +
                            std::to_string(payload.size()) +
                            " bytes, need >= 4)");
  }
  return WireError(code, std::string(payload.substr(4)));
}

std::string EncodeHelloOkPayload(uint64_t session_id,
                                 std::string_view banner) {
  std::string out;
  AppendU64(&out, session_id);
  out.append(banner.data(), banner.size());
  return out;
}

bool DecodeHelloOkPayload(std::string_view payload, uint64_t* session_id,
                          std::string* banner) {
  if (!ReadU64(payload, 0, session_id)) return false;
  banner->assign(payload.substr(8));
  return true;
}

Status FrameReader::Feed(const char* data, size_t n) {
  if (!error_.ok()) return error_;
  buffer_.append(data, n);
  for (;;) {
    uint32_t declared = 0;
    if (!ReadU32(buffer_, 0, &declared)) return Status::Ok();  // need prefix
    // Validate the declaration before buffering anything toward it: the
    // frame body must hold at least the type byte and fit under the cap.
    if (declared == 0) {
      error_ = Status::InvalidArgument("frame declares zero-length body");
      return error_;
    }
    if (static_cast<size_t>(declared) > max_frame_bytes_) {
      error_ = Status::InvalidArgument(
          "frame declares " + std::to_string(declared) +
          " bytes, cap is " + std::to_string(max_frame_bytes_));
      return error_;
    }
    if (buffer_.size() < 4u + declared) return Status::Ok();  // body pending
    Frame f;
    f.type = static_cast<FrameType>(
        static_cast<unsigned char>(buffer_[4]));
    f.payload = buffer_.substr(5, declared - 1);
    buffer_.erase(0, 4u + declared);
    ready_.push_back(std::move(f));
  }
}

std::optional<Frame> FrameReader::Next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace uload
