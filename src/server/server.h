// QueryServer: the framed-TCP front-end over one Engine (DESIGN.md §10).
//
// A minimal thread-per-connection server exposing Engine::Run / Explain
// over the wire protocol in server/wire.h. Every connection is one
// *session*: a server-assigned id, a small set of session-scoped execution
// options (thread_budget, timeout_ms, memory_limit_bytes, batch_size — set
// via kSet frames), and per-session counters. Queries pass through the
// AdmissionController before they reach the engine; the granted ticket's
// QueryControl (deadline assigned at admit) and memory budget are installed
// on the run via Engine::QueryOptions, and the ticket is held until the
// response frame has been written — so drain covers response delivery.
//
// Shutdown contract (graceful drain):
//   1. the listener closes — no new connections;
//   2. the admission controller drains — queued queries shed with
//      kResourceExhausted("server draining"), new ones likewise;
//   3. Stop() waits up to drain_timeout_ms for executing queries to finish
//      and flush their responses;
//   4. stragglers are cancelled through Engine::Cancel() (they answer with
//      a clean kCancelled error frame);
//   5. every connection is shut down and all threads joined.
// Stop() is idempotent; the destructor calls it.
#ifndef ULOAD_SERVER_SERVER_H_
#define ULOAD_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "server/admission.h"
#include "server/wire.h"

namespace uload {

struct ServerConfig {
  // 0 = pick an ephemeral port; see QueryServer::port() after Start().
  int port = 0;
  // Listen address; the server is loopback-only by default.
  std::string host = "127.0.0.1";
  size_t max_frame_bytes = FrameReader::kDefaultMaxFrameBytes;
  // How long Stop() waits for in-flight queries to finish (and flush their
  // responses) before cancelling them through the engine.
  int64_t drain_timeout_ms = 10'000;
  AdmissionConfig admission;
  // Testing hook: invoked on the session thread right after admission is
  // granted (slot held) and before the engine runs — lets a test hold a
  // slot open deterministically. Null = disabled.
  std::function<void(uint64_t session_id)> on_query_start;
};

class QueryServer {
 public:
  struct Stats {
    int64_t sessions_opened = 0;
    int64_t queries_ok = 0;
    int64_t queries_error = 0;  // engine/admission errors answered on the wire
    int64_t frames_rejected = 0;  // protocol violations (connection torn down)
    AdmissionController::Stats admission;
  };

  // `engine` must outlive the server. InstallModel/SetOptions on the engine
  // are not legal while the server is running (queries may be in flight).
  QueryServer(Engine* engine, ServerConfig config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, and starts the accept loop. Fails with kInternal when
  // the address cannot be bound.
  Status Start();

  // The bound port (after a successful Start()).
  int port() const { return port_; }

  // Graceful drain per the shutdown contract above. Idempotent.
  void Stop();

  Stats stats() const;

 private:
  struct Session {
    uint64_t id = 0;
    int fd = -1;
    // Session-scoped execution options (0 = engine default), set via kSet.
    int64_t timeout_ms = 0;
    int64_t memory_limit_bytes = 0;
    size_t thread_budget = 0;
    size_t batch_size = 0;
    int64_t queries = 0;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t session_id, int fd);
  // Handles one request frame; returns false when the connection must end
  // (goodbye or protocol violation).
  bool HandleFrame(Session* session, const Frame& frame);
  // One admitted query end to end: admission, engine, response. The
  // admission ticket is released after the response write.
  void RunQuery(Session* session, const Frame& frame);
  Status HandleSet(Session* session, const std::string& payload);
  bool SendFrame(int fd, FrameType type, std::string_view payload);
  bool SendError(int fd, const Status& status);

  Engine* engine_;
  ServerConfig config_;
  AdmissionController admission_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;  // guards conn_fds_, threads_, stats_
  std::vector<int> conn_fds_;
  std::list<std::thread> threads_;
  std::atomic<uint64_t> next_session_id_{1};
  int64_t sessions_opened_ = 0;
  std::atomic<int64_t> queries_ok_{0};
  std::atomic<int64_t> queries_error_{0};
  std::atomic<int64_t> frames_rejected_{0};
};

}  // namespace uload

#endif  // ULOAD_SERVER_SERVER_H_
