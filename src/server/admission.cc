#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace uload {

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot();
  controller_ = nullptr;
  control_.reset();
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         const MemoryTracker* engine_memory)
    : config_(config), engine_memory_(engine_memory) {
  config_.max_concurrent = std::max(1, config_.max_concurrent);
  config_.max_queued = std::max(0, config_.max_queued);
}

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    ++stats_.shed_draining;
    return Status::ResourceExhausted("server draining");
  }
  // Memory high water: shedding up front beats admitting a query that the
  // engine tracker will abort mid-flight anyway.
  if (engine_memory_ != nullptr && engine_memory_->limit() > 0 &&
      config_.memory_headroom < 1.0) {
    int64_t water = static_cast<int64_t>(
        config_.memory_headroom * static_cast<double>(engine_memory_->limit()));
    int64_t used = engine_memory_->used();
    if (used >= water) {
      ++stats_.shed_memory;
      return Status::ResourceExhausted(
          "engine memory high water: " + std::to_string(used) + " of " +
          std::to_string(engine_memory_->limit()) + " bytes in use");
    }
  }
  if (stats_.executing >= config_.max_concurrent) {
    if (stats_.queued >= config_.max_queued || config_.queue_timeout_ms <= 0) {
      ++stats_.shed_queue_full;
      return Status::ResourceExhausted(
          "admission queue full: " + std::to_string(stats_.executing) +
          " executing, " + std::to_string(stats_.queued) + " queued");
    }
    ++stats_.queued;
    bool got_slot = cv_.wait_for(
        lock, std::chrono::milliseconds(config_.queue_timeout_ms), [this] {
          return draining_ || stats_.executing < config_.max_concurrent;
        });
    --stats_.queued;
    // A WaitIdle() caller may be watching the queued count too.
    cv_.notify_all();
    if (draining_) {
      ++stats_.shed_draining;
      return Status::ResourceExhausted("server draining");
    }
    if (!got_slot) {
      ++stats_.shed_queue_timeout;
      return Status::ResourceExhausted(
          "admission queue timeout after " +
          std::to_string(config_.queue_timeout_ms) + " ms");
    }
  }
  ++stats_.executing;
  ++stats_.admitted;
  Ticket t;
  t.controller_ = this;
  t.control_ = std::make_shared<QueryControl>();
  if (config_.query_timeout_ms > 0) {
    // Deadline from the admit instant: queue wait spent the client's
    // patience, not the query's budget.
    t.control_->set_deadline_ns(QueryControl::NowNs() +
                                config_.query_timeout_ms * 1'000'000);
  }
  t.memory_limit_bytes_ = config_.query_memory_limit_bytes;
  return t;
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.executing;
  }
  cv_.notify_all();
}

void AdmissionController::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

bool AdmissionController::WaitIdle(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto idle = [this] { return stats_.executing == 0 && stats_.queued == 0; };
  if (timeout_ms <= 0) {
    cv_.wait(lock, idle);
    return true;
  }
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), idle);
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uload
