// uload_server: standalone query-service daemon over one engine.
//
//   uload_server [--port N] [--xmark SCALE | --dblp RECORDS | --load FILE]
//                [--backend pointer|columnar] [--model tag|path]
//                [--threads N] [--max-concurrent N] [--max-queued N]
//                [--query-timeout-ms N] [--memory-limit-mb N]
//
// Builds (or mmap-loads) a document, installs a storage model, and serves
// Run/Explain over the framed-TCP protocol until SIGINT/SIGTERM, then
// drains gracefully. See README "Query service" for a quickstart.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "server/server.h"
#include "storage/storage_models.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--xmark SCALE | --dblp RECORDS | "
               "--load FILE] [--backend pointer|columnar] [--model tag|path] "
               "[--threads N] [--max-concurrent N] [--max-queued N] "
               "[--query-timeout-ms N] [--memory-limit-mb N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using uload::Engine;
  int port = 7877;
  double xmark_scale = 0.1;
  int dblp_records = 0;
  std::string load_path;
  bool columnar = false;
  std::string model = "tag";
  size_t threads = 1;
  uload::ServerConfig config;
  int64_t memory_limit_mb = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--xmark") {
      xmark_scale = std::atof(next("--xmark"));
    } else if (arg == "--dblp") {
      dblp_records = std::atoi(next("--dblp"));
    } else if (arg == "--load") {
      load_path = next("--load");
    } else if (arg == "--backend") {
      columnar = std::strcmp(next("--backend"), "columnar") == 0;
    } else if (arg == "--model") {
      model = next("--model");
    } else if (arg == "--threads") {
      threads = static_cast<size_t>(std::atoi(next("--threads")));
    } else if (arg == "--max-concurrent") {
      config.admission.max_concurrent = std::atoi(next("--max-concurrent"));
    } else if (arg == "--max-queued") {
      config.admission.max_queued = std::atoi(next("--max-queued"));
    } else if (arg == "--query-timeout-ms") {
      config.admission.query_timeout_ms =
          std::atoll(next("--query-timeout-ms"));
    } else if (arg == "--memory-limit-mb") {
      memory_limit_mb = std::atoll(next("--memory-limit-mb"));
    } else {
      return Usage(argv[0]);
    }
  }

  Engine::Options options;
  options.backend = columnar ? Engine::Options::Backend::kColumnar
                             : Engine::Options::Backend::kPointer;
  options.thread_budget = threads;
  options.engine_memory_limit_bytes = memory_limit_mb * 1024 * 1024;
  if (options.engine_memory_limit_bytes > 0) {
    // Per-query budget: an even split with slack, so one query cannot
    // starve the rest of the fleet.
    config.admission.query_memory_limit_bytes =
        2 * options.engine_memory_limit_bytes /
        std::max(1, config.admission.max_concurrent);
  }

  std::unique_ptr<Engine> engine;
  if (!load_path.empty()) {
    auto loaded = Engine::Load(load_path, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", load_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    engine = std::move(*loaded);
    std::printf("loaded columnar image %s\n", load_path.c_str());
  } else if (dblp_records > 0) {
    engine = std::make_unique<Engine>(
        uload::GenerateDblp({dblp_records, 7}), options);
    std::printf("generated DBLP, %d records\n", dblp_records);
  } else {
    engine = std::make_unique<Engine>(
        uload::GenerateXMark(uload::XMarkScale(xmark_scale)), options);
    std::printf("generated XMark at scale %.2f\n", xmark_scale);
  }

  auto install = model == "path"
                     ? engine->InstallModel(
                           uload::PathPartitionedModel(engine->summary()))
                     : engine->InstallModel(
                           uload::TagPartitionedModel(engine->summary()));
  if (!install.ok()) {
    std::fprintf(stderr, "install model: %s\n",
                 install.ToString().c_str());
    return 1;
  }

  config.port = port;
  uload::QueryServer server(engine.get(), config);
  auto st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "serving on %s:%d (%s backend, %s-partitioned model, threads=%zu, "
      "max_concurrent=%d)\n",
      config.host.c_str(), server.port(), columnar ? "columnar" : "pointer",
      model.c_str(), threads, config.admission.max_concurrent);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100'000'000};
    nanosleep(&ts, nullptr);
  }
  std::printf("draining...\n");
  server.Stop();
  auto s = server.stats();
  std::printf("served %lld ok, %lld errors over %lld sessions\n",
              static_cast<long long>(s.queries_ok),
              static_cast<long long>(s.queries_error),
              static_cast<long long>(s.sessions_opened));
  return 0;
}
