// Wire protocol of the query service front-end (DESIGN.md §10).
//
// Transport: length-prefixed frames over a byte stream (TCP). One frame is
//
//   [u32 len, little-endian][u8 type][payload: len-1 bytes]
//
// `len` counts everything after the length field (type byte + payload), so
// a frame body is never empty: len == 0 is a protocol violation, as is
// len > the receiver's frame-size cap. The codec below is pure — it never
// touches a socket — so the robustness corpus (tests/server_frame_test.cc)
// can drive it byte by byte: FrameReader is an incremental parser that
// accepts arbitrary chunkings of the stream and turns any malformed prefix
// into a clean Status instead of a crash or an unbounded allocation.
//
// Error mapping: a query's Status travels as an explicit numeric wire code
// (WireCode) + message. The numbering is part of the protocol and must stay
// stable even if StatusCode is ever reordered, hence the explicit table in
// StatusToWireCode/WireCodeToStatus. Unknown codes degrade to kInternal on
// the receiving side — never to a crash.
#ifndef ULOAD_SERVER_WIRE_H_
#define ULOAD_SERVER_WIRE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace uload {

// Frame types. Requests are < 0x40, responses >= 0x40; values are wire
// contract, append-only.
enum class FrameType : uint8_t {
  // Requests (client → server).
  kHello = 0x01,    // payload: client-chosen name (may be empty)
  kRun = 0x02,      // payload: XQuery text → kResult(serialized XML)
  kExplain = 0x03,  // payload: XQuery text → kResult(logical + physical)
  kSet = 0x04,      // payload: "key=value" session option → empty kResult
  kGoodbye = 0x05,  // payload empty → kGoodbyeOk, then the server closes

  // Responses (server → client).
  kHelloOk = 0x41,    // payload: [u64 session_id][server banner]
  kResult = 0x42,     // payload: the answer bytes
  kError = 0x43,      // payload: [u32 wire code][message]
  kGoodbyeOk = 0x44,  // payload empty
};

// Stable numeric error codes on the wire. Mirrors StatusCode today, but by
// explicit table — the enum values here can never change.
enum class WireCode : uint32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotFound = 3,
  kNotImplemented = 4,
  kTypeError = 5,
  kInternal = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
};

WireCode StatusToWireCode(StatusCode code);
StatusCode WireCodeToStatusCode(uint32_t code);  // unknown → kInternal
// Rebuilds a Status from a decoded (code, message) pair.
Status WireError(uint32_t code, std::string message);

// Little-endian scalar helpers shared by the payload encodings.
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
// Read at `offset`; false when the buffer is too short.
bool ReadU32(std::string_view buf, size_t offset, uint32_t* out);
bool ReadU64(std::string_view buf, size_t offset, uint64_t* out);

struct Frame {
  FrameType type;
  std::string payload;
};

// One encoded frame, ready to write to the stream.
std::string EncodeFrame(FrameType type, std::string_view payload);

// Payload encodings that have structure beyond raw text.
std::string EncodeErrorPayload(const Status& status);
// Decodes a kError payload. Tolerates any byte salad: too-short payloads
// come back as kInternal with a diagnostic message.
Status DecodeErrorPayload(std::string_view payload);
std::string EncodeHelloOkPayload(uint64_t session_id,
                                 std::string_view banner);
bool DecodeHelloOkPayload(std::string_view payload, uint64_t* session_id,
                          std::string* banner);

// Incremental frame parser. Feed() appends raw stream bytes in arbitrary
// chunks; completed frames queue up for Next(). The declared length of a
// frame is validated the moment the 4-byte prefix is complete — a zero or
// oversized declaration fails fast with kInvalidArgument *before* any
// payload is buffered, so a hostile peer cannot make the reader allocate
// its declared size. After an error the reader is poisoned: every further
// Feed() returns the same error (the stream has lost frame alignment and
// must be torn down).
class FrameReader {
 public:
  static constexpr size_t kDefaultMaxFrameBytes = 16u << 20;  // 16 MiB

  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  Status Feed(const char* data, size_t n);
  Status Feed(std::string_view data) { return Feed(data.data(), data.size()); }

  // Next completed frame, FIFO; nullopt when none is ready.
  std::optional<Frame> Next();

  // True when a frame prefix has arrived but its body has not completed —
  // i.e. a peer that closes the connection now truncated a frame.
  bool mid_frame() const { return !buffer_.empty(); }

  bool poisoned() const { return !error_.ok(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;  // bytes of the (single) incomplete frame
  std::deque<Frame> ready_;
  Status error_ = Status::Ok();
};

}  // namespace uload

#endif  // ULOAD_SERVER_WIRE_H_
