#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace uload {
namespace {

bool WriteAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<QueryClient> QueryClient::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  QueryClient client;
  client.fd_ = fd;
  ULOAD_ASSIGN_OR_RETURN(Frame hello,
                         client.RoundTrip(FrameType::kHello, "uload-client"));
  if (hello.type == FrameType::kError) {
    return DecodeErrorPayload(hello.payload);
  }
  if (hello.type != FrameType::kHelloOk) {
    return Status::Internal("handshake: unexpected frame type " +
                            std::to_string(static_cast<unsigned>(hello.type)));
  }
  std::string banner;
  if (!DecodeHelloOkPayload(hello.payload, &client.session_id_, &banner)) {
    return Status::Internal("handshake: malformed hello-ok payload");
  }
  return client;
}

Result<Frame> QueryClient::RoundTrip(FrameType type,
                                     std::string_view payload) {
  if (fd_ < 0) return Status::Internal("client not connected");
  if (!WriteAll(fd_, EncodeFrame(type, payload))) {
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  char buf[4096];
  for (;;) {
    std::optional<Frame> f = reader_.Next();
    if (f.has_value()) return std::move(*f);
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server" +
                              std::string(reader_.mid_frame()
                                              ? " mid-frame"
                                              : ""));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    ULOAD_RETURN_NOT_OK(reader_.Feed(buf, static_cast<size_t>(n)));
  }
}

Result<std::string> QueryClient::ExpectResult(FrameType sent,
                                              std::string_view payload) {
  ULOAD_ASSIGN_OR_RETURN(Frame f, RoundTrip(sent, payload));
  if (f.type == FrameType::kError) return DecodeErrorPayload(f.payload);
  if (f.type != FrameType::kResult) {
    return Status::Internal("unexpected response frame type " +
                            std::to_string(static_cast<unsigned>(f.type)));
  }
  return std::move(f.payload);
}

Result<std::string> QueryClient::Run(const std::string& query) {
  return ExpectResult(FrameType::kRun, query);
}

Result<std::string> QueryClient::Explain(const std::string& query) {
  return ExpectResult(FrameType::kExplain, query);
}

Status QueryClient::Set(const std::string& key, int64_t value) {
  Result<std::string> r =
      ExpectResult(FrameType::kSet, key + "=" + std::to_string(value));
  return r.ok() ? Status::Ok() : r.status();
}

Status QueryClient::Goodbye() {
  ULOAD_ASSIGN_OR_RETURN(Frame f, RoundTrip(FrameType::kGoodbye, ""));
  if (f.type == FrameType::kError) return DecodeErrorPayload(f.payload);
  if (f.type != FrameType::kGoodbyeOk) {
    return Status::Internal("unexpected goodbye response");
  }
  Close();
  return Status::Ok();
}

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace uload
