#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace uload {
namespace {

// Writes the whole buffer; false on any error (peer gone, shutdown).
// MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
bool WriteAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(Engine* engine, ServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      admission_(config_.admission, &engine->memory()) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal(std::string("bind ") + config_.host + ":" +
                                 std::to_string(config_.port) + ": " +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryServer::AcceptLoop() {
  // poll with a short timeout instead of a blocking accept: closing a
  // listening socket does not reliably wake a blocked accept(), polling
  // makes Stop() deterministic.
  while (running_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int r = ::poll(&p, 1, /*timeout_ms=*/50);
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    ++sessions_opened_;
    threads_.emplace_back([this, id, fd] { ServeConnection(id, fd); });
  }
}

void QueryServer::ServeConnection(uint64_t session_id, int fd) {
  Session session;
  session.id = session_id;
  session.fd = fd;
  FrameReader reader(config_.max_frame_bytes);
  char buf[4096];
  bool keep_going = true;
  while (keep_going) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // connection torn down (drain shutdown lands here too)
    }
    Status fed = reader.Feed(buf, static_cast<size_t>(n));
    if (!fed.ok()) {
      // Protocol violation: answer with a ParseError frame (best effort —
      // the stream has lost alignment) and tear the connection down.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(fd, Status::ParseError("malformed frame: " + fed.message()));
      break;
    }
    while (keep_going) {
      std::optional<Frame> frame = reader.Next();
      if (!frame.has_value()) break;
      keep_going = HandleFrame(&session, *frame);
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

bool QueryServer::HandleFrame(Session* session, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return SendFrame(
          session->fd, FrameType::kHelloOk,
          EncodeHelloOkPayload(session->id, "uload query service"));
    case FrameType::kRun:
    case FrameType::kExplain:
      RunQuery(session, frame);
      return true;
    case FrameType::kSet: {
      Status st = HandleSet(session, frame.payload);
      if (st.ok()) return SendFrame(session->fd, FrameType::kResult, "");
      queries_error_.fetch_add(1, std::memory_order_relaxed);
      return SendError(session->fd, st);
    }
    case FrameType::kGoodbye:
      SendFrame(session->fd, FrameType::kGoodbyeOk, "");
      return false;
    default:
      // Unknown or response-typed frame from a client: protocol violation.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(session->fd,
                Status::ParseError(
                    "unexpected frame type " +
                    std::to_string(static_cast<unsigned>(frame.type))));
      return false;
  }
}

void QueryServer::RunQuery(Session* session, const Frame& frame) {
  Result<AdmissionController::Ticket> admitted = admission_.Admit();
  if (!admitted.ok()) {
    queries_error_.fetch_add(1, std::memory_order_relaxed);
    SendError(session->fd, admitted.status());
    return;
  }
  AdmissionController::Ticket ticket = std::move(*admitted);
  if (config_.on_query_start) config_.on_query_start(session->id);

  // Admit-time governor wiring: the ticket's control (deadline already set
  // from the admission config) plus its per-query memory budget, tightened
  // by any session-scoped overrides.
  Engine::QueryOptions q;
  q.control = ticket.control();
  q.timeout_ms = session->timeout_ms;  // BeginQuery keeps the earlier deadline
  q.memory_limit_bytes =
      session->memory_limit_bytes > 0
          ? (ticket.memory_limit_bytes() > 0
                 ? std::min(session->memory_limit_bytes,
                            ticket.memory_limit_bytes())
                 : session->memory_limit_bytes)
          : ticket.memory_limit_bytes();
  q.thread_budget = session->thread_budget;
  q.batch_size = session->batch_size;

  ++session->queries;
  std::string answer;
  Status st = Status::Ok();
  if (frame.type == FrameType::kRun) {
    Result<std::string> out = engine_->Run(frame.payload, q);
    if (out.ok()) {
      answer = std::move(*out);
    } else {
      st = out.status();
    }
  } else {
    Result<Engine::Explanation> out = engine_->Explain(frame.payload);
    if (out.ok()) {
      answer = out->logical + "\n---\n" + out->physical;
    } else {
      st = out.status();
    }
  }
  // The response write happens while the ticket is still held: drain's
  // "wait for executing queries" then covers response delivery too.
  if (st.ok()) {
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
    SendFrame(session->fd, FrameType::kResult, answer);
  } else {
    queries_error_.fetch_add(1, std::memory_order_relaxed);
    SendError(session->fd, st);
  }
}

Status QueryServer::HandleSet(Session* session, const std::string& payload) {
  size_t eq = payload.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("set expects key=value, got: " + payload);
  }
  std::string key = payload.substr(0, eq);
  std::string value = payload.substr(eq + 1);
  int64_t n = 0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                   n);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return Status::InvalidArgument("set " + key + ": not a number: " + value);
  }
  if (key == "thread_budget") {
    if (n < 0) return Status::InvalidArgument("thread_budget must be >= 0");
    session->thread_budget = static_cast<size_t>(n);
  } else if (key == "timeout_ms") {
    session->timeout_ms = n;
  } else if (key == "memory_limit_bytes") {
    if (n < 0) {
      return Status::InvalidArgument("memory_limit_bytes must be >= 0");
    }
    session->memory_limit_bytes = n;
  } else if (key == "batch_size") {
    if (n < 0) return Status::InvalidArgument("batch_size must be >= 0");
    session->batch_size = static_cast<size_t>(n);
  } else {
    return Status::InvalidArgument("unknown session option: " + key);
  }
  return Status::Ok();
}

bool QueryServer::SendFrame(int fd, FrameType type, std::string_view payload) {
  return WriteAll(fd, EncodeFrame(type, payload));
}

bool QueryServer::SendError(int fd, const Status& status) {
  return SendFrame(fd, FrameType::kError, EncodeErrorPayload(status));
}

void QueryServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  draining_.store(true, std::memory_order_release);

  // 1+2. Close the listener and shed the queue. Queries already executing
  // keep their slots.
  admission_.BeginDrain();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 3. Grace period: executing queries finish and write their responses
  // (tickets are held through the write).
  bool idle = admission_.WaitIdle(config_.drain_timeout_ms);

  // 4. Stragglers are cancelled; they answer kCancelled and release.
  if (!idle) {
    engine_->Cancel();
    admission_.WaitIdle(config_.drain_timeout_ms);
  }

  // 5. Tear down every connection (wakes sessions blocked in recv) and
  // join all threads.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (threads_.empty()) break;
      t = std::move(threads_.front());
      threads_.pop_front();
    }
    if (t.joinable()) t.join();
  }
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions_opened = sessions_opened_;
  }
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_error = queries_error_.load(std::memory_order_relaxed);
  s.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  s.admission = admission_.stats();
  return s;
}

}  // namespace uload
