// uload_client: one-shot command-line client for the query service.
//
//   uload_client [--host H] [--port N] [--explain] [--threads N] "QUERY"
//
// Connects, optionally sets the session thread budget, sends the query,
// prints the answer (or the error Status) and exits 0/1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7877;
  bool explain = false;
  long threads = 0;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--threads") {
      threads = std::atol(next("--threads"));
    } else {
      query = arg;
    }
  }
  if (query.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--host H] [--port N] [--explain] [--threads N] "
                 "\"QUERY\"\n",
                 argv[0]);
    return 2;
  }

  auto client = uload::QueryClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  if (threads > 0) {
    auto st = client->Set("thread_budget", threads);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto answer = explain ? client->Explain(query) : client->Run(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", answer->c_str());
  client->Goodbye();
  return 0;
}
