// QueryClient: blocking client for the uload wire protocol (server/wire.h).
//
// One client is one connection == one session. Connect() performs the hello
// handshake and returns a ready client; Run/Explain/Set block until the
// matching response frame arrives. A server-side error frame comes back as
// the reconstructed Status (code mapped through the stable wire table), so
// callers see exactly what an in-process Engine::Run would have returned —
// the differential tests rely on that. Not thread-safe: one request in
// flight per client; drive N connections from N threads for concurrency
// (bench/bench_server_throughput.cc).
#ifndef ULOAD_SERVER_CLIENT_H_
#define ULOAD_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/wire.h"

namespace uload {

class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient() { Close(); }

  QueryClient(QueryClient&& other) noexcept { *this = std::move(other); }
  QueryClient& operator=(QueryClient&& other) noexcept {
    Close();
    fd_ = other.fd_;
    session_id_ = other.session_id_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
    return *this;
  }
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  // Connects and completes the hello handshake.
  static Result<QueryClient> Connect(const std::string& host, int port);

  // Runs one query; the payload of the kResult frame (serialized XML).
  Result<std::string> Run(const std::string& query);

  // Explains one query; "<logical>\n---\n<physical>".
  Result<std::string> Explain(const std::string& query);

  // Sets a session option ("thread_budget", "timeout_ms",
  // "memory_limit_bytes", "batch_size").
  Status Set(const std::string& key, int64_t value);

  // Polite goodbye; the server acknowledges and closes.
  Status Goodbye();

  uint64_t session_id() const { return session_id_; }
  bool connected() const { return fd_ >= 0; }

  void Close();

 private:
  // Sends one frame and blocks for the next response frame.
  Result<Frame> RoundTrip(FrameType type, std::string_view payload);
  // Maps a kResult/kError response to a Result<string>.
  Result<std::string> ExpectResult(FrameType sent, std::string_view payload);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  FrameReader reader_;
};

}  // namespace uload

#endif  // ULOAD_SERVER_CLIENT_H_
