#include "engine/engine.h"

#include "exec/physical.h"
#include "verify/plan_verifier.h"

namespace uload {

Engine::Engine(Document doc) : Engine(std::move(doc), Options()) {}

Engine::Engine(Document doc, Options options)
    : doc_(std::move(doc)), options_(options), exec_(options.batch_size) {
  summary_ = PathSummary::Build(&doc_);
  exec_.set_thread_budget(options_.thread_budget);
  exec_.set_verify_plans(options_.verify);
}

Status Engine::InstallModel(std::vector<NamedXam> model) {
  catalog_ = Catalog();
  for (NamedXam& v : model) {
    ULOAD_RETURN_NOT_OK(catalog_.AddXam(v.name, std::move(v.xam), doc_));
  }
  return Status::Ok();
}

Status Engine::AddView(std::string name, Xam definition) {
  return catalog_.AddXam(std::move(name), std::move(definition), doc_);
}

Result<QueryRewriteResult> Engine::RewriteQuery(
    const std::string& query) const {
  QueryRewriter qr(&summary_, &catalog_);
  return qr.Rewrite(query, options_.rewrite);
}

Result<std::string> Engine::Run(const std::string& query) {
  ULOAD_ASSIGN_OR_RETURN(QueryRewriteResult r, RewriteQuery(query));
  QueryRewriter qr(&summary_, &catalog_);
  exec_.ClearMetrics();
  return qr.Execute(r, &doc_, &exec_);
}

Result<Engine::Explanation> Engine::Explain(const std::string& query) {
  ULOAD_ASSIGN_OR_RETURN(QueryRewriteResult r, RewriteQuery(query));
  QueryRewriter qr(&summary_, &catalog_);
  ULOAD_ASSIGN_OR_RETURN(PlanPtr plan, qr.BuildPlan(r));
  EvalContext ctx = catalog_.MakeEvalContext(&doc_);
  if (exec_.verify_plans()) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr root_schema,
                           VerifyLogicalPlan(*plan, ctx));
    ULOAD_RETURN_NOT_OK(VerifyTemplate(r.translation.templ, *root_schema));
  }
  exec_.ClearMetrics();
  ULOAD_ASSIGN_OR_RETURN(PhysicalPtr root,
                         CompilePhysicalPlan(plan, ctx, &exec_));
  Explanation out;
  out.logical = plan->ToString();
  out.physical = root->Describe();
  return out;
}

Result<Engine::Explanation> Engine::ExplainAnalyze(const std::string& query) {
  ULOAD_ASSIGN_OR_RETURN(QueryRewriteResult r, RewriteQuery(query));
  QueryRewriter qr(&summary_, &catalog_);
  ULOAD_ASSIGN_OR_RETURN(PlanPtr plan, qr.BuildPlan(r));
  EvalContext ctx = catalog_.MakeEvalContext(&doc_);
  if (exec_.verify_plans()) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr root_schema,
                           VerifyLogicalPlan(*plan, ctx));
    ULOAD_RETURN_NOT_OK(VerifyTemplate(r.translation.templ, *root_schema));
  }
  exec_.ClearMetrics();
  ULOAD_ASSIGN_OR_RETURN(PhysicalPtr root,
                         CompilePhysicalPlan(plan, ctx, &exec_));
  Explanation out;
  out.logical = plan->ToString();
  ULOAD_RETURN_NOT_OK(root->Open());
  for (;;) {
    ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b, root->NextBatch());
    if (!b.has_value()) break;
    for (const Tuple& t : b->tuples()) {
      ULOAD_RETURN_NOT_OK(ApplyTemplateToTuple(r.translation.templ,
                                               *root->schema(), t,
                                               &out.result));
    }
  }
  root->Close();
  out.physical = root->DescribeAnalyze();
  return out;
}

}  // namespace uload
