#include "engine/engine.h"

#include <algorithm>

#include "exec/physical.h"
#include "storage/columnar/columnar_format.h"
#include "verify/plan_verifier.h"

namespace uload {

Engine::Engine(Document doc) : Engine(std::move(doc), Options()) {}

Engine::Engine(Document doc, Options options)
    : doc_(std::move(doc)), options_(options) {
  // Summary first: Build annotates every node's path_id, which the columnar
  // conversion persists into its chunk index.
  summary_ = PathSummary::Build(&doc_);
  if (options_.backend == Options::Backend::kColumnar) {
    columnar_ = ColumnarDocument::FromDocument(doc_);
    store_ = &columnar_;
  } else {
    store_ = &doc_;
  }
  engine_memory_.set_limit(options_.engine_memory_limit_bytes);
}

Engine::Engine(ColumnarDocument store, PathSummary summary, Options options)
    : columnar_(std::move(store)),
      store_(&columnar_),
      summary_(std::move(summary)),
      options_(options) {
  options_.backend = Options::Backend::kColumnar;
  engine_memory_.set_limit(options_.engine_memory_limit_bytes);
}

Result<std::unique_ptr<Engine>> Engine::Load(const std::string& path) {
  return Load(path, Options());
}

Result<std::unique_ptr<Engine>> Engine::Load(const std::string& path,
                                             Options options) {
  ULOAD_ASSIGN_OR_RETURN(LoadedColumnar lc, LoadColumnar(path));
  ULOAD_ASSIGN_OR_RETURN(PathSummary summary,
                         PathSummary::Deserialize(lc.summary_text));
  // φ must stay within the persisted summary: every chunk's summary node
  // needs a definition for the storage models built over it.
  if (lc.document.path_id_limit() > summary.size()) {
    return Status::ParseError(
        "columnar image references summary node " +
        std::to_string(lc.document.path_id_limit() - 1) +
        " but the persisted summary has only " +
        std::to_string(summary.size()) + " nodes");
  }
  return std::unique_ptr<Engine>(
      new Engine(std::move(lc.document), std::move(summary), options));
}

Status Engine::Save(const std::string& path) const {
  if (const ColumnarDocument* col = columnar_store()) {
    return SaveColumnar(*col, summary_.Serialize(), path);
  }
  // Pointer backend: convert a throwaway columnar image for the write.
  ColumnarDocument tmp = ColumnarDocument::FromDocument(doc_);
  return SaveColumnar(tmp, summary_.Serialize(), path);
}

void Engine::SetOptions(Options options) {
  options_ = std::move(options);
  engine_memory_.set_limit(options_.engine_memory_limit_bytes);
}

Status Engine::InstallModel(std::vector<NamedXam> model) {
  catalog_ = Catalog();
  for (NamedXam& v : model) {
    ULOAD_RETURN_NOT_OK(catalog_.AddXam(v.name, std::move(v.xam), *store_));
  }
  return Status::Ok();
}

Status Engine::AddView(std::string name, Xam definition) {
  return catalog_.AddXam(std::move(name), std::move(definition), *store_);
}

Result<QueryRewriteResult> Engine::RewriteQuery(
    const std::string& query) const {
  QueryRewriter qr(&summary_, &catalog_);
  return qr.Rewrite(query, options_.rewrite);
}

Engine::QueryOptions Engine::EffectiveQueryOptions() const {
  QueryOptions q;
  q.timeout_ms = options_.timeout_ms;
  q.memory_limit_bytes = options_.memory_limit_bytes;
  q.thread_budget = options_.thread_budget;
  q.batch_size = options_.batch_size;
  q.control = options_.control;
  return q;
}

std::shared_ptr<QueryControl> Engine::BeginQuery(ExecContext* exec,
                                                 MemoryTracker* query_mem,
                                                 const QueryOptions& q) {
  exec->set_thread_budget(q.thread_budget != 0 ? q.thread_budget
                                               : options_.thread_budget);
  exec->set_verify_plans(options_.verify);
  exec->set_memory_tracker(query_mem);
  exec->set_fault(options_.fault);
  std::shared_ptr<QueryControl> control =
      q.control != nullptr ? q.control : std::make_shared<QueryControl>();
  if (q.timeout_ms > 0) {
    // Earliest deadline wins: an admission ticket may already carry the
    // admit-time budget on its control.
    int64_t candidate = QueryControl::NowNs() + q.timeout_ms * 1'000'000;
    int64_t existing = control->deadline_ns();
    if (existing == 0 || candidate < existing) {
      control->set_deadline_ns(candidate);
    }
  } else if (q.timeout_ms < 0) {
    // Testing: an already-expired deadline trips the very first check.
    control->set_deadline_ns(1);
  }
  exec->set_control(control);
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.push_back(control);
  return control;
}

void Engine::EndQuery(const std::shared_ptr<QueryControl>& control,
                      const ExecContext& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), control),
                  inflight_.end());
  last_metrics_ = exec.metrics();
}

std::deque<OperatorMetrics> Engine::LastQueryMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_metrics_;
}

int64_t Engine::LastQueryTotalTuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const OperatorMetrics& m : last_metrics_) total += m.tuples_produced;
  return total;
}

void Engine::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::shared_ptr<QueryControl>& c : inflight_) c->Cancel();
}

Result<std::string> Engine::Run(const std::string& query) {
  return Run(query, EffectiveQueryOptions());
}

Result<std::string> Engine::Run(const std::string& query,
                                const QueryOptions& q) {
  ULOAD_ASSIGN_OR_RETURN(QueryRewriteResult r, RewriteQuery(query));
  QueryRewriter qr(&summary_, &catalog_);
  // Private per-query context + governor: concurrent queries on one engine
  // share nothing but the document, the catalog, and the engine tracker.
  ExecContext exec(q.batch_size != 0 ? q.batch_size : options_.batch_size);
  MemoryTracker query_mem("query", q.memory_limit_bytes, &engine_memory_);
  std::shared_ptr<QueryControl> control = BeginQuery(&exec, &query_mem, q);
  Result<std::string> out = qr.Execute(r, store_, &exec);
  EndQuery(control, exec);
  return out;
}

Result<Engine::Explanation> Engine::Explain(const std::string& query) {
  ULOAD_ASSIGN_OR_RETURN(QueryRewriteResult r, RewriteQuery(query));
  QueryRewriter qr(&summary_, &catalog_);
  ULOAD_ASSIGN_OR_RETURN(PlanPtr plan, qr.BuildPlan(r));
  EvalContext ctx = catalog_.MakeEvalContext(store_);
  if (options_.verify) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr root_schema,
                           VerifyLogicalPlan(*plan, ctx));
    ULOAD_RETURN_NOT_OK(VerifyTemplate(r.translation.templ, *root_schema));
  }
  // Compile against a throwaway context: Explain never executes, so nothing
  // needs to survive this call.
  ExecContext exec(options_.batch_size);
  exec.set_thread_budget(options_.thread_budget);
  exec.set_verify_plans(options_.verify);
  ULOAD_ASSIGN_OR_RETURN(PhysicalPtr root,
                         CompilePhysicalPlan(plan, ctx, &exec));
  Explanation out;
  out.logical = plan->ToString();
  out.physical = root->Describe();
  return out;
}

Result<Engine::Explanation> Engine::ExplainAnalyze(const std::string& query) {
  return ExplainAnalyze(query, EffectiveQueryOptions());
}

Result<Engine::Explanation> Engine::ExplainAnalyze(const std::string& query,
                                                   const QueryOptions& q) {
  ULOAD_ASSIGN_OR_RETURN(QueryRewriteResult r, RewriteQuery(query));
  QueryRewriter qr(&summary_, &catalog_);
  ULOAD_ASSIGN_OR_RETURN(PlanPtr plan, qr.BuildPlan(r));
  EvalContext ctx = catalog_.MakeEvalContext(store_);
  if (options_.verify) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr root_schema,
                           VerifyLogicalPlan(*plan, ctx));
    ULOAD_RETURN_NOT_OK(VerifyTemplate(r.translation.templ, *root_schema));
  }
  ExecContext exec(q.batch_size != 0 ? q.batch_size : options_.batch_size);
  MemoryTracker query_mem("query", q.memory_limit_bytes, &engine_memory_);
  std::shared_ptr<QueryControl> control = BeginQuery(&exec, &query_mem, q);
  Result<PhysicalPtr> compiled = CompilePhysicalPlan(plan, ctx, &exec);
  if (!compiled.ok()) {
    EndQuery(control, exec);
    return compiled.status();
  }
  PhysicalPtr root = std::move(*compiled);
  Explanation out;
  out.logical = plan->ToString();
  Status s = root->Open();
  if (s.ok()) {
    for (;;) {
      Result<std::optional<TupleBatch>> b = root->NextBatch();
      if (!b.ok()) {
        s = b.status();
        break;
      }
      if (!b->has_value()) break;
      for (const Tuple& t : (*b)->tuples()) {
        s = ApplyTemplateToTuple(r.translation.templ, *root->schema(), t,
                                 &out.result);
        if (!s.ok()) break;
      }
      if (!s.ok()) break;
    }
  }
  // Close unconditionally — the error path is exactly where exchange
  // workers must be joined and queues drained before the Status surfaces.
  root->Close();
  out.physical = root->DescribeAnalyze();
  EndQuery(control, exec);
  ULOAD_RETURN_NOT_OK(s);
  return out;
}

}  // namespace uload
