// The engine facade (thesis Fig. 5.1 as a serving stack): one object owning
// the document, its path summary, the catalog of materialized XAMs, and the
// execution context, behind a three-call surface —
//   Run(query)             rewrite + streaming physical execution → XML
//   Explain(query)         combined logical plan + physical operator tree
//   ExplainAnalyze(query)  Run, returning the plan annotated with the
//                          per-operator runtime counters it just produced
// The serving path is fully streaming: the rewriter's combined plan compiles
// into the batched physical executor and tuples feed the tagging template
// batch by batch, with no intermediate materialized relation.
//
// Resource governance (DESIGN.md §8): every Run/ExplainAnalyze executes on a
// private ExecContext with a fresh QueryControl (deadline = now + timeout)
// and a per-query MemoryTracker parented to the engine-wide tracker, so
// queries can run concurrently on one engine, each governed independently.
// Cancel() trips every in-flight query; each aborts at its next batch
// boundary with kCancelled, workers joined and queues drained.
#ifndef ULOAD_ENGINE_ENGINE_H_
#define ULOAD_ENGINE_ENGINE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rewrite/query_rewriter.h"
#include "storage/columnar/columnar_document.h"
#include "storage/storage_models.h"

namespace uload {

class Engine {
 public:
  struct Options {
    // Physical document representation behind the storage-neutral
    // DocumentStore interface. kPointer keeps the parsed node tree;
    // kColumnar converts it into the dictionary-encoded column store
    // (storage/columnar/) — qualifying views then run as virtual extents
    // and the engine becomes persistable via Save()/Load(). Query results
    // are byte-identical across backends.
    enum class Backend { kPointer, kColumnar };
    Backend backend = Backend::kPointer;
    // Fill target of every TupleBatch on the serving path.
    size_t batch_size = TupleBatch::kDefaultCapacity;
    // Worker threads the physical compiler may spend on Exchange operators;
    // 1 keeps execution strictly serial (and bit-deterministic).
    size_t thread_budget = 1;
    // Statically verify every plan before execution (verify/plan_verifier.h):
    // logical schema/type checking, template binding checks, and physical
    // order/placement soundness. A malformed plan surfaces as a Status
    // instead of undefined behavior mid-execution.
    bool verify = true;
    // Wall-clock budget of one Run/ExplainAnalyze call in milliseconds;
    // 0 = unlimited. An exceeded deadline aborts the query at the next batch
    // boundary with kDeadlineExceeded. Negative = already expired (testing:
    // the very first check trips, deterministically).
    int64_t timeout_ms = 0;
    // Per-query memory budget in bytes (0 = unlimited): the bytes held by
    // one query's materializing operators and in-flight exchange slots. An
    // exceeded budget aborts that query with kResourceExhausted; concurrent
    // queries under their own budgets are unaffected.
    int64_t memory_limit_bytes = 0;
    // Engine-wide budget shared by all concurrent queries (0 = unlimited);
    // the per-query trackers parent to it.
    int64_t engine_memory_limit_bytes = 0;
    // Testing hook: an externally owned cancellation handle to install on
    // the next queries instead of a fresh one — lets a test observe
    // QueryControl::checks() or arm CancelAfterChecks() for deterministic
    // mid-query cancellation. Null (the default) = fresh handle per query.
    std::shared_ptr<QueryControl> control;
    // Fault injection for robustness testing (disabled by default); see
    // FaultSpec in exec/exec_context.h.
    FaultSpec fault;
    RewriteOptions rewrite;
  };

  // Per-call governor overrides for one Run/ExplainAnalyze. The serving
  // layer (src/server/) assigns these at admission time — deadline and
  // memory budget per admitted query — without touching the engine-wide
  // Options (SetOptions requires no queries in flight; QueryOptions is the
  // concurrency-safe per-query path).
  struct QueryOptions {
    // Wall-clock budget in ms; 0 = unlimited, negative = already expired
    // (testing). Ignored when `control` arrives with an earlier deadline.
    int64_t timeout_ms = 0;
    // Per-query memory budget in bytes; 0 = unlimited.
    int64_t memory_limit_bytes = 0;
    // Worker threads for this query; 0 = the engine option's budget.
    size_t thread_budget = 0;
    // Batch fill target for this query; 0 = the engine option's size.
    size_t batch_size = 0;
    // Externally owned cancellation handle (e.g. an admission ticket's).
    // May arrive with a deadline preset; the effective deadline is the
    // earlier of that and now + timeout_ms. Null = fresh handle.
    std::shared_ptr<QueryControl> control;
  };

  explicit Engine(Document doc);
  Engine(Document doc, Options options);

  // Restores an engine from a file written by Save(): the column store is
  // mmapped and validated — no XML re-parse, no summary rebuild. The loaded
  // engine always runs the columnar backend (`options.backend` is ignored);
  // install a storage model before querying, as with a fresh engine.
  static Result<std::unique_ptr<Engine>> Load(const std::string& path);
  static Result<std::unique_ptr<Engine>> Load(const std::string& path,
                                              Options options);

  // Persists the document as a columnar image (columns + dictionaries +
  // chunk index + path summary, versioned and checksummed) to `path`. Works
  // from either backend; the pointer backend converts on the fly.
  Status Save(const std::string& path) const;

  // Replaces the engine options. Governor settings (timeout, budgets, fault
  // spec, control override) are read per query at Begin, so changed options
  // apply to the next query. Call with no queries in flight.
  void SetOptions(Options options);
  const Options& options() const { return options_; }

  // Replaces the installed storage model: materializes every XAM of `model`
  // over the document into a fresh catalog.
  Status InstallModel(std::vector<NamedXam> model);
  // Adds one more view to the installed model.
  Status AddView(std::string name, Xam definition);

  // Rewrites `query` over the installed views and streams the combined plan
  // through the physical executor into serialized XML. Thread-safe against
  // concurrent Run/ExplainAnalyze/Explain/Cancel/Save on the same engine
  // (full matrix in DESIGN.md §10); InstallModel/AddView/SetOptions still
  // require no queries in flight.
  Result<std::string> Run(const std::string& query);
  // As above with per-call governor overrides (admission-control path).
  Result<std::string> Run(const std::string& query, const QueryOptions& q);

  // Cancels every in-flight Run/ExplainAnalyze: each aborts at its next
  // batch boundary with kCancelled (clean Status, workers joined, queues
  // drained, budget trackers back to zero). Queries started after this call
  // are unaffected. Thread-safe.
  void Cancel();

  struct Explanation {
    std::string logical;   // combined logical plan rendering
    std::string physical;  // physical tree; ExplainAnalyze annotates it
                           // with the runtime counters
    std::string result;    // serialized XML (ExplainAnalyze only)
  };
  // Compiles without executing.
  Result<Explanation> Explain(const std::string& query);
  // Executes, then renders the physical tree with per-operator counters.
  Result<Explanation> ExplainAnalyze(const std::string& query);
  Result<Explanation> ExplainAnalyze(const std::string& query,
                                     const QueryOptions& q);

  // The active document store — what every view and query runs against.
  const DocumentStore& store() const { return *store_; }
  // Non-null when the columnar backend is active.
  const ColumnarDocument* columnar_store() const {
    return store_ == &columnar_ ? &columnar_ : nullptr;
  }
  // The pointer-tree document. Empty for engines restored via Load(), which
  // carry only the columnar image — use store() for storage-neutral access.
  const Document& document() const { return doc_; }
  const PathSummary& summary() const { return summary_; }
  const Catalog& catalog() const { return catalog_; }
  // Per-operator runtime counters of the most recent completed
  // Run/ExplainAnalyze, as a snapshot taken under the engine lock — safe to
  // call while queries are in flight (each query's counters live on its
  // private ExecContext until EndQuery publishes them here; readers never
  // share slots with a running query).
  std::deque<OperatorMetrics> LastQueryMetrics() const;
  // Sum of tuples_produced over the last published counters.
  int64_t LastQueryTotalTuples() const;
  // Engine-wide memory tracker (root of the per-query hierarchy). used()
  // returns to zero when no query is in flight — aborted ones included.
  const MemoryTracker& memory() const { return engine_memory_; }

 private:
  // Load() path: adopt a restored column store + deserialized summary.
  Engine(ColumnarDocument store, PathSummary summary, Options options);

  Result<QueryRewriteResult> RewriteQuery(const std::string& query) const;
  // Per-call effective settings: engine Options with QueryOptions overrides
  // applied.
  QueryOptions EffectiveQueryOptions() const;
  // Installs the per-query governor state on `exec` (control with deadline,
  // tracker, fault spec, thread budget) and registers the control as
  // in-flight. Returns the control for EndQuery.
  std::shared_ptr<QueryControl> BeginQuery(ExecContext* exec,
                                           MemoryTracker* query_mem,
                                           const QueryOptions& q);
  // Deregisters the control and publishes the query's counters as the
  // engine's "most recent" metrics.
  void EndQuery(const std::shared_ptr<QueryControl>& control,
                const ExecContext& exec);

  Document doc_;
  ColumnarDocument columnar_;
  // Points at doc_ or columnar_ per the active backend; set once in the
  // constructor, never reseated.
  const DocumentStore* store_ = nullptr;
  PathSummary summary_;
  Catalog catalog_;
  Options options_;
  MemoryTracker engine_memory_{"engine"};
  mutable std::mutex mu_;  // guards inflight_ and last_metrics_
  std::vector<std::shared_ptr<QueryControl>> inflight_;
  // Published counters of the most recently finished query. A plain value
  // snapshot (not a shared ExecContext): concurrent Runs each collect on a
  // private context and copy here under mu_, so no running operator tree
  // ever shares metric slots with a reader or another query.
  std::deque<OperatorMetrics> last_metrics_;
};

}  // namespace uload

#endif  // ULOAD_ENGINE_ENGINE_H_
