// The engine facade (thesis Fig. 5.1 as a serving stack): one object owning
// the document, its path summary, the catalog of materialized XAMs, and the
// execution context, behind a three-call surface —
//   Run(query)             rewrite + streaming physical execution → XML
//   Explain(query)         combined logical plan + physical operator tree
//   ExplainAnalyze(query)  Run, returning the plan annotated with the
//                          per-operator runtime counters it just produced
// The serving path is fully streaming: the rewriter's combined plan compiles
// into the batched physical executor and tuples feed the tagging template
// batch by batch, with no intermediate materialized relation.
#ifndef ULOAD_ENGINE_ENGINE_H_
#define ULOAD_ENGINE_ENGINE_H_

#include <string>
#include <vector>

#include "rewrite/query_rewriter.h"
#include "storage/storage_models.h"

namespace uload {

class Engine {
 public:
  struct Options {
    // Fill target of every TupleBatch on the serving path.
    size_t batch_size = TupleBatch::kDefaultCapacity;
    // Worker threads the physical compiler may spend on Exchange operators;
    // 1 keeps execution strictly serial (and bit-deterministic).
    size_t thread_budget = 1;
    // Statically verify every plan before execution (verify/plan_verifier.h):
    // logical schema/type checking, template binding checks, and physical
    // order/placement soundness. A malformed plan surfaces as a Status
    // instead of undefined behavior mid-execution.
    bool verify = true;
    RewriteOptions rewrite;
  };

  explicit Engine(Document doc);
  Engine(Document doc, Options options);

  // Replaces the installed storage model: materializes every XAM of `model`
  // over the document into a fresh catalog.
  Status InstallModel(std::vector<NamedXam> model);
  // Adds one more view to the installed model.
  Status AddView(std::string name, Xam definition);

  // Rewrites `query` over the installed views and streams the combined plan
  // through the physical executor into serialized XML.
  Result<std::string> Run(const std::string& query);

  struct Explanation {
    std::string logical;   // combined logical plan rendering
    std::string physical;  // physical tree; ExplainAnalyze annotates it
                           // with the runtime counters
    std::string result;    // serialized XML (ExplainAnalyze only)
  };
  // Compiles without executing.
  Result<Explanation> Explain(const std::string& query);
  // Executes, then renders the physical tree with per-operator counters.
  Result<Explanation> ExplainAnalyze(const std::string& query);

  const Document& document() const { return doc_; }
  const PathSummary& summary() const { return summary_; }
  const Catalog& catalog() const { return catalog_; }
  // Runtime counters of the most recent Run/ExplainAnalyze.
  const ExecContext& exec_context() const { return exec_; }

 private:
  Result<QueryRewriteResult> RewriteQuery(const std::string& query) const;

  Document doc_;
  PathSummary summary_;
  Catalog catalog_;
  Options options_;
  ExecContext exec_;
};

}  // namespace uload

#endif  // ULOAD_ENGINE_ENGINE_H_
