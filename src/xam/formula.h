// Value formulas φ(v) decorating pattern nodes (thesis §4.1, §4.4.2).
//
// A formula is a predicate over one free variable v ranging over the totally
// ordered atomic domain A (numbers and strings, ordered by
// AtomicValue::Compare). Formulas are built from atoms v θ c with
// θ ∈ {=, ≠, <, ≤, >, ≥} combined by ∧ and ∨, and are kept in a canonical
// form: a finite union of disjoint, non-touching intervals (plus the special
// T and F). This makes conjunction, disjunction, negation and implication
// (the φ_e(n)(v) ⇒ φ_n(v) test of decorated embeddings) all effective.
#ifndef ULOAD_XAM_FORMULA_H_
#define ULOAD_XAM_FORMULA_H_

#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/value.h"

namespace uload {

class ValueFormula {
 public:
  // The always-true formula T (the whole domain).
  ValueFormula();

  static ValueFormula True();
  static ValueFormula False();
  // v θ c.
  static ValueFormula Atom(Comparator cmp, const AtomicValue& c);
  // Convenience: v = c.
  static ValueFormula Equals(const AtomicValue& c) {
    return Atom(Comparator::kEq, c);
  }

  bool IsTrue() const;
  bool IsFalse() const;

  ValueFormula And(const ValueFormula& other) const;
  ValueFormula Or(const ValueFormula& other) const;
  ValueFormula Not() const;

  // this ⇒ other, i.e. this ∧ ¬other is unsatisfiable.
  bool Implies(const ValueFormula& other) const;
  // Same set of satisfying values.
  bool EquivalentTo(const ValueFormula& other) const;

  bool SatisfiedBy(const AtomicValue& v) const;

  // Some value satisfying the formula (for canonical-model materialization);
  // null AtomicValue if unsatisfiable.
  AtomicValue Witness() const;

  std::string ToString() const;

  // True if this formula is exactly "v = c" for a single constant.
  bool IsSingleEquality(AtomicValue* c) const;

  // True if this formula is one interval — i.e. a conjunction of at most
  // two bound atoms. Bounds are reported through the out-params; an
  // infinite end sets has_lo/has_hi to false. The always-true formula and
  // single equalities are intervals too; callers that want the special
  // renderings check IsTrue()/IsSingleEquality() first. The printer uses
  // this to render interval formulas as parseable "val>lo val<=hi" atoms.
  bool IsSingleInterval(AtomicValue* lo, bool* lo_inclusive, bool* has_lo,
                        AtomicValue* hi, bool* hi_inclusive, bool* has_hi)
      const;

  // True if this formula is exactly "v ≠ c" (the complement of one point).
  bool IsSingleExclusion(AtomicValue* c) const;

  // Equivalent predicate over the (dotted) attribute `attr`: a disjunction
  // of per-interval bound conjunctions. False formulas translate to
  // not(true).
  PredicatePtr ToPredicate(const std::string& attr) const;

 private:
  struct Bound {
    AtomicValue value;     // ignored when infinite
    bool inclusive = false;
    bool infinite = false;  // lo: -inf, hi: +inf
  };
  struct Interval {
    Bound lo;
    Bound hi;
  };

  static bool IntervalEmpty(const Interval& iv);
  // a.hi meets or overlaps b.lo (assuming a.lo <= b.lo order).
  static bool TouchOrOverlap(const Interval& a, const Interval& b);
  void Normalize();

  // Disjoint, sorted intervals. True = single (-inf, +inf) interval;
  // False = empty vector.
  std::vector<Interval> intervals_;
};

}  // namespace uload

#endif  // ULOAD_XAM_FORMULA_H_
