// Serializes a Xam back to the textual syntax accepted by ParseXam
// (round-trippable up to node ordering and formula normalization).
#ifndef ULOAD_XAM_XAM_PRINTER_H_
#define ULOAD_XAM_XAM_PRINTER_H_

#include <string>

#include "xam/xam.h"

namespace uload {

std::string PrintXam(const Xam& xam);

}  // namespace uload

#endif  // ULOAD_XAM_XAM_PRINTER_H_
