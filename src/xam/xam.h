// XML Access Modules (thesis Chapter 2): annotated tree patterns uniformly
// describing storage structures, indexes, materialized views, and query
// sub-expressions.
//
// A XAM is an ordered tree (NS, ES, o). Node 0 is always the special ⊤ node
// (the document root). Every other node carries:
//  * an optional ID specification: id (i|o|s|p) (R?)
//  * an optional Tag specification: Tag (R?) — stored —, or [Tag=c]
//  * an optional Val specification: Val (R?) — stored —, or a value formula
//    φ(v) ([Val=c] generalized to decorated patterns, §4.1)
//  * an optional Cont specification.
// Edges are / (parent-child) or // (ancestor-descendant) with join semantics
// j / o / s / nj / no. The containment chapters' "optional" edges are the o
// and no variants; "nested" edges are nj and no.
#ifndef ULOAD_XAM_XAM_H_
#define ULOAD_XAM_XAM_H_

#include <string>
#include <vector>

#include "algebra/logical_plan.h"
#include "algebra/schema.h"
#include "common/status.h"
#include "xam/formula.h"
#include "xml/ids.h"

namespace uload {

using XamNodeId = int32_t;
inline constexpr XamNodeId kXamRoot = 0;

// Val storage and Val predicate are independent: a node may store its value
// and also constrain it ([Val=c] with Val stored).

struct XamEdge {
  XamNodeId child = -1;
  Axis axis = Axis::kChild;  // '/' or '//'
  JoinVariant variant = JoinVariant::kInner;

  bool optional() const {
    return variant == JoinVariant::kLeftOuter ||
           variant == JoinVariant::kNestOuter;
  }
  bool nested() const {
    return variant == JoinVariant::kNestJoin ||
           variant == JoinVariant::kNestOuter;
  }
  bool semi() const { return variant == JoinVariant::kSemi; }
};

struct XamNode {
  std::string name;           // unique within the XAM (e.g. "e1"); ⊤ = "top"
  bool is_attribute = false;  // XML-attribute node (names starting with '@')

  // ID specification.
  bool stores_id = false;
  IdKind id_kind = IdKind::kStructural;
  bool id_required = false;

  // Tag specification: the [Tag=c] constraint lives in tag_value ("" = any
  // label, i.e. a * node); stores_tag says the tag is materialized.
  bool stores_tag = false;
  bool tag_required = false;
  std::string tag_value;

  // Val specification: stores_val materializes the value; val_formula is the
  // [Val θ c] constraint (True = unconstrained).
  bool stores_val = false;
  bool val_required = false;
  ValueFormula val_formula = ValueFormula::True();

  // Cont specification.
  bool stores_cont = false;

  // Outgoing edges in left-to-right order.
  std::vector<XamEdge> edges;
  XamNodeId parent = -1;

  // Label this node requires of matched XML nodes: the [Tag=c] constant, or
  // "" meaning * (any label).
  const std::string& label() const { return tag_value; }
  bool is_wildcard() const { return tag_value.empty(); }

  // A node is *returning* if it stores at least one attribute.
  bool returning() const {
    return stores_id || stores_tag || stores_val || stores_cont;
  }
  bool has_required() const {
    return id_required || tag_required || val_required;
  }
};

class Xam {
 public:
  Xam();

  // --- Construction --------------------------------------------------------

  // Adds a node under `parent`. Returns its id. `name` defaults to
  // "e<k>"; `label` == "" means a * node.
  XamNodeId AddNode(XamNodeId parent, Axis axis, const std::string& label,
                    JoinVariant variant = JoinVariant::kInner,
                    std::string name = "");
  // Adds an attribute node (tag predicate "@name").
  XamNodeId AddAttributeNode(XamNodeId parent, const std::string& attr_name,
                             JoinVariant variant = JoinVariant::kInner,
                             std::string name = "");

  XamNode& node(XamNodeId id) { return nodes_[id]; }
  const XamNode& node(XamNodeId id) const { return nodes_[id]; }
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  bool ordered() const { return ordered_; }
  void set_ordered(bool o) { ordered_ = o; }

  // Annotation helpers (fluent-ish).
  Xam& StoreId(XamNodeId id, IdKind kind = IdKind::kStructural,
               bool required = false);
  Xam& StoreTag(XamNodeId id, bool required = false);
  Xam& StoreVal(XamNodeId id, bool required = false);
  Xam& StoreCont(XamNodeId id);
  Xam& ValPredicate(XamNodeId id, ValueFormula f);

  // --- Introspection -------------------------------------------------------

  // Node ids in pre-order (root first).
  std::vector<XamNodeId> PreOrder() const;
  // Returning nodes (storing >= 1 attribute), in pre-order.
  std::vector<XamNodeId> ReturnNodes() const;
  // Node by name; -1 if absent.
  XamNodeId NodeByName(const std::string& name) const;
  // The edge from node(id).parent to id. Precondition: id != root.
  const XamEdge& IncomingEdge(XamNodeId id) const;
  JoinVariant IncomingVariant(XamNodeId id) const {
    return IncomingEdge(id).variant;
  }

  // Depth of nesting: number of nested (nj/no) edges strictly above `id`
  // (|ns(n)| of §4.4.5).
  int NestingDepth(XamNodeId id) const;

  // True if every edge is / or // with variant j and no node has predicates
  // beyond [Tag=c] — the conjunctive fragment of §4.1 (semijoin edges are
  // also conjunctive: they simply do not return attributes).
  bool IsConjunctive() const;

  // True if any node carries a non-trivial value formula.
  bool IsDecorated() const;
  bool HasOptionalEdges() const;
  bool HasNestedEdges() const;
  bool HasRequired() const;

  // The nested-relation schema of the data this XAM stores. Attribute names
  // are "<node>_ID", "<node>_Tag", "<node>_Val", "<node>_Cont"; a nested
  // (nj/no) edge contributes one collection attribute named after the child
  // node, containing the child subtree's attributes.
  SchemaPtr ViewSchema() const;

  // Structural equality of the two XAM trees (names ignored).
  bool StructurallyEquals(const Xam& other) const;

  // Deep copy with fresh storage (Xam is copyable; this is for clarity).
  Xam Clone() const { return *this; }

  std::string ToString() const;

 private:
  void CollectSchema(XamNodeId id, std::vector<Attribute>* attrs) const;
  void Render(XamNodeId id, int indent, std::string* out) const;

  std::vector<XamNode> nodes_;
  bool ordered_ = false;
  int next_auto_name_ = 1;
};

}  // namespace uload

#endif  // ULOAD_XAM_XAM_H_
