#include "xam/xam_printer.h"

namespace uload {
namespace {

const char* VariantCode(JoinVariant v) {
  switch (v) {
    case JoinVariant::kInner:
      return "j";
    case JoinVariant::kSemi:
      return "s";
    case JoinVariant::kLeftOuter:
      return "o";
    case JoinVariant::kNestJoin:
      return "nj";
    case JoinVariant::kNestOuter:
      return "no";
  }
  return "j";
}

std::string ConstantCode(const AtomicValue& c) {
  return c.is_string() ? "\"" + c.as_string() + "\"" : c.ToString();
}

// Renders the value formula as parseable "val θ c" atoms, or falls back to
// a trailing comment for formulas outside the single-atom grammar
// (multi-interval unions, False). The caller appends the result verbatim.
std::string FormulaCode(const ValueFormula& f) {
  if (f.IsTrue()) return "";
  AtomicValue c;
  if (f.IsSingleEquality(&c)) return " val=" + ConstantCode(c);
  if (f.IsSingleExclusion(&c)) return " val!=" + ConstantCode(c);
  AtomicValue lo, hi;
  bool lo_inc = false, has_lo = false, hi_inc = false, has_hi = false;
  if (f.IsSingleInterval(&lo, &lo_inc, &has_lo, &hi, &hi_inc, &has_hi)) {
    std::string out;
    if (has_lo) out += std::string(lo_inc ? " val>=" : " val>") + ConstantCode(lo);
    if (has_hi) out += std::string(hi_inc ? " val<=" : " val<") + ConstantCode(hi);
    return out;
  }
  return "";
}

}  // namespace

std::string PrintXam(const Xam& xam) {
  std::string out = "xam";
  if (xam.ordered()) out += " ordered";
  out += "\n";
  for (XamNodeId id : xam.PreOrder()) {
    if (id == kXamRoot) continue;
    const XamNode& n = xam.node(id);
    out += "node " + n.name;
    if (!n.tag_value.empty()) {
      out += " label=" + n.tag_value;
    } else if (n.is_attribute) {
      out += " label=@*";
    }
    if (n.stores_id) {
      out += " id=";
      out += IdKindCode(n.id_kind);
      if (n.id_required) out += "!";
    }
    if (n.stores_tag) out += n.tag_required ? " tag!" : " tag";
    if (n.stores_val) out += n.val_required ? " val!" : " val";
    std::string formula = FormulaCode(n.val_formula);
    out += formula;
    if (n.stores_cont) out += " cont";
    if (formula.empty() && !n.val_formula.IsTrue()) {
      // Formulas outside the single-conjunction grammar (interval unions,
      // False) have no atom syntax; record them in a comment after all real
      // options so the line stays parseable and nothing is swallowed.
      out += "  # formula: " + n.val_formula.ToString();
    }
    out += "\n";
  }
  for (XamNodeId id : xam.PreOrder()) {
    const XamNode& n = xam.node(id);
    for (const XamEdge& e : n.edges) {
      out += "edge " + n.name + " ";
      out += e.axis == Axis::kChild ? "/" : "//";
      out += " ";
      out += VariantCode(e.variant);
      out += " " + xam.node(e.child).name + "\n";
    }
  }
  return out;
}

}  // namespace uload
