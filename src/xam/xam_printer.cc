#include "xam/xam_printer.h"

namespace uload {
namespace {

const char* VariantCode(JoinVariant v) {
  switch (v) {
    case JoinVariant::kInner:
      return "j";
    case JoinVariant::kSemi:
      return "s";
    case JoinVariant::kLeftOuter:
      return "o";
    case JoinVariant::kNestJoin:
      return "nj";
    case JoinVariant::kNestOuter:
      return "no";
  }
  return "j";
}

}  // namespace

std::string PrintXam(const Xam& xam) {
  std::string out = "xam";
  if (xam.ordered()) out += " ordered";
  out += "\n";
  for (XamNodeId id : xam.PreOrder()) {
    if (id == kXamRoot) continue;
    const XamNode& n = xam.node(id);
    out += "node " + n.name;
    if (!n.tag_value.empty()) {
      out += " label=" + n.tag_value;
    } else if (n.is_attribute) {
      out += " label=@*";
    }
    if (n.stores_id) {
      out += " id=";
      out += IdKindCode(n.id_kind);
      if (n.id_required) out += "!";
    }
    if (n.stores_tag) out += n.tag_required ? " tag!" : " tag";
    if (n.stores_val) out += n.val_required ? " val!" : " val";
    AtomicValue c;
    if (n.val_formula.IsSingleEquality(&c)) {
      out += " val=";
      out += c.is_string() ? "\"" + c.as_string() + "\"" : c.ToString();
    } else if (!n.val_formula.IsTrue()) {
      // General formulas are not expressible in single-atom syntax; emit a
      // comment so the output stays parseable.
      out += "  # formula: " + n.val_formula.ToString();
    }
    if (n.stores_cont) out += " cont";
    out += "\n";
  }
  for (XamNodeId id : xam.PreOrder()) {
    const XamNode& n = xam.node(id);
    for (const XamEdge& e : n.edges) {
      out += "edge " + n.name + " ";
      out += e.axis == Axis::kChild ? "/" : "//";
      out += " ";
      out += VariantCode(e.variant);
      out += " " + xam.node(e.child).name + "\n";
    }
  }
  return out;
}

}  // namespace uload
