// Textual syntax for XAMs (concrete rendering of the Fig. 2.3 grammar).
//
//   xam [ordered]
//   node <name> [label=<tag>|label=*|label=@attr] [id=i|o|s|p[!]]
//        [tag[!]] [val[!]] [val="c" | val=<n> | val<n | val<=n | val>n |
//         val>=n | val!=...] [cont]
//   edge <parent> /|// [j|o|s|nj|no] <child>
//
// '!' marks R (required) annotations. Lines starting with '#' are comments.
// The root node "top" (⊤) is implicit; edges from it use parent name "top".
#ifndef ULOAD_XAM_XAM_PARSER_H_
#define ULOAD_XAM_XAM_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xam/xam.h"

namespace uload {

Result<Xam> ParseXam(std::string_view text);

}  // namespace uload

#endif  // ULOAD_XAM_XAM_PARSER_H_
