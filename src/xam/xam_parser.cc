#include "xam/xam_parser.h"

#include <cctype>
#include <map>

#include "common/string_util.h"

namespace uload {
namespace {

struct PendingNode {
  std::string name;
  std::string label;
  bool is_attribute = false;
  bool stores_id = false;
  IdKind id_kind = IdKind::kStructural;
  bool id_required = false;
  bool stores_tag = false;
  bool tag_required = false;
  bool stores_val = false;
  bool val_required = false;
  ValueFormula formula = ValueFormula::True();
  bool stores_cont = false;
};

struct PendingEdge {
  std::string parent;
  std::string child;
  Axis axis = Axis::kChild;
  JoinVariant variant = JoinVariant::kInner;
};

// Tokenizes a line respecting "quoted strings" (quotes may contain spaces).
// An unquoted '#' starts a comment running to end of line; the printer emits
// such comments for formulas outside the atom grammar.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (char c : line) {
    if (in_quotes) {
      cur += c;
      if (c == '"') in_quotes = false;
      continue;
    }
    if (c == '#') break;
    if (c == '"') {
      cur += c;
      in_quotes = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

// Parses the constant in a val predicate: "str" (quoted) or a number.
Result<AtomicValue> ParseConstant(std::string_view text) {
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    return AtomicValue::String(std::string(text.substr(1, text.size() - 2)));
  }
  double num;
  if (ParseNumber(text, &num)) return AtomicValue::Number(num);
  return Status::ParseError("bad constant '" + std::string(text) + "'");
}

Status ApplyNodeOption(std::string_view opt, PendingNode* n) {
  if (opt.rfind("label=", 0) == 0) {
    std::string_view v = opt.substr(6);
    if (v == "*") {
      n->label.clear();
    } else if (v == "@" || v == "@*") {
      // Wildcard attribute: any attribute node.
      n->label.clear();
      n->is_attribute = true;
    } else if (!v.empty() && v[0] == '@') {
      n->label = std::string(v);
      n->is_attribute = true;
    } else {
      n->label = std::string(v);
    }
    return Status::Ok();
  }
  if (opt.rfind("id=", 0) == 0) {
    std::string_view v = opt.substr(3);
    if (!v.empty() && v.back() == '!') {
      n->id_required = true;
      v.remove_suffix(1);
    }
    if (v.size() != 1 || !IdKindFromCode(v[0], &n->id_kind)) {
      return Status::ParseError("bad id kind in '" + std::string(opt) + "'");
    }
    n->stores_id = true;
    return Status::Ok();
  }
  if (opt == "tag" || opt == "tag!") {
    n->stores_tag = true;
    n->tag_required = opt.back() == '!';
    return Status::Ok();
  }
  if (opt == "val" || opt == "val!") {
    n->stores_val = true;
    n->val_required = opt.back() == '!';
    return Status::Ok();
  }
  if (opt == "cont") {
    n->stores_cont = true;
    return Status::Ok();
  }
  if (opt.rfind("val", 0) == 0) {
    std::string_view rest = opt.substr(3);
    Comparator cmp;
    if (rest.rfind("!=", 0) == 0) {
      cmp = Comparator::kNe;
      rest.remove_prefix(2);
    } else if (rest.rfind("<=", 0) == 0) {
      cmp = Comparator::kLe;
      rest.remove_prefix(2);
    } else if (rest.rfind(">=", 0) == 0) {
      cmp = Comparator::kGe;
      rest.remove_prefix(2);
    } else if (rest.rfind("=", 0) == 0) {
      cmp = Comparator::kEq;
      rest.remove_prefix(1);
    } else if (rest.rfind("<", 0) == 0) {
      cmp = Comparator::kLt;
      rest.remove_prefix(1);
    } else if (rest.rfind(">", 0) == 0) {
      cmp = Comparator::kGt;
      rest.remove_prefix(1);
    } else {
      return Status::ParseError("bad val predicate '" + std::string(opt) +
                                "'");
    }
    ULOAD_ASSIGN_OR_RETURN(AtomicValue c, ParseConstant(rest));
    n->formula = n->formula.And(ValueFormula::Atom(cmp, c));
    return Status::Ok();
  }
  return Status::ParseError("unknown node option '" + std::string(opt) + "'");
}

Result<JoinVariant> ParseVariant(std::string_view v) {
  if (v == "j") return JoinVariant::kInner;
  if (v == "o") return JoinVariant::kLeftOuter;
  if (v == "s") return JoinVariant::kSemi;
  if (v == "nj") return JoinVariant::kNestJoin;
  if (v == "no") return JoinVariant::kNestOuter;
  return Status::ParseError("unknown join variant '" + std::string(v) + "'");
}

}  // namespace

Result<Xam> ParseXam(std::string_view text) {
  std::vector<PendingNode> pending_nodes;
  std::vector<PendingEdge> pending_edges;
  bool ordered = false;
  bool saw_header = false;

  size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(pos, end - pos);
    pos = end + 1;
    ++lineno;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      if (end == text.size()) break;
      continue;
    }
    std::vector<std::string> toks = Tokenize(line);
    const std::string& head = toks[0];
    if (head == "xam") {
      saw_header = true;
      for (size_t i = 1; i < toks.size(); ++i) {
        if (toks[i] == "ordered") {
          ordered = true;
        } else {
          return Status::ParseError("line " + std::to_string(lineno) +
                                    ": unknown xam option '" + toks[i] + "'");
        }
      }
    } else if (head == "node") {
      if (toks.size() < 2) {
        return Status::ParseError("line " + std::to_string(lineno) +
                                  ": node needs a name");
      }
      PendingNode n;
      n.name = toks[1];
      for (size_t i = 2; i < toks.size(); ++i) {
        Status st = ApplyNodeOption(toks[i], &n);
        if (!st.ok()) {
          return Status::ParseError("line " + std::to_string(lineno) + ": " +
                                    st.message());
        }
      }
      pending_nodes.push_back(std::move(n));
    } else if (head == "edge") {
      // edge <parent> /|// [variant] <child>
      if (toks.size() != 4 && toks.size() != 5) {
        return Status::ParseError("line " + std::to_string(lineno) +
                                  ": edge syntax: edge <parent> /|// "
                                  "[j|o|s|nj|no] <child>");
      }
      PendingEdge e;
      e.parent = toks[1];
      if (toks[2] == "/") {
        e.axis = Axis::kChild;
      } else if (toks[2] == "//") {
        e.axis = Axis::kDescendant;
      } else {
        return Status::ParseError("line " + std::to_string(lineno) +
                                  ": bad axis '" + toks[2] + "'");
      }
      if (toks.size() == 5) {
        ULOAD_ASSIGN_OR_RETURN(e.variant, ParseVariant(toks[3]));
        e.child = toks[4];
      } else {
        e.child = toks[3];
      }
      pending_edges.push_back(std::move(e));
    } else {
      return Status::ParseError("line " + std::to_string(lineno) +
                                ": unknown directive '" + head + "'");
    }
    if (end == text.size()) break;
  }

  if (!saw_header) {
    return Status::ParseError("missing 'xam' header line");
  }

  // Assemble: nodes are attached per edges; a node without an incoming edge
  // other than "top" is an error (except nothing — "top" is implicit).
  std::map<std::string, std::string> parent_of;
  std::map<std::string, PendingEdge*> edge_of;
  for (PendingEdge& e : pending_edges) {
    if (parent_of.count(e.child) != 0) {
      return Status::ParseError("node '" + e.child +
                                "' has two incoming edges");
    }
    parent_of[e.child] = e.parent;
    edge_of[e.child] = &e;
  }

  Xam xam;
  xam.set_ordered(ordered);
  std::map<std::string, XamNodeId> ids;
  ids["top"] = kXamRoot;

  // Insert nodes in declaration order; parents must be declared first.
  for (const PendingNode& n : pending_nodes) {
    auto pit = parent_of.find(n.name);
    if (pit == parent_of.end()) {
      return Status::ParseError("node '" + n.name + "' has no incoming edge");
    }
    auto idit = ids.find(pit->second);
    if (idit == ids.end()) {
      return Status::ParseError("node '" + n.name + "' declared before its "
                                "parent '" + pit->second + "'");
    }
    const PendingEdge& e = *edge_of[n.name];
    XamNodeId id = xam.AddNode(idit->second, e.axis, n.label, e.variant,
                               n.name);
    XamNode& xn = xam.node(id);
    xn.is_attribute = n.is_attribute;
    xn.stores_id = n.stores_id;
    xn.id_kind = n.id_kind;
    xn.id_required = n.id_required;
    xn.stores_tag = n.stores_tag;
    xn.tag_required = n.tag_required;
    xn.stores_val = n.stores_val;
    xn.val_required = n.val_required;
    xn.val_formula = n.formula;
    xn.stores_cont = n.stores_cont;
    ids[n.name] = id;
  }
  for (const PendingEdge& e : pending_edges) {
    if (ids.count(e.child) == 0) {
      return Status::ParseError("edge references undeclared node '" +
                                e.child + "'");
    }
  }
  return xam;
}

}  // namespace uload
