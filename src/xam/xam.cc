#include "xam/xam.h"

#include <cassert>

namespace uload {

Xam::Xam() {
  XamNode top;
  top.name = "top";
  // ⊤ matches only the document root; it has no tag constraint and stores
  // nothing.
  nodes_.push_back(std::move(top));
}

XamNodeId Xam::AddNode(XamNodeId parent, Axis axis, const std::string& label,
                       JoinVariant variant, std::string name) {
  assert(parent >= 0 && parent < size());
  XamNodeId id = size();
  XamNode n;
  n.name = name.empty() ? "e" + std::to_string(next_auto_name_++)
                        : std::move(name);
  n.tag_value = label;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  nodes_[parent].edges.push_back(XamEdge{id, axis, variant});
  return id;
}

XamNodeId Xam::AddAttributeNode(XamNodeId parent, const std::string& attr_name,
                                JoinVariant variant, std::string name) {
  // Empty attr_name = wildcard attribute (any attribute): the label stays
  // empty; the kind constraint lives in is_attribute.
  XamNodeId id = AddNode(parent, Axis::kChild,
                         attr_name.empty() ? "" : "@" + attr_name, variant,
                         std::move(name));
  nodes_[id].is_attribute = true;
  return id;
}

Xam& Xam::StoreId(XamNodeId id, IdKind kind, bool required) {
  nodes_[id].stores_id = true;
  nodes_[id].id_kind = kind;
  nodes_[id].id_required = required;
  return *this;
}

Xam& Xam::StoreTag(XamNodeId id, bool required) {
  nodes_[id].stores_tag = true;
  nodes_[id].tag_required = required;
  return *this;
}

Xam& Xam::StoreVal(XamNodeId id, bool required) {
  nodes_[id].stores_val = true;
  nodes_[id].val_required = required;
  return *this;
}

Xam& Xam::StoreCont(XamNodeId id) {
  nodes_[id].stores_cont = true;
  return *this;
}

Xam& Xam::ValPredicate(XamNodeId id, ValueFormula f) {
  nodes_[id].val_formula = std::move(f);
  return *this;
}

std::vector<XamNodeId> Xam::PreOrder() const {
  std::vector<XamNodeId> out;
  std::vector<XamNodeId> work{kXamRoot};
  while (!work.empty()) {
    XamNodeId id = work.back();
    work.pop_back();
    out.push_back(id);
    const auto& edges = nodes_[id].edges;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
      work.push_back(it->child);
    }
  }
  return out;
}

std::vector<XamNodeId> Xam::ReturnNodes() const {
  // Semijoined subtrees are existential only: nothing they store reaches
  // the result (consistent with ViewSchema()).
  std::vector<XamNodeId> out;
  std::vector<XamNodeId> work{kXamRoot};
  while (!work.empty()) {
    XamNodeId id = work.back();
    work.pop_back();
    if (id != kXamRoot && nodes_[id].returning()) out.push_back(id);
    const auto& edges = nodes_[id].edges;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
      if (!it->semi()) work.push_back(it->child);
    }
  }
  return out;
}

XamNodeId Xam::NodeByName(const std::string& name) const {
  for (XamNodeId i = 0; i < size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return -1;
}

const XamEdge& Xam::IncomingEdge(XamNodeId id) const {
  const XamNode& parent = nodes_[nodes_[id].parent];
  for (const XamEdge& e : parent.edges) {
    if (e.child == id) return e;
  }
  assert(false && "node has no incoming edge");
  return parent.edges.front();
}

int Xam::NestingDepth(XamNodeId id) const {
  int depth = 0;
  for (XamNodeId cur = id; cur != kXamRoot; cur = nodes_[cur].parent) {
    if (IncomingEdge(cur).nested()) ++depth;
  }
  return depth;
}

bool Xam::IsConjunctive() const {
  for (const XamNode& n : nodes_) {
    if (!n.val_formula.IsTrue()) {
      AtomicValue c;
      if (!n.val_formula.IsSingleEquality(&c)) return false;
    }
    for (const XamEdge& e : n.edges) {
      if (e.optional() || e.nested()) return false;
    }
  }
  return true;
}

bool Xam::IsDecorated() const {
  for (const XamNode& n : nodes_) {
    if (!n.val_formula.IsTrue()) return true;
  }
  return false;
}

bool Xam::HasOptionalEdges() const {
  for (const XamNode& n : nodes_) {
    for (const XamEdge& e : n.edges) {
      if (e.optional()) return true;
    }
  }
  return false;
}

bool Xam::HasNestedEdges() const {
  for (const XamNode& n : nodes_) {
    for (const XamEdge& e : n.edges) {
      if (e.nested()) return true;
    }
  }
  return false;
}

bool Xam::HasRequired() const {
  for (const XamNode& n : nodes_) {
    if (n.has_required()) return true;
  }
  return false;
}

void Xam::CollectSchema(XamNodeId id, std::vector<Attribute>* attrs) const {
  const XamNode& n = nodes_[id];
  if (id != kXamRoot) {
    if (n.stores_id) attrs->push_back(Attribute::Atomic(n.name + "_ID"));
    if (n.stores_tag) attrs->push_back(Attribute::Atomic(n.name + "_Tag"));
    if (n.stores_val) attrs->push_back(Attribute::Atomic(n.name + "_Val"));
    if (n.stores_cont) attrs->push_back(Attribute::Atomic(n.name + "_Cont"));
  }
  for (const XamEdge& e : n.edges) {
    if (e.nested()) {
      std::vector<Attribute> sub;
      CollectSchema(e.child, &sub);
      attrs->push_back(
          Attribute::Collection(nodes_[e.child].name, Schema::Make(sub)));
    } else {
      CollectSchema(e.child, attrs);
    }
  }
}

SchemaPtr Xam::ViewSchema() const {
  std::vector<Attribute> attrs;
  CollectSchema(kXamRoot, &attrs);
  return Schema::Make(std::move(attrs));
}

bool Xam::StructurallyEquals(const Xam& other) const {
  if (size() != other.size() || ordered_ != other.ordered_) return false;
  // Compare in parallel pre-order walks; child order matters.
  std::vector<XamNodeId> a = PreOrder();
  std::vector<XamNodeId> b = other.PreOrder();
  for (size_t i = 0; i < a.size(); ++i) {
    const XamNode& x = nodes_[a[i]];
    const XamNode& y = other.nodes_[b[i]];
    if (x.is_attribute != y.is_attribute || x.stores_id != y.stores_id ||
        x.id_kind != y.id_kind || x.id_required != y.id_required ||
        x.stores_tag != y.stores_tag || x.tag_required != y.tag_required ||
        x.tag_value != y.tag_value || x.stores_val != y.stores_val ||
        x.val_required != y.val_required ||
        x.stores_cont != y.stores_cont ||
        x.edges.size() != y.edges.size()) {
      return false;
    }
    if (!x.val_formula.EquivalentTo(y.val_formula)) return false;
    for (size_t j = 0; j < x.edges.size(); ++j) {
      if (x.edges[j].axis != y.edges[j].axis ||
          x.edges[j].variant != y.edges[j].variant) {
        return false;
      }
    }
  }
  return true;
}

void Xam::Render(XamNodeId id, int indent, std::string* out) const {
  const XamNode& n = nodes_[id];
  out->append(indent * 2, ' ');
  if (id == kXamRoot) {
    *out += "⊤";
  } else {
    const XamEdge& e = IncomingEdge(id);
    *out += e.axis == Axis::kChild ? "/" : "//";
    switch (e.variant) {
      case JoinVariant::kInner:
        break;
      case JoinVariant::kSemi:
        *out += "s";
        break;
      case JoinVariant::kLeftOuter:
        *out += "o";
        break;
      case JoinVariant::kNestJoin:
        *out += "nj";
        break;
      case JoinVariant::kNestOuter:
        *out += "no";
        break;
    }
    *out += " " + n.name + ":";
    if (n.is_wildcard()) {
      *out += n.is_attribute ? "@*" : "*";
    } else {
      *out += n.tag_value;
    }
    std::string specs;
    if (n.stores_id) {
      specs += " id=";
      specs += IdKindCode(n.id_kind);
      if (n.id_required) specs += "!";
    }
    if (n.stores_tag) {
      specs += " tag";
      if (n.tag_required) specs += "!";
    }
    if (n.stores_val) {
      specs += " val";
      if (n.val_required) specs += "!";
    }
    if (!n.val_formula.IsTrue()) {
      specs += " [" + n.val_formula.ToString() + "]";
    }
    if (n.stores_cont) specs += " cont";
    *out += specs;
  }
  *out += "\n";
  for (const XamEdge& e : n.edges) Render(e.child, indent + 1, out);
}

std::string Xam::ToString() const {
  std::string out;
  if (ordered_) out += "(ordered)\n";
  Render(kXamRoot, 0, &out);
  return out;
}

}  // namespace uload
