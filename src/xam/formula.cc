#include "xam/formula.h"

#include <algorithm>

namespace uload {
namespace {

// Compares two bounds when used as *lower* bounds: smaller value first;
// at equal values, inclusive before exclusive.
int CompareLo(const AtomicValue& av, bool ainc, bool ainf,
              const AtomicValue& bv, bool binc, bool binf) {
  if (ainf && binf) return 0;
  if (ainf) return -1;
  if (binf) return 1;
  int c = AtomicValue::Compare(av, bv);
  if (c != 0) return c;
  if (ainc == binc) return 0;
  return ainc ? -1 : 1;
}

}  // namespace

ValueFormula::ValueFormula() {
  intervals_.push_back(
      Interval{Bound{{}, false, true}, Bound{{}, false, true}});
}

ValueFormula ValueFormula::True() { return ValueFormula(); }

ValueFormula ValueFormula::False() {
  ValueFormula f;
  f.intervals_.clear();
  return f;
}

ValueFormula ValueFormula::Atom(Comparator cmp, const AtomicValue& c) {
  ValueFormula f = False();
  Bound minus_inf{{}, false, true};
  Bound plus_inf{{}, false, true};
  switch (cmp) {
    case Comparator::kEq:
      f.intervals_.push_back(Interval{Bound{c, true, false},
                                      Bound{c, true, false}});
      break;
    case Comparator::kNe:
      f.intervals_.push_back(Interval{minus_inf, Bound{c, false, false}});
      f.intervals_.push_back(Interval{Bound{c, false, false}, plus_inf});
      break;
    case Comparator::kLt:
      f.intervals_.push_back(Interval{minus_inf, Bound{c, false, false}});
      break;
    case Comparator::kLe:
      f.intervals_.push_back(Interval{minus_inf, Bound{c, true, false}});
      break;
    case Comparator::kGt:
      f.intervals_.push_back(Interval{Bound{c, false, false}, plus_inf});
      break;
    case Comparator::kGe:
      f.intervals_.push_back(Interval{Bound{c, true, false}, plus_inf});
      break;
    default:
      // Structural/contains comparators are not value formulas; treat as T
      // (no constraint) — callers never pass them.
      return True();
  }
  return f;
}

bool ValueFormula::IsTrue() const {
  return intervals_.size() == 1 && intervals_[0].lo.infinite &&
         intervals_[0].hi.infinite;
}

bool ValueFormula::IsFalse() const { return intervals_.empty(); }

bool ValueFormula::IntervalEmpty(const Interval& iv) {
  if (iv.lo.infinite || iv.hi.infinite) return false;
  int c = AtomicValue::Compare(iv.lo.value, iv.hi.value);
  if (c > 0) return true;
  if (c == 0) return !(iv.lo.inclusive && iv.hi.inclusive);
  return false;
}

bool ValueFormula::TouchOrOverlap(const Interval& a, const Interval& b) {
  // Assumes a.lo <= b.lo. They touch/overlap unless a.hi < b.lo strictly.
  if (a.hi.infinite || b.lo.infinite) return true;
  int c = AtomicValue::Compare(a.hi.value, b.lo.value);
  if (c > 0) return true;
  if (c < 0) return false;
  // Equal endpoint: merged iff at least one side includes it. (Over a dense
  // order (v < c) ∨ (v > c) is still not everything, so exclusive+exclusive
  // does not merge.)
  return a.hi.inclusive || b.lo.inclusive;
}

void ValueFormula::Normalize() {
  std::vector<Interval> in;
  in.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    if (!IntervalEmpty(iv)) in.push_back(iv);
  }
  std::sort(in.begin(), in.end(), [](const Interval& a, const Interval& b) {
    return CompareLo(a.lo.value, a.lo.inclusive, a.lo.infinite, b.lo.value,
                     b.lo.inclusive, b.lo.infinite) < 0;
  });
  std::vector<Interval> out;
  for (Interval& iv : in) {
    if (out.empty() || !TouchOrOverlap(out.back(), iv)) {
      out.push_back(iv);
      continue;
    }
    // Merge: extend hi if iv.hi is greater.
    Interval& last = out.back();
    bool extend = false;
    if (iv.hi.infinite) {
      extend = !last.hi.infinite;
    } else if (!last.hi.infinite) {
      int c = AtomicValue::Compare(last.hi.value, iv.hi.value);
      extend = c < 0 || (c == 0 && !last.hi.inclusive && iv.hi.inclusive);
    }
    if (extend) last.hi = iv.hi;
  }
  intervals_ = std::move(out);
}

ValueFormula ValueFormula::And(const ValueFormula& other) const {
  ValueFormula f = False();
  for (const Interval& a : intervals_) {
    for (const Interval& b : other.intervals_) {
      Interval iv;
      // lo = max(a.lo, b.lo) as lower bounds (later / more restrictive).
      int c = CompareLo(a.lo.value, a.lo.inclusive, a.lo.infinite, b.lo.value,
                        b.lo.inclusive, b.lo.infinite);
      iv.lo = c >= 0 ? a.lo : b.lo;
      // hi = min(a.hi, b.hi): for upper bounds, smaller value first; at
      // equal values exclusive is more restrictive.
      auto hi_less = [](const Bound& x, const Bound& y) {
        if (x.infinite) return false;
        if (y.infinite) return true;
        int cc = AtomicValue::Compare(x.value, y.value);
        if (cc != 0) return cc < 0;
        return !x.inclusive && y.inclusive;
      };
      iv.hi = hi_less(a.hi, b.hi) ? a.hi : b.hi;
      if (!IntervalEmpty(iv)) f.intervals_.push_back(iv);
    }
  }
  f.Normalize();
  return f;
}

ValueFormula ValueFormula::Or(const ValueFormula& other) const {
  ValueFormula f = *this;
  f.intervals_.insert(f.intervals_.end(), other.intervals_.begin(),
                      other.intervals_.end());
  f.Normalize();
  return f;
}

ValueFormula ValueFormula::Not() const {
  // Complement of a sorted disjoint union: the gaps.
  ValueFormula f = False();
  Bound cursor{{}, false, true};  // -inf
  bool cursor_at_minus_inf = true;
  for (const Interval& iv : intervals_) {
    // Gap (cursor, iv.lo).
    Interval gap;
    gap.lo = cursor;
    if (!cursor_at_minus_inf) {
      // cursor holds the previous hi: the gap starts just after it.
      gap.lo.inclusive = !cursor.inclusive;
      gap.lo.infinite = false;
    }
    if (iv.lo.infinite) {
      // No gap before an interval starting at -inf.
    } else {
      gap.hi = Bound{iv.lo.value, !iv.lo.inclusive, false};
      if (!IntervalEmpty(gap)) f.intervals_.push_back(gap);
    }
    if (iv.hi.infinite) return f;  // covered to +inf
    cursor = iv.hi;
    cursor_at_minus_inf = false;
  }
  Interval tail;
  tail.lo = cursor;
  if (!cursor_at_minus_inf) {
    tail.lo.inclusive = !cursor.inclusive;
    tail.lo.infinite = false;
  }
  tail.hi = Bound{{}, false, true};
  f.intervals_.push_back(tail);
  f.Normalize();
  return f;
}

bool ValueFormula::Implies(const ValueFormula& other) const {
  return And(other.Not()).IsFalse();
}

bool ValueFormula::EquivalentTo(const ValueFormula& other) const {
  return Implies(other) && other.Implies(*this);
}

bool ValueFormula::SatisfiedBy(const AtomicValue& v) const {
  for (const Interval& iv : intervals_) {
    bool lo_ok = iv.lo.infinite;
    if (!lo_ok) {
      int c = AtomicValue::Compare(v, iv.lo.value);
      lo_ok = c > 0 || (c == 0 && iv.lo.inclusive);
    }
    if (!lo_ok) continue;
    bool hi_ok = iv.hi.infinite;
    if (!hi_ok) {
      int c = AtomicValue::Compare(v, iv.hi.value);
      hi_ok = c < 0 || (c == 0 && iv.hi.inclusive);
    }
    if (hi_ok) return true;
  }
  return false;
}

AtomicValue ValueFormula::Witness() const {
  if (intervals_.empty()) return AtomicValue::Null();
  const Interval& iv = intervals_[0];
  if (!iv.lo.infinite && iv.lo.inclusive) return iv.lo.value;
  if (!iv.hi.infinite && iv.hi.inclusive) return iv.hi.value;
  if (!iv.lo.infinite && !iv.hi.infinite) {
    // Open interval: midpoint when numeric, else extend the lo string.
    if (iv.lo.value.is_number() && iv.hi.value.is_number()) {
      return AtomicValue::Number(
          (iv.lo.value.as_number() + iv.hi.value.as_number()) / 2);
    }
    if (iv.lo.value.is_string()) {
      return AtomicValue::String(iv.lo.value.as_string() + "a");
    }
  }
  if (!iv.lo.infinite) {
    // (c, +inf): c + 1 numerically, or c + "a" for strings.
    if (iv.lo.value.is_number()) {
      return AtomicValue::Number(iv.lo.value.as_number() + 1);
    }
    return AtomicValue::String(iv.lo.value.as_string() + "a");
  }
  if (!iv.hi.infinite) {
    // (-inf, c): c - 1 numerically, else the empty string (minimal string).
    if (iv.hi.value.is_number()) {
      return AtomicValue::Number(iv.hi.value.as_number() - 1);
    }
    return AtomicValue::Number(-1e18);
  }
  return AtomicValue::Number(0);  // whole domain
}

std::string ValueFormula::ToString() const {
  if (IsTrue()) return "T";
  if (IsFalse()) return "F";
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    if (i > 0) out += " ∨ ";
    if (!iv.lo.infinite && !iv.hi.infinite &&
        AtomicValue::Compare(iv.lo.value, iv.hi.value) == 0) {
      out += "v=" + iv.lo.value.ToString();
      continue;
    }
    std::string part;
    if (!iv.lo.infinite) {
      part += "v" + std::string(iv.lo.inclusive ? ">=" : ">") +
              iv.lo.value.ToString();
    }
    if (!iv.hi.infinite) {
      if (!part.empty()) part += " ∧ ";
      part += "v" + std::string(iv.hi.inclusive ? "<=" : "<") +
              iv.hi.value.ToString();
    }
    out += part;
  }
  return out;
}

PredicatePtr ValueFormula::ToPredicate(const std::string& attr) const {
  if (IsTrue()) return Predicate::True();
  if (IsFalse()) return Predicate::Not(Predicate::True());
  PredicatePtr out;
  for (const Interval& iv : intervals_) {
    PredicatePtr part;
    if (!iv.lo.infinite && !iv.hi.infinite &&
        AtomicValue::Compare(iv.lo.value, iv.hi.value) == 0) {
      part = Predicate::CompareConst(attr, Comparator::kEq, iv.lo.value);
    } else {
      if (!iv.lo.infinite) {
        part = Predicate::CompareConst(
            attr, iv.lo.inclusive ? Comparator::kGe : Comparator::kGt,
            iv.lo.value);
      }
      if (!iv.hi.infinite) {
        PredicatePtr hi = Predicate::CompareConst(
            attr, iv.hi.inclusive ? Comparator::kLe : Comparator::kLt,
            iv.hi.value);
        part = part ? Predicate::And(std::move(part), std::move(hi))
                    : std::move(hi);
      }
    }
    if (!part) part = Predicate::True();
    out = out ? Predicate::Or(std::move(out), std::move(part))
              : std::move(part);
  }
  return out;
}

bool ValueFormula::IsSingleEquality(AtomicValue* c) const {
  if (intervals_.size() != 1) return false;
  const Interval& iv = intervals_[0];
  if (iv.lo.infinite || iv.hi.infinite) return false;
  if (AtomicValue::Compare(iv.lo.value, iv.hi.value) != 0) return false;
  if (!iv.lo.inclusive || !iv.hi.inclusive) return false;
  if (c != nullptr) *c = iv.lo.value;
  return true;
}

bool ValueFormula::IsSingleInterval(AtomicValue* lo, bool* lo_inclusive,
                                    bool* has_lo, AtomicValue* hi,
                                    bool* hi_inclusive, bool* has_hi) const {
  if (intervals_.size() != 1) return false;
  const Interval& iv = intervals_[0];
  *has_lo = !iv.lo.infinite;
  if (*has_lo) {
    *lo = iv.lo.value;
    *lo_inclusive = iv.lo.inclusive;
  }
  *has_hi = !iv.hi.infinite;
  if (*has_hi) {
    *hi = iv.hi.value;
    *hi_inclusive = iv.hi.inclusive;
  }
  return true;
}

bool ValueFormula::IsSingleExclusion(AtomicValue* c) const {
  if (intervals_.size() != 2) return false;
  const Interval& below = intervals_[0];
  const Interval& above = intervals_[1];
  if (!below.lo.infinite || below.hi.infinite || below.hi.inclusive) {
    return false;
  }
  if (above.lo.infinite || !above.hi.infinite || above.lo.inclusive) {
    return false;
  }
  if (AtomicValue::Compare(below.hi.value, above.lo.value) != 0) return false;
  if (c != nullptr) *c = below.hi.value;
  return true;
}

}  // namespace uload
