#include "storage/columnar/string_dict.h"

#include <limits>

#include "storage/columnar/varint.h"

namespace uload {

StringDict::StringDict() {
  offsets_ = {0, 0};  // id 0 = ""
  intern_.emplace("", 0);
}

uint32_t StringDict::Intern(std::string_view s) {
  auto it = intern_.find(std::string(s));
  if (it != intern_.end()) return it->second;
  uint32_t id = size();
  owned_blob_.append(s);
  offsets_.push_back(static_cast<uint32_t>(owned_blob_.size()));
  intern_.emplace(std::string(s), id);
  return id;
}

int64_t StringDict::ApproximateBytes() const {
  return static_cast<int64_t>(offsets_.size() * sizeof(uint32_t)) +
         blob_size();
}

void StringDict::EncodeOffsets(std::string* out) const {
  PutVarint(size(), out);
  PutDeltaVarints(offsets_, out);
}

Result<StringDict> StringDict::FromEncoded(const uint8_t* offsets,
                                           size_t offsets_size,
                                           const char* blob,
                                           size_t blob_size) {
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetVarint(offsets, offsets_size, &pos, &count)) {
    return Status::ParseError("string dictionary: truncated count");
  }
  if (count > std::numeric_limits<uint32_t>::max() - 1) {
    return Status::ParseError("string dictionary: count out of range");
  }
  StringDict d;
  d.intern_.clear();
  if (!GetDeltaVarints(offsets, offsets_size, &pos,
                       static_cast<size_t>(count) + 1, blob_size,
                       &d.offsets_)) {
    return Status::ParseError("string dictionary: truncated offsets");
  }
  if (pos != offsets_size) {
    return Status::ParseError("string dictionary: trailing offset bytes");
  }
  if (d.offsets_.front() != 0 || d.offsets_.back() != blob_size) {
    return Status::ParseError("string dictionary: offsets do not span blob");
  }
  d.external_blob_ = blob;
  return d;
}

}  // namespace uload
