// Persisted columnar format: header + section table + checksummed payload
// sections, loaded by mmap.
//
// File layout (all integers little-endian):
//
//   [0..7]    magic "ULDCOL1\0"
//   [8..11]   u32 version (currently 1)
//   [12..15]  u32 section count
//   [16..23]  u64 row count
//   [24..31]  u64 total file size (truncation tripwire)
//   then `section count` table entries of 32 bytes each:
//       u32 section id, u32 reserved, u64 offset, u64 length,
//       u64 FNV-1a checksum of the payload bytes
//   then the payload sections, each starting at an 8-byte-aligned offset.
//
// Sections: the two string dictionaries (delta+varint offsets + raw blob),
// the fixed-width per-row columns (raw little-endian arrays, referenced in
// place by the loader), the per-summary-node chunk index (sorted row lists,
// delta+varint), and the serialized PathSummary. Loading validates magic,
// version, bounds, alignment, per-section checksums, dictionary-id ranges
// and parent-link structure before handing out a document — a truncated or
// corrupted file yields a clean Status, never UB.
#ifndef ULOAD_STORAGE_COLUMNAR_COLUMNAR_FORMAT_H_
#define ULOAD_STORAGE_COLUMNAR_COLUMNAR_FORMAT_H_

#include <string>

#include "common/status.h"
#include "storage/columnar/columnar_document.h"

namespace uload {

inline constexpr uint32_t kColumnarFormatVersion = 1;

// A loaded store plus the persisted catalog metadata that rides with it.
struct LoadedColumnar {
  ColumnarDocument document;
  // PathSummary::Serialize() payload ("" when none was saved).
  std::string summary_text;
};

// Writes `doc` (and `summary_text`, normally PathSummary::Serialize()) to
// `path`, replacing any existing file.
Status SaveColumnar(const ColumnarDocument& doc,
                    const std::string& summary_text, const std::string& path);

// Maps `path` and validates it; the returned document serves fixed-width
// columns and dictionary blobs directly out of the mapping.
Result<LoadedColumnar> LoadColumnar(const std::string& path);

}  // namespace uload

#endif  // ULOAD_STORAGE_COLUMNAR_COLUMNAR_FORMAT_H_
