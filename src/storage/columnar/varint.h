// LEB128 varint and delta+varint codecs for the columnar store.
//
// Sorted ID columns (per-summary-node chunk row lists, string-dictionary
// offset arrays) compress as first-differences in unsigned LEB128: dense
// ascending runs cost ~1 byte per entry. Decoders are bounds-checked and
// never read past the supplied buffer — the on-disk loader feeds them
// untrusted bytes (storage/columnar/columnar_format.h).
#ifndef ULOAD_STORAGE_COLUMNAR_VARINT_H_
#define ULOAD_STORAGE_COLUMNAR_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace uload {

inline void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Reads one varint from [*pos, size); advances *pos. Returns false on
// truncation or on an over-long encoding (> 10 bytes).
inline bool GetVarint(const uint8_t* data, size_t size, size_t* pos,
                      uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < size && shift < 64) {
    uint8_t b = data[*pos];
    ++(*pos);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Appends a non-decreasing sequence as delta-encoded varints (count is not
// written; callers frame it).
template <typename T>
void PutDeltaVarints(const std::vector<T>& values, std::string* out) {
  uint64_t prev = 0;
  for (T v : values) {
    uint64_t u = static_cast<uint64_t>(v);
    PutVarint(u - prev, out);
    prev = u;
  }
}

// Streaming decoder for a delta-encoded non-decreasing sequence.
class DeltaVarintReader {
 public:
  DeltaVarintReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  // Decodes the next value; false on truncation.
  bool Next(uint64_t* out) {
    uint64_t delta = 0;
    if (!GetVarint(data_, size_, &pos_, &delta)) return false;
    prev_ += delta;
    *out = prev_;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t prev_ = 0;
};

// Decodes exactly `count` delta varints into `out`; false on truncation or
// if any decoded value exceeds `max_value`.
template <typename T>
bool GetDeltaVarints(const uint8_t* data, size_t size, size_t* pos,
                     size_t count, uint64_t max_value, std::vector<T>* out) {
  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  for (size_t k = 0; k < count; ++k) {
    uint64_t delta = 0;
    if (!GetVarint(data, size, pos, &delta)) return false;
    prev += delta;
    if (prev > max_value) return false;
    out->push_back(static_cast<T>(prev));
  }
  return true;
}

}  // namespace uload

#endif  // ULOAD_STORAGE_COLUMNAR_VARINT_H_
