// String dictionary for the columnar store: tags/labels and text values are
// stored once and referenced by dense uint32 ids.
//
// Two modes share one class:
//  * build mode (Intern) — owns its blob and an intern map;
//  * read mode (FromEncoded) — offsets decoded from delta+varint bytes, the
//    character blob referenced in place (e.g. inside an mmap'ed file), so
//    loading a persisted dictionary copies no string data.
#ifndef ULOAD_STORAGE_COLUMNAR_STRING_DICT_H_
#define ULOAD_STORAGE_COLUMNAR_STRING_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace uload {

class StringDict {
 public:
  // Build mode; id 0 is always the empty string.
  StringDict();

  // Returns the id of `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  uint32_t size() const { return static_cast<uint32_t>(offsets_.size() - 1); }
  std::string_view at(uint32_t id) const {
    return std::string_view(data() + offsets_[id],
                            offsets_[id + 1] - offsets_[id]);
  }

  // Owned + referenced footprint (offsets, blob, intern map keys).
  int64_t ApproximateBytes() const;
  // Blob bytes only (the payload a persisted file carries).
  int64_t blob_size() const {
    return static_cast<int64_t>(offsets_.empty() ? 0 : offsets_.back());
  }

  // --- Persistence ---------------------------------------------------------

  // Appends the offsets section: varint count, then the count+1 start
  // offsets delta+varint encoded (offset 0 first, blob size last).
  void EncodeOffsets(std::string* out) const;
  // The character blob section (raw bytes).
  std::string_view blob() const { return std::string_view(data(), size_t(blob_size())); }

  // Read mode over persisted sections. `blob` is referenced, not copied, and
  // must outlive the dictionary. Fails cleanly on truncated or inconsistent
  // offsets (non-ascending, not ending at blob size, trailing bytes).
  static Result<StringDict> FromEncoded(const uint8_t* offsets,
                                        size_t offsets_size, const char* blob,
                                        size_t blob_size);

 private:
  // Build mode keeps external_blob_ null and serves reads out of the growing
  // owned blob; read mode points at the persisted bytes.
  const char* data() const {
    return external_blob_ != nullptr ? external_blob_ : owned_blob_.data();
  }

  std::vector<uint32_t> offsets_;  // size() + 1 entries; offsets_[0] == 0
  std::string owned_blob_;         // build mode only
  const char* external_blob_ = nullptr;  // read mode only
  std::unordered_map<std::string, uint32_t> intern_;  // build mode only
};

}  // namespace uload

#endif  // ULOAD_STORAGE_COLUMNAR_STRING_DICT_H_
