#include "storage/columnar/columnar_format.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "storage/columnar/varint.h"

namespace uload {

static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "the columnar format references on-disk columns in place and "
              "assumes a little-endian host");

namespace {

constexpr char kMagic[8] = {'U', 'L', 'D', 'C', 'O', 'L', '1', '\0'};
constexpr size_t kHeaderSize = 32;
constexpr size_t kTableEntrySize = 32;

enum SectionId : uint32_t {
  kSecLabelDictOffsets = 1,
  kSecLabelDictBlob = 2,
  kSecValueDictOffsets = 3,
  kSecValueDictBlob = 4,
  kSecKind = 5,
  kSecPost = 6,
  kSecDepth = 7,
  kSecParent = 8,
  kSecOrdinal = 9,
  kSecPath = 10,
  kSecLabelIds = 11,
  kSecValueIds = 12,
  kSecChunkIndex = 13,
  kSecSummary = 14,
};
constexpr uint32_t kSectionCount = 14;

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
std::string RawColumn(const T* data, int64_t n) {
  return std::string(reinterpret_cast<const char*>(data),
                     static_cast<size_t>(n) * sizeof(T));
}

struct SectionView {
  const uint8_t* data = nullptr;
  uint64_t length = 0;
};

}  // namespace

// Accessor for ColumnarDocument internals; declared friend in
// columnar_document.h.
class ColumnarFormatIO {
 public:
  static Status Save(const ColumnarDocument& d, const std::string& summary,
                     const std::string& path) {
    const int64_t n = d.n_;
    std::vector<std::pair<uint32_t, std::string>> sections;
    sections.reserve(kSectionCount);

    std::string label_off;
    d.labels_.EncodeOffsets(&label_off);
    sections.emplace_back(kSecLabelDictOffsets, std::move(label_off));
    sections.emplace_back(kSecLabelDictBlob, std::string(d.labels_.blob()));
    std::string value_off;
    d.values_.EncodeOffsets(&value_off);
    sections.emplace_back(kSecValueDictOffsets, std::move(value_off));
    sections.emplace_back(kSecValueDictBlob, std::string(d.values_.blob()));

    sections.emplace_back(kSecKind, RawColumn(d.kind_.data, n));
    sections.emplace_back(kSecPost, RawColumn(d.post_.data, n));
    sections.emplace_back(kSecDepth, RawColumn(d.depth_.data, n));
    sections.emplace_back(kSecParent, RawColumn(d.parent_.data, n));
    sections.emplace_back(kSecOrdinal, RawColumn(d.ordinal_.data, n));
    sections.emplace_back(kSecPath, RawColumn(d.path_.data, n));
    sections.emplace_back(kSecLabelIds, RawColumn(d.label_id_.data, n));
    sections.emplace_back(kSecValueIds, RawColumn(d.value_id_.data, n));

    // Chunk index: per summary node, the sorted row (pre) list delta+varint
    // compressed — the dense chunks of path-partitioned storage cost ~1
    // byte per row.
    std::string chunks;
    int32_t limit = d.path_id_limit();
    PutVarint(static_cast<uint64_t>(limit), &chunks);
    for (int32_t p = 0; p < limit; ++p) {
      int64_t sz = d.chunk_size(p);
      PutVarint(static_cast<uint64_t>(sz), &chunks);
      uint64_t prev = 0;
      const NodeIndex* rows = d.chunk_data(p);
      for (int64_t k = 0; k < sz; ++k) {
        uint64_t v = static_cast<uint64_t>(rows[k]);
        PutVarint(v - prev, &chunks);
        prev = v;
      }
    }
    sections.emplace_back(kSecChunkIndex, std::move(chunks));
    sections.emplace_back(kSecSummary, summary);

    // Assemble: header, table, aligned payloads.
    std::string table;
    std::string payload;
    uint64_t base = kHeaderSize + kTableEntrySize * sections.size();
    for (auto& [id, bytes] : sections) {
      while ((base + payload.size()) % 8 != 0) payload.push_back('\0');
      uint64_t offset = base + payload.size();
      PutU32(id, &table);
      PutU32(0, &table);
      PutU64(offset, &table);
      PutU64(bytes.size(), &table);
      PutU64(Fnv1a(reinterpret_cast<const uint8_t*>(bytes.data()),
                   bytes.size()),
             &table);
      payload += bytes;
    }
    std::string header;
    header.append(kMagic, sizeof(kMagic));
    PutU32(kColumnarFormatVersion, &header);
    PutU32(static_cast<uint32_t>(sections.size()), &header);
    PutU64(static_cast<uint64_t>(n), &header);
    PutU64(base + payload.size(), &header);

    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("cannot write '" + path + "'");
    }
    bool ok = std::fwrite(header.data(), 1, header.size(), f) ==
                  header.size() &&
              std::fwrite(table.data(), 1, table.size(), f) == table.size() &&
              (payload.empty() ||
               std::fwrite(payload.data(), 1, payload.size(), f) ==
                   payload.size());
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) return Status::Internal("short write to '" + path + "'");
    return Status::Ok();
  }

  static Result<LoadedColumnar> Load(const std::string& path) {
    ULOAD_ASSIGN_OR_RETURN(MmapFile map, MmapFile::Open(path));
    const uint8_t* b = map.data();
    const size_t size = map.size();
    if (size < kHeaderSize) {
      return Status::ParseError("columnar file: truncated header");
    }
    if (std::memcmp(b, kMagic, sizeof(kMagic)) != 0) {
      return Status::ParseError("columnar file: bad magic");
    }
    uint32_t version = ReadU32(b + 8);
    if (version != kColumnarFormatVersion) {
      return Status::ParseError("columnar file: unsupported version " +
                                std::to_string(version));
    }
    uint32_t nsec = ReadU32(b + 12);
    uint64_t rows = ReadU64(b + 16);
    uint64_t declared_size = ReadU64(b + 24);
    if (declared_size != size) {
      return Status::ParseError("columnar file: size mismatch (truncated?)");
    }
    if (nsec != kSectionCount) {
      return Status::ParseError("columnar file: unexpected section count");
    }
    if (rows < 1 ||
        rows > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
      return Status::ParseError("columnar file: row count out of range");
    }
    const int64_t n = static_cast<int64_t>(rows);
    uint64_t table_end = kHeaderSize + uint64_t{kTableEntrySize} * nsec;
    if (table_end > size) {
      return Status::ParseError("columnar file: truncated section table");
    }

    SectionView secs[kSectionCount + 1];
    bool seen[kSectionCount + 1] = {false};
    for (uint32_t s = 0; s < nsec; ++s) {
      const uint8_t* e = b + kHeaderSize + kTableEntrySize * s;
      uint32_t id = ReadU32(e);
      uint64_t offset = ReadU64(e + 8);
      uint64_t length = ReadU64(e + 16);
      uint64_t checksum = ReadU64(e + 24);
      if (id < 1 || id > kSectionCount) {
        return Status::ParseError("columnar file: unknown section id " +
                                  std::to_string(id));
      }
      if (seen[id]) {
        return Status::ParseError("columnar file: duplicate section");
      }
      if (offset % 8 != 0 || offset < table_end || offset > size ||
          length > size - offset) {
        return Status::ParseError("columnar file: section out of bounds");
      }
      if (Fnv1a(b + offset, length) != checksum) {
        return Status::ParseError("columnar file: section checksum mismatch");
      }
      seen[id] = true;
      secs[id] = SectionView{b + offset, length};
    }
    for (uint32_t id = 1; id <= kSectionCount; ++id) {
      if (!seen[id]) {
        return Status::ParseError("columnar file: missing section " +
                                  std::to_string(id));
      }
    }

    auto expect_len = [&](SectionId id, uint64_t want) -> Status {
      if (secs[id].length != want) {
        return Status::ParseError("columnar file: column length mismatch");
      }
      return Status::Ok();
    };
    ULOAD_RETURN_NOT_OK(expect_len(kSecKind, rows));
    for (SectionId id : {kSecPost, kSecDepth, kSecParent, kSecOrdinal,
                         kSecPath, kSecLabelIds, kSecValueIds}) {
      ULOAD_RETURN_NOT_OK(expect_len(id, rows * 4));
    }

    ColumnarDocument d;
    d.n_ = n;
    ULOAD_ASSIGN_OR_RETURN(
        d.labels_,
        StringDict::FromEncoded(
            secs[kSecLabelDictOffsets].data, secs[kSecLabelDictOffsets].length,
            reinterpret_cast<const char*>(secs[kSecLabelDictBlob].data),
            secs[kSecLabelDictBlob].length));
    ULOAD_ASSIGN_OR_RETURN(
        d.values_,
        StringDict::FromEncoded(
            secs[kSecValueDictOffsets].data, secs[kSecValueDictOffsets].length,
            reinterpret_cast<const char*>(secs[kSecValueDictBlob].data),
            secs[kSecValueDictBlob].length));

    d.kind_.SetExternal(secs[kSecKind].data);
    d.post_.SetExternal(reinterpret_cast<const uint32_t*>(secs[kSecPost].data));
    d.depth_.SetExternal(
        reinterpret_cast<const uint32_t*>(secs[kSecDepth].data));
    d.parent_.SetExternal(
        reinterpret_cast<const int32_t*>(secs[kSecParent].data));
    d.ordinal_.SetExternal(
        reinterpret_cast<const uint32_t*>(secs[kSecOrdinal].data));
    d.path_.SetExternal(reinterpret_cast<const int32_t*>(secs[kSecPath].data));
    d.label_id_.SetExternal(
        reinterpret_cast<const uint32_t*>(secs[kSecLabelIds].data));
    d.value_id_.SetExternal(
        reinterpret_cast<const uint32_t*>(secs[kSecValueIds].data));

    // Range-check dictionary references and kinds before any accessor runs.
    for (int64_t i = 0; i < n; ++i) {
      if (d.kind_.data[i] > static_cast<uint8_t>(NodeKind::kText)) {
        return Status::ParseError("columnar file: invalid node kind");
      }
      if (d.label_id_.data[i] >= d.labels_.size() ||
          d.value_id_.data[i] >= d.values_.size()) {
        return Status::ParseError("columnar file: dictionary id out of range");
      }
    }

    // Structure (subtree intervals, root, element count) from the parent
    // column — rejects inconsistent links.
    ULOAD_RETURN_NOT_OK(d.BuildStructure());

    // Chunk index: decode, then verify it is exactly the path column's
    // grouping (a mismatched index would give silently wrong chunked scans).
    {
      const uint8_t* cd = secs[kSecChunkIndex].data;
      size_t clen = secs[kSecChunkIndex].length;
      size_t pos = 0;
      uint64_t limit = 0;
      if (!GetVarint(cd, clen, &pos, &limit) || limit > rows) {
        return Status::ParseError("columnar file: bad chunk index header");
      }
      d.chunk_starts_.assign(static_cast<size_t>(limit) + 1, 0);
      d.chunk_rows_.clear();
      for (uint64_t p = 0; p < limit; ++p) {
        uint64_t count = 0;
        if (!GetVarint(cd, clen, &pos, &count) ||
            count > rows - d.chunk_rows_.size()) {
          return Status::ParseError("columnar file: bad chunk size");
        }
        uint64_t prev = 0;
        for (uint64_t k = 0; k < count; ++k) {
          uint64_t delta = 0;
          if (!GetVarint(cd, clen, &pos, &delta)) {
            return Status::ParseError("columnar file: truncated chunk rows");
          }
          prev += delta;
          if (prev >= rows) {
            return Status::ParseError("columnar file: chunk row out of range");
          }
          NodeIndex r = static_cast<NodeIndex>(prev);
          if (d.path_.data[r] != static_cast<int32_t>(p)) {
            return Status::ParseError(
                "columnar file: chunk index disagrees with path column");
          }
          d.chunk_rows_.push_back(r);
        }
        d.chunk_starts_[p + 1] = static_cast<int64_t>(d.chunk_rows_.size());
      }
      if (pos != clen) {
        return Status::ParseError("columnar file: trailing chunk bytes");
      }
      int64_t with_path = 0;
      for (int64_t i = 0; i < n; ++i) {
        int32_t pid = d.path_.data[i];
        if (pid >= 0) {
          if (static_cast<uint64_t>(pid) >= limit) {
            return Status::ParseError(
                "columnar file: path id outside chunk index");
          }
          ++with_path;
        }
      }
      if (with_path != static_cast<int64_t>(d.chunk_rows_.size())) {
        return Status::ParseError("columnar file: chunk index incomplete");
      }
    }

    LoadedColumnar out;
    out.summary_text.assign(
        reinterpret_cast<const char*>(secs[kSecSummary].data),
        secs[kSecSummary].length);
    d.mapping_ = std::move(map);
    out.document = std::move(d);
    return out;
  }
};

Status SaveColumnar(const ColumnarDocument& doc,
                    const std::string& summary_text, const std::string& path) {
  return ColumnarFormatIO::Save(doc, summary_text, path);
}

Result<LoadedColumnar> LoadColumnar(const std::string& path) {
  return ColumnarFormatIO::Load(path);
}

}  // namespace uload
