#include "storage/columnar/columnar_document.h"

#include <algorithm>

#include "xml/serialize.h"

namespace uload {

ColumnarDocument ColumnarDocument::FromDocument(const Document& doc) {
  ColumnarDocument c;
  const int64_t n = doc.size();
  c.n_ = n;
  // Value id 0 is reserved for the empty string; for element rows it doubles
  // as the "no interned value" marker (Value() falls back to the subtree
  // text walk, which yields "" for an empty leaf anyway).
  c.values_.Intern("");
  std::vector<uint8_t> kind(n);
  std::vector<uint32_t> post(n), depth(n), ordinal(n), label_id(n),
      value_id(n);
  std::vector<int32_t> parent(n), path(n);
  for (NodeIndex i = 0; i < n; ++i) {
    const Node& nd = doc.node(i);
    kind[i] = static_cast<uint8_t>(nd.kind);
    post[i] = nd.sid.post;
    depth[i] = nd.sid.depth;
    parent[i] = nd.parent;
    ordinal[i] = nd.ordinal;
    path[i] = nd.path_id;
    label_id[i] = c.labels_.Intern(nd.label);
    value_id[i] = (nd.is_text() || nd.is_attribute())
                      ? c.values_.Intern(nd.value)
                      : 0;
  }
  // Leaf elements (no element children) get their text value interned too:
  // Value() then runs at dictionary speed — the case virtual extents scan —
  // and the common <tag>text</tag> shape dedups against its own text child,
  // so the dictionary barely grows. Elements with element children keep the
  // on-demand subtree walk; storing every ancestor's concatenation would
  // blow the dictionary up by O(depth × text).
  for (NodeIndex i = 0; i < n; ++i) {
    if (kind[i] != static_cast<uint8_t>(NodeKind::kElement)) continue;
    bool leaf = true;
    for (NodeIndex child = doc.node(i).first_child; child != kNoNode;
         child = doc.node(child).next_sibling) {
      if (doc.node(child).is_element()) {
        leaf = false;
        break;
      }
    }
    if (leaf) value_id[i] = c.values_.Intern(doc.Value(i));
  }
  c.kind_.SetOwned(std::move(kind));
  c.post_.SetOwned(std::move(post));
  c.depth_.SetOwned(std::move(depth));
  c.parent_.SetOwned(std::move(parent));
  c.ordinal_.SetOwned(std::move(ordinal));
  c.path_.SetOwned(std::move(path));
  c.label_id_.SetOwned(std::move(label_id));
  c.value_id_.SetOwned(std::move(value_id));
  Status derived = c.BuildStructure();
  (void)derived;  // a finalized Document is structurally consistent
  c.BuildChunkIndexFromPaths();
  return c;
}

Status ColumnarDocument::BuildStructure() {
  subtree_end_.assign(static_cast<size_t>(n_), 0);
  element_count_ = 0;
  root_ = kNoNode;
  if (n_ <= 0) return Status::ParseError("columnar document: no rows");
  if (parent_[0] != kNoNode ||
      kind(0) != NodeKind::kDocument) {
    return Status::ParseError("columnar document: row 0 is not the document");
  }
  // Rows are pre-order, so a node's subtree is a contiguous row interval;
  // recover the interval ends with a parent stack. Inconsistent parent links
  // (forward references, parents not on the ancestor path) fail cleanly.
  std::vector<NodeIndex> stack = {0};
  for (NodeIndex i = 1; i < n_; ++i) {
    NodeIndex p = parent_[i];
    if (p < 0 || p >= i) {
      return Status::ParseError("columnar document: bad parent link");
    }
    while (stack.back() != p) {
      subtree_end_[stack.back()] = i;
      stack.pop_back();
      if (stack.empty()) {
        return Status::ParseError(
            "columnar document: parent not on ancestor path");
      }
    }
    stack.push_back(i);
    if (kind(i) == NodeKind::kElement) ++element_count_;
  }
  while (!stack.empty()) {
    subtree_end_[stack.back()] = static_cast<NodeIndex>(n_);
    stack.pop_back();
  }
  for (NodeIndex c : Children(0)) {
    if (kind(c) == NodeKind::kElement) {
      root_ = c;
      break;
    }
  }
  return Status::Ok();
}

void ColumnarDocument::BuildChunkIndexFromPaths() {
  // Group rows by path_id; rows without a summary annotation fall outside
  // every chunk.
  int32_t limit = 0;
  for (NodeIndex i = 0; i < n_; ++i) {
    if (path_[i] >= limit) limit = path_[i] + 1;
  }
  std::vector<int64_t> counts(static_cast<size_t>(limit) + 1, 0);
  int64_t chunked = 0;
  for (NodeIndex i = 0; i < n_; ++i) {
    if (path_[i] >= 0) {
      ++counts[path_[i]];
      ++chunked;
    }
  }
  chunk_starts_.assign(static_cast<size_t>(limit) + 1, 0);
  for (int32_t p = 0; p < limit; ++p) {
    chunk_starts_[p + 1] = chunk_starts_[p] + counts[p];
  }
  chunk_rows_.assign(static_cast<size_t>(chunked), 0);
  std::vector<int64_t> cursor(chunk_starts_.begin(), chunk_starts_.end() - 1);
  for (NodeIndex i = 0; i < n_; ++i) {
    if (path_[i] >= 0) chunk_rows_[cursor[path_[i]]++] = i;
  }
}

std::vector<NodeIndex> ColumnarDocument::Children(NodeIndex i) const {
  std::vector<NodeIndex> out;
  NodeIndex end = subtree_end_[i];
  for (NodeIndex j = i + 1; j < end; j = subtree_end_[j]) out.push_back(j);
  return out;
}

std::string ColumnarDocument::Value(NodeIndex i) const {
  NodeKind k = kind(i);
  if (k == NodeKind::kText || k == NodeKind::kAttribute) {
    return std::string(raw_value(i));
  }
  // Leaf elements carry their text value in the dictionary (id 0 means
  // "not interned"; the walk below returns "" for those anyway).
  if (value_id_[i] != 0) return std::string(values_.at(value_id_[i]));
  // text() of an element: descendants are the contiguous subtree interval;
  // concatenate its #text rows, skipping attribute subtrees.
  std::string out;
  NodeIndex end = subtree_end_[i];
  for (NodeIndex j = i + 1; j < end;) {
    NodeKind kj = kind(j);
    if (kj == NodeKind::kAttribute) {
      j = subtree_end_[j];
      continue;
    }
    if (kj == NodeKind::kText) out += raw_value(j);
    ++j;
  }
  return out;
}

std::string ColumnarDocument::Content(NodeIndex i) const {
  return SerializeSubtree(*this, i);
}

DeweyId ColumnarDocument::Dewey(NodeIndex i) const {
  DeweyId path;
  NodeIndex cur = i;
  while (cur != kNoNode && kind(cur) != NodeKind::kDocument) {
    path.push_back(ordinal_[cur] + 1);
    cur = parent_[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeIndex> ColumnarDocument::ChunkRows(int32_t path) const {
  if (path < 0 || path >= path_id_limit()) return {};
  return std::vector<NodeIndex>(chunk_data(path),
                                chunk_data(path) + chunk_size(path));
}

ColumnarDocument::BytesBreakdown ColumnarDocument::ApproximateBytesBreakdown()
    const {
  BytesBreakdown b;
  b.column_bytes = n_ * static_cast<int64_t>(
                            sizeof(uint8_t) +     // kind
                            3 * sizeof(uint32_t) +  // post, depth, ordinal
                            2 * sizeof(int32_t) +   // parent, path
                            2 * sizeof(uint32_t) +  // label_id, value_id
                            sizeof(NodeIndex));     // subtree_end (derived)
  b.dict_bytes = labels_.ApproximateBytes() + values_.ApproximateBytes();
  b.chunk_index_bytes =
      static_cast<int64_t>(chunk_starts_.size() * sizeof(int64_t) +
                           chunk_rows_.size() * sizeof(NodeIndex));
  return b;
}

int64_t ColumnarDocument::ApproximateBytes() const {
  BytesBreakdown b = ApproximateBytesBreakdown();
  return b.column_bytes + b.dict_bytes + b.chunk_index_bytes;
}

}  // namespace uload
