// Read-only memory-mapped file (RAII). The persisted columnar format is
// loaded by mapping the file and validating sections in place — restart is
// a map + validate, not a re-parse.
#ifndef ULOAD_STORAGE_COLUMNAR_MMAP_FILE_H_
#define ULOAD_STORAGE_COLUMNAR_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace uload {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Maps `path` read-only. An empty file maps to data() == nullptr, size 0.
  static Result<MmapFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace uload

#endif  // ULOAD_STORAGE_COLUMNAR_MMAP_FILE_H_
