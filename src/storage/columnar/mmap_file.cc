#include "storage/columnar/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace uload {

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, size_t{0});
  }
  return *this;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fstat('" + path +
                            "') failed: " + std::strerror(err));
  }
  MmapFile f;
  f.size_ = static_cast<size_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::Internal("mmap('" + path +
                              "') failed: " + std::strerror(err));
    }
    f.data_ = static_cast<const uint8_t*>(p);
  }
  ::close(fd);  // the mapping keeps the file alive
  return f;
}

}  // namespace uload
