// ColumnarDocument: the column-oriented DocumentStore backend (ROADMAP
// item 2; Arion et al.'s path-partitioned storage adapted to the XAM stack).
//
// The document's nodes live as parallel flat arrays indexed by row (= pre
// label; row 0 is the synthetic #document node): kind, post, depth, parent,
// ordinal, path_id, plus dictionary ids into two string dictionaries (one
// for tags/labels, one for text/attribute values). The pre column itself is
// implicit — rows are stored in pre-order, so the row index is the pre
// label and costs zero bytes.
//
// Rows are additionally partitioned by summary node (path_id): a chunk
// index maps each summary node to its ascending row (pre) list, so a
// tag-derived collection is the merge of a few chunks instead of a scan of
// the whole document. The chunk row lists and dictionary offsets — the
// sorted ID columns — are what the persisted format (columnar_format.h)
// delta+varint compresses.
//
// Instances come from two places: FromDocument() (columns owned by
// vectors) or the mmap-backed loader (fixed-width columns referenced
// directly inside the mapping; the instance keeps the mapping alive).
#ifndef ULOAD_STORAGE_COLUMNAR_COLUMNAR_DOCUMENT_H_
#define ULOAD_STORAGE_COLUMNAR_COLUMNAR_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/columnar/mmap_file.h"
#include "storage/columnar/string_dict.h"
#include "xml/document.h"
#include "xml/document_store.h"

namespace uload {

class ColumnarDocument final : public DocumentStore {
 public:
  // Builds the columnar image of a finalized pointer-tree document. If a
  // PathSummary annotated the document (Node::path_id set), rows are chunked
  // by summary node; otherwise every row lands in no chunk.
  static ColumnarDocument FromDocument(const Document& doc);

  // Empty store (0 rows); only a placeholder target for moves — no accessor
  // may be called before a real store is moved in.
  ColumnarDocument() = default;

  ColumnarDocument(ColumnarDocument&&) = default;
  ColumnarDocument& operator=(ColumnarDocument&&) = default;
  ColumnarDocument(const ColumnarDocument&) = delete;
  ColumnarDocument& operator=(const ColumnarDocument&) = delete;

  // --- DocumentStore -------------------------------------------------------

  std::string_view backend_name() const override { return "columnar"; }
  int64_t size() const override { return n_; }
  NodeIndex root() const override { return root_; }
  int64_t element_count() const override { return element_count_; }

  NodeKind kind(NodeIndex i) const override {
    return static_cast<NodeKind>(kind_[i]);
  }
  std::string_view label(NodeIndex i) const override {
    return labels_.at(label_id_[i]);
  }
  StructuralId sid(NodeIndex i) const override {
    return StructuralId{i == 0 ? 0u : static_cast<uint32_t>(i), post_[i],
                        depth_[i]};
  }
  NodeIndex parent(NodeIndex i) const override { return parent_[i]; }
  uint32_t ordinal(NodeIndex i) const override { return ordinal_[i]; }
  int32_t path_id(NodeIndex i) const override { return path_[i]; }

  std::vector<NodeIndex> Children(NodeIndex i) const override;
  NodeIndex NodeByPre(uint32_t pre) const override {
    if (pre == 0 || static_cast<int64_t>(pre) >= n_) return kNoNode;
    return static_cast<NodeIndex>(pre);
  }
  std::string Value(NodeIndex i) const override;
  std::string Content(NodeIndex i) const override;
  DeweyId Dewey(NodeIndex i) const override;

  int32_t path_id_limit() const override {
    return static_cast<int32_t>(chunk_starts_.size()) - 1;
  }
  std::vector<NodeIndex> ChunkRows(int32_t path) const override;

  int64_t ApproximateBytes() const override;

  // --- Columnar extras (concrete consumers: scans, benches, persistence) ---

  // Exclusive end of i's subtree: descendants are rows (i, subtree_end(i)).
  NodeIndex subtree_end(NodeIndex i) const { return subtree_end_[i]; }
  // Raw stored value of a text/attribute row ("" for elements), served
  // straight out of the value dictionary without copying.
  std::string_view raw_value(NodeIndex i) const {
    return values_.at(value_id_[i]);
  }
  // True when Value(i) is servable at dictionary speed: text/attribute rows
  // always, element rows only when FromDocument interned their leaf value.
  // Virtual extents that emit Val require this of every candidate row;
  // otherwise scanning would redo an O(subtree) text walk per tuple.
  bool cheap_value(NodeIndex i) const {
    return kind(i) != NodeKind::kElement || value_id_[i] != 0;
  }
  // Chunk slice without materializing a vector.
  const NodeIndex* chunk_data(int32_t path) const {
    return chunk_rows_.data() + chunk_starts_[path];
  }
  int64_t chunk_size(int32_t path) const {
    return chunk_starts_[path + 1] - chunk_starts_[path];
  }

  struct BytesBreakdown {
    int64_t column_bytes = 0;       // fixed-width columns
    int64_t dict_bytes = 0;         // both dictionaries (offsets + blobs)
    int64_t chunk_index_bytes = 0;  // path-partitioning index
  };
  BytesBreakdown ApproximateBytesBreakdown() const;

 private:
  friend class ColumnarFormatIO;  // persistence (columnar_format.cc)

  // A fixed-width column either owns its storage (FromDocument, or columns
  // decoded at load) or references bytes inside the mapping. Vector moves
  // keep the heap buffer, so the data pointer survives moves; copying is
  // disabled at the class level.
  template <typename T>
  struct Column {
    const T* data = nullptr;
    std::vector<T> owned;

    void SetOwned(std::vector<T> v) {
      owned = std::move(v);
      data = owned.data();
    }
    void SetExternal(const T* p) {
      owned.clear();
      data = p;
    }
    T operator[](NodeIndex i) const { return data[i]; }
  };

  // Recomputes subtree_end_/root_/element_count_ from the parent column;
  // fails on structurally inconsistent links (loader input is untrusted).
  Status BuildStructure();
  // Groups rows by path_id into the chunk index (builder path; the loader
  // decodes the persisted index instead and cross-checks it).
  void BuildChunkIndexFromPaths();

  int64_t n_ = 0;
  Column<uint8_t> kind_;
  Column<uint32_t> post_;
  Column<uint32_t> depth_;
  Column<int32_t> parent_;
  Column<uint32_t> ordinal_;
  Column<int32_t> path_;
  Column<uint32_t> label_id_;
  Column<uint32_t> value_id_;
  StringDict labels_;
  StringDict values_;

  // Derived (never persisted).
  std::vector<NodeIndex> subtree_end_;
  NodeIndex root_ = kNoNode;
  int64_t element_count_ = 0;

  // Chunk index: rows grouped by path_id, ascending inside each group.
  std::vector<int64_t> chunk_starts_;  // path_id_limit() + 1 entries
  std::vector<NodeIndex> chunk_rows_;

  // Alive only for mmap-loaded instances; columns and dictionary blobs may
  // point into it.
  MmapFile mapping_;
};

}  // namespace uload

#endif  // ULOAD_STORAGE_COLUMNAR_COLUMNAR_DOCUMENT_H_
