// XAM descriptions of the storage models surveyed in thesis §2.1/§2.3:
// relational shreddings (Edge, Universal, Shared/Hybrid-style inlining),
// native stores (node table, structural-id table, tag partitioning, path
// partitioning), non-fragmented content storage, and value indexes. Each
// builder returns the XAM set describing that storage scheme; registering
// the set in a Catalog is all the optimizer needs to use it (§2.1.4).
#ifndef ULOAD_STORAGE_STORAGE_MODELS_H_
#define ULOAD_STORAGE_STORAGE_MODELS_H_

#include <string>
#include <vector>

#include "summary/path_summary.h"
#include "xam/xam.h"

namespace uload {

struct NamedXam {
  std::string name;
  Xam xam;
};

// Node names inside every XAM are prefixed with the view name so that a
// whole model can be registered without clashes.

// Edge model [48]: one tuple per parent-child pair; (ordered) simple ids,
// child tag as data, values in a separate structure.
std::vector<NamedXam> EdgeModel();

// Universal-table flavor: the parent node outerjoined with one optional
// child per distinct tag of the summary.
std::vector<NamedXam> UniversalModel(const PathSummary& summary);

// Native model #1 (Galax-style): a node table with parent ids and a value
// table — modeled as parent/child XAMs over simple ids.
std::vector<NamedXam> NodeTableModel();

// Native model #2: one collection of all elements with structural ids, tag
// and value as data.
std::vector<NamedXam> StructuralIdModel();

// Native model #3 (Timber/Natix-style): structural-id collections
// partitioned by element tag (plus attribute collections).
std::vector<NamedXam> TagPartitionedModel(const PathSummary& summary);

// Native model #4 (XQueC/early-Monet-style): collections partitioned by
// rooted path, using [Tag=c] chains (the "preferred representation" of
// Fig. 2.14(b)); leaves also store values.
std::vector<NamedXam> PathPartitionedModel(const PathSummary& summary);

// Hybrid/Shared-style inlining: for every element path, one view storing
// the element's id plus the values of its 1-annotated (single, always
// present) children — the DTD-driven inlining of [105] expressed on the
// summary.
std::vector<NamedXam> InlinedShreddingModel(const PathSummary& summary);

// Non-fragmented storage of `label` elements: id + full serialized content
// (§2.1.1 "coarse granularity").
NamedXam NonFragmentedStore(const std::string& label);

// Composite-key index: `element_label` ids retrievable by the values of the
// given (required) child labels — booksByYearTitle-style (§2.1.2).
NamedXam ValueIndex(const std::string& element_label,
                    const std::vector<std::string>& key_child_labels);

// A T-index-style materialized view: ids and values of `ret_label` nodes
// below `anc_label` nodes (§2.3.3).
NamedXam TIndex(const std::string& anc_label, const std::string& ret_label);

}  // namespace uload

#endif  // ULOAD_STORAGE_STORAGE_MODELS_H_
