#include "storage/storage_models.h"

#include <set>

namespace uload {
namespace {

// Short helper: new XAM whose nodes are named <prefix>_n1, <prefix>_n2...
class Builder {
 public:
  explicit Builder(std::string prefix) : prefix_(std::move(prefix)) {}

  XamNodeId Add(XamNodeId parent, Axis axis, const std::string& label,
                JoinVariant variant = JoinVariant::kInner) {
    return xam_.AddNode(parent, axis, label, variant, NextName());
  }
  XamNodeId AddAttr(XamNodeId parent, const std::string& name,
                    JoinVariant variant = JoinVariant::kInner) {
    return xam_.AddAttributeNode(parent, name, variant, NextName());
  }
  Xam& xam() { return xam_; }
  Xam Take() { return std::move(xam_); }

 private:
  std::string NextName() {
    return prefix_ + "_n" + std::to_string(++counter_);
  }
  std::string prefix_;
  Xam xam_;
  int counter_ = 0;
};

}  // namespace

std::vector<NamedXam> EdgeModel() {
  // edge(source, target, ordinal, name): parent id + child id + child tag.
  Builder edge("edge");
  XamNodeId parent = edge.Add(kXamRoot, Axis::kDescendant, "");
  edge.xam().StoreId(parent, IdKind::kOrdered);
  XamNodeId child = edge.Add(parent, Axis::kChild, "");
  edge.xam().StoreId(child, IdKind::kOrdered).StoreTag(child);

  // value(vID, value).
  Builder value("edge_value");
  XamNodeId node = value.Add(kXamRoot, Axis::kDescendant, "");
  value.xam().StoreId(node, IdKind::kOrdered).StoreVal(node);

  // Attribute edges.
  Builder attr("edge_attr");
  XamNodeId p2 = attr.Add(kXamRoot, Axis::kDescendant, "");
  attr.xam().StoreId(p2, IdKind::kOrdered);
  XamNodeId a2 = attr.AddAttr(p2, "");
  attr.xam().StoreId(a2, IdKind::kOrdered).StoreTag(a2).StoreVal(a2);

  std::vector<NamedXam> out;
  out.push_back({"edge", edge.Take()});
  out.push_back({"edge_value", value.Take()});
  out.push_back({"edge_attr", attr.Take()});
  return out;
}

std::vector<NamedXam> UniversalModel(const PathSummary& summary) {
  std::set<std::string> tags;
  for (SummaryNodeId id : summary.ElementNodes()) {
    if (id != summary.root()) tags.insert(summary.node(id).label);
  }
  Builder b("universal");
  XamNodeId parent = b.Add(kXamRoot, Axis::kDescendant, "");
  b.xam().StoreId(parent, IdKind::kOrdered).StoreTag(parent);
  for (const std::string& tag : tags) {
    XamNodeId c = b.Add(parent, Axis::kChild, tag, JoinVariant::kLeftOuter);
    b.xam().StoreId(c, IdKind::kOrdered).StoreVal(c);
  }
  return {{"universal", b.Take()}};
}

std::vector<NamedXam> NodeTableModel() {
  // main(ID, parentID, kind, nameID) ~ parent/child pairs over simple ids,
  // with the child's tag and value as data.
  Builder main("node_main");
  XamNodeId parent = main.Add(kXamRoot, Axis::kDescendant, "");
  main.xam().StoreId(parent, IdKind::kSimple);
  XamNodeId child = main.Add(parent, Axis::kChild, "");
  main.xam().StoreId(child, IdKind::kSimple).StoreTag(child);

  Builder text("node_text");
  XamNodeId n = text.Add(kXamRoot, Axis::kDescendant, "");
  text.xam().StoreId(n, IdKind::kSimple).StoreVal(n);

  Builder attrs("node_attr");
  XamNodeId p = attrs.Add(kXamRoot, Axis::kDescendant, "");
  attrs.xam().StoreId(p, IdKind::kSimple);
  XamNodeId a = attrs.AddAttr(p, "");
  attrs.xam().StoreId(a, IdKind::kSimple).StoreTag(a).StoreVal(a);

  std::vector<NamedXam> out;
  out.push_back({"node_main", main.Take()});
  out.push_back({"node_text", text.Take()});
  out.push_back({"node_attr", attrs.Take()});
  return out;
}

std::vector<NamedXam> StructuralIdModel() {
  Builder main("sid_main");
  XamNodeId n = main.Add(kXamRoot, Axis::kDescendant, "");
  main.xam().StoreId(n, IdKind::kStructural).StoreTag(n).StoreVal(n);

  Builder attrs("sid_attr");
  XamNodeId p = attrs.Add(kXamRoot, Axis::kDescendant, "");
  attrs.xam().StoreId(p, IdKind::kStructural);
  XamNodeId a = attrs.AddAttr(p, "");
  attrs.xam().StoreId(a, IdKind::kStructural).StoreTag(a).StoreVal(a);

  std::vector<NamedXam> out;
  out.push_back({"sid_main", main.Take()});
  out.push_back({"sid_attr", attrs.Take()});
  return out;
}

std::vector<NamedXam> TagPartitionedModel(const PathSummary& summary) {
  std::set<std::string> tags;
  std::set<std::string> attr_names;
  for (SummaryNodeId id = 1; id < summary.size(); ++id) {
    const SummaryNode& sn = summary.node(id);
    if (sn.kind == NodeKind::kElement) {
      tags.insert(sn.label);
    } else if (sn.kind == NodeKind::kAttribute) {
      attr_names.insert(sn.label.substr(1));  // drop '@'
    }
  }
  std::vector<NamedXam> out;
  for (const std::string& tag : tags) {
    Builder b("tag_" + tag);
    XamNodeId n = b.Add(kXamRoot, Axis::kDescendant, tag);
    b.xam().StoreId(n, IdKind::kStructural).StoreVal(n);
    out.push_back({"tag_" + tag, b.Take()});
  }
  for (const std::string& name : attr_names) {
    Builder b("tagattr_" + name);
    XamNodeId p = b.Add(kXamRoot, Axis::kDescendant, "");
    b.xam().StoreId(p, IdKind::kStructural);
    XamNodeId a = b.AddAttr(p, name);
    b.xam().StoreId(a, IdKind::kStructural).StoreVal(a);
    out.push_back({"tagattr_" + name, b.Take()});
  }
  return out;
}

std::vector<NamedXam> PathPartitionedModel(const PathSummary& summary) {
  std::vector<NamedXam> out;
  for (SummaryNodeId id = 1; id < summary.size(); ++id) {
    const SummaryNode& sn = summary.node(id);
    if (sn.kind == NodeKind::kText) continue;
    std::string name = "path" + std::to_string(id);
    Builder b(name);
    // Chain of [Tag=c] nodes from the root to this path.
    std::vector<SummaryNodeId> chain;
    for (SummaryNodeId cur = id; cur > 0; cur = summary.node(cur).parent) {
      chain.push_back(cur);
    }
    XamNodeId at = kXamRoot;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const SummaryNode& step = summary.node(*it);
      if (step.kind == NodeKind::kAttribute) {
        at = b.AddAttr(at, step.label.substr(1));
      } else {
        at = b.Add(at, Axis::kChild, step.label);
      }
    }
    b.xam().StoreId(at, IdKind::kStructural).StoreVal(at);
    out.push_back({name, b.Take()});
  }
  return out;
}

std::vector<NamedXam> InlinedShreddingModel(const PathSummary& summary) {
  std::vector<NamedXam> out;
  for (SummaryNodeId id = 1; id < summary.size(); ++id) {
    const SummaryNode& sn = summary.node(id);
    if (sn.kind != NodeKind::kElement) continue;
    std::string name = "rel" + std::to_string(id);
    Builder b(name);
    std::vector<SummaryNodeId> chain;
    for (SummaryNodeId cur = id; cur > 0; cur = summary.node(cur).parent) {
      chain.push_back(cur);
    }
    XamNodeId at = kXamRoot;
    XamNodeId parent_node = kXamRoot;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      parent_node = at;
      at = b.Add(at, Axis::kChild, summary.node(*it).label);
    }
    // The relational foreign key: the immediate parent's id column.
    if (parent_node != kXamRoot) {
      b.xam().StoreId(parent_node, IdKind::kOrdered);
    }
    b.xam().StoreId(at, IdKind::kOrdered);
    // Leaf elements carry their own value (the relational column holding
    // the element text).
    bool has_text_child = false;
    for (SummaryNodeId c : summary.node(id).children) {
      if (summary.node(c).kind == NodeKind::kText) has_text_child = true;
    }
    if (has_text_child) b.xam().StoreVal(at);
    // Inline 1-annotated children's values (single, always present) and
    // attribute values.
    for (SummaryNodeId c : summary.node(id).children) {
      const SummaryNode& cn = summary.node(c);
      if (cn.kind == NodeKind::kAttribute) {
        XamNodeId a = b.AddAttr(at, cn.label.substr(1),
                                JoinVariant::kLeftOuter);
        b.xam().StoreVal(a);
      } else if (cn.kind == NodeKind::kElement &&
                 cn.annotation == EdgeAnnotation::kOne &&
                 summary.node(c).children.size() <= 1) {
        XamNodeId e = b.Add(at, Axis::kChild, cn.label);
        b.xam().StoreVal(e);
      }
    }
    out.push_back({name, b.Take()});
  }
  return out;
}

NamedXam NonFragmentedStore(const std::string& label) {
  std::string name = "blob_" + label;
  Builder b(name);
  XamNodeId n = b.Add(kXamRoot, Axis::kDescendant, label);
  b.xam().StoreId(n, IdKind::kStructural).StoreCont(n);
  return {name, b.Take()};
}

NamedXam ValueIndex(const std::string& element_label,
                    const std::vector<std::string>& key_child_labels) {
  std::string name = "idx_" + element_label;
  for (const std::string& k : key_child_labels) name += "_" + k;
  Builder b(name);
  XamNodeId e = b.Add(kXamRoot, Axis::kDescendant, element_label);
  b.xam().StoreId(e, IdKind::kStructural);
  for (const std::string& k : key_child_labels) {
    XamNodeId c = b.Add(e, Axis::kChild, k);
    b.xam().StoreVal(c, /*required=*/true);
  }
  return {name, b.Take()};
}

NamedXam TIndex(const std::string& anc_label, const std::string& ret_label) {
  std::string name = "tidx_" + anc_label + "_" + ret_label;
  Builder b(name);
  XamNodeId a = b.Add(kXamRoot, Axis::kDescendant, anc_label);
  XamNodeId r = b.Add(a, Axis::kDescendant, ret_label);
  b.xam().StoreId(r, IdKind::kStructural).StoreVal(r);
  return {name, b.Take()};
}

}  // namespace uload
