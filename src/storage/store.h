// Materialized XAMs: a storage structure / index / view described by a XAM
// (thesis Ch. 2) together with its extent over a document, and — for
// R-marked XAMs — an access-path index over the required attributes.
//
// Over the columnar backend, qualifying views do not materialize at all:
// a XAM that is a plain tag/attribute collection (single node under ⊤ via
// //, no predicates, no R markers, no Cont, non-parental id) is kept as a
// *virtual extent* — the store's per-summary-node chunks already are its
// rows, so scans stream straight off the columns and the view costs only a
// compressed row-id list. Everything else falls back to materialization,
// which is correct for any backend. data() materializes a virtual view
// lazily for the oracle paths.
#ifndef ULOAD_STORAGE_STORE_H_
#define ULOAD_STORAGE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/relation.h"
#include "common/status.h"
#include "eval/xam_eval.h"
#include "storage/columnar/columnar_document.h"
#include "xam/xam.h"
#include "xml/document_store.h"

namespace uload {

// True when `xam` is a plain collection pattern a chunked store can serve
// without materialization (see file comment for the exact gate).
bool QualifiesAsVirtualExtent(const Xam& xam);

class MaterializedView {
 public:
  // Evaluates `definition` over `doc` and builds the index when the XAM has
  // R markers (full data is kept: Def. 2.2.6 semantics are computed against
  // [[χ⁰]] restricted by the bindings). Over a ColumnarDocument, qualifying
  // definitions become virtual extents instead (no materialization).
  static Result<MaterializedView> Materialize(std::string name,
                                              Xam definition,
                                              const DocumentStore& doc);

  MaterializedView(MaterializedView&&) = default;
  MaterializedView& operator=(MaterializedView&&) = default;

  const std::string& name() const { return name_; }
  const Xam& definition() const { return definition_; }
  bool access_restricted() const { return definition_.HasRequired(); }

  // The view's extent as a materialized relation. For virtual extents this
  // materializes on first call (thread-safe) — the physical scan paths never
  // call it; the oracle evaluator and index fallbacks do.
  const NestedRelation& data() const;

  // The view schema without materializing (== data().schema_ptr()).
  const SchemaPtr& schema() const { return schema_; }
  // Tuple count without materializing.
  int64_t row_count() const;

  // --- Virtual-extent surface (physical scans; storage/virtual_scan.h) ----

  // Non-null iff this view streams off a columnar store.
  const ColumnarDocument* virtual_store() const { return columnar_; }
  // Decodes the delta+varint row-id list (rows in document order).
  std::vector<NodeIndex> VirtualRows() const;
  // Encoded row-set bytes for streaming decode.
  const std::string& rowset() const { return rowset_; }
  // Which of ID/Tag/Val/Cont the extent emits, and the id representation.
  bool emit_tag() const { return emit_tag_; }
  bool emit_val() const { return emit_val_; }
  IdKind id_kind() const { return id_kind_; }

  // Access for R-marked views: equality bindings over required top-level
  // attributes (attr name -> constant). Uses the hash index when all bound
  // attributes are top-level atoms.
  Result<NestedRelation> Lookup(
      const std::vector<std::pair<std::string, AtomicValue>>& bindings) const;

  // Streaming access path: the row indices of data() matching `bindings`,
  // in storage (document) order. Lookup() is exactly data() restricted to
  // these rows; the physical engine streams them without materializing.
  Result<std::vector<int64_t>> LookupRows(
      const std::vector<std::pair<std::string, AtomicValue>>& bindings) const;

  // Storage footprint estimate in bytes (benchmark reporting); virtual
  // extents report only their row-set — the shared column store is
  // accounted once, at the document level.
  int64_t ApproximateBytes() const;

  // Per-component breakdown so storage-model comparisons stay honest.
  struct StorageBytes {
    int64_t data_bytes = 0;    // materialized tuple payloads
    int64_t index_bytes = 0;   // R-marker hash index
    int64_t rowset_bytes = 0;  // virtual extent's compressed row ids
    bool virtualized = false;
  };
  StorageBytes ApproximateBytesBreakdown() const;

 private:
  MaterializedView() = default;

  void MaterializeNow() const;

  std::string name_;
  Xam definition_;
  SchemaPtr schema_;
  const DocumentStore* doc_ = nullptr;

  // Materialization flag, readable without the mutex (double-checked lock
  // in data(): acquire-load outside, release-store inside data_mu_ once
  // data_ is complete). std::atomic is not movable and views move during
  // single-threaded construction, so wrap it copyable.
  struct AtomicFlag {
    std::atomic<bool> v{false};
    AtomicFlag() = default;
    AtomicFlag(const AtomicFlag& o)
        : v(o.v.load(std::memory_order_acquire)) {}
    AtomicFlag& operator=(const AtomicFlag& o) {
      v.store(o.v.load(std::memory_order_acquire),
              std::memory_order_release);
      return *this;
    }
  };

  // Materialized state; lazy for virtual extents.
  mutable std::unique_ptr<std::mutex> data_mu_ =
      std::make_unique<std::mutex>();
  mutable AtomicFlag materialized_;
  mutable NestedRelation data_;
  // Index: concatenated key over required top-level attrs -> tuple indices.
  std::vector<int> index_attrs_;
  std::unordered_map<std::string, std::vector<int64_t>> index_;

  // Virtual-extent state.
  const ColumnarDocument* columnar_ = nullptr;
  std::string rowset_;  // delta+varint row ids
  int64_t rowset_rows_ = 0;
  bool emit_tag_ = false;
  bool emit_val_ = false;
  IdKind id_kind_ = IdKind::kStructural;
};

}  // namespace uload

#endif  // ULOAD_STORAGE_STORE_H_
