// Materialized XAMs: a storage structure / index / view described by a XAM
// (thesis Ch. 2) together with its extent over a document, and — for
// R-marked XAMs — an access-path index over the required attributes.
#ifndef ULOAD_STORAGE_STORE_H_
#define ULOAD_STORAGE_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/relation.h"
#include "common/status.h"
#include "eval/xam_eval.h"
#include "xam/xam.h"
#include "xml/document.h"

namespace uload {

class MaterializedView {
 public:
  // Evaluates `definition` over `doc` and builds the index when the XAM has
  // R markers (full data is kept: Def. 2.2.6 semantics are computed against
  // [[χ⁰]] restricted by the bindings).
  static Result<MaterializedView> Materialize(std::string name,
                                              Xam definition,
                                              const Document& doc);

  const std::string& name() const { return name_; }
  const Xam& definition() const { return definition_; }
  const NestedRelation& data() const { return data_; }
  bool access_restricted() const { return definition_.HasRequired(); }

  // Access for R-marked views: equality bindings over required top-level
  // attributes (attr name -> constant). Uses the hash index when all bound
  // attributes are top-level atoms.
  Result<NestedRelation> Lookup(
      const std::vector<std::pair<std::string, AtomicValue>>& bindings) const;

  // Streaming access path: the row indices of data() matching `bindings`,
  // in storage (document) order. Lookup() is exactly data() restricted to
  // these rows; the physical engine streams them without materializing.
  Result<std::vector<int64_t>> LookupRows(
      const std::vector<std::pair<std::string, AtomicValue>>& bindings) const;

  // Storage footprint estimate in bytes (benchmark reporting).
  int64_t ApproximateBytes() const;

 private:
  std::string name_;
  Xam definition_;
  NestedRelation data_;
  // Index: concatenated key over required top-level attrs -> tuple indices.
  std::vector<int> index_attrs_;
  std::unordered_map<std::string, std::vector<int64_t>> index_;
};

}  // namespace uload

#endif  // ULOAD_STORAGE_STORE_H_
