#include "storage/catalog.h"

namespace uload {

Status Catalog::Add(MaterializedView view) {
  if (Find(view.name()) != nullptr) {
    return Status::InvalidArgument("duplicate view name '" + view.name() +
                                   "'");
  }
  views_.push_back(std::make_unique<MaterializedView>(std::move(view)));
  return Status::Ok();
}

Status Catalog::AddXam(std::string name, Xam definition,
                       const DocumentStore& doc) {
  ULOAD_ASSIGN_OR_RETURN(
      MaterializedView v,
      MaterializedView::Materialize(std::move(name), std::move(definition),
                                    doc));
  return Add(std::move(v));
}

const MaterializedView* Catalog::Find(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->name() == name) return v.get();
  }
  return nullptr;
}

EvalContext Catalog::MakeEvalContext(const DocumentStore* doc) const {
  EvalContext ctx;
  for (const auto& v : views_) {
    ctx.views.emplace(v->name(), v.get());
    // Virtual extents stay out of `relations`: binding their data() here
    // would force materialization up front and defeat the virtualization.
    if (v->virtual_store() == nullptr) {
      ctx.relations.emplace(v->name(), &v->data());
    }
  }
  ctx.document = doc;
  ctx.index_lookup =
      [this](const std::string& name,
             const std::vector<std::pair<std::string, AtomicValue>>& bindings)
      -> Result<NestedRelation> {
    const MaterializedView* v = Find(name);
    if (v == nullptr) {
      return Status::NotFound("no view named '" + name + "'");
    }
    return v->Lookup(bindings);
  };
  // Streaming binding for the physical engine: the view's stored relation
  // plus matching row ids, no intermediate materialization.
  ctx.index_bind =
      [this](const std::string& name,
             const std::vector<std::pair<std::string, AtomicValue>>& bindings)
      -> Result<IndexBinding> {
    const MaterializedView* v = Find(name);
    if (v == nullptr) {
      return Status::NotFound("no view named '" + name + "'");
    }
    ULOAD_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                           v->LookupRows(bindings));
    return IndexBinding{&v->data(), std::move(rows)};
  };
  return ctx;
}

int64_t Catalog::TotalBytes() const {
  int64_t total = 0;
  for (const auto& v : views_) total += v->ApproximateBytes();
  return total;
}

}  // namespace uload
