#include "storage/virtual_scan.h"

#include "eval/tag_collections.h"
#include "storage/columnar/varint.h"

namespace uload {

ColumnarScanBase::ColumnarScanBase(const MaterializedView* view,
                                   std::string name, size_t part,
                                   size_t nparts)
    : view_(view), name_(std::move(name)), part_(part), nparts_(nparts) {
  schema_ = view_->schema();
  // Whether the Tag column is a constant (non-wildcard collection): the
  // qualifying XAM shape is ⊤ with exactly one child, so the child node's
  // tag spells it out.
  const Xam& xam = view_->definition();
  const XamNode& n = xam.node(xam.node(kXamRoot).edges[0].child);
  tag_constant_ = view_->emit_tag() && !n.is_wildcard();
  // Assemble the prototype row once. The gate rejects parental ids, so the
  // ID field is always a (pre, post, depth) triple; a constant Tag never
  // changes after this.
  proto_.fields.emplace_back(AtomicValue::Sid(StructuralId{}));
  if (view_->emit_tag()) {
    tag_slot_ = static_cast<int>(proto_.fields.size());
    // Attribute tags drop the '@' sigil, mirroring what label() stores.
    std::string const_tag;
    if (tag_constant_) {
      const_tag = n.is_attribute ? n.tag_value.substr(1) : n.tag_value;
    }
    proto_.fields.emplace_back(AtomicValue::String(std::move(const_tag)));
  }
  if (view_->emit_val()) {
    val_slot_ = static_cast<int>(proto_.fields.size());
    proto_.fields.emplace_back(AtomicValue::String(std::string()));
  }
}

bool ColumnarScanBase::TryAdoptOrder(const OrderDescriptor& order) {
  for (const OrderKey& k : order.keys()) {
    int idx = schema_->IndexOf(k.attr);
    if (idx < 0) return false;
    if (idx == 0) {
      // The ID column: rows stream in ascending pre order.
      if (!k.ascending) return false;
    } else if (idx == 1 && tag_constant_) {
      // Constant column: trivially sorted in either direction.
    } else {
      return false;
    }
  }
  order_ = order;
  return true;
}

Status ColumnarScanBase::OpenImpl() {
  // Decode only this worker's slice of the compressed rowset: the prefix is
  // skip-decoded (a varint add per row, nothing stored) and decoding stops
  // at the slice end, so k parallel workers hold 1/k of the rows each
  // instead of k full copies.
  const size_t n = static_cast<size_t>(view_->row_count());
  const size_t begin = part_ * n / nparts_;
  const size_t stop = (part_ + 1) * n / nparts_;
  const std::string& rowset = view_->rowset();
  DeltaVarintReader reader(reinterpret_cast<const uint8_t*>(rowset.data()),
                           rowset.size());
  rows_.clear();
  rows_.reserve(stop - begin);
  uint64_t v = 0;
  for (size_t i = 0; i < stop && reader.Next(&v); ++i) {
    if (i >= begin) rows_.push_back(static_cast<NodeIndex>(v));
  }
  pos_ = 0;
  end_ = rows_.size();
  return ChargeMemory(static_cast<int64_t>(rows_.size() * sizeof(NodeIndex)));
}

Result<std::optional<TupleBatch>> ColumnarScanBase::NextBatchImpl() {
  if (pos_ >= end_) return std::optional<TupleBatch>();
  TupleBatch out = NewBatch();
  while (pos_ < end_ && !out.full()) out.Add(MakeRow(rows_[pos_++]));
  return std::optional<TupleBatch>(std::move(out));
}

void ColumnarScanBase::CloseImpl() {
  rows_.clear();
  rows_.shrink_to_fit();
}

Tuple ColumnarScanBase::MakeRow(NodeIndex row) const {
  const ColumnarDocument& doc = *view_->virtual_store();
  Tuple t = proto_;
  t.fields[0].atom() = AtomicValue::Sid(doc.sid(row));
  if (tag_slot_ >= 0 && !tag_constant_) {
    std::string_view tag = doc.label(row);
    t.fields[tag_slot_].atom() =
        AtomicValue::String(std::string(tag.data(), tag.size()));
  }
  if (val_slot_ >= 0) {
    // The virtualization gate admits only rows whose value is dictionary
    // backed (attributes and leaf elements), so the raw dictionary slot IS
    // the value — skip the generic Value() subtree machinery.
    std::string_view v = doc.raw_value(row);
    t.fields[val_slot_].atom() =
        AtomicValue::String(std::string(v.data(), v.size()));
  }
  return t;
}

}  // namespace uload
