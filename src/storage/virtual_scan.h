// Physical scans over virtual column-backed extents (storage/store.h).
//
// A virtualized view has no materialized relation: its tuples are assembled
// on the fly from the ColumnarDocument's columns, guided by the view's
// compressed row-id set. ColumnarScanPhys is the serial Scan_φ counterpart;
// ColumnarParallelScanPhys slices the row set into contiguous ranges exactly
// like ParallelScan_φ (part*n/nparts), so worker streams stay disjoint and
// locally ordered in document order and ExchangeMerge reproduces the serial
// tuple sequence. Both report the generic Scan/ParallelScan operator kinds —
// the plan verifier's placement and order rules apply unchanged, which is
// the point: physically different access paths, same logical contract.
#ifndef ULOAD_STORAGE_VIRTUAL_SCAN_H_
#define ULOAD_STORAGE_VIRTUAL_SCAN_H_

#include <string>
#include <vector>

#include "exec/physical.h"
#include "storage/store.h"

namespace uload {

// Common machinery: row-set decoding, tuple assembly, order adoption.
class ColumnarScanBase : public PhysicalOperator {
 public:
  ColumnarScanBase(const MaterializedView* view, std::string name,
                   size_t part, size_t nparts);

  const SchemaPtr& schema() const override { return schema_; }
  const OrderDescriptor& order() const override { return order_; }

  // The ID column streams in strictly ascending document (pre) order; a
  // constant-tag view satisfies any order on its Tag column trivially. Val
  // keys are never adopted — the compiler falls back to a Sort_φ enforcer,
  // which is a no-op rewrite when the data happens to be sorted already, so
  // results stay identical to the materialized backend either way.
  bool TryAdoptOrder(const OrderDescriptor& order) override;

 protected:
  Status OpenImpl() override;
  Result<std::optional<TupleBatch>> NextBatchImpl() override;
  void CloseImpl() override;

  Tuple MakeRow(NodeIndex row) const;

  const MaterializedView* view_;
  std::string name_;
  size_t part_;
  size_t nparts_;
  SchemaPtr schema_;
  OrderDescriptor order_;
  bool tag_constant_ = false;
  // Row assembly template: the constant Tag is pre-filled once; MakeRow
  // copies the prototype and overwrites only the per-row fields, which is
  // measurably cheaper than building each variant chain from scratch.
  Tuple proto_;
  int val_slot_ = -1;
  int tag_slot_ = -1;

  std::vector<NodeIndex> rows_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

// Scan_φ over a virtual extent.
class ColumnarScanPhys final : public ColumnarScanBase {
 public:
  ColumnarScanPhys(const MaterializedView* view, std::string name)
      : ColumnarScanBase(view, std::move(name), 0, 1) {}
  std::string label() const override {
    return "ColumnarScan_phi(" + name_ + ")";
  }
  PhysOpKind kind() const override { return PhysOpKind::kScan; }
};

// ParallelScan_φ over the `part`-th of `nparts` contiguous slices of a
// virtual extent's row set.
class ColumnarParallelScanPhys final : public ColumnarScanBase {
 public:
  ColumnarParallelScanPhys(const MaterializedView* view, std::string name,
                           size_t part, size_t nparts)
      : ColumnarScanBase(view, std::move(name), part, nparts) {}
  std::string label() const override {
    return "ColumnarParallelScan_phi(" + name_ + " " +
           std::to_string(part_ + 1) + "/" + std::to_string(nparts_) + ")";
  }
  PhysOpKind kind() const override { return PhysOpKind::kParallelScan; }
};

}  // namespace uload

#endif  // ULOAD_STORAGE_VIRTUAL_SCAN_H_
