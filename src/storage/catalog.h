// The catalog of persistent storage structures: the set of XAMs (and their
// materializations) the optimizer knows about. Changing the storage means
// changing this set only — the physical-data-independence contract.
#ifndef ULOAD_STORAGE_CATALOG_H_
#define ULOAD_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "storage/store.h"

namespace uload {

class Catalog {
 public:
  Status Add(MaterializedView view);
  // Defines and materializes in one step.
  Status AddXam(std::string name, Xam definition, const Document& doc);

  const MaterializedView* Find(const std::string& name) const;
  const std::vector<std::unique_ptr<MaterializedView>>& views() const {
    return views_;
  }

  // Evaluation context binding every view's data by name, with both index
  // access paths for R-marked views (materializing `index_lookup` for the
  // evaluator, batch-streaming `index_bind` for the physical engine), and
  // `doc` for Navigate operators.
  EvalContext MakeEvalContext(const Document* doc) const;

  int64_t TotalBytes() const;

 private:
  std::vector<std::unique_ptr<MaterializedView>> views_;
};

}  // namespace uload

#endif  // ULOAD_STORAGE_CATALOG_H_
