// The catalog of persistent storage structures: the set of XAMs (and their
// materializations) the optimizer knows about. Changing the storage means
// changing this set only — the physical-data-independence contract.
#ifndef ULOAD_STORAGE_CATALOG_H_
#define ULOAD_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "storage/store.h"

namespace uload {

class Catalog {
 public:
  Status Add(MaterializedView view);
  // Defines and materializes (or virtualizes, over a columnar store) in one
  // step.
  Status AddXam(std::string name, Xam definition, const DocumentStore& doc);

  const MaterializedView* Find(const std::string& name) const;
  const std::vector<std::unique_ptr<MaterializedView>>& views() const {
    return views_;
  }

  // Evaluation context binding every view by name: materialized views bind
  // their data into `relations`; virtual column-backed extents appear only
  // in `views` (the physical compiler streams them off the columnar store,
  // the evaluator materializes them lazily). Both index access paths for
  // R-marked views are wired (materializing `index_lookup` for the
  // evaluator, batch-streaming `index_bind` for the physical engine), and
  // `doc` backs Navigate operators.
  EvalContext MakeEvalContext(const DocumentStore* doc) const;

  int64_t TotalBytes() const;

 private:
  std::vector<std::unique_ptr<MaterializedView>> views_;
};

}  // namespace uload

#endif  // ULOAD_STORAGE_CATALOG_H_
