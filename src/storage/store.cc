#include "storage/store.h"

#include <utility>

#include "eval/tag_collections.h"
#include "storage/columnar/varint.h"

namespace uload {
namespace {

std::string KeyOf(const Tuple& t, const std::vector<int>& attrs) {
  std::string key;
  for (int a : attrs) {
    key += t.fields[a].atom().ToString();
    key += '\x1f';
  }
  return key;
}

int64_t TupleBytes(const Tuple& t) {
  int64_t bytes = 0;
  for (const Field& f : t.fields) {
    if (f.is_collection()) {
      for (const Tuple& sub : f.collection()) bytes += TupleBytes(sub);
    } else {
      const AtomicValue& v = f.atom();
      if (v.is_string()) {
        bytes += static_cast<int64_t>(v.as_string().size());
      } else {
        bytes += 12;  // id triple / number
      }
    }
  }
  return bytes;
}

}  // namespace

bool QualifiesAsVirtualExtent(const Xam& xam) {
  const XamNode& top = xam.node(kXamRoot);
  if (top.edges.size() != 1) return false;
  const XamEdge& e = top.edges[0];
  // `/` under ⊤ restricts to the document root element — a filter the plain
  // chunk scan does not apply; semijoin/nesting change the shape.
  if (e.axis != Axis::kDescendant || e.semi() || e.nested()) return false;
  const XamNode& n = xam.node(e.child);
  if (!n.edges.empty()) return false;           // structural predicates
  if (!n.val_formula.IsTrue()) return false;    // value predicates
  if (xam.HasRequired()) return false;          // needs the access index
  if (!n.stores_id) return false;               // dedup could collapse rows
  if (n.id_kind == IdKind::kParental) return false;
  if (n.stores_cont) return false;              // Cont needs serialization
  return true;
}

Result<MaterializedView> MaterializedView::Materialize(
    std::string name, Xam definition, const DocumentStore& doc) {
  MaterializedView v;
  v.name_ = std::move(name);
  v.definition_ = std::move(definition);
  v.schema_ = v.definition_.ViewSchema();
  v.doc_ = &doc;

  const auto* columnar = dynamic_cast<const ColumnarDocument*>(&doc);
  if (columnar != nullptr && QualifiesAsVirtualExtent(v.definition_)) {
    // Virtual extent: record the matching rows (document order) as a
    // delta+varint list; scans stream the columns directly.
    const XamNode& n =
        v.definition_.node(v.definition_.node(kXamRoot).edges[0].child);
    v.columnar_ = columnar;
    v.emit_tag_ = n.stores_tag;
    v.emit_val_ = n.stores_val;
    v.id_kind_ = n.id_kind;
    const bool attributes = n.is_attribute;
    const std::string label =
        attributes ? (n.tag_value.empty() ? "" : n.tag_value.substr(1))
                   : n.tag_value;
    std::vector<NodeIndex> rows;
    bool values_cheap = true;
    const int64_t size = columnar->size();
    for (NodeIndex i = 1; i < size; ++i) {
      NodeKind k = columnar->kind(i);
      if (attributes ? k != NodeKind::kAttribute : k != NodeKind::kElement) {
        continue;
      }
      if (!label.empty() && columnar->label(i) != label) continue;
      if (v.emit_val_ && !columnar->cheap_value(i)) values_cheap = false;
      rows.push_back(i);
    }
    // A Val-emitting extent stays virtual only if every row's value is
    // dictionary-backed (leaf elements, attributes). Interior elements
    // would pay an O(subtree) text walk per tuple on every scan — there,
    // materializing once is the cheaper physical design.
    if (values_cheap) {
      v.rowset_rows_ = static_cast<int64_t>(rows.size());
      PutDeltaVarints(rows, &v.rowset_);
      return v;
    }
    v.columnar_ = nullptr;
  }

  ULOAD_ASSIGN_OR_RETURN(v.data_, EvaluateXam(v.definition_, doc));
  v.materialized_.v.store(true, std::memory_order_release);

  // Build the index over required *top-level* attributes.
  const Schema& schema = v.data_.schema();
  for (XamNodeId id = 1; id < v.definition_.size(); ++id) {
    const XamNode& n = v.definition_.node(id);
    auto add = [&](const std::string& suffix) {
      int idx = schema.IndexOf(n.name + suffix);
      if (idx >= 0 && !schema.attr(idx).is_collection) {
        v.index_attrs_.push_back(idx);
      }
    };
    if (n.id_required) add("_ID");
    if (n.tag_required) add("_Tag");
    if (n.val_required) add("_Val");
  }
  if (!v.index_attrs_.empty()) {
    for (int64_t i = 0; i < v.data_.size(); ++i) {
      v.index_[KeyOf(v.data_.tuple(i), v.index_attrs_)].push_back(i);
    }
  }
  return v;
}

std::vector<NodeIndex> MaterializedView::VirtualRows() const {
  std::vector<NodeIndex> rows;
  rows.reserve(static_cast<size_t>(rowset_rows_));
  DeltaVarintReader reader(reinterpret_cast<const uint8_t*>(rowset_.data()),
                           rowset_.size());
  uint64_t row = 0;
  for (int64_t i = 0; i < rowset_rows_; ++i) {
    if (!reader.Next(&row)) break;  // unreachable: we encoded it ourselves
    rows.push_back(static_cast<NodeIndex>(row));
  }
  return rows;
}

void MaterializedView::MaterializeNow() const {
  std::lock_guard<std::mutex> lock(*data_mu_);
  if (materialized_.v.load(std::memory_order_relaxed)) return;
  // Build the extent straight from the row set: tuples are exactly what
  // EvaluateXam produces for a qualifying XAM (ID first, then Tag/Val),
  // already deduplicated (IDs are unique) and in document order.
  NestedRelation out(schema_, CollectionKind::kList);
  for (NodeIndex i : VirtualRows()) {
    Tuple t;
    t.fields.emplace_back(MakeNodeId(*columnar_, i, id_kind_));
    if (emit_tag_) {
      t.fields.emplace_back(
          AtomicValue::String(std::string(columnar_->label(i))));
    }
    if (emit_val_) {
      t.fields.emplace_back(AtomicValue::String(columnar_->Value(i)));
    }
    out.Add(std::move(t));
  }
  data_ = std::move(out);
  materialized_.v.store(true, std::memory_order_release);
}

const NestedRelation& MaterializedView::data() const {
  if (!materialized_.v.load(std::memory_order_acquire)) MaterializeNow();
  return data_;
}

int64_t MaterializedView::row_count() const {
  if (columnar_ != nullptr) return rowset_rows_;
  return data_.size();
}

Result<std::vector<int64_t>> MaterializedView::LookupRows(
    const std::vector<std::pair<std::string, AtomicValue>>& bindings) const {
  const NestedRelation& d = data();
  // Fast path: bindings cover exactly the indexed attributes.
  if (!index_attrs_.empty() && bindings.size() == index_attrs_.size()) {
    std::vector<AtomicValue> key_vals(index_attrs_.size());
    bool exact = true;
    for (const auto& [attr, val] : bindings) {
      int idx = d.schema().IndexOf(attr);
      bool placed = false;
      for (size_t k = 0; k < index_attrs_.size(); ++k) {
        if (index_attrs_[k] == idx) {
          key_vals[k] = val;
          placed = true;
          break;
        }
      }
      if (!placed) {
        exact = false;
        break;
      }
    }
    if (exact) {
      std::string key;
      for (const AtomicValue& v : key_vals) {
        key += v.ToString();
        key += '\x1f';
      }
      auto it = index_.find(key);
      if (it == index_.end()) return std::vector<int64_t>{};
      return it->second;  // built by an ascending scan: storage order
    }
  }
  // Generic path: scan with equality filtering (nested attributes use
  // existential matching).
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < d.size(); ++i) {
    const Tuple& t = d.tuple(i);
    bool keep = true;
    for (const auto& [attr, val] : bindings) {
      auto path = ResolveAttrPath(d.schema(), attr);
      if (!path.ok()) return path.status();
      std::vector<AtomicValue> atoms;
      CollectAtomsAt(t, d.schema(), *path, 0, &atoms);
      bool any = false;
      for (const AtomicValue& a : atoms) {
        if (a == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(i);
  }
  return rows;
}

Result<NestedRelation> MaterializedView::Lookup(
    const std::vector<std::pair<std::string, AtomicValue>>& bindings) const {
  ULOAD_ASSIGN_OR_RETURN(std::vector<int64_t> rows, LookupRows(bindings));
  const NestedRelation& d = data();
  NestedRelation out(d.schema_ptr(), d.kind());
  for (int64_t i : rows) out.Add(d.tuple(i));
  return out;
}

MaterializedView::StorageBytes MaterializedView::ApproximateBytesBreakdown()
    const {
  StorageBytes b;
  b.virtualized = columnar_ != nullptr;
  b.rowset_bytes = static_cast<int64_t>(rowset_.size());
  if (!b.virtualized) {
    // A lazily materialized virtual extent is a cache over the shared column
    // store, not storage — count tuple payloads for real views only.
    for (const Tuple& t : data_.tuples()) b.data_bytes += TupleBytes(t);
  }
  for (const auto& [key, rows] : index_) {
    b.index_bytes += static_cast<int64_t>(key.size()) + 16 +
                     static_cast<int64_t>(rows.size()) * 8;
  }
  return b;
}

int64_t MaterializedView::ApproximateBytes() const {
  StorageBytes b = ApproximateBytesBreakdown();
  return b.data_bytes + b.index_bytes + b.rowset_bytes;
}

}  // namespace uload
