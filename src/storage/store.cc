#include "storage/store.h"

namespace uload {
namespace {

std::string KeyOf(const Tuple& t, const std::vector<int>& attrs) {
  std::string key;
  for (int a : attrs) {
    key += t.fields[a].atom().ToString();
    key += '\x1f';
  }
  return key;
}

int64_t TupleBytes(const Tuple& t) {
  int64_t bytes = 0;
  for (const Field& f : t.fields) {
    if (f.is_collection()) {
      for (const Tuple& sub : f.collection()) bytes += TupleBytes(sub);
    } else {
      const AtomicValue& v = f.atom();
      if (v.is_string()) {
        bytes += static_cast<int64_t>(v.as_string().size());
      } else {
        bytes += 12;  // id triple / number
      }
    }
  }
  return bytes;
}

}  // namespace

Result<MaterializedView> MaterializedView::Materialize(std::string name,
                                                       Xam definition,
                                                       const Document& doc) {
  MaterializedView v;
  v.name_ = std::move(name);
  ULOAD_ASSIGN_OR_RETURN(v.data_, EvaluateXam(definition, doc));
  v.definition_ = std::move(definition);

  // Build the index over required *top-level* attributes.
  const Schema& schema = v.data_.schema();
  for (XamNodeId id = 1; id < v.definition_.size(); ++id) {
    const XamNode& n = v.definition_.node(id);
    auto add = [&](const std::string& suffix) {
      int idx = schema.IndexOf(n.name + suffix);
      if (idx >= 0 && !schema.attr(idx).is_collection) {
        v.index_attrs_.push_back(idx);
      }
    };
    if (n.id_required) add("_ID");
    if (n.tag_required) add("_Tag");
    if (n.val_required) add("_Val");
  }
  if (!v.index_attrs_.empty()) {
    for (int64_t i = 0; i < v.data_.size(); ++i) {
      v.index_[KeyOf(v.data_.tuple(i), v.index_attrs_)].push_back(i);
    }
  }
  return v;
}

Result<std::vector<int64_t>> MaterializedView::LookupRows(
    const std::vector<std::pair<std::string, AtomicValue>>& bindings) const {
  // Fast path: bindings cover exactly the indexed attributes.
  if (!index_attrs_.empty() && bindings.size() == index_attrs_.size()) {
    std::vector<AtomicValue> key_vals(index_attrs_.size());
    bool exact = true;
    for (const auto& [attr, val] : bindings) {
      int idx = data_.schema().IndexOf(attr);
      bool placed = false;
      for (size_t k = 0; k < index_attrs_.size(); ++k) {
        if (index_attrs_[k] == idx) {
          key_vals[k] = val;
          placed = true;
          break;
        }
      }
      if (!placed) {
        exact = false;
        break;
      }
    }
    if (exact) {
      std::string key;
      for (const AtomicValue& v : key_vals) {
        key += v.ToString();
        key += '\x1f';
      }
      auto it = index_.find(key);
      if (it == index_.end()) return std::vector<int64_t>{};
      return it->second;  // built by an ascending scan: storage order
    }
  }
  // Generic path: scan with equality filtering (nested attributes use
  // existential matching).
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < data_.size(); ++i) {
    const Tuple& t = data_.tuple(i);
    bool keep = true;
    for (const auto& [attr, val] : bindings) {
      auto path = ResolveAttrPath(data_.schema(), attr);
      if (!path.ok()) return path.status();
      std::vector<AtomicValue> atoms;
      CollectAtomsAt(t, data_.schema(), *path, 0, &atoms);
      bool any = false;
      for (const AtomicValue& a : atoms) {
        if (a == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(i);
  }
  return rows;
}

Result<NestedRelation> MaterializedView::Lookup(
    const std::vector<std::pair<std::string, AtomicValue>>& bindings) const {
  ULOAD_ASSIGN_OR_RETURN(std::vector<int64_t> rows, LookupRows(bindings));
  NestedRelation out(data_.schema_ptr(), data_.kind());
  for (int64_t i : rows) out.Add(data_.tuple(i));
  return out;
}

int64_t MaterializedView::ApproximateBytes() const {
  int64_t bytes = 0;
  for (const Tuple& t : data_.tuples()) bytes += TupleBytes(t);
  return bytes;
}

}  // namespace uload
