#include "rewrite/query_rewriter.h"

#include <unordered_map>

#include "exec/physical.h"
#include "verify/plan_verifier.h"
#include "xquery/parser.h"

namespace uload {
namespace {

// Rebuilds `rel` under `schema` (same structural shape, different names).
Result<NestedRelation> Retype(const NestedRelation& rel, SchemaPtr schema) {
  // Structural compatibility check (atomic/collection pattern).
  std::function<Status(const Schema&, const Schema&)> check =
      [&](const Schema& a, const Schema& b) -> Status {
    if (a.size() != b.size()) {
      return Status::TypeError(
          "rewritten plan schema {" + a.ToString() +
          "} does not line up with query pattern schema {" + b.ToString() +
          "}");
    }
    for (int i = 0; i < a.size(); ++i) {
      if (a.attr(i).is_collection != b.attr(i).is_collection) {
        return Status::TypeError("schema shape mismatch at attribute " +
                                 a.attr(i).name);
      }
      if (a.attr(i).is_collection) {
        ULOAD_RETURN_NOT_OK(check(*a.attr(i).nested, *b.attr(i).nested));
      }
    }
    return Status::Ok();
  };
  ULOAD_RETURN_NOT_OK(check(rel.schema(), *schema));
  NestedRelation out(std::move(schema), rel.kind());
  out.mutable_tuples() = rel.tuples();
  return out;
}

}  // namespace

QueryRewriter::QueryRewriter(const PathSummary* summary,
                             const Catalog* catalog)
    : summary_(summary), catalog_(catalog) {}

Result<QueryRewriteResult> QueryRewriter::Rewrite(
    std::string_view query, const RewriteOptions& opts) const {
  ULOAD_ASSIGN_OR_RETURN(ExprPtr ast, ParseQuery(query));
  return Rewrite(*ast, opts);
}

Result<QueryRewriteResult> QueryRewriter::Rewrite(
    const Expr& query, const RewriteOptions& opts) const {
  QueryRewriteResult out;
  ULOAD_ASSIGN_OR_RETURN(out.translation, TranslateQuery(query));

  std::vector<NamedXam> views;
  for (const auto& v : catalog_->views()) {
    views.push_back(NamedXam{v->name(), v->definition()});
  }
  Rewriter rewriter(summary_, views);
  for (size_t i = 0; i < out.translation.patterns.size(); ++i) {
    ULOAD_ASSIGN_OR_RETURN(
        Rewriting best,
        rewriter.RewriteBest(out.translation.patterns[i], opts));
    out.pattern_rewritings.push_back(std::move(best));
  }
  return out;
}

Result<PlanPtr> QueryRewriter::BuildPlan(const QueryRewriteResult& r) const {
  PlanPtr cur;
  for (size_t i = 0; i < r.pattern_rewritings.size(); ++i) {
    SchemaPtr view_schema = r.translation.patterns[i].ViewSchema();
    // The query's for-loops follow document order; rewritten plans may
    // deliver view order. Sort_φ over every top-level atomic attribute in
    // schema order (leading attribute is the outermost id) restores it —
    // unless the physical stream can already prove the order, in which case
    // the compiler drops the enforcer.
    std::vector<std::string> keys;
    for (int a = 0; a < view_schema->size(); ++a) {
      if (!view_schema->attr(a).is_collection) {
        keys.push_back(view_schema->attr(a).name);
      }
    }
    PlanPtr pattern = LogicalPlan::SortOp(
        LogicalPlan::Retype(r.pattern_rewritings[i].plan, view_schema),
        std::move(keys));
    cur = cur == nullptr
              ? std::move(pattern)
              : LogicalPlan::Product(std::move(cur), std::move(pattern));
  }
  if (cur == nullptr) cur = LogicalPlan::Unit();
  for (const PredicatePtr& pred : r.translation.cross_predicates) {
    cur = LogicalPlan::Select(std::move(cur), pred);
  }
  return cur;
}

Result<std::string> QueryRewriter::Execute(const QueryRewriteResult& r,
                                           const DocumentStore* doc,
                                           ExecContext* exec) const {
  ULOAD_ASSIGN_OR_RETURN(PlanPtr plan, BuildPlan(r));
  EvalContext ctx = catalog_->MakeEvalContext(doc);
  // Verify-before-execute: prove the combined plan schema-consistent and the
  // template's bindings resolvable before a single tuple flows. The compiled
  // physical tree is re-verified inside CompilePhysicalPlan.
  if (exec == nullptr || exec->verify_plans()) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr root_schema,
                           VerifyLogicalPlan(*plan, ctx));
    ULOAD_RETURN_NOT_OK(VerifyTemplate(r.translation.templ, *root_schema));
  }
  ULOAD_ASSIGN_OR_RETURN(PhysicalPtr root,
                         CompilePhysicalPlan(plan, ctx, exec));
  std::string out;
  Status s = root->Open();
  if (s.ok()) {
    for (;;) {
      Result<std::optional<TupleBatch>> b = root->NextBatch();
      if (!b.ok()) {
        s = b.status();
        break;
      }
      if (!b->has_value()) break;
      for (const Tuple& t : (*b)->tuples()) {
        s = ApplyTemplateToTuple(r.translation.templ, *root->schema(), t,
                                 &out);
        if (!s.ok()) break;
      }
      if (!s.ok()) break;
    }
  }
  // Close unconditionally: an aborted query (cancel, deadline, budget,
  // injected fault) still joins its exchange workers, drains the queues and
  // returns every budget charge before the error surfaces.
  root->Close();
  ULOAD_RETURN_NOT_OK(s);
  return out;
}

Result<std::string> QueryRewriter::ExecuteMaterialized(
    const QueryRewriteResult& r, const DocumentStore* doc) const {
  EvalContext ctx = catalog_->MakeEvalContext(doc);
  // Materialize every pattern through its rewritten plan, retyped to the
  // query pattern's schema so the template and cross predicates resolve.
  std::vector<NestedRelation> mats;
  for (size_t i = 0; i < r.pattern_rewritings.size(); ++i) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation rel,
                           Evaluate(*r.pattern_rewritings[i].plan, ctx));
    ULOAD_ASSIGN_OR_RETURN(
        NestedRelation retyped,
        Retype(rel, r.translation.patterns[i].ViewSchema()));
    // The query's for-loops follow document order; rewritten plans may
    // deliver view order. Sort by the full tuple (leading attribute is the
    // outermost id).
    retyped.Sort();
    mats.push_back(std::move(retyped));
  }
  if (mats.empty()) {
    NestedRelation unit(Schema::Make({}));
    unit.Add(Tuple{});
    return ApplyTemplate(r.translation.templ, unit);
  }
  NestedRelation cur = std::move(mats[0]);
  for (size_t i = 1; i < mats.size(); ++i) {
    std::unordered_map<std::string, const NestedRelation*> rels{
        {"L", &cur}, {"R", &mats[i]}};
    ULOAD_ASSIGN_OR_RETURN(
        cur, Evaluate(*LogicalPlan::Product(LogicalPlan::Scan("L"),
                                            LogicalPlan::Scan("R")),
                      rels));
  }
  for (const PredicatePtr& pred : r.translation.cross_predicates) {
    NestedRelation filtered(cur.schema_ptr(), cur.kind());
    for (const Tuple& t : cur.tuples()) {
      ULOAD_ASSIGN_OR_RETURN(bool keep, pred->Eval(cur.schema(), t));
      if (keep) filtered.Add(t);
    }
    cur = std::move(filtered);
  }
  return ApplyTemplate(r.translation.templ, cur);
}

}  // namespace uload
