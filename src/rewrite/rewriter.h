// Rewriting query XAMs using materialized XAM views under summary
// constraints (thesis Ch. 5).
//
// Generate-and-test search over (plan, pattern) pairs:
//  * seeds: one pair per view (names prefixed to stay unique);
//  * compositions (§5.5): structural joins between views with structural
//    ids, node-identity (equality) joins, and ancestor-derivation joins for
//    navigational (Dewey) ids — each validated by annotation preservation;
//  * adaptations (§5.3-5.4): compensating value selections, strictification
//    of optional edges (σ not-null), navigation from stored identifiers to
//    uncovered query nodes, and a final projection aligning the plan's
//    columns with the query pattern's needs;
//  * verification: S-equivalence of the adapted pattern with the query
//    pattern (Ch. 4 containment, both ways);
//  * unions (§5.3): pairs of strictly-contained candidates whose union is
//    S-equivalent to the query.
#ifndef ULOAD_REWRITE_REWRITER_H_
#define ULOAD_REWRITE_REWRITER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rewrite/plan_pattern.h"
#include "storage/storage_models.h"
#include "summary/path_summary.h"

namespace uload {

struct RewriteOptions {
  int max_views_per_plan = 3;
  size_t max_candidates = 4000;
  size_t max_results = 16;
  bool use_structural_joins = true;
  bool use_merge_joins = true;
  bool use_parent_derivation = true;
  bool use_navigation = true;
  bool allow_unions = true;
};

struct RewriteStats {
  size_t candidates_generated = 0;
  size_t adaptations_tried = 0;
  size_t equivalence_checks = 0;
};

struct Rewriting {
  PlanPtr plan;  // over view names; columns projected to the query's needs
  Xam pattern;   // S-equivalent to the plan AND to the query pattern
  // Query attribute (dotted path in the query pattern's view schema) ->
  // column (dotted path) in the plan's output.
  std::vector<std::pair<std::string, std::string>> attr_map;
  std::vector<std::string> views_used;
  int operator_count = 0;
  // Summary-derived cost estimate (opt/cost.h); the primary ranking key.
  double estimated_cost = 0;
};

class Rewriter {
 public:
  // `views` are the storage XAMs the optimizer knows about (the catalog
  // contents); the summary provides the structural constraints.
  Rewriter(const PathSummary* summary, std::vector<NamedXam> views);

  // All equivalent rewritings found for `query`, cheapest (fewest operators)
  // first. Empty result = no rewriting exists within the search bounds.
  Result<std::vector<Rewriting>> Rewrite(const Xam& query,
                                         const RewriteOptions& opts = {},
                                         RewriteStats* stats = nullptr) const;

  // Convenience: the cheapest rewriting or NotFound.
  Result<Rewriting> RewriteBest(const Xam& query,
                                const RewriteOptions& opts = {},
                                RewriteStats* stats = nullptr) const;

 private:
  const PathSummary* summary_;
  std::vector<NamedXam> views_;
};

}  // namespace uload

#endif  // ULOAD_REWRITE_REWRITER_H_
