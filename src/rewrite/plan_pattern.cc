#include "rewrite/plan_pattern.h"

#include <set>

namespace uload {
namespace {

// Copies node payload (specs, label) from src node to dst node.
void CopyNodePayload(const XamNode& from, XamNode* to) {
  to->is_attribute = from.is_attribute;
  to->stores_id = from.stores_id;
  to->id_kind = from.id_kind;
  to->id_required = from.id_required;
  to->stores_tag = from.stores_tag;
  to->tag_required = from.tag_required;
  to->stores_val = from.stores_val;
  to->val_required = from.val_required;
  to->val_formula = from.val_formula;
  to->stores_cont = from.stores_cont;
}

// True if every p-node above `n2` is a bare chain: single child, nothing
// stored, no value constraint — so its only information is the path, which
// annotation checking can replace.
bool UpperChainIsBare(const Xam& p, XamNodeId n2) {
  for (XamNodeId cur = p.node(n2).parent; cur != kXamRoot;
       cur = p.node(cur).parent) {
    const XamNode& n = p.node(cur);
    if (n.returning() || n.has_required()) return false;
    if (!n.val_formula.IsTrue()) return false;
    if (n.edges.size() != 1) return false;
  }
  // ⊤ itself must have a single child towards n2's branch.
  return p.node(kXamRoot).edges.size() == 1;
}

}  // namespace

Xam PrefixXamNames(const Xam& x, const std::string& prefix) {
  Xam out = x;
  for (XamNodeId id = 1; id < out.size(); ++id) {
    out.node(id).name = prefix + out.node(id).name;
  }
  return out;
}

XamNodeId GraftSubtree(Xam* dst, XamNodeId dst_at, Axis axis,
                       JoinVariant variant, const Xam& src,
                       XamNodeId src_node) {
  struct Work {
    XamNodeId src;
    XamNodeId dst_parent;
    Axis axis;
    JoinVariant variant;
  };
  std::vector<Work> stack{{src_node, dst_at, axis, variant}};
  XamNodeId new_root = -1;
  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    const XamNode& sn = src.node(w.src);
    XamNodeId nid =
        dst->AddNode(w.dst_parent, w.axis, sn.tag_value, w.variant, sn.name);
    CopyNodePayload(sn, &dst->node(nid));
    if (w.src == src_node) new_root = nid;
    for (auto it = sn.edges.rbegin(); it != sn.edges.rend(); ++it) {
      stack.push_back({it->child, nid, it->axis, it->variant});
    }
  }
  return new_root;
}

bool AnnotationsPreserved(
    const Xam& composed,
    const std::vector<std::pair<int, XamNodeId>>& src_of,
    const std::vector<const Xam*>& sources, const PathSummary& summary) {
  std::vector<std::vector<SummaryNodeId>> composed_ann =
      PathAnnotations(composed, summary);
  std::vector<std::vector<std::vector<SummaryNodeId>>> source_ann;
  source_ann.reserve(sources.size());
  for (const Xam* s : sources) {
    source_ann.push_back(PathAnnotations(*s, summary));
  }
  for (XamNodeId id = 1; id < composed.size(); ++id) {
    auto [src, src_node] = src_of[id];
    if (src < 0) continue;
    if (composed_ann[id].empty()) return false;  // unsatisfiable composition
    std::set<SummaryNodeId> allowed(source_ann[src][src_node].begin(),
                                    source_ann[src][src_node].end());
    for (SummaryNodeId s : composed_ann[id]) {
      if (allowed.count(s) == 0) return false;
    }
  }
  return true;
}

std::optional<Xam> ComposeStructural(const Xam& p1, XamNodeId n1,
                                     const Xam& p2, XamNodeId n2,
                                     const PathSummary& summary) {
  if (!UpperChainIsBare(p2, n2)) return std::nullopt;
  Xam composed = p1;
  GraftSubtree(&composed, n1, Axis::kDescendant, JoinVariant::kInner, p2, n2);
  // Map composed nodes to sources: p1 nodes keep their ids; grafted nodes
  // were appended in the same relative (pre-order) sequence as p2's subtree.
  std::vector<std::pair<int, XamNodeId>> src_of(composed.size(), {-1, -1});
  for (XamNodeId id = 1; id < p1.size(); ++id) src_of[id] = {0, id};
  // Recover grafted mapping by matching names (unique across patterns).
  for (XamNodeId id = p1.size(); id < composed.size(); ++id) {
    XamNodeId orig = p2.NodeByName(composed.node(id).name);
    if (orig < 0) return std::nullopt;
    src_of[id] = {1, orig};
  }
  if (!AnnotationsPreserved(composed, src_of, {&p1, &p2}, summary)) {
    return std::nullopt;
  }
  return composed;
}

std::optional<Xam> ComposeMerge(const Xam& p1, XamNodeId n1, const Xam& p2,
                                XamNodeId n2, const PathSummary& summary) {
  if (!UpperChainIsBare(p2, n2)) return std::nullopt;
  const XamNode& a = p1.node(n1);
  const XamNode& b = p2.node(n2);
  if (a.is_attribute != b.is_attribute) return std::nullopt;
  if (!a.tag_value.empty() && !b.tag_value.empty() &&
      a.tag_value != b.tag_value) {
    return std::nullopt;
  }
  Xam composed = p1;
  XamNode& merged = composed.node(n1);
  if (merged.tag_value.empty()) merged.tag_value = b.tag_value;
  merged.stores_id = merged.stores_id || b.stores_id;
  merged.stores_tag = merged.stores_tag || b.stores_tag;
  merged.stores_val = merged.stores_val || b.stores_val;
  merged.stores_cont = merged.stores_cont || b.stores_cont;
  merged.val_formula = merged.val_formula.And(b.val_formula);
  for (const XamEdge& e : b.edges) {
    GraftSubtree(&composed, n1, e.axis, e.variant, p2, e.child);
  }
  std::vector<std::pair<int, XamNodeId>> src_of(composed.size(), {-1, -1});
  for (XamNodeId id = 1; id < p1.size(); ++id) src_of[id] = {0, id};
  src_of[n1] = {1, n2};  // also check against p2's constraints for the merge
  for (XamNodeId id = p1.size(); id < composed.size(); ++id) {
    XamNodeId orig = p2.NodeByName(composed.node(id).name);
    if (orig < 0) return std::nullopt;
    src_of[id] = {1, orig};
  }
  if (!AnnotationsPreserved(composed, src_of, {&p1, &p2}, summary)) {
    return std::nullopt;
  }
  // Also validate n1 against p1's own annotation (merging narrowed it; the
  // plan narrows identically through the equality join, so narrowing is
  // fine — but the annotation must remain non-empty, checked above).
  return composed;
}

}  // namespace uload
