// Building equivalent (plan, pattern) pairs (thesis §5.5).
//
// The rewriting search manipulates pairs of a logical plan over materialized
// views and a XAM pattern S-equivalent to that plan. This module provides
// the pattern-side surgery for each plan-building step, each validated by
// path-annotation reasoning: a combination step is accepted only when the
// combined pattern's node annotations stay within the source patterns'
// annotations, which guarantees no constraint of the sources was lost
// (otherwise the plan would be equivalent to a union of patterns or to no
// pattern at all — Fig. 5.3's p1 ⋈ p2 example).
#ifndef ULOAD_REWRITE_PLAN_PATTERN_H_
#define ULOAD_REWRITE_PLAN_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/logical_plan.h"
#include "containment/embedding.h"
#include "xam/xam.h"

namespace uload {

// Clones `x` with every node name (except ⊤) prefixed — plan attribute
// names and pattern node names stay in sync across view combinations.
Xam PrefixXamNames(const Xam& x, const std::string& prefix);

// Copies the subtree of `src` rooted at `src_node` (inclusive) under
// `dst_at` in `dst`, connected by `axis`/`variant`. Returns the new root's
// id in dst.
XamNodeId GraftSubtree(Xam* dst, XamNodeId dst_at, Axis axis,
                       JoinVariant variant, const Xam& src,
                       XamNodeId src_node);

// Structural-join composition: pattern2's subtree at `n2` hangs below
// pattern1's `n1` through a descendant edge. Returns nullopt when the result
// would not be S-equivalent to the join plan (the grafted pattern's
// annotations escape the sources' annotations).
std::optional<Xam> ComposeStructural(const Xam& p1, XamNodeId n1,
                                     const Xam& p2, XamNodeId n2,
                                     const PathSummary& summary);

// Node-identity (equality-join) composition: pattern2's node `n2` is the
// same document node as pattern1's `n1`; n2's children subtrees merge under
// n1 and the stored attributes union. Returns nullopt when invalid.
std::optional<Xam> ComposeMerge(const Xam& p1, XamNodeId n1, const Xam& p2,
                                XamNodeId n2, const PathSummary& summary);

// Validation shared by the compositions: every node of `composed` that maps
// to a node of a source pattern must keep an annotation within the source's
// annotation for that node (no lost constraints). `src_of` maps composed
// node -> (which source, source node), with -1 for chain-only nodes.
bool AnnotationsPreserved(
    const Xam& composed,
    const std::vector<std::pair<int, XamNodeId>>& src_of,
    const std::vector<const Xam*>& sources, const PathSummary& summary);

}  // namespace uload

#endif  // ULOAD_REWRITE_PLAN_PATTERN_H_
