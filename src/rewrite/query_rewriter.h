// The full rewriting pipeline of thesis Fig. 5.1: translate the XQuery into
// query patterns + value joins + tagging template (Ch. 3), rewrite every
// query pattern over the view set (this chapter), and splice the rewritten
// plans back under the query's construction template.
#ifndef ULOAD_REWRITE_QUERY_REWRITER_H_
#define ULOAD_REWRITE_QUERY_REWRITER_H_

#include <string>
#include <string_view>
#include <vector>

#include "rewrite/rewriter.h"
#include "storage/catalog.h"
#include "xquery/translate.h"

namespace uload {

struct QueryRewriteResult {
  Translation translation;
  // One rewriting per translation pattern, in order.
  std::vector<Rewriting> pattern_rewritings;
};

class QueryRewriter {
 public:
  // The rewriter reads view definitions from `catalog` and constraints from
  // `summary`; both must outlive this object.
  QueryRewriter(const PathSummary* summary, const Catalog* catalog);

  // Finds the cheapest rewriting for every pattern of `query`. Fails with
  // NotFound when some pattern has no equivalent rewriting.
  Result<QueryRewriteResult> Rewrite(std::string_view query,
                                     const RewriteOptions& opts = {}) const;
  Result<QueryRewriteResult> Rewrite(const Expr& query,
                                     const RewriteOptions& opts = {}) const;

  // Executes a rewrite result against the catalog's materialized views
  // (`doc` backs Navigate operators) and returns the serialized XML.
  Result<std::string> Execute(const QueryRewriteResult& r,
                              const Document* doc) const;

 private:
  const PathSummary* summary_;
  const Catalog* catalog_;
};

}  // namespace uload

#endif  // ULOAD_REWRITE_QUERY_REWRITER_H_
