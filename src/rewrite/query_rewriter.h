// The full rewriting pipeline of thesis Fig. 5.1: translate the XQuery into
// query patterns + value joins + tagging template (Ch. 3), rewrite every
// query pattern over the view set (this chapter), and splice the rewritten
// plans back under the query's construction template.
#ifndef ULOAD_REWRITE_QUERY_REWRITER_H_
#define ULOAD_REWRITE_QUERY_REWRITER_H_

#include <string>
#include <string_view>
#include <vector>

#include "exec/exec_context.h"
#include "rewrite/rewriter.h"
#include "storage/catalog.h"
#include "xquery/translate.h"

namespace uload {

struct QueryRewriteResult {
  Translation translation;
  // One rewriting per translation pattern, in order.
  std::vector<Rewriting> pattern_rewritings;
};

class QueryRewriter {
 public:
  // The rewriter reads view definitions from `catalog` and constraints from
  // `summary`; both must outlive this object.
  QueryRewriter(const PathSummary* summary, const Catalog* catalog);

  // Finds the cheapest rewriting for every pattern of `query`. Fails with
  // NotFound when some pattern has no equivalent rewriting.
  Result<QueryRewriteResult> Rewrite(std::string_view query,
                                     const RewriteOptions& opts = {}) const;
  Result<QueryRewriteResult> Rewrite(const Expr& query,
                                     const RewriteOptions& opts = {}) const;

  // Assembles the whole query into ONE logical plan: every pattern's
  // rewritten plan retyped to the pattern's view schema and ordered by a
  // Sort_φ enforcer (elidable when the stream can prove document order),
  // patterns combined by products, cross predicates as selections on top.
  // Constant queries (no patterns) become the unit relation.
  Result<PlanPtr> BuildPlan(const QueryRewriteResult& r) const;

  // Executes a rewrite result against the catalog's materialized views
  // (`doc` backs Navigate operators) and returns the serialized XML. The
  // serving path: BuildPlan compiled through the batched physical executor,
  // tuples streamed straight into the tagging template — no intermediate
  // materialized relation. `exec`, when given, supplies batch size / thread
  // budget and collects per-operator runtime metrics.
  Result<std::string> Execute(const QueryRewriteResult& r,
                              const DocumentStore* doc,
                              ExecContext* exec = nullptr) const;

  // Reference implementation: per-pattern materialization through the
  // tuple-at-a-time evaluator, explicit sort, pairwise products. Kept as
  // the differential-testing oracle for Execute.
  Result<std::string> ExecuteMaterialized(const QueryRewriteResult& r,
                                          const DocumentStore* doc) const;

 private:
  const PathSummary* summary_;
  const Catalog* catalog_;
};

}  // namespace uload

#endif  // ULOAD_REWRITE_QUERY_REWRITER_H_
