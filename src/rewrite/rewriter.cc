#include "rewrite/rewriter.h"

#include <algorithm>
#include <functional>
#include <set>

#include "containment/containment.h"
#include "opt/cost.h"
#include "xam/xam_printer.h"

namespace uload {
namespace {

// A (plan, pattern) pair plus bookkeeping during the search.
struct Candidate {
  PlanPtr plan;
  Xam pattern;
  // Pattern attribute (dotted path) -> plan column (dotted path). Only
  // entries that differ from the identity are stored.
  std::map<std::string, std::string> aliases;
  std::vector<std::string> views;

  std::string PlanColumn(const std::string& pattern_attr) const {
    auto it = aliases.find(pattern_attr);
    return it == aliases.end() ? pattern_attr : it->second;
  }
};

// Dotted attribute path of `id`'s attribute with `suffix` in pattern `x`
// (prefix of nested-collection entries above, including `id` itself when
// its incoming edge is nested).
std::string PatternAttr(const Xam& x, XamNodeId id, const char* suffix) {
  std::string prefix;
  std::vector<const std::string*> parts;
  for (XamNodeId cur = id; cur != kXamRoot; cur = x.node(cur).parent) {
    if (x.IncomingEdge(cur).nested()) parts.push_back(&x.node(cur).name);
  }
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    prefix += **it;
    prefix += '.';
  }
  return prefix + x.node(id).name + suffix;
}

// All (node, attr-suffix) pairs a pattern stores, in view-schema order.
struct StoredAttr {
  XamNodeId node;
  const char* suffix;
};

void CollectStored(const Xam& x, XamNodeId id, std::vector<StoredAttr>* out) {
  const XamNode& n = x.node(id);
  if (id != kXamRoot) {
    if (n.stores_id) out->push_back({id, "_ID"});
    if (n.stores_tag) out->push_back({id, "_Tag"});
    if (n.stores_val) out->push_back({id, "_Val"});
    if (n.stores_cont) out->push_back({id, "_Cont"});
  }
  for (const XamEdge& e : n.edges) {
    if (e.semi()) continue;
    CollectStored(x, e.child, out);
  }
}

bool IdKindAtLeast(IdKind kind, IdKind needed) {
  return static_cast<int>(kind) >= static_cast<int>(needed);
}

// ---------------------------------------------------------------------------
// The search engine.
// ---------------------------------------------------------------------------

class Search {
 public:
  Search(const PathSummary& summary, const std::vector<NamedXam>& views,
         const RewriteOptions& opts, RewriteStats* stats)
      : summary_(summary), views_(views), opts_(opts), stats_(stats) {}

  Result<std::vector<Rewriting>> Run(const Xam& query) {
    query_ = &query;
    query_returns_ = query.ReturnNodes();
    query_ann_ = PathAnnotations(query, summary_);

    ULOAD_RETURN_NOT_OK(BuildSeeds());
    PruneIrrelevantSeeds();
    std::vector<Candidate> all = seeds_;
    // Navigation extensions (§5.2/§5.4) on seeds first: cover query nodes
    // absent from every view by navigating from stored identifiers; the
    // extended candidates participate in compositions like any other.
    if (opts_.use_navigation) {
      size_t n = all.size();
      for (size_t i = 0; i < n; ++i) {
        auto extended = NavigationExtended(all[i]);
        if (extended.has_value()) all.push_back(std::move(*extended));
      }
    }
    std::vector<Candidate> level = all;
    for (int k = 2; k <= opts_.max_views_per_plan &&
                    all.size() < opts_.max_candidates;
         ++k) {
      std::vector<Candidate> next;
      for (const Candidate& a : level) {
        for (const Candidate& b : seeds_) {
          if (all.size() + next.size() >= opts_.max_candidates) break;
          Compose(a, b, &next);
        }
      }
      for (Candidate& c : next) all.push_back(c);
      level = std::move(next);
      if (level.empty()) break;
    }
    // A final navigation pass over composed candidates.
    if (opts_.use_navigation) {
      size_t n = all.size();
      for (size_t i = seeds_.size(); i < n && all.size() < opts_.max_candidates;
           ++i) {
        auto extended = NavigationExtended(all[i]);
        if (extended.has_value()) all.push_back(std::move(*extended));
      }
    }
    if (stats_ != nullptr) stats_->candidates_generated = all.size();

    std::vector<Rewriting> results;
    std::set<std::string> seen_plans;
    for (const Candidate& c : all) {
      ULOAD_RETURN_NOT_OK(TryAdaptations(c, &results, &seen_plans));
      if (results.size() >= opts_.max_results) break;
    }
    if (opts_.allow_unions && results.empty()) {
      ULOAD_RETURN_NOT_OK(TryUnions(all, &results, &seen_plans));
    }
    // Rank by the summary-derived cost estimate, breaking ties by plan
    // size (the thesis's preference for minimal plans, §5.3).
    auto view_card = [this](const std::string& name) {
      for (const NamedXam& v : views_) {
        if (v.name == name) return EstimateCardinality(v.xam, summary_);
      }
      return 1000.0;
    };
    for (Rewriting& r : results) {
      r.estimated_cost =
          EstimatePlanCost(*r.plan, summary_, view_card);
    }
    std::stable_sort(results.begin(), results.end(),
                     [](const Rewriting& a, const Rewriting& b) {
                       if (a.estimated_cost != b.estimated_cost) {
                         return a.estimated_cost < b.estimated_cost;
                       }
                       return a.operator_count < b.operator_count;
                     });
    return results;
  }

 private:
  // --- Seeds ---------------------------------------------------------------

  Status BuildSeeds() {
    int idx = 0;
    for (const NamedXam& v : views_) {
      std::string prefix = "v" + std::to_string(idx++) + "_";
      Candidate c;
      c.pattern = PrefixXamNames(v.xam, prefix);
      if (!IsSatisfiable(c.pattern, summary_)) continue;
      if (v.xam.HasRequired()) {
        // R-marked views are indexes: they can only be accessed given
        // bindings for the required attributes (Def. 2.2.6). Usable when
        // the query pins every required value with an equality formula —
        // the seed becomes an IndexScan with those constants (QEP11).
        ULOAD_RETURN_NOT_OK(SeedIndexView(v, prefix));
        continue;
      }
      c.plan = LogicalPlan::PrefixNames(LogicalPlan::Scan(v.name), prefix);
      c.views = {v.name};
      seeds_.push_back(std::move(c));
    }
    return Status::Ok();
  }

  // Builds an IndexScan seed for an R-marked view when the query provides
  // equality constants for all required attributes.
  Status SeedIndexView(const NamedXam& v, const std::string& prefix) {
    Xam pattern = PrefixXamNames(v.xam, prefix);
    std::vector<std::vector<SummaryNodeId>> view_ann =
        PathAnnotations(pattern, summary_);
    std::vector<std::pair<std::string, AtomicValue>> bindings;
    for (XamNodeId id = 1; id < pattern.size(); ++id) {
      XamNode& n = pattern.node(id);
      if (n.id_required || n.tag_required) {
        return Status::Ok();  // only value keys are matched against queries
      }
      if (!n.val_required) continue;
      // Find a query node with a single-equality formula whose annotation
      // lies within this view node's annotation.
      bool pinned = false;
      for (XamNodeId qn = 1; qn < query_->size(); ++qn) {
        AtomicValue constant;
        if (!query_->node(qn).val_formula.IsSingleEquality(&constant)) {
          continue;
        }
        bool within = !query_ann_[qn].empty();
        for (SummaryNodeId s : query_ann_[qn]) {
          if (std::find(view_ann[id].begin(), view_ann[id].end(), s) ==
              view_ann[id].end()) {
            within = false;
            break;
          }
        }
        if (!within) continue;
        // Pin: the pattern's node now carries the equality; the plan binds
        // the index key. The view stored Val under this name (required
        // attrs are materialized like stored ones).
        n.val_required = false;
        n.val_formula = n.val_formula.And(ValueFormula::Equals(constant));
        bindings.emplace_back(
            v.xam.node(v.xam.NodeByName(n.name.substr(prefix.size())))
                    .name +
                "_Val",
            constant);
        pinned = true;
        break;
      }
      if (!pinned) return Status::Ok();  // key not fully bound: unusable
    }
    if (bindings.empty()) return Status::Ok();
    Candidate c;
    c.pattern = std::move(pattern);
    c.plan = LogicalPlan::PrefixNames(
        LogicalPlan::IndexScan(v.name, std::move(bindings)), prefix);
    c.views = {v.name};
    seeds_.push_back(std::move(c));
    return Status::Ok();
  }

  // Discards views that cannot possibly contribute to the query: a view is
  // relevant when some return-node annotation intersects the query nodes'
  // annotations or their ancestors (ancestor views contribute identifiers
  // for structural joins and navigation anchors).
  void PruneIrrelevantSeeds() {
    std::set<SummaryNodeId> interesting;
    for (XamNodeId qn = 1; qn < query_->size(); ++qn) {
      for (SummaryNodeId s : query_ann_[qn]) {
        for (SummaryNodeId cur = s; cur > 0;
             cur = summary_.node(cur).parent) {
          interesting.insert(cur);
        }
      }
    }
    std::vector<Candidate> kept;
    for (Candidate& c : seeds_) {
      std::vector<std::vector<SummaryNodeId>> ann =
          PathAnnotations(c.pattern, summary_);
      bool relevant = false;
      for (XamNodeId id : c.pattern.ReturnNodes()) {
        for (SummaryNodeId s : ann[id]) {
          if (interesting.count(s) != 0) {
            relevant = true;
            break;
          }
        }
        if (relevant) break;
      }
      if (relevant) kept.push_back(std::move(c));
    }
    seeds_ = std::move(kept);
  }

  // --- Compositions (§5.5) -------------------------------------------------

  // Re-prefixes a seed with a globally unique prefix so that the same view
  // can participate several times in one plan without column-name clashes
  // (names are load-bearing: they tie pattern nodes to plan columns).
  Candidate Freshen(const Candidate& seed) {
    std::string prefix = "u" + std::to_string(++fresh_counter_) + "_";
    Candidate c;
    c.pattern = PrefixXamNames(seed.pattern, prefix);
    c.plan = LogicalPlan::PrefixNames(seed.plan, prefix);
    c.views = seed.views;
    for (const auto& [key, value] : seed.aliases) {
      c.aliases.emplace(prefix + key, prefix + value);
    }
    return c;
  }

  void Compose(const Candidate& a, const Candidate& seed_b,
               std::vector<Candidate>* out) {
    // Avoid trivially redundant self-products of the same view set.
    if (a.views.size() == 1 && seed_b.views.size() == 1 &&
        a.views[0] == seed_b.views[0]) {
      return;
    }
    const Candidate b = Freshen(seed_b);
    // Right-side anchor: the topmost stored-id node n2 of b.
    for (XamNodeId n2 = 1; n2 < b.pattern.size(); ++n2) {
      const XamNode& bn = b.pattern.node(n2);
      if (!bn.stores_id) continue;
      if (b.pattern.NestingDepth(n2) != 0) continue;
      for (XamNodeId n1 = 1; n1 < a.pattern.size(); ++n1) {
        const XamNode& an = a.pattern.node(n1);
        if (!an.stores_id) continue;
        if (a.pattern.NestingDepth(n1) != 0) continue;
        // (1) Structural join: both ids must decide ancestorship and share a
        // representation.
        if (opts_.use_structural_joins &&
            IdKindAtLeast(an.id_kind, IdKind::kStructural) &&
            IdKindAtLeast(bn.id_kind, IdKind::kStructural) &&
            (an.id_kind == IdKind::kParental) ==
                (bn.id_kind == IdKind::kParental)) {
          auto composed =
              ComposeStructural(a.pattern, n1, b.pattern, n2, summary_);
          if (composed.has_value()) {
            Candidate c;
            c.pattern = std::move(*composed);
            c.plan = LogicalPlan::StructuralJoin(
                a.plan, b.plan, a.PlanColumn(PatternAttr(a.pattern, n1, "_ID")),
                Axis::kDescendant,
                b.PlanColumn(PatternAttr(b.pattern, n2, "_ID")),
                JoinVariant::kInner);
            MergeBookkeeping(a, b, &c);
            out->push_back(std::move(c));
          }
        }
        // (2) Node-identity join: equality on ids of any kind.
        if (opts_.use_merge_joins) {
          auto composed = ComposeMerge(a.pattern, n1, b.pattern, n2, summary_);
          if (composed.has_value()) {
            Candidate c;
            c.pattern = std::move(*composed);
            c.plan = LogicalPlan::ValueJoin(
                a.plan, b.plan, a.PlanColumn(PatternAttr(a.pattern, n1, "_ID")),
                Comparator::kEq,
                b.PlanColumn(PatternAttr(b.pattern, n2, "_ID")),
                JoinVariant::kInner);
            MergeBookkeeping(a, b, &c);
            // The merged node carries n1's name; attrs that only b stored
            // must alias to b's plan columns.
            const XamNode& merged = c.pattern.node(n1);
            auto alias = [&](bool a_has, bool b_has, const char* suffix) {
              if (!a_has && b_has) {
                c.aliases[PatternAttr(c.pattern, n1, suffix)] =
                    b.PlanColumn(PatternAttr(b.pattern, n2, suffix));
              }
            };
            alias(an.stores_id, bn.stores_id, "_ID");
            alias(an.stores_tag, bn.stores_tag, "_Tag");
            alias(an.stores_val, bn.stores_val, "_Val");
            alias(an.stores_cont, bn.stores_cont, "_Cont");
            (void)merged;
            out->push_back(std::move(c));
          }
        }
        // (3) Ancestor derivation (§5.2): b's ids are navigational; derive
        // the ancestor at n1's (unique) depth and join by equality — n1's
        // ids only need equality.
        if (opts_.use_parent_derivation &&
            bn.id_kind == IdKind::kParental) {
          std::vector<std::vector<SummaryNodeId>> ann =
              PathAnnotations(a.pattern, summary_);
          uint32_t depth = 0;
          bool uniform = !ann[n1].empty();
          for (SummaryNodeId s : ann[n1]) {
            if (depth == 0) {
              depth = summary_.node(s).depth;
            } else if (summary_.node(s).depth != depth) {
              uniform = false;
              break;
            }
          }
          // n1's ids must be Dewey too for the equality to be meaningful.
          if (uniform && depth > 0 && an.id_kind == IdKind::kParental) {
            auto composed =
                ComposeStructural(a.pattern, n1, b.pattern, n2, summary_);
            if (composed.has_value()) {
              std::string derived =
                  b.PlanColumn(PatternAttr(b.pattern, n2, "_ID")) + "_anc";
              Candidate c;
              c.pattern = std::move(*composed);
              c.plan = LogicalPlan::ValueJoin(
                  a.plan,
                  LogicalPlan::DeriveParent(
                      b.plan, b.PlanColumn(PatternAttr(b.pattern, n2, "_ID")),
                      derived, depth),
                  a.PlanColumn(PatternAttr(a.pattern, n1, "_ID")),
                  Comparator::kEq, derived, JoinVariant::kInner);
              MergeBookkeeping(a, b, &c);
              out->push_back(std::move(c));
            }
          }
        }
      }
    }
  }

  static void MergeBookkeeping(const Candidate& a, const Candidate& b,
                               Candidate* c) {
    c->aliases = a.aliases;
    c->aliases.insert(b.aliases.begin(), b.aliases.end());
    c->views = a.views;
    c->views.insert(c->views.end(), b.views.begin(), b.views.end());
  }

  // --- Adaptations (§5.3-5.4) ---------------------------------------------

  Status TryAdaptations(const Candidate& base, std::vector<Rewriting>* results,
                        std::set<std::string>* seen_plans) {
    // Optional-edge strictification variants: consider the optional edges of
    // the candidate; for each subset (bounded), make them strict and add a
    // not-null selection.
    std::vector<XamNodeId> optional_nodes;
    for (XamNodeId id = 1; id < base.pattern.size(); ++id) {
      if (base.pattern.IncomingEdge(id).optional()) {
        optional_nodes.push_back(id);
      }
    }
    size_t subsets = optional_nodes.size() <= 3
                         ? (1u << optional_nodes.size())
                         : 2;  // all-lax and all-strict only
    for (size_t mask = 0; mask < subsets; ++mask) {
      Candidate c = base;
      bool valid = true;
      for (size_t i = 0; i < optional_nodes.size(); ++i) {
        bool strict = subsets == 2 ? (mask == 1)
                                   : ((mask >> i) & 1) != 0;
        if (!strict) continue;
        XamNodeId node = optional_nodes[i];
        // Strictify the pattern edge; the plan filters out null tuples.
        XamNode& parent = c.pattern.node(c.pattern.node(node).parent);
        for (XamEdge& e : parent.edges) {
          if (e.child != node) continue;
          e.variant = e.variant == JoinVariant::kNestOuter
                          ? JoinVariant::kNestJoin
                          : JoinVariant::kInner;
        }
        // Need a stored attribute to test for null.
        const XamNode& n = c.pattern.node(node);
        const char* suffix = n.stores_id     ? "_ID"
                             : n.stores_val  ? "_Val"
                             : n.stores_cont ? "_Cont"
                             : n.stores_tag  ? "_Tag"
                                             : nullptr;
        if (suffix == nullptr) {
          valid = false;
          break;
        }
        c.plan = LogicalPlan::Select(
            c.plan, Predicate::NotNull(
                        c.PlanColumn(PatternAttr(c.pattern, node, suffix))));
      }
      if (!valid) continue;
      ULOAD_RETURN_NOT_OK(TryAssignments(c, results, seen_plans));
      if (results->size() >= opts_.max_results) return Status::Ok();
    }
    return Status::Ok();
  }

  // Order-preserving injective assignments of query return nodes to pattern
  // return nodes.
  Status TryAssignments(const Candidate& base, std::vector<Rewriting>* results,
                        std::set<std::string>* seen_plans) {
    std::vector<XamNodeId> cand_returns = base.pattern.ReturnNodes();
    if (cand_returns.size() < query_returns_.size()) return Status::Ok();
    std::vector<std::vector<SummaryNodeId>> cand_ann =
        PathAnnotations(base.pattern, summary_);

    // Feasibility of pairing query return i with candidate return j.
    auto feasible = [&](size_t qi, size_t cj) {
      const XamNode& qn = query_->node(query_returns_[qi]);
      const XamNode& cn = base.pattern.node(cand_returns[cj]);
      if (qn.stores_id &&
          (!cn.stores_id || !IdKindAtLeast(cn.id_kind, qn.id_kind))) {
        return false;
      }
      if (qn.stores_tag && !cn.stores_tag) return false;
      if (qn.stores_val && !cn.stores_val) return false;
      if (qn.stores_cont && !cn.stores_cont) return false;
      // Annotations must intersect.
      const auto& qa = query_ann_[query_returns_[qi]];
      const auto& ca = cand_ann[cand_returns[cj]];
      for (SummaryNodeId s : qa) {
        if (std::find(ca.begin(), ca.end(), s) != ca.end()) return true;
      }
      return false;
    };

    std::vector<int> assign(query_returns_.size(), -1);
    size_t emitted = 0;
    std::function<Status(size_t, size_t)> rec =
        [&](size_t qi, size_t from) -> Status {
      if (results->size() >= opts_.max_results || emitted >= 4) {
        return Status::Ok();
      }
      if (qi == query_returns_.size()) {
        ++emitted;
        return FinishAssignment(base, assign, results, seen_plans);
      }
      for (size_t cj = from; cj < cand_returns.size(); ++cj) {
        if (!feasible(qi, cj)) continue;
        assign[qi] = static_cast<int>(cj);
        ULOAD_RETURN_NOT_OK(rec(qi + 1, cj + 1));
        assign[qi] = -1;
      }
      return Status::Ok();
    };
    return rec(0, 0);
  }

  Status FinishAssignment(const Candidate& base, const std::vector<int>& assign,
                          std::vector<Rewriting>* results,
                          std::set<std::string>* seen_plans) {
    if (stats_ != nullptr) stats_->adaptations_tried++;
    bool emitted = false;
    ULOAD_RETURN_NOT_OK(FinishVariant(base, assign, /*compensate_tags=*/false,
                                      results, seen_plans, &emitted));
    if (emitted) return Status::Ok();
    // The plain candidate is not equivalent to the query — typically because
    // a wildcard store (e.g. StructuralIdModel's sid_main) matches nodes the
    // query's label restrictions exclude. Retry with compensating tag
    // selections pushed onto stored tag columns.
    return FinishVariant(base, assign, /*compensate_tags=*/true, results,
                         seen_plans, &emitted);
  }

  // Compensating tag selections (§5.3 adaptations, label analog of the value
  // compensation below): every query label restriction the candidate pattern
  // does not already enforce is bound onto a wildcard candidate node that
  // stores tags — the pattern node gains the label, the plan gains
  // Select[col_Tag = label]. Returns false when some restriction cannot be
  // enforced anywhere (the candidate stays non-equivalent and is dropped).
  bool CompensateTags(const std::vector<int>& assign, Candidate* c) const {
    std::vector<XamNodeId> cand_returns = c->pattern.ReturnNodes();
    std::vector<std::vector<SummaryNodeId>> cand_ann =
        PathAnnotations(c->pattern, summary_);
    auto intersects = [](const std::vector<SummaryNodeId>& a,
                         const std::vector<SummaryNodeId>& b) {
      for (SummaryNodeId s : a) {
        if (std::find(b.begin(), b.end(), s) != b.end()) return true;
      }
      return false;
    };
    auto covers = [](const std::vector<SummaryNodeId>& cand,
                     const std::vector<SummaryNodeId>& query) {
      for (SummaryNodeId s : query) {
        if (std::find(cand.begin(), cand.end(), s) == cand.end()) return false;
      }
      return true;
    };
    std::vector<bool> used(c->pattern.size(), false);
    auto enforce = [&](XamNodeId qn, XamNodeId cn) {
      used[cn] = true;
      c->pattern.node(cn).tag_value = query_->node(qn).tag_value;
      c->plan = LogicalPlan::Select(
          c->plan,
          Predicate::CompareConst(
              c->PlanColumn(PatternAttr(c->pattern, cn, "_Tag")),
              Comparator::kEq,
              AtomicValue::String(query_->node(qn).tag_value)));
    };
    // Assigned return pairs first: the query return node's restriction lands
    // on the candidate node chosen to play that role.
    std::vector<bool> handled(query_->size(), false);
    for (size_t qi = 0; qi < assign.size(); ++qi) {
      XamNodeId qn = query_returns_[qi];
      XamNodeId cn = cand_returns[assign[qi]];
      const XamNode& qnode = query_->node(qn);
      if (qnode.tag_value.empty() || qnode.is_attribute) continue;
      const XamNode& cnode = c->pattern.node(cn);
      if (cnode.tag_value == qnode.tag_value) {
        handled[qn] = true;
        continue;
      }
      if (!cnode.tag_value.empty() || !cnode.stores_tag) continue;
      if (!covers(cand_ann[cn], query_ann_[qn])) continue;
      enforce(qn, cn);
      handled[qn] = true;
    }
    for (XamNodeId qn = 1; qn < query_->size(); ++qn) {
      const std::string& tag = query_->node(qn).tag_value;
      if (tag.empty() || query_->node(qn).is_attribute || handled[qn]) {
        continue;
      }
      // Already enforced: some candidate node carries the same label on an
      // annotation that reaches the query node's paths.
      bool enforced = false;
      for (XamNodeId cn = 1; cn < c->pattern.size(); ++cn) {
        if (c->pattern.node(cn).tag_value != tag) continue;
        if (intersects(cand_ann[cn], query_ann_[qn])) {
          enforced = true;
          break;
        }
      }
      if (enforced) continue;
      XamNodeId target = kXamRoot;  // sentinel: no target yet
      for (XamNodeId cn = 1; cn < c->pattern.size(); ++cn) {
        const XamNode& n = c->pattern.node(cn);
        if (used[cn] || !n.tag_value.empty() || !n.stores_tag ||
            n.is_attribute) {
          continue;
        }
        if (c->pattern.NestingDepth(cn) != 0) continue;
        if (!covers(cand_ann[cn], query_ann_[qn])) continue;
        target = cn;
        break;
      }
      if (target == kXamRoot) return false;
      enforce(qn, target);
    }
    return true;
  }

  Status FinishVariant(const Candidate& base, const std::vector<int>& assign,
                       bool compensate_tags, std::vector<Rewriting>* results,
                       std::set<std::string>* seen_plans, bool* emitted) {
    Candidate c = base;
    std::vector<XamNodeId> cand_returns = c.pattern.ReturnNodes();
    if (compensate_tags && !CompensateTags(assign, &c)) return Status::Ok();

    // 1. Compensating value selections: query formulas absent from the
    //    candidate are enforced on stored values of the matching node when
    //    possible. Match query formula nodes against candidate nodes by
    //    annotation inclusion.
    std::vector<std::vector<SummaryNodeId>> cand_ann =
        PathAnnotations(c.pattern, summary_);
    for (XamNodeId qn = 1; qn < query_->size(); ++qn) {
      const ValueFormula& f = query_->node(qn).val_formula;
      if (f.IsTrue()) continue;
      // Find a candidate node storing Val whose annotation covers the query
      // node's annotation.
      for (XamNodeId cn = 1; cn < c.pattern.size(); ++cn) {
        if (!c.pattern.node(cn).stores_val) continue;
        if (c.pattern.NestingDepth(cn) != 0) continue;
        if (!c.pattern.node(cn).val_formula.IsTrue()) continue;
        bool covers = true;
        for (SummaryNodeId s : query_ann_[qn]) {
          if (std::find(cand_ann[cn].begin(), cand_ann[cn].end(), s) ==
              cand_ann[cn].end()) {
            covers = false;
            break;
          }
        }
        if (!covers) continue;
        c.pattern.ValPredicate(cn, c.pattern.node(cn).val_formula.And(f));
        c.plan = LogicalPlan::Select(
            c.plan,
            f.ToPredicate(c.PlanColumn(PatternAttr(c.pattern, cn, "_Val"))));
        break;
      }
    }

    // 2. Trim the pattern: assigned return nodes keep exactly the query's
    //    attributes; all other stored attributes are dropped.
    std::vector<bool> keep_node(c.pattern.size(), false);
    std::vector<std::string> proj_cols;
    std::vector<std::pair<std::string, std::string>> attr_map;
    for (size_t qi = 0; qi < assign.size(); ++qi) {
      XamNodeId cn = cand_returns[assign[qi]];
      XamNodeId qn = query_returns_[qi];
      keep_node[cn] = true;
      XamNode& node = c.pattern.node(cn);
      const XamNode& qnode = query_->node(qn);
      node.stores_id = qnode.stores_id;
      node.stores_tag = qnode.stores_tag;
      node.stores_val = qnode.stores_val;
      node.stores_cont = qnode.stores_cont;
    }
    for (XamNodeId id = 1; id < c.pattern.size(); ++id) {
      if (keep_node[id]) continue;
      XamNode& node = c.pattern.node(id);
      node.stores_id = false;
      node.stores_tag = false;
      node.stores_val = false;
      node.stores_cont = false;
    }
    // Projection columns in the trimmed pattern's schema order.
    std::vector<StoredAttr> stored;
    CollectStored(c.pattern, kXamRoot, &stored);
    for (const StoredAttr& sa : stored) {
      proj_cols.push_back(
          c.PlanColumn(PatternAttr(c.pattern, sa.node, sa.suffix)));
    }
    // Map query attrs to plan columns.
    {
      std::vector<StoredAttr> qstored;
      CollectStored(*query_, kXamRoot, &qstored);
      if (qstored.size() != stored.size()) return Status::Ok();  // mismatch
      for (size_t i = 0; i < stored.size(); ++i) {
        attr_map.emplace_back(
            PatternAttr(*query_, qstored[i].node, qstored[i].suffix),
            c.PlanColumn(PatternAttr(c.pattern, stored[i].node,
                                     stored[i].suffix)));
      }
    }
    if (!proj_cols.empty()) {
      // Pattern semantics are sets of return tuples (the duplicate
      // eliminating Π of Def. 2.2.3); the plan must match.
      c.plan = LogicalPlan::Project(c.plan, proj_cols, /*dedup=*/true);
    }

    // 3. Verify S-equivalence with the query pattern.
    if (stats_ != nullptr) stats_->equivalence_checks++;
    ULOAD_ASSIGN_OR_RETURN(bool equiv,
                           AreEquivalent(c.pattern, *query_, summary_));
    if (!equiv) return Status::Ok();

    std::string key = c.plan->ToString();
    if (!seen_plans->insert(key).second) return Status::Ok();
    Rewriting r;
    r.plan = c.plan;
    r.pattern = c.pattern;
    r.attr_map = std::move(attr_map);
    r.views_used = c.views;
    r.operator_count = c.plan->OperatorCount();
    results->push_back(std::move(r));
    *emitted = true;
    return Status::Ok();
  }

  // --- Navigation (§5.2/§5.4) ----------------------------------------------

  // Greedily covers query return nodes that no candidate return node can
  // serve, by appending Navigate steps from a stored identifier whose
  // annotation dominates the missing node's annotation. Returns nullopt if
  // some missing node cannot be covered or nothing was missing.
  std::optional<Candidate> NavigationExtended(const Candidate& base) {
    std::vector<XamNodeId> cand_returns = base.pattern.ReturnNodes();
    std::vector<std::vector<SummaryNodeId>> cand_ann =
        PathAnnotations(base.pattern, summary_);

    auto feasible = [&](XamNodeId qn, XamNodeId cn) {
      const XamNode& q = query_->node(qn);
      const XamNode& c = base.pattern.node(cn);
      if (q.stores_id &&
          (!c.stores_id || !IdKindAtLeast(c.id_kind, q.id_kind))) {
        return false;
      }
      if (q.stores_tag && !c.stores_tag) return false;
      if (q.stores_val && !c.stores_val) return false;
      if (q.stores_cont && !c.stores_cont) return false;
      for (SummaryNodeId s : query_ann_[qn]) {
        if (std::find(cand_ann[cn].begin(), cand_ann[cn].end(), s) !=
            cand_ann[cn].end()) {
          return true;
        }
      }
      return false;
    };

    Candidate c = base;
    bool extended = false;
    for (XamNodeId qr : query_returns_) {
      bool covered = false;
      for (XamNodeId cr : cand_returns) {
        if (feasible(qr, cr)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      // Find an anchor: a top-level id-storing node whose annotation
      // dominates (is an ancestor of) every path of the missing node.
      XamNodeId anchor = -1;
      for (XamNodeId cn = 1; cn < c.pattern.size(); ++cn) {
        const XamNode& n = c.pattern.node(cn);
        if (!n.stores_id || c.pattern.NestingDepth(cn) != 0) continue;
        bool dominates = !query_ann_[qr].empty();
        for (SummaryNodeId target : query_ann_[qr]) {
          bool any = false;
          for (SummaryNodeId s : cand_ann[cn]) {
            if (summary_.IsAncestor(s, target)) {
              any = true;
              break;
            }
          }
          if (!any) {
            dominates = false;
            break;
          }
        }
        if (dominates) {
          anchor = cn;
          break;
        }
      }
      if (anchor < 0) return std::nullopt;
      const XamNode& q = query_->node(qr);
      std::string name = "nav" + std::to_string(++nav_counter_);
      JoinVariant variant = query_->IncomingEdge(qr).variant;
      // Pattern side: new node under the anchor via a descendant edge.
      XamNodeId added = c.pattern.AddNode(anchor, Axis::kDescendant,
                                          q.tag_value, variant, name);
      XamNode& an = c.pattern.node(added);
      an.is_attribute = q.is_attribute;
      an.stores_id = q.stores_id;
      an.id_kind = q.id_kind;
      an.stores_tag = q.stores_tag;
      an.stores_val = q.stores_val;
      an.stores_cont = q.stores_cont;
      an.val_formula = q.val_formula;
      // Plan side: Navigate with matching emission and variant.
      NavEmit emit;
      emit.id = q.stores_id;
      emit.tag = q.stores_tag;
      emit.val = q.stores_val;
      emit.cont = q.stores_cont;
      emit.id_kind = q.id_kind;
      emit.prefix = name;
      c.plan = LogicalPlan::Navigate(
          c.plan, c.PlanColumn(PatternAttr(c.pattern, anchor, "_ID")),
          {NavStep{Axis::kDescendant, q.tag_value}}, emit, variant);
      extended = true;
    }
    if (!extended) return std::nullopt;
    return c;
  }

  // --- Unions (§5.3) -------------------------------------------------------

  Status TryUnions(const std::vector<Candidate>& all,
                   std::vector<Rewriting>* results,
                   std::set<std::string>* seen_plans) {
    // Collect candidates strictly contained in the query whose trimmed
    // schemas line up with the query's needs (single-assignment trim).
    struct Piece {
      Candidate cand;
      Xam trimmed;
      PlanPtr plan;
    };
    std::vector<Piece> pieces;
    for (const Candidate& base : all) {
      std::vector<XamNodeId> cand_returns = base.pattern.ReturnNodes();
      if (cand_returns.size() != query_returns_.size()) continue;
      Candidate c = base;
      bool ok = true;
      std::vector<std::string> proj_cols;
      for (size_t i = 0; i < query_returns_.size(); ++i) {
        XamNode& node = c.pattern.node(cand_returns[i]);
        const XamNode& qnode = query_->node(query_returns_[i]);
        if ((qnode.stores_id && !node.stores_id) ||
            (qnode.stores_tag && !node.stores_tag) ||
            (qnode.stores_val && !node.stores_val) ||
            (qnode.stores_cont && !node.stores_cont)) {
          ok = false;
          break;
        }
        node.stores_id = qnode.stores_id;
        node.stores_tag = qnode.stores_tag;
        node.stores_val = qnode.stores_val;
        node.stores_cont = qnode.stores_cont;
      }
      if (!ok) continue;
      std::vector<StoredAttr> stored;
      CollectStored(c.pattern, kXamRoot, &stored);
      for (const StoredAttr& sa : stored) {
        proj_cols.push_back(
            c.PlanColumn(PatternAttr(c.pattern, sa.node, sa.suffix)));
      }
      ULOAD_ASSIGN_OR_RETURN(bool contained,
                             IsContained(c.pattern, *query_, summary_));
      if (!contained) continue;
      Piece piece;
      piece.cand = c;
      piece.trimmed = c.pattern;
      piece.plan = proj_cols.empty()
                       ? c.plan
                       : LogicalPlan::Project(c.plan, proj_cols,
                                              /*dedup=*/true);
      pieces.push_back(std::move(piece));
      if (pieces.size() > 12) break;  // bounded
    }
    for (size_t i = 0; i < pieces.size(); ++i) {
      for (size_t j = i + 1; j < pieces.size(); ++j) {
        if (stats_ != nullptr) stats_->equivalence_checks++;
        ULOAD_ASSIGN_OR_RETURN(
            bool covered,
            IsContainedInUnion(*query_,
                               {&pieces[i].trimmed, &pieces[j].trimmed},
                               summary_));
        if (!covered) continue;
        PlanPtr plan = LogicalPlan::Union(pieces[i].plan, pieces[j].plan);
        std::string key = plan->ToString();
        if (!seen_plans->insert(key).second) continue;
        Rewriting r;
        r.plan = plan;
        r.pattern = *query_;  // the union is equivalent to the query pattern
        std::vector<StoredAttr> qstored;
        CollectStored(*query_, kXamRoot, &qstored);
        std::vector<StoredAttr> cstored;
        CollectStored(pieces[i].trimmed, kXamRoot, &cstored);
        for (size_t k = 0; k < qstored.size() && k < cstored.size(); ++k) {
          r.attr_map.emplace_back(
              PatternAttr(*query_, qstored[k].node, qstored[k].suffix),
              pieces[i].cand.PlanColumn(PatternAttr(
                  pieces[i].trimmed, cstored[k].node, cstored[k].suffix)));
        }
        r.views_used = pieces[i].cand.views;
        r.views_used.insert(r.views_used.end(), pieces[j].cand.views.begin(),
                            pieces[j].cand.views.end());
        r.operator_count = plan->OperatorCount();
        results->push_back(std::move(r));
        if (results->size() >= opts_.max_results) return Status::Ok();
      }
    }
    return Status::Ok();
  }

  const PathSummary& summary_;
  const std::vector<NamedXam>& views_;
  const RewriteOptions& opts_;
  RewriteStats* stats_;

  const Xam* query_ = nullptr;
  std::vector<XamNodeId> query_returns_;
  std::vector<std::vector<SummaryNodeId>> query_ann_;
  std::vector<Candidate> seeds_;
  int nav_counter_ = 0;
  int fresh_counter_ = 0;
};

}  // namespace

Rewriter::Rewriter(const PathSummary* summary, std::vector<NamedXam> views)
    : summary_(summary), views_(std::move(views)) {}

Result<std::vector<Rewriting>> Rewriter::Rewrite(const Xam& query,
                                                 const RewriteOptions& opts,
                                                 RewriteStats* stats) const {
  Search search(*summary_, views_, opts, stats);
  return search.Run(query);
}

Result<Rewriting> Rewriter::RewriteBest(const Xam& query,
                                        const RewriteOptions& opts,
                                        RewriteStats* stats) const {
  ULOAD_ASSIGN_OR_RETURN(std::vector<Rewriting> all,
                         Rewrite(query, opts, stats));
  if (all.empty()) {
    return Status::NotFound("no equivalent rewriting found");
  }
  return all[0];
}

}  // namespace uload
