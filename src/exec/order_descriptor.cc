#include "exec/order_descriptor.h"

#include <algorithm>

namespace uload {

std::string OrderDescriptor::ToString() const {
  std::string out = "⇃";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].attr;
    if (!keys_[i].ascending) out += " desc";
  }
  out += "⇂";
  return out;
}

namespace {

// Sorts one nesting level. `path` addresses an atomic attribute; the prefix
// up to the first collection is navigated, then recursion sorts inside.
Status SortLevel(const Schema& schema, const AttrPath& path, size_t depth,
                 bool ascending, TupleList* tuples) {
  // Find whether path[depth] is a collection (recurse) or atomic (sort here).
  const Attribute& attr = schema.attr(path[depth]);
  if (depth + 1 == path.size()) {
    if (attr.is_collection) {
      return Status::TypeError("cannot sort by collection attribute '" +
                               attr.name + "'");
    }
    std::stable_sort(tuples->begin(), tuples->end(),
                     [&](const Tuple& a, const Tuple& b) {
                       int c = AtomicValue::Compare(a.fields[path[depth]].atom(),
                                                    b.fields[path[depth]].atom());
                       return ascending ? c < 0 : c > 0;
                     });
    return Status::Ok();
  }
  if (!attr.is_collection) {
    return Status::TypeError("order path crosses atomic attribute '" +
                             attr.name + "'");
  }
  for (Tuple& t : *tuples) {
    Field& f = t.fields[path[depth]];
    if (!f.is_collection()) continue;
    ULOAD_RETURN_NOT_OK(SortLevel(*attr.nested, path, depth + 1, ascending,
                                  &f.collection()));
  }
  return Status::Ok();
}

Result<bool> CheckLevel(const Schema& schema, const AttrPath& path,
                        size_t depth, bool ascending,
                        const TupleList& tuples) {
  const Attribute& attr = schema.attr(path[depth]);
  if (depth + 1 == path.size()) {
    for (size_t i = 1; i < tuples.size(); ++i) {
      int c = AtomicValue::Compare(tuples[i - 1].fields[path[depth]].atom(),
                                   tuples[i].fields[path[depth]].atom());
      if (ascending ? c > 0 : c < 0) return false;
    }
    return true;
  }
  if (!attr.is_collection) {
    return Status::TypeError("order path crosses atomic attribute '" +
                             attr.name + "'");
  }
  for (const Tuple& t : tuples) {
    const Field& f = t.fields[path[depth]];
    if (!f.is_collection()) continue;
    ULOAD_ASSIGN_OR_RETURN(
        bool ok, CheckLevel(*attr.nested, path, depth + 1, ascending,
                            f.collection()));
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Status SortBy(const OrderDescriptor& order, NestedRelation* rel) {
  // Apply keys in reverse so the first key is the primary one (stable sort).
  for (auto it = order.keys().rbegin(); it != order.keys().rend(); ++it) {
    ULOAD_ASSIGN_OR_RETURN(AttrPath path,
                           ResolveAttrPath(rel->schema(), it->attr));
    ULOAD_RETURN_NOT_OK(SortLevel(rel->schema(), path, 0, it->ascending,
                                  &rel->mutable_tuples()));
  }
  return Status::Ok();
}

bool OrderCovers(const OrderDescriptor& actual,
                 const OrderDescriptor& required) {
  if (required.keys().size() > actual.keys().size()) return false;
  for (size_t i = 0; i < required.keys().size(); ++i) {
    if (actual.keys()[i].attr != required.keys()[i].attr ||
        actual.keys()[i].ascending != required.keys()[i].ascending) {
      return false;
    }
  }
  return true;
}

Result<bool> IsSortedBy(const OrderDescriptor& order,
                        const NestedRelation& rel) {
  for (const OrderKey& key : order.keys()) {
    ULOAD_ASSIGN_OR_RETURN(AttrPath path,
                           ResolveAttrPath(rel.schema(), key.attr));
    ULOAD_ASSIGN_OR_RETURN(
        bool ok,
        CheckLevel(rel.schema(), path, 0, key.ascending, rel.tuples()));
    if (!ok) return false;
  }
  return true;
}

}  // namespace uload
