// Exchange operators: intra-query parallelism for the batch-at-a-time
// engine (the morsel-style counterpart of the thesis's single-threaded
// iterator pipelines).
//
// The unit of parallel work is the TupleBatch. A parallelized plan fragment
// is compiled once per worker; each worker pipeline runs on its own thread,
// pulling batches from its private operator tree and pushing them into a
// bounded queue. Two collectors drain the workers:
//
//  * ExchangeProduce — one bounded MPSC queue shared by all workers; batches
//    surface in arrival order. Used only where the consumer declared that it
//    does not observe tuple order (ExecContext::allow_unordered_root).
//  * ExchangeMerge — one bounded SPSC queue per worker plus a k-way merge on
//    the queue heads, keyed by the workers' common OrderDescriptor with the
//    worker index as the tie-break. Because ParallelScan partitions its
//    relation into contiguous pre-order ranges, each worker's stream is
//    locally sorted and the merge re-establishes exactly the serial
//    engine's tuple sequence — parallel execution through ExchangeMerge is
//    deterministic and byte-identical to thread_budget=1.
//
// Runtime counters: each worker pipeline owns a private counter set (worker
// 0 registers with the plan's ExecContext, workers 1..N-1 with per-worker
// contexts owned by the exchange). After the worker threads are joined,
// Close() rolls workers 1..N-1 up into worker 0's slots, so
// DescribeAnalyze() renders the template pipeline with whole-exchange
// totals. No counter is ever written by two threads.
#ifndef ULOAD_EXEC_EXCHANGE_H_
#define ULOAD_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/physical.h"

namespace uload {

// Bounded blocking queue of TupleBatches with multi-producer support and
// cooperative shutdown (a consumer closing early unblocks producers).
class BoundedBatchQueue {
 public:
  BoundedBatchQueue(size_t capacity, int producers);

  // Blocks while the queue is full. Returns false once the queue was shut
  // down — the producer should stop producing.
  bool Push(TupleBatch batch);
  // Each producer calls this exactly once when its stream ends.
  void ProducerDone();
  // Blocks until a batch is available; nullopt once every producer is done
  // and the queue is drained (or after Shutdown()).
  std::optional<TupleBatch> Pop();
  // Unblocks all producers and consumers; subsequent Push() returns false.
  void Shutdown();

 private:
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<TupleBatch> queue_;
  size_t capacity_;
  int producers_left_;
  bool shutdown_ = false;
};

// Scan_φ over the `part`-th of `nparts` contiguous row ranges of a
// materialized relation. For relations in document order a contiguous row
// range is a pre-order ID range, so slices of structural-join inputs stay
// locally sorted; the compiler passes the proven order descriptor in.
class ParallelScanPhys : public PhysicalOperator {
 public:
  ParallelScanPhys(const NestedRelation* rel, std::string name, size_t part,
                   size_t nparts, OrderDescriptor order = OrderDescriptor());

  const SchemaPtr& schema() const override { return schema_; }
  const OrderDescriptor& order() const override { return order_; }
  std::string label() const override;
  PhysOpKind kind() const override { return PhysOpKind::kParallelScan; }
  bool TryAdoptOrder(const OrderDescriptor& order) override;

  size_t part() const { return part_; }
  size_t nparts() const { return nparts_; }

 protected:
  Status OpenImpl() override;
  Result<std::optional<TupleBatch>> NextBatchImpl() override;
  void CloseImpl() override {}

 private:
  const NestedRelation* rel_;
  std::string name_;
  size_t part_;
  size_t nparts_;
  int64_t begin_ = 0;
  int64_t end_ = 0;
  int64_t pos_ = 0;
  SchemaPtr schema_;
  OrderDescriptor order_;
};

// Common machinery of the two collectors: worker pipelines, worker threads,
// per-worker statuses, private counter contexts, and metric roll-up.
class ExchangeBase : public PhysicalOperator {
 public:
  ~ExchangeBase() override;

  const SchemaPtr& schema() const override { return schema_; }
  const OrderDescriptor& order() const override { return order_; }
  // The template pipeline (worker 0); Describe()/DescribeAnalyze() render it
  // once on behalf of all workers.
  std::vector<PhysicalOperator*> children() const override;

  // The plan verifier must see *every* worker pipeline, not just the
  // rendering template.
  std::vector<PhysicalOperator*> VerifyChildren() const override {
    std::vector<PhysicalOperator*> out;
    out.reserve(workers_.size());
    for (const PhysicalPtr& w : workers_) out.push_back(w.get());
    return out;
  }

  size_t worker_count() const { return workers_.size(); }

 protected:
  explicit ExchangeBase(std::vector<PhysicalPtr> workers);

  void BindChildren(ExecContext* ctx) override;

  // Spawns one thread per worker; `queue_for(i)` supplies the queue worker i
  // pushes into.
  void StartWorkers();
  // Shuts all queues down, joins the threads, releases the budget charges of
  // batches that were queued but never consumed, and rolls per-worker
  // counters up into worker 0. Safe to call when no workers run.
  void StopWorkers();
  // Shuts every queue down without joining: a failed worker calls this so
  // its siblings (blocked in Push) and the collector stop promptly instead
  // of running the rest of the query. Safe from any worker thread.
  void PoisonAllQueues();
  // First non-OK worker status, or OK. Valid once a queue reported done or
  // after StopWorkers().
  Status WorkerError();

  virtual BoundedBatchQueue* queue_for(size_t worker) = 0;

  std::vector<PhysicalPtr> workers_;
  SchemaPtr schema_;
  OrderDescriptor order_;
  // Query-level budget tracker adopted at bind time (null = ungoverned).
  // Queue slots are charged by the producing worker and released at Pop;
  // derived OpenImpl()s also size their queues against its limit.
  MemoryTracker* tracker_ = nullptr;

 private:
  std::vector<std::thread> threads_;
  std::vector<Status> statuses_;
  std::vector<std::unique_ptr<ExecContext>> worker_ctxs_;
  std::mutex status_mu_;
};

// Collector with one shared MPSC queue: batches surface in arrival order
// (nondeterministic across runs). Advertises no order.
class ExchangeProducePhys : public ExchangeBase {
 public:
  explicit ExchangeProducePhys(std::vector<PhysicalPtr> workers);
  // Stops any still-running workers before the queue is destroyed.
  ~ExchangeProducePhys() override;

  std::string label() const override;
  PhysOpKind kind() const override { return PhysOpKind::kExchangeProduce; }

 protected:
  Status OpenImpl() override;
  Result<std::optional<TupleBatch>> NextBatchImpl() override;
  void CloseImpl() override;
  BoundedBatchQueue* queue_for(size_t worker) override;

 private:
  std::unique_ptr<BoundedBatchQueue> queue_;
};

// Collector with one SPSC queue per worker and a k-way merge on the batch
// heads that re-establishes the workers' common order descriptor (ties
// break toward the lower worker index, so contiguous-range partitions
// reproduce the serial tuple sequence exactly).
class ExchangeMergePhys : public ExchangeBase {
 public:
  explicit ExchangeMergePhys(std::vector<PhysicalPtr> workers);
  // Stops any still-running workers before the queues are destroyed.
  ~ExchangeMergePhys() override;

  std::string label() const override;
  PhysOpKind kind() const override { return PhysOpKind::kExchangeMerge; }
  // Every worker must deliver its stream ordered on the merge keys, or the
  // k-way merge silently interleaves wrongly.
  OrderDescriptor RequiredChildOrder(size_t child) const override {
    (void)child;
    return order();
  }
  // The merge consumes queue heads by key comparison; nondeterministic
  // worker streams make the output nondeterministic.
  bool OrderSensitive() const override { return true; }

 protected:
  Status OpenImpl() override;
  Result<std::optional<TupleBatch>> NextBatchImpl() override;
  void CloseImpl() override;
  BoundedBatchQueue* queue_for(size_t worker) override;

 private:
  // Refills worker i's head batch from its queue; false once exhausted.
  bool EnsureHead(size_t i);
  bool HeadLess(size_t a, size_t b) const;

  std::vector<std::unique_ptr<BoundedBatchQueue>> queues_;
  std::vector<std::optional<TupleBatch>> heads_;
  std::vector<size_t> head_pos_;
  std::vector<bool> done_;
  // Top-level field indexes + direction of the merge keys.
  std::vector<std::pair<int, bool>> key_idx_;
};

}  // namespace uload

#endif  // ULOAD_EXEC_EXCHANGE_H_
