#include "exec/structural_join.h"

namespace uload {
namespace {

bool Matches(const StructuralId& a, const StructuralId& d, Axis axis) {
  return axis == Axis::kChild ? IsParent(a, d) : IsAncestor(a, d);
}

}  // namespace

std::vector<JoinPair> StackTreeDesc(const std::vector<StructuralId>& anc,
                                    const std::vector<StructuralId>& desc,
                                    Axis axis) {
  std::vector<JoinPair> out;
  std::vector<size_t> stack;  // indices into anc, nested by containment
  size_t a = 0;
  size_t d = 0;
  while (d < desc.size()) {
    // Advance the ancestor cursor while the next ancestor starts before the
    // current descendant. A stack entry precedes (does not contain) the new
    // node exactly when its post label is smaller (pre labels already are).
    if (a < anc.size() && anc[a].pre < desc[d].pre) {
      while (!stack.empty() && anc[stack.back()].post < anc[a].post) {
        stack.pop_back();
      }
      stack.push_back(a);
      ++a;
      continue;
    }
    // Pop ancestors whose subtree ends before the current descendant.
    while (!stack.empty() && anc[stack.back()].post < desc[d].post) {
      stack.pop_back();
    }
    for (size_t s : stack) {
      if (Matches(anc[s], desc[d], axis)) {
        out.push_back(JoinPair{s, d});
      }
    }
    ++d;
  }
  return out;
}

std::vector<JoinPair> StackTreeAnc(const std::vector<StructuralId>& anc,
                                   const std::vector<StructuralId>& desc,
                                   Axis axis) {
  std::vector<JoinPair> out;
  struct Entry {
    size_t index;                // into anc
    std::vector<JoinPair> self;  // pairs found for this ancestor
    std::vector<JoinPair> inherited;  // completed deeper ancestors' pairs
  };
  std::vector<Entry> stack;

  auto pop = [&]() {
    Entry e = std::move(stack.back());
    stack.pop_back();
    e.self.insert(e.self.end(), e.inherited.begin(), e.inherited.end());
    if (stack.empty()) {
      out.insert(out.end(), e.self.begin(), e.self.end());
    } else {
      std::vector<JoinPair>& sink = stack.back().inherited;
      sink.insert(sink.end(), e.self.begin(), e.self.end());
    }
  };

  size_t a = 0;
  size_t d = 0;
  while (d < desc.size()) {
    if (a < anc.size() && anc[a].pre < desc[d].pre) {
      while (!stack.empty() && anc[stack.back().index].post < anc[a].post) {
        pop();
      }
      stack.push_back(Entry{a, {}, {}});
      ++a;
      continue;
    }
    while (!stack.empty() && anc[stack.back().index].post < desc[d].post) {
      pop();
    }
    for (Entry& e : stack) {
      if (Matches(anc[e.index], desc[d], axis)) {
        e.self.push_back(JoinPair{e.index, d});
      }
    }
    ++d;
  }
  while (!stack.empty()) pop();
  return out;
}

std::vector<JoinPair> NestedLoopStructuralJoin(
    const std::vector<StructuralId>& anc,
    const std::vector<StructuralId>& desc, Axis axis) {
  std::vector<JoinPair> out;
  for (size_t a = 0; a < anc.size(); ++a) {
    for (size_t d = 0; d < desc.size(); ++d) {
      if (Matches(anc[a], desc[d], axis)) {
        out.push_back(JoinPair{a, d});
      }
    }
  }
  return out;
}

}  // namespace uload
