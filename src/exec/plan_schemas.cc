#include "exec/plan_schemas.h"

#include <map>

namespace uload {
namespace {

struct ProjTree {
  std::map<int, ProjTree> children;
  bool keep_all = false;
};

Status BuildProjTree(const Schema& schema,
                     const std::vector<std::string>& attrs, ProjTree* root) {
  for (const std::string& dotted : attrs) {
    ULOAD_ASSIGN_OR_RETURN(AttrPath path, ResolveAttrPath(schema, dotted));
    ProjTree* cur = root;
    for (size_t i = 0; i < path.size(); ++i) cur = &cur->children[path[i]];
    cur->keep_all = true;
  }
  return Status::Ok();
}

SchemaPtr ProjSchema(const Schema& schema, const ProjTree& tree) {
  std::vector<Attribute> attrs;
  for (const auto& [idx, sub] : tree.children) {
    const Attribute& a = schema.attr(idx);
    if (sub.keep_all || !a.is_collection) {
      attrs.push_back(a);
    } else {
      attrs.push_back(Attribute::Collection(a.name, ProjSchema(*a.nested, sub),
                                            a.collection_kind));
    }
  }
  return Schema::Make(std::move(attrs));
}

Tuple ProjTuple(const Schema& schema, const ProjTree& tree, const Tuple& t) {
  Tuple out;
  for (const auto& [idx, sub] : tree.children) {
    const Attribute& a = schema.attr(idx);
    const Field& f = t.fields[idx];
    if (sub.keep_all || !a.is_collection || !f.is_collection()) {
      out.fields.push_back(f);
    } else {
      TupleList nested;
      nested.reserve(f.collection().size());
      for (const Tuple& s : f.collection()) {
        nested.push_back(ProjTuple(*a.nested, sub, s));
      }
      out.fields.emplace_back(std::move(nested));
    }
  }
  return out;
}

}  // namespace

SchemaPtr JoinOutputSchema(const Schema& left, const Schema& right,
                           JoinVariant variant, const std::string& nest_as) {
  switch (variant) {
    case JoinVariant::kInner:
    case JoinVariant::kLeftOuter:
      return Schema::Concat(left, right);
    case JoinVariant::kSemi:
      return Schema::Make(left.attrs());
    case JoinVariant::kNestJoin:
    case JoinVariant::kNestOuter: {
      std::vector<Attribute> attrs = left.attrs();
      attrs.push_back(Attribute::Collection(nest_as.empty() ? "s" : nest_as,
                                            Schema::Make(right.attrs())));
      return Schema::Make(std::move(attrs));
    }
  }
  return Schema::Make({});
}

SchemaPtr PrefixedSchema(const Schema& schema, const std::string& prefix) {
  std::vector<Attribute> attrs;
  for (const Attribute& a : schema.attrs()) {
    if (a.is_collection) {
      attrs.push_back(Attribute::Collection(prefix + a.name,
                                            PrefixedSchema(*a.nested, prefix),
                                            a.collection_kind));
    } else {
      attrs.push_back(Attribute::Atomic(prefix + a.name));
    }
  }
  return Schema::Make(std::move(attrs));
}

SchemaPtr NavigateEmitSchema(const NavEmit& emit) {
  std::vector<Attribute> attrs;
  if (emit.id) attrs.push_back(Attribute::Atomic(emit.prefix + "_ID"));
  if (emit.tag) attrs.push_back(Attribute::Atomic(emit.prefix + "_Tag"));
  if (emit.val) attrs.push_back(Attribute::Atomic(emit.prefix + "_Val"));
  if (emit.cont) attrs.push_back(Attribute::Atomic(emit.prefix + "_Cont"));
  return Schema::Make(std::move(attrs));
}

Result<SchemaPtr> ProjectionSchema(const Schema& schema,
                                   const std::vector<std::string>& attrs) {
  ProjTree tree;
  ULOAD_RETURN_NOT_OK(BuildProjTree(schema, attrs, &tree));
  return ProjSchema(schema, tree);
}

Result<Tuple> ProjectTupleTo(const Schema& schema,
                             const std::vector<std::string>& attrs,
                             const Tuple& tuple) {
  ProjTree tree;
  ULOAD_RETURN_NOT_OK(BuildProjTree(schema, attrs, &tree));
  return ProjTuple(schema, tree, tuple);
}

Result<TupleProjector> TupleProjector::Make(
    const Schema& schema, const std::vector<std::string>& attrs) {
  ProjTree tree;
  ULOAD_RETURN_NOT_OK(BuildProjTree(schema, attrs, &tree));
  TupleProjector p;
  p.schema_ = ProjSchema(schema, tree);
  // Flatten the tree, baking in whether each kept collection is descended
  // into, so Apply never consults the schema.
  struct Rec {
    static std::vector<Node> Run(const Schema& s, const ProjTree& t) {
      std::vector<Node> nodes;
      for (const auto& [idx, sub] : t.children) {
        Node n;
        n.index = idx;
        const Attribute& a = s.attr(idx);
        if (!sub.keep_all && a.is_collection) {
          n.recurse = true;
          n.kids = Run(*a.nested, sub);
        }
        nodes.push_back(std::move(n));
      }
      return nodes;
    }
  };
  p.roots_ = Rec::Run(schema, tree);
  return p;
}

Tuple TupleProjector::Project(const std::vector<Node>& nodes, const Tuple& t) {
  Tuple out;
  out.fields.reserve(nodes.size());
  for (const Node& n : nodes) {
    const Field& f = t.fields[n.index];
    if (!n.recurse || !f.is_collection()) {
      out.fields.push_back(f);
    } else {
      TupleList nested;
      nested.reserve(f.collection().size());
      for (const Tuple& s : f.collection()) {
        nested.push_back(Project(n.kids, s));
      }
      out.fields.emplace_back(std::move(nested));
    }
  }
  return out;
}

Tuple TupleProjector::ProjectMove(const std::vector<Node>& nodes, Tuple& t) {
  Tuple out;
  out.fields.reserve(nodes.size());
  for (const Node& n : nodes) {
    Field& f = t.fields[n.index];
    if (!n.recurse || !f.is_collection()) {
      out.fields.push_back(std::move(f));
    } else {
      TupleList nested;
      nested.reserve(f.collection().size());
      for (Tuple& s : f.collection()) {
        nested.push_back(ProjectMove(n.kids, s));
      }
      out.fields.emplace_back(std::move(nested));
    }
  }
  return out;
}

Status CheckSameShape(const Schema& from, const Schema& to) {
  if (from.size() != to.size()) {
    return Status::TypeError("schema {" + from.ToString() +
                             "} does not line up with {" + to.ToString() +
                             "}");
  }
  for (int i = 0; i < from.size(); ++i) {
    if (from.attr(i).is_collection != to.attr(i).is_collection) {
      return Status::TypeError("schema shape mismatch at attribute " +
                               from.attr(i).name);
    }
    if (from.attr(i).is_collection) {
      ULOAD_RETURN_NOT_OK(
          CheckSameShape(*from.attr(i).nested, *to.attr(i).nested));
    }
  }
  return Status::Ok();
}

}  // namespace uload
