// Materializing evaluator for logical plans.
//
// Each operator consumes fully materialized nested relations and produces
// one; structural joins use the StackTree kernels when both join attributes
// are top-level (pre, post, depth) identifiers and fall back to map-based
// nested evaluation otherwise (the `map` meta-operator of §1.2.2).
#ifndef ULOAD_EXEC_EVALUATOR_H_
#define ULOAD_EXEC_EVALUATOR_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_plan.h"
#include "algebra/relation.h"
#include "common/status.h"
#include "xml/document_store.h"

namespace uload {

class MaterializedView;  // storage/store.h

// Result of a streaming index binding: the view's backing relation plus the
// row indices matching the bindings, in the relation's storage (document)
// order. The physical engine streams batches straight out of `data` by row
// index — no result relation is materialized.
struct IndexBinding {
  const NestedRelation* data = nullptr;
  std::vector<int64_t> rows;
};

struct EvalContext {
  // Named base relations (materialized views / storage structures). Views
  // that run as virtual column-backed extents (storage/store.h) are NOT in
  // this map — resolve through `views` first; the evaluator falls back to
  // MaterializedView::data(), which materializes such a view on first use.
  std::unordered_map<std::string, const NestedRelation*> relations;

  // Every catalog view by name (materialized or virtual). The physical
  // compiler routes qualifying scans straight to the columnar store through
  // this map; the verifier resolves scan schemas from it.
  std::unordered_map<std::string, const MaterializedView*> views;

  // Lookup hook for kIndexScan over R-marked XAM stores. Receives the
  // relation name and the equality bindings, and returns a materialized
  // result — the evaluator's (oracle) access path.
  std::function<Result<NestedRelation>(
      const std::string&,
      const std::vector<std::pair<std::string, AtomicValue>>&)>
      index_lookup;

  // Streaming counterpart used by the physical engine: same name+bindings,
  // but hands back the stored relation and the matching row ids so the scan
  // operator can batch-stream them directly (storage/catalog.h wires this to
  // MaterializedView::LookupRows). Optional; when unset the physical
  // compiler falls back to materializing through `index_lookup`.
  std::function<Result<IndexBinding>(
      const std::string&,
      const std::vector<std::pair<std::string, AtomicValue>>&)>
      index_bind;

  // Document store backing kNavigate (and Sid resolution); storage-neutral.
  const DocumentStore* document = nullptr;
};

// Evaluates `plan` under `ctx`.
Result<NestedRelation> Evaluate(const LogicalPlan& plan,
                                const EvalContext& ctx);

// Convenience: evaluates a plan whose only base relations are in `rels`.
Result<NestedRelation> Evaluate(
    const LogicalPlan& plan,
    const std::unordered_map<std::string, const NestedRelation*>& rels,
    const DocumentStore* doc = nullptr);

}  // namespace uload

#endif  // ULOAD_EXEC_EVALUATOR_H_
