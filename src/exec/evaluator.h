// Materializing evaluator for logical plans.
//
// Each operator consumes fully materialized nested relations and produces
// one; structural joins use the StackTree kernels when both join attributes
// are top-level (pre, post, depth) identifiers and fall back to map-based
// nested evaluation otherwise (the `map` meta-operator of §1.2.2).
#ifndef ULOAD_EXEC_EVALUATOR_H_
#define ULOAD_EXEC_EVALUATOR_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_plan.h"
#include "algebra/relation.h"
#include "common/status.h"
#include "xml/document.h"

namespace uload {

struct EvalContext {
  // Named base relations (materialized views / storage structures).
  std::unordered_map<std::string, const NestedRelation*> relations;

  // Lookup hook for kIndexScan over R-marked XAM stores. Receives the
  // relation name and the equality bindings.
  std::function<Result<NestedRelation>(
      const std::string&,
      const std::vector<std::pair<std::string, AtomicValue>>&)>
      index_lookup;

  // Document backing kNavigate (and Sid resolution).
  const Document* document = nullptr;
};

// Evaluates `plan` under `ctx`.
Result<NestedRelation> Evaluate(const LogicalPlan& plan,
                                const EvalContext& ctx);

// Convenience: evaluates a plan whose only base relations are in `rels`.
Result<NestedRelation> Evaluate(
    const LogicalPlan& plan,
    const std::unordered_map<std::string, const NestedRelation*>& rels,
    const Document* doc = nullptr);

}  // namespace uload

#endif  // ULOAD_EXEC_EVALUATOR_H_
