#include "exec/physical.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>
#include <unordered_map>

#include "exec/exchange.h"
#include "exec/plan_schemas.h"
#include "exec/structural_join.h"
#include "opt/cost.h"
#include "storage/virtual_scan.h"
#include "verify/batch_validator.h"
#include "verify/plan_verifier.h"

namespace uload {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --- PhysicalOperator template methods --------------------------------------

Status PhysicalOperator::Open() {
  adapter_batch_.reset();
  adapter_pos_ = 0;
  adapter_done_ = false;
  int64_t start = NowNs();
  if (control_ != nullptr) {
    Status c = control_->Check(start);
    if (!c.ok()) return c;
  }
  int64_t call = open_calls_++;
  if (fault_ != nullptr &&
      fault_->ShouldFail(op_ordinal_, label(), FaultSpec::Site::kOpen, call)) {
    return Status::Internal("injected fault: Open of " + label());
  }
  Status s = OpenImpl();
  metrics_->open_ns += NowNs() - start;
  return s;
}

Result<std::optional<TupleBatch>> PhysicalOperator::NextBatch() {
  int64_t start = NowNs();
  // Cooperative cancellation/deadline: every batch boundary is a check
  // point, reusing the clock read the metrics need anyway.
  if (control_ != nullptr) {
    Status c = control_->Check(start);
    if (!c.ok()) return c;
  }
  int64_t call = next_calls_++;
  if (fault_ != nullptr &&
      fault_->ShouldFail(op_ordinal_, label(), FaultSpec::Site::kNextBatch,
                         call)) {
    return Status::Internal("injected fault: NextBatch of " + label());
  }
  Result<std::optional<TupleBatch>> r = NextBatchImpl();
  metrics_->next_ns += NowNs() - start;
  if (r.ok() && r->has_value()) {
    metrics_->batches_produced += 1;
    metrics_->tuples_produced += static_cast<int64_t>((*r)->size());
    if (memory_ != nullptr) {
      // Transient charge of the streamed batch: enforces the budget and
      // records the tracker peak at batch granularity without holding the
      // bytes beyond the handoff (the consumer owns the batch).
      int64_t bytes = (*r)->ApproxBytes();
      Status ms = memory_->Charge(bytes);
      if (!ms.ok()) return ms;
      memory_->Release(bytes);
      if (metrics_->peak_bytes < held_bytes_ + bytes) {
        metrics_->peak_bytes = held_bytes_ + bytes;
      }
    }
    if (validate_batches_) {
      Status s = ValidateBatch(*schema(), **r);
      if (!s.ok()) {
        return Status::Internal("batch validation failed in " + label() +
                                ": " + s.message());
      }
    }
  }
  return r;
}

void PhysicalOperator::Close() {
  CloseImpl();
  // Whatever the implementation still held (error/cancel paths included)
  // goes back to the tracker: an aborted query leaves no charge behind.
  ReleaseAllMemory();
}

Status PhysicalOperator::CheckControl() {
  if (control_ == nullptr) return Status::Ok();
  return control_->Check(NowNs());
}

Status PhysicalOperator::ChargeMemory(int64_t bytes) {
  if (bytes <= 0) return Status::Ok();
  if (memory_ != nullptr) ULOAD_RETURN_NOT_OK(memory_->Charge(bytes));
  held_bytes_ += bytes;
  if (metrics_->peak_bytes < held_bytes_) metrics_->peak_bytes = held_bytes_;
  return Status::Ok();
}

void PhysicalOperator::ReleaseMemory(int64_t bytes) {
  if (bytes <= 0) return;
  held_bytes_ -= bytes;
  if (held_bytes_ < 0) held_bytes_ = 0;
  if (memory_ != nullptr) memory_->Release(bytes);
}

Status PhysicalOperator::TrackGrow(int64_t bytes) {
  deferred_bytes_ += bytes;
  if (deferred_bytes_ < (int64_t{1} << 16)) return Status::Ok();
  int64_t b = deferred_bytes_;
  deferred_bytes_ = 0;
  return ChargeMemory(b);
}

void PhysicalOperator::TrackShrink(int64_t bytes) {
  deferred_bytes_ -= bytes;
  if (deferred_bytes_ > -(int64_t{1} << 16)) return;
  ReleaseMemory(-deferred_bytes_);
  deferred_bytes_ = 0;
}

void PhysicalOperator::ReleaseAllMemory() {
  if (held_bytes_ > 0 && memory_ != nullptr) memory_->Release(held_bytes_);
  held_bytes_ = 0;
  deferred_bytes_ = 0;
}

Result<std::optional<Tuple>> PhysicalOperator::NextTuple() {
  for (;;) {
    if (adapter_batch_.has_value() && adapter_pos_ < adapter_batch_->size()) {
      return std::optional<Tuple>(
          std::move(adapter_batch_->tuple(adapter_pos_++)));
    }
    if (adapter_done_) return std::optional<Tuple>();
    ULOAD_ASSIGN_OR_RETURN(adapter_batch_, NextBatch());
    adapter_pos_ = 0;
    if (!adapter_batch_.has_value()) {
      adapter_done_ = true;
      return std::optional<Tuple>();
    }
  }
}

std::string PhysicalOperator::Describe(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += label();
  out += "\n";
  for (const PhysicalOperator* c : children()) out += c->Describe(indent + 1);
  return out;
}

std::string PhysicalOperator::DescribeAnalyze(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += label();
  out += "  [" + metrics_->ToString() + "]\n";
  for (const PhysicalOperator* c : children()) {
    out += c->DescribeAnalyze(indent + 1);
  }
  return out;
}

void PhysicalOperator::Bind(ExecContext* ctx) {
  batch_size_ = ctx->batch_size();
  validate_batches_ = ctx->validate_batches();
  metrics_ = ctx->Register(label());
  control_ = ctx->control();
  memory_ = ctx->memory_tracker();
  fault_ = ctx->fault().enabled() ? &ctx->fault() : nullptr;
  // Registration ordinal doubles as the fault-point address: stable across
  // runs of the same plan, enumerable by sweeping [0, metrics().size()).
  op_ordinal_ = static_cast<int>(ctx->metrics().size()) - 1;
  open_calls_ = 0;
  next_calls_ = 0;
  held_bytes_ = 0;
  deferred_bytes_ = 0;
  BindChildren(ctx);
}

void PhysicalOperator::BindChildren(ExecContext* ctx) {
  for (PhysicalOperator* c : children()) c->Bind(ctx);
}

void PhysicalOperator::MergeMetricsFrom(PhysicalOperator& other) {
  metrics_->MergeFrom(*other.metrics_);
  other.metrics_->Reset();
  std::vector<PhysicalOperator*> mine = children();
  std::vector<PhysicalOperator*> theirs = other.children();
  for (size_t i = 0; i < mine.size() && i < theirs.size(); ++i) {
    mine[i]->MergeMetricsFrom(*theirs[i]);
  }
}

namespace {

// Base with common bookkeeping.
class PhysBase : public PhysicalOperator {
 public:
  const SchemaPtr& schema() const override { return schema_; }
  const OrderDescriptor& order() const override { return order_; }

 protected:
  void CloseImpl() override {}

  SchemaPtr schema_ = Schema::Make({});
  OrderDescriptor order_;
};

// --- Scan_φ ----------------------------------------------------------------

class ScanPhys : public PhysBase {
 public:
  ScanPhys(const NestedRelation* rel, std::string name)
      : rel_(rel), name_(std::move(name)) {
    schema_ = rel->schema_ptr();
  }
  std::string label() const override { return "Scan_phi(" + name_ + ")"; }
  PhysOpKind kind() const override { return PhysOpKind::kScan; }
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    Result<bool> sorted = IsSortedBy(order, *rel_);
    if (!sorted.ok() || !*sorted) return false;
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    if (pos_ >= rel_->size()) return std::optional<TupleBatch>();
    TupleBatch out = NewBatch();
    while (pos_ < rel_->size() && !out.full()) out.Add(rel_->tuple(pos_++));
    return std::optional<TupleBatch>(std::move(out));
  }

 private:
  const NestedRelation* rel_;
  std::string name_;
  int64_t pos_ = 0;
};

// A scan over an owned materialized relation (index lookups and the
// materializing fallbacks reuse it).
class MaterialPhys : public PhysBase {
 public:
  MaterialPhys(NestedRelation data, std::string label, OrderDescriptor order)
      : data_(std::move(data)), label_(std::move(label)) {
    schema_ = data_.schema_ptr();
    order_ = std::move(order);
  }
  std::string label() const override { return label_; }
  PhysOpKind kind() const override { return PhysOpKind::kMaterial; }
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    Result<bool> sorted = IsSortedBy(order, data_);
    if (!sorted.ok() || !*sorted) return false;
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    if (pos_ >= data_.size()) return std::optional<TupleBatch>();
    TupleBatch out = NewBatch();
    while (pos_ < data_.size() && !out.full()) out.Add(data_.tuple(pos_++));
    return std::optional<TupleBatch>(std::move(out));
  }

 private:
  NestedRelation data_;
  std::string label_;
  int64_t pos_ = 0;
};

// --- IndexScan_φ -------------------------------------------------------------

// Batch-streaming scan of an R-marked view restricted to the rows matched by
// the lookup bindings. The catalog hands out the view's stored relation plus
// the row ids (storage order); nothing is materialized per query.
class IndexScanPhys : public PhysBase {
 public:
  IndexScanPhys(const NestedRelation* data, std::vector<int64_t> rows,
                std::string name)
      : data_(data), rows_(std::move(rows)), name_(std::move(name)) {
    schema_ = data_->schema_ptr();
  }
  std::string label() const override {
    return "IndexScan_phi(" + name_ + ")";
  }
  PhysOpKind kind() const override { return PhysOpKind::kIndexScan; }
  // The selected rows are a subsequence of the stored relation; sortedness
  // is checked over exactly those rows (same per-key contract as
  // IsSortedBy: every key independently non-decreasing).
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    for (const OrderKey& k : order.keys()) {
      int idx = data_->schema().IndexOf(k.attr);
      if (idx < 0 || data_->schema().attr(idx).is_collection) return false;
      for (size_t i = 1; i < rows_.size(); ++i) {
        const AtomicValue& prev =
            data_->tuple(rows_[i - 1]).fields[idx].atom();
        const AtomicValue& cur = data_->tuple(rows_[i]).fields[idx].atom();
        int c = AtomicValue::Compare(prev, cur);
        if (k.ascending ? c > 0 : c < 0) return false;
      }
    }
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    if (pos_ >= rows_.size()) return std::optional<TupleBatch>();
    TupleBatch out = NewBatch();
    while (pos_ < rows_.size() && !out.full()) {
      out.Add(data_->tuple(rows_[pos_++]));
    }
    return std::optional<TupleBatch>(std::move(out));
  }

 private:
  const NestedRelation* data_;
  std::vector<int64_t> rows_;
  std::string name_;
  size_t pos_ = 0;
};

// --- σ_φ ---------------------------------------------------------------------

class SelectPhys : public PhysBase {
 public:
  SelectPhys(PhysicalPtr input, PredicatePtr pred)
      : input_(std::move(input)), pred_(std::move(pred)) {
    schema_ = input_->schema();
    order_ = input_->order();
  }
  std::string label() const override {
    return "Select_phi[" + pred_->ToString() + "]";
  }
  std::vector<PhysicalOperator*> children() const override {
    return {input_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kSelect; }
  // A filter passes tuples through unchanged, so its provable order is
  // exactly its input's.
  OrderDescriptor ProvableOrder() const override { return input_->order(); }
  // A filter preserves its input's order, so whatever order the input can
  // prove, the selection inherits.
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    if (!input_->TryAdoptOrder(order)) return false;
    order_ = input_->order();
    return true;
  }

 protected:
  Status OpenImpl() override { return input_->Open(); }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    // Vectorized filter: keep pulling input batches until one survives.
    for (;;) {
      ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> in,
                             input_->NextBatch());
      if (!in.has_value()) return std::optional<TupleBatch>();
      TupleBatch out = NewBatch();
      for (Tuple& t : in->tuples()) {
        ULOAD_ASSIGN_OR_RETURN(bool keep, pred_->Eval(*schema_, t));
        if (keep) out.Add(std::move(t));
      }
      if (!out.empty()) return std::optional<TupleBatch>(std::move(out));
    }
  }
  void CloseImpl() override { input_->Close(); }

 private:
  PhysicalPtr input_;
  PredicatePtr pred_;
};

// --- π_φ ---------------------------------------------------------------------

class ProjectPhys : public PhysBase {
 public:
  static Result<PhysicalPtr> Make(PhysicalPtr input,
                                  std::vector<std::string> attrs,
                                  bool dedup) {
    auto p = std::unique_ptr<ProjectPhys>(new ProjectPhys());
    ULOAD_ASSIGN_OR_RETURN(p->proj_,
                           TupleProjector::Make(*input->schema(), attrs));
    p->schema_ = p->proj_->schema();
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input->order().keys()) {
      if (!ResolveAttrPath(*p->schema_, k.attr).ok()) break;
      kept.push_back(k);
    }
    p->order_ = OrderDescriptor(std::move(kept));
    p->input_ = std::move(input);
    p->dedup_ = dedup;
    return PhysicalPtr(std::move(p));
  }
  std::string label() const override {
    return dedup_ ? "Project0_phi" : "Project_phi";
  }
  std::vector<PhysicalOperator*> children() const override {
    return {input_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kProject; }
  // The input's order survives for the longest key prefix whose attributes
  // all survive the projection.
  OrderDescriptor ProvableOrder() const override {
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input_->order().keys()) {
      if (!ResolveAttrPath(*schema_, k.attr).ok()) break;
      kept.push_back(k);
    }
    return OrderDescriptor(std::move(kept));
  }
  // Duplicate elimination keeps the first occurrence, so the output depends
  // on the input arriving in a deterministic order.
  bool OrderSensitive() const override { return dedup_; }
  // A projection preserves tuple order; the input's order survives for the
  // longest key prefix whose attributes are all retained (names unchanged).
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    for (const OrderKey& k : order.keys()) {
      if (!ResolveAttrPath(*schema_, k.attr).ok()) return false;
    }
    if (!input_->TryAdoptOrder(order)) return false;
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override {
    seen_.clear();
    ReleaseMemory(held_bytes());
    return input_->Open();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    for (;;) {
      ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> in,
                             input_->NextBatch());
      if (!in.has_value()) return std::optional<TupleBatch>();
      TupleBatch out = NewBatch();
      int64_t added_bytes = 0;
      for (Tuple& t : in->tuples()) {
        // The input batch is exclusively ours, so steal the kept fields
        // instead of deep-copying them.
        Tuple projected = proj_->Apply(std::move(t));
        if (dedup_) {
          std::string key = TupleToString(projected);
          int64_t key_bytes =
              static_cast<int64_t>(sizeof(std::string) + key.capacity() + 48);
          if (!seen_.insert(std::move(key)).second) continue;
          added_bytes += key_bytes;
        }
        out.Add(std::move(projected));
      }
      // The dedup set grows monotonically; charge its growth per input batch
      // so the tracker sees it without per-tuple atomics.
      if (added_bytes > 0) ULOAD_RETURN_NOT_OK(ChargeMemory(added_bytes));
      if (!out.empty()) return std::optional<TupleBatch>(std::move(out));
    }
  }
  void CloseImpl() override { input_->Close(); }

 private:
  ProjectPhys() = default;
  PhysicalPtr input_;
  std::optional<TupleProjector> proj_;
  bool dedup_ = false;
  std::set<std::string> seen_;
};

// --- Sort_φ ------------------------------------------------------------------

class SortPhys : public PhysBase {
 public:
  SortPhys(PhysicalPtr input, OrderDescriptor order)
      : input_(std::move(input)) {
    schema_ = input_->schema();
    order_ = std::move(order);
  }
  std::string label() const override {
    return "Sort_phi" + order_.ToString();
  }
  std::vector<PhysicalOperator*> children() const override {
    return {input_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kSort; }
  // The sort *establishes* its advertised order regardless of the input's;
  // its advertised order is always provable.
  OrderDescriptor ProvableOrder() const override { return order_; }
  // Stable sort: tuples tied on the sort keys keep their input order, so a
  // nondeterministic input makes the output nondeterministic.
  bool OrderSensitive() const override { return true; }

 protected:
  Status OpenImpl() override {
    buffer_ = NestedRelation(schema_);
    ReleaseMemory(held_bytes());
    ULOAD_RETURN_NOT_OK(input_->Open());
    input_open_ = true;
    for (;;) {
      // Materialization loop: check cancellation and charge the buffered
      // bytes once per consumed batch.
      ULOAD_RETURN_NOT_OK(CheckControl());
      ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b,
                             input_->NextBatch());
      if (!b.has_value()) break;
      ULOAD_RETURN_NOT_OK(ChargeMemory(b->ApproxBytes()));
      for (Tuple& t : b->tuples()) buffer_.Add(std::move(t));
    }
    input_->Close();
    input_open_ = false;
    ULOAD_RETURN_NOT_OK(SortBy(order_, &buffer_));
    pos_ = 0;
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    if (pos_ >= buffer_.size()) return std::optional<TupleBatch>();
    TupleBatch out = NewBatch();
    while (pos_ < buffer_.size() && !out.full()) out.Add(buffer_.tuple(pos_++));
    return std::optional<TupleBatch>(std::move(out));
  }
  void CloseImpl() override {
    // Normally the input is already closed at the end of materialization;
    // an aborted Open() (cancel, budget, injected fault) leaves it open and
    // this close is what drains/joins any exchange below.
    if (input_open_) {
      input_->Close();
      input_open_ = false;
    }
    buffer_ = NestedRelation(schema_);
  }

 private:
  PhysicalPtr input_;
  NestedRelation buffer_;
  int64_t pos_ = 0;
  bool input_open_ = false;
};

// --- Streaming StackTreeDesc_φ (inner structural joins) ----------------------

// Requires both inputs in document order on the join attributes (the
// compiler guarantees it). Produces pairs ordered by the descendant side.
// Consumption is inherently cursor-style (merge of two ordered streams), so
// both inputs are read through the NextTuple() adapter; production fills a
// whole output batch per call.
class StackTreeDescPhys : public PhysBase {
 public:
  StackTreeDescPhys(PhysicalPtr anc, PhysicalPtr desc, int anc_idx,
                    int desc_idx, Axis axis)
      : anc_(std::move(anc)),
        desc_(std::move(desc)),
        anc_idx_(anc_idx),
        desc_idx_(desc_idx),
        axis_(axis) {
    schema_ = Schema::Concat(*anc_->schema(), *desc_->schema());
    order_ = OrderDescriptor::On(desc_->schema()->attr(desc_idx).name);
  }
  std::string label() const override {
    return "StackTreeDesc_phi[" + anc_->schema()->attr(anc_idx_).name + " " +
           (axis_ == Axis::kChild ? "parent-of" : "ancestor-of") + " " +
           desc_->schema()->attr(desc_idx_).name + "]";
  }
  std::vector<PhysicalOperator*> children() const override {
    return {anc_.get(), desc_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kStructuralJoin; }
  // The stack merge is only correct over document-ordered inputs.
  OrderDescriptor RequiredChildOrder(size_t child) const override {
    return child == 0
               ? OrderDescriptor::On(anc_->schema()->attr(anc_idx_).name)
               : OrderDescriptor::On(desc_->schema()->attr(desc_idx_).name);
  }
  // Output follows the descendant cursor: ordered on the descendant
  // attribute exactly when the descendant input is.
  OrderDescriptor ProvableOrder() const override {
    OrderDescriptor req =
        OrderDescriptor::On(desc_->schema()->attr(desc_idx_).name);
    return OrderCovers(desc_->order(), req) ? order_ : OrderDescriptor();
  }
  bool OrderSensitive() const override { return true; }

 protected:
  Status OpenImpl() override {
    ULOAD_RETURN_NOT_OK(anc_->Open());
    ULOAD_RETURN_NOT_OK(desc_->Open());
    stack_.clear();
    pending_.clear();
    ULOAD_ASSIGN_OR_RETURN(next_anc_, anc_->NextTuple());
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    TupleBatch out = NewBatch();
    while (!out.full()) {
      if (!pending_.empty()) {
        out.Add(std::move(pending_.front()));
        pending_.pop_front();
        continue;
      }
      // A selective join can consume many descendants before producing a
      // tuple; tick the cancellation check so latency stays bounded even
      // when the children hand over large prefetched batches.
      if ((++ticks_ & 1023) == 0) ULOAD_RETURN_NOT_OK(CheckControl());
      ULOAD_ASSIGN_OR_RETURN(std::optional<Tuple> d, desc_->NextTuple());
      if (!d.has_value()) break;
      const AtomicValue& did = d->fields[desc_idx_].atom();
      if (did.kind() != AtomicValue::Kind::kSid) {
        return Status::TypeError(
            "streaming structural join requires (pre, post, depth) ids");
      }
      // Pull ancestors that start before this descendant.
      while (next_anc_.has_value()) {
        const AtomicValue& aid = next_anc_->fields[anc_idx_].atom();
        if (aid.kind() != AtomicValue::Kind::kSid) {
          return Status::TypeError(
              "streaming structural join requires (pre, post, depth) ids");
        }
        if (aid.sid().pre >= did.sid().pre) break;
        while (!stack_.empty() &&
               stack_.back().fields[anc_idx_].atom().sid().post <
                   aid.sid().post) {
          stack_.pop_back();
        }
        stack_.push_back(std::move(*next_anc_));
        ULOAD_ASSIGN_OR_RETURN(next_anc_, anc_->NextTuple());
      }
      // Pop finished ancestors.
      while (!stack_.empty() &&
             stack_.back().fields[anc_idx_].atom().sid().post <
                 did.sid().post) {
        stack_.pop_back();
      }
      for (const Tuple& a : stack_) {
        const StructuralId& asid = a.fields[anc_idx_].atom().sid();
        bool match = axis_ == Axis::kChild ? IsParent(asid, did.sid())
                                           : IsAncestor(asid, did.sid());
        if (match) pending_.push_back(ConcatTuples(a, *d));
      }
    }
    if (out.empty()) return std::optional<TupleBatch>();
    return std::optional<TupleBatch>(std::move(out));
  }
  void CloseImpl() override {
    anc_->Close();
    desc_->Close();
  }

 private:
  PhysicalPtr anc_;
  PhysicalPtr desc_;
  int anc_idx_;
  int desc_idx_;
  Axis axis_;
  std::vector<Tuple> stack_;
  std::deque<Tuple> pending_;
  std::optional<Tuple> next_anc_;
  uint64_t ticks_ = 0;
};

// --- Streaming StackTreeAnc_φ (semi / outer / nest structural joins) ---------

// The ancestor-grouped counterpart of StackTreeDescPhys: both inputs in
// document order on the join attributes, output follows the *ancestor* side.
// Each in-flight ancestor accumulates its matching descendants; it is
// complete once the descendant cursor has passed its subtree. Ancestors
// nest, so an inner one completes before the outer one it lives in — the
// in-flight queue releases completed entries strictly front-first to keep
// the output in ancestor document order. Tuples with a null join id match
// nothing (outer/nest variants still emit them, padded/empty).
class StackTreeVariantPhys : public PhysBase {
 public:
  StackTreeVariantPhys(PhysicalPtr anc, PhysicalPtr desc, int anc_idx,
                       int desc_idx, Axis axis, JoinVariant variant,
                       const std::string& nest_as)
      : anc_(std::move(anc)),
        desc_(std::move(desc)),
        anc_idx_(anc_idx),
        desc_idx_(desc_idx),
        axis_(axis),
        variant_(variant) {
    schema_ = JoinOutputSchema(*anc_->schema(), *desc_->schema(), variant,
                               nest_as);
    order_ = OrderDescriptor::On(anc_->schema()->attr(anc_idx).name);
  }
  std::string label() const override {
    return std::string("StackTreeAnc_phi:") + JoinVariantName(variant_) +
           "[" + anc_->schema()->attr(anc_idx_).name + " " +
           (axis_ == Axis::kChild ? "parent-of" : "ancestor-of") + " " +
           desc_->schema()->attr(desc_idx_).name + "]";
  }
  std::vector<PhysicalOperator*> children() const override {
    return {anc_.get(), desc_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kStructuralJoin; }
  // Both cursors must advance in document order for the stack discipline to
  // see every (ancestor, descendant) containment.
  OrderDescriptor RequiredChildOrder(size_t child) const override {
    return child == 0
               ? OrderDescriptor::On(anc_->schema()->attr(anc_idx_).name)
               : OrderDescriptor::On(desc_->schema()->attr(desc_idx_).name);
  }
  // Output follows the ancestor queue: ordered on the ancestor attribute
  // exactly when the ancestor input is.
  OrderDescriptor ProvableOrder() const override {
    OrderDescriptor req =
        OrderDescriptor::On(anc_->schema()->attr(anc_idx_).name);
    return OrderCovers(anc_->order(), req) ? order_ : OrderDescriptor();
  }
  bool OrderSensitive() const override { return true; }

 protected:
  Status OpenImpl() override {
    ULOAD_RETURN_NOT_OK(anc_->Open());
    ULOAD_RETURN_NOT_OK(desc_->Open());
    inflight_.clear();
    stack_.clear();
    pending_.clear();
    desc_done_ = false;
    ULOAD_ASSIGN_OR_RETURN(next_anc_, anc_->NextTuple());
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    TupleBatch out = NewBatch();
    while (!out.full()) {
      if (!pending_.empty()) {
        out.Add(std::move(pending_.front()));
        pending_.pop_front();
        continue;
      }
      if (desc_done_ && inflight_.empty() && !next_anc_.has_value()) break;
      // Same bounded-latency cancellation tick as StackTreeDesc_φ.
      if ((++ticks_ & 1023) == 0) ULOAD_RETURN_NOT_OK(CheckControl());
      ULOAD_RETURN_NOT_OK(Advance());
    }
    if (out.empty()) return std::optional<TupleBatch>();
    return std::optional<TupleBatch>(std::move(out));
  }
  void CloseImpl() override {
    anc_->Close();
    desc_->Close();
    inflight_.clear();
    stack_.clear();
    pending_.clear();
  }

 private:
  struct AncState {
    Tuple t;
    TupleList matches;
    bool done = false;
  };

  // Consumes one descendant (or the end of the descendant stream), then
  // releases every completed front-of-queue ancestor into pending_.
  Status Advance() {
    ULOAD_ASSIGN_OR_RETURN(std::optional<Tuple> d, desc_->NextTuple());
    if (!d.has_value()) {
      desc_done_ = true;
      // No future descendant exists: every ancestor still pending is done.
      while (next_anc_.has_value()) {
        ULOAD_RETURN_NOT_OK(PushAncestor(std::move(*next_anc_)));
        ULOAD_ASSIGN_OR_RETURN(next_anc_, anc_->NextTuple());
      }
      for (AncState& a : inflight_) a.done = true;
      stack_.clear();
      Release();
      return Status::Ok();
    }
    const AtomicValue& did = d->fields[desc_idx_].atom();
    if (did.is_null()) return Status::Ok();  // null ids match nothing
    if (did.kind() != AtomicValue::Kind::kSid) {
      return Status::TypeError(
          "streaming structural join requires (pre, post, depth) ids");
    }
    // Pull ancestors that start before this descendant.
    while (next_anc_.has_value()) {
      const AtomicValue& aid = next_anc_->fields[anc_idx_].atom();
      if (!aid.is_null()) {
        if (aid.kind() != AtomicValue::Kind::kSid) {
          return Status::TypeError(
              "streaming structural join requires (pre, post, depth) ids");
        }
        if (aid.sid().pre >= did.sid().pre) break;
      }
      ULOAD_RETURN_NOT_OK(PushAncestor(std::move(*next_anc_)));
      ULOAD_ASSIGN_OR_RETURN(next_anc_, anc_->NextTuple());
    }
    // Ancestors whose subtree ended before this descendant are complete —
    // no current or future descendant (pre-ascending) can fall inside them.
    while (!stack_.empty() &&
           stack_.back()->t.fields[anc_idx_].atom().sid().post <
               did.sid().post) {
      stack_.back()->done = true;
      stack_.pop_back();
    }
    int64_t d_bytes = -1;
    for (AncState* a : stack_) {
      const StructuralId& asid = a->t.fields[anc_idx_].atom().sid();
      bool match = axis_ == Axis::kChild ? IsParent(asid, did.sid())
                                         : IsAncestor(asid, did.sid());
      if (match) {
        if (d_bytes < 0) d_bytes = ApproxTupleBytes(*d);
        ULOAD_RETURN_NOT_OK(TrackGrow(d_bytes));
        a->matches.push_back(*d);
      }
    }
    Release();
    return Status::Ok();
  }

  Status PushAncestor(Tuple t) {
    ULOAD_RETURN_NOT_OK(TrackGrow(ApproxTupleBytes(t)));
    const AtomicValue& aid = t.fields[anc_idx_].atom();
    if (aid.is_null()) {
      // Null ids match nothing and need no stack entry; completed at once.
      inflight_.push_back(AncState{std::move(t), {}, true});
      return Status::Ok();
    }
    if (aid.kind() != AtomicValue::Kind::kSid) {
      return Status::TypeError(
          "streaming structural join requires (pre, post, depth) ids");
    }
    // Entries the new ancestor is disjoint from are complete: their whole
    // subtree precedes it, hence precedes every future descendant too.
    while (!stack_.empty() &&
           stack_.back()->t.fields[anc_idx_].atom().sid().post <
               aid.sid().post) {
      stack_.back()->done = true;
      stack_.pop_back();
    }
    inflight_.push_back(AncState{std::move(t), {}, false});
    stack_.push_back(&inflight_.back());
    return Status::Ok();
  }

  void Release() {
    while (!inflight_.empty() && inflight_.front().done) {
      AncState& a = inflight_.front();
      // The nest accumulator hands its contents to the consumer here; its
      // bytes leave this operator's account.
      TrackShrink(ApproxTupleBytes(a.t) + ApproxTupleListBytes(a.matches));
      switch (variant_) {
        case JoinVariant::kInner:
          for (Tuple& m : a.matches) {
            pending_.push_back(ConcatTuples(a.t, m));
          }
          break;
        case JoinVariant::kSemi:
          if (!a.matches.empty()) pending_.push_back(std::move(a.t));
          break;
        case JoinVariant::kLeftOuter:
          if (a.matches.empty()) {
            pending_.push_back(
                ConcatTuples(a.t, NullTuple(*desc_->schema())));
          } else {
            for (Tuple& m : a.matches) {
              pending_.push_back(ConcatTuples(a.t, m));
            }
          }
          break;
        case JoinVariant::kNestJoin:
          if (a.matches.empty()) break;
          [[fallthrough]];
        case JoinVariant::kNestOuter: {
          Tuple t = std::move(a.t);
          t.fields.emplace_back(std::move(a.matches));
          pending_.push_back(std::move(t));
          break;
        }
      }
      inflight_.pop_front();
    }
  }

  PhysicalPtr anc_;
  PhysicalPtr desc_;
  int anc_idx_;
  int desc_idx_;
  Axis axis_;
  JoinVariant variant_;
  // In-flight ancestors in arrival (document) order; a deque keeps the
  // stack_ pointers stable across push_back/pop_front.
  std::deque<AncState> inflight_;
  std::vector<AncState*> stack_;
  std::deque<Tuple> pending_;
  std::optional<Tuple> next_anc_;
  bool desc_done_ = false;
  uint64_t ticks_ = 0;
};

// --- Hash join / generic value join -----------------------------------------

class ValueJoinPhys : public PhysBase {
 public:
  ValueJoinPhys(PhysicalPtr left, PhysicalPtr right, std::string left_attr,
                Comparator cmp, std::string right_attr, JoinVariant variant,
                std::string nest_as)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_attr_(std::move(left_attr)),
        cmp_(cmp),
        right_attr_(std::move(right_attr)),
        variant_(variant) {
    schema_ = JoinOutputSchema(*left_->schema(), *right_->schema(), variant,
                               nest_as);
    order_ = left_->order();
  }
  std::string label() const override {
    std::string name =
        cmp_ == Comparator::kEq ? "HashJoin_phi" : "NestedLoopJoin_phi";
    return name + ":" + JoinVariantName(variant_) + "[" + left_attr_ + " " +
           ComparatorName(cmp_) + " " + right_attr_ + "]";
  }
  std::vector<PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kValueJoin; }
  // The probe side streams in order, so the left input's order survives for
  // the longest key prefix over surviving left attributes.
  OrderDescriptor ProvableOrder() const override {
    std::vector<OrderKey> kept;
    for (const OrderKey& k : left_->order().keys()) {
      if (!ResolveAttrPath(*left_->schema(), k.attr).ok()) break;
      kept.push_back(k);
    }
    return OrderDescriptor(std::move(kept));
  }
  // The probe side streams in order and each left tuple's matches are
  // emitted consecutively, so the left input's order survives for keys over
  // left attributes.
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    for (const OrderKey& k : order.keys()) {
      if (!ResolveAttrPath(*left_->schema(), k.attr).ok()) return false;
    }
    if (!left_->TryAdoptOrder(order)) return false;
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override {
    ULOAD_RETURN_NOT_OK(left_->Open());
    ULOAD_RETURN_NOT_OK(right_->Open());
    // Build side: materialize right; hash it for equality joins.
    build_.clear();
    hash_.clear();
    pending_.clear();
    ReleaseMemory(held_bytes());
    ULOAD_ASSIGN_OR_RETURN(AttrPath rp,
                           ResolveAttrPath(*right_->schema(), right_attr_));
    if (rp.size() != 1) {
      return Status::NotImplemented("physical join on nested right attr");
    }
    ridx_ = rp[0];
    ULOAD_ASSIGN_OR_RETURN(AttrPath lp,
                           ResolveAttrPath(*left_->schema(), left_attr_));
    if (lp.size() != 1) {
      return Status::NotImplemented("physical join on nested left attr");
    }
    lidx_ = lp[0];
    right_open_ = true;
    for (;;) {
      // Hash-build loop: cancellation check + budget charge per batch.
      ULOAD_RETURN_NOT_OK(CheckControl());
      ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b,
                             right_->NextBatch());
      if (!b.has_value()) break;
      ULOAD_RETURN_NOT_OK(ChargeMemory(b->ApproxBytes()));
      for (Tuple& t : b->tuples()) {
        if (cmp_ == Comparator::kEq) {
          const AtomicValue& v = t.fields[ridx_].atom();
          if (!v.is_null()) hash_[v.ToString()].push_back(build_.size());
        }
        build_.push_back(std::move(t));
      }
    }
    right_->Close();
    right_open_ = false;
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    TupleBatch out = NewBatch();
    while (!out.full()) {
      if (!pending_.empty()) {
        out.Add(std::move(pending_.front()));
        pending_.pop_front();
        continue;
      }
      ULOAD_ASSIGN_OR_RETURN(std::optional<Tuple> l, left_->NextTuple());
      if (!l.has_value()) break;
      std::vector<size_t> matches;
      const AtomicValue& lv = l->fields[lidx_].atom();
      if (cmp_ == Comparator::kEq) {
        if (!lv.is_null()) {
          auto it = hash_.find(lv.ToString());
          if (it != hash_.end()) matches = it->second;
        }
      } else {
        for (size_t j = 0; j < build_.size(); ++j) {
          if (CompareAtoms(lv, cmp_, build_[j].fields[ridx_].atom())) {
            matches.push_back(j);
          }
        }
      }
      Emit(*l, matches);
    }
    if (out.empty()) return std::optional<TupleBatch>();
    return std::optional<TupleBatch>(std::move(out));
  }
  void CloseImpl() override {
    left_->Close();
    // Open only when an aborted build left it open (see Sort_φ's CloseImpl).
    if (right_open_) {
      right_->Close();
      right_open_ = false;
    }
    build_.clear();
    hash_.clear();
    pending_.clear();
  }

 private:
  void Emit(const Tuple& l, const std::vector<size_t>& matches) {
    switch (variant_) {
      case JoinVariant::kInner:
        for (size_t j : matches) pending_.push_back(ConcatTuples(l, build_[j]));
        break;
      case JoinVariant::kSemi:
        if (!matches.empty()) pending_.push_back(l);
        break;
      case JoinVariant::kLeftOuter:
        if (matches.empty()) {
          pending_.push_back(ConcatTuples(l, NullTuple(*right_->schema())));
        } else {
          for (size_t j : matches) {
            pending_.push_back(ConcatTuples(l, build_[j]));
          }
        }
        break;
      case JoinVariant::kNestJoin:
      case JoinVariant::kNestOuter: {
        if (matches.empty() && variant_ == JoinVariant::kNestJoin) break;
        TupleList nested;
        for (size_t j : matches) nested.push_back(build_[j]);
        Tuple t = l;
        t.fields.emplace_back(std::move(nested));
        pending_.push_back(std::move(t));
        break;
      }
    }
  }

  PhysicalPtr left_;
  PhysicalPtr right_;
  std::string left_attr_;
  Comparator cmp_;
  std::string right_attr_;
  JoinVariant variant_;
  int lidx_ = 0;
  int ridx_ = 0;
  std::vector<Tuple> build_;
  std::unordered_map<std::string, std::vector<size_t>> hash_;
  std::deque<Tuple> pending_;
  bool right_open_ = false;
};

// --- Product -----------------------------------------------------------------

class ProductPhys : public PhysBase {
 public:
  ProductPhys(PhysicalPtr left, PhysicalPtr right)
      : left_(std::move(left)), right_(std::move(right)) {
    schema_ = Schema::Concat(*left_->schema(), *right_->schema());
    order_ = left_->order();
  }
  std::string label() const override { return "Product_phi"; }
  std::vector<PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kProduct; }
  // Each left tuple's combinations are emitted consecutively, so the left
  // input's order survives.
  OrderDescriptor ProvableOrder() const override { return left_->order(); }

 protected:
  Status OpenImpl() override {
    ULOAD_RETURN_NOT_OK(left_->Open());
    ULOAD_RETURN_NOT_OK(right_->Open());
    build_.clear();
    ReleaseMemory(held_bytes());
    right_open_ = true;
    for (;;) {
      // Build loop: cancellation check + budget charge per batch.
      ULOAD_RETURN_NOT_OK(CheckControl());
      ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b,
                             right_->NextBatch());
      if (!b.has_value()) break;
      ULOAD_RETURN_NOT_OK(ChargeMemory(b->ApproxBytes()));
      for (Tuple& t : b->tuples()) build_.push_back(std::move(t));
    }
    right_->Close();
    right_open_ = false;
    cur_.reset();
    rpos_ = build_.size();
    return Status::Ok();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    TupleBatch out = NewBatch();
    while (!out.full()) {
      if (rpos_ < build_.size()) {
        out.Add(ConcatTuples(*cur_, build_[rpos_++]));
        continue;
      }
      ULOAD_ASSIGN_OR_RETURN(cur_, left_->NextTuple());
      if (!cur_.has_value()) break;
      rpos_ = 0;
    }
    if (out.empty()) return std::optional<TupleBatch>();
    return std::optional<TupleBatch>(std::move(out));
  }
  void CloseImpl() override {
    left_->Close();
    if (right_open_) {
      right_->Close();
      right_open_ = false;
    }
    build_.clear();
  }

 private:
  PhysicalPtr left_;
  PhysicalPtr right_;
  std::vector<Tuple> build_;
  std::optional<Tuple> cur_;
  size_t rpos_ = 0;
  bool right_open_ = false;
};

// --- Union -------------------------------------------------------------------

class UnionPhys : public PhysBase {
 public:
  UnionPhys(PhysicalPtr left, PhysicalPtr right)
      : left_(std::move(left)), right_(std::move(right)) {
    schema_ = left_->schema();
  }
  std::string label() const override { return "Union_phi"; }
  std::vector<PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kUnion; }
  // Left-then-right concatenation proves no order across the seam.
  OrderDescriptor ProvableOrder() const override { return OrderDescriptor(); }

 protected:
  Status OpenImpl() override {
    on_right_ = false;
    ULOAD_RETURN_NOT_OK(left_->Open());
    return right_->Open();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    // Whole batches pass through; only the schema tag changes.
    if (!on_right_) {
      ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b, left_->NextBatch());
      if (b.has_value()) {
        b->set_schema(schema_);
        return b;
      }
      on_right_ = true;
    }
    ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b, right_->NextBatch());
    if (b.has_value()) b->set_schema(schema_);
    return b;
  }
  void CloseImpl() override {
    left_->Close();
    right_->Close();
  }

 private:
  PhysicalPtr left_;
  PhysicalPtr right_;
  bool on_right_ = false;
};

// --- Navigate ---------------------------------------------------------------

class NavigatePhys : public PhysBase {
 public:
  NavigatePhys(PhysicalPtr input, const LogicalPlan* plan,
               const DocumentStore* doc)
      : input_(std::move(input)), plan_(plan), doc_(doc) {
    emit_schema_ = NavigateEmitSchema(plan->nav_emit());
    schema_ = JoinOutputSchema(*input_->schema(), *emit_schema_,
                               plan->variant(),
                               plan->nest_as().empty() ? plan->nav_emit().prefix
                                                       : plan->nest_as());
    order_ = input_->order();
  }
  std::string label() const override {
    return "Navigate_phi[" + plan_->left_attr() + "]";
  }
  std::vector<PhysicalOperator*> children() const override {
    return {input_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kNavigate; }
  // Each input tuple expands into consecutive outputs, so the input's order
  // survives for the longest key prefix over carried-over input attributes.
  OrderDescriptor ProvableOrder() const override {
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input_->order().keys()) {
      if (!ResolveAttrPath(*input_->schema(), k.attr).ok()) break;
      kept.push_back(k);
    }
    return OrderDescriptor(std::move(kept));
  }
  // Navigation expands each input tuple into zero or more consecutive
  // output tuples, so the input's order survives (non-strictly) for keys
  // that refer to carried-over input attributes.
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    for (const OrderKey& k : order.keys()) {
      if (!ResolveAttrPath(*input_->schema(), k.attr).ok()) return false;
    }
    if (!input_->TryAdoptOrder(order)) return false;
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override {
    if (doc_ == nullptr) {
      return Status::InvalidArgument("Navigate_phi without a document");
    }
    ULOAD_ASSIGN_OR_RETURN(AttrPath lp,
                           ResolveAttrPath(*input_->schema(),
                                           plan_->left_attr()));
    if (lp.size() != 1) {
      return Status::NotImplemented("Navigate_phi from nested attribute");
    }
    lidx_ = lp[0];
    pending_.clear();
    return input_->Open();
  }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    TupleBatch out = NewBatch();
    while (!out.full()) {
      if (!pending_.empty()) {
        out.Add(std::move(pending_.front()));
        pending_.pop_front();
        continue;
      }
      ULOAD_ASSIGN_OR_RETURN(std::optional<Tuple> t, input_->NextTuple());
      if (!t.has_value()) break;
      ULOAD_RETURN_NOT_OK(Process(*t));
    }
    if (out.empty()) return std::optional<TupleBatch>();
    return std::optional<TupleBatch>(std::move(out));
  }
  void CloseImpl() override { input_->Close(); }

 private:
  Status Process(const Tuple& t) {
    const AtomicValue& id = t.fields[lidx_].atom();
    std::vector<NodeIndex> frontier;
    if (id.kind() == AtomicValue::Kind::kSid) {
      NodeIndex n = doc_->NodeByPre(id.sid().pre);
      if (n != kNoNode) frontier.push_back(n);
    } else if (id.kind() == AtomicValue::Kind::kDewey) {
      NodeIndex cur = doc_->document_node();
      bool ok = true;
      for (uint32_t arc : id.dewey()) {
        std::vector<NodeIndex> kids = doc_->Children(cur);
        if (arc == 0 || arc > kids.size()) {
          ok = false;
          break;
        }
        cur = kids[arc - 1];
      }
      if (ok) frontier.push_back(cur);
    }
    for (const NavStep& step : plan_->nav_steps()) {
      std::vector<NodeIndex> next;
      for (NodeIndex n : frontier) Collect(n, step, &next);
      frontier = std::move(next);
    }
    const NavEmit& emit = plan_->nav_emit();
    TupleList results;
    for (NodeIndex n : frontier) {
      Tuple e;
      if (emit.id) {
        if (emit.id_kind == IdKind::kParental) {
          e.fields.emplace_back(AtomicValue::Dewey(doc_->Dewey(n)));
        } else {
          e.fields.emplace_back(AtomicValue::Sid(doc_->sid(n)));
        }
      }
      if (emit.tag) {
        e.fields.emplace_back(AtomicValue::String(std::string(doc_->label(n))));
      }
      if (emit.val) e.fields.emplace_back(AtomicValue::String(doc_->Value(n)));
      if (emit.cont) {
        e.fields.emplace_back(AtomicValue::String(doc_->Content(n)));
      }
      results.push_back(std::move(e));
    }
    switch (plan_->variant()) {
      case JoinVariant::kInner:
        for (Tuple& e : results) pending_.push_back(ConcatTuples(t, e));
        break;
      case JoinVariant::kSemi:
        if (!results.empty()) pending_.push_back(t);
        break;
      case JoinVariant::kLeftOuter:
        if (results.empty()) {
          pending_.push_back(ConcatTuples(t, NullTuple(*emit_schema_)));
        } else {
          for (Tuple& e : results) pending_.push_back(ConcatTuples(t, e));
        }
        break;
      case JoinVariant::kNestJoin:
        if (results.empty()) break;
        [[fallthrough]];
      case JoinVariant::kNestOuter: {
        Tuple o = t;
        o.fields.emplace_back(std::move(results));
        pending_.push_back(std::move(o));
        break;
      }
    }
    return Status::Ok();
  }

  void Collect(NodeIndex from, const NavStep& step,
               std::vector<NodeIndex>* out) const {
    auto matches = [&](NodeIndex n) {
      if (step.label.empty()) return doc_->is_element(n);
      if (step.label == "#text") return doc_->is_text(n);
      if (step.label[0] == '@') {
        return doc_->is_attribute(n) &&
               doc_->label(n) == std::string_view(step.label).substr(1);
      }
      return doc_->is_element(n) && doc_->label(n) == step.label;
    };
    if (step.axis == Axis::kChild) {
      for (NodeIndex c : doc_->Children(from)) {
        if (matches(c)) out->push_back(c);
      }
      return;
    }
    std::vector<NodeIndex> work = doc_->Children(from);
    std::reverse(work.begin(), work.end());
    while (!work.empty()) {
      NodeIndex c = work.back();
      work.pop_back();
      if (matches(c)) out->push_back(c);
      std::vector<NodeIndex> kids = doc_->Children(c);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        work.push_back(*it);
      }
    }
  }

  PhysicalPtr input_;
  const LogicalPlan* plan_;
  const DocumentStore* doc_;
  SchemaPtr emit_schema_;
  int lidx_ = 0;
  std::deque<Tuple> pending_;
};

// --- Rename (metadata-only) --------------------------------------------------

class RenamePhys : public PhysBase {
 public:
  RenamePhys(PhysicalPtr input, const std::string& prefix)
      : input_(std::move(input)), prefix_(prefix) {
    schema_ = PrefixedSchema(*input_->schema(), prefix);
    // A rename keeps tuple order; top-level order keys survive under their
    // prefixed names.
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input_->order().keys()) {
      if (k.attr.find('.') != std::string::npos) break;
      kept.push_back(OrderKey{prefix_ + k.attr, k.ascending});
    }
    order_ = OrderDescriptor(std::move(kept));
  }
  std::string label() const override { return "Rename_phi"; }
  std::vector<PhysicalOperator*> children() const override {
    return {input_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kRename; }
  // Recompute the constructor's key translation from the input's current
  // order: top-level keys survive under their prefixed names.
  OrderDescriptor ProvableOrder() const override {
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input_->order().keys()) {
      if (k.attr.find('.') != std::string::npos) break;
      kept.push_back(OrderKey{prefix_ + k.attr, k.ascending});
    }
    return OrderDescriptor(std::move(kept));
  }
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    // Strip the prefix off every key and ask the input.
    std::vector<OrderKey> translated;
    for (const OrderKey& k : order.keys()) {
      if (k.attr.find('.') != std::string::npos) return false;
      if (k.attr.compare(0, prefix_.size(), prefix_) != 0) return false;
      translated.push_back(
          OrderKey{k.attr.substr(prefix_.size()), k.ascending});
    }
    if (!input_->TryAdoptOrder(OrderDescriptor(std::move(translated)))) {
      return false;
    }
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override { return input_->Open(); }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b, input_->NextBatch());
    if (b.has_value()) b->set_schema(schema_);
    return b;
  }
  void CloseImpl() override { input_->Close(); }

 private:
  PhysicalPtr input_;
  std::string prefix_;
};

// --- Retype (metadata-only) --------------------------------------------------

// Re-tags the stream with a structurally identical schema (the rewriter's
// view-schema stamp). Order descriptors name attributes, so the input's
// advertised order carries over with its key names translated positionally
// old-schema → new-schema; adoption requests translate the other way.
class RetypePhys : public PhysBase {
 public:
  static Result<PhysicalPtr> Make(PhysicalPtr input, SchemaPtr schema) {
    ULOAD_RETURN_NOT_OK(CheckSameShape(*input->schema(), *schema));
    auto p = std::unique_ptr<RetypePhys>(new RetypePhys());
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input->order().keys()) {
      int idx = input->schema()->IndexOf(k.attr);
      if (idx < 0 || schema->attr(idx).is_collection) break;
      kept.push_back(OrderKey{schema->attr(idx).name, k.ascending});
    }
    p->order_ = OrderDescriptor(std::move(kept));
    p->schema_ = std::move(schema);
    p->input_ = std::move(input);
    return PhysicalPtr(std::move(p));
  }
  std::string label() const override { return "Retype_phi"; }
  std::vector<PhysicalOperator*> children() const override {
    return {input_.get()};
  }
  PhysOpKind kind() const override { return PhysOpKind::kRetype; }
  // Recompute the constructor's positional key translation from the input's
  // current order: old-schema names map to new-schema names by index.
  OrderDescriptor ProvableOrder() const override {
    std::vector<OrderKey> kept;
    for (const OrderKey& k : input_->order().keys()) {
      int idx = input_->schema()->IndexOf(k.attr);
      if (idx < 0 || schema_->attr(idx).is_collection) break;
      kept.push_back(OrderKey{schema_->attr(idx).name, k.ascending});
    }
    return OrderDescriptor(std::move(kept));
  }
  bool TryAdoptOrder(const OrderDescriptor& order) override {
    std::vector<OrderKey> translated;
    for (const OrderKey& k : order.keys()) {
      int idx = schema_->IndexOf(k.attr);
      if (idx < 0 || schema_->attr(idx).is_collection) return false;
      translated.push_back(
          OrderKey{input_->schema()->attr(idx).name, k.ascending});
    }
    if (!input_->TryAdoptOrder(OrderDescriptor(std::move(translated)))) {
      return false;
    }
    order_ = order;
    return true;
  }

 protected:
  Status OpenImpl() override { return input_->Open(); }
  Result<std::optional<TupleBatch>> NextBatchImpl() override {
    ULOAD_ASSIGN_OR_RETURN(std::optional<TupleBatch> b, input_->NextBatch());
    if (b.has_value()) b->set_schema(schema_);
    return b;
  }
  void CloseImpl() override { input_->Close(); }

 private:
  RetypePhys() = default;
  PhysicalPtr input_;
};

// --- Compiler ----------------------------------------------------------------

class Compiler {
 public:
  Compiler(const EvalContext& ctx, size_t thread_budget, bool allow_unordered)
      : ctx_(ctx),
        thread_budget_(thread_budget == 0 ? 1 : thread_budget),
        allow_unordered_(allow_unordered) {}

  Result<PhysicalPtr> Compile(const PlanPtr& plan) {
    // Keep the logical plan alive for operators that reference it.
    roots_.push_back(plan);
    root_ = plan.get();
    if (!in_worker_ && allow_unordered_ && thread_budget_ > 1) {
      // The caller waived result order, so a root that is a plain filter
      // chain over a scan can fan out through ExchangeProduce.
      ULOAD_ASSIGN_OR_RETURN(PhysicalPtr par, TryParallelRootChain(*plan));
      if (par) return PhysicalPtr(std::move(par));
    }
    return Rec(*plan);
  }

  // Sort_φ elision sites of the last Compile(): each operator must keep
  // covering the order the elided enforcer would have established. Entries
  // point into the compiled tree; consume before it is destroyed.
  std::vector<std::pair<const PhysicalOperator*, OrderDescriptor>>
  TakeObligations() {
    return std::move(obligations_);
  }

 private:
  // Wraps `input` in Sort_φ unless the stream is already ordered on `attr`
  // or the operator can prove (TryAdoptOrder) that it is — scans over
  // document-ordered relations satisfy structural-join requirements without
  // an enforcer, serially and inside Exchange worker pipelines where a
  // replicated sort would be paid once per worker. Every elision is recorded
  // as an obligation the plan verifier re-checks against the finished tree.
  PhysicalPtr EnsureOrder(PhysicalPtr input, const std::string& attr) {
    OrderDescriptor required = OrderDescriptor::On(attr);
    if ((!input->order().empty() && input->order().keys()[0].attr == attr) ||
        input->TryAdoptOrder(required)) {
      obligations_.emplace_back(input.get(), std::move(required));
      return input;
    }
    return std::make_unique<SortPhys>(std::move(input),
                                      OrderDescriptor::On(attr));
  }

  // The Scan at the bottom of a Select* chain, or nullptr for any other
  // shape. Chains are the fragments cheap enough to replicate per worker.
  static const LogicalPlan* SelectChainLeaf(const LogicalPlan& p) {
    const LogicalPlan* cur = &p;
    while (cur->op() == PlanOp::kSelect) cur = cur->left().get();
    return cur->op() == PlanOp::kScan ? cur : nullptr;
  }

  void EnterPartition(const LogicalPlan* leaf, size_t nparts) {
    in_worker_ = true;
    part_leaf_ = leaf;
    nparts_ = nparts;
  }

  void LeavePartition() {
    in_worker_ = false;
    part_leaf_ = nullptr;
    nparts_ = 1;
    part_ = 0;
  }

  // Fallback: evaluate the subtree with the materializing evaluator and
  // stream the result (covers operators without a dedicated physical
  // implementation, e.g. nested-attribute structural joins).
  Result<PhysicalPtr> Materialize(const LogicalPlan& plan,
                                  const std::string& label) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation data, Evaluate(plan, ctx_));
    return PhysicalPtr(std::make_unique<MaterialPhys>(
        std::move(data), label, OrderDescriptor()));
  }

  // Fans a Select*/Scan chain out over N workers with a partitioned scan,
  // collected in arrival order — only legal when the consumer waived order.
  // Returns nullptr when the shape or the sizes are not eligible.
  // Tuple count of a scannable leaf: a bound relation or a catalog view
  // (virtual extents report their row-set size without materializing);
  // -1 when the name resolves to neither.
  int64_t LeafSize(const std::string& name) const {
    auto it = ctx_.relations.find(name);
    if (it != ctx_.relations.end()) return it->second->size();
    auto vit = ctx_.views.find(name);
    if (vit != ctx_.views.end()) return vit->second->row_count();
    return -1;
  }

  Result<PhysicalPtr> TryParallelRootChain(const LogicalPlan& p) {
    const LogicalPlan* leaf = SelectChainLeaf(p);
    if (leaf == nullptr) return PhysicalPtr();
    int64_t size = LeafSize(leaf->relation());
    if (size < 0) return PhysicalPtr();
    size_t n = ChooseWorkerCount(size, thread_budget_);
    if (n < 2) return PhysicalPtr();
    std::vector<PhysicalPtr> workers;
    EnterPartition(leaf, n);
    for (size_t w = 0; w < n; ++w) {
      part_ = w;
      Result<PhysicalPtr> sub = Rec(p);
      if (!sub.ok()) {
        LeavePartition();
        return sub.status();
      }
      workers.push_back(std::move(*sub));
    }
    LeavePartition();
    return PhysicalPtr(
        std::make_unique<ExchangeProducePhys>(std::move(workers)));
  }

  // Fans an eligible inner structural join out: the descendant side is a
  // Select*/Scan chain whose scan partitions into contiguous pre-order
  // ranges, the ancestor chain is replicated per worker (the join pulls
  // ancestors lazily, so each worker reads only the prefix its slice
  // needs). Worker streams are disjoint and locally ordered on the
  // descendant attribute, so ExchangeMerge reproduces the serial engine's
  // output exactly; when this join is the plan root and the caller waived
  // order, ExchangeProduce collects in arrival order instead. Returns
  // nullptr when the shape or the sizes are not eligible.
  Result<PhysicalPtr> TryParallelStructuralJoin(const LogicalPlan& p,
                                                int anc_idx, int desc_idx) {
    if (in_worker_ || thread_budget_ < 2) return PhysicalPtr();
    const LogicalPlan* anc_leaf = SelectChainLeaf(*p.left());
    const LogicalPlan* desc_leaf = SelectChainLeaf(*p.right());
    // Distinct leaves required: partitioning is keyed by plan node, and a
    // shared node would slice the ancestor side too.
    if (anc_leaf == nullptr || desc_leaf == nullptr || anc_leaf == desc_leaf) {
      return PhysicalPtr();
    }
    int64_t dsize = LeafSize(desc_leaf->relation());
    if (dsize < 0) return PhysicalPtr();
    size_t n = ChooseWorkerCount(dsize, thread_budget_);
    if (n < 2) return PhysicalPtr();
    std::vector<PhysicalPtr> workers;
    EnterPartition(desc_leaf, n);
    for (size_t w = 0; w < n; ++w) {
      part_ = w;
      Result<PhysicalPtr> l = Rec(*p.left());
      Result<PhysicalPtr> r = Rec(*p.right());
      if (!l.ok() || !r.ok()) {
        LeavePartition();
        return !l.ok() ? l.status() : r.status();
      }
      PhysicalPtr anc = EnsureOrder(std::move(*l), p.left_attr());
      PhysicalPtr desc = EnsureOrder(std::move(*r), p.right_attr());
      workers.push_back(std::make_unique<StackTreeDescPhys>(
          std::move(anc), std::move(desc), anc_idx, desc_idx, p.axis()));
    }
    LeavePartition();
    if (allow_unordered_ && &p == root_) {
      return PhysicalPtr(
          std::make_unique<ExchangeProducePhys>(std::move(workers)));
    }
    return PhysicalPtr(
        std::make_unique<ExchangeMergePhys>(std::move(workers)));
  }

  Result<PhysicalPtr> Rec(const LogicalPlan& p) {
    switch (p.op()) {
      case PlanOp::kScan: {
        // Virtual column-backed extents (storage/store.h) have no
        // materialized relation: route their scans straight to the columnar
        // store. Materialized views resolve through `relations` as before.
        auto vit = ctx_.views.find(p.relation());
        if (vit != ctx_.views.end() &&
            vit->second->virtual_store() != nullptr) {
          if (in_worker_ && part_leaf_ == &p) {
            return PhysicalPtr(std::make_unique<ColumnarParallelScanPhys>(
                vit->second, p.relation(), part_, nparts_));
          }
          return PhysicalPtr(
              std::make_unique<ColumnarScanPhys>(vit->second, p.relation()));
        }
        auto it = ctx_.relations.find(p.relation());
        if (it == ctx_.relations.end()) {
          return Status::NotFound("relation '" + p.relation() + "' unbound");
        }
        if (in_worker_ && part_leaf_ == &p) {
          return PhysicalPtr(std::make_unique<ParallelScanPhys>(
              it->second, p.relation(), part_, nparts_));
        }
        return PhysicalPtr(
            std::make_unique<ScanPhys>(it->second, p.relation()));
      }
      case PlanOp::kIndexScan: {
        // Preferred: the storage layer's streaming binding (view data +
        // matching row ids, no per-query materialization). The materializing
        // lookup hook stays as the fallback for hand-built contexts.
        if (ctx_.index_bind) {
          ULOAD_ASSIGN_OR_RETURN(IndexBinding b,
                                 ctx_.index_bind(p.relation(), p.bindings()));
          return PhysicalPtr(std::make_unique<IndexScanPhys>(
              b.data, std::move(b.rows), p.relation()));
        }
        if (!ctx_.index_lookup) {
          return Status::InvalidArgument("no index lookup hook");
        }
        ULOAD_ASSIGN_OR_RETURN(NestedRelation data,
                               ctx_.index_lookup(p.relation(), p.bindings()));
        return PhysicalPtr(std::make_unique<MaterialPhys>(
            std::move(data), "IndexLookup_phi(" + p.relation() + ")",
            OrderDescriptor()));
      }
      case PlanOp::kSelect: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr in, Rec(*p.left()));
        return PhysicalPtr(
            std::make_unique<SelectPhys>(std::move(in), p.predicate()));
      }
      case PlanOp::kProject: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr in, Rec(*p.left()));
        return ProjectPhys::Make(std::move(in), p.attrs(), p.dedup());
      }
      case PlanOp::kProduct: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr l, Rec(*p.left()));
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr r, Rec(*p.right()));
        return PhysicalPtr(
            std::make_unique<ProductPhys>(std::move(l), std::move(r)));
      }
      case PlanOp::kValueJoin: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr l, Rec(*p.left()));
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr r, Rec(*p.right()));
        return PhysicalPtr(std::make_unique<ValueJoinPhys>(
            std::move(l), std::move(r), p.left_attr(), p.comparator(),
            p.right_attr(), p.variant(), p.nest_as()));
      }
      case PlanOp::kStructuralJoin: {
        // Streaming StackTree for structural joins on top-level attrs:
        // StackTreeDesc (descendant-ordered output, Exchange-parallelizable)
        // for inner joins, the ancestor-grouped StackTreeAnc for the
        // semi/outer/nest variants. Nested join attributes fall back to the
        // materializing evaluator.
        auto lres = ResolveAttrPath(*SchemaOf(p.left()), p.left_attr());
        auto rres = ResolveAttrPath(*SchemaOf(p.right()), p.right_attr());
        if (lres.ok() && rres.ok() && lres->size() == 1 &&
            rres->size() == 1) {
          if (p.variant() == JoinVariant::kInner) {
            ULOAD_ASSIGN_OR_RETURN(
                PhysicalPtr par,
                TryParallelStructuralJoin(p, (*lres)[0], (*rres)[0]));
            if (par) return PhysicalPtr(std::move(par));
          }
          ULOAD_ASSIGN_OR_RETURN(PhysicalPtr l, Rec(*p.left()));
          ULOAD_ASSIGN_OR_RETURN(PhysicalPtr r, Rec(*p.right()));
          PhysicalPtr anc = EnsureOrder(std::move(l), p.left_attr());
          PhysicalPtr desc = EnsureOrder(std::move(r), p.right_attr());
          if (p.variant() == JoinVariant::kInner) {
            return PhysicalPtr(std::make_unique<StackTreeDescPhys>(
                std::move(anc), std::move(desc), (*lres)[0], (*rres)[0],
                p.axis()));
          }
          return PhysicalPtr(std::make_unique<StackTreeVariantPhys>(
              std::move(anc), std::move(desc), (*lres)[0], (*rres)[0],
              p.axis(), p.variant(), p.nest_as()));
        }
        return Materialize(p, "StackTreeAnc_phi(materialized)");
      }
      case PlanOp::kUnion: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr l, Rec(*p.left()));
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr r, Rec(*p.right()));
        return PhysicalPtr(
            std::make_unique<UnionPhys>(std::move(l), std::move(r)));
      }
      case PlanOp::kNavigate: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr in, Rec(*p.left()));
        return PhysicalPtr(
            std::make_unique<NavigatePhys>(std::move(in), &p, ctx_.document));
      }
      case PlanOp::kPrefixNames: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr in, Rec(*p.left()));
        return PhysicalPtr(
            std::make_unique<RenamePhys>(std::move(in), p.nest_as()));
      }
      case PlanOp::kRetype: {
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr in, Rec(*p.left()));
        return RetypePhys::Make(std::move(in), p.retype_schema());
      }
      case PlanOp::kSortOp: {
        // Sort_φ enforcer with elision: skipped when the input's advertised
        // order already covers the requested keys, or when the input can
        // prove (TryAdoptOrder) that its data satisfies them.
        ULOAD_ASSIGN_OR_RETURN(PhysicalPtr in, Rec(*p.left()));
        std::vector<OrderKey> keys;
        for (const std::string& a : p.attrs()) {
          keys.push_back(OrderKey{a, true});
        }
        OrderDescriptor required(std::move(keys));
        if (OrderCovers(in->order(), required) ||
            in->TryAdoptOrder(required)) {
          obligations_.emplace_back(in.get(), required);
          return PhysicalPtr(std::move(in));
        }
        return PhysicalPtr(
            std::make_unique<SortPhys>(std::move(in), std::move(required)));
      }
      case PlanOp::kUnit: {
        NestedRelation unit(Schema::Make({}));
        unit.Add(Tuple{});
        return PhysicalPtr(std::make_unique<MaterialPhys>(
            std::move(unit), "Unit_phi", OrderDescriptor()));
      }
      // Remaining operators materialize through the evaluator.
      case PlanOp::kDifference:
        return Materialize(p, "Difference_phi(materialized)");
      case PlanOp::kNest:
        return Materialize(p, "Nest_phi(materialized)");
      case PlanOp::kUnnest:
        return Materialize(p, "Unnest_phi(materialized)");
      case PlanOp::kXmlConstruct:
        return Materialize(p, "Xml_phi(materialized)");
      case PlanOp::kDeriveParent:
        return Materialize(p, "DeriveParent_phi(materialized)");
    }
    return Status::Internal("unhandled plan operator");
  }

  // Output schema of a logical subtree, derived by compiling... to stay
  // cheap, we compile the child twice only for structural joins; schema
  // lookup goes through a temporary compilation of scans. The throwaway
  // tree is discarded, so obligations recorded while probing must be
  // dropped with it — they would dangle otherwise.
  SchemaPtr SchemaOf(const PlanPtr& plan) {
    size_t mark = obligations_.size();
    auto phys = Rec(*plan);
    obligations_.resize(mark);
    if (!phys.ok()) return Schema::Make({});
    return (*phys)->schema();
  }

  const EvalContext& ctx_;
  size_t thread_budget_;
  bool allow_unordered_;
  const LogicalPlan* root_ = nullptr;
  // Worker-pipeline compilation state: while set, the scan at `part_leaf_`
  // compiles into slice `part_` of `nparts_`, and no nested exchange is
  // placed.
  bool in_worker_ = false;
  const LogicalPlan* part_leaf_ = nullptr;
  size_t part_ = 0;
  size_t nparts_ = 1;
  std::vector<PlanPtr> roots_;
  std::vector<std::pair<const PhysicalOperator*, OrderDescriptor>>
      obligations_;
};

}  // namespace

Result<PhysicalPtr> CompilePhysicalPlan(const PlanPtr& plan,
                                        const EvalContext& ctx,
                                        ExecContext* exec) {
  Compiler compiler(ctx, exec == nullptr ? 1 : exec->thread_budget(),
                    exec != nullptr && exec->allow_unordered_root());
  ULOAD_ASSIGN_OR_RETURN(PhysicalPtr root, compiler.Compile(plan));
  if (exec != nullptr && exec->verify_plans()) {
    PhysicalVerifyOptions opts;
    opts.allow_unordered_root = exec->allow_unordered_root();
    opts.order_obligations = compiler.TakeObligations();
    ULOAD_RETURN_NOT_OK(VerifyPhysicalPlan(*root, opts));
  }
  if (exec != nullptr) root->Bind(exec);
  return root;
}

Result<NestedRelation> ExecutePhysical(PhysicalOperator* root) {
  NestedRelation out(root->schema());
  Status s = root->Open();
  if (s.ok()) {
    for (;;) {
      Result<std::optional<TupleBatch>> b = root->NextBatch();
      if (!b.ok()) {
        s = b.status();
        break;
      }
      if (!b->has_value()) break;
      for (Tuple& t : (*b)->tuples()) out.Add(std::move(t));
    }
  }
  // Close unconditionally: the error path is exactly where exchange workers
  // must be joined, queues drained, and budget charges returned.
  root->Close();
  ULOAD_RETURN_NOT_OK(s);
  return out;
}

Result<NestedRelation> ExecutePhysicalPlan(const PlanPtr& plan,
                                           const EvalContext& ctx,
                                           ExecContext* exec) {
  ULOAD_ASSIGN_OR_RETURN(PhysicalPtr root,
                         CompilePhysicalPlan(plan, ctx, exec));
  return ExecutePhysical(root.get());
}

}  // namespace uload
