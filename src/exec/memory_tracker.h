// MemoryTracker: hierarchical memory accounting with budgets.
//
// Trackers form a tree mirroring the resource hierarchy — engine → query →
// (implicitly, operator-held bytes tracked per operator in its metrics
// slot). A Charge() propagates up the chain; the first level whose budget
// would be exceeded rejects the charge with kResourceExhausted and the
// partial charge is rolled back, so a failed charge leaves every level's
// accounting unchanged. Exceeding a *query* budget therefore aborts only
// that query; concurrent queries under the same engine tracker keep their
// own headroom.
//
// Charging rules (see DESIGN.md §8): streamed batches are charged
// transiently per NextBatch() (peak detection at batch granularity);
// materializing operators (Sort_φ buffers, hash/product builds, the
// StackTree in-flight deques, dedup sets, exchange queue slots) charge what
// they hold and release it at Close(), so an aborted query always returns
// to zero.
//
// Thread safety: Charge/Release/used/peak are lock-free and callable from
// any thread (exchange workers charge concurrently). set_limit/Reset are
// configuration-time only.
#ifndef ULOAD_EXEC_MEMORY_TRACKER_H_
#define ULOAD_EXEC_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace uload {

class MemoryTracker {
 public:
  // `limit_bytes` 0 = unlimited (accounting only). `parent` must outlive
  // this tracker.
  explicit MemoryTracker(std::string name = "query", int64_t limit_bytes = 0,
                         MemoryTracker* parent = nullptr)
      : name_(std::move(name)), limit_(limit_bytes), parent_(parent) {}

  // Accounts `bytes` here and in every ancestor. On budget exhaustion at
  // any level the whole charge is undone and kResourceExhausted returned.
  Status Charge(int64_t bytes) {
    if (bytes <= 0) return Status::Ok();
    int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    if (limit_ > 0 && now > limit_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          name_ + " memory budget exceeded: " + std::to_string(now) + " of " +
          std::to_string(limit_) + " bytes");
    }
    if (parent_ != nullptr) {
      Status st = parent_->Charge(bytes);
      if (!st.ok()) {
        used_.fetch_sub(bytes, std::memory_order_relaxed);
        return st;
      }
    }
    return Status::Ok();
  }

  void Release(int64_t bytes) {
    if (bytes <= 0) return;
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_; }
  const std::string& name() const { return name_; }

  // Configuration-time only (no queries in flight).
  void set_limit(int64_t bytes) { limit_ = bytes; }
  void Reset() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  int64_t limit_;
  MemoryTracker* parent_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace uload

#endif  // ULOAD_EXEC_MEMORY_TRACKER_H_
