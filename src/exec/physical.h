// Physical operators (thesis §1.2.3): the iterator-model execution engine.
//
// Each logical operator op has a physical counterpart op_φ; all physical
// operators consume and produce streams of (possibly nested) tuples through
// the classic Open/Next/Close interface. Structural joins are implemented
// by the streaming StackTreeAnc algorithm, which requires both inputs in
// document order — the compiler tracks order descriptors and inserts Sort_φ
// enforcers exactly where the requirement is not already met, the way the
// thesis's optimizer pipes structural joins into each other.
#ifndef ULOAD_EXEC_PHYSICAL_H_
#define ULOAD_EXEC_PHYSICAL_H_

#include <memory>
#include <optional>

#include "exec/evaluator.h"
#include "exec/order_descriptor.h"

namespace uload {

// Pull-based physical operator.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual Status Open() = 0;
  // Produces the next tuple, or nullopt at end of stream.
  virtual Result<std::optional<Tuple>> Next() = 0;
  virtual void Close() = 0;

  // Output schema, valid after construction.
  virtual const SchemaPtr& schema() const = 0;
  // Order of the produced stream (may be empty = unordered).
  virtual const OrderDescriptor& order() const = 0;

  // Operator-tree rendering with physical operator names.
  virtual std::string Describe(int indent = 0) const = 0;
};

using PhysicalPtr = std::unique_ptr<PhysicalOperator>;

// Compiles a logical plan into a physical operator tree. Inputs of
// structural joins that are not already sorted on the join attribute get a
// Sort_φ enforcer. Navigation/index operators capture the context.
Result<PhysicalPtr> CompilePhysicalPlan(const PlanPtr& plan,
                                        const EvalContext& ctx);

// Drains a physical operator tree into a materialized relation.
Result<NestedRelation> ExecutePhysical(PhysicalOperator* root);

// Convenience: compile + execute.
Result<NestedRelation> ExecutePhysicalPlan(const PlanPtr& plan,
                                           const EvalContext& ctx);

}  // namespace uload

#endif  // ULOAD_EXEC_PHYSICAL_H_
