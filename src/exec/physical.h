// Physical operators (thesis §1.2.3): the batch-at-a-time execution engine.
//
// Each logical operator op has a physical counterpart op_φ; all physical
// operators consume and produce streams of (possibly nested) tuples through
// an Open/NextBatch/Close interface. A NextBatch() call returns up to one
// TupleBatch (default 1024 tuples), so per-call costs — virtual dispatch,
// runtime accounting, clock reads — amortize over the whole batch instead of
// being paid per tuple. A thin NextTuple() adapter on the base class serves
// operators with inherently tuple-wise consumption (the StackTree join walks
// both inputs cursor-style) and legacy call sites.
//
// Structural joins are implemented by the streaming StackTreeAnc algorithm,
// which requires both inputs in document order — the compiler tracks order
// descriptors and inserts Sort_φ enforcers exactly where the requirement is
// not already met, the way the thesis's optimizer pipes structural joins
// into each other.
//
// Runtime observability: binding the compiled tree to an ExecContext gives
// every operator a counter slot (batches/tuples produced, Open/NextBatch
// wall-clock). DescribeAnalyze() renders the plan with those counters, the
// EXPLAIN-ANALYZE view of an executed plan.
#ifndef ULOAD_EXEC_PHYSICAL_H_
#define ULOAD_EXEC_PHYSICAL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/tuple_batch.h"
#include "exec/evaluator.h"
#include "exec/exec_context.h"
#include "exec/order_descriptor.h"

namespace uload {

// Coarse physical-operator class, exposed for the static plan verifier
// (verify/plan_verifier.h): placement rules key on it, and diagnostics name
// it. Operators that no rule cares about report kOther.
enum class PhysOpKind : uint8_t {
  kOther = 0,
  kScan,
  kParallelScan,
  kIndexScan,
  kMaterial,
  kSelect,
  kProject,
  kSort,
  kStructuralJoin,  // StackTreeDesc and the StackTreeAnc variants
  kValueJoin,
  kProduct,
  kUnion,
  kNavigate,
  kRename,
  kRetype,
  kExchangeMerge,
  kExchangeProduce,
};

// Pull-based batch-at-a-time physical operator.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  // Template methods: wrap the per-operator implementation with runtime
  // accounting. Open() also resets the NextTuple() adapter cursor, so
  // re-opening an operator tree replays the stream from the start.
  Status Open();
  // Produces the next batch of tuples, or nullopt at end of stream.
  // Returned batches are non-empty and hold at most the configured batch
  // size (the fill target; see TupleBatch).
  Result<std::optional<TupleBatch>> NextBatch();
  void Close();

  // Tuple-at-a-time adapter over NextBatch(): hands out the buffered batch
  // one tuple at a time, pulling a fresh batch when it runs dry.
  Result<std::optional<Tuple>> NextTuple();

  // Output schema, valid after construction.
  virtual const SchemaPtr& schema() const = 0;
  // Order of the produced stream (may be empty = unordered).
  virtual const OrderDescriptor& order() const = 0;

  // One-line operator rendering without indentation or children, e.g.
  // "Select_phi[n_Val contains-word 'Smith']".
  virtual std::string label() const = 0;
  // Input operators in display order.
  virtual std::vector<PhysicalOperator*> children() const { return {}; }

  // Operator-tree rendering with physical operator names; two spaces of
  // indentation per tree level.
  std::string Describe(int indent = 0) const;
  // Describe() plus the per-operator runtime counters of the last
  // execution — EXPLAIN ANALYZE for an executed plan.
  std::string DescribeAnalyze(int indent = 0) const;

  // Binds this subtree to `ctx`: operators adopt the configured batch size
  // and register their runtime counters with the context. `ctx` must
  // outlive the operator tree. Without a bind, operators run with the
  // default batch size and keep counters in a private slot. Must be called
  // from the compiling thread only (see ExecContext threading contract).
  void Bind(ExecContext* ctx);

  // If this operator can prove its output already satisfies `order` (e.g. a
  // scan over a relation that is physically sorted on the order's key), it
  // adopts the descriptor as its advertised order and returns true. The
  // compiler uses this to elide Sort_φ enforcers above document-ordered
  // scans — serially and inside Exchange worker pipelines, where a
  // replicated sort would be paid once per worker.
  virtual bool TryAdoptOrder(const OrderDescriptor& order) {
    (void)order;
    return false;
  }

  // Adds `other`'s runtime counters (recursively, zipping children) into
  // this subtree's counters and resets `other`'s. Both trees must have the
  // same shape; Exchange uses this to roll per-worker pipelines up into the
  // template pipeline after the worker threads are joined.
  void MergeMetricsFrom(PhysicalOperator& other);

  const OperatorMetrics& metrics() const { return *metrics_; }

  // --- Static-verification surface (verify/plan_verifier.h) ---------------

  // Coarse operator class for placement rules and diagnostics.
  virtual PhysOpKind kind() const { return PhysOpKind::kOther; }

  // Order the `child`-th input stream (in children() order) must satisfy for
  // this operator's algorithm to be correct; empty = no requirement. The
  // StackTree joins require document order on their join attributes, the
  // ExchangeMerge collector requires every worker ordered on its merge keys.
  virtual OrderDescriptor RequiredChildOrder(size_t child) const {
    (void)child;
    return OrderDescriptor();
  }

  // The order this operator may soundly advertise, recomputed from its
  // children's *current* advertised orders by the operator's own propagation
  // rule. The verifier checks that the advertised order() is covered by this
  // recomputation — an operator may not claim an order it cannot derive.
  // Leaves (scans over materialized data) prove their order from the data at
  // adoption time, so their advertised order is its own witness: the default
  // returns order() unchanged.
  virtual OrderDescriptor ProvableOrder() const { return order(); }

  // True when the operator's output *content or determinism* depends on its
  // input arriving in a specific order (the StackTree merges, the k-way
  // exchange merge, stable Sort_φ tie-breaks, first-wins dedup projection).
  // Such operators must never sit above an arrival-order ExchangeProduce.
  virtual bool OrderSensitive() const { return false; }

  // Input subtrees the verifier must walk. Defaults to children(); the
  // exchanges override it to expose *all* worker pipelines, not just the
  // template pipeline that children() renders.
  virtual std::vector<PhysicalOperator*> VerifyChildren() const {
    return children();
  }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<std::optional<TupleBatch>> NextBatchImpl() = 0;
  virtual void CloseImpl() = 0;

  // --- Resource governor hooks (exec/query_control.h, memory_tracker.h) ---
  // Open()/NextBatch() check cancellation/deadline at every call; an
  // operator whose *implementation* loops long without returning (Sort_φ
  // materialization, hash/product builds, the StackTree deques, the k-way
  // exchange merge) additionally calls CheckControl() per consumed batch.
  Status CheckControl();

  // Budgeted accounting of operator-held memory (sort buffers, hash tables,
  // nest accumulators, dedup sets). Charges go to the context's tracker
  // hierarchy and count toward this operator's peak_bytes metric; Close()
  // releases whatever is still held, so an aborted query always returns the
  // tracker to zero. ChargeMemory fails with kResourceExhausted when a
  // budget level would be exceeded, leaving the accounting unchanged.
  Status ChargeMemory(int64_t bytes);
  void ReleaseMemory(int64_t bytes);
  int64_t held_bytes() const { return held_bytes_; }

  // Quantum-buffered variants for streaming state that grows and shrinks
  // tuple-wise (the StackTree in-flight/pending deques): deltas accumulate
  // locally and hit the shared tracker only once per ±64 KiB, so per-tuple
  // accounting costs no per-tuple atomics. Close() reconciles the remainder.
  Status TrackGrow(int64_t bytes);
  void TrackShrink(int64_t bytes);

  // Bind() hook for the subtree below this operator; the default binds
  // children() to the same context. Exchange overrides it to bind each
  // worker pipeline to a private per-worker counter set.
  virtual void BindChildren(ExecContext* ctx);

  // Configured fill target for produced batches.
  size_t batch_size() const { return batch_size_; }
  // Fresh output batch tagged with this operator's schema.
  TupleBatch NewBatch() const { return TupleBatch(schema(), batch_size_); }

 private:
  void ReleaseAllMemory();

  size_t batch_size_ = TupleBatch::kDefaultCapacity;
  // Debug-mode batch validation (verify/batch_validator.h): every produced
  // batch is cross-checked against schema(). Adopted from the ExecContext at
  // Bind(); unbound operators use the build's compile-time default.
  bool validate_batches_ = kValidateBatchesDefault;
  // Governor state adopted at Bind(): the query's cancellation handle, the
  // optional budget tracker, and the fault spec (non-null only when
  // injection is enabled). Unbound operators run ungoverned.
  QueryControl* control_ = nullptr;
  MemoryTracker* memory_ = nullptr;
  const FaultSpec* fault_ = nullptr;
  int op_ordinal_ = -1;     // registration ordinal (fault-point address)
  int64_t open_calls_ = 0;  // per-instance call counters for fault matching
  int64_t next_calls_ = 0;
  int64_t held_bytes_ = 0;      // memory currently charged by this operator
  int64_t deferred_bytes_ = 0;  // TrackGrow/TrackShrink local accumulator
  OperatorMetrics local_metrics_;
  OperatorMetrics* metrics_ = &local_metrics_;
  // NextTuple() adapter state.
  std::optional<TupleBatch> adapter_batch_;
  size_t adapter_pos_ = 0;
  bool adapter_done_ = false;
};

using PhysicalPtr = std::unique_ptr<PhysicalOperator>;

// Compiles a logical plan into a physical operator tree. Inputs of
// structural joins that are not already sorted on the join attribute get a
// Sort_φ enforcer. Navigation/index operators capture the context. When
// `exec` is non-null the compiled tree is bound to it (batch size + runtime
// counters); `exec` must then outlive the returned tree.
Result<PhysicalPtr> CompilePhysicalPlan(const PlanPtr& plan,
                                        const EvalContext& ctx,
                                        ExecContext* exec = nullptr);

// Drains a physical operator tree into a materialized relation.
Result<NestedRelation> ExecutePhysical(PhysicalOperator* root);

// Convenience: compile + execute.
Result<NestedRelation> ExecutePhysicalPlan(const PlanPtr& plan,
                                           const EvalContext& ctx,
                                           ExecContext* exec = nullptr);

}  // namespace uload

#endif  // ULOAD_EXEC_PHYSICAL_H_
