// Output-schema derivation shared by the materializing evaluator and the
// physical (iterator) engine.
#ifndef ULOAD_EXEC_PLAN_SCHEMAS_H_
#define ULOAD_EXEC_PLAN_SCHEMAS_H_

#include "algebra/logical_plan.h"
#include "algebra/relation.h"
#include "common/status.h"

namespace uload {

// Schema of a join's output per variant: concat (inner/outer), left only
// (semi), left + one collection named `nest_as` (nest variants).
SchemaPtr JoinOutputSchema(const Schema& left, const Schema& right,
                           JoinVariant variant, const std::string& nest_as);

// Schema with every attribute (at all nesting levels) renamed to
// <prefix><name>.
SchemaPtr PrefixedSchema(const Schema& schema, const std::string& prefix);

// Schema of the columns a Navigate emits.
SchemaPtr NavigateEmitSchema(const NavEmit& emit);

// Schema of a projection given dotted attribute paths (nested paths keep
// their collection structure).
Result<SchemaPtr> ProjectionSchema(const Schema& schema,
                                   const std::vector<std::string>& attrs);

// Per-tuple projection matching ProjectionSchema.
Result<Tuple> ProjectTupleTo(const Schema& schema,
                             const std::vector<std::string>& attrs,
                             const Tuple& tuple);

}  // namespace uload

#endif  // ULOAD_EXEC_PLAN_SCHEMAS_H_
