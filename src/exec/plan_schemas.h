// Output-schema derivation shared by the materializing evaluator and the
// physical (iterator) engine.
#ifndef ULOAD_EXEC_PLAN_SCHEMAS_H_
#define ULOAD_EXEC_PLAN_SCHEMAS_H_

#include "algebra/logical_plan.h"
#include "algebra/relation.h"
#include "common/status.h"

namespace uload {

// Schema of a join's output per variant: concat (inner/outer), left only
// (semi), left + one collection named `nest_as` (nest variants).
SchemaPtr JoinOutputSchema(const Schema& left, const Schema& right,
                           JoinVariant variant, const std::string& nest_as);

// Schema with every attribute (at all nesting levels) renamed to
// <prefix><name>.
SchemaPtr PrefixedSchema(const Schema& schema, const std::string& prefix);

// Schema of the columns a Navigate emits.
SchemaPtr NavigateEmitSchema(const NavEmit& emit);

// Schema of a projection given dotted attribute paths (nested paths keep
// their collection structure).
Result<SchemaPtr> ProjectionSchema(const Schema& schema,
                                   const std::vector<std::string>& attrs);

// Per-tuple projection matching ProjectionSchema.
Result<Tuple> ProjectTupleTo(const Schema& schema,
                             const std::vector<std::string>& attrs,
                             const Tuple& tuple);

// Prebuilt projection: resolves the dotted paths against the schema once so
// the per-tuple apply does no string work — the batched executor's hot path.
class TupleProjector {
 public:
  static Result<TupleProjector> Make(const Schema& schema,
                                     const std::vector<std::string>& attrs);
  const SchemaPtr& schema() const { return schema_; }
  Tuple Apply(const Tuple& t) const { return Project(roots_, t); }
  // Steals fields from `t`; each field index appears at most once, so the
  // moved-from tuple is simply discarded by the caller.
  Tuple Apply(Tuple&& t) const { return ProjectMove(roots_, t); }

 private:
  struct Node {
    int index = 0;
    bool recurse = false;  // project inside the collection at `index`
    std::vector<Node> kids;
  };
  static Tuple Project(const std::vector<Node>& nodes, const Tuple& t);
  static Tuple ProjectMove(const std::vector<Node>& nodes, Tuple& t);
  std::vector<Node> roots_;
  SchemaPtr schema_;
};

// TypeError unless `from` and `to` have the same structural shape (attribute
// count and atomic/collection pattern at every nesting level) — the Retype
// operator's legality check.
Status CheckSameShape(const Schema& from, const Schema& to);

}  // namespace uload

#endif  // ULOAD_EXEC_PLAN_SCHEMAS_H_
