// ExecContext: shared runtime state of one physical-plan execution.
//
// The context owns (a) the batch-size configuration every operator picks up
// when the compiled tree is bound to it, (b) the thread budget the compiler
// may spend on Exchange operators (exec/exchange.h), and (c) the
// per-operator runtime counters (batches/tuples produced, wall-clock spent
// in Open and NextBatch) that back the EXPLAIN-ANALYZE rendering
// (DescribeAnalyze). Counters live in a deque so registration never
// invalidates previously handed-out pointers; the context must outlive the
// operator tree bound to it.
//
// Threading contract: Register() and Bind() run on the compiling thread
// only. Each operator — including every operator inside an Exchange worker
// pipeline — owns a distinct counter slot, so workers never write a slot
// another thread writes; Exchange aggregates its workers' slots after the
// worker threads are joined (see exec/exchange.h). No atomics are needed on
// the hot path.
#ifndef ULOAD_EXEC_EXEC_CONTEXT_H_
#define ULOAD_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "algebra/tuple_batch.h"
#include "exec/memory_tracker.h"
#include "exec/query_control.h"

namespace uload {

// Compile-time default for the debug-mode batch validator
// (verify/batch_validator.h). The CMake option ULOAD_VALIDATE_BATCHES turns
// it on for every non-Release build, so all test configurations run with
// runtime schema cross-checking; Release serving builds leave it off.
#ifdef ULOAD_VALIDATE_BATCHES
inline constexpr bool kValidateBatchesDefault = true;
#else
inline constexpr bool kValidateBatchesDefault = false;
#endif

struct OperatorMetrics {
  std::string label;            // operator rendering at registration time
  int64_t batches_produced = 0;
  int64_t tuples_produced = 0;
  int64_t open_ns = 0;          // wall-clock inside Open(), inclusive
  int64_t next_ns = 0;          // wall-clock inside NextBatch(), inclusive
  int64_t peak_bytes = 0;       // peak bytes held by this operator

  void Reset() {
    batches_produced = 0;
    tuples_produced = 0;
    open_ns = 0;
    next_ns = 0;
    peak_bytes = 0;
  }

  // Adds `other`'s counters to this slot (label unchanged). Used to roll
  // per-worker Exchange counters up into the template pipeline's slots.
  void MergeFrom(const OperatorMetrics& other) {
    batches_produced += other.batches_produced;
    tuples_produced += other.tuples_produced;
    open_ns += other.open_ns;
    next_ns += other.next_ns;
    // Workers hold their buffers concurrently: their peaks add up.
    peak_bytes += other.peak_bytes;
  }

  // "batches=3 tuples=2310 open=0.12ms next=4.56ms" (+ " mem=<n>B" when the
  // operator held memory).
  std::string ToString() const;
};

// Deterministic fault-injection specification (testing only; see
// tests/exec_fault_test.cc). When enabled, the matching operator call —
// identified by the operator's registration ordinal and/or a label
// substring, the call site, and the per-operator call number — returns an
// injected kInternal error from the Open()/NextBatch() template method
// instead of running the operator implementation. The error must propagate
// out of Engine::Run as a clean Status with every worker joined, every
// queue drained and no state left behind; that contract is what the fault
// sweep enforces.
struct FaultSpec {
  enum class Site : uint8_t { kAny = 0, kOpen, kNextBatch };

  int op_index = -1;         // registration ordinal; -1 = any operator
  std::string op_substring;  // when non-empty the label must contain it
  Site site = Site::kAny;
  // Fire on the call_index-th matching call of each matching operator
  // (0-based, counted per operator instance); -1 disables deterministic
  // mode.
  int64_t call_index = -1;
  // Seeded random mode: every matching call fails independently with
  // probability random_prob, decided by a deterministic hash of
  // (seed, operator ordinal, site, call number) — reproducible across runs
  // and thread schedules.
  uint64_t random_seed = 0;
  double random_prob = 0.0;

  bool enabled() const {
    return call_index >= 0 || (random_seed != 0 && random_prob > 0.0);
  }

  // Decision for one operator call; deterministic in its arguments.
  bool ShouldFail(int op, const std::string& label, Site s,
                  int64_t call) const;
};

class ExecContext {
 public:
  explicit ExecContext(size_t batch_size = TupleBatch::kDefaultCapacity)
      : batch_size_(batch_size), thread_budget_(DefaultThreadBudget()) {}

  // max(1, std::thread::hardware_concurrency()).
  static size_t DefaultThreadBudget();

  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n; }

  // Maximum number of worker threads the compiler may spend on Exchange
  // operators. 1 disables intra-query parallelism entirely; the resulting
  // execution is then bit-identical to the serial engine. Budgets > 1 stay
  // deterministic wherever ExchangeMerge collects the workers (the compiler
  // default); see exec/exchange.h.
  size_t thread_budget() const { return thread_budget_; }
  void set_thread_budget(size_t n) { thread_budget_ = n == 0 ? 1 : n; }

  // Opt-in: the plan root's tuple order is not observed by the consumer, so
  // the compiler may collect a parallelized root through ExchangeProduce
  // (arrival order) instead of ExchangeMerge. Off by default — results stay
  // deterministic unless the caller explicitly waives order.
  bool allow_unordered_root() const { return allow_unordered_root_; }
  void set_allow_unordered_root(bool v) { allow_unordered_root_ = v; }

  // When set (the default), CompilePhysicalPlan statically verifies every
  // compiled tree — order-descriptor soundness, Sort_φ elision obligations,
  // exchange placement (verify/plan_verifier.h) — and fails compilation with
  // a diagnostic Status instead of handing an inconsistent plan to the
  // executor.
  bool verify_plans() const { return verify_plans_; }
  void set_verify_plans(bool v) { verify_plans_ = v; }

  // Debug-mode batch validation (verify/batch_validator.h): every batch an
  // operator produces is cross-checked against its statically inferred
  // schema. Defaults to the build's compile-time default (on in non-Release
  // builds, see kValidateBatchesDefault); operators adopt the value at
  // Bind().
  bool validate_batches() const { return validate_batches_; }
  void set_validate_batches(bool v) { validate_batches_ = v; }

  // --- Resource governor ----------------------------------------------------

  // The query's cancellation/deadline handle. Always non-null; operators
  // cache the raw pointer at Bind() and call Check() at batch boundaries.
  // The engine installs a fresh per-query control via set_control() so a
  // Cancel() handle can outlive the context's internal state.
  QueryControl* control() const { return control_.get(); }
  const std::shared_ptr<QueryControl>& shared_control() const {
    return control_;
  }
  void set_control(std::shared_ptr<QueryControl> c) {
    if (c != nullptr) control_ = std::move(c);
  }

  // Optional memory budget accounting; null = no accounting. Non-owning —
  // the tracker (typically the per-query level of the engine's hierarchy)
  // must outlive every operator tree bound to this context.
  MemoryTracker* memory_tracker() const { return memory_tracker_; }
  void set_memory_tracker(MemoryTracker* t) { memory_tracker_ = t; }

  // Fault injection (testing only; disabled by default). Operators consult
  // the spec in their Open()/NextBatch() template methods when enabled().
  const FaultSpec& fault() const { return fault_; }
  void set_fault(FaultSpec f) { fault_ = std::move(f); }

  // Copies the per-query runtime configuration — batch size, batch
  // validation, control handle, memory tracker, fault spec — onto a worker
  // context (exchange worker pipelines bind to private contexts so their
  // counter slots stay thread-local; see exec/exchange.h). Cancellation,
  // budgets and injected faults must reach inside workers, so those travel.
  void ConfigureWorker(ExecContext* worker) const {
    worker->set_batch_size(batch_size_);
    worker->set_validate_batches(validate_batches_);
    worker->set_control(control_);
    worker->set_memory_tracker(memory_tracker_);
    worker->set_fault(fault_);
  }

  // Registers one operator and returns its stable counter slot.
  OperatorMetrics* Register(std::string label);

  // Zeroes all registered counters (e.g. between benchmark iterations).
  void ResetMetrics();

  // Drops every registered counter slot. Slots hand out stable pointers, so
  // this is only legal when no operator tree is still bound to the context;
  // a long-lived engine calls it before each fresh compile to keep the slot
  // table from growing without bound across queries.
  void ClearMetrics() { metrics_.clear(); }

  // Replaces this context's counter table with a snapshot of `other`'s. The
  // engine runs each query on a private context and publishes the finished
  // counters into its long-lived context this way, so concurrent queries
  // never share counter slots. Same legality condition as ClearMetrics().
  void CopyMetricsFrom(const ExecContext& other) { metrics_ = other.metrics_; }

  const std::deque<OperatorMetrics>& metrics() const { return metrics_; }

  int64_t total_tuples() const;
  int64_t total_batches() const;

  // Flat per-operator counter table, registration order.
  std::string Summary() const;

 private:
  size_t batch_size_;
  size_t thread_budget_;
  bool allow_unordered_root_ = false;
  bool verify_plans_ = true;
  bool validate_batches_ = kValidateBatchesDefault;
  std::shared_ptr<QueryControl> control_ = std::make_shared<QueryControl>();
  MemoryTracker* memory_tracker_ = nullptr;
  FaultSpec fault_;
  std::deque<OperatorMetrics> metrics_;
};

}  // namespace uload

#endif  // ULOAD_EXEC_EXEC_CONTEXT_H_
