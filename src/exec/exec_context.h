// ExecContext: shared runtime state of one physical-plan execution.
//
// The context owns (a) the batch-size configuration every operator picks up
// when the compiled tree is bound to it, and (b) the per-operator runtime
// counters (batches/tuples produced, wall-clock spent in Open and NextBatch)
// that back the EXPLAIN-ANALYZE rendering (DescribeAnalyze). Counters live in
// a deque so registration never invalidates previously handed-out pointers;
// the context must outlive the operator tree bound to it.
#ifndef ULOAD_EXEC_EXEC_CONTEXT_H_
#define ULOAD_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <string>

#include "algebra/tuple_batch.h"

namespace uload {

struct OperatorMetrics {
  std::string label;            // operator rendering at registration time
  int64_t batches_produced = 0;
  int64_t tuples_produced = 0;
  int64_t open_ns = 0;          // wall-clock inside Open(), inclusive
  int64_t next_ns = 0;          // wall-clock inside NextBatch(), inclusive

  void Reset() {
    batches_produced = 0;
    tuples_produced = 0;
    open_ns = 0;
    next_ns = 0;
  }

  // "batches=3 tuples=2310 open=0.12ms next=4.56ms".
  std::string ToString() const;
};

class ExecContext {
 public:
  explicit ExecContext(size_t batch_size = TupleBatch::kDefaultCapacity)
      : batch_size_(batch_size) {}

  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n; }

  // Registers one operator and returns its stable counter slot.
  OperatorMetrics* Register(std::string label);

  // Zeroes all registered counters (e.g. between benchmark iterations).
  void ResetMetrics();

  const std::deque<OperatorMetrics>& metrics() const { return metrics_; }

  int64_t total_tuples() const;
  int64_t total_batches() const;

  // Flat per-operator counter table, registration order.
  std::string Summary() const;

 private:
  size_t batch_size_;
  std::deque<OperatorMetrics> metrics_;
};

}  // namespace uload

#endif  // ULOAD_EXEC_EXEC_CONTEXT_H_
