// QueryControl: the cooperative cancellation + deadline handle of one query.
//
// One QueryControl is shared (via ExecContext) by every operator of a
// compiled plan, including the operator pipelines inside Exchange workers.
// Cancellation is cooperative: Cancel() and deadline expiry only flip state
// here; the operators observe it at batch boundaries — the template methods
// PhysicalOperator::Open()/NextBatch() call Check() before running the
// operator implementation, and long-running materialization loops (Sort_φ
// buffering, hash builds, the StackTree deques, the exchange k-way merge)
// call CheckControl() per consumed batch. A positive Check() result
// propagates out of Engine::Run as kCancelled / kDeadlineExceeded.
//
// Thread safety: every member is lock-free and safe to call from any thread
// — Cancel() is explicitly a cross-thread API (an Engine::Cancel() handle, a
// signal handler trampoline, a watchdog).
#ifndef ULOAD_EXEC_QUERY_CONTROL_H_
#define ULOAD_EXEC_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace uload {

class QueryControl {
 public:
  // Monotonic clock in nanoseconds; deadlines and Check() share this epoch.
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Requests cooperative cancellation. Safe from any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Absolute deadline on the NowNs() clock; 0 disables the deadline.
  void set_deadline_ns(int64_t ns) {
    deadline_ns_.store(ns, std::memory_order_relaxed);
  }
  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  // Testing hook: behave as if Cancel() had been called once `n` further
  // Check() calls have happened (n >= 1). Deterministic for serial plans;
  // for parallel plans it trips mid-query on whichever thread reaches the
  // count. 0 disables.
  void CancelAfterChecks(int64_t n) {
    cancel_after_checks_.store(n, std::memory_order_relaxed);
  }

  // Number of Check() calls so far — lets tests handshake with an in-flight
  // query ("cancel only once it is demonstrably running").
  int64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  // The cooperative check. Returns kCancelled once cancelled,
  // kDeadlineExceeded once `now_ns` passes the deadline, Ok otherwise.
  // Callers that already read the clock pass it in; CheckNow() reads it.
  Status Check(int64_t now_ns) {
    int64_t n = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
    int64_t trip = cancel_after_checks_.load(std::memory_order_relaxed);
    if (trip > 0 && n >= trip) {
      cancelled_.store(true, std::memory_order_relaxed);
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline > 0 && now_ns >= deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }
  Status CheckNow() { return Check(NowNs()); }

  // Clears all state (a pooled control reused across queries).
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
    cancel_after_checks_.store(0, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<int64_t> cancel_after_checks_{0};
  std::atomic<int64_t> checks_{0};
};

}  // namespace uload

#endif  // ULOAD_EXEC_QUERY_CONTROL_H_
