// Stack-based structural join algorithms (thesis §1.2.3).
//
// StackTreeDesc / StackTreeAnc are the physical operators of Al-Khalifa et
// al. [7]: both require their inputs sorted by document order; the former
// emits result pairs ordered by the descendant id, the latter by the
// ancestor id. The kernels work over id arrays; the evaluator maps relation
// attributes onto them and builds the semi/outer/nest variants on top.
#ifndef ULOAD_EXEC_STRUCTURAL_JOIN_H_
#define ULOAD_EXEC_STRUCTURAL_JOIN_H_

#include <cstddef>
#include <vector>

#include "algebra/logical_plan.h"
#include "xml/ids.h"

namespace uload {

struct JoinPair {
  size_t ancestor;    // index into the ancestor-side input
  size_t descendant;  // index into the descendant-side input
};

// All (a, d) with anc[a] ancestor-of (axis kDescendant) or parent-of (axis
// kChild) desc[d]. Inputs must be sorted by pre. Output ordered by d, then a.
std::vector<JoinPair> StackTreeDesc(const std::vector<StructuralId>& anc,
                                    const std::vector<StructuralId>& desc,
                                    Axis axis);

// Same pairs, ordered by a, then d.
std::vector<JoinPair> StackTreeAnc(const std::vector<StructuralId>& anc,
                                   const std::vector<StructuralId>& desc,
                                   Axis axis);

// Reference nested-loop implementation (baseline for tests and the E8
// benchmark). Output ordered by a, then d.
std::vector<JoinPair> NestedLoopStructuralJoin(
    const std::vector<StructuralId>& anc,
    const std::vector<StructuralId>& desc, Axis axis);

}  // namespace uload

#endif  // ULOAD_EXEC_STRUCTURAL_JOIN_H_
