#include "exec/evaluator.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "exec/order_descriptor.h"
#include "exec/plan_schemas.h"
#include "exec/structural_join.h"
#include "storage/store.h"

namespace uload {
namespace {

class Impl {
 public:
  explicit Impl(const EvalContext& ctx) : ctx_(ctx) {}

  Result<NestedRelation> Eval(const LogicalPlan& plan) {
    switch (plan.op()) {
      case PlanOp::kScan:
        return EvalScan(plan);
      case PlanOp::kIndexScan:
        return EvalIndexScan(plan);
      case PlanOp::kSelect:
        return EvalSelect(plan);
      case PlanOp::kProject:
        return EvalProject(plan);
      case PlanOp::kProduct:
        return EvalProduct(plan);
      case PlanOp::kValueJoin:
        return EvalValueJoin(plan);
      case PlanOp::kStructuralJoin:
        return EvalStructuralJoin(plan);
      case PlanOp::kUnion:
        return EvalUnion(plan);
      case PlanOp::kDifference:
        return EvalDifference(plan);
      case PlanOp::kNest:
        return EvalNest(plan);
      case PlanOp::kUnnest:
        return EvalUnnest(plan);
      case PlanOp::kXmlConstruct:
        return EvalXmlConstruct(plan);
      case PlanOp::kDeriveParent:
        return EvalDeriveParent(plan);
      case PlanOp::kNavigate:
        return EvalNavigate(plan);
      case PlanOp::kPrefixNames:
        return EvalPrefixNames(plan);
      case PlanOp::kRetype:
        return EvalRetype(plan);
      case PlanOp::kSortOp:
        return EvalSortOp(plan);
      case PlanOp::kUnit:
        return EvalUnit();
    }
    return Status::Internal("unhandled plan operator");
  }

 private:
  const EvalContext& ctx_;

  Result<NestedRelation> EvalScan(const LogicalPlan& plan) {
    auto it = ctx_.relations.find(plan.relation());
    if (it != ctx_.relations.end()) return *it->second;
    // Virtual column-backed extents are not pre-materialized; the oracle
    // path materializes them on first use (MaterializedView::data()).
    auto vit = ctx_.views.find(plan.relation());
    if (vit != ctx_.views.end()) return vit->second->data();
    return Status::NotFound("relation '" + plan.relation() +
                            "' not bound in evaluation context");
  }

  Result<NestedRelation> EvalIndexScan(const LogicalPlan& plan) {
    if (!ctx_.index_lookup) {
      return Status::InvalidArgument(
          "plan contains IndexScan but context has no index_lookup hook");
    }
    return ctx_.index_lookup(plan.relation(), plan.bindings());
  }

  Result<NestedRelation> EvalSelect(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    NestedRelation out(in.schema_ptr(), in.kind());
    for (const Tuple& t : in.tuples()) {
      ULOAD_ASSIGN_OR_RETURN(bool keep,
                             plan.predicate()->Eval(in.schema(), t));
      if (keep) out.Add(t);
    }
    return out;
  }

  // --- Projection: a tree of retained attributes over nested schemas. -----

  struct ProjTree {
    // Maps attribute index -> subtree (empty subtree = keep whole attr).
    std::map<int, ProjTree> children;
    bool keep_all = false;
  };

  static Status BuildProjTree(const Schema& schema,
                              const std::vector<std::string>& attrs,
                              ProjTree* root) {
    for (const std::string& dotted : attrs) {
      ULOAD_ASSIGN_OR_RETURN(AttrPath path, ResolveAttrPath(schema, dotted));
      ProjTree* cur = root;
      for (size_t i = 0; i < path.size(); ++i) {
        cur = &cur->children[path[i]];
      }
      cur->keep_all = true;
    }
    return Status::Ok();
  }

  static SchemaPtr ProjectSchema(const Schema& schema, const ProjTree& tree) {
    std::vector<Attribute> attrs;
    for (const auto& [idx, sub] : tree.children) {
      const Attribute& a = schema.attr(idx);
      if (sub.keep_all || !a.is_collection) {
        attrs.push_back(a);
      } else {
        attrs.push_back(Attribute::Collection(
            a.name, ProjectSchema(*a.nested, sub), a.collection_kind));
      }
    }
    return Schema::Make(std::move(attrs));
  }

  static Tuple ProjectTuple(const Schema& schema, const ProjTree& tree,
                            const Tuple& t) {
    Tuple out;
    for (const auto& [idx, sub] : tree.children) {
      const Attribute& a = schema.attr(idx);
      const Field& f = t.fields[idx];
      if (sub.keep_all || !a.is_collection || !f.is_collection()) {
        out.fields.push_back(f);
      } else {
        TupleList nested;
        nested.reserve(f.collection().size());
        for (const Tuple& s : f.collection()) {
          nested.push_back(ProjectTuple(*a.nested, sub, s));
        }
        out.fields.emplace_back(std::move(nested));
      }
    }
    return out;
  }

  Result<NestedRelation> EvalProject(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    ProjTree tree;
    ULOAD_RETURN_NOT_OK(BuildProjTree(in.schema(), plan.attrs(), &tree));
    NestedRelation out(ProjectSchema(in.schema(), tree), in.kind());
    for (const Tuple& t : in.tuples()) {
      out.Add(ProjectTuple(in.schema(), tree, t));
    }
    if (plan.dedup()) out.Deduplicate();
    return out;
  }

  Result<NestedRelation> EvalProduct(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation l, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(NestedRelation r, Eval(*plan.right()));
    NestedRelation out(Schema::Concat(l.schema(), r.schema()), l.kind());
    for (const Tuple& tl : l.tuples()) {
      for (const Tuple& tr : r.tuples()) {
        out.Add(ConcatTuples(tl, tr));
      }
    }
    return out;
  }

  // Output schema for a join per variant.
  static SchemaPtr JoinSchema(const Schema& l, const Schema& r,
                              JoinVariant variant,
                              const std::string& nest_as) {
    switch (variant) {
      case JoinVariant::kInner:
      case JoinVariant::kLeftOuter:
        return Schema::Concat(l, r);
      case JoinVariant::kSemi:
        return Schema::Make(l.attrs());
      case JoinVariant::kNestJoin:
      case JoinVariant::kNestOuter: {
        std::vector<Attribute> attrs = l.attrs();
        attrs.push_back(Attribute::Collection(
            nest_as.empty() ? "s" : nest_as,
            Schema::Make(r.attrs())));
        return Schema::Make(std::move(attrs));
      }
    }
    return Schema::Make({});
  }

  // Assembles join output from per-left match lists.
  static void AssembleJoin(const NestedRelation& l, const NestedRelation& r,
                           const std::vector<std::vector<size_t>>& matches,
                           JoinVariant variant, NestedRelation* out) {
    for (size_t i = 0; i < l.tuples().size(); ++i) {
      const Tuple& tl = l.tuples()[i];
      const std::vector<size_t>& ms = matches[i];
      switch (variant) {
        case JoinVariant::kInner:
          for (size_t j : ms) out->Add(ConcatTuples(tl, r.tuples()[j]));
          break;
        case JoinVariant::kSemi:
          if (!ms.empty()) out->Add(tl);
          break;
        case JoinVariant::kLeftOuter:
          if (ms.empty()) {
            out->Add(ConcatTuples(tl, NullTuple(r.schema())));
          } else {
            for (size_t j : ms) out->Add(ConcatTuples(tl, r.tuples()[j]));
          }
          break;
        case JoinVariant::kNestJoin:
        case JoinVariant::kNestOuter: {
          if (ms.empty() && variant == JoinVariant::kNestJoin) break;
          TupleList nested;
          nested.reserve(ms.size());
          for (size_t j : ms) nested.push_back(r.tuples()[j]);
          Tuple t = tl;
          t.fields.emplace_back(std::move(nested));
          out->Add(std::move(t));
          break;
        }
      }
    }
  }

  Result<NestedRelation> EvalValueJoin(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation l, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(NestedRelation r, Eval(*plan.right()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath lp,
                           ResolveAttrPath(l.schema(), plan.left_attr()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath rp,
                           ResolveAttrPath(r.schema(), plan.right_attr()));

    std::vector<std::vector<size_t>> matches(l.tuples().size());
    // Hash fast path for top-level equality.
    if (plan.comparator() == Comparator::kEq && lp.size() == 1 &&
        rp.size() == 1) {
      std::multimap<std::string, size_t> index;
      for (size_t j = 0; j < r.tuples().size(); ++j) {
        const AtomicValue& v = r.tuples()[j].fields[rp[0]].atom();
        if (!v.is_null()) index.emplace(v.ToString(), j);
      }
      for (size_t i = 0; i < l.tuples().size(); ++i) {
        const AtomicValue& v = l.tuples()[i].fields[lp[0]].atom();
        if (v.is_null()) continue;
        auto [b, e] = index.equal_range(v.ToString());
        for (auto it = b; it != e; ++it) matches[i].push_back(it->second);
      }
    } else {
      for (size_t i = 0; i < l.tuples().size(); ++i) {
        std::vector<AtomicValue> lv;
        CollectAtomsAt(l.tuples()[i], l.schema(), lp, 0, &lv);
        for (size_t j = 0; j < r.tuples().size(); ++j) {
          std::vector<AtomicValue> rv;
          CollectAtomsAt(r.tuples()[j], r.schema(), rp, 0, &rv);
          bool hit = false;
          for (const AtomicValue& a : lv) {
            for (const AtomicValue& b : rv) {
              if (CompareAtoms(a, plan.comparator(), b)) {
                hit = true;
                break;
              }
            }
            if (hit) break;
          }
          if (hit) matches[i].push_back(j);
        }
      }
    }
    NestedRelation out(
        JoinSchema(l.schema(), r.schema(), plan.variant(), plan.nest_as()),
        l.kind());
    AssembleJoin(l, r, matches, plan.variant(), &out);
    return out;
  }

  Result<NestedRelation> EvalStructuralJoin(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation l, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(NestedRelation r, Eval(*plan.right()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath lp,
                           ResolveAttrPath(l.schema(), plan.left_attr()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath rp,
                           ResolveAttrPath(r.schema(), plan.right_attr()));
    if (rp.size() != 1) {
      return Status::NotImplemented(
          "structural join: descendant-side attribute must be top-level");
    }
    if (lp.size() == 1) {
      return TopLevelStructuralJoin(plan, l, r, lp[0], rp[0]);
    }
    // Nested ancestor attribute: map-based application (Example 1.2.3).
    return NestedStructuralJoin(plan, l, r, lp, rp[0]);
  }

  Result<NestedRelation> TopLevelStructuralJoin(const LogicalPlan& plan,
                                                const NestedRelation& l,
                                                const NestedRelation& r,
                                                int lidx, int ridx) {
    std::vector<std::vector<size_t>> matches(l.tuples().size());
    // Fast path: both sides (pre, post, depth) ids -> StackTreeAnc.
    bool all_sid = true;
    for (const Tuple& t : l.tuples()) {
      if (t.fields[lidx].atom().kind() != AtomicValue::Kind::kSid) {
        all_sid = false;
        break;
      }
    }
    if (all_sid) {
      for (const Tuple& t : r.tuples()) {
        if (t.fields[ridx].atom().kind() != AtomicValue::Kind::kSid) {
          all_sid = false;
          break;
        }
      }
    }
    if (all_sid) {
      // Sort both sides by pre (remember permutations).
      std::vector<size_t> lperm(l.tuples().size());
      std::vector<size_t> rperm(r.tuples().size());
      std::iota(lperm.begin(), lperm.end(), 0);
      std::iota(rperm.begin(), rperm.end(), 0);
      auto pre_of = [&](const NestedRelation& rel, int idx, size_t i) {
        return rel.tuples()[i].fields[idx].atom().sid().pre;
      };
      std::sort(lperm.begin(), lperm.end(), [&](size_t a, size_t b) {
        return pre_of(l, lidx, a) < pre_of(l, lidx, b);
      });
      std::sort(rperm.begin(), rperm.end(), [&](size_t a, size_t b) {
        return pre_of(r, ridx, a) < pre_of(r, ridx, b);
      });
      std::vector<StructuralId> anc(lperm.size());
      std::vector<StructuralId> desc(rperm.size());
      for (size_t i = 0; i < lperm.size(); ++i) {
        anc[i] = l.tuples()[lperm[i]].fields[lidx].atom().sid();
      }
      for (size_t j = 0; j < rperm.size(); ++j) {
        desc[j] = r.tuples()[rperm[j]].fields[ridx].atom().sid();
      }
      for (const JoinPair& p : StackTreeAnc(anc, desc, plan.axis())) {
        matches[lperm[p.ancestor]].push_back(rperm[p.descendant]);
      }
    } else {
      for (size_t i = 0; i < l.tuples().size(); ++i) {
        const AtomicValue& a = l.tuples()[i].fields[lidx].atom();
        if (a.is_null()) continue;
        for (size_t j = 0; j < r.tuples().size(); ++j) {
          const AtomicValue& d = r.tuples()[j].fields[ridx].atom();
          if (CompareAtoms(a, plan.comparator(), d)) {
            matches[i].push_back(j);
          }
        }
      }
    }
    NestedRelation out(
        JoinSchema(l.schema(), r.schema(), plan.variant(), plan.nest_as()),
        l.kind());
    AssembleJoin(l, r, matches, plan.variant(), &out);
    return out;
  }

  // Applies a structural join inside a nested collection of the left input:
  // map(op, l, r, A1...Ak, B). Rebuilds the nested tuples per the variant.
  Result<NestedRelation> NestedStructuralJoin(const LogicalPlan& plan,
                                              const NestedRelation& l,
                                              const NestedRelation& r,
                                              const AttrPath& lp,
                                              [[maybe_unused]] int ridx) {
    NestedRelation out(
        NestedJoinSchema(l.schema(), r.schema(), plan, lp, 0), l.kind());
    for (const Tuple& t : l.tuples()) {
      Tuple rebuilt;
      bool keep = true;
      ULOAD_ASSIGN_OR_RETURN(
          rebuilt, RebuildNested(l.schema(), t, r, plan, lp, 0, &keep));
      if (keep) out.Add(std::move(rebuilt));
    }
    return out;
  }

  static SchemaPtr NestedJoinSchema(const Schema& schema, const Schema& right,
                                    const LogicalPlan& plan,
                                    const AttrPath& lp, size_t depth) {
    if (depth + 1 == lp.size()) {
      // The joined level: nested tuples gain the variant's extra fields.
      return JoinSchema(schema, right, plan.variant(), plan.nest_as());
    }
    std::vector<Attribute> attrs = schema.attrs();
    const Attribute& a = schema.attr(lp[depth]);
    attrs[lp[depth]] = Attribute::Collection(
        a.name, NestedJoinSchema(*a.nested, right, plan, lp, depth + 1),
        a.collection_kind);
    return Schema::Make(std::move(attrs));
  }

  Result<Tuple> RebuildNested(const Schema& schema, const Tuple& t,
                              const NestedRelation& r, const LogicalPlan& plan,
                              const AttrPath& lp, size_t depth, bool* keep) {
    if (depth + 1 == lp.size()) {
      // `t` is a tuple at the joined level; compute its matches.
      const AtomicValue& a = t.fields[lp[depth]].atom();
      std::vector<size_t> ms;
      if (!a.is_null()) {
        for (size_t j = 0; j < r.tuples().size(); ++j) {
          ULOAD_ASSIGN_OR_RETURN(
              AttrPath rp, ResolveAttrPath(r.schema(), plan.right_attr()));
          const AtomicValue& d = r.tuples()[j].fields[rp[0]].atom();
          if (CompareAtoms(a, plan.comparator(), d)) ms.push_back(j);
        }
      }
      switch (plan.variant()) {
        case JoinVariant::kSemi:
          *keep = !ms.empty();
          return t;
        case JoinVariant::kNestJoin:
          *keep = !ms.empty();
          [[fallthrough]];
        case JoinVariant::kNestOuter: {
          TupleList nested;
          for (size_t j : ms) nested.push_back(r.tuples()[j]);
          Tuple out = t;
          out.fields.emplace_back(std::move(nested));
          return out;
        }
        case JoinVariant::kInner:
          *keep = !ms.empty();
          if (ms.empty()) return t;
          return ConcatTuples(t, r.tuples()[ms[0]]);
        case JoinVariant::kLeftOuter:
          if (ms.empty()) return ConcatTuples(t, NullTuple(r.schema()));
          return ConcatTuples(t, r.tuples()[ms[0]]);
      }
      return Status::Internal("unhandled nested join variant");
    }
    // Descend into the collection at lp[depth].
    const Attribute& attr = schema.attr(lp[depth]);
    Tuple out = t;
    Field& f = out.fields[lp[depth]];
    if (!f.is_collection()) {
      return Status::TypeError("nested join path crosses atomic field");
    }
    TupleList rebuilt;
    for (const Tuple& sub : f.collection()) {
      bool sub_keep = true;
      ULOAD_ASSIGN_OR_RETURN(
          Tuple nt,
          RebuildNested(*attr.nested, sub, r, plan, lp, depth + 1, &sub_keep));
      if (sub_keep) rebuilt.push_back(std::move(nt));
    }
    // Map semantics: a tuple whose nested collection becomes empty is
    // eliminated for the strict variants.
    if (rebuilt.empty() &&
        (plan.variant() == JoinVariant::kInner ||
         plan.variant() == JoinVariant::kSemi ||
         plan.variant() == JoinVariant::kNestJoin)) {
      *keep = false;
    }
    f.collection() = std::move(rebuilt);
    return out;
  }

  Result<NestedRelation> EvalUnion(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation l, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(NestedRelation r, Eval(*plan.right()));
    if (l.schema().size() != r.schema().size()) {
      return Status::TypeError("union of incompatible schemas: {" +
                               l.schema().ToString() + "} vs {" +
                               r.schema().ToString() + "}");
    }
    NestedRelation out = l;
    for (const Tuple& t : r.tuples()) out.Add(t);
    return out;
  }

  Result<NestedRelation> EvalDifference(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation l, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(NestedRelation r, Eval(*plan.right()));
    // Bag difference: each right tuple cancels one left occurrence.
    std::vector<bool> used(r.tuples().size(), false);
    NestedRelation out(l.schema_ptr(), l.kind());
    for (const Tuple& t : l.tuples()) {
      bool cancelled = false;
      for (size_t j = 0; j < r.tuples().size(); ++j) {
        if (!used[j] && TuplesEqual(t, r.tuples()[j])) {
          used[j] = true;
          cancelled = true;
          break;
        }
      }
      if (!cancelled) out.Add(t);
    }
    return out;
  }

  Result<NestedRelation> EvalNest(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    SchemaPtr schema = Schema::Make({Attribute::Collection(
        plan.nest_as().empty() ? "A1" : plan.nest_as(), in.schema_ptr())});
    NestedRelation out(schema, in.kind());
    Tuple t;
    t.fields.emplace_back(in.tuples());
    out.Add(std::move(t));
    return out;
  }

  Result<NestedRelation> EvalUnnest(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath path,
                           ResolveAttrPath(in.schema(), plan.attrs()[0]));
    if (path.size() != 1) {
      return Status::NotImplemented("unnest of non-top-level attribute");
    }
    const Attribute& attr = in.schema().attr(path[0]);
    if (!attr.is_collection) {
      return Status::TypeError("unnest of atomic attribute");
    }
    std::vector<Attribute> attrs;
    for (int i = 0; i < in.schema().size(); ++i) {
      if (i == path[0]) continue;
      attrs.push_back(in.schema().attr(i));
    }
    for (const Attribute& a : attr.nested->attrs()) attrs.push_back(a);
    NestedRelation out(Schema::Make(std::move(attrs)), in.kind());
    for (const Tuple& t : in.tuples()) {
      const Field& f = t.fields[path[0]];
      for (const Tuple& sub : f.collection()) {
        Tuple o;
        for (size_t i = 0; i < t.fields.size(); ++i) {
          if (static_cast<int>(i) == path[0]) continue;
          o.fields.push_back(t.fields[i]);
        }
        for (const Field& sf : sub.fields) o.fields.push_back(sf);
        out.Add(std::move(o));
      }
    }
    return out;
  }

  Result<NestedRelation> EvalXmlConstruct(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(std::string xml,
                           ApplyTemplate(plan.xml_template(), in));
    NestedRelation out(Schema::Make({Attribute::Atomic("xml")}));
    Tuple t;
    t.fields.emplace_back(AtomicValue::String(std::move(xml)));
    out.Add(std::move(t));
    return out;
  }

  Result<NestedRelation> EvalDeriveParent(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath path,
                           ResolveAttrPath(in.schema(), plan.left_attr()));
    if (path.size() != 1) {
      return Status::NotImplemented("DeriveParent on nested attribute");
    }
    std::vector<Attribute> attrs = in.schema().attrs();
    attrs.push_back(Attribute::Atomic(plan.nest_as()));
    NestedRelation out(Schema::Make(std::move(attrs)), in.kind());
    for (const Tuple& t : in.tuples()) {
      const AtomicValue& id = t.fields[path[0]].atom();
      Tuple o = t;
      if (id.kind() == AtomicValue::Kind::kDewey) {
        o.fields.emplace_back(AtomicValue::Dewey(
            DeweyAncestorAtDepth(id.dewey(), plan.target_depth())));
      } else if (id.is_null()) {
        o.fields.emplace_back(AtomicValue::Null());
      } else {
        return Status::TypeError(
            "DeriveParent requires navigational (Dewey) identifiers; "
            "attribute '" +
            plan.left_attr() + "' holds " + id.ToString());
      }
      out.Add(std::move(o));
    }
    return out;
  }

  static SchemaPtr PrefixSchema(const Schema& schema,
                                const std::string& prefix) {
    std::vector<Attribute> attrs;
    for (const Attribute& a : schema.attrs()) {
      if (a.is_collection) {
        attrs.push_back(Attribute::Collection(prefix + a.name,
                                              PrefixSchema(*a.nested, prefix),
                                              a.collection_kind));
      } else {
        attrs.push_back(Attribute::Atomic(prefix + a.name));
      }
    }
    return Schema::Make(std::move(attrs));
  }

  Result<NestedRelation> EvalPrefixNames(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    NestedRelation out(PrefixSchema(in.schema(), plan.nest_as()), in.kind());
    out.mutable_tuples() = in.tuples();
    return out;
  }

  Result<NestedRelation> EvalRetype(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    ULOAD_RETURN_NOT_OK(
        CheckSameShape(in.schema(), *plan.retype_schema()));
    NestedRelation out(plan.retype_schema(), in.kind());
    out.mutable_tuples() = std::move(in.mutable_tuples());
    return out;
  }

  Result<NestedRelation> EvalSortOp(const LogicalPlan& plan) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    std::vector<OrderKey> keys;
    for (const std::string& a : plan.attrs()) keys.push_back({a, true});
    ULOAD_RETURN_NOT_OK(SortBy(OrderDescriptor(std::move(keys)), &in));
    return in;
  }

  Result<NestedRelation> EvalUnit() {
    NestedRelation out(Schema::Make({}));
    out.Add(Tuple{});
    return out;
  }

  // --- Navigate ------------------------------------------------------------

  Result<NodeIndex> ResolveId(const AtomicValue& id) const {
    const DocumentStore& doc = *ctx_.document;
    if (id.kind() == AtomicValue::Kind::kSid) {
      NodeIndex n = doc.NodeByPre(id.sid().pre);
      if (n == kNoNode) return Status::NotFound("no node with pre label");
      return n;
    }
    if (id.kind() == AtomicValue::Kind::kDewey) {
      NodeIndex cur = doc.document_node();
      for (uint32_t arc : id.dewey()) {
        std::vector<NodeIndex> kids = doc.Children(cur);
        if (arc == 0 || arc > kids.size()) {
          return Status::NotFound("dangling Dewey id");
        }
        cur = kids[arc - 1];
      }
      return cur;
    }
    return Status::TypeError("cannot navigate from non-identifier value");
  }

  static bool LabelMatches(const DocumentStore& doc, NodeIndex n,
                           const std::string& label) {
    if (label.empty()) return doc.is_element(n);
    if (label == "#text") return doc.is_text(n);
    if (label[0] == '@') {
      return doc.is_attribute(n) &&
             doc.label(n) == std::string_view(label).substr(1);
    }
    return doc.is_element(n) && doc.label(n) == label;
  }

  void CollectStep(NodeIndex from, const NavStep& step,
                   std::vector<NodeIndex>* out) const {
    const DocumentStore& doc = *ctx_.document;
    if (step.axis == Axis::kChild) {
      for (NodeIndex c : doc.Children(from)) {
        if (LabelMatches(doc, c, step.label)) out->push_back(c);
      }
      return;
    }
    // Descendant axis: DFS.
    std::vector<NodeIndex> work = doc.Children(from);
    std::reverse(work.begin(), work.end());
    while (!work.empty()) {
      NodeIndex c = work.back();
      work.pop_back();
      if (LabelMatches(doc, c, step.label)) out->push_back(c);
      std::vector<NodeIndex> kids = doc.Children(c);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        work.push_back(*it);
      }
    }
  }

  Result<NestedRelation> EvalNavigate(const LogicalPlan& plan) {
    if (ctx_.document == nullptr) {
      return Status::InvalidArgument(
          "plan contains Navigate but context has no document");
    }
    ULOAD_ASSIGN_OR_RETURN(NestedRelation in, Eval(*plan.left()));
    ULOAD_ASSIGN_OR_RETURN(AttrPath path,
                           ResolveAttrPath(in.schema(), plan.left_attr()));
    if (path.size() != 1) {
      return Status::NotImplemented("Navigate from nested attribute");
    }
    const NavEmit& emit = plan.nav_emit();
    std::vector<Attribute> emitted;
    if (emit.id) emitted.push_back(Attribute::Atomic(emit.prefix + "_ID"));
    if (emit.tag) emitted.push_back(Attribute::Atomic(emit.prefix + "_Tag"));
    if (emit.val) emitted.push_back(Attribute::Atomic(emit.prefix + "_Val"));
    if (emit.cont) {
      emitted.push_back(Attribute::Atomic(emit.prefix + "_Cont"));
    }
    SchemaPtr emit_schema = Schema::Make(emitted);

    NestedRelation out(JoinSchema(in.schema(), *emit_schema, plan.variant(),
                                  plan.nest_as().empty() ? emit.prefix
                                                         : plan.nest_as()),
                       in.kind());
    const DocumentStore& doc = *ctx_.document;
    for (const Tuple& t : in.tuples()) {
      const AtomicValue& id = t.fields[path[0]].atom();
      std::vector<NodeIndex> frontier;
      if (!id.is_null()) {
        auto resolved = ResolveId(id);
        if (resolved.ok()) frontier.push_back(*resolved);
      }
      for (const NavStep& step : plan.nav_steps()) {
        std::vector<NodeIndex> next;
        for (NodeIndex n : frontier) CollectStep(n, step, &next);
        frontier = std::move(next);
      }
      // Build emitted tuples.
      TupleList results;
      for (NodeIndex n : frontier) {
        Tuple e;
        if (emit.id) {
          if (emit.id_kind == IdKind::kParental) {
            e.fields.emplace_back(AtomicValue::Dewey(doc.Dewey(n)));
          } else {
            e.fields.emplace_back(AtomicValue::Sid(doc.sid(n)));
          }
        }
        if (emit.tag) {
          e.fields.emplace_back(AtomicValue::String(std::string(doc.label(n))));
        }
        if (emit.val) {
          e.fields.emplace_back(AtomicValue::String(doc.Value(n)));
        }
        if (emit.cont) {
          e.fields.emplace_back(AtomicValue::String(doc.Content(n)));
        }
        results.push_back(std::move(e));
      }
      switch (plan.variant()) {
        case JoinVariant::kInner:
          for (Tuple& e : results) out.Add(ConcatTuples(t, e));
          break;
        case JoinVariant::kSemi:
          if (!results.empty()) out.Add(t);
          break;
        case JoinVariant::kLeftOuter:
          if (results.empty()) {
            out.Add(ConcatTuples(t, NullTuple(*emit_schema)));
          } else {
            for (Tuple& e : results) out.Add(ConcatTuples(t, e));
          }
          break;
        case JoinVariant::kNestJoin:
          if (results.empty()) break;
          [[fallthrough]];
        case JoinVariant::kNestOuter: {
          Tuple o = t;
          o.fields.emplace_back(std::move(results));
          out.Add(std::move(o));
          break;
        }
      }
    }
    return out;
  }
};

}  // namespace

Result<NestedRelation> Evaluate(const LogicalPlan& plan,
                                const EvalContext& ctx) {
  Impl impl(ctx);
  return impl.Eval(plan);
}

Result<NestedRelation> Evaluate(
    const LogicalPlan& plan,
    const std::unordered_map<std::string, const NestedRelation*>& rels,
    const DocumentStore* doc) {
  EvalContext ctx;
  ctx.relations = rels;
  ctx.document = doc;
  return Evaluate(plan, ctx);
}

}  // namespace uload
