// Order descriptors (thesis §1.2.3): which attribute(s) an operator's output
// is sorted on, possibly inside nested collections (e.g. ⇃A2.A21⇂).
// Structural join operators require document-order inputs; the evaluator
// uses SortBy to establish the required order and IsSortedBy to verify it.
#ifndef ULOAD_EXEC_ORDER_DESCRIPTOR_H_
#define ULOAD_EXEC_ORDER_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "algebra/relation.h"
#include "common/status.h"

namespace uload {

struct OrderKey {
  std::string attr;  // dotted path
  bool ascending = true;
};

class OrderDescriptor {
 public:
  OrderDescriptor() = default;
  explicit OrderDescriptor(std::vector<OrderKey> keys)
      : keys_(std::move(keys)) {}

  static OrderDescriptor On(std::string attr) {
    return OrderDescriptor({OrderKey{std::move(attr), true}});
  }

  bool empty() const { return keys_.empty(); }
  const std::vector<OrderKey>& keys() const { return keys_; }

  std::string ToString() const;

 private:
  std::vector<OrderKey> keys_;
};

// True when `required`'s keys are a prefix of `actual`'s — the stream is
// then sorted per `required` by construction (SortBy is a stable
// lexicographic sort over its key list). Used by the compiler to elide
// Sort_φ enforcers and by the plan verifier to check order soundness.
bool OrderCovers(const OrderDescriptor& actual, const OrderDescriptor& required);

// Stable-sorts `rel`'s top-level tuples by the descriptor's keys. Keys whose
// path crosses a collection sort the *nested* collections in place (the
// ⇃A2.A21⇂ form). Null atoms order first.
Status SortBy(const OrderDescriptor& order, NestedRelation* rel);

// True if `rel` is already sorted per `order` (top-level keys only must be
// non-nested; nested keys check each nested collection).
Result<bool> IsSortedBy(const OrderDescriptor& order,
                        const NestedRelation& rel);

}  // namespace uload

#endif  // ULOAD_EXEC_ORDER_DESCRIPTOR_H_
