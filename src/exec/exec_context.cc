#include "exec/exec_context.h"

#include <cstdio>
#include <thread>

namespace uload {
namespace {

std::string FormatMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string OperatorMetrics::ToString() const {
  return "batches=" + std::to_string(batches_produced) +
         " tuples=" + std::to_string(tuples_produced) +
         " open=" + FormatMs(open_ns) + " next=" + FormatMs(next_ns);
}

size_t ExecContext::DefaultThreadBudget() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

OperatorMetrics* ExecContext::Register(std::string label) {
  metrics_.emplace_back();
  metrics_.back().label = std::move(label);
  return &metrics_.back();
}

void ExecContext::ResetMetrics() {
  for (OperatorMetrics& m : metrics_) m.Reset();
}

int64_t ExecContext::total_tuples() const {
  int64_t n = 0;
  for (const OperatorMetrics& m : metrics_) n += m.tuples_produced;
  return n;
}

int64_t ExecContext::total_batches() const {
  int64_t n = 0;
  for (const OperatorMetrics& m : metrics_) n += m.batches_produced;
  return n;
}

std::string ExecContext::Summary() const {
  std::string out;
  for (const OperatorMetrics& m : metrics_) {
    out += m.label + "  [" + m.ToString() + "]\n";
  }
  return out;
}

}  // namespace uload
