#include "exec/exec_context.h"

#include <cstdio>
#include <thread>

namespace uload {
namespace {

std::string FormatMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string OperatorMetrics::ToString() const {
  std::string out = "batches=" + std::to_string(batches_produced) +
                    " tuples=" + std::to_string(tuples_produced) +
                    " open=" + FormatMs(open_ns) + " next=" + FormatMs(next_ns);
  if (peak_bytes > 0) out += " mem=" + std::to_string(peak_bytes) + "B";
  return out;
}

bool FaultSpec::ShouldFail(int op, const std::string& label, Site s,
                           int64_t call) const {
  if (!enabled()) return false;
  if (op_index >= 0 && op != op_index) return false;
  if (!op_substring.empty() && label.find(op_substring) == std::string::npos) {
    return false;
  }
  if (site != Site::kAny && site != s) return false;
  if (call_index >= 0) return call == call_index;
  // Random mode: splitmix64 over (seed, op, site, call) — deterministic for
  // a given spec regardless of thread schedule.
  uint64_t x = random_seed;
  x ^= static_cast<uint64_t>(op) * 0x9e3779b97f4a7c15ull;
  x ^= static_cast<uint64_t>(s) * 0xbf58476d1ce4e5b9ull;
  x ^= static_cast<uint64_t>(call) * 0x94d049bb133111ebull;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return u < random_prob;
}

size_t ExecContext::DefaultThreadBudget() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

OperatorMetrics* ExecContext::Register(std::string label) {
  metrics_.emplace_back();
  metrics_.back().label = std::move(label);
  return &metrics_.back();
}

void ExecContext::ResetMetrics() {
  for (OperatorMetrics& m : metrics_) m.Reset();
}

int64_t ExecContext::total_tuples() const {
  int64_t n = 0;
  for (const OperatorMetrics& m : metrics_) n += m.tuples_produced;
  return n;
}

int64_t ExecContext::total_batches() const {
  int64_t n = 0;
  for (const OperatorMetrics& m : metrics_) n += m.batches_produced;
  return n;
}

std::string ExecContext::Summary() const {
  std::string out;
  for (const OperatorMetrics& m : metrics_) {
    out += m.label + "  [" + m.ToString() + "]\n";
  }
  return out;
}

}  // namespace uload
