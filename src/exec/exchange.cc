#include "exec/exchange.h"

#include <algorithm>
#include <utility>

#include "opt/cost.h"

namespace uload {

namespace {
// Rough bytes-per-slot estimate for queue sizing before any data flows:
// governed queries size their exchange queues against the budget using an
// assumed 128 bytes per tuple.
int64_t EstimatedBatchBytes(size_t batch_size) {
  return static_cast<int64_t>(batch_size) * 128;
}
}  // namespace

// --- BoundedBatchQueue -------------------------------------------------------

BoundedBatchQueue::BoundedBatchQueue(size_t capacity, int producers)
    : capacity_(capacity == 0 ? 1 : capacity), producers_left_(producers) {}

bool BoundedBatchQueue::Push(TupleBatch batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock, [&] { return shutdown_ || queue_.size() < capacity_; });
  if (shutdown_) return false;
  queue_.push_back(std::move(batch));
  can_pop_.notify_one();
  return true;
}

void BoundedBatchQueue::ProducerDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--producers_left_ <= 0) can_pop_.notify_all();
}

std::optional<TupleBatch> BoundedBatchQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [&] {
    return shutdown_ || !queue_.empty() || producers_left_ <= 0;
  });
  if (!queue_.empty()) {
    TupleBatch b = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return std::optional<TupleBatch>(std::move(b));
  }
  return std::nullopt;
}

void BoundedBatchQueue::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  can_push_.notify_all();
  can_pop_.notify_all();
}

// --- ParallelScanPhys --------------------------------------------------------

ParallelScanPhys::ParallelScanPhys(const NestedRelation* rel, std::string name,
                                   size_t part, size_t nparts,
                                   OrderDescriptor order)
    : rel_(rel),
      name_(std::move(name)),
      part_(part),
      nparts_(nparts == 0 ? 1 : nparts),
      schema_(rel->schema_ptr()),
      order_(std::move(order)) {
  size_t n = static_cast<size_t>(rel_->size());
  begin_ = static_cast<int64_t>(part_ * n / nparts_);
  end_ = static_cast<int64_t>((part_ + 1) * n / nparts_);
}

std::string ParallelScanPhys::label() const {
  return "ParallelScan_phi(" + name_ + " " + std::to_string(part_ + 1) + "/" +
         std::to_string(nparts_) + ")";
}

bool ParallelScanPhys::TryAdoptOrder(const OrderDescriptor& order) {
  // The whole relation being sorted implies every contiguous slice is.
  Result<bool> sorted = IsSortedBy(order, *rel_);
  if (!sorted.ok() || !*sorted) return false;
  order_ = order;
  return true;
}

Status ParallelScanPhys::OpenImpl() {
  pos_ = begin_;
  return Status::Ok();
}

Result<std::optional<TupleBatch>> ParallelScanPhys::NextBatchImpl() {
  if (pos_ >= end_) return std::optional<TupleBatch>();
  TupleBatch out = NewBatch();
  while (pos_ < end_ && !out.full()) out.Add(rel_->tuple(pos_++));
  return std::optional<TupleBatch>(std::move(out));
}

// --- ExchangeBase ------------------------------------------------------------

ExchangeBase::ExchangeBase(std::vector<PhysicalPtr> workers)
    : workers_(std::move(workers)) {
  schema_ = workers_.front()->schema();
  order_ = workers_.front()->order();
  statuses_.assign(workers_.size(), Status::Ok());
}

ExchangeBase::~ExchangeBase() {
  // Derived destructors ran StopWorkers() while their queues were still
  // alive; this is only a safety net for the no-worker state.
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::vector<PhysicalOperator*> ExchangeBase::children() const {
  return {workers_.front().get()};
}

void ExchangeBase::BindChildren(ExecContext* ctx) {
  // Worker 0 is the template pipeline: it registers with the plan's context
  // so DescribeAnalyze() shows its slots. The other workers get private
  // contexts so no counter slot is shared across threads; ConfigureWorker
  // copies the governor state (cancellation handle, budget tracker, fault
  // spec) so every worker pipeline observes the same query controls.
  tracker_ = ctx->memory_tracker();
  workers_[0]->Bind(ctx);
  worker_ctxs_.clear();
  for (size_t i = 1; i < workers_.size(); ++i) {
    worker_ctxs_.push_back(std::make_unique<ExecContext>(ctx->batch_size()));
    ctx->ConfigureWorker(worker_ctxs_.back().get());
    workers_[i]->Bind(worker_ctxs_.back().get());
  }
}

void ExchangeBase::StartWorkers() {
  statuses_.assign(workers_.size(), Status::Ok());
  threads_.clear();
  threads_.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] {
      PhysicalOperator* w = workers_[i].get();
      BoundedBatchQueue* q = queue_for(i);
      Status s = w->Open();
      if (s.ok()) {
        for (;;) {
          Result<std::optional<TupleBatch>> r = w->NextBatch();
          if (!r.ok()) {
            s = r.status();
            break;
          }
          if (!r->has_value()) break;
          if ((*r)->empty()) continue;
          // Queue slots count toward the query budget while the batch sits
          // between producer and consumer; the Pop side releases the charge.
          int64_t bytes = 0;
          if (tracker_ != nullptr) {
            bytes = (*r)->ApproxBytes();
            Status cs = tracker_->Charge(bytes);
            if (!cs.ok()) {
              s = std::move(cs);
              break;
            }
          }
          if (!q->Push(std::move(**r))) {
            // Consumer (or a failed sibling) shut the queue down.
            if (tracker_ != nullptr) tracker_->Release(bytes);
            break;
          }
        }
      }
      w->Close();
      if (!s.ok()) {
        {
          std::lock_guard<std::mutex> lock(status_mu_);
          statuses_[i] = std::move(s);
        }
        // A failed worker (cancel, budget, injected fault) poisons every
        // queue: siblings blocked in Push() unblock and wind down, and the
        // collector stops pulling instead of running the query to the end.
        PoisonAllQueues();
      }
      q->ProducerDone();
    });
  }
}

void ExchangeBase::PoisonAllQueues() {
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (BoundedBatchQueue* q = queue_for(i)) q->Shutdown();
  }
}

void ExchangeBase::StopWorkers() {
  PoisonAllQueues();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Batches queued but never consumed still carry budget charges; drain
  // them so an aborted query returns the tracker to zero. Every producer
  // has called ProducerDone() by now, so Pop() cannot block.
  if (tracker_ != nullptr) {
    std::vector<BoundedBatchQueue*> seen;
    for (size_t i = 0; i < workers_.size(); ++i) {
      BoundedBatchQueue* q = queue_for(i);
      if (q == nullptr || std::find(seen.begin(), seen.end(), q) != seen.end()) {
        continue;
      }
      seen.push_back(q);
      while (std::optional<TupleBatch> b = q->Pop()) {
        tracker_->Release(b->ApproxBytes());
      }
    }
  }
  // Fold workers 1..N-1 into worker 0's counter slots (and zero the
  // sources), so the template pipeline shows whole-exchange totals.
  for (size_t i = 1; i < workers_.size(); ++i) {
    workers_[0]->MergeMetricsFrom(*workers_[i]);
  }
}

Status ExchangeBase::WorkerError() {
  std::lock_guard<std::mutex> lock(status_mu_);
  for (const Status& s : statuses_) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

// --- ExchangeProducePhys -----------------------------------------------------

ExchangeProducePhys::ExchangeProducePhys(std::vector<PhysicalPtr> workers)
    : ExchangeBase(std::move(workers)) {
  order_ = OrderDescriptor();  // arrival order — no order guarantee
}

ExchangeProducePhys::~ExchangeProducePhys() { StopWorkers(); }

std::string ExchangeProducePhys::label() const {
  return "ExchangeProduce_phi(workers=" + std::to_string(worker_count()) + ")";
}

Status ExchangeProducePhys::OpenImpl() {
  StopWorkers();  // re-open without an intervening Close()
  size_t cap = ExchangeQueueCapacity(
      worker_count(), /*per_worker=*/false,
      tracker_ != nullptr ? tracker_->limit() : 0,
      EstimatedBatchBytes(batch_size()));
  queue_ = std::make_unique<BoundedBatchQueue>(
      cap, static_cast<int>(worker_count()));
  StartWorkers();
  return Status::Ok();
}

Result<std::optional<TupleBatch>> ExchangeProducePhys::NextBatchImpl() {
  std::optional<TupleBatch> b = queue_->Pop();
  if (!b.has_value()) {
    ULOAD_RETURN_NOT_OK(WorkerError());
    return std::optional<TupleBatch>();
  }
  if (tracker_ != nullptr) tracker_->Release(b->ApproxBytes());
  b->set_schema(schema_);
  return std::optional<TupleBatch>(std::move(*b));
}

void ExchangeProducePhys::CloseImpl() { StopWorkers(); }

BoundedBatchQueue* ExchangeProducePhys::queue_for(size_t) {
  return queue_.get();
}

// --- ExchangeMergePhys -------------------------------------------------------

ExchangeMergePhys::ExchangeMergePhys(std::vector<PhysicalPtr> workers)
    : ExchangeBase(std::move(workers)) {}

ExchangeMergePhys::~ExchangeMergePhys() { StopWorkers(); }

std::string ExchangeMergePhys::label() const {
  return "ExchangeMerge_phi" + order_.ToString() +
         "(workers=" + std::to_string(worker_count()) + ")";
}

Status ExchangeMergePhys::OpenImpl() {
  StopWorkers();  // re-open without an intervening Close()
  key_idx_.clear();
  for (const OrderKey& k : order_.keys()) {
    ULOAD_ASSIGN_OR_RETURN(AttrPath p, ResolveAttrPath(*schema_, k.attr));
    if (p.size() != 1) {
      return Status::NotImplemented("ExchangeMerge on nested order key '" +
                                    k.attr + "'");
    }
    key_idx_.emplace_back(p[0], k.ascending);
  }
  size_t n = worker_count();
  size_t cap = ExchangeQueueCapacity(n, /*per_worker=*/true,
                                     tracker_ != nullptr ? tracker_->limit() : 0,
                                     EstimatedBatchBytes(batch_size()));
  queues_.clear();
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<BoundedBatchQueue>(cap, 1));
  }
  heads_.assign(n, std::nullopt);
  head_pos_.assign(n, 0);
  done_.assign(n, false);
  StartWorkers();
  return Status::Ok();
}

bool ExchangeMergePhys::EnsureHead(size_t i) {
  while (!done_[i] &&
         (!heads_[i].has_value() || head_pos_[i] >= heads_[i]->size())) {
    heads_[i] = queues_[i]->Pop();
    head_pos_[i] = 0;
    if (!heads_[i].has_value()) {
      done_[i] = true;
    } else if (tracker_ != nullptr) {
      tracker_->Release(heads_[i]->ApproxBytes());
    }
  }
  return !done_[i];
}

bool ExchangeMergePhys::HeadLess(size_t a, size_t b) const {
  const Tuple& ta = heads_[a]->tuple(head_pos_[a]);
  const Tuple& tb = heads_[b]->tuple(head_pos_[b]);
  for (const auto& [idx, asc] : key_idx_) {
    int c = AtomicValue::Compare(ta.fields[idx].atom(), tb.fields[idx].atom());
    if (c != 0) return asc ? c < 0 : c > 0;
  }
  // Equal keys: take the lower worker index. Together with contiguous range
  // partitioning this reproduces the serial engine's tuple sequence.
  return a < b;
}

Result<std::optional<TupleBatch>> ExchangeMergePhys::NextBatchImpl() {
  TupleBatch out = NewBatch();
  while (!out.full()) {
    int best = -1;
    for (size_t i = 0; i < worker_count(); ++i) {
      if (!EnsureHead(i)) continue;
      if (best < 0 || HeadLess(i, static_cast<size_t>(best))) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    size_t b = static_cast<size_t>(best);
    out.Add(std::move(heads_[b]->tuple(head_pos_[b]++)));
  }
  if (out.empty()) {
    ULOAD_RETURN_NOT_OK(WorkerError());
    return std::optional<TupleBatch>();
  }
  return std::optional<TupleBatch>(std::move(out));
}

void ExchangeMergePhys::CloseImpl() {
  StopWorkers();
  heads_.clear();
  head_pos_.clear();
  done_.clear();
}

BoundedBatchQueue* ExchangeMergePhys::queue_for(size_t worker) {
  return worker < queues_.size() ? queues_[worker].get() : nullptr;
}

}  // namespace uload
