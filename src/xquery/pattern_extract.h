// Convenience wrapper for the pattern-extraction side of the translation
// (thesis §3.3.3): the maximal XAM query patterns of a Q query, spanning
// nested FLWR blocks, plus the compensating selections that adapt them.
#ifndef ULOAD_XQUERY_PATTERN_EXTRACT_H_
#define ULOAD_XQUERY_PATTERN_EXTRACT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xam/xam.h"
#include "xquery/translate.h"

namespace uload {

struct ExtractedPatterns {
  std::vector<Xam> patterns;
  std::vector<PredicatePtr> cross_predicates;
  std::vector<PredicatePtr> compensations;
};

// Parses and translates `query_text`, returning the query patterns.
Result<ExtractedPatterns> ExtractPatterns(std::string_view query_text);

Result<ExtractedPatterns> ExtractPatterns(const Expr& query);

}  // namespace uload

#endif  // ULOAD_XQUERY_PATTERN_EXTRACT_H_
