// Tokenizer for the Q fragment.
#ifndef ULOAD_XQUERY_LEXER_H_
#define ULOAD_XQUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace uload {

enum class TokenKind {
  kEnd,
  kName,        // identifiers / keywords (for, in, where, return, and, doc)
  kVariable,    // $x
  kString,      // "..."
  kNumber,
  kSlash,       // /
  kDoubleSlash,  // //
  kStar,
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kEq,          // =
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAt,          // @
  kTagOpen,     // < immediately followed by a name (constructor)
  kTagClose,    // </
  kTagEnd,      // > (inside constructor context; lexer emits kGt, parser
                // disambiguates)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // names, variables (with $), strings (unquoted)
  double number = 0;
  size_t offset = 0;
};

// Tokenizes the whole input. '<' followed by a letter becomes kTagOpen;
// "</" becomes kTagClose; other '<' is kLt.
Result<std::vector<Token>> LexQuery(std::string_view input);

}  // namespace uload

#endif  // ULOAD_XQUERY_LEXER_H_
