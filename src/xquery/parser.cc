#include "xquery/parser.h"

#include "xquery/lexer.h"

namespace uload {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<ExprPtr> Run() {
    ULOAD_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!At(TokenKind::kEnd)) {
      return Err("trailing tokens after query");
    }
    return e;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool AtName(std::string_view s) const {
    return Cur().kind == TokenKind::kName && Cur().text == s;
  }
  const Token& Take() { return toks_[pos_++]; }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Cur().offset) + ")");
  }
  Status Expect(TokenKind k, const std::string& what) {
    if (!At(k)) return Err("expected " + what);
    ++pos_;
    return Status::Ok();
  }

  // Expr := Item (',' Item)*
  Result<ExprPtr> ParseExpr() {
    std::vector<ExprPtr> items;
    ULOAD_ASSIGN_OR_RETURN(ExprPtr first, ParseItem());
    items.push_back(std::move(first));
    while (At(TokenKind::kComma)) {
      Take();
      ULOAD_ASSIGN_OR_RETURN(ExprPtr next, ParseItem());
      items.push_back(std::move(next));
    }
    if (items.size() == 1) return items[0];
    return Expr::MakeConcat(std::move(items));
  }

  // Item := Flwr | ElementCtor | '(' Expr ')' | PathExpr
  Result<ExprPtr> ParseItem() {
    if (AtName("for")) return ParseFlwr();
    if (At(TokenKind::kTagOpen)) return ParseElement();
    if (At(TokenKind::kLParen)) {
      Take();
      ULOAD_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      ULOAD_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return e;
    }
    ULOAD_ASSIGN_OR_RETURN(PathExpr p, ParsePath());
    return Expr::MakePath(std::move(p));
  }

  Result<ExprPtr> ParseFlwr() {
    Take();  // 'for'
    FlwrExpr f;
    for (;;) {
      if (!At(TokenKind::kVariable)) return Err("expected variable after for");
      ForBinding b;
      b.variable = Take().text;
      if (!AtName("in")) return Err("expected 'in'");
      Take();
      ULOAD_ASSIGN_OR_RETURN(b.path, ParsePath());
      f.bindings.push_back(std::move(b));
      if (At(TokenKind::kComma)) {
        Take();
        continue;
      }
      break;
    }
    while (AtName("let")) {
      Take();
      for (;;) {
        if (!At(TokenKind::kVariable)) {
          return Err("expected variable after let");
        }
        LetBinding lb;
        lb.variable = Take().text;
        if (AtName(":=")) {
          Take();
        } else if (At(TokenKind::kEq)) {
          Take();  // be lenient about 'let $v = path'
        } else {
          return Err("expected ':=' in let clause");
        }
        ULOAD_ASSIGN_OR_RETURN(lb.path, ParsePath());
        f.lets.push_back(std::move(lb));
        if (At(TokenKind::kComma)) {
          Take();
          continue;
        }
        break;
      }
    }
    if (AtName("where")) {
      Take();
      for (;;) {
        ULOAD_ASSIGN_OR_RETURN(WhereCondition c, ParseCondition());
        f.where.push_back(std::move(c));
        if (AtName("and")) {
          Take();
          continue;
        }
        break;
      }
    }
    if (!AtName("return")) return Err("expected 'return'");
    Take();
    ULOAD_ASSIGN_OR_RETURN(f.ret, ParseItem());
    return Expr::MakeFlwr(std::move(f));
  }

  Result<WhereCondition> ParseCondition() {
    WhereCondition c;
    ULOAD_ASSIGN_OR_RETURN(c.lhs, ParsePath());
    if (AtName("ftcontains") || AtName("contains")) {
      Take();
      if (!At(TokenKind::kString)) {
        return Err("expected string after contains");
      }
      c.has_comparison = true;
      c.cmp = Comparator::kContainsWord;
      c.constant = AtomicValue::String(Take().text);
      return c;
    }
    Comparator cmp;
    switch (Cur().kind) {
      case TokenKind::kEq:
        cmp = Comparator::kEq;
        break;
      case TokenKind::kNe:
        cmp = Comparator::kNe;
        break;
      case TokenKind::kLt:
        cmp = Comparator::kLt;
        break;
      case TokenKind::kLe:
        cmp = Comparator::kLe;
        break;
      case TokenKind::kGt:
        cmp = Comparator::kGt;
        break;
      case TokenKind::kGe:
        cmp = Comparator::kGe;
        break;
      default:
        return c;  // bare existence condition
    }
    Take();
    c.has_comparison = true;
    c.cmp = cmp;
    if (At(TokenKind::kString)) {
      c.constant = AtomicValue::String(Take().text);
    } else if (At(TokenKind::kNumber)) {
      c.constant = AtomicValue::Number(Take().number);
    } else if (At(TokenKind::kVariable) || AtName("doc") ||
               AtName("document") || At(TokenKind::kSlash) ||
               At(TokenKind::kDoubleSlash)) {
      c.rhs_is_path = true;
      ULOAD_ASSIGN_OR_RETURN(c.rhs, ParsePath());
    } else {
      return Err("expected constant or path after comparator");
    }
    return c;
  }

  Result<ExprPtr> ParseElement() {
    Take();  // '<'
    if (!At(TokenKind::kName)) return Err("expected tag name");
    std::string tag = Take().text;
    ULOAD_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
    std::vector<ExprPtr> content;
    while (!At(TokenKind::kTagClose)) {
      if (At(TokenKind::kLBrace)) {
        Take();
        ULOAD_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        ULOAD_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "'}'"));
        content.push_back(std::move(e));
      } else if (At(TokenKind::kTagOpen)) {
        ULOAD_ASSIGN_OR_RETURN(ExprPtr e, ParseElement());
        content.push_back(std::move(e));
      } else if (At(TokenKind::kComma)) {
        // Commas between enclosed expressions inside constructors are
        // punctuation (XQuery requires braces, we are lenient).
        Take();
      } else {
        return Err("unexpected token inside element constructor");
      }
    }
    Take();  // '</'
    if (!At(TokenKind::kName) || Cur().text != tag) {
      return Err("mismatched close tag for <" + tag + ">");
    }
    Take();
    ULOAD_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
    return Expr::MakeElement(std::move(tag), std::move(content));
  }

  // Path := ('$x' | doc '(' str ')' | ε) Steps ['/text()']
  Result<PathExpr> ParsePath() {
    PathExpr p;
    if (At(TokenKind::kVariable)) {
      p.variable = Take().text;
    } else if (AtName("doc") || AtName("document")) {
      Take();
      ULOAD_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kString)) return Err("expected document name");
      p.document = Take().text;
      ULOAD_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    }
    // Steps.
    while (At(TokenKind::kSlash) || At(TokenKind::kDoubleSlash)) {
      bool desc = At(TokenKind::kDoubleSlash);
      Take();
      // text() terminator?
      if (AtName("text")) {
        // Look ahead for '()'.
        if (toks_[pos_ + 1].kind == TokenKind::kLParen &&
            toks_[pos_ + 2].kind == TokenKind::kRParen) {
          pos_ += 3;
          if (desc) {
            return Err("'//text()' is not in the supported fragment");
          }
          p.text_result = true;
          break;
        }
      }
      PathStep step;
      step.descendant = desc;
      if (At(TokenKind::kStar)) {
        Take();
      } else if (At(TokenKind::kAt)) {
        Take();
        if (!At(TokenKind::kName)) return Err("expected attribute name");
        step.label = "@" + Take().text;
      } else if (At(TokenKind::kName)) {
        step.label = Take().text;
      } else {
        return Err("expected node test");
      }
      // Qualifiers.
      while (At(TokenKind::kLBracket)) {
        Take();
        ULOAD_ASSIGN_OR_RETURN(PathStep::Qualifier q, ParseQualifier());
        step.qualifiers.push_back(std::move(q));
        ULOAD_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
      }
      p.steps.push_back(std::move(step));
    }
    if (p.steps.empty() && !p.text_result && p.variable.empty()) {
      return Err("expected path expression");
    }
    return p;
  }

  // Qualifier := RelPath (θ Const)? | text() θ Const
  Result<PathStep::Qualifier> ParseQualifier() {
    PathStep::Qualifier q;
    bool bare_text = false;
    if (AtName("text") && toks_[pos_ + 1].kind == TokenKind::kLParen &&
        toks_[pos_ + 2].kind == TokenKind::kRParen) {
      pos_ += 3;
      bare_text = true;
    } else {
      // Relative path: steps without a leading slash; first axis is child.
      auto rel = std::make_shared<PathExpr>();
      for (;;) {
        PathStep step;
        if (At(TokenKind::kDoubleSlash)) {
          // ".//x" style written as "//x" inside [].
          Take();
          step.descendant = true;
        } else if (At(TokenKind::kSlash)) {
          Take();
        } else if (!rel->steps.empty()) {
          break;
        }
        if (At(TokenKind::kStar)) {
          Take();
        } else if (At(TokenKind::kAt)) {
          Take();
          if (!At(TokenKind::kName)) return Err("expected attribute name");
          step.label = "@" + Take().text;
        } else if (At(TokenKind::kName)) {
          if (AtName("text") &&
              toks_[pos_ + 1].kind == TokenKind::kLParen &&
              toks_[pos_ + 2].kind == TokenKind::kRParen) {
            pos_ += 3;
            rel->text_result = true;
            break;
          }
          step.label = Take().text;
        } else {
          break;
        }
        rel->steps.push_back(std::move(step));
        if (!At(TokenKind::kSlash) && !At(TokenKind::kDoubleSlash)) break;
      }
      if (rel->steps.empty() && !rel->text_result) {
        return Err("empty qualifier");
      }
      q.rel_path = std::move(rel);
    }
    // Optional comparison.
    Comparator cmp;
    bool has = true;
    switch (Cur().kind) {
      case TokenKind::kEq:
        cmp = Comparator::kEq;
        break;
      case TokenKind::kNe:
        cmp = Comparator::kNe;
        break;
      case TokenKind::kLt:
        cmp = Comparator::kLt;
        break;
      case TokenKind::kLe:
        cmp = Comparator::kLe;
        break;
      case TokenKind::kGt:
        cmp = Comparator::kGt;
        break;
      case TokenKind::kGe:
        cmp = Comparator::kGe;
        break;
      default:
        has = false;
        cmp = Comparator::kEq;
        break;
    }
    if (has) {
      Take();
      q.has_comparison = true;
      q.cmp = cmp;
      if (At(TokenKind::kString)) {
        q.constant = AtomicValue::String(Take().text);
      } else if (At(TokenKind::kNumber)) {
        q.constant = AtomicValue::Number(Take().number);
      } else {
        return Err("expected constant in qualifier comparison");
      }
    }
    if (bare_text && !q.has_comparison) {
      return Err("bare [text()] qualifier needs a comparison");
    }
    return q;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view text) {
  ULOAD_ASSIGN_OR_RETURN(std::vector<Token> toks, LexQuery(text));
  Parser p(std::move(toks));
  return p.Run();
}

}  // namespace uload
