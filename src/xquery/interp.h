// Direct (navigational) interpreter for the Q fragment — the reference
// semantics that the algebraic translation and all view-based rewritings are
// tested against.
#ifndef ULOAD_XQUERY_INTERP_H_
#define ULOAD_XQUERY_INTERP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xquery/ast.h"

namespace uload {

// Serialized result of evaluating `q` against `doc`. All doc("...") calls
// resolve to `doc`.
Result<std::string> EvaluateQueryDirect(const Expr& q, const Document& doc);

// Node set of a path expression under variable bindings (exposed for tests).
struct VarEnv {
  std::vector<std::pair<std::string, NodeIndex>> bindings;
  // let aliases: variable -> aliased path (pure-path lets).
  std::vector<std::pair<std::string, const PathExpr*>> aliases;

  NodeIndex Lookup(const std::string& var) const {
    for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
      if (it->first == var) return it->second;
    }
    return kNoNode;
  }
  const PathExpr* LookupAlias(const std::string& var) const {
    for (auto it = aliases.rbegin(); it != aliases.rend(); ++it) {
      if (it->first == var) return it->second;
    }
    return nullptr;
  }
};

Result<std::vector<NodeIndex>> EvalPathDirect(const PathExpr& p,
                                              const Document& doc,
                                              const VarEnv& env);

}  // namespace uload

#endif  // ULOAD_XQUERY_INTERP_H_
