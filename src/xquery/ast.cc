#include "xquery/ast.h"

namespace uload {

std::string PathExpr::ToString() const {
  std::string out;
  if (!variable.empty()) {
    out += variable;
  } else if (!document.empty()) {
    out += "doc(\"" + document + "\")";
  }
  for (const PathStep& s : steps) {
    out += s.descendant ? "//" : "/";
    out += s.label.empty() ? "*" : s.label;
    for (const PathStep::Qualifier& q : s.qualifiers) {
      out += "[";
      if (q.rel_path) {
        out += q.rel_path->ToString();
      } else {
        out += "text()";
      }
      if (q.has_comparison) {
        out += " ";
        out += ComparatorName(q.cmp);
        out += " " + q.constant.ToString();
      }
      out += "]";
    }
  }
  if (text_result) out += "/text()";
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kPath:
      return path.ToString();
    case Kind::kConcat: {
      std::string out;
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i]->ToString();
      }
      return out;
    }
    case Kind::kElement: {
      std::string out = "<" + element.tag + ">{";
      for (size_t i = 0; i < element.content.size(); ++i) {
        if (i > 0) out += ", ";
        out += element.content[i]->ToString();
      }
      out += "}</" + element.tag + ">";
      return out;
    }
    case Kind::kFlwr: {
      std::string out = "for ";
      for (size_t i = 0; i < flwr.bindings.size(); ++i) {
        if (i > 0) out += ", ";
        out += flwr.bindings[i].variable + " in " +
               flwr.bindings[i].path.ToString();
      }
      if (!flwr.where.empty()) {
        out += " where ";
        for (size_t i = 0; i < flwr.where.size(); ++i) {
          if (i > 0) out += " and ";
          const WhereCondition& w = flwr.where[i];
          out += w.lhs.ToString();
          if (w.has_comparison) {
            out += " ";
            out += ComparatorName(w.cmp);
            out += " ";
            out += w.rhs_is_path ? w.rhs.ToString() : w.constant.ToString();
          }
        }
      }
      out += " return " + flwr.ret->ToString();
      return out;
    }
  }
  return "?";
}

ExprPtr Expr::MakePath(PathExpr p) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kPath;
  e->path = std::move(p);
  return e;
}

ExprPtr Expr::MakeConcat(std::vector<ExprPtr> items) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConcat;
  e->items = std::move(items);
  return e;
}

ExprPtr Expr::MakeElement(std::string tag, std::vector<ExprPtr> content) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kElement;
  e->element.tag = std::move(tag);
  e->element.content = std::move(content);
  return e;
}

ExprPtr Expr::MakeFlwr(FlwrExpr flwr) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kFlwr;
  e->flwr = std::move(flwr);
  return e;
}

}  // namespace uload
