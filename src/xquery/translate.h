// Algebraic translation and maximal tree-pattern extraction (thesis Ch. 3).
//
// A Q query is translated into:
//   * one XAM *query pattern* per group of structurally related variables —
//     patterns span nested FLWR blocks: for-variable chains become j edges,
//     where-clause chains become semijoin (s) edges with value formulas,
//     returned expressions become nest-outer (no) edges storing Cont/Val,
//     and nested blocks hang below their outer variable with no edges;
//   * cross-pattern value predicates (where $x/p θ $y/q) evaluated on the
//     cartesian product of the patterns;
//   * the compensating selections of §3.3.3 for dependencies tree patterns
//     cannot express (outer-variable expressions inside nested blocks);
//   * a tagging template rebuilding the query's constructed output.
//
// alg(q) is then: xml_templ(σ_filter(pattern_1 × ... × pattern_n)) — each
// pattern_i being evaluated by its algebraic XAM semantics (§2.2.2), which
// is exactly the structural-join expression full() of §3.3.
#ifndef ULOAD_XQUERY_TRANSLATE_H_
#define ULOAD_XQUERY_TRANSLATE_H_

#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/xml_template.h"
#include "common/status.h"
#include "xam/xam.h"
#include "xml/document_store.h"
#include "xquery/ast.h"

namespace uload {

struct Translation {
  // Extracted query patterns; node names are globally unique across
  // patterns, so the product schema has no name clashes.
  std::vector<Xam> patterns;
  // Cross-pattern comparison predicates from the top-level where clause.
  std::vector<PredicatePtr> cross_predicates;
  // Compensating selections (§3.3.3): conditions the patterns alone cannot
  // express. They characterize the difference between the patterns' data
  // and the query's needs and are consumed by view-based reasoning; direct
  // evaluation does not apply them (the template already respects nesting).
  std::vector<PredicatePtr> compensations;
  // Construction template over the product of the patterns' view schemas.
  XmlTemplate templ;

  std::string ToString() const;
};

Result<Translation> TranslateQuery(const Expr& q);

// Evaluates alg(q): materializes each pattern via its XAM semantics, takes
// the product, applies cross-pattern predicates and the template.
Result<std::string> EvaluateTranslated(const Translation& tr,
                                       const DocumentStore& doc);

}  // namespace uload

#endif  // ULOAD_XQUERY_TRANSLATE_H_
