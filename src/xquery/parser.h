// Recursive-descent parser for the Q fragment (thesis §3.2).
#ifndef ULOAD_XQUERY_PARSER_H_
#define ULOAD_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace uload {

Result<ExprPtr> ParseQuery(std::string_view text);

}  // namespace uload

#endif  // ULOAD_XQUERY_PARSER_H_
