#include "xquery/pattern_extract.h"

#include "xquery/parser.h"

namespace uload {

Result<ExtractedPatterns> ExtractPatterns(const Expr& query) {
  ULOAD_ASSIGN_OR_RETURN(Translation tr, TranslateQuery(query));
  ExtractedPatterns out;
  out.patterns = std::move(tr.patterns);
  out.cross_predicates = std::move(tr.cross_predicates);
  out.compensations = std::move(tr.compensations);
  return out;
}

Result<ExtractedPatterns> ExtractPatterns(std::string_view query_text) {
  ULOAD_ASSIGN_OR_RETURN(ExprPtr q, ParseQuery(query_text));
  return ExtractPatterns(*q);
}

}  // namespace uload
