#include "xquery/lexer.h"

#include <cctype>

namespace uload {

Result<std::vector<Token>> LexQuery(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  auto is_name_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (is_name_start(c)) {
      size_t start = i;
      while (i < in.size() && is_name_char(in[i])) ++i;
      t.kind = TokenKind::kName;
      t.text = std::string(in.substr(start, i - start));
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t start = i;
      ++i;
      while (i < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[i])) ||
              in[i] == '.')) {
        ++i;
      }
      t.kind = TokenKind::kNumber;
      t.text = std::string(in.substr(start, i - start));
      t.number = std::stod(t.text);
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '$': {
        size_t start = i++;
        while (i < in.size() && is_name_char(in[i])) ++i;
        if (i == start + 1) {
          return Status::ParseError("lone '$' at offset " +
                                    std::to_string(start));
        }
        t.kind = TokenKind::kVariable;
        t.text = std::string(in.substr(start, i - start));
        break;
      }
      case '"':
      case '\'': {
        char quote = c;
        ++i;
        size_t start = i;
        while (i < in.size() && in[i] != quote) ++i;
        if (i >= in.size()) {
          return Status::ParseError("unterminated string literal");
        }
        t.kind = TokenKind::kString;
        t.text = std::string(in.substr(start, i - start));
        ++i;
        break;
      }
      case '/':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          t.kind = TokenKind::kDoubleSlash;
          i += 2;
        } else {
          t.kind = TokenKind::kSlash;
          ++i;
        }
        break;
      case '*':
        t.kind = TokenKind::kStar;
        ++i;
        break;
      case '[':
        t.kind = TokenKind::kLBracket;
        ++i;
        break;
      case ']':
        t.kind = TokenKind::kRBracket;
        ++i;
        break;
      case '(':
        t.kind = TokenKind::kLParen;
        ++i;
        break;
      case ')':
        t.kind = TokenKind::kRParen;
        ++i;
        break;
      case '{':
        t.kind = TokenKind::kLBrace;
        ++i;
        break;
      case '}':
        t.kind = TokenKind::kRBrace;
        ++i;
        break;
      case ',':
        t.kind = TokenKind::kComma;
        ++i;
        break;
      case '=':
        t.kind = TokenKind::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          t.kind = TokenKind::kNe;
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(i));
        }
        break;
      case '<':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          t.kind = TokenKind::kTagClose;
          i += 2;
        } else if (i + 1 < in.size() && is_name_start(in[i + 1])) {
          t.kind = TokenKind::kTagOpen;
          ++i;
        } else if (i + 1 < in.size() && in[i + 1] == '=') {
          t.kind = TokenKind::kLe;
          i += 2;
        } else {
          t.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          t.kind = TokenKind::kGe;
          i += 2;
        } else {
          t.kind = TokenKind::kGt;
          ++i;
        }
        break;
      case '@':
        t.kind = TokenKind::kAt;
        ++i;
        break;
      case ':':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          // ':=' of let clauses, carried as a name token.
          t.kind = TokenKind::kName;
          t.text = ":=";
          i += 2;
        } else {
          return Status::ParseError("unexpected ':' at offset " +
                                    std::to_string(i));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = in.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace uload
