// AST of the XQuery fragment Q (thesis §3.2):
//  1. core XPath{/,//,*,[]} with text() and value predicates,
//  2. relative paths from variables,
//  3. concatenation,
//  4. element constructors,
//  5. for-where-return blocks (arbitrarily nested in return clauses).
#ifndef ULOAD_XQUERY_AST_H_
#define ULOAD_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/value.h"

namespace uload {

struct PathExpr;

// One navigation step: axis + node test, plus optional [ ] qualifiers.
struct PathStep {
  bool descendant = false;  // '//' vs '/'
  // Node test: element tag, "@name" attribute test, or "" for '*'.
  std::string label;

  // A qualifier [rel-path], [rel-path θ c], or [text() θ c] (rel_path empty).
  struct Qualifier {
    std::shared_ptr<PathExpr> rel_path;  // may be null for bare [text() θ c]
    bool has_comparison = false;
    Comparator cmp = Comparator::kEq;
    AtomicValue constant;
  };
  std::vector<Qualifier> qualifiers;
};

// An absolute (doc-rooted) or relative (variable-rooted) path.
struct PathExpr {
  std::string document;  // doc("...") name; empty when variable-rooted
  std::string variable;  // "$x"; empty when absolute
  std::vector<PathStep> steps;
  bool text_result = false;  // ends in /text()

  bool absolute() const { return variable.empty(); }
  std::string ToString() const;
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

// A where-clause conjunct: path θ constant, path θ path, bare path
// (existence), or `path contains "word"`.
struct WhereCondition {
  PathExpr lhs;
  bool has_comparison = false;
  Comparator cmp = Comparator::kEq;
  bool rhs_is_path = false;
  AtomicValue constant;
  PathExpr rhs;
};

struct ForBinding {
  std::string variable;  // "$x"
  PathExpr path;
};

// let $v := path — a pure-path alias; every use of $v behaves like the
// aliased path spliced in place (sequence semantics).
struct LetBinding {
  std::string variable;
  PathExpr path;
};

struct FlwrExpr {
  std::vector<ForBinding> bindings;
  std::vector<LetBinding> lets;
  std::vector<WhereCondition> where;  // conjunctive
  ExprPtr ret;
};

struct ElementConstructor {
  std::string tag;
  std::vector<ExprPtr> content;  // concatenated
};

struct Expr {
  enum class Kind { kPath, kConcat, kElement, kFlwr };
  Kind kind = Kind::kPath;
  PathExpr path;                  // kPath
  std::vector<ExprPtr> items;     // kConcat
  ElementConstructor element;     // kElement
  FlwrExpr flwr;                  // kFlwr

  std::string ToString() const;

  static ExprPtr MakePath(PathExpr p);
  static ExprPtr MakeConcat(std::vector<ExprPtr> items);
  static ExprPtr MakeElement(std::string tag, std::vector<ExprPtr> content);
  static ExprPtr MakeFlwr(FlwrExpr flwr);
};

}  // namespace uload

#endif  // ULOAD_XQUERY_AST_H_
