#include "xquery/translate.h"

#include <map>
#include <unordered_map>

#include "eval/xam_eval.h"
#include "exec/evaluator.h"

namespace uload {
namespace {

class Translator {
 public:
  Result<Translation> Run(const Expr& q) {
    Scope root;
    ULOAD_ASSIGN_OR_RETURN(std::vector<TemplateNode> roots,
                           TrExpr(q, root, /*grouped=*/false));
    Translation tr;
    tr.patterns = std::move(patterns_);
    for (Xam& p : tr.patterns) p.set_ordered(true);
    tr.cross_predicates = std::move(cross_preds_);
    tr.compensations = std::move(compensations_);
    tr.templ.roots = std::move(roots);
    return tr;
  }

 private:
  // Template/translation scope: either the root tuple, or the contents of a
  // nested collection the template iterates over.
  struct Scope {
    bool root = true;
    int pattern = -1;
    XamNodeId entry = -1;     // collection entry node of the scope
    std::string prefix;       // root-relative dotted prefix of scope contents
  };

  struct VarBinding {
    int pattern = -1;
    XamNodeId node = -1;
  };

  std::vector<Xam> patterns_;
  std::map<std::string, VarBinding> vars_;
  std::map<std::string, PathExpr> lets_;
  std::vector<PredicatePtr> cross_preds_;
  std::vector<PredicatePtr> compensations_;
  int name_counter_ = 1;

  std::string FreshName() { return "n" + std::to_string(name_counter_++); }

  // Expands let aliases: a path rooted at a let variable becomes the
  // aliased path with this path's steps appended (pure-path splice).
  PathExpr ExpandLets(PathExpr p) const {
    while (!p.variable.empty()) {
      auto it = lets_.find(p.variable);
      if (it == lets_.end()) break;
      PathExpr base = it->second;
      base.steps.insert(base.steps.end(), p.steps.begin(), p.steps.end());
      base.text_result = p.text_result;
      p = std::move(base);
    }
    return p;
  }

  // Root-relative dotted prefix for attributes of `id`'s own tuple level:
  // the chain of nested-edge entry names from the root down to (and
  // including) every nested entry at or above `id`.
  std::string RootPrefix(const Xam& x, XamNodeId id) const {
    std::vector<const std::string*> parts;
    for (XamNodeId cur = id; cur != kXamRoot; cur = x.node(cur).parent) {
      if (x.IncomingEdge(cur).nested()) {
        parts.push_back(&x.node(cur).name);
      }
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      out += **it;
      out += '.';
    }
    return out;
  }

  std::string RootAttr(const Xam& x, XamNodeId id,
                       const std::string& suffix) const {
    return RootPrefix(x, id) + x.node(id).name + suffix;
  }

  // --- Pattern-side helpers ------------------------------------------------

  // Adds the chain of `steps` below `from` in pattern `p`; the first edge
  // uses `entry_variant`, later edges are inner joins. Qualifiers become
  // semijoin sub-chains with value formulas. Returns the final node.
  Result<XamNodeId> AttachChain(int p, XamNodeId from,
                                const std::vector<PathStep>& steps,
                                JoinVariant entry_variant) {
    Xam& x = patterns_[p];
    XamNodeId cur = from;
    for (size_t i = 0; i < steps.size(); ++i) {
      const PathStep& s = steps[i];
      JoinVariant variant = i == 0 ? entry_variant : JoinVariant::kInner;
      Axis axis = s.descendant ? Axis::kDescendant : Axis::kChild;
      XamNodeId next;
      if (!s.label.empty() && s.label[0] == '@') {
        if (s.descendant) {
          return Status::NotImplemented("'//@attr' steps are not supported");
        }
        next = x.AddAttributeNode(cur, s.label.substr(1), variant,
                                  FreshName());
      } else {
        next = x.AddNode(cur, axis, s.label, variant, FreshName());
      }
      for (const PathStep::Qualifier& q : s.qualifiers) {
        ULOAD_RETURN_NOT_OK(AttachQualifier(p, next, q));
      }
      cur = next;
    }
    return cur;
  }

  Status AttachQualifier(int p, XamNodeId node,
                         const PathStep::Qualifier& q) {
    Xam& x = patterns_[p];
    if (!q.rel_path) {
      // [text() θ c] on the node itself.
      x.ValPredicate(node, x.node(node).val_formula.And(ValueFormula::Atom(
                               q.cmp, q.constant)));
      return Status::Ok();
    }
    ULOAD_ASSIGN_OR_RETURN(
        XamNodeId last,
        AttachChain(p, node, q.rel_path->steps, JoinVariant::kSemi));
    if (q.has_comparison) {
      x.ValPredicate(last, x.node(last).val_formula.And(ValueFormula::Atom(
                               q.cmp, q.constant)));
    }
    return Status::Ok();
  }

  // --- Expression translation ----------------------------------------------

  // `grouped` is true when the expression occurs inside an element
  // constructor whose single instantiation must absorb all matches.
  Result<std::vector<TemplateNode>> TrExpr(const Expr& e, Scope& scope,
                                           bool grouped) {
    switch (e.kind) {
      case Expr::Kind::kPath: {
        ULOAD_ASSIGN_OR_RETURN(TemplateNode ref,
                               TrReturnPath(e.path, scope, grouped));
        return std::vector<TemplateNode>{std::move(ref)};
      }
      case Expr::Kind::kConcat: {
        std::vector<TemplateNode> out;
        for (const ExprPtr& item : e.items) {
          ULOAD_ASSIGN_OR_RETURN(std::vector<TemplateNode> sub,
                                 TrExpr(*item, scope, grouped));
          for (TemplateNode& n : sub) out.push_back(std::move(n));
        }
        return out;
      }
      case Expr::Kind::kElement: {
        std::vector<TemplateNode> content;
        for (const ExprPtr& item : e.element.content) {
          ULOAD_ASSIGN_OR_RETURN(std::vector<TemplateNode> sub,
                                 TrExpr(*item, scope, /*grouped=*/true));
          for (TemplateNode& n : sub) content.push_back(std::move(n));
        }
        return std::vector<TemplateNode>{
            TemplateNode::Element(e.element.tag, std::move(content))};
      }
      case Expr::Kind::kFlwr:
        return TrFlwr(e.flwr, scope, grouped);
    }
    return Status::Internal("unhandled expression kind");
  }

  Result<std::vector<TemplateNode>> TrFlwr(const FlwrExpr& f, Scope& scope,
                                           bool grouped) {
    if (scope.root && !grouped) {
      return TrTopLevelFlwr(f, scope);
    }
    return TrNestedFlwr(f, scope);
  }

  Result<std::vector<TemplateNode>> TrTopLevelFlwr(const FlwrExpr& f,
                                                   Scope& scope) {
    // Bindings: absolute paths open fresh patterns; variable-rooted paths
    // chain inside the referenced variable's pattern (j edges — a missing
    // binding removes the iteration).
    for (const ForBinding& b : f.bindings) {
      ULOAD_ASSIGN_OR_RETURN(VarBinding vb,
                             BindForVariable(b, JoinVariant::kInner));
      vars_[b.variable] = vb;
    }
    for (const LetBinding& lb : f.lets) {
      lets_[lb.variable] = ExpandLets(lb.path);
    }
    ULOAD_RETURN_NOT_OK(TrWhere(f.where, /*allow_cross=*/true));
    return TrExpr(*f.ret, scope, /*grouped=*/false);
  }

  Result<VarBinding> BindForVariable(const ForBinding& binding,
                                     JoinVariant entry_variant) {
    ForBinding b = binding;
    b.path = ExpandLets(std::move(b.path));
    if (b.path.text_result) {
      return Status::InvalidArgument("cannot bind a variable to text()");
    }
    if (b.path.absolute()) {
      patterns_.emplace_back();
      int p = static_cast<int>(patterns_.size()) - 1;
      ULOAD_ASSIGN_OR_RETURN(
          XamNodeId node,
          AttachChain(p, kXamRoot, b.path.steps, JoinVariant::kInner));
      patterns_[p].StoreId(node, IdKind::kSimple);
      return VarBinding{p, node};
    }
    auto it = vars_.find(b.path.variable);
    if (it == vars_.end()) {
      return Status::InvalidArgument("unbound variable " + b.path.variable);
    }
    int p = it->second.pattern;
    ULOAD_ASSIGN_OR_RETURN(
        XamNodeId node,
        AttachChain(p, it->second.node, b.path.steps, entry_variant));
    patterns_[p].StoreId(node, IdKind::kSimple);
    return VarBinding{p, node};
  }

  Status TrWhere(const std::vector<WhereCondition>& conditions,
                 bool allow_cross) {
    for (const WhereCondition& raw : conditions) {
      WhereCondition w = raw;
      w.lhs = ExpandLets(std::move(w.lhs));
      if (w.rhs_is_path) w.rhs = ExpandLets(std::move(w.rhs));
      if (w.lhs.absolute()) {
        return Status::NotImplemented(
            "absolute paths in where clauses are not supported");
      }
      auto it = vars_.find(w.lhs.variable);
      if (it == vars_.end()) {
        return Status::InvalidArgument("unbound variable " + w.lhs.variable);
      }
      int p = it->second.pattern;
      bool needs_cross =
          w.has_comparison &&
          (w.rhs_is_path || w.cmp == Comparator::kContainsWord);
      if (!needs_cross) {
        // Existence / θ-constant: semijoin chain with a value formula.
        ULOAD_ASSIGN_OR_RETURN(
            XamNodeId last,
            AttachChain(p, it->second.node, w.lhs.steps, JoinVariant::kSemi));
        if (w.has_comparison) {
          Xam& x = patterns_[p];
          x.ValPredicate(last, x.node(last).val_formula.And(ValueFormula::Atom(
                                   w.cmp, w.constant)));
        }
        continue;
      }
      if (!allow_cross) {
        return Status::NotImplemented(
            "cross-variable / contains predicates are only supported in the "
            "top-level where clause");
      }
      // Path θ path (value join) or contains: store values via nest-outer
      // chains and evaluate on the pattern product.
      ULOAD_ASSIGN_OR_RETURN(
          XamNodeId lnode,
          AttachChain(p, it->second.node, w.lhs.steps,
                      JoinVariant::kNestOuter));
      patterns_[p].StoreVal(lnode);
      std::string lattr = RootAttr(patterns_[p], lnode, "_Val");
      if (w.cmp == Comparator::kContainsWord) {
        cross_preds_.push_back(Predicate::CompareConst(
            lattr, Comparator::kContainsWord, w.constant));
        continue;
      }
      auto rit = vars_.find(w.rhs.variable);
      if (w.rhs.absolute() || rit == vars_.end()) {
        return Status::NotImplemented(
            "right-hand side of a value join must be variable-rooted");
      }
      int rp = rit->second.pattern;
      ULOAD_ASSIGN_OR_RETURN(
          XamNodeId rnode,
          AttachChain(rp, rit->second.node, w.rhs.steps,
                      JoinVariant::kNestOuter));
      patterns_[rp].StoreVal(rnode);
      std::string rattr = RootAttr(patterns_[rp], rnode, "_Val");
      cross_preds_.push_back(Predicate::CompareAttrs(lattr, w.cmp, rattr));
    }
    return Status::Ok();
  }

  Result<std::vector<TemplateNode>> TrNestedFlwr(const FlwrExpr& f,
                                                 Scope& scope) {
    if (f.bindings.empty()) {
      return Status::InvalidArgument("FLWR without bindings");
    }
    // The first binding's entry hangs with a nest-outer edge; everything
    // else of this block lives inside that collection.
    ForBinding first = f.bindings[0];
    first.path = ExpandLets(std::move(first.path));
    if (first.path.absolute()) {
      if (!scope.root) {
        return Status::NotImplemented(
            "absolute for-paths in nested blocks are not supported");
      }
      // Grouped top-level FLWR (inside a constructor): hang from ⊤.
      patterns_.emplace_back();
      int p = static_cast<int>(patterns_.size()) - 1;
      ULOAD_ASSIGN_OR_RETURN(
          XamNodeId node,
          AttachChain(p, kXamRoot, first.path.steps, JoinVariant::kNestOuter));
      patterns_[p].StoreId(node, IdKind::kSimple);
      vars_[first.variable] = VarBinding{p, node};
      return FinishNestedFlwr(f, p, EntryOf(p, node), scope);
    }
    auto it = vars_.find(first.path.variable);
    if (it == vars_.end()) {
      return Status::InvalidArgument("unbound variable " +
                                     first.path.variable);
    }
    int p = it->second.pattern;
    ULOAD_ASSIGN_OR_RETURN(
        XamNodeId node,
        AttachChain(p, it->second.node, first.path.steps,
                    JoinVariant::kNestOuter));
    patterns_[p].StoreId(node, IdKind::kSimple);
    vars_[first.variable] = VarBinding{p, node};
    return FinishNestedFlwr(f, p, EntryOf(p, node), scope);
  }

  // The nested-collection entry node above (or equal to) `node`: the nearest
  // ancestor-or-self whose incoming edge is nested.
  XamNodeId EntryOf(int p, XamNodeId node) const {
    const Xam& x = patterns_[p];
    for (XamNodeId cur = node; cur != kXamRoot; cur = x.node(cur).parent) {
      if (x.IncomingEdge(cur).nested()) return cur;
    }
    return node;
  }

  Result<std::vector<TemplateNode>> FinishNestedFlwr(const FlwrExpr& f, int p,
                                                     XamNodeId entry,
                                                     Scope& scope) {
    // Remaining bindings must chain from this block's variables (or deeper);
    // they use inner joins so the whole tuple vanishes when unmatched.
    for (size_t i = 1; i < f.bindings.size(); ++i) {
      ULOAD_ASSIGN_OR_RETURN(
          VarBinding vb,
          BindForVariable(f.bindings[i], JoinVariant::kInner));
      if (vb.pattern != p) {
        return Status::NotImplemented(
            "nested blocks must bind structurally related variables");
      }
      vars_[f.bindings[i].variable] = vb;
    }
    for (const LetBinding& lb : f.lets) {
      lets_[lb.variable] = ExpandLets(lb.path);
    }
    ULOAD_RETURN_NOT_OK(TrWhere(f.where, /*allow_cross=*/false));

    // New template scope: the entry collection. RootPrefix(entry) already
    // ends with "<entry>." because the entry's own incoming edge is nested.
    Scope inner;
    inner.root = false;
    inner.pattern = p;
    inner.entry = entry;
    inner.prefix = RootPrefix(patterns_[p], entry);

    // Collection attribute path relative to the enclosing scope (the prefix
    // without its trailing dot).
    std::string coll_root = inner.prefix.substr(0, inner.prefix.size() - 1);
    std::string coll_rel;
    if (scope.root) {
      coll_rel = coll_root;
    } else {
      if (scope.pattern != p || coll_root.rfind(scope.prefix, 0) != 0) {
        return Status::NotImplemented(
            "nested block is not within the enclosing template scope");
      }
      coll_rel = coll_root.substr(scope.prefix.size());
    }
    if (coll_rel.find('.') != std::string::npos) {
      return Status::Internal("nested iterate path is not single-level: " +
                              coll_rel);
    }

    if (f.ret->kind == Expr::Kind::kElement) {
      std::vector<TemplateNode> content;
      for (const ExprPtr& item : f.ret->element.content) {
        ULOAD_ASSIGN_OR_RETURN(std::vector<TemplateNode> sub,
                               TrExpr(*item, inner, /*grouped=*/true));
        for (TemplateNode& n : sub) content.push_back(std::move(n));
      }
      return std::vector<TemplateNode>{TemplateNode::Element(
          f.ret->element.tag, std::move(content), coll_rel)};
    }
    ULOAD_ASSIGN_OR_RETURN(std::vector<TemplateNode> content,
                           TrExpr(*f.ret, inner, /*grouped=*/true));
    return std::vector<TemplateNode>{
        TemplateNode::Group(std::move(content), coll_rel)};
  }

  Result<TemplateNode> TrReturnPath(const PathExpr& raw_path, Scope& scope,
                                    bool grouped) {
    PathExpr path = ExpandLets(raw_path);
    if (path.absolute()) {
      if (!scope.root) {
        return Status::NotImplemented(
            "absolute paths inside nested blocks are not supported");
      }
      patterns_.emplace_back();
      int p = static_cast<int>(patterns_.size()) - 1;
      JoinVariant entry =
          grouped ? JoinVariant::kNestOuter : JoinVariant::kInner;
      ULOAD_ASSIGN_OR_RETURN(
          XamNodeId node, AttachChain(p, kXamRoot, path.steps, entry));
      MarkOutput(p, node, path.text_result);
      bool value_out = path.text_result || patterns_[p].node(node).is_attribute;
      return TemplateNode::ValueRef(
          RootAttr(patterns_[p], node, value_out ? "_Val" : "_Cont"),
          /*raw=*/!value_out);
    }
    auto it = vars_.find(path.variable);
    if (it == vars_.end()) {
      return Status::InvalidArgument("unbound variable " + path.variable);
    }
    int p = it->second.pattern;
    XamNodeId node;
    if (path.steps.empty()) {
      // Returning the variable itself: make sure its content is stored.
      node = it->second.node;
      MarkOutput(p, node, path.text_result);
    } else {
      ULOAD_ASSIGN_OR_RETURN(
          node, AttachChain(p, it->second.node, path.steps,
                            JoinVariant::kNestOuter));
      MarkOutput(p, node, path.text_result);
    }
    // Attribute results serialize as their value, like text().
    bool value_out = path.text_result || patterns_[p].node(node).is_attribute;
    const std::string suffix = value_out ? "_Val" : "_Cont";
    const bool raw = !value_out;
    std::string root_attr = RootAttr(patterns_[p], node, suffix);

    if (scope.root) {
      return TemplateNode::ValueRef(root_attr, raw);
    }
    if (scope.pattern == p && root_attr.rfind(scope.prefix, 0) == 0) {
      return TemplateNode::ValueRef(root_attr.substr(scope.prefix.size()),
                                    raw);
    }
    // Outer-variable reference inside a nested block (§3.3.3): emit an
    // absolute reference and record the compensating selection — the
    // pattern alone stores this data for *every* outer tuple, but the query
    // only exposes it when the block's collection is non-empty:
    //   (entry_ID not null) ∨ (entry_ID null ∧ ref null).
    std::string entry_id =
        RootAttr(patterns_[scope.pattern], scope.entry, "_ID");
    compensations_.push_back(Predicate::Or(
        Predicate::NotNull(entry_id),
        Predicate::And(Predicate::IsNull(entry_id),
                       Predicate::IsNull(root_attr))));
    return TemplateNode::ValueRef(root_attr, raw, /*absolute=*/true);
  }

  void MarkOutput(int p, XamNodeId node, bool text_result) {
    // The node identity is part of the query's needs: XPath semantics
    // deduplicate *nodes*, not serialized values (the π⁰ of §3.3.1), and
    // rewritings may need the identifier to regroup fragments. Only the
    // *identity* property is demanded (IdKind::kSimple) — any stored id
    // representation can serve it.
    patterns_[p].StoreId(node, IdKind::kSimple);
    if (text_result || patterns_[p].node(node).is_attribute) {
      patterns_[p].StoreVal(node);
    } else {
      patterns_[p].StoreCont(node);
    }
  }
};

}  // namespace

std::string Translation::ToString() const {
  std::string out;
  for (size_t i = 0; i < patterns.size(); ++i) {
    out += "pattern V" + std::to_string(i + 1) + ":\n";
    out += patterns[i].ToString();
  }
  for (const PredicatePtr& p : cross_predicates) {
    out += "where: " + p->ToString() + "\n";
  }
  for (const PredicatePtr& p : compensations) {
    out += "compensation: " + p->ToString() + "\n";
  }
  out += "template: " + templ.ToString() + "\n";
  return out;
}

Result<Translation> TranslateQuery(const Expr& q) {
  Translator t;
  return t.Run(q);
}

Result<std::string> EvaluateTranslated(const Translation& tr,
                                       const DocumentStore& doc) {
  if (tr.patterns.empty()) {
    // Constant query (no data access): apply the template to one empty tuple.
    NestedRelation unit(Schema::Make({}));
    unit.Add(Tuple{});
    return ApplyTemplate(tr.templ, unit);
  }
  // Materialize every pattern, then product + filters + template.
  std::vector<NestedRelation> mats;
  mats.reserve(tr.patterns.size());
  for (const Xam& p : tr.patterns) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation r, EvaluateXam(p, doc));
    mats.push_back(std::move(r));
  }
  NestedRelation cur = std::move(mats[0]);
  for (size_t i = 1; i < mats.size(); ++i) {
    std::unordered_map<std::string, const NestedRelation*> rels{
        {"L", &cur}, {"R", &mats[i]}};
    ULOAD_ASSIGN_OR_RETURN(
        cur, Evaluate(*LogicalPlan::Product(LogicalPlan::Scan("L"),
                                            LogicalPlan::Scan("R")),
                      rels));
  }
  for (const PredicatePtr& pred : tr.cross_predicates) {
    NestedRelation filtered(cur.schema_ptr(), cur.kind());
    for (const Tuple& t : cur.tuples()) {
      ULOAD_ASSIGN_OR_RETURN(bool keep, pred->Eval(cur.schema(), t));
      if (keep) filtered.Add(t);
    }
    cur = std::move(filtered);
  }
  return ApplyTemplate(tr.templ, cur);
}

}  // namespace uload
