#include "xquery/interp.h"

#include <algorithm>

#include "common/string_util.h"

namespace uload {
namespace {

bool LabelMatches(const Node& n, const std::string& label) {
  if (label.empty()) return n.is_element();
  if (label[0] == '@') return n.is_attribute() && n.label == label.substr(1);
  return n.is_element() && n.label == label;
}

void Step(const Document& doc, const std::vector<NodeIndex>& from,
          const PathStep& step, std::vector<NodeIndex>* out) {
  for (NodeIndex f : from) {
    if (step.descendant) {
      std::vector<NodeIndex> work = doc.Children(f);
      std::reverse(work.begin(), work.end());
      while (!work.empty()) {
        NodeIndex c = work.back();
        work.pop_back();
        if (LabelMatches(doc.node(c), step.label)) out->push_back(c);
        std::vector<NodeIndex> kids = doc.Children(c);
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          work.push_back(*it);
        }
      }
    } else {
      for (NodeIndex c : doc.Children(f)) {
        if (LabelMatches(doc.node(c), step.label)) out->push_back(c);
      }
    }
  }
  // Distinct nodes in document order (== index order).
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// Compares an XML node's value with a constant per XQuery untyped rules.
bool ValueCompare(const Document& doc, NodeIndex n, Comparator cmp,
                  const AtomicValue& c) {
  AtomicValue v = AtomicValue::String(doc.Value(n));
  return CompareAtoms(v, cmp, c);
}

Result<bool> QualifierHolds(const Document& doc, NodeIndex n,
                            const PathStep::Qualifier& q, const VarEnv& env);

Result<std::vector<NodeIndex>> EvalSteps(const Document& doc,
                                         std::vector<NodeIndex> cur,
                                         const std::vector<PathStep>& steps,
                                         const VarEnv& env) {
  for (const PathStep& s : steps) {
    std::vector<NodeIndex> next;
    Step(doc, cur, s, &next);
    if (!s.qualifiers.empty()) {
      std::vector<NodeIndex> kept;
      for (NodeIndex n : next) {
        bool ok = true;
        for (const PathStep::Qualifier& q : s.qualifiers) {
          ULOAD_ASSIGN_OR_RETURN(bool holds, QualifierHolds(doc, n, q, env));
          if (!holds) {
            ok = false;
            break;
          }
        }
        if (ok) kept.push_back(n);
      }
      next = std::move(kept);
    }
    cur = std::move(next);
  }
  return cur;
}

Result<bool> QualifierHolds(const Document& doc, NodeIndex n,
                            const PathStep::Qualifier& q, const VarEnv& env) {
  if (!q.rel_path) {
    // [text() θ c]
    return ValueCompare(doc, n, q.cmp, q.constant);
  }
  ULOAD_ASSIGN_OR_RETURN(
      std::vector<NodeIndex> matches,
      EvalSteps(doc, {n}, q.rel_path->steps, env));
  if (!q.has_comparison) return !matches.empty();
  for (NodeIndex m : matches) {
    if (ValueCompare(doc, m, q.cmp, q.constant)) return true;
  }
  return false;
}

class Interp {
 public:
  explicit Interp(const Document& doc) : doc_(doc) {}

  Result<std::string> Eval(const Expr& e, VarEnv* env) {
    std::string out;
    ULOAD_RETURN_NOT_OK(EvalInto(e, env, &out));
    return out;
  }

 private:
  Status EvalInto(const Expr& e, VarEnv* env, std::string* out) {
    switch (e.kind) {
      case Expr::Kind::kPath: {
        ULOAD_ASSIGN_OR_RETURN(std::vector<NodeIndex> nodes,
                               EvalPathDirect(e.path, doc_, *env));
        for (NodeIndex n : nodes) {
          if (e.path.text_result || doc_.node(n).is_attribute()) {
            // Standalone attribute nodes serialize as their value.
            *out += XmlEscape(doc_.Value(n));
          } else {
            *out += doc_.Content(n);
          }
        }
        return Status::Ok();
      }
      case Expr::Kind::kConcat: {
        for (const ExprPtr& item : e.items) {
          ULOAD_RETURN_NOT_OK(EvalInto(*item, env, out));
        }
        return Status::Ok();
      }
      case Expr::Kind::kElement: {
        *out += "<" + e.element.tag + ">";
        for (const ExprPtr& item : e.element.content) {
          ULOAD_RETURN_NOT_OK(EvalInto(*item, env, out));
        }
        *out += "</" + e.element.tag + ">";
        return Status::Ok();
      }
      case Expr::Kind::kFlwr:
        return EvalFlwr(e.flwr, 0, env, out);
    }
    return Status::Internal("unhandled expression kind");
  }

  Status EvalFlwr(const FlwrExpr& f, size_t binding_index, VarEnv* env,
                  std::string* out) {
    if (binding_index == f.bindings.size()) {
      // All for-variables bound: register let aliases, check where, emit.
      size_t alias_mark = env->aliases.size();
      for (const LetBinding& lb : f.lets) {
        env->aliases.emplace_back(lb.variable, &lb.path);
      }
      Status st = Status::Ok();
      bool pass = true;
      for (const WhereCondition& w : f.where) {
        auto holds = WhereHolds(w, *env);
        if (!holds.ok()) {
          st = holds.status();
          pass = false;
          break;
        }
        if (!*holds) {
          pass = false;
          break;
        }
      }
      if (st.ok() && pass) st = EvalInto(*f.ret, env, out);
      env->aliases.resize(alias_mark);
      return st;
    }
    const ForBinding& b = f.bindings[binding_index];
    ULOAD_ASSIGN_OR_RETURN(std::vector<NodeIndex> nodes,
                           EvalPathDirect(b.path, doc_, *env));
    for (NodeIndex n : nodes) {
      env->bindings.emplace_back(b.variable, n);
      Status st = EvalFlwr(f, binding_index + 1, env, out);
      env->bindings.pop_back();
      ULOAD_RETURN_NOT_OK(st);
    }
    return Status::Ok();
  }

  Result<bool> WhereHolds(const WhereCondition& w, const VarEnv& env) {
    ULOAD_ASSIGN_OR_RETURN(std::vector<NodeIndex> lhs,
                           EvalPathDirect(w.lhs, doc_, env));
    if (!w.has_comparison) return !lhs.empty();
    if (!w.rhs_is_path) {
      for (NodeIndex n : lhs) {
        if (ValueCompare(doc_, n, w.cmp, w.constant)) return true;
      }
      return false;
    }
    ULOAD_ASSIGN_OR_RETURN(std::vector<NodeIndex> rhs,
                           EvalPathDirect(w.rhs, doc_, env));
    for (NodeIndex a : lhs) {
      AtomicValue va = AtomicValue::String(doc_.Value(a));
      for (NodeIndex b : rhs) {
        AtomicValue vb = AtomicValue::String(doc_.Value(b));
        if (CompareAtoms(va, w.cmp, vb)) return true;
      }
    }
    return false;
  }

  const Document& doc_;
};

}  // namespace

Result<std::vector<NodeIndex>> EvalPathDirect(const PathExpr& p,
                                              const Document& doc,
                                              const VarEnv& env) {
  std::vector<NodeIndex> start;
  if (p.absolute()) {
    start.push_back(doc.document_node());
  } else if (const PathExpr* alias = env.LookupAlias(p.variable)) {
    // Let alias: splice the aliased path in front of this one's steps.
    ULOAD_ASSIGN_OR_RETURN(start, EvalPathDirect(*alias, doc, env));
  } else {
    NodeIndex n = env.Lookup(p.variable);
    if (n == kNoNode) {
      return Status::InvalidArgument("unbound variable " + p.variable);
    }
    start.push_back(n);
  }
  return EvalSteps(doc, std::move(start), p.steps, env);
}

Result<std::string> EvaluateQueryDirect(const Expr& q, const Document& doc) {
  Interp interp(doc);
  VarEnv env;
  return interp.Eval(q, &env);
}

}  // namespace uload
