#include "algebra/predicate.h"

#include "common/string_util.h"

namespace uload {

const char* ComparatorName(Comparator cmp) {
  switch (cmp) {
    case Comparator::kEq:
      return "=";
    case Comparator::kNe:
      return "!=";
    case Comparator::kLt:
      return "<";
    case Comparator::kLe:
      return "<=";
    case Comparator::kGt:
      return ">";
    case Comparator::kGe:
      return ">=";
    case Comparator::kParent:
      return "≺";
    case Comparator::kAncestor:
      return "≺≺";
    case Comparator::kContainsWord:
      return "contains";
  }
  return "?";
}

Comparator FlipComparator(Comparator cmp) {
  switch (cmp) {
    case Comparator::kLt:
      return Comparator::kGt;
    case Comparator::kLe:
      return Comparator::kGe;
    case Comparator::kGt:
      return Comparator::kLt;
    case Comparator::kGe:
      return Comparator::kLe;
    default:
      return cmp;  // =, != are symmetric; structural must not be flipped
  }
}

bool CompareAtoms(const AtomicValue& a, Comparator cmp, const AtomicValue& b) {
  if (a.is_null() || b.is_null()) return false;
  switch (cmp) {
    case Comparator::kEq:
      return a == b;
    case Comparator::kNe:
      return !(a == b);
    case Comparator::kLt:
      return AtomicValue::Compare(a, b) < 0;
    case Comparator::kLe:
      return AtomicValue::Compare(a, b) <= 0;
    case Comparator::kGt:
      return AtomicValue::Compare(a, b) > 0;
    case Comparator::kGe:
      return AtomicValue::Compare(a, b) >= 0;
    case Comparator::kParent:
      return AtomicValue::IsParentOf(a, b);
    case Comparator::kAncestor:
      return AtomicValue::IsAncestorOf(a, b);
    case Comparator::kContainsWord:
      return a.is_string() && b.is_string() &&
             ContainsWord(a.as_string(), b.as_string());
  }
  return false;
}

PredicatePtr Predicate::True() {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kTrue;
  return p;
}

PredicatePtr Predicate::CompareConst(std::string attr, Comparator cmp,
                                     AtomicValue constant) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kCompareConst;
  p->lhs_ = std::move(attr);
  p->cmp_ = cmp;
  p->constant_ = std::move(constant);
  return p;
}

PredicatePtr Predicate::CompareAttrs(std::string lhs, Comparator cmp,
                                     std::string rhs) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kCompareAttrs;
  p->lhs_ = std::move(lhs);
  p->cmp_ = cmp;
  p->rhs_attr_ = std::move(rhs);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kAnd;
  p->a_ = std::move(a);
  p->b_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kOr;
  p->a_ = std::move(a);
  p->b_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr a) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kNot;
  p->a_ = std::move(a);
  return p;
}

PredicatePtr Predicate::IsNull(std::string attr) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kIsNull;
  p->lhs_ = std::move(attr);
  return p;
}

PredicatePtr Predicate::NotNull(std::string attr) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kNotNull;
  p->lhs_ = std::move(attr);
  return p;
}

Result<bool> Predicate::Eval(const Schema& schema, const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompareConst: {
      ULOAD_ASSIGN_OR_RETURN(AttrPath path, ResolveAttrPath(schema, lhs_));
      std::vector<AtomicValue> atoms;
      CollectAtomsAt(tuple, schema, path, 0, &atoms);
      for (const AtomicValue& v : atoms) {
        if (CompareAtoms(v, cmp_, constant_)) return true;
      }
      return false;
    }
    case Kind::kCompareAttrs: {
      ULOAD_ASSIGN_OR_RETURN(AttrPath lp, ResolveAttrPath(schema, lhs_));
      ULOAD_ASSIGN_OR_RETURN(AttrPath rp, ResolveAttrPath(schema, rhs_attr_));
      std::vector<AtomicValue> left;
      std::vector<AtomicValue> right;
      CollectAtomsAt(tuple, schema, lp, 0, &left);
      CollectAtomsAt(tuple, schema, rp, 0, &right);
      for (const AtomicValue& a : left) {
        for (const AtomicValue& b : right) {
          if (CompareAtoms(a, cmp_, b)) return true;
        }
      }
      return false;
    }
    case Kind::kAnd: {
      ULOAD_ASSIGN_OR_RETURN(bool a, a_->Eval(schema, tuple));
      if (!a) return false;
      return b_->Eval(schema, tuple);
    }
    case Kind::kOr: {
      ULOAD_ASSIGN_OR_RETURN(bool a, a_->Eval(schema, tuple));
      if (a) return true;
      return b_->Eval(schema, tuple);
    }
    case Kind::kNot: {
      ULOAD_ASSIGN_OR_RETURN(bool a, a_->Eval(schema, tuple));
      return !a;
    }
    case Kind::kIsNull:
    case Kind::kNotNull: {
      ULOAD_ASSIGN_OR_RETURN(AttrPath path, ResolveAttrPath(schema, lhs_));
      bool any_non_null = false;
      const Attribute& attr = AttrAt(schema, path);
      if (attr.is_collection && path.size() >= 1 &&
          CollectionDepth(schema, path) == 0) {
        // "A is null" on a collection attribute means "A is empty".
        const Tuple* cur = &tuple;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          cur = &cur->fields[path[i]].collection().front();
        }
        any_non_null = !cur->fields[path.back()].collection().empty();
      } else {
        std::vector<AtomicValue> atoms;
        CollectAtomsAt(tuple, schema, path, 0, &atoms);
        for (const AtomicValue& v : atoms) {
          if (!v.is_null()) {
            any_non_null = true;
            break;
          }
        }
      }
      return kind_ == Kind::kIsNull ? !any_non_null : any_non_null;
    }
  }
  return Status::Internal("unhandled predicate kind");
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompareConst:
      return lhs_ + " " + ComparatorName(cmp_) + " " + constant_.ToString();
    case Kind::kCompareAttrs:
      return lhs_ + " " + ComparatorName(cmp_) + " " + rhs_attr_;
    case Kind::kAnd:
      return "(" + a_->ToString() + " and " + b_->ToString() + ")";
    case Kind::kOr:
      return "(" + a_->ToString() + " or " + b_->ToString() + ")";
    case Kind::kNot:
      return "not(" + a_->ToString() + ")";
    case Kind::kIsNull:
      return lhs_ + " is null";
    case Kind::kNotNull:
      return lhs_ + " is not null";
  }
  return "?";
}

}  // namespace uload
