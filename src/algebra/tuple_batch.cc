#include "algebra/tuple_batch.h"

#include <algorithm>

namespace uload {

TupleBatch::TupleBatch(SchemaPtr schema, size_t capacity)
    : schema_(std::move(schema)), capacity_(std::max<size_t>(1, capacity)) {
  tuples_.reserve(capacity_);
}

}  // namespace uload
