// Nested tuples: each field is either an atomic value or a collection of
// tuples (alternating nesting, thesis §1.2.2).
#ifndef ULOAD_ALGEBRA_TUPLE_H_
#define ULOAD_ALGEBRA_TUPLE_H_

#include <string>
#include <variant>
#include <vector>

#include "algebra/schema.h"
#include "algebra/value.h"

namespace uload {

struct Tuple;
using TupleList = std::vector<Tuple>;

class Field {
 public:
  Field() : v_(AtomicValue::Null()) {}
  explicit Field(AtomicValue atom) : v_(std::move(atom)) {}
  explicit Field(TupleList coll) : v_(std::move(coll)) {}

  bool is_collection() const { return v_.index() == 1; }
  const AtomicValue& atom() const { return std::get<AtomicValue>(v_); }
  AtomicValue& atom() { return std::get<AtomicValue>(v_); }
  const TupleList& collection() const { return std::get<TupleList>(v_); }
  TupleList& collection() { return std::get<TupleList>(v_); }

 private:
  std::variant<AtomicValue, TupleList> v_;
};

struct Tuple {
  std::vector<Field> fields;

  Tuple() = default;
  explicit Tuple(std::vector<Field> f) : fields(std::move(f)) {}
};

// Deep comparison: atoms by AtomicValue::Compare, collections element-wise
// then by size. Returns <0, 0, >0.
int CompareTuples(const Tuple& a, const Tuple& b);
bool TuplesEqual(const Tuple& a, const Tuple& b);

// Tuple concatenation (the || operator of Def. 1.2.1).
Tuple ConcatTuples(const Tuple& a, const Tuple& b);

// All-null tuple matching `schema` (⊥_S in the outerjoin definitions):
// atomic fields are null, collection fields are empty.
Tuple NullTuple(const Schema& schema);

// Value at an AttrPath when the path crosses no collection boundary.
const AtomicValue& AtomAt(const Tuple& t, const AttrPath& path);

// Existential retrieval: collects every atomic value reachable along `path`,
// descending into collections (the map-extension semantics of σ).
void CollectAtomsAt(const Tuple& t, const Schema& schema, const AttrPath& path,
                    size_t depth, std::vector<AtomicValue>* out);

// Debug rendering "( v1, [ (..) (..) ], v2 )".
std::string TupleToString(const Tuple& t);

// Rough heap-footprint estimates for memory accounting (exec/
// memory_tracker.h): struct sizes plus string/Dewey payloads, descending
// into nested collections. Estimates, not allocator truth — budgets are
// order-of-magnitude guards, not ledgers.
int64_t ApproxTupleBytes(const Tuple& t);
int64_t ApproxTupleListBytes(const TupleList& ts);

}  // namespace uload

#endif  // ULOAD_ALGEBRA_TUPLE_H_
