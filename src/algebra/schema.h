// Schemas of nested relations: a flat list of attributes, each either atomic
// or a collection of tuples with its own nested schema. The data model
// alternates tuple and collection constructors (thesis §1.2.2).
#ifndef ULOAD_ALGEBRA_SCHEMA_H_
#define ULOAD_ALGEBRA_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace uload {

enum class CollectionKind : uint8_t { kSet = 0, kBag, kList };

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

struct Attribute {
  std::string name;
  bool is_collection = false;
  // For collections: the element-tuple schema and the collection kind.
  SchemaPtr nested;
  CollectionKind collection_kind = CollectionKind::kList;

  static Attribute Atomic(std::string name) {
    return Attribute{std::move(name), false, nullptr, CollectionKind::kList};
  }
  static Attribute Collection(std::string name, SchemaPtr nested,
                              CollectionKind kind = CollectionKind::kList) {
    return Attribute{std::move(name), true, std::move(nested), kind};
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  static SchemaPtr Make(std::vector<Attribute> attrs) {
    return std::make_shared<Schema>(std::move(attrs));
  }

  int size() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attr(int i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  // Index of the attribute named `name`, or -1.
  int IndexOf(const std::string& name) const;

  // Schema of the concatenation of two tuples (s1 ++ s2). Clashing names on
  // the right are suffixed with '#'.
  static SchemaPtr Concat(const Schema& a, const Schema& b);

  // "name1, name2(sub1, sub2), name3"-style rendering.
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Attribute> attrs_;
};

// A path through nested schemas: indices of attributes at each nesting
// level, e.g. {2, 0} is the first attribute of the collection stored in the
// third top-level attribute.
using AttrPath = std::vector<int>;

// Resolves a dotted name ("A1.A11") against `schema`. All path components
// except possibly the last must be collection attributes.
Result<AttrPath> ResolveAttrPath(const Schema& schema,
                                 const std::string& dotted);

// Name at the end of an AttrPath.
std::string AttrPathName(const Schema& schema, const AttrPath& path);

// Schema navigation: attribute reached by `path`.
const Attribute& AttrAt(const Schema& schema, const AttrPath& path);

// Number of collection boundaries crossed *before* the final attribute.
int CollectionDepth(const Schema& schema, const AttrPath& path);

}  // namespace uload

#endif  // ULOAD_ALGEBRA_SCHEMA_H_
