// Nested relations: a schema plus a set/bag/list of nested tuples.
#ifndef ULOAD_ALGEBRA_RELATION_H_
#define ULOAD_ALGEBRA_RELATION_H_

#include <string>

#include "algebra/schema.h"
#include "algebra/tuple.h"

namespace uload {

class NestedRelation {
 public:
  NestedRelation() : schema_(Schema::Make({})) {}
  explicit NestedRelation(SchemaPtr schema,
                          CollectionKind kind = CollectionKind::kList)
      : schema_(std::move(schema)), kind_(kind) {}

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }
  CollectionKind kind() const { return kind_; }

  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }
  const TupleList& tuples() const { return tuples_; }
  TupleList& mutable_tuples() { return tuples_; }
  const Tuple& tuple(int64_t i) const { return tuples_[i]; }

  void Add(Tuple t) { tuples_.push_back(std::move(t)); }

  // Stable-sorts tuples by full-tuple comparison.
  void Sort();
  // Removes duplicate tuples (sorts first if needed); used by π⁰ and set
  // semantics.
  void Deduplicate();

  // Multi-line debug rendering.
  std::string ToString() const;

  // Deep equality: same schema shape and same tuple sequence.
  bool Equals(const NestedRelation& other) const;
  // Equality up to tuple order (bag equality).
  bool EqualsUnordered(const NestedRelation& other) const;

 private:
  SchemaPtr schema_;
  CollectionKind kind_ = CollectionKind::kList;
  TupleList tuples_;
};

}  // namespace uload

#endif  // ULOAD_ALGEBRA_RELATION_H_
