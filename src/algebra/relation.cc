#include "algebra/relation.h"

#include <algorithm>

namespace uload {

void NestedRelation::Sort() {
  std::stable_sort(tuples_.begin(), tuples_.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return CompareTuples(a, b) < 0;
                   });
}

void NestedRelation::Deduplicate() {
  // Preserve first-occurrence order (list semantics friendly): O(n^2) would
  // be too slow for large relations, so sort a copy of indices instead.
  std::vector<size_t> order(tuples_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CompareTuples(tuples_[a], tuples_[b]) < 0;
  });
  std::vector<bool> keep(tuples_.size(), true);
  for (size_t i = 1; i < order.size(); ++i) {
    if (CompareTuples(tuples_[order[i - 1]], tuples_[order[i]]) == 0) {
      // Drop the later occurrence in document order.
      keep[std::max(order[i - 1], order[i])] = false;
      // Keep the chain anchored at the earliest occurrence.
      if (order[i] > order[i - 1]) order[i] = order[i - 1];
    }
  }
  TupleList out;
  out.reserve(tuples_.size());
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (keep[i]) out.push_back(std::move(tuples_[i]));
  }
  tuples_ = std::move(out);
}

std::string NestedRelation::ToString() const {
  std::string out = "{" + schema_->ToString() + "}\n";
  for (const Tuple& t : tuples_) {
    out += "  " + TupleToString(t) + "\n";
  }
  return out;
}

bool NestedRelation::Equals(const NestedRelation& other) const {
  if (!schema_->Equals(*other.schema_)) return false;
  if (tuples_.size() != other.tuples_.size()) return false;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (!TuplesEqual(tuples_[i], other.tuples_[i])) return false;
  }
  return true;
}

bool NestedRelation::EqualsUnordered(const NestedRelation& other) const {
  if (!schema_->Equals(*other.schema_)) return false;
  if (tuples_.size() != other.tuples_.size()) return false;
  NestedRelation a = *this;
  NestedRelation b = other;
  a.Sort();
  b.Sort();
  for (size_t i = 0; i < a.tuples_.size(); ++i) {
    if (!TuplesEqual(a.tuples_[i], b.tuples_[i])) return false;
  }
  return true;
}

}  // namespace uload
