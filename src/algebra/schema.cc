#include "algebra/schema.h"

#include "common/string_util.h"

namespace uload {

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return -1;
}

SchemaPtr Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Attribute> attrs = a.attrs_;
  for (const Attribute& attr : b.attrs_) {
    Attribute copy = attr;
    if (a.IndexOf(copy.name) >= 0) copy.name += "#";
    attrs.push_back(std::move(copy));
  }
  return Make(std::move(attrs));
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    if (attrs_[i].is_collection) {
      out += "(";
      out += attrs_[i].nested->ToString();
      out += ")";
    }
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (size() != other.size()) return false;
  for (int i = 0; i < size(); ++i) {
    const Attribute& a = attrs_[i];
    const Attribute& b = other.attrs_[i];
    if (a.name != b.name || a.is_collection != b.is_collection) return false;
    if (a.is_collection && !a.nested->Equals(*b.nested)) return false;
  }
  return true;
}

Result<AttrPath> ResolveAttrPath(const Schema& schema,
                                 const std::string& dotted) {
  std::vector<std::string> parts = SplitNonEmpty(dotted, '.');
  if (parts.empty()) {
    return Status::InvalidArgument("empty attribute path");
  }
  AttrPath path;
  const Schema* cur = &schema;
  for (size_t i = 0; i < parts.size(); ++i) {
    int idx = cur->IndexOf(parts[i]);
    if (idx < 0) {
      return Status::NotFound("attribute '" + parts[i] + "' not in schema {" +
                              cur->ToString() + "}");
    }
    path.push_back(idx);
    const Attribute& attr = cur->attr(idx);
    if (i + 1 < parts.size()) {
      if (!attr.is_collection) {
        return Status::TypeError("attribute '" + parts[i] +
                                 "' is atomic but path continues");
      }
      cur = attr.nested.get();
    }
  }
  return path;
}

std::string AttrPathName(const Schema& schema, const AttrPath& path) {
  const Schema* cur = &schema;
  std::string name;
  for (size_t i = 0; i < path.size(); ++i) {
    const Attribute& attr = cur->attr(path[i]);
    name = attr.name;
    if (i + 1 < path.size()) cur = attr.nested.get();
  }
  return name;
}

const Attribute& AttrAt(const Schema& schema, const AttrPath& path) {
  const Schema* cur = &schema;
  for (size_t i = 0;; ++i) {
    const Attribute& attr = cur->attr(path[i]);
    if (i + 1 == path.size()) return attr;
    cur = attr.nested.get();
  }
}

int CollectionDepth(const Schema& schema, const AttrPath& path) {
  int depth = 0;
  const Schema* cur = &schema;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Attribute& attr = cur->attr(path[i]);
    if (attr.is_collection) {
      ++depth;
      cur = attr.nested.get();
    }
  }
  return depth;
}

}  // namespace uload
