// Predicates over (possibly nested) tuple attributes.
//
// Atoms are comparisons A θ c or A θ B with θ in {=, ≠, <, ≤, >, ≥, ≺, ≺≺,
// contains}; ≺ / ≺≺ apply to identifier values only (thesis §1.2.2).
// Predicates over attributes nested inside collections have existential
// semantics, via the map meta-operator extension.
#ifndef ULOAD_ALGEBRA_PREDICATE_H_
#define ULOAD_ALGEBRA_PREDICATE_H_

#include <memory>
#include <string>

#include "algebra/relation.h"

namespace uload {

enum class Comparator : uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kParent,    // ≺  : lhs is the parent of rhs
  kAncestor,  // ≺≺ : lhs is an ancestor of rhs
  kContainsWord,
};

const char* ComparatorName(Comparator cmp);
// Comparator for the arguments swapped (e.g. kLt -> kGt, kParent has no
// swap inside this enum so callers must not swap structural comparators).
Comparator FlipComparator(Comparator cmp);

// Applies `cmp` to two atoms. Comparisons involving null are false.
bool CompareAtoms(const AtomicValue& a, Comparator cmp, const AtomicValue& b);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  enum class Kind {
    kTrue,
    kCompareConst,  // attr θ constant
    kCompareAttrs,  // attr θ attr (both in the same tuple)
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kNotNull,
  };

  static PredicatePtr True();
  static PredicatePtr CompareConst(std::string attr, Comparator cmp,
                                   AtomicValue constant);
  static PredicatePtr CompareAttrs(std::string lhs, Comparator cmp,
                                   std::string rhs);
  static PredicatePtr And(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Or(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Not(PredicatePtr a);
  static PredicatePtr IsNull(std::string attr);
  static PredicatePtr NotNull(std::string attr);

  Kind kind() const { return kind_; }
  const std::string& lhs() const { return lhs_; }
  const std::string& rhs_attr() const { return rhs_attr_; }
  const AtomicValue& constant() const { return constant_; }
  Comparator comparator() const { return cmp_; }
  const PredicatePtr& left() const { return a_; }
  const PredicatePtr& right() const { return b_; }

  // Evaluates against one tuple. Attributes nested under collections use
  // existential semantics.
  Result<bool> Eval(const Schema& schema, const Tuple& tuple) const;

  std::string ToString() const;

 private:
  Kind kind_ = Kind::kTrue;
  std::string lhs_;
  std::string rhs_attr_;
  AtomicValue constant_;
  Comparator cmp_ = Comparator::kEq;
  PredicatePtr a_;
  PredicatePtr b_;
};

}  // namespace uload

#endif  // ULOAD_ALGEBRA_PREDICATE_H_
