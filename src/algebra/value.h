// Atomic values of the nested-relational data model (thesis §1.2.2).
//
// The atomic domain A contains strings and numbers; node identifiers are
// also atomic values (the I domain) and come in two concrete flavors:
// (pre, post, depth) structural ids and Dewey paths. The ≺ (parent) and ≺≺
// (ancestor) comparators only apply to identifier values.
#ifndef ULOAD_ALGEBRA_VALUE_H_
#define ULOAD_ALGEBRA_VALUE_H_

#include <string>
#include <variant>

#include "xml/ids.h"

namespace uload {

class AtomicValue {
 public:
  enum class Kind { kNull = 0, kString, kNumber, kSid, kDewey };

  AtomicValue() : v_(NullTag{}) {}

  static AtomicValue Null() { return AtomicValue(); }
  static AtomicValue String(std::string s) {
    return AtomicValue(std::move(s));
  }
  static AtomicValue Number(double d) { return AtomicValue(d); }
  static AtomicValue Sid(StructuralId id) { return AtomicValue(id); }
  static AtomicValue Dewey(DeweyId id) { return AtomicValue(std::move(id)); }

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_id() const { return kind() == Kind::kSid || kind() == Kind::kDewey; }

  const std::string& as_string() const { return std::get<std::string>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const StructuralId& sid() const { return std::get<StructuralId>(v_); }
  const DeweyId& dewey() const { return std::get<DeweyId>(v_); }

  // Value equality. Strings compare to numbers by numeric coercion when the
  // string parses as a number (XQuery-ish untyped comparison).
  friend bool operator==(const AtomicValue& a, const AtomicValue& b);

  // Total order for sorting and <,> predicates: null < ids (document order)
  // < numbers < strings; string/number pairs coerce numerically when
  // possible. Returns <0, 0, >0.
  static int Compare(const AtomicValue& a, const AtomicValue& b);

  // Structural predicates over identifiers. False when kinds differ or
  // either side is not an id.
  static bool IsParentOf(const AtomicValue& a, const AtomicValue& b);
  static bool IsAncestorOf(const AtomicValue& a, const AtomicValue& b);

  // Debug/printing representation (strings quoted).
  std::string ToString() const;
  // Raw representation (strings unquoted) for XML construction.
  std::string ToDisplay() const;

 private:
  struct NullTag {
    friend bool operator==(const NullTag&, const NullTag&) = default;
  };

  explicit AtomicValue(std::string s) : v_(std::move(s)) {}
  explicit AtomicValue(double d) : v_(d) {}
  explicit AtomicValue(StructuralId id) : v_(id) {}
  explicit AtomicValue(DeweyId id) : v_(std::move(id)) {}

  std::variant<NullTag, std::string, double, StructuralId, DeweyId> v_;
};

}  // namespace uload

#endif  // ULOAD_ALGEBRA_VALUE_H_
