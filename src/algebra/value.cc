#include "algebra/value.h"

#include "common/string_util.h"

namespace uload {

bool operator==(const AtomicValue& a, const AtomicValue& b) {
  if (a.kind() == b.kind()) return a.v_ == b.v_;
  // Untyped coercion: a numeric string equals the number it denotes.
  double x = 0;
  double y = 0;
  if (a.is_string() && b.is_number() && ParseNumber(a.as_string(), &x)) {
    return x == b.as_number();
  }
  if (a.is_number() && b.is_string() && ParseNumber(b.as_string(), &y)) {
    return a.as_number() == y;
  }
  return false;
}

int AtomicValue::Compare(const AtomicValue& a, const AtomicValue& b) {
  auto rank = [](Kind k) {
    switch (k) {
      case Kind::kNull:
        return 0;
      case Kind::kSid:
      case Kind::kDewey:
        return 1;
      case Kind::kNumber:
        return 2;
      case Kind::kString:
        return 3;
    }
    return 4;
  };
  // Coercions first.
  if (a.is_string() && b.is_number()) {
    double x;
    if (ParseNumber(a.as_string(), &x)) {
      return x < b.as_number() ? -1 : (x > b.as_number() ? 1 : 0);
    }
  }
  if (a.is_number() && b.is_string()) {
    double y;
    if (ParseNumber(b.as_string(), &y)) {
      return a.as_number() < y ? -1 : (a.as_number() > y ? 1 : 0);
    }
  }
  if (rank(a.kind()) != rank(b.kind())) {
    return rank(a.kind()) < rank(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case Kind::kNull:
      return 0;
    case Kind::kNumber: {
      double x = a.as_number();
      double y = b.as_number();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Kind::kString:
      return a.as_string().compare(b.as_string());
    case Kind::kSid: {
      if (b.kind() == Kind::kDewey) return -1;  // arbitrary but stable
      uint32_t x = a.sid().pre;
      uint32_t y = b.sid().pre;
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Kind::kDewey: {
      if (b.kind() == Kind::kSid) return 1;
      return DeweyCompare(a.dewey(), b.dewey());
    }
  }
  return 0;
}

bool AtomicValue::IsParentOf(const AtomicValue& a, const AtomicValue& b) {
  if (a.kind() == Kind::kSid && b.kind() == Kind::kSid) {
    return IsParent(a.sid(), b.sid());
  }
  if (a.kind() == Kind::kDewey && b.kind() == Kind::kDewey) {
    return DeweyIsParent(a.dewey(), b.dewey());
  }
  return false;
}

bool AtomicValue::IsAncestorOf(const AtomicValue& a, const AtomicValue& b) {
  if (a.kind() == Kind::kSid && b.kind() == Kind::kSid) {
    return IsAncestor(a.sid(), b.sid());
  }
  if (a.kind() == Kind::kDewey && b.kind() == Kind::kDewey) {
    return DeweyIsAncestor(a.dewey(), b.dewey());
  }
  return false;
}

std::string AtomicValue::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "⊥";
    case Kind::kString:
      return "\"" + as_string() + "\"";
    case Kind::kNumber: {
      double d = as_number();
      if (d == static_cast<long long>(d)) {
        return std::to_string(static_cast<long long>(d));
      }
      return std::to_string(d);
    }
    case Kind::kSid:
      return uload::ToString(sid());
    case Kind::kDewey:
      return uload::ToString(dewey());
  }
  return "?";
}

std::string AtomicValue::ToDisplay() const {
  if (is_string()) return as_string();
  if (is_null()) return "";
  return ToString();
}

}  // namespace uload
