// Logical algebra plans (thesis §1.2.2).
//
// Plans are immutable trees shared via shared_ptr. The operator set covers
// everything the thesis uses: scans (plain and index lookups over R-marked
// XAMs), selections, projections (duplicate-preserving and -eliminating),
// cartesian products, value joins, the structural join family (parent-child
// and ancestor-descendant; inner / semi / outer / nest / nest-outer), union,
// difference, nest/unnest, XML construction, plus the two rewriting-support
// operators: parent-ID derivation for navigational identifiers (§5.2) and
// compensating navigation inside stored subtrees.
#ifndef ULOAD_ALGEBRA_LOGICAL_PLAN_H_
#define ULOAD_ALGEBRA_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/xml_template.h"
#include "xml/ids.h"

namespace uload {

enum class PlanOp : uint8_t {
  kScan,            // named stored relation / view
  kIndexScan,       // scan of an R-marked view given equality bindings
  kSelect,
  kProject,
  kProduct,
  kValueJoin,       // θ-join on atomic attributes
  kStructuralJoin,  // ≺ or ≺≺ join on identifier attributes
  kUnion,
  kDifference,
  kNest,            // pack all tuples into one tuple with one collection
  kUnnest,
  kXmlConstruct,
  kDeriveParent,    // Dewey-only: append the ancestor id at a given depth
  kNavigate,        // evaluate path steps from stored ids into the document
  kPrefixNames,     // rename every attribute (at all levels) with a prefix
  kRetype,          // re-tag the stream with a structurally identical schema
  kSortOp,          // Sort_φ enforcer: order by top-level atomic attributes
  kUnit,            // the unit relation: empty schema, one empty tuple
};

enum class JoinVariant : uint8_t {
  kInner = 0,  // j
  kSemi,       // s
  kLeftOuter,  // o
  kNestJoin,   // nj
  kNestOuter,  // no
};

enum class Axis : uint8_t { kChild = 0, kDescendant };

const char* JoinVariantName(JoinVariant v);
const char* AxisName(Axis a);

// One navigation step for kNavigate.
struct NavStep {
  Axis axis = Axis::kChild;
  // Element tag / "@attr" / "#text"; empty = any element ('*').
  std::string label;
};

// Which columns kNavigate emits for the reached node.
struct NavEmit {
  bool id = false;
  bool tag = false;
  bool val = false;
  bool cont = false;
  // Representation of emitted identifiers (kParental -> Dewey paths).
  IdKind id_kind = IdKind::kStructural;
  // Output attribute name prefix; emitted columns are <prefix>_ID etc.
  std::string prefix;
};

class LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;

class LogicalPlan {
 public:
  // --- Factories -----------------------------------------------------------
  static PlanPtr Scan(std::string relation);
  static PlanPtr IndexScan(
      std::string relation,
      std::vector<std::pair<std::string, AtomicValue>> bindings);
  static PlanPtr Select(PlanPtr input, PredicatePtr pred);
  static PlanPtr Project(PlanPtr input, std::vector<std::string> attrs,
                         bool dedup = false);
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr ValueJoin(PlanPtr left, PlanPtr right, std::string left_attr,
                           Comparator cmp, std::string right_attr,
                           JoinVariant variant = JoinVariant::kInner,
                           std::string nest_as = "");
  static PlanPtr StructuralJoin(PlanPtr left, PlanPtr right,
                                std::string left_attr, Axis axis,
                                std::string right_attr, JoinVariant variant,
                                std::string nest_as = "");
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Nest(PlanPtr input, std::string as);
  static PlanPtr Unnest(PlanPtr input, std::string attr);
  static PlanPtr XmlConstruct(PlanPtr input, XmlTemplate templ);
  static PlanPtr DeriveParent(PlanPtr input, std::string id_attr,
                              std::string out_attr, uint32_t target_depth);
  static PlanPtr Navigate(PlanPtr input, std::string id_attr,
                          std::vector<NavStep> steps, NavEmit emit,
                          JoinVariant variant = JoinVariant::kInner);
  // Renames every attribute at every nesting level to <prefix><name>; used
  // when combining views so column names stay unique across sources.
  static PlanPtr PrefixNames(PlanPtr input, std::string prefix);
  // Re-tags the stream under `schema`, which must have the same structural
  // shape (atomic/collection pattern) as the input's schema. Metadata-only:
  // the rewriter uses it to align a view plan's columns with the query
  // pattern's attribute names.
  static PlanPtr Retype(PlanPtr input, SchemaPtr schema);
  // Sort_φ enforcer: orders the stream by the given top-level atomic
  // attributes (ascending, in key order). The physical compiler elides it
  // when the input stream can prove the order already holds.
  static PlanPtr SortOp(PlanPtr input, std::vector<std::string> keys);
  // The unit relation: no attributes, exactly one (empty) tuple. Constant
  // queries (no data access) run their template over it.
  static PlanPtr Unit();

  // --- Accessors -----------------------------------------------------------
  PlanOp op() const { return op_; }
  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  const std::string& relation() const { return relation_; }
  const PredicatePtr& predicate() const { return predicate_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  bool dedup() const { return dedup_; }
  const std::string& left_attr() const { return left_attr_; }
  const std::string& right_attr() const { return right_attr_; }
  Comparator comparator() const { return cmp_; }
  Axis axis() const { return axis_; }
  JoinVariant variant() const { return variant_; }
  const std::string& nest_as() const { return nest_as_; }
  const XmlTemplate& xml_template() const { return templ_; }
  const std::vector<std::pair<std::string, AtomicValue>>& bindings() const {
    return bindings_;
  }
  const std::vector<NavStep>& nav_steps() const { return nav_steps_; }
  const NavEmit& nav_emit() const { return nav_emit_; }
  uint32_t target_depth() const { return target_depth_; }
  const SchemaPtr& retype_schema() const { return retype_schema_; }

  // Number of operators in the plan (rewriting prefers minimal plans, §5.3).
  int OperatorCount() const;

  // Names of base relations scanned anywhere in the plan.
  std::vector<std::string> ScannedRelations() const;

  // Multi-line indented rendering.
  std::string ToString() const;

 private:
  void Render(int indent, std::string* out) const;

  PlanOp op_ = PlanOp::kScan;
  PlanPtr left_;
  PlanPtr right_;
  std::string relation_;
  PredicatePtr predicate_;
  std::vector<std::string> attrs_;
  bool dedup_ = false;
  std::string left_attr_;
  std::string right_attr_;
  Comparator cmp_ = Comparator::kEq;
  Axis axis_ = Axis::kChild;
  JoinVariant variant_ = JoinVariant::kInner;
  std::string nest_as_;
  XmlTemplate templ_;
  std::vector<std::pair<std::string, AtomicValue>> bindings_;
  std::vector<NavStep> nav_steps_;
  NavEmit nav_emit_;
  uint32_t target_depth_ = 0;
  SchemaPtr retype_schema_;
};

}  // namespace uload

#endif  // ULOAD_ALGEBRA_LOGICAL_PLAN_H_
