#include "algebra/xml_template.h"

#include "common/string_util.h"

namespace uload {
namespace {

// Root-tuple context for absolute value references.
struct RootCtx {
  const Schema* schema;
  const Tuple* tuple;
};

Status Instantiate(const TemplateNode& node, const Schema& schema,
                   const Tuple& tuple, const RootCtx& root, std::string* out);

Status InstantiateChildren(const std::vector<TemplateNode>& children,
                           const Schema& schema, const Tuple& tuple,
                           const RootCtx& root, std::string* out) {
  for (const TemplateNode& c : children) {
    ULOAD_RETURN_NOT_OK(Instantiate(c, schema, tuple, root, out));
  }
  return Status::Ok();
}

Status Instantiate(const TemplateNode& node, const Schema& schema,
                   const Tuple& tuple, const RootCtx& root,
                   std::string* out) {
  switch (node.kind) {
    case TemplateNode::Kind::kText:
      *out += XmlEscape(node.text);
      return Status::Ok();
    case TemplateNode::Kind::kValueRef: {
      const Schema& s = node.absolute ? *root.schema : schema;
      const Tuple& t = node.absolute ? *root.tuple : tuple;
      ULOAD_ASSIGN_OR_RETURN(AttrPath path, ResolveAttrPath(s, node.attr));
      std::vector<AtomicValue> atoms;
      CollectAtomsAt(t, s, path, 0, &atoms);
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (atoms[i].is_null()) continue;
        if (node.raw) {
          *out += atoms[i].ToDisplay();  // already serialized markup
        } else {
          *out += XmlEscape(atoms[i].ToDisplay());
        }
      }
      return Status::Ok();
    }
    case TemplateNode::Kind::kElement:
    case TemplateNode::Kind::kGroup:
      break;
  }
  bool emit_tags = node.kind == TemplateNode::Kind::kElement;
  if (!node.iterate.empty()) {
    ULOAD_ASSIGN_OR_RETURN(AttrPath path,
                           ResolveAttrPath(schema, node.iterate));
    const Attribute& attr = AttrAt(schema, path);
    if (!attr.is_collection) {
      return Status::TypeError("template iterates over atomic attribute '" +
                               node.iterate + "'");
    }
    if (path.size() != 1) {
      return Status::NotImplemented(
          "template iteration path must be a top-level attribute: " +
          node.iterate);
    }
    const Field& field = tuple.fields[path[0]];
    if (!field.is_collection()) {
      return Status::TypeError("tuple field for '" + node.iterate +
                               "' is not a collection");
    }
    for (const Tuple& sub : field.collection()) {
      if (emit_tags) {
        *out += '<';
        *out += node.tag;
        *out += '>';
      }
      ULOAD_RETURN_NOT_OK(
          InstantiateChildren(node.children, *attr.nested, sub, root, out));
      if (emit_tags) {
        *out += "</";
        *out += node.tag;
        *out += '>';
      }
    }
    return Status::Ok();
  }
  if (emit_tags) {
    *out += '<';
    *out += node.tag;
    *out += '>';
  }
  ULOAD_RETURN_NOT_OK(
      InstantiateChildren(node.children, schema, tuple, root, out));
  if (emit_tags) {
    *out += "</";
    *out += node.tag;
    *out += '>';
  }
  return Status::Ok();
}

}  // namespace

std::string TemplateNode::ToString() const {
  switch (kind) {
    case Kind::kText:
      return text;
    case Kind::kValueRef:
      return "{" + attr + "}";
    case Kind::kElement: {
      std::string out = "<" + tag;
      if (!iterate.empty()) out += " for=\"" + iterate + "\"";
      out += ">";
      for (const TemplateNode& c : children) out += c.ToString();
      out += "</" + tag + ">";
      return out;
    }
    case Kind::kGroup: {
      std::string out = "{for " + iterate + ":";
      for (const TemplateNode& c : children) out += c.ToString();
      out += "}";
      return out;
    }
  }
  return "?";
}

std::string XmlTemplate::ToString() const {
  std::string out;
  for (const TemplateNode& r : roots) out += r.ToString();
  return out;
}

Status ApplyTemplateToTuple(const XmlTemplate& templ, const Schema& schema,
                            const Tuple& tuple, std::string* out) {
  RootCtx root{&schema, &tuple};
  return InstantiateChildren(templ.roots, schema, tuple, root, out);
}

Result<std::string> ApplyTemplate(const XmlTemplate& templ,
                                  const NestedRelation& input) {
  std::string out;
  for (const Tuple& t : input.tuples()) {
    ULOAD_RETURN_NOT_OK(
        ApplyTemplateToTuple(templ, input.schema(), t, &out));
  }
  return out;
}

}  // namespace uload
