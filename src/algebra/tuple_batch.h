// TupleBatch: the unit of data flow in the batch-at-a-time physical engine.
//
// A batch is a schema-tagged, fixed-target-capacity run of tuples. Operators
// produce up to `capacity()` tuples per NextBatch() call so the per-call
// costs (virtual dispatch, timing, bookkeeping) amortize over many tuples.
// The capacity is a fill target, not a hard limit: Add() never fails, so an
// operator that maps an input batch 1:1 cannot overflow its output batch
// even if the two were configured with different sizes.
#ifndef ULOAD_ALGEBRA_TUPLE_BATCH_H_
#define ULOAD_ALGEBRA_TUPLE_BATCH_H_

#include <cstddef>

#include "algebra/schema.h"
#include "algebra/tuple.h"

namespace uload {

class TupleBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  TupleBatch() : TupleBatch(Schema::Make({})) {}
  explicit TupleBatch(SchemaPtr schema, size_t capacity = kDefaultCapacity);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }
  // Re-tags the batch (metadata-only operators: rename, union).
  void set_schema(SchemaPtr schema) { schema_ = std::move(schema); }

  size_t capacity() const { return capacity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  // True once the fill target is reached; producers should hand the batch
  // downstream at this point.
  bool full() const { return tuples_.size() >= capacity_; }

  void Add(Tuple t) { tuples_.push_back(std::move(t)); }

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  Tuple& tuple(size_t i) { return tuples_[i]; }
  const TupleList& tuples() const { return tuples_; }
  TupleList& tuples() { return tuples_; }

  // Drops all tuples, keeping schema and capacity.
  void Clear() { tuples_.clear(); }

  // Rough heap footprint (see ApproxTupleBytes) for memory accounting.
  int64_t ApproxBytes() const { return ApproxTupleListBytes(tuples_); }

 private:
  SchemaPtr schema_;
  size_t capacity_;
  TupleList tuples_;
};

}  // namespace uload

#endif  // ULOAD_ALGEBRA_TUPLE_BATCH_H_
