#include "algebra/tuple.h"

namespace uload {

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.fields.size(), b.fields.size());
  for (size_t i = 0; i < n; ++i) {
    const Field& fa = a.fields[i];
    const Field& fb = b.fields[i];
    if (fa.is_collection() != fb.is_collection()) {
      return fa.is_collection() ? 1 : -1;
    }
    if (fa.is_collection()) {
      const TupleList& ca = fa.collection();
      const TupleList& cb = fb.collection();
      size_t m = std::min(ca.size(), cb.size());
      for (size_t j = 0; j < m; ++j) {
        int c = CompareTuples(ca[j], cb[j]);
        if (c != 0) return c;
      }
      if (ca.size() != cb.size()) return ca.size() < cb.size() ? -1 : 1;
    } else {
      int c = AtomicValue::Compare(fa.atom(), fb.atom());
      if (c != 0) return c;
      // Compare() treats values of different kinds with numeric coercion;
      // distinguish null-vs-null only.
      if (fa.atom().is_null() != fb.atom().is_null()) {
        return fa.atom().is_null() ? -1 : 1;
      }
    }
  }
  if (a.fields.size() != b.fields.size()) {
    return a.fields.size() < b.fields.size() ? -1 : 1;
  }
  return 0;
}

bool TuplesEqual(const Tuple& a, const Tuple& b) {
  return CompareTuples(a, b) == 0;
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out = a;
  out.fields.insert(out.fields.end(), b.fields.begin(), b.fields.end());
  return out;
}

Tuple NullTuple(const Schema& schema) {
  Tuple t;
  t.fields.reserve(schema.size());
  for (int i = 0; i < schema.size(); ++i) {
    if (schema.attr(i).is_collection) {
      t.fields.emplace_back(TupleList{});
    } else {
      t.fields.emplace_back(AtomicValue::Null());
    }
  }
  return t;
}

const AtomicValue& AtomAt(const Tuple& t, const AttrPath& path) {
  const Tuple* cur = &t;
  for (size_t i = 0;; ++i) {
    const Field& f = cur->fields[path[i]];
    if (i + 1 == path.size()) return f.atom();
    // Paths used with AtomAt never cross collections; a singleton collection
    // would be a logic error upstream.
    cur = &f.collection().front();
  }
}

void CollectAtomsAt(const Tuple& t, const Schema& schema, const AttrPath& path,
                    size_t depth, std::vector<AtomicValue>* out) {
  const Field& f = t.fields[path[depth]];
  if (depth + 1 == path.size()) {
    if (!f.is_collection()) out->push_back(f.atom());
    return;
  }
  const Attribute& attr = schema.attr(path[depth]);
  if (!f.is_collection()) return;
  for (const Tuple& sub : f.collection()) {
    CollectAtomsAt(sub, *attr.nested, path, depth + 1, out);
  }
}

int64_t ApproxTupleBytes(const Tuple& t) {
  int64_t n = static_cast<int64_t>(sizeof(Tuple));
  for (const Field& f : t.fields) {
    n += static_cast<int64_t>(sizeof(Field));
    if (f.is_collection()) {
      n += ApproxTupleListBytes(f.collection());
    } else {
      const AtomicValue& v = f.atom();
      if (v.is_string()) {
        n += static_cast<int64_t>(v.as_string().capacity());
      } else if (v.kind() == AtomicValue::Kind::kDewey) {
        n += static_cast<int64_t>(v.dewey().capacity() * sizeof(uint32_t));
      }
    }
  }
  return n;
}

int64_t ApproxTupleListBytes(const TupleList& ts) {
  int64_t n = 0;
  for (const Tuple& t : ts) n += ApproxTupleBytes(t);
  return n;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.fields.size(); ++i) {
    if (i > 0) out += ", ";
    const Field& f = t.fields[i];
    if (f.is_collection()) {
      out += "[";
      for (size_t j = 0; j < f.collection().size(); ++j) {
        if (j > 0) out += " ";
        out += TupleToString(f.collection()[j]);
      }
      out += "]";
    } else {
      out += f.atom().ToString();
    }
  }
  out += ")";
  return out;
}

}  // namespace uload
