// Tagging templates for the xml construction operator (thesis §1.2.2).
//
// A template describes how each (possibly nested) input tuple is serialized
// into new XML elements: literal element tags wrap value references into the
// tuple; an element node may iterate over a nested collection, instantiating
// itself once per nested tuple.
#ifndef ULOAD_ALGEBRA_XML_TEMPLATE_H_
#define ULOAD_ALGEBRA_XML_TEMPLATE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/relation.h"
#include "common/status.h"

namespace uload {

struct TemplateNode {
  enum class Kind { kElement, kValueRef, kText, kGroup };

  Kind kind = Kind::kElement;
  std::string tag;   // kElement
  std::string text;  // kText literal content
  // kValueRef: dotted attribute path relative to the current tuple scope.
  std::string attr;
  // kValueRef: emit raw markup (Cont attributes) instead of escaped text.
  bool raw = false;
  // kValueRef: resolve against the top-level tuple, not the innermost
  // iterate scope (outer-variable references inside nested blocks, §3.3.3).
  bool absolute = false;
  // kElement/kGroup: when non-empty, a collection attribute (relative to the
  // current scope); the node is instantiated once per nested tuple, with
  // the scope switched to that tuple. kGroup emits no tags of its own.
  std::string iterate;
  std::vector<TemplateNode> children;

  static TemplateNode Element(std::string tag,
                              std::vector<TemplateNode> children,
                              std::string iterate = "") {
    TemplateNode n;
    n.kind = Kind::kElement;
    n.tag = std::move(tag);
    n.children = std::move(children);
    n.iterate = std::move(iterate);
    return n;
  }
  static TemplateNode ValueRef(std::string attr, bool raw = false,
                               bool absolute = false) {
    TemplateNode n;
    n.kind = Kind::kValueRef;
    n.attr = std::move(attr);
    n.raw = raw;
    n.absolute = absolute;
    return n;
  }
  static TemplateNode Group(std::vector<TemplateNode> children,
                            std::string iterate) {
    TemplateNode n;
    n.kind = Kind::kGroup;
    n.children = std::move(children);
    n.iterate = std::move(iterate);
    return n;
  }
  static TemplateNode Text(std::string text) {
    TemplateNode n;
    n.kind = Kind::kText;
    n.text = std::move(text);
    return n;
  }

  std::string ToString() const;
};

// A template is a forest applied per top-level tuple.
struct XmlTemplate {
  std::vector<TemplateNode> roots;

  std::string ToString() const;
};

// Instantiates `templ` on every tuple of `input`, concatenating the results
// into one serialized XML string.
Result<std::string> ApplyTemplate(const XmlTemplate& templ,
                                  const NestedRelation& input);

// Streaming form: instantiates `templ` on a single tuple of `schema`,
// appending the serialization to `*out`. A batch-at-a-time consumer calls
// this per tuple as batches arrive, so the full result relation is never
// materialized (exec/physical.h, engine/engine.h).
Status ApplyTemplateToTuple(const XmlTemplate& templ, const Schema& schema,
                            const Tuple& tuple, std::string* out);

}  // namespace uload

#endif  // ULOAD_ALGEBRA_XML_TEMPLATE_H_
