#include "algebra/logical_plan.h"

namespace uload {

const char* JoinVariantName(JoinVariant v) {
  switch (v) {
    case JoinVariant::kInner:
      return "join";
    case JoinVariant::kSemi:
      return "semijoin";
    case JoinVariant::kLeftOuter:
      return "outerjoin";
    case JoinVariant::kNestJoin:
      return "nest-join";
    case JoinVariant::kNestOuter:
      return "nest-outerjoin";
  }
  return "?";
}

const char* AxisName(Axis a) {
  return a == Axis::kChild ? "child" : "descendant";
}

#define ULOAD_PLAN_FACTORY_PROLOG(opname)   \
  auto p = std::make_shared<LogicalPlan>(); \
  LogicalPlan* m = p.get();                 \
  m->op_ = PlanOp::opname;

PlanPtr LogicalPlan::Scan(std::string relation) {
  ULOAD_PLAN_FACTORY_PROLOG(kScan)
  m->relation_ = std::move(relation);
  return p;
}

PlanPtr LogicalPlan::IndexScan(
    std::string relation,
    std::vector<std::pair<std::string, AtomicValue>> bindings) {
  ULOAD_PLAN_FACTORY_PROLOG(kIndexScan)
  m->relation_ = std::move(relation);
  m->bindings_ = std::move(bindings);
  return p;
}

PlanPtr LogicalPlan::Select(PlanPtr input, PredicatePtr pred) {
  ULOAD_PLAN_FACTORY_PROLOG(kSelect)
  m->left_ = std::move(input);
  m->predicate_ = std::move(pred);
  return p;
}

PlanPtr LogicalPlan::Project(PlanPtr input, std::vector<std::string> attrs,
                             bool dedup) {
  ULOAD_PLAN_FACTORY_PROLOG(kProject)
  m->left_ = std::move(input);
  m->attrs_ = std::move(attrs);
  m->dedup_ = dedup;
  return p;
}

PlanPtr LogicalPlan::Product(PlanPtr left, PlanPtr right) {
  ULOAD_PLAN_FACTORY_PROLOG(kProduct)
  m->left_ = std::move(left);
  m->right_ = std::move(right);
  return p;
}

PlanPtr LogicalPlan::ValueJoin(PlanPtr left, PlanPtr right,
                               std::string left_attr, Comparator cmp,
                               std::string right_attr, JoinVariant variant,
                               std::string nest_as) {
  ULOAD_PLAN_FACTORY_PROLOG(kValueJoin)
  m->left_ = std::move(left);
  m->right_ = std::move(right);
  m->left_attr_ = std::move(left_attr);
  m->cmp_ = cmp;
  m->right_attr_ = std::move(right_attr);
  m->variant_ = variant;
  m->nest_as_ = std::move(nest_as);
  return p;
}

PlanPtr LogicalPlan::StructuralJoin(PlanPtr left, PlanPtr right,
                                    std::string left_attr, Axis axis,
                                    std::string right_attr,
                                    JoinVariant variant, std::string nest_as) {
  ULOAD_PLAN_FACTORY_PROLOG(kStructuralJoin)
  m->left_ = std::move(left);
  m->right_ = std::move(right);
  m->left_attr_ = std::move(left_attr);
  m->axis_ = axis;
  m->cmp_ =
      axis == Axis::kChild ? Comparator::kParent : Comparator::kAncestor;
  m->right_attr_ = std::move(right_attr);
  m->variant_ = variant;
  m->nest_as_ = std::move(nest_as);
  return p;
}

PlanPtr LogicalPlan::Union(PlanPtr left, PlanPtr right) {
  ULOAD_PLAN_FACTORY_PROLOG(kUnion)
  m->left_ = std::move(left);
  m->right_ = std::move(right);
  return p;
}

PlanPtr LogicalPlan::Difference(PlanPtr left, PlanPtr right) {
  ULOAD_PLAN_FACTORY_PROLOG(kDifference)
  m->left_ = std::move(left);
  m->right_ = std::move(right);
  return p;
}

PlanPtr LogicalPlan::Nest(PlanPtr input, std::string as) {
  ULOAD_PLAN_FACTORY_PROLOG(kNest)
  m->left_ = std::move(input);
  m->nest_as_ = std::move(as);
  return p;
}

PlanPtr LogicalPlan::Unnest(PlanPtr input, std::string attr) {
  ULOAD_PLAN_FACTORY_PROLOG(kUnnest)
  m->left_ = std::move(input);
  m->attrs_ = {std::move(attr)};
  return p;
}

PlanPtr LogicalPlan::XmlConstruct(PlanPtr input, XmlTemplate templ) {
  ULOAD_PLAN_FACTORY_PROLOG(kXmlConstruct)
  m->left_ = std::move(input);
  m->templ_ = std::move(templ);
  return p;
}

PlanPtr LogicalPlan::DeriveParent(PlanPtr input, std::string id_attr,
                                  std::string out_attr,
                                  uint32_t target_depth) {
  ULOAD_PLAN_FACTORY_PROLOG(kDeriveParent)
  m->left_ = std::move(input);
  m->left_attr_ = std::move(id_attr);
  m->nest_as_ = std::move(out_attr);
  m->target_depth_ = target_depth;
  return p;
}

PlanPtr LogicalPlan::Navigate(PlanPtr input, std::string id_attr,
                              std::vector<NavStep> steps, NavEmit emit,
                              JoinVariant variant) {
  ULOAD_PLAN_FACTORY_PROLOG(kNavigate)
  m->left_ = std::move(input);
  m->left_attr_ = std::move(id_attr);
  m->nav_steps_ = std::move(steps);
  m->nav_emit_ = std::move(emit);
  m->variant_ = variant;
  return p;
}

PlanPtr LogicalPlan::PrefixNames(PlanPtr input, std::string prefix) {
  ULOAD_PLAN_FACTORY_PROLOG(kPrefixNames)
  m->left_ = std::move(input);
  m->nest_as_ = std::move(prefix);
  return p;
}

PlanPtr LogicalPlan::Retype(PlanPtr input, SchemaPtr schema) {
  ULOAD_PLAN_FACTORY_PROLOG(kRetype)
  m->left_ = std::move(input);
  m->retype_schema_ = std::move(schema);
  return p;
}

PlanPtr LogicalPlan::SortOp(PlanPtr input, std::vector<std::string> keys) {
  ULOAD_PLAN_FACTORY_PROLOG(kSortOp)
  m->left_ = std::move(input);
  m->attrs_ = std::move(keys);
  return p;
}

PlanPtr LogicalPlan::Unit() {
  ULOAD_PLAN_FACTORY_PROLOG(kUnit)
  return p;
}

#undef ULOAD_PLAN_FACTORY_PROLOG

int LogicalPlan::OperatorCount() const {
  int n = 1;
  if (left_) n += left_->OperatorCount();
  if (right_) n += right_->OperatorCount();
  return n;
}

std::vector<std::string> LogicalPlan::ScannedRelations() const {
  std::vector<std::string> out;
  if (op_ == PlanOp::kScan || op_ == PlanOp::kIndexScan) {
    out.push_back(relation_);
  }
  for (const PlanPtr& child : {left_, right_}) {
    if (!child) continue;
    for (std::string& r : child->ScannedRelations()) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

void LogicalPlan::Render(int indent, std::string* out) const {
  out->append(indent * 2, ' ');
  switch (op_) {
    case PlanOp::kScan:
      *out += "Scan(" + relation_ + ")\n";
      return;
    case PlanOp::kIndexScan: {
      *out += "IndexScan(" + relation_;
      for (const auto& [attr, val] : bindings_) {
        *out += ", " + attr + "=" + val.ToString();
      }
      *out += ")\n";
      return;
    }
    case PlanOp::kSelect:
      *out += "Select[" + predicate_->ToString() + "]\n";
      break;
    case PlanOp::kProject: {
      *out += dedup_ ? "Project0[" : "Project[";
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (i) *out += ", ";
        *out += attrs_[i];
      }
      *out += "]\n";
      break;
    }
    case PlanOp::kProduct:
      *out += "Product\n";
      break;
    case PlanOp::kValueJoin:
      *out += std::string("ValueJoin:") + JoinVariantName(variant_) + "[" +
              left_attr_ + " " + ComparatorName(cmp_) + " " + right_attr_ +
              "]\n";
      break;
    case PlanOp::kStructuralJoin:
      *out += std::string("StructJoin:") + JoinVariantName(variant_) + ":" +
              AxisName(axis_) + "[" + left_attr_ + ", " + right_attr_ + "]\n";
      break;
    case PlanOp::kUnion:
      *out += "Union\n";
      break;
    case PlanOp::kDifference:
      *out += "Difference\n";
      break;
    case PlanOp::kNest:
      *out += "Nest[" + nest_as_ + "]\n";
      break;
    case PlanOp::kUnnest:
      *out += "Unnest[" + attrs_[0] + "]\n";
      break;
    case PlanOp::kXmlConstruct:
      *out += "Xml[" + templ_.ToString() + "]\n";
      break;
    case PlanOp::kDeriveParent:
      *out += "DeriveParent[" + left_attr_ + " -> " + nest_as_ + " @depth " +
              std::to_string(target_depth_) + "]\n";
      break;
    case PlanOp::kPrefixNames:
      *out += "PrefixNames[" + nest_as_ + "]\n";
      break;
    case PlanOp::kNavigate: {
      *out += "Navigate[" + left_attr_;
      for (const NavStep& s : nav_steps_) {
        *out += s.axis == Axis::kChild ? "/" : "//";
        *out += s.label.empty() ? "*" : s.label;
      }
      *out += " as " + nav_emit_.prefix + "]\n";
      break;
    }
    case PlanOp::kRetype:
      *out += "Retype{" + retype_schema_->ToString() + "}\n";
      break;
    case PlanOp::kSortOp: {
      *out += "Sort[";
      for (size_t i = 0; i < attrs_.size(); ++i) {
        if (i) *out += ", ";
        *out += attrs_[i];
      }
      *out += "]\n";
      break;
    }
    case PlanOp::kUnit:
      *out += "Unit\n";
      return;
  }
  if (left_) left_->Render(indent + 1, out);
  if (right_) right_->Render(indent + 1, out);
}

std::string LogicalPlan::ToString() const {
  std::string out;
  Render(0, &out);
  return out;
}

}  // namespace uload
