#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace uload {

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseNumber(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+.
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

bool ContainsWord(std::string_view hay, std::string_view needle) {
  if (needle.empty()) return false;
  size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !IsWordChar(hay[pos - 1]);
    size_t after = pos + needle.size();
    bool right_ok = after == hay.size() || !IsWordChar(hay[after]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace uload
