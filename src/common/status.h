// Status and Result<T>: lightweight error-handling primitives in the style of
// Apache Arrow / RocksDB. Public APIs that can fail return Status or
// Result<T> instead of throwing; exceptions never cross library boundaries.
#ifndef ULOAD_COMMON_STATUS_H_
#define ULOAD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace uload {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kNotImplemented,
  kTypeError,
  kInternal,
  kCancelled,          // query cancelled cooperatively (QueryControl)
  kDeadlineExceeded,   // per-query deadline/timeout elapsed
  kResourceExhausted,  // memory budget exceeded (MemoryTracker)
};

// Value-type status. Ok() carries no allocation; errors carry a message.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> is either a T or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::Ok();
};

// Propagates a non-OK Status out of the current function.
#define ULOAD_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::uload::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

// Assigns a Result's value to `lhs` or propagates its error Status.
#define ULOAD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define ULOAD_ASSIGN_OR_RETURN(lhs, rexpr) \
  ULOAD_ASSIGN_OR_RETURN_IMPL(             \
      ULOAD_CONCAT_(_uload_result_, __COUNTER__), lhs, rexpr)

#define ULOAD_CONCAT_INNER_(a, b) a##b
#define ULOAD_CONCAT_(a, b) ULOAD_CONCAT_INNER_(a, b)

}  // namespace uload

#endif  // ULOAD_COMMON_STATUS_H_
