// Small string helpers shared across modules.
#ifndef ULOAD_COMMON_STRING_UTIL_H_
#define ULOAD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace uload {

// Splits `s` on `sep`, omitting empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// True if `s` parses completely as a (possibly signed, possibly fractional)
// decimal number; stores it in *out.
bool ParseNumber(std::string_view s, double* out);

// Escapes '&', '<', '>', '"' for embedding in XML text/attribute content.
std::string XmlEscape(std::string_view s);

// True if `hay` contains `needle` as a whitespace/punctuation-delimited word
// (case-sensitive). Used by the full-text `contains` operator.
bool ContainsWord(std::string_view hay, std::string_view needle);

// Lower-cases ASCII letters.
std::string AsciiLower(std::string_view s);

}  // namespace uload

#endif  // ULOAD_COMMON_STRING_UTIL_H_
