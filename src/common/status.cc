#include "common/status.h"

namespace uload {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace uload
