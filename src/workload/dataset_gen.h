// Generators reproducing the structural profile of the other Fig. 4.13
// datasets (Shakespeare plays, NASA astronomical records, SwissProt
// entries). Only the path structure matters: the summaries come out in the
// same relative size order as the thesis reports (Shakespeare < Nasa <
// SwissProt < XMark).
#ifndef ULOAD_WORKLOAD_DATASET_GEN_H_
#define ULOAD_WORKLOAD_DATASET_GEN_H_

#include <cstdint>

#include "xml/document.h"

namespace uload {

Document GenerateShakespeareLike(int plays = 4, uint32_t seed = 3);
Document GenerateNasaLike(int datasets = 50, uint32_t seed = 5);
Document GenerateSwissProtLike(int entries = 120, uint32_t seed = 11);

}  // namespace uload

#endif  // ULOAD_WORKLOAD_DATASET_GEN_H_
