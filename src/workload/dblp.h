// DBLP-like bibliographic document generator: flat records (article,
// inproceedings, book, phdthesis, ...) with author+/title/year and a few
// optional fields — the small, regular summary shape of Fig. 4.13's DBLP
// rows (the thesis's DBLP'02/'05 summaries have 41-47 nodes).
#ifndef ULOAD_WORKLOAD_DBLP_H_
#define ULOAD_WORKLOAD_DBLP_H_

#include <cstdint>

#include "xml/document.h"

namespace uload {

struct DblpOptions {
  int records = 500;
  uint32_t seed = 7;
};

Document GenerateDblp(const DblpOptions& opts = {});

}  // namespace uload

#endif  // ULOAD_WORKLOAD_DBLP_H_
