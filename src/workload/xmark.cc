#include "workload/xmark.h"

#include <string>
#include <vector>

namespace uload {
namespace {

// Deterministic xorshift PRNG (benchmarks must be reproducible).
class Rng {
 public:
  explicit Rng(uint32_t seed) : state_(seed == 0 ? 0x9e3779b9u : seed) {}
  uint32_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  int Uniform(int n) { return static_cast<int>(Next() % n); }
  bool Chance(int percent) { return Uniform(100) < percent; }

 private:
  uint32_t state_;
};

const char* kWords[] = {"quick", "brown", "vintage", "rare",   "mint",
                        "fast",  "red",   "large",   "gold",   "silver",
                        "old",   "new",   "antique", "signed", "boxed"};
const char* kNames[] = {"Smith", "Jones", "Garcia", "Mueller", "Tanaka",
                        "Lopez", "Kumar", "Chen",   "Dubois",  "Rossi"};
const char* kCities[] = {"Paris", "Tokyo", "Berlin", "Lima", "Oslo"};

std::string Word(Rng* rng) { return kWords[rng->Uniform(15)]; }

class Generator {
 public:
  explicit Generator(const XMarkOptions& opts) : opts_(opts), rng_(opts.seed) {}

  Document Run() {
    NodeIndex site = Elem(doc_.document_node(), "site");
    Regions(site);
    People(site);
    OpenAuctions(site);
    ClosedAuctions(site);
    Categories(site);
    doc_.Finalize();
    return std::move(doc_);
  }

 private:
  NodeIndex Elem(NodeIndex parent, const std::string& tag) {
    return doc_.AddNode(NodeKind::kElement, tag, "", parent);
  }
  void Attr(NodeIndex parent, const std::string& name,
            const std::string& value) {
    doc_.AddNode(NodeKind::kAttribute, name, value, parent);
  }
  void Text(NodeIndex parent, const std::string& text) {
    doc_.AddNode(NodeKind::kText, "#text", text, parent);
  }
  void Leaf(NodeIndex parent, const std::string& tag,
            const std::string& text) {
    Text(Elem(parent, tag), text);
  }

  // Marked-up text: words interleaved with bold/keyword/emph wrappers.
  void MarkedText(NodeIndex parent, int words) {
    std::string plain;
    for (int i = 0; i < words; ++i) {
      int c = rng_.Uniform(10);
      if (c < 6) {
        plain += Word(&rng_) + " ";
        continue;
      }
      if (!plain.empty()) {
        Text(parent, plain);
        plain.clear();
      }
      const char* tag = c == 6 ? "bold" : (c == 7 ? "keyword" : "emph");
      Leaf(parent, tag, Word(&rng_));
    }
    if (!plain.empty()) Text(parent, plain);
  }

  void Parlist(NodeIndex parent, int depth) {
    NodeIndex parlist = Elem(parent, "parlist");
    int items = 1 + rng_.Uniform(3);
    for (int i = 0; i < items; ++i) {
      NodeIndex listitem = Elem(parlist, "listitem");
      if (depth > 1 && rng_.Chance(30)) {
        Parlist(listitem, depth - 1);
      } else {
        NodeIndex text = Elem(listitem, "text");
        MarkedText(text, 4 + rng_.Uniform(8));
      }
    }
  }

  void Description(NodeIndex parent) {
    NodeIndex description = Elem(parent, "description");
    if (rng_.Chance(60)) {
      Parlist(description, opts_.max_parlist_depth);
    } else {
      NodeIndex text = Elem(description, "text");
      MarkedText(text, 6 + rng_.Uniform(10));
    }
  }

  void Item(NodeIndex region, int id) {
    NodeIndex item = Elem(region, "item");
    Attr(item, "id", "item" + std::to_string(id));
    if (rng_.Chance(20)) Attr(item, "featured", "yes");
    Leaf(item, "location", kCities[rng_.Uniform(5)]);
    Leaf(item, "quantity", std::to_string(1 + rng_.Uniform(5)));
    Leaf(item, "name", Word(&rng_) + " " + Word(&rng_));
    NodeIndex payment = Elem(item, "payment");
    Text(payment, "Cash");
    Description(item);
    Leaf(item, "shipping", "Will ship internationally");
    int incats = 1 + rng_.Uniform(2);
    for (int i = 0; i < incats; ++i) {
      NodeIndex incategory = Elem(item, "incategory");
      Attr(incategory, "category",
           "category" + std::to_string(rng_.Uniform(opts_.categories)));
    }
    NodeIndex mailbox = Elem(item, "mailbox");
    int mails = rng_.Uniform(3);
    for (int i = 0; i < mails; ++i) {
      NodeIndex mail = Elem(mailbox, "mail");
      Leaf(mail, "from", std::string(kNames[rng_.Uniform(10)]));
      Leaf(mail, "to", std::string(kNames[rng_.Uniform(10)]));
      Leaf(mail, "date", "0" + std::to_string(1 + rng_.Uniform(9)) +
                             "/2004");
      NodeIndex text = Elem(mail, "text");
      MarkedText(text, 5 + rng_.Uniform(6));
    }
  }

  void Regions(NodeIndex site) {
    NodeIndex regions = Elem(site, "regions");
    const char* names[] = {"africa",  "asia",    "australia",
                           "europe",  "namerica", "samerica"};
    int id = 0;
    for (const char* name : names) {
      NodeIndex region = Elem(regions, name);
      for (int i = 0; i < opts_.items; ++i) Item(region, id++);
    }
  }

  void People(NodeIndex site) {
    NodeIndex people = Elem(site, "people");
    for (int i = 0; i < opts_.people; ++i) {
      NodeIndex person = Elem(people, "person");
      Attr(person, "id", "person" + std::to_string(i));
      Leaf(person, "name", std::string(kNames[rng_.Uniform(10)]));
      Leaf(person, "emailaddress",
           "mailto:u" + std::to_string(i) + "@example.com");
      if (rng_.Chance(50)) Leaf(person, "phone", "+1 555 0000");
      if (rng_.Chance(50)) {
        NodeIndex address = Elem(person, "address");
        Leaf(address, "street", std::to_string(rng_.Uniform(99)) + " Main");
        Leaf(address, "city", kCities[rng_.Uniform(5)]);
        Leaf(address, "country", "United States");
        Leaf(address, "zipcode", std::to_string(10000 + rng_.Uniform(899)));
      }
      if (rng_.Chance(30)) Leaf(person, "homepage", "http://example.com");
      if (rng_.Chance(40)) Leaf(person, "creditcard", "1234 5678");
      if (rng_.Chance(70)) {
        NodeIndex profile = Elem(person, "profile");
        Attr(profile, "income",
             std::to_string(20000 + rng_.Uniform(80000)));
        int interests = rng_.Uniform(3);
        for (int k = 0; k < interests; ++k) {
          NodeIndex interest = Elem(profile, "interest");
          Attr(interest, "category",
               "category" + std::to_string(rng_.Uniform(opts_.categories)));
        }
        if (rng_.Chance(40)) Leaf(profile, "education", "Graduate School");
        if (rng_.Chance(50)) Leaf(profile, "gender", "male");
        Leaf(profile, "business", rng_.Chance(50) ? "Yes" : "No");
        if (rng_.Chance(60)) {
          Leaf(profile, "age", std::to_string(18 + rng_.Uniform(50)));
        }
      }
      if (rng_.Chance(40)) {
        NodeIndex watches = Elem(person, "watches");
        int n = 1 + rng_.Uniform(2);
        for (int k = 0; k < n; ++k) {
          NodeIndex watch = Elem(watches, "watch");
          Attr(watch, "open_auction",
               "open_auction" +
                   std::to_string(rng_.Uniform(
                       std::max(1, opts_.open_auctions))));
        }
      }
    }
  }

  void PersonRef(NodeIndex parent, const std::string& tag) {
    NodeIndex ref = Elem(parent, tag);
    Attr(ref, "person",
         "person" + std::to_string(rng_.Uniform(std::max(1, opts_.people))));
  }

  void OpenAuctions(NodeIndex site) {
    NodeIndex auctions = Elem(site, "open_auctions");
    for (int i = 0; i < opts_.open_auctions; ++i) {
      NodeIndex auction = Elem(auctions, "open_auction");
      Attr(auction, "id", "open_auction" + std::to_string(i));
      Leaf(auction, "initial", std::to_string(10 + rng_.Uniform(90)) + "." +
                                   std::to_string(rng_.Uniform(99)));
      int bidders = rng_.Uniform(4);
      for (int k = 0; k < bidders; ++k) {
        NodeIndex bidder = Elem(auction, "bidder");
        Leaf(bidder, "date", "07/07/2004");
        Leaf(bidder, "time", "12:00:00");
        PersonRef(bidder, "personref");
        Leaf(bidder, "increase", std::to_string(1 + rng_.Uniform(20)));
      }
      Leaf(auction, "current", std::to_string(20 + rng_.Uniform(200)));
      if (rng_.Chance(30)) Leaf(auction, "privacy", "Yes");
      NodeIndex itemref = Elem(auction, "itemref");
      Attr(itemref, "item",
           "item" + std::to_string(rng_.Uniform(
                        std::max(1, opts_.items * 6))));
      PersonRef(auction, "seller");
      NodeIndex annotation = Elem(auction, "annotation");
      PersonRef(annotation, "author");
      Description(annotation);
      Leaf(annotation, "happiness", std::to_string(1 + rng_.Uniform(10)));
      Leaf(auction, "quantity", "1");
      Leaf(auction, "type", "Regular");
      NodeIndex interval = Elem(auction, "interval");
      Leaf(interval, "start", "01/01/2004");
      Leaf(interval, "end", "12/31/2004");
    }
  }

  void ClosedAuctions(NodeIndex site) {
    NodeIndex auctions = Elem(site, "closed_auctions");
    for (int i = 0; i < opts_.closed_auctions; ++i) {
      NodeIndex auction = Elem(auctions, "closed_auction");
      PersonRef(auction, "seller");
      PersonRef(auction, "buyer");
      NodeIndex itemref = Elem(auction, "itemref");
      Attr(itemref, "item",
           "item" + std::to_string(rng_.Uniform(
                        std::max(1, opts_.items * 6))));
      Leaf(auction, "price", std::to_string(15 + rng_.Uniform(300)));
      Leaf(auction, "date", "07/07/2004");
      Leaf(auction, "quantity", "1");
      Leaf(auction, "type", "Regular");
      NodeIndex annotation = Elem(auction, "annotation");
      PersonRef(annotation, "author");
      Description(annotation);
      Leaf(annotation, "happiness", std::to_string(1 + rng_.Uniform(10)));
    }
  }

  void Categories(NodeIndex site) {
    NodeIndex categories = Elem(site, "categories");
    for (int i = 0; i < opts_.categories; ++i) {
      NodeIndex category = Elem(categories, "category");
      Attr(category, "id", "category" + std::to_string(i));
      Leaf(category, "name", Word(&rng_));
      Description(category);
    }
    NodeIndex catgraph = Elem(site, "catgraph");
    for (int i = 0; i + 1 < opts_.categories; ++i) {
      NodeIndex edge = Elem(catgraph, "edge");
      Attr(edge, "from", "category" + std::to_string(i));
      Attr(edge, "to", "category" + std::to_string(i + 1));
    }
  }

  const XMarkOptions& opts_;
  Rng rng_;
  Document doc_;
};

}  // namespace

Document GenerateXMark(const XMarkOptions& opts) {
  Generator gen(opts);
  return gen.Run();
}

XMarkOptions XMarkScale(double factor) {
  XMarkOptions opts;
  opts.items = std::max(1, static_cast<int>(40 * factor));
  opts.people = std::max(1, static_cast<int>(60 * factor));
  opts.open_auctions = std::max(1, static_cast<int>(30 * factor));
  opts.closed_auctions = std::max(1, static_cast<int>(20 * factor));
  opts.categories = std::max(2, static_cast<int>(10 * factor));
  return opts;
}

}  // namespace uload
