#include "workload/xmark_queries.h"

#include "xam/xam_parser.h"

namespace uload {
namespace {

NamedXam Q(const char* name, const char* text) {
  auto x = ParseXam(text);
  // Query patterns are fixed strings; a parse failure is a programming
  // error caught by the workload tests.
  return NamedXam{name, x.ok() ? std::move(x).value() : Xam()};
}

}  // namespace

std::vector<NamedXam> XMarkQueryPatterns() {
  std::vector<NamedXam> out;
  // Q1: the name of the person with a given id.
  out.push_back(Q("q01",
                  "xam\n"
                  "node e1 label=people\n"
                  "node e2 label=person\n"
                  "node e3 label=@id val=\"person0\"\n"
                  "node e4 label=name id=s val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / s e3\n"
                  "edge e2 / j e4\n"));
  // Q2: initial increases of all open auctions.
  out.push_back(Q("q02",
                  "xam\n"
                  "node e1 label=open_auction\n"
                  "node e2 label=bidder\n"
                  "node e3 label=increase id=s val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"));
  // Q3: auctions with more than one bidder (two increase branches).
  out.push_back(Q("q03",
                  "xam\n"
                  "node e1 label=open_auction id=s\n"
                  "node e2 label=bidder\n"
                  "node e3 label=increase val\n"
                  "node e4 label=bidder\n"
                  "node e5 label=increase val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"
                  "edge e1 / j e4\nedge e4 / j e5\n"));
  // Q4: auctions where a given person bid (personref existence).
  out.push_back(Q("q04",
                  "xam\n"
                  "node e1 label=open_auction id=s\n"
                  "node e2 label=bidder\n"
                  "node e3 label=personref\n"
                  "node e4 label=@person val=\"person1\"\n"
                  "node e5 label=initial val\n"
                  "edge top // j e1\nedge e1 / s e2\nedge e2 / j e3\n"
                  "edge e3 / s e4\nedge e1 / j e5\n"));
  // Q5: closed auctions with price >= 40.
  out.push_back(Q("q05",
                  "xam\n"
                  "node e1 label=closed_auction id=s\n"
                  "node e2 label=price val val>=40\n"
                  "edge top // j e1\nedge e1 / j e2\n"));
  // Q6: all items in regions.
  out.push_back(Q("q06",
                  "xam\n"
                  "node e1 label=regions\n"
                  "node e2\n"
                  "node e3 label=item id=s\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"));
  // Q7: counts of three unrelated piece kinds — the "no structural
  // relationship between variables" pattern whose canonical model explodes.
  out.push_back(Q("q07",
                  "xam\n"
                  "node e1 label=description id=s\n"
                  "node e2 label=mail id=s\n"
                  "node e3 label=text id=s\n"
                  "edge top // j e1\nedge top // j e2\nedge top // j e3\n"));
  // Q8: people and their purchases (person side).
  out.push_back(Q("q08",
                  "xam\n"
                  "node e1 label=person id=s\n"
                  "node e2 label=name val\n"
                  "edge top // j e1\nedge e1 / j e2\n"));
  // Q9: like Q8 plus the European item side.
  out.push_back(Q("q09",
                  "xam\n"
                  "node e1 label=europe\n"
                  "node e2 label=item\n"
                  "node e3 label=name id=s val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"));
  // Q10: person profiles grouped by interest (profile subtree).
  out.push_back(Q("q10",
                  "xam\n"
                  "node e1 label=person id=s\n"
                  "node e2 label=profile\n"
                  "node e3 label=interest\n"
                  "node e4 label=@category val\n"
                  "node e5 label=gender val\n"
                  "node e6 label=age val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"
                  "edge e3 / j e4\nedge e2 / o e5\nedge e2 / o e6\n"));
  // Q11: people joined with auctions by income (person side, decorated).
  out.push_back(Q("q11",
                  "xam\n"
                  "node e1 label=person id=s\n"
                  "node e2 label=profile\n"
                  "node e3 label=@income val val>50000\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / s e3\n"));
  // Q12: like Q11 with a lower bound.
  out.push_back(Q("q12",
                  "xam\n"
                  "node e1 label=person id=s\n"
                  "node e2 label=profile\n"
                  "node e3 label=@income val val>=100000\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / s e3\n"));
  // Q13: names and descriptions of Australian items.
  out.push_back(Q("q13",
                  "xam\n"
                  "node e1 label=australia\n"
                  "node e2 label=item id=s\n"
                  "node e3 label=name val\n"
                  "node e4 label=description id=s cont\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"
                  "edge e2 / j e4\n"));
  // Q14: items whose description mentions a keyword element.
  out.push_back(Q("q14",
                  "xam\n"
                  "node e1 label=item id=s\n"
                  "node e2 label=name val\n"
                  "node e3 label=description\n"
                  "node e4 label=keyword\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e1 / j e3\n"
                  "edge e3 // s e4\n"));
  // Q15: a long chain into nested listitems.
  out.push_back(Q("q15",
                  "xam\n"
                  "node e1 label=closed_auction\n"
                  "node e2 label=annotation\n"
                  "node e3 label=description\n"
                  "node e4 label=parlist\n"
                  "node e5 label=listitem\n"
                  "node e6 label=text\n"
                  "node e7 label=keyword id=s val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / j e3\n"
                  "edge e3 / j e4\nedge e4 / j e5\nedge e5 // j e6\n"
                  "edge e6 / j e7\n"));
  // Q16: like Q15 but returning the auction seller.
  out.push_back(Q("q16",
                  "xam\n"
                  "node e1 label=closed_auction id=s\n"
                  "node e2 label=seller\n"
                  "node e3 label=@person val\n"
                  "node e4 label=annotation\n"
                  "node e5 label=description\n"
                  "node e6 label=parlist\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e2 / s e3\n"
                  "edge e1 / j e4\nedge e4 / j e5\nedge e5 / s e6\n"));
  // Q17: people without a homepage (optional homepage branch).
  out.push_back(Q("q17",
                  "xam\n"
                  "node e1 label=person id=s\n"
                  "node e2 label=name val\n"
                  "node e3 label=homepage id=s val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e1 / o e3\n"));
  // Q18: initial prices of all open auctions.
  out.push_back(Q("q18",
                  "xam\n"
                  "node e1 label=open_auction\n"
                  "node e2 label=initial id=s val\n"
                  "edge top // j e1\nedge e1 / j e2\n"));
  // Q19: items with location, ordered output (location + name).
  out.push_back(Q("q19",
                  "xam ordered\n"
                  "node e1 label=item id=s\n"
                  "node e2 label=location val\n"
                  "node e3 label=name val\n"
                  "edge top // j e1\nedge e1 / j e2\nedge e1 / j e3\n"));
  // Q20: income classes (decorated ranges over profile income).
  out.push_back(Q("q20",
                  "xam\n"
                  "node e1 label=profile id=s\n"
                  "node e2 label=@income val val<30000\n"
                  "edge top // j e1\nedge e1 / s e2\n"));
  return out;
}

}  // namespace uload
