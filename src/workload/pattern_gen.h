// Random satisfiable pattern generator, following the synthetic-workload
// recipe of thesis §4.6: patterns of n nodes grown over a given summary
// (guaranteeing satisfiability), node fanout ≤ 3, wildcard probability 0.1,
// value-predicate probability 0.2 over 10 distinct constants, // probability
// 0.5, optional-edge probability 0.5, and r return nodes with fixed labels.
#ifndef ULOAD_WORKLOAD_PATTERN_GEN_H_
#define ULOAD_WORKLOAD_PATTERN_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "summary/path_summary.h"
#include "xam/xam.h"

namespace uload {

struct PatternGenOptions {
  int nodes = 6;          // total non-⊤ nodes
  int return_nodes = 1;   // r ∈ {1, 2, 3} in the thesis runs
  // Labels the return nodes are pinned to ("to avoid patterns returning
  // unrelated nodes"); must exist in the summary.
  std::vector<std::string> return_labels = {"item", "name", "keyword"};
  int fanout = 3;
  int wildcard_percent = 10;
  int predicate_percent = 20;
  int descendant_percent = 50;
  int optional_percent = 50;
  int distinct_values = 10;
};

class PatternGenerator {
 public:
  PatternGenerator(const PathSummary* summary, uint32_t seed);

  // Generates one satisfiable pattern; return nodes store ID and Val.
  Xam Generate(const PatternGenOptions& opts);

 private:
  const PathSummary* summary_;
  uint32_t state_;

  uint32_t Next();
  int Uniform(int n);
  bool Chance(int percent);
};

}  // namespace uload

#endif  // ULOAD_WORKLOAD_PATTERN_GEN_H_
