// Tree patterns of the 20 XMark benchmark queries (thesis Fig. 4.14 runs
// the containment algorithm on "the patterns of the 20 XMark queries").
// Each pattern is the access pattern our extractor produces for the query's
// main variable group, expressed over the structure of GenerateXMark().
#ifndef ULOAD_WORKLOAD_XMARK_QUERIES_H_
#define ULOAD_WORKLOAD_XMARK_QUERIES_H_

#include <vector>

#include "storage/storage_models.h"  // NamedXam

namespace uload {

// q1..q20 in order.
std::vector<NamedXam> XMarkQueryPatterns();

}  // namespace uload

#endif  // ULOAD_WORKLOAD_XMARK_QUERIES_H_
