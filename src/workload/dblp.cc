#include "workload/dblp.h"

#include <string>

namespace uload {
namespace {

class Rng {
 public:
  explicit Rng(uint32_t seed) : state_(seed == 0 ? 1 : seed) {}
  uint32_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  int Uniform(int n) { return static_cast<int>(Next() % n); }
  bool Chance(int percent) { return Uniform(100) < percent; }

 private:
  uint32_t state_;
};

const char* kAuthors[] = {"S. Abiteboul", "D. Suciu",  "I. Manolescu",
                          "A. Arion",     "V. Benzaken", "P. Valduriez",
                          "S. Amer-Yahia", "N. Bidoit",  "M. Stonebraker",
                          "J. Gray"};
const char* kVenues[] = {"VLDB", "SIGMOD", "ICDE", "EDBT", "PODS"};
const char* kTitleWords[] = {"XML",      "query",   "rewriting", "views",
                             "indexing", "storage", "patterns",  "summaries",
                             "algebra",  "database"};

}  // namespace

Document GenerateDblp(const DblpOptions& opts) {
  Rng rng(opts.seed);
  Document doc;
  NodeIndex dblp = doc.AddNode(NodeKind::kElement, "dblp", "",
                               doc.document_node());
  auto leaf = [&](NodeIndex parent, const std::string& tag,
                  const std::string& text) {
    NodeIndex e = doc.AddNode(NodeKind::kElement, tag, "", parent);
    doc.AddNode(NodeKind::kText, "#text", text, e);
  };
  for (int i = 0; i < opts.records; ++i) {
    const char* kinds[] = {"article", "inproceedings", "book", "phdthesis"};
    // Articles and inproceedings dominate real DBLP.
    int pick = rng.Uniform(10);
    const char* kind = pick < 4   ? kinds[0]
                       : pick < 8 ? kinds[1]
                       : pick < 9 ? kinds[2]
                                  : kinds[3];
    NodeIndex rec = doc.AddNode(NodeKind::kElement, kind, "", dblp);
    doc.AddNode(NodeKind::kAttribute, "key",
                std::string(kind) + "/" + std::to_string(i), rec);
    int authors = 1 + rng.Uniform(3);
    for (int a = 0; a < authors; ++a) {
      leaf(rec, "author", kAuthors[rng.Uniform(10)]);
    }
    std::string title;
    int words = 3 + rng.Uniform(4);
    for (int w = 0; w < words; ++w) {
      title += std::string(kTitleWords[rng.Uniform(10)]) + " ";
    }
    leaf(rec, "title", title);
    leaf(rec, "year", std::to_string(1995 + rng.Uniform(12)));
    if (std::string(kind) == "article") {
      leaf(rec, "journal", "TODS");
      if (rng.Chance(70)) leaf(rec, "volume", std::to_string(rng.Uniform(30)));
      if (rng.Chance(70)) leaf(rec, "number", std::to_string(rng.Uniform(6)));
    }
    if (std::string(kind) == "inproceedings") {
      leaf(rec, "booktitle", kVenues[rng.Uniform(5)]);
    }
    if (std::string(kind) == "phdthesis") {
      leaf(rec, "school", "Universite Paris Sud");
    }
    if (rng.Chance(60)) leaf(rec, "pages", "100-110");
    if (rng.Chance(50)) leaf(rec, "ee", "http://doi.example/" +
                                            std::to_string(i));
    if (rng.Chance(40)) leaf(rec, "url", "db/journals/x" +
                                             std::to_string(i));
    if (std::string(kind) == "article" || std::string(kind) == "book") {
      int cites = rng.Uniform(3);
      for (int c = 0; c < cites; ++c) {
        leaf(rec, "cite", "ref" + std::to_string(rng.Uniform(opts.records)));
      }
    }
  }
  doc.Finalize();
  return doc;
}

}  // namespace uload
