#include "workload/dataset_gen.h"

#include <string>

namespace uload {
namespace {

class Rng {
 public:
  explicit Rng(uint32_t seed) : state_(seed == 0 ? 1 : seed) {}
  uint32_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  int Uniform(int n) { return static_cast<int>(Next() % n); }
  bool Chance(int percent) { return Uniform(100) < percent; }

 private:
  uint32_t state_;
};

struct Ctx {
  Document doc;
  Rng rng;
  explicit Ctx(uint32_t seed) : rng(seed) {}

  NodeIndex Elem(NodeIndex parent, const std::string& tag) {
    return doc.AddNode(NodeKind::kElement, tag, "", parent);
  }
  void Leaf(NodeIndex parent, const std::string& tag,
            const std::string& text) {
    doc.AddNode(NodeKind::kText, "#text", text,
                doc.AddNode(NodeKind::kElement, tag, "", parent));
  }
  void Attr(NodeIndex parent, const std::string& name,
            const std::string& value) {
    doc.AddNode(NodeKind::kAttribute, name, value, parent);
  }
};

}  // namespace

Document GenerateShakespeareLike(int plays, uint32_t seed) {
  Ctx c(seed);
  NodeIndex root = c.Elem(c.doc.document_node(), "plays");
  for (int p = 0; p < plays; ++p) {
    NodeIndex play = c.Elem(root, "PLAY");
    c.Leaf(play, "TITLE", "Play " + std::to_string(p));
    NodeIndex fm = c.Elem(play, "FM");
    c.Leaf(fm, "P", "Public domain text");
    NodeIndex personae = c.Elem(play, "PERSONAE");
    c.Leaf(personae, "TITLE", "Dramatis Personae");
    for (int i = 0; i < 6 + c.rng.Uniform(6); ++i) {
      c.Leaf(personae, "PERSONA", "Character " + std::to_string(i));
    }
    if (c.rng.Chance(60)) {
      NodeIndex group = c.Elem(personae, "PGROUP");
      c.Leaf(group, "PERSONA", "Twin A");
      c.Leaf(group, "PERSONA", "Twin B");
      c.Leaf(group, "GRPDESCR", "twins");
    }
    c.Leaf(play, "SCNDESCR", "SCENE Elsinore.");
    c.Leaf(play, "PLAYSUBT", "Subtitle");
    for (int a = 0; a < 3 + c.rng.Uniform(3); ++a) {
      NodeIndex act = c.Elem(play, "ACT");
      c.Leaf(act, "TITLE", "ACT " + std::to_string(a + 1));
      for (int s = 0; s < 2 + c.rng.Uniform(4); ++s) {
        NodeIndex scene = c.Elem(act, "SCENE");
        c.Leaf(scene, "TITLE", "SCENE " + std::to_string(s + 1));
        if (c.rng.Chance(70)) c.Leaf(scene, "STAGEDIR", "Enter GHOST");
        for (int sp = 0; sp < 4 + c.rng.Uniform(10); ++sp) {
          NodeIndex speech = c.Elem(scene, "SPEECH");
          c.Leaf(speech, "SPEAKER", "Character " + std::to_string(
                                        c.rng.Uniform(8)));
          for (int l = 0; l < 1 + c.rng.Uniform(5); ++l) {
            c.Leaf(speech, "LINE", "To be or not to be, line " +
                                       std::to_string(l));
          }
          if (c.rng.Chance(20)) c.Leaf(speech, "STAGEDIR", "Aside");
        }
      }
    }
  }
  c.doc.Finalize();
  return std::move(c.doc);
}

Document GenerateNasaLike(int datasets, uint32_t seed) {
  Ctx c(seed);
  NodeIndex root = c.Elem(c.doc.document_node(), "datasets");
  for (int d = 0; d < datasets; ++d) {
    NodeIndex ds = c.Elem(root, "dataset");
    c.Attr(ds, "subject", "astronomy");
    c.Attr(ds, "xmlns", "http://nasa.example");
    NodeIndex title = c.Elem(ds, "title");
    c.doc.AddNode(NodeKind::kText, "#text", "Catalog " + std::to_string(d),
                  title);
    c.Leaf(ds, "altname", "ADC A" + std::to_string(d));
    NodeIndex reference = c.Elem(ds, "reference");
    NodeIndex source = c.Elem(reference, "source");
    NodeIndex other = c.Elem(source, "other");
    c.Leaf(other, "title", "Original publication");
    NodeIndex author = c.Elem(other, "author");
    NodeIndex name = c.Elem(author, "name");
    c.Leaf(name, "last", "Doe");
    if (c.rng.Chance(60)) c.Leaf(name, "initial", "J");
    c.Leaf(other, "name", "Journal of Stars");
    c.Leaf(other, "publisher", "ADC");
    c.Leaf(other, "city", "Greenbelt");
    c.Leaf(other, "date", "1999");
    NodeIndex keywords = c.Elem(ds, "keywords");
    c.Attr(keywords, "parentListURL", "http://nasa.example/kw");
    for (int k = 0; k < 1 + c.rng.Uniform(4); ++k) {
      c.Leaf(keywords, "keyword", "star" + std::to_string(k));
    }
    NodeIndex descriptions = c.Elem(ds, "descriptions");
    NodeIndex description = c.Elem(descriptions, "description");
    NodeIndex para = c.Elem(description, "para");
    c.doc.AddNode(NodeKind::kText, "#text", "Observations of stars.", para);
    if (c.rng.Chance(40)) {
      NodeIndex details = c.Elem(descriptions, "details");
      c.Leaf(details, "para", "More details.");
    }
    NodeIndex identifier = c.Elem(ds, "identifier");
    c.doc.AddNode(NodeKind::kText, "#text", "A" + std::to_string(d),
                  identifier);
    NodeIndex tableHead = c.Elem(ds, "tableHead");
    for (int f = 0; f < 2 + c.rng.Uniform(5); ++f) {
      NodeIndex field = c.Elem(tableHead, "field");
      c.Leaf(field, "name", "col" + std::to_string(f));
      if (c.rng.Chance(50)) c.Leaf(field, "units", "mag");
      if (c.rng.Chance(50)) c.Leaf(field, "definition", "brightness");
    }
    NodeIndex history = c.Elem(ds, "history");
    for (int h = 0; h < 1 + c.rng.Uniform(2); ++h) {
      NodeIndex ingest = c.Elem(history, "ingest");
      c.Leaf(ingest, "creator", "archivist");
      c.Leaf(ingest, "date", "2000-01-01");
    }
  }
  c.doc.Finalize();
  return std::move(c.doc);
}

Document GenerateSwissProtLike(int entries, uint32_t seed) {
  Ctx c(seed);
  NodeIndex root = c.Elem(c.doc.document_node(), "sptr");
  for (int e = 0; e < entries; ++e) {
    NodeIndex entry = c.Elem(root, "Entry");
    c.Attr(entry, "id", "P" + std::to_string(10000 + e));
    c.Attr(entry, "class", "STANDARD");
    c.Attr(entry, "mtype", "PRT");
    c.Attr(entry, "seqlen", std::to_string(100 + c.rng.Uniform(900)));
    c.Leaf(entry, "AC", "P" + std::to_string(10000 + e));
    NodeIndex mod = c.Elem(entry, "Mod");
    c.Attr(mod, "date", "01-JAN-2000");
    c.Attr(mod, "Rel", "39");
    c.Attr(mod, "type", "Created");
    c.Leaf(entry, "Descr", "Protein " + std::to_string(e));
    if (c.rng.Chance(70)) c.Leaf(entry, "Species", "Homo sapiens");
    if (c.rng.Chance(50)) c.Leaf(entry, "Org", "Eukaryota");
    for (int r = 0; r < 1 + c.rng.Uniform(3); ++r) {
      NodeIndex ref = c.Elem(entry, "Ref");
      c.Attr(ref, "num", std::to_string(r + 1));
      c.Attr(ref, "pos", "SEQUENCE");
      c.Leaf(ref, "Comment", "PARTIAL SEQUENCE");
      NodeIndex db = c.Elem(ref, "DB");
      c.doc.AddNode(NodeKind::kText, "#text", "MEDLINE", db);
      NodeIndex medline = c.Elem(ref, "MedlineID");
      c.doc.AddNode(NodeKind::kText, "#text",
                    std::to_string(90000000 + c.rng.Uniform(999999)), medline);
      for (int a = 0; a < 1 + c.rng.Uniform(4); ++a) {
        c.Leaf(ref, "Author", "Author" + std::to_string(a));
      }
      c.Leaf(ref, "Cite", "J. Biol. " + std::to_string(c.rng.Uniform(300)));
    }
    for (int k = 0; k < c.rng.Uniform(4); ++k) {
      c.Leaf(entry, "Keyword", "kw" + std::to_string(c.rng.Uniform(20)));
    }
    NodeIndex features = c.Elem(entry, "Features");
    const char* ftypes[] = {"DOMAIN", "BINDING", "SIGNAL", "CHAIN", "HELIX",
                            "STRAND", "TURN", "SITE", "VARIANT", "CONFLICT"};
    for (int f = 0; f < 1 + c.rng.Uniform(6); ++f) {
      NodeIndex feat = c.Elem(features, ftypes[c.rng.Uniform(10)]);
      c.Attr(feat, "from", std::to_string(c.rng.Uniform(100)));
      c.Attr(feat, "to", std::to_string(100 + c.rng.Uniform(100)));
      if (c.rng.Chance(60)) c.Leaf(feat, "Descr", "descr");
    }
    for (int x = 0; x < 1 + c.rng.Uniform(3); ++x) {
      const char* banks[] = {"EMBL", "PIR", "PDB", "PROSITE", "INTERPRO"};
      NodeIndex xref = c.Elem(entry, banks[c.rng.Uniform(5)]);
      c.Attr(xref, "prim_id", "X" + std::to_string(c.rng.Uniform(99999)));
      if (c.rng.Chance(50)) {
        c.Attr(xref, "sec_id", "Y" + std::to_string(c.rng.Uniform(99999)));
      }
    }
  }
  c.doc.Finalize();
  return std::move(c.doc);
}

}  // namespace uload
