#include "workload/pattern_gen.h"

#include <algorithm>

namespace uload {

PatternGenerator::PatternGenerator(const PathSummary* summary, uint32_t seed)
    : summary_(summary), state_(seed == 0 ? 0xdeadbeef : seed) {}

uint32_t PatternGenerator::Next() {
  state_ ^= state_ << 13;
  state_ ^= state_ >> 17;
  state_ ^= state_ << 5;
  return state_;
}

int PatternGenerator::Uniform(int n) {
  return n <= 0 ? 0 : static_cast<int>(Next() % n);
}

bool PatternGenerator::Chance(int percent) { return Uniform(100) < percent; }

Xam PatternGenerator::Generate(const PatternGenOptions& opts) {
  const PathSummary& s = *summary_;

  // Every pattern node is generated together with a witness summary node,
  // so satisfiability holds by construction.
  struct GenNode {
    XamNodeId id;
    SummaryNodeId witness;
    int children = 0;
  };

  Xam x;
  std::vector<GenNode> nodes;

  auto add_node = [&](XamNodeId parent, SummaryNodeId witness_parent,
                      SummaryNodeId witness, bool force_descendant) {
    bool is_child = s.node(witness).parent == witness_parent;
    Axis axis = (!is_child || force_descendant ||
                 Chance(opts.descendant_percent))
                    ? Axis::kDescendant
                    : Axis::kChild;
    // Only non-child witnesses *require* //.
    if (!is_child) axis = Axis::kDescendant;
    JoinVariant variant = Chance(opts.optional_percent)
                              ? JoinVariant::kLeftOuter
                              : JoinVariant::kInner;
    std::string label = s.node(witness).label;
    if (Chance(opts.wildcard_percent)) label.clear();
    XamNodeId id;
    if (s.node(witness).kind == NodeKind::kAttribute) {
      id = x.AddAttributeNode(parent, label.empty() ? "" : label.substr(1),
                              variant);
      // Attribute wildcard nodes keep is_attribute set.
    } else {
      id = x.AddNode(parent, axis, label, variant);
    }
    if (Chance(opts.predicate_percent)) {
      x.ValPredicate(id, ValueFormula::Equals(AtomicValue::Number(
                             Uniform(opts.distinct_values))));
    }
    nodes.push_back(GenNode{id, witness, 0});
    return id;
  };

  // Root chain: pick the first return label's witness and create its node
  // directly under ⊤ (descendant edge keeps it satisfiable).
  std::vector<SummaryNodeId> anchors;
  for (int r = 0; r < opts.return_nodes; ++r) {
    const std::string& label =
        opts.return_labels[r % opts.return_labels.size()];
    const auto& cands = s.NodesWithLabel(label);
    if (!cands.empty()) anchors.push_back(cands[Uniform(cands.size())]);
  }
  if (anchors.empty()) anchors.push_back(s.root());

  // First anchor hangs from ⊤; later anchors hang from the deepest common
  // structure — for simplicity from ⊤ as well (strict edges so the tuples
  // stay related through the root).
  std::vector<XamNodeId> return_ids;
  for (SummaryNodeId anchor : anchors) {
    XamNodeId id = x.AddNode(kXamRoot, Axis::kDescendant,
                             s.node(anchor).label, JoinVariant::kInner);
    x.StoreId(id);
    x.StoreVal(id);
    nodes.push_back(GenNode{id, anchor, 0});
    return_ids.push_back(id);
  }

  // Grow to the requested size.
  int guard = 0;
  while (static_cast<int>(nodes.size()) < opts.nodes && ++guard < 1000) {
    // Index, not reference: add_node() grows `nodes` and may reallocate.
    size_t host = Uniform(nodes.size());
    if (nodes[host].children >= opts.fanout) continue;
    if (x.node(nodes[host].id).is_attribute) continue;  // attributes are leaves
    // Candidate witnesses: children (preferred) or descendants.
    std::vector<SummaryNodeId> cands;
    for (SummaryNodeId c : s.node(nodes[host].witness).children) {
      if (s.node(c).kind != NodeKind::kText) cands.push_back(c);
    }
    if (cands.empty() || Chance(30)) {
      std::vector<SummaryNodeId> desc = s.Descendants(nodes[host].witness, "");
      if (!desc.empty()) cands.push_back(desc[Uniform(desc.size())]);
    }
    if (cands.empty()) continue;
    SummaryNodeId witness = cands[Uniform(cands.size())];
    add_node(nodes[host].id, nodes[host].witness, witness, false);
    nodes[host].children++;
  }
  return x;
}

}  // namespace uload
