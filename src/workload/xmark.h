// XMark-like document generator (thesis uses XMark [115] throughout its
// evaluation). Reproduces the benchmark's *path structure* — the auction
// site with regions/items (recursive parlist/listitem descriptions with
// bold/keyword/emph markup), people, open and closed auctions, categories
// and the category graph — at a configurable scale. Text payloads are
// synthetic; what matters for containment/rewriting is the summary shape.
#ifndef ULOAD_WORKLOAD_XMARK_H_
#define ULOAD_WORKLOAD_XMARK_H_

#include <cstdint>

#include "xml/document.h"

namespace uload {

struct XMarkOptions {
  int items = 40;           // per region (6 regions)
  int people = 60;
  int open_auctions = 30;
  int closed_auctions = 20;
  int categories = 10;
  int max_parlist_depth = 3;  // description recursion depth
  uint32_t seed = 42;
};

Document GenerateXMark(const XMarkOptions& opts = {});

// Scales roughly with `factor` like the thesis's XMark11/111/233 series.
XMarkOptions XMarkScale(double factor);

}  // namespace uload

#endif  // ULOAD_WORKLOAD_XMARK_H_
