// In-memory XML tree node (thesis §1.1).
//
// A document is a tree (N, E) with N = N_d ∪ N_e ∪ N_a (document, element,
// attribute nodes); text is modeled as first-class #text nodes so that the
// Val of an element can be recovered exactly.
#ifndef ULOAD_XML_NODE_H_
#define ULOAD_XML_NODE_H_

#include <cstdint>
#include <string>

#include "xml/ids.h"

namespace uload {

enum class NodeKind : uint8_t {
  kDocument = 0,
  kElement,
  kAttribute,
  kText,
};

// Node index inside its Document; -1 means "none".
using NodeIndex = int32_t;
inline constexpr NodeIndex kNoNode = -1;

struct Node {
  NodeKind kind = NodeKind::kElement;
  // Element tag, attribute name (without '@'), or "#text" for text nodes.
  std::string label;
  // Text content of a text node / value of an attribute; empty for elements.
  std::string value;

  NodeIndex parent = kNoNode;
  NodeIndex first_child = kNoNode;
  NodeIndex next_sibling = kNoNode;
  // 0-based position among the parent's children (all kinds).
  uint32_t ordinal = 0;

  StructuralId sid;
  // Summary node this node maps to (φ in Def. 4.2.1); set by
  // PathSummary::Build, kNoNode before that.
  int32_t path_id = kNoNode;

  bool is_element() const { return kind == NodeKind::kElement; }
  bool is_attribute() const { return kind == NodeKind::kAttribute; }
  bool is_text() const { return kind == NodeKind::kText; }
};

}  // namespace uload

#endif  // ULOAD_XML_NODE_H_
