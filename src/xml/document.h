// Document: an arena of Nodes in document (pre-)order, with structural and
// Dewey identifiers assigned at Finalize() time.
#ifndef ULOAD_XML_DOCUMENT_H_
#define ULOAD_XML_DOCUMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/document_store.h"
#include "xml/ids.h"
#include "xml/node.h"

namespace uload {

// The pointer-tree backend of the DocumentStore interface: nodes in a flat
// arena linked by parent/first_child/next_sibling indices.
class Document : public DocumentStore {
 public:
  Document();

  // --- Construction -------------------------------------------------------

  // Parses `xml` (elements, attributes, text, comments, CDATA, entities).
  // Whitespace-only text nodes are dropped. The returned document is
  // finalized.
  static Result<Document> Parse(std::string_view xml);

  // Builder interface: nodes must be added in document order (parent before
  // children, siblings left to right; attributes before element children).
  // Returns the new node's index.
  NodeIndex AddNode(NodeKind kind, std::string label, std::string value,
                    NodeIndex parent);
  // Assigns (pre, post, depth) and child ordinals. Must be called once after
  // the last AddNode and before any query.
  void Finalize();

  // --- Access (DocumentStore implementation) -------------------------------

  std::string_view backend_name() const override { return "pointer"; }

  // The unique element child of the document node.
  NodeIndex root() const override;

  int64_t size() const override { return static_cast<int64_t>(nodes_.size()); }
  const Node& node(NodeIndex i) const { return nodes_[i]; }
  Node& mutable_node(NodeIndex i) { return nodes_[i]; }

  NodeKind kind(NodeIndex i) const override { return nodes_[i].kind; }
  std::string_view label(NodeIndex i) const override {
    return nodes_[i].label;
  }
  StructuralId sid(NodeIndex i) const override { return nodes_[i].sid; }
  NodeIndex parent(NodeIndex i) const override { return nodes_[i].parent; }
  uint32_t ordinal(NodeIndex i) const override { return nodes_[i].ordinal; }
  int32_t path_id(NodeIndex i) const override { return nodes_[i].path_id; }

  // Number of element nodes (the N statistic of Fig. 4.13).
  int64_t element_count() const override;

  // Children of `i` in document order.
  std::vector<NodeIndex> Children(NodeIndex i) const override;

  // Node index with the given pre label (pre labels are dense, 1-based over
  // non-document nodes), or kNoNode.
  NodeIndex NodeByPre(uint32_t pre) const override;

  // XPath text() semantics: concatenation of all descendant #text values in
  // document order; for attributes/texts, their own value (§1.1).
  std::string Value(NodeIndex i) const override;

  // Serialized subtree ("content" in §1.1): elements as markup, attributes
  // as name="value", text as escaped character data.
  std::string Content(NodeIndex i) const override;

  // Dewey identifier (root element = {1}); attributes and texts take their
  // ordinal arc like any child.
  DeweyId Dewey(NodeIndex i) const override;

  // Path-partitioned chunk iteration: the pointer tree keeps no chunk index,
  // so these scan the arena (used by equivalence tests, not hot paths).
  int32_t path_id_limit() const override;
  std::vector<NodeIndex> ChunkRows(int32_t path) const override;

  // Arena footprint: node structs plus label/value payloads.
  int64_t ApproximateBytes() const override;

  // Total serialized size in bytes (the "Size" statistic of Fig. 4.13).
  int64_t SerializedSize() const;

  bool finalized() const { return finalized_; }

 private:
  std::vector<Node> nodes_;
  bool finalized_ = false;
};

}  // namespace uload

#endif  // ULOAD_XML_DOCUMENT_H_
