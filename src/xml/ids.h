// Persistent node identifiers (thesis §1.2.1).
//
// Two concrete labeling schemes are implemented:
//  * StructuralId: the (pre, post, depth) triple of Dietz-style tree
//    traversal labels. Comparing two StructuralIds decides
//    ancestor/descendant/parent/child and document order.
//  * DeweyId: a navigational scheme (ORDPATH/Dewey). The identifier of any
//    ancestor is derivable from a node's own identifier by truncation.
//
// A XAM declares which *properties* of its stored identifiers the optimizer
// may rely on (IdKind); execution carries whichever concrete representation
// the storage structure materialized.
#ifndef ULOAD_XML_IDS_H_
#define ULOAD_XML_IDS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uload {

// Property level of a stored identifier (XAM grammar: id i|o|s|p).
enum class IdKind : uint8_t {
  kSimple = 0,      // 'i': equality only
  kOrdered = 1,     // 'o': equality + document order
  kStructural = 2,  // 's': + ancestor/descendant/parent/child decisions
  kParental = 3,    // 'p': + ancestor-ID derivation (Dewey/ORDPATH)
};

// Returns 'i', 'o', 's' or 'p'.
char IdKindCode(IdKind kind);

// Parses 'i'/'o'/'s'/'p'; returns false on other characters.
bool IdKindFromCode(char c, IdKind* out);

// (pre, post, depth) labels from pre-/post-order traversals.
struct StructuralId {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t depth = 0;

  friend bool operator==(const StructuralId&, const StructuralId&) = default;
};

// m is an ancestor of n iff pre_m < pre_n and post_n < post_m.
bool IsAncestor(const StructuralId& m, const StructuralId& n);
// m is the parent of n iff ancestor and depth_m + 1 == depth_n.
bool IsParent(const StructuralId& m, const StructuralId& n);
// m precedes n in document order, subtrees disjoint: pre_m < pre_n ∧ post_m < post_n.
bool Precedes(const StructuralId& m, const StructuralId& n);
// Document order: by pre label.
bool DocOrderLess(const StructuralId& m, const StructuralId& n);

std::string ToString(const StructuralId& id);

// Dewey path: the root element is {1}; a node's k-th child (1-based) appends
// k. Ancestor test = strict prefix test; parent derivation = drop last arc.
using DeweyId = std::vector<uint32_t>;

bool DeweyIsAncestor(const DeweyId& m, const DeweyId& n);
bool DeweyIsParent(const DeweyId& m, const DeweyId& n);
// Identifier of the parent (empty DeweyId for the root's parent).
DeweyId DeweyParent(const DeweyId& id);
// Identifier of the ancestor at depth `depth` (1 = root). Precondition:
// depth <= id.size().
DeweyId DeweyAncestorAtDepth(const DeweyId& id, uint32_t depth);
// Lexicographic comparison == document order.
int DeweyCompare(const DeweyId& m, const DeweyId& n);

std::string ToString(const DeweyId& id);

}  // namespace uload

#endif  // ULOAD_XML_IDS_H_
