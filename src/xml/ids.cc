#include "xml/ids.h"

#include <algorithm>

namespace uload {

char IdKindCode(IdKind kind) {
  switch (kind) {
    case IdKind::kSimple:
      return 'i';
    case IdKind::kOrdered:
      return 'o';
    case IdKind::kStructural:
      return 's';
    case IdKind::kParental:
      return 'p';
  }
  return '?';
}

bool IdKindFromCode(char c, IdKind* out) {
  switch (c) {
    case 'i':
      *out = IdKind::kSimple;
      return true;
    case 'o':
      *out = IdKind::kOrdered;
      return true;
    case 's':
      *out = IdKind::kStructural;
      return true;
    case 'p':
      *out = IdKind::kParental;
      return true;
    default:
      return false;
  }
}

bool IsAncestor(const StructuralId& m, const StructuralId& n) {
  return m.pre < n.pre && n.post < m.post;
}

bool IsParent(const StructuralId& m, const StructuralId& n) {
  return IsAncestor(m, n) && m.depth + 1 == n.depth;
}

bool Precedes(const StructuralId& m, const StructuralId& n) {
  // With independent pre- and post-order counters, "m's subtree is entirely
  // before n" is pre_m < pre_n together with post_m < post_n (the two nodes
  // are not on one root-to-leaf path). The single-counter shortcut
  // post_m < pre_n does NOT hold for this labeling.
  return m.pre < n.pre && m.post < n.post;
}

bool DocOrderLess(const StructuralId& m, const StructuralId& n) {
  return m.pre < n.pre;
}

std::string ToString(const StructuralId& id) {
  return "(" + std::to_string(id.pre) + "," + std::to_string(id.post) + "," +
         std::to_string(id.depth) + ")";
}

bool DeweyIsAncestor(const DeweyId& m, const DeweyId& n) {
  if (m.size() >= n.size()) return false;
  return std::equal(m.begin(), m.end(), n.begin());
}

bool DeweyIsParent(const DeweyId& m, const DeweyId& n) {
  return m.size() + 1 == n.size() && DeweyIsAncestor(m, n);
}

DeweyId DeweyParent(const DeweyId& id) {
  if (id.empty()) return {};
  return DeweyId(id.begin(), id.end() - 1);
}

DeweyId DeweyAncestorAtDepth(const DeweyId& id, uint32_t depth) {
  return DeweyId(id.begin(), id.begin() + std::min<size_t>(depth, id.size()));
}

int DeweyCompare(const DeweyId& m, const DeweyId& n) {
  size_t common = std::min(m.size(), n.size());
  for (size_t i = 0; i < common; ++i) {
    if (m[i] != n[i]) return m[i] < n[i] ? -1 : 1;
  }
  if (m.size() == n.size()) return 0;
  return m.size() < n.size() ? -1 : 1;
}

std::string ToString(const DeweyId& id) {
  std::string out;
  for (size_t i = 0; i < id.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(id[i]);
  }
  return out;
}

}  // namespace uload
