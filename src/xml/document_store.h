// DocumentStore: the narrow, storage-neutral read interface over one XML
// document (ROADMAP item 2 — physical data independence below the XAM
// layer).
//
// Everything above the storage layer — tag-derived collections, XAM
// semantics, the Navigate operators, view materialization — consumes this
// interface only, so the physical representation of the document is
// swappable: the legacy pointer tree (xml/document.h) and the columnar
// store (storage/columnar/columnar_document.h) both implement it, and a
// query must produce byte-identical results over either.
//
// The addressing contract every implementation shares:
//  * Rows are the document's nodes in document (pre-)order; row 0 is the
//    synthetic #document node, and for every other row the pre label equals
//    the row index (pre labels are dense and 1-based over non-document
//    nodes). A NodeIndex is therefore both a row number and a pre label.
//  * A node's descendants occupy the contiguous row interval
//    (i, i + descendant_count], which is what makes flat column storage a
//    faithful representation of the tree.
#ifndef ULOAD_XML_DOCUMENT_STORE_H_
#define ULOAD_XML_DOCUMENT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xml/ids.h"
#include "xml/node.h"

namespace uload {

class DocumentStore {
 public:
  virtual ~DocumentStore() = default;

  // Implementation tag for diagnostics and bench reporting ("pointer",
  // "columnar").
  virtual std::string_view backend_name() const = 0;

  // --- Shape ---------------------------------------------------------------

  // Row count, including the synthetic document node at row 0.
  virtual int64_t size() const = 0;
  // The synthetic document node is row 0 in every backend.
  NodeIndex document_node() const { return 0; }
  // The unique element child of the document node, kNoNode if absent.
  virtual NodeIndex root() const = 0;
  // Number of element rows (the N statistic of Fig. 4.13).
  virtual int64_t element_count() const = 0;

  // --- Per-row column accessors -------------------------------------------

  virtual NodeKind kind(NodeIndex i) const = 0;
  // Element tag, attribute name (without '@'), "#text", or "#document".
  // The view is valid as long as the store is.
  virtual std::string_view label(NodeIndex i) const = 0;
  virtual StructuralId sid(NodeIndex i) const = 0;
  virtual NodeIndex parent(NodeIndex i) const = 0;
  // 0-based position among the parent's children (all kinds).
  virtual uint32_t ordinal(NodeIndex i) const = 0;
  // Summary node this row maps to (φ of Def. 4.2.1); kNoNode when no path
  // summary was attached to the document.
  virtual int32_t path_id(NodeIndex i) const = 0;

  // --- Derived access ------------------------------------------------------

  // Children of `i` in document order.
  virtual std::vector<NodeIndex> Children(NodeIndex i) const = 0;
  // Row with the given pre label, or kNoNode (pre 0 — the document node —
  // deliberately resolves to kNoNode, matching the pointer backend).
  virtual NodeIndex NodeByPre(uint32_t pre) const = 0;
  // XPath text() semantics: concatenation of all descendant #text values in
  // document order; attributes/texts return their own value (§1.1).
  virtual std::string Value(NodeIndex i) const = 0;
  // Serialized subtree ("content" in §1.1).
  virtual std::string Content(NodeIndex i) const = 0;
  // Dewey identifier (root element = {1}).
  virtual DeweyId Dewey(NodeIndex i) const = 0;

  // --- Path-partitioned chunk iteration ------------------------------------

  // Exclusive upper bound on path_id values present (0 when the document
  // carries no summary annotation).
  virtual int32_t path_id_limit() const = 0;
  // Rows mapped to summary node `path`, ascending (= document order). Empty
  // for out-of-range ids.
  virtual std::vector<NodeIndex> ChunkRows(int32_t path) const = 0;

  // Resident-footprint estimate in bytes (bench reporting).
  virtual int64_t ApproximateBytes() const = 0;

  // --- Convenience (shared implementations) --------------------------------

  bool is_element(NodeIndex i) const { return kind(i) == NodeKind::kElement; }
  bool is_attribute(NodeIndex i) const {
    return kind(i) == NodeKind::kAttribute;
  }
  bool is_text(NodeIndex i) const { return kind(i) == NodeKind::kText; }
};

}  // namespace uload

#endif  // ULOAD_XML_DOCUMENT_STORE_H_
