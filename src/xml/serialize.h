// Serialization of document subtrees back to XML markup ("content" in §1.1).
#ifndef ULOAD_XML_SERIALIZE_H_
#define ULOAD_XML_SERIALIZE_H_

#include <string>

#include "xml/node.h"

namespace uload {

class Document;

// Serializes the subtree rooted at `i`:
//  * elements: <tag a="v">...</tag> (self-closing when empty),
//  * attributes: name="value" (matching Fig. 2.6),
//  * text nodes: escaped character data.
std::string SerializeSubtree(const Document& doc, NodeIndex i);

}  // namespace uload

#endif  // ULOAD_XML_SERIALIZE_H_
