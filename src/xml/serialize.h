// Serialization of document subtrees back to XML markup ("content" in §1.1).
#ifndef ULOAD_XML_SERIALIZE_H_
#define ULOAD_XML_SERIALIZE_H_

#include <string>

#include "xml/document_store.h"
#include "xml/node.h"

namespace uload {

// Serializes the subtree rooted at `i`:
//  * elements: <tag a="v">...</tag> (self-closing when empty),
//  * attributes: name="value" (matching Fig. 2.6),
//  * text nodes: escaped character data.
// Implemented against the storage-neutral DocumentStore interface so every
// backend serializes byte-identically by construction.
std::string SerializeSubtree(const DocumentStore& doc, NodeIndex i);

}  // namespace uload

#endif  // ULOAD_XML_SERIALIZE_H_
