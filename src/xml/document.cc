#include "xml/document.h"

#include <algorithm>
#include <cassert>

#include "xml/parser.h"
#include "xml/serialize.h"

namespace uload {

Document::Document() {
  // Index 0 is the synthetic document node (N_d).
  Node doc;
  doc.kind = NodeKind::kDocument;
  doc.label = "#document";
  nodes_.push_back(std::move(doc));
}

Result<Document> Document::Parse(std::string_view xml) {
  return ParseXml(xml);
}

NodeIndex Document::AddNode(NodeKind kind, std::string label,
                            std::string value, NodeIndex parent) {
  assert(!finalized_ && "AddNode after Finalize");
  assert(parent >= 0 && parent < static_cast<NodeIndex>(nodes_.size()));
  NodeIndex idx = static_cast<NodeIndex>(nodes_.size());
  Node n;
  n.kind = kind;
  n.label = std::move(label);
  n.value = std::move(value);
  n.parent = parent;
  nodes_.push_back(std::move(n));

  // Link as the last child of `parent`. Nodes arrive in document order, so
  // appending keeps sibling lists sorted.
  Node& p = nodes_[parent];
  if (p.first_child == kNoNode) {
    p.first_child = idx;
    nodes_[idx].ordinal = 0;
  } else {
    NodeIndex c = p.first_child;
    while (nodes_[c].next_sibling != kNoNode) c = nodes_[c].next_sibling;
    nodes_[c].next_sibling = idx;
    nodes_[idx].ordinal = nodes_[c].ordinal + 1;
  }
  return idx;
}

void Document::Finalize() {
  assert(!finalized_);
  // Nodes were appended in document order, so index order IS pre-order.
  // pre labels are 1-based over non-document nodes; post labels are computed
  // by a single reverse pass: a node's post label must exceed those of all
  // its descendants, and descendants are exactly the index interval
  // (i, subtree_end(i)). We compute post via an explicit DFS instead.
  uint32_t pre = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    nodes_[i].sid.pre = ++pre;
    nodes_[i].sid.depth = nodes_[nodes_[i].parent].sid.depth + 1;
  }
  // Post-order numbering: children before parents. Since children have
  // larger indices than parents, iterating indices backwards and assigning
  // decreasing numbers gives *reverse* post-order for siblings; instead we
  // do an iterative DFS.
  uint32_t post = 0;
  std::vector<std::pair<NodeIndex, bool>> stack;  // (node, expanded)
  stack.emplace_back(0, false);
  while (!stack.empty()) {
    auto [idx, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      if (idx != 0) nodes_[idx].sid.post = ++post;
      continue;
    }
    stack.emplace_back(idx, true);
    // Push children in reverse so the leftmost is processed first.
    std::vector<NodeIndex> kids = Children(idx);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, false);
    }
  }
  // The document node gets labels spanning everything.
  nodes_[0].sid = StructuralId{0, post + 1, 0};
  finalized_ = true;
}

NodeIndex Document::root() const {
  for (NodeIndex c = nodes_[0].first_child; c != kNoNode;
       c = nodes_[c].next_sibling) {
    if (nodes_[c].is_element()) return c;
  }
  return kNoNode;
}

int64_t Document::element_count() const {
  int64_t n = 0;
  for (const Node& node : nodes_) {
    if (node.is_element()) ++n;
  }
  return n;
}

std::vector<NodeIndex> Document::Children(NodeIndex i) const {
  std::vector<NodeIndex> out;
  for (NodeIndex c = nodes_[i].first_child; c != kNoNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

NodeIndex Document::NodeByPre(uint32_t pre) const {
  // pre labels are assigned densely in index order: node i has pre == i.
  if (pre == 0 || pre >= nodes_.size()) return kNoNode;
  return static_cast<NodeIndex>(pre);
}

std::string Document::Value(NodeIndex i) const {
  const Node& n = nodes_[i];
  if (n.is_text() || n.is_attribute()) return n.value;
  std::string out;
  // Descendants of i are exactly the contiguous index range of its subtree;
  // walk it via DFS to respect document order (index order already does).
  std::vector<NodeIndex> stack = Children(i);
  // Children() returns doc order; we need a proper DFS queue.
  std::vector<NodeIndex> work(stack.rbegin(), stack.rend());
  while (!work.empty()) {
    NodeIndex c = work.back();
    work.pop_back();
    if (nodes_[c].is_text()) out += nodes_[c].value;
    if (nodes_[c].is_attribute()) continue;  // attribute values not in text()
    std::vector<NodeIndex> kids = Children(c);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) work.push_back(*it);
  }
  return out;
}

std::string Document::Content(NodeIndex i) const {
  return SerializeSubtree(*this, i);
}

DeweyId Document::Dewey(NodeIndex i) const {
  DeweyId path;
  NodeIndex cur = i;
  while (cur != kNoNode && nodes_[cur].kind != NodeKind::kDocument) {
    path.push_back(nodes_[cur].ordinal + 1);
    cur = nodes_[cur].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int32_t Document::path_id_limit() const {
  int32_t limit = 0;
  for (const Node& n : nodes_) {
    if (n.path_id >= limit) limit = n.path_id + 1;
  }
  return limit;
}

std::vector<NodeIndex> Document::ChunkRows(int32_t path) const {
  std::vector<NodeIndex> rows;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].path_id == path) rows.push_back(static_cast<NodeIndex>(i));
  }
  return rows;
}

int64_t Document::ApproximateBytes() const {
  int64_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += static_cast<int64_t>(sizeof(Node)) +
             static_cast<int64_t>(n.label.size()) +
             static_cast<int64_t>(n.value.size());
  }
  return bytes;
}

int64_t Document::SerializedSize() const {
  NodeIndex r = root();
  if (r == kNoNode) return 0;
  return static_cast<int64_t>(Content(r).size());
}

}  // namespace uload
