#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace uload {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Document> Run() {
    Document doc;
    SkipProlog();
    ULOAD_RETURN_NOT_OK(ParseElement(&doc, doc.document_node()));
    SkipMisc();
    if (!AtEnd()) {
      return Status::ParseError("trailing content at offset " +
                                std::to_string(pos_));
    }
    doc.Finalize();
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  // Skips <?xml ...?>, comments, DOCTYPE, whitespace before the root.
  void SkipProlog() { SkipMisc(); }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        size_t end = input_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      } else if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else if (LookingAt("<!DOCTYPE")) {
        // Skip to matching '>' (internal subsets use [...]).
        int depth = 0;
        while (!AtEnd()) {
          char c = input_[pos_++];
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth == 0) break;
        }
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Status::ParseError("expected name at offset " +
                                std::to_string(pos_));
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  // Decodes entities in `raw`.
  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos || semi - i > 10) {
        out += raw[i++];
        continue;
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) {
          out += static_cast<char>(code);
        } else {
          out += '?';  // non-ASCII references degrade gracefully
        }
      } else {
        // Unknown entity: keep literally.
        out += raw.substr(i, semi - i + 1);
      }
      i = semi + 1;
    }
    return out;
  }

  Status ParseElement(Document* doc, NodeIndex parent) {
    if (depth_ >= kMaxXmlParseDepth) {
      return Status::ParseError(
          "element nesting exceeds maximum depth " +
          std::to_string(kMaxXmlParseDepth) + " at offset " +
          std::to_string(pos_));
    }
    ++depth_;
    Status s = ParseElementAtDepth(doc, parent);
    --depth_;
    return s;
  }

  Status ParseElementAtDepth(Document* doc, NodeIndex parent) {
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError("expected '<' at offset " +
                                std::to_string(pos_));
    }
    ++pos_;
    ULOAD_ASSIGN_OR_RETURN(std::string tag, ParseName());
    NodeIndex elem =
        doc->AddNode(NodeKind::kElement, std::move(tag), "", parent);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("unexpected end in tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      ULOAD_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') {
        return Status::ParseError("expected '=' after attribute " + name);
      }
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Status::ParseError("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Status::ParseError("unterminated attribute value");
      std::string value =
          DecodeEntities(input_.substr(start, pos_ - start));
      ++pos_;
      doc->AddNode(NodeKind::kAttribute, std::move(name), std::move(value),
                   elem);
    }

    if (LookingAt("/>")) {
      pos_ += 2;
      return Status::Ok();
    }
    ++pos_;  // consume '>'

    // Content.
    std::string text;
    auto flush_text = [&]() {
      if (StripWhitespace(text).empty()) {
        text.clear();
        return;
      }
      doc->AddNode(NodeKind::kText, "#text", DecodeEntities(text), elem);
      text.clear();
    };

    for (;;) {
      if (AtEnd()) {
        return Status::ParseError("unexpected end inside element '" +
                                  doc->node(elem).label + "'");
      }
      if (LookingAt("</")) {
        flush_text();
        pos_ += 2;
        ULOAD_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != doc->node(elem).label) {
          return Status::ParseError("mismatched close tag </" + close +
                                    "> for <" + doc->node(elem).label + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') {
          return Status::ParseError("expected '>' in close tag");
        }
        ++pos_;
        return Status::Ok();
      }
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA");
        }
        text += input_.substr(pos_ + 9, end - pos_ - 9);
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        ULOAD_RETURN_NOT_OK(ParseElement(doc, elem));
        continue;
      }
      text += input_[pos_++];
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<Document> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.Run();
}

}  // namespace uload
