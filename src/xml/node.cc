#include "xml/node.h"

namespace uload {

// Node is a plain data carrier; the kind names live here so diagnostics all
// print them the same way.
const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kText:
      return "text";
  }
  return "unknown";
}

}  // namespace uload
