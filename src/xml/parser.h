// Hand-written, non-validating XML parser producing a Document.
//
// Supports the subset needed for the paper's data sets: elements,
// attributes, character data, CDATA sections, comments, processing
// instructions and a DOCTYPE prolog (skipped), and the five predefined
// entities plus numeric character references. Whitespace-only text nodes
// between elements are dropped (data-centric convention).
#ifndef ULOAD_XML_PARSER_H_
#define ULOAD_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace uload {

Result<Document> ParseXml(std::string_view input);

}  // namespace uload

#endif  // ULOAD_XML_PARSER_H_
