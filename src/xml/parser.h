// Hand-written, non-validating XML parser producing a Document.
//
// Supports the subset needed for the paper's data sets: elements,
// attributes, character data, CDATA sections, comments, processing
// instructions and a DOCTYPE prolog (skipped), and the five predefined
// entities plus numeric character references. Whitespace-only text nodes
// between elements are dropped (data-centric convention).
//
// Robustness contract: ParseXml never crashes — truncated, garbage, or
// adversarial input always comes back as a ParseError Status. Element
// nesting is recursive-descent, so depth is capped at kMaxXmlParseDepth to
// keep hostile documents from exhausting the call stack.
#ifndef ULOAD_XML_PARSER_H_
#define ULOAD_XML_PARSER_H_

#include <cstddef>
#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace uload {

// Maximum element nesting depth ParseXml accepts; one level per recursive
// ParseElement frame, far above any real data-centric corpus and far below
// what would threaten the call stack.
inline constexpr size_t kMaxXmlParseDepth = 256;

Result<Document> ParseXml(std::string_view input);

}  // namespace uload

#endif  // ULOAD_XML_PARSER_H_
