#include "xml/serialize.h"

#include "common/string_util.h"
#include "xml/document.h"

namespace uload {
namespace {

void SerializeRec(const Document& doc, NodeIndex i, std::string* out) {
  const Node& n = doc.node(i);
  switch (n.kind) {
    case NodeKind::kText:
      *out += XmlEscape(n.value);
      return;
    case NodeKind::kAttribute:
      *out += n.label;
      *out += "=\"";
      *out += XmlEscape(n.value);
      *out += '"';
      return;
    case NodeKind::kDocument: {
      for (NodeIndex c : doc.Children(i)) SerializeRec(doc, c, out);
      return;
    }
    case NodeKind::kElement:
      break;
  }
  *out += '<';
  *out += n.label;
  std::vector<NodeIndex> kids = doc.Children(i);
  size_t first_non_attr = 0;
  for (NodeIndex c : kids) {
    if (!doc.node(c).is_attribute()) break;
    *out += ' ';
    SerializeRec(doc, c, out);
    ++first_non_attr;
  }
  if (first_non_attr == kids.size()) {
    *out += "/>";
    return;
  }
  *out += '>';
  for (size_t k = first_non_attr; k < kids.size(); ++k) {
    SerializeRec(doc, kids[k], out);
  }
  *out += "</";
  *out += n.label;
  *out += '>';
}

}  // namespace

std::string SerializeSubtree(const Document& doc, NodeIndex i) {
  std::string out;
  SerializeRec(doc, i, &out);
  return out;
}

}  // namespace uload
