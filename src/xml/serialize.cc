#include "xml/serialize.h"

#include <vector>

#include "common/string_util.h"

namespace uload {
namespace {

void SerializeRec(const DocumentStore& doc, NodeIndex i, std::string* out) {
  switch (doc.kind(i)) {
    case NodeKind::kText:
      *out += XmlEscape(doc.Value(i));
      return;
    case NodeKind::kAttribute:
      *out += doc.label(i);
      *out += "=\"";
      *out += XmlEscape(doc.Value(i));
      *out += '"';
      return;
    case NodeKind::kDocument: {
      for (NodeIndex c : doc.Children(i)) SerializeRec(doc, c, out);
      return;
    }
    case NodeKind::kElement:
      break;
  }
  *out += '<';
  *out += doc.label(i);
  std::vector<NodeIndex> kids = doc.Children(i);
  size_t first_non_attr = 0;
  for (NodeIndex c : kids) {
    if (!doc.is_attribute(c)) break;
    *out += ' ';
    SerializeRec(doc, c, out);
    ++first_non_attr;
  }
  if (first_non_attr == kids.size()) {
    *out += "/>";
    return;
  }
  *out += '>';
  for (size_t k = first_non_attr; k < kids.size(); ++k) {
    SerializeRec(doc, kids[k], out);
  }
  *out += "</";
  *out += doc.label(i);
  *out += '>';
}

}  // namespace

std::string SerializeSubtree(const DocumentStore& doc, NodeIndex i) {
  std::string out;
  SerializeRec(doc, i, &out);
  return out;
}

}  // namespace uload
