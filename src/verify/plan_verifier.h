// PlanVerifier: static analysis over logical and compiled physical plans.
//
// The thesis's physical-data-independence claim rests on the compiler always
// emitting plans whose schemas, order descriptors and structural-join
// placements are mutually consistent. Until now those invariants were only
// exercised dynamically, by differential tests; this module proves them
// statically, with no tuples flowing:
//
//  (1) Schema/type checking (VerifyLogicalPlan): the output schema of every
//      logical operator is inferred bottom-up, and every column referenced by
//      Select/Join predicates, projections, Retype maps, Sort keys, Navigate
//      sources and XML-construction bindings must resolve against the
//      inferred schema of its input. Diagnostics carry the operator path from
//      the plan root, the missing column, and the candidate columns.
//
//  (2) Order-descriptor soundness (VerifyPhysicalPlan): the order descriptor
//      is recomputed bottom-up through the compiled tree via each operator's
//      own propagation rule (PhysicalOperator::ProvableOrder), and
//      * every operator's advertised order must be covered by the recomputed
//        one (an operator may not claim an order it cannot prove), and
//      * every order *requirement* (PhysicalOperator::RequiredChildOrder —
//        the StackTree join family, the ExchangeMerge k-way merge) must be
//        covered by the input's advertised order, and
//      * every Sort_φ elision the compiler performed is re-checked as an
//        explicit obligation (PhysicalVerifyOptions::order_obligations).
//
//  (3) Structural/parallel placement rules (VerifyPhysicalPlan):
//      ExchangeMerge_φ only above order-producing worker pipelines,
//      ParallelScan_φ only inside an exchange's worker pipelines (a
//      partitioned scan anywhere else silently drops rows), no
//      order-sensitive operator above ExchangeProduce_φ, and
//      ExchangeProduce_φ at all only when the consumer waived result order
//      (ExecContext::allow_unordered_root), and no exchange nested inside
//      another exchange's worker pipeline.
//
// The dynamic leg of the verifier — per-batch schema validation — lives in
// verify/batch_validator.h.
//
// Wiring: Engine::Run/Explain verify the rewriter's combined plan before
// compiling it (a malformed plan surfaces as a Status instead of undefined
// behavior at execution time); CompilePhysicalPlan re-verifies the compiled
// tree when ExecContext::verify_plans() is set (the default); the randomized
// differential harness verifies every generated plan.
#ifndef ULOAD_VERIFY_PLAN_VERIFIER_H_
#define ULOAD_VERIFY_PLAN_VERIFIER_H_

#include <string>
#include <utility>
#include <vector>

#include "algebra/logical_plan.h"
#include "algebra/xml_template.h"
#include "exec/evaluator.h"
#include "exec/physical.h"

namespace uload {

// Infers the output schema of `plan` bottom-up, checking every column
// reference along the way. Returns the root schema, or a TypeError whose
// message carries the operator path, the offending column and the candidate
// columns of the input schema. Base-relation schemas come from `ctx` (the
// same context the plan would execute under); index-scan schemas resolve
// through the context's index hooks.
Result<SchemaPtr> VerifyLogicalPlan(const LogicalPlan& plan,
                                    const EvalContext& ctx);

// Checks that every value reference and iteration binding of `templ`
// resolves against `root_schema` (the schema of the tuples the template will
// be applied to — ApplyTemplateToTuple's contract, checked statically).
Status VerifyTemplate(const XmlTemplate& templ, const Schema& root_schema);

struct PhysicalVerifyOptions {
  // Mirrors ExecContext::allow_unordered_root: when false, any
  // ExchangeProduce in the tree is a verification failure.
  bool allow_unordered_root = false;
  // Sort_φ elision sites recorded by the compiler: for each entry the
  // operator's advertised order must cover the descriptor the elided sort
  // would have enforced.
  std::vector<std::pair<const PhysicalOperator*, OrderDescriptor>>
      order_obligations;
};

// Verifies a compiled physical operator tree: order-descriptor soundness,
// order-requirement coverage, exchange/parallel-scan placement, and
// per-operator schema consistency (join/merge keys resolve and are atomic,
// union inputs shape-compatible). Walks *all* exchange worker pipelines, not
// just the template pipeline.
Status VerifyPhysicalPlan(const PhysicalOperator& root,
                          const PhysicalVerifyOptions& opts = {});

}  // namespace uload

#endif  // ULOAD_VERIFY_PLAN_VERIFIER_H_
