#include "verify/plan_verifier.h"

#include <utility>

#include "exec/exchange.h"
#include "exec/order_descriptor.h"
#include "exec/plan_schemas.h"
#include "storage/store.h"

namespace uload {

namespace {

// --- Logical schema inference ------------------------------------------------

const char* OpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan: return "Scan";
    case PlanOp::kIndexScan: return "IndexScan";
    case PlanOp::kSelect: return "Select";
    case PlanOp::kProject: return "Project";
    case PlanOp::kProduct: return "Product";
    case PlanOp::kValueJoin: return "ValueJoin";
    case PlanOp::kStructuralJoin: return "StructuralJoin";
    case PlanOp::kUnion: return "Union";
    case PlanOp::kDifference: return "Difference";
    case PlanOp::kNest: return "Nest";
    case PlanOp::kUnnest: return "Unnest";
    case PlanOp::kXmlConstruct: return "XmlConstruct";
    case PlanOp::kDeriveParent: return "DeriveParent";
    case PlanOp::kNavigate: return "Navigate";
    case PlanOp::kPrefixNames: return "PrefixNames";
    case PlanOp::kRetype: return "Retype";
    case PlanOp::kSortOp: return "Sort";
    case PlanOp::kUnit: return "Unit";
  }
  return "?";
}

// One diagnostic shape for every unresolved-column report: the operator path
// from the plan root, the offending column, and the candidate columns of the
// schema it was resolved against.
Status Unresolved(const std::string& path, const char* what,
                  const std::string& attr, const Schema& schema) {
  return Status::TypeError("plan verification: at " + path + ": " + what +
                           " '" + attr + "' does not resolve; candidates: {" +
                           schema.ToString() + "}");
}

// Checks one dotted column reference. With `require_atomic`, the path's final
// attribute must be atomic (contexts that read the field with .atom()).
Status CheckColumn(const Schema& schema, const std::string& attr,
                   const std::string& path, const char* what,
                   bool require_atomic) {
  Result<AttrPath> r = ResolveAttrPath(schema, attr);
  if (!r.ok()) return Unresolved(path, what, attr, schema);
  if (require_atomic && AttrAt(schema, *r).is_collection) {
    return Status::TypeError("plan verification: at " + path + ": " + what +
                             " '" + attr +
                             "' names a collection attribute; an atomic "
                             "value is required");
  }
  return Status::Ok();
}

// Every column a predicate touches must resolve. Collection-valued leaves
// are legal (existential semantics yield zero atoms), so only resolution is
// checked.
Status CheckPredicate(const Predicate& p, const Schema& schema,
                      const std::string& path) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      return Status::Ok();
    case Predicate::Kind::kCompareConst:
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kNotNull:
      return CheckColumn(schema, p.lhs(), path, "predicate column", false);
    case Predicate::Kind::kCompareAttrs:
      ULOAD_RETURN_NOT_OK(
          CheckColumn(schema, p.lhs(), path, "predicate column", false));
      return CheckColumn(schema, p.rhs_attr(), path, "predicate column",
                         false);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      ULOAD_RETURN_NOT_OK(CheckPredicate(*p.left(), schema, path));
      return CheckPredicate(*p.right(), schema, path);
    case Predicate::Kind::kNot:
      return CheckPredicate(*p.left(), schema, path);
  }
  return Status::Internal("unhandled predicate kind");
}

// Mirror of the evaluator's NestedJoinSchema: a structural join whose
// ancestor attribute is nested applies at the joined level, rebuilding the
// collection schemas above it.
SchemaPtr NestedJoinOutputSchema(const Schema& schema, const Schema& right,
                                 const LogicalPlan& plan, const AttrPath& lp,
                                 size_t depth) {
  if (depth + 1 == lp.size()) {
    return JoinOutputSchema(schema, right, plan.variant(), plan.nest_as());
  }
  std::vector<Attribute> attrs = schema.attrs();
  const Attribute& a = schema.attr(lp[depth]);
  attrs[lp[depth]] = Attribute::Collection(
      a.name, NestedJoinOutputSchema(*a.nested, right, plan, lp, depth + 1),
      a.collection_kind);
  return Schema::Make(std::move(attrs));
}

// Template walker: `scope` is the schema value references resolve against
// (switched by iterate nodes), `root` the top-level tuple schema absolute
// references escape to.
Status CheckTemplateNode(const TemplateNode& node, const Schema& scope,
                         const Schema& root, const std::string& path) {
  switch (node.kind) {
    case TemplateNode::Kind::kText:
      return Status::Ok();
    case TemplateNode::Kind::kValueRef: {
      const Schema& s = node.absolute ? root : scope;
      Result<AttrPath> r = ResolveAttrPath(s, node.attr);
      if (!r.ok()) {
        return Unresolved(path,
                          node.absolute ? "absolute template value reference"
                                        : "template value reference",
                          node.attr, s);
      }
      return Status::Ok();
    }
    case TemplateNode::Kind::kElement:
    case TemplateNode::Kind::kGroup:
      break;
  }
  std::string here =
      path + "/<" +
      (node.kind == TemplateNode::Kind::kGroup ? "group" : node.tag) + ">";
  const Schema* child_scope = &scope;
  if (!node.iterate.empty()) {
    Result<AttrPath> r = ResolveAttrPath(scope, node.iterate);
    if (!r.ok()) {
      return Unresolved(here, "template iteration binding", node.iterate,
                        scope);
    }
    const Attribute& attr = AttrAt(scope, *r);
    if (!attr.is_collection) {
      return Status::TypeError(
          "plan verification: at " + here + ": template iterates over atomic "
          "attribute '" + node.iterate + "'");
    }
    if (r->size() == 1) child_scope = attr.nested.get();
    // Nested iteration paths are rejected at instantiation time
    // (NotImplemented); the scope switch only happens for the supported
    // top-level form, so deeper checks stay against the right schema.
  }
  for (const TemplateNode& c : node.children) {
    ULOAD_RETURN_NOT_OK(CheckTemplateNode(c, *child_scope, root, here));
  }
  return Status::Ok();
}

class LogicalVerifier {
 public:
  explicit LogicalVerifier(const EvalContext& ctx) : ctx_(ctx) {}

  Result<SchemaPtr> Infer(const LogicalPlan& p, const std::string& parent) {
    std::string path =
        parent.empty() ? OpName(p.op()) : parent + "/" + OpName(p.op());
    switch (p.op()) {
      case PlanOp::kScan: {
        auto it = ctx_.relations.find(p.relation());
        if (it != ctx_.relations.end()) return it->second->schema_ptr();
        // Virtual column-backed extents have no bound relation; their
        // schema comes from the view definition (storage/store.h).
        auto vit = ctx_.views.find(p.relation());
        if (vit != ctx_.views.end()) return vit->second->schema();
        return Status::NotFound("plan verification: at " + path +
                                ": relation '" + p.relation() +
                                "' not bound in evaluation context");
      }
      case PlanOp::kIndexScan:
        return InferIndexScan(p, path);
      case PlanOp::kSelect: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        ULOAD_RETURN_NOT_OK(CheckPredicate(*p.predicate(), *in, path));
        return in;
      }
      case PlanOp::kProject: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        for (const std::string& a : p.attrs()) {
          if (!ResolveAttrPath(*in, a).ok()) {
            return Unresolved(path, "projected column", a, *in);
          }
        }
        return ProjectionSchema(*in, p.attrs());
      }
      case PlanOp::kProduct: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr l, Infer(*p.left(), path));
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr r, Infer(*p.right(), path));
        return Schema::Concat(*l, *r);
      }
      case PlanOp::kValueJoin:
      case PlanOp::kStructuralJoin:
        return InferJoin(p, path);
      case PlanOp::kUnion: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr l, Infer(*p.left(), path));
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr r, Infer(*p.right(), path));
        if (l->size() != r->size()) {
          return Status::TypeError(
              "plan verification: at " + path + ": union of incompatible "
              "schemas: {" + l->ToString() + "} vs {" + r->ToString() + "}");
        }
        return l;
      }
      case PlanOp::kDifference: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr l, Infer(*p.left(), path));
        ULOAD_RETURN_NOT_OK(Infer(*p.right(), path).status());
        return l;
      }
      case PlanOp::kNest: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        return Schema::Make({Attribute::Collection(
            p.nest_as().empty() ? "A1" : p.nest_as(), std::move(in))});
      }
      case PlanOp::kUnnest:
        return InferUnnest(p, path);
      case PlanOp::kXmlConstruct: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        ULOAD_RETURN_NOT_OK(CheckTemplate(p.xml_template(), *in, path));
        return Schema::Make({Attribute::Atomic("xml")});
      }
      case PlanOp::kDeriveParent: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        ULOAD_RETURN_NOT_OK(CheckColumn(*in, p.left_attr(), path,
                                        "DeriveParent source column", true));
        std::vector<Attribute> attrs = in->attrs();
        attrs.push_back(Attribute::Atomic(p.nest_as()));
        return Schema::Make(std::move(attrs));
      }
      case PlanOp::kNavigate: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        ULOAD_RETURN_NOT_OK(CheckColumn(*in, p.left_attr(), path,
                                        "navigation source column", true));
        SchemaPtr emit = NavigateEmitSchema(p.nav_emit());
        return JoinOutputSchema(*in, *emit, p.variant(),
                                p.nest_as().empty() ? p.nav_emit().prefix
                                                    : p.nest_as());
      }
      case PlanOp::kPrefixNames: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        return PrefixedSchema(*in, p.nest_as());
      }
      case PlanOp::kRetype: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        Status shape = CheckSameShape(*in, *p.retype_schema());
        if (!shape.ok()) {
          return Status::TypeError("plan verification: at " + path + ": " +
                                   shape.message());
        }
        return p.retype_schema();
      }
      case PlanOp::kSortOp: {
        ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
        for (const std::string& a : p.attrs()) {
          ULOAD_RETURN_NOT_OK(CheckColumn(*in, a, path, "sort key", true));
        }
        return in;
      }
      case PlanOp::kUnit:
        return Schema::Make({});
    }
    return Status::Internal("unhandled plan operator");
  }

  static Status CheckTemplate(const XmlTemplate& templ, const Schema& root,
                              const std::string& path) {
    for (const TemplateNode& n : templ.roots) {
      ULOAD_RETURN_NOT_OK(CheckTemplateNode(n, root, root, path));
    }
    return Status::Ok();
  }

 private:
  Result<SchemaPtr> InferIndexScan(const LogicalPlan& p,
                                   const std::string& path) {
    SchemaPtr schema;
    if (ctx_.index_bind) {
      ULOAD_ASSIGN_OR_RETURN(IndexBinding b,
                             ctx_.index_bind(p.relation(), p.bindings()));
      schema = b.data->schema_ptr();
    } else if (ctx_.index_lookup) {
      ULOAD_ASSIGN_OR_RETURN(NestedRelation data,
                             ctx_.index_lookup(p.relation(), p.bindings()));
      schema = data.schema_ptr();
    } else {
      return Status::InvalidArgument(
          "plan verification: at " + path +
          ": plan contains IndexScan but context has no index hook");
    }
    for (const auto& [name, value] : p.bindings()) {
      (void)value;
      ULOAD_RETURN_NOT_OK(
          CheckColumn(*schema, name, path, "index binding column", true));
    }
    return schema;
  }

  Result<SchemaPtr> InferJoin(const LogicalPlan& p, const std::string& path) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr l, Infer(*p.left(), path));
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr r, Infer(*p.right(), path));
    // Top-level join attributes are read with .atom() on the hash/StackTree
    // fast paths, so they must be atomic; nested paths go through the
    // existential atom collector and only need to resolve.
    Result<AttrPath> lp = ResolveAttrPath(*l, p.left_attr());
    if (!lp.ok()) return Unresolved(path, "left join column", p.left_attr(), *l);
    Result<AttrPath> rp = ResolveAttrPath(*r, p.right_attr());
    if (!rp.ok()) {
      return Unresolved(path, "right join column", p.right_attr(), *r);
    }
    ULOAD_RETURN_NOT_OK(CheckColumn(*l, p.left_attr(), path,
                                    "left join column", lp->size() == 1));
    ULOAD_RETURN_NOT_OK(CheckColumn(*r, p.right_attr(), path,
                                    "right join column", rp->size() == 1));
    if (p.op() == PlanOp::kStructuralJoin && lp->size() > 1) {
      return NestedJoinOutputSchema(*l, *r, p, *lp, 0);
    }
    return JoinOutputSchema(*l, *r, p.variant(), p.nest_as());
  }

  Result<SchemaPtr> InferUnnest(const LogicalPlan& p,
                                const std::string& path) {
    ULOAD_ASSIGN_OR_RETURN(SchemaPtr in, Infer(*p.left(), path));
    Result<AttrPath> r = ResolveAttrPath(*in, p.attrs()[0]);
    if (!r.ok()) return Unresolved(path, "unnested column", p.attrs()[0], *in);
    if (r->size() != 1) {
      return Status::NotImplemented("unnest of non-top-level attribute");
    }
    const Attribute& attr = in->attr((*r)[0]);
    if (!attr.is_collection) {
      return Status::TypeError("plan verification: at " + path +
                               ": unnest of atomic attribute '" +
                               p.attrs()[0] + "'");
    }
    std::vector<Attribute> attrs;
    for (int i = 0; i < in->size(); ++i) {
      if (i == (*r)[0]) continue;
      attrs.push_back(in->attr(i));
    }
    for (const Attribute& a : attr.nested->attrs()) attrs.push_back(a);
    return Schema::Make(std::move(attrs));
  }

  const EvalContext& ctx_;
};

// --- Physical plan walk ------------------------------------------------------

struct PhysicalWalkState {
  const PhysicalVerifyOptions* opts = nullptr;
};

std::string PhysPath(const std::string& parent, const PhysicalOperator& op) {
  return parent.empty() ? op.label() : parent + "/" + op.label();
}

Status PhysError(const std::string& path, const std::string& msg) {
  return Status::InvalidArgument("physical plan verification: at " + path +
                                 ": " + msg);
}

// Walks `op` and its verification children. `under_exchange` is true inside
// a worker pipeline. `*tainted` is set when the subtree's output stream
// passes through an arrival-order ExchangeProduce.
Status WalkPhysical(const PhysicalOperator& op, const std::string& parent,
                    bool under_exchange, const PhysicalWalkState& st,
                    bool* tainted) {
  std::string path = PhysPath(parent, op);
  PhysOpKind kind = op.kind();
  bool is_exchange = kind == PhysOpKind::kExchangeMerge ||
                     kind == PhysOpKind::kExchangeProduce;

  // (3) Structural / parallel placement rules.
  if (kind == PhysOpKind::kParallelScan && !under_exchange) {
    return PhysError(path,
                     "ParallelScan_phi outside an exchange worker pipeline "
                     "would silently drop every other partition");
  }
  if (is_exchange && under_exchange) {
    return PhysError(path, "exchange nested inside another exchange's "
                           "worker pipeline");
  }
  if (kind == PhysOpKind::kExchangeProduce &&
      !st.opts->allow_unordered_root) {
    return PhysError(path,
                     "arrival-order ExchangeProduce_phi in a plan whose "
                     "consumer did not waive result order "
                     "(allow_unordered_root)");
  }
  if (kind == PhysOpKind::kExchangeMerge && op.order().empty()) {
    return PhysError(path,
                     "ExchangeMerge_phi above unordered worker pipelines "
                     "has no merge keys; use ExchangeProduce_phi or ordered "
                     "workers");
  }

  // (2) Order-descriptor soundness: the advertised order must be covered by
  // the order the operator can actually prove from its children.
  if (!OrderCovers(op.ProvableOrder(), op.order())) {
    return PhysError(
        path, "advertises order " + op.order().ToString() +
                  " but can only prove " + op.ProvableOrder().ToString() +
                  " from its input's order");
  }

  std::vector<PhysicalOperator*> children = op.VerifyChildren();
  const SchemaPtr* worker0_schema = nullptr;
  bool any_child_tainted = false;
  for (size_t i = 0; i < children.size(); ++i) {
    const PhysicalOperator& c = *children[i];
    bool child_tainted = false;
    ULOAD_RETURN_NOT_OK(WalkPhysical(c, path, under_exchange || is_exchange,
                                     st, &child_tainted));
    any_child_tainted = any_child_tainted || child_tainted;

    // Order-requirement coverage: the input must prove the order this
    // operator's algorithm assumes.
    OrderDescriptor required = op.RequiredChildOrder(i);
    if (!OrderCovers(c.order(), required)) {
      return PhysError(
          path, "requires input " + std::to_string(i) + " (" + c.label() +
                    ") ordered " + required.ToString() +
                    " but its advertised order is " + c.order().ToString());
    }

    // Exchange workers must agree on one schema; the collector re-tags
    // nothing.
    if (is_exchange) {
      if (worker0_schema == nullptr) {
        worker0_schema = &c.schema();
      } else {
        Status s = CheckSameShape(**worker0_schema, *c.schema());
        if (!s.ok()) {
          return PhysError(path, "worker " + std::to_string(i) +
                                     " schema diverges from worker 0: " +
                                     s.message());
        }
      }
    }
  }

  // Union re-tags right-side batches with the left schema, which is only
  // sound when the shapes agree.
  if (kind == PhysOpKind::kUnion && children.size() == 2) {
    Status s = CheckSameShape(*children[0]->schema(), *children[1]->schema());
    if (!s.ok()) {
      return PhysError(path,
                       "union inputs are not shape-compatible: " + s.message());
    }
  }

  // (3) Order-sensitive operators must never consume an arrival-order
  // stream: their output would be nondeterministic.
  if (op.OrderSensitive() && any_child_tainted) {
    return PhysError(path,
                     "order-sensitive operator consumes the nondeterministic "
                     "arrival-order stream of an ExchangeProduce_phi");
  }

  *tainted = any_child_tainted || kind == PhysOpKind::kExchangeProduce;
  return Status::Ok();
}

}  // namespace

Result<SchemaPtr> VerifyLogicalPlan(const LogicalPlan& plan,
                                    const EvalContext& ctx) {
  LogicalVerifier v(ctx);
  return v.Infer(plan, "");
}

Status VerifyTemplate(const XmlTemplate& templ, const Schema& root_schema) {
  return LogicalVerifier::CheckTemplate(templ, root_schema, "template");
}

Status VerifyPhysicalPlan(const PhysicalOperator& root,
                          const PhysicalVerifyOptions& opts) {
  PhysicalWalkState st;
  st.opts = &opts;
  bool tainted = false;
  ULOAD_RETURN_NOT_OK(WalkPhysical(root, "", false, st, &tainted));
  // Sort_φ elision obligations: every elided enforcer's order must still be
  // covered by the operator that stood in for it.
  for (const auto& [op, required] : opts.order_obligations) {
    if (!OrderCovers(op->order(), required)) {
      return PhysError(op->label(),
                       "Sort_phi" + required.ToString() +
                           " was elided here, but the operator's final "
                           "advertised order " + op->order().ToString() +
                           " no longer covers it");
    }
  }
  return Status::Ok();
}

}  // namespace uload
