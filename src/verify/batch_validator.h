// Runtime batch-shape validation (debug mode of the plan verifier).
//
// The static PlanVerifier (verify/plan_verifier.h) proves that every plan the
// compiler emits is schema- and order-consistent *before* a single tuple
// flows. The BatchValidator is its dynamic counterpart: in debug/test builds
// every TupleBatch an operator produces is cross-checked against the
// operator's statically inferred schema — field counts, atomic-vs-collection
// shape at every nesting level, and the batch's schema tag. A mismatch turns
// silent memory corruption (a field index into the wrong slot) into an
// immediate Status::Internal with the offending operator and tuple.
//
// Enabled per execution through ExecContext::validate_batches(); the
// compile-time default is ON in non-Release builds (CMake option
// ULOAD_VALIDATE_BATCHES), so the whole test suite runs validated.
#ifndef ULOAD_VERIFY_BATCH_VALIDATOR_H_
#define ULOAD_VERIFY_BATCH_VALIDATOR_H_

#include "algebra/tuple_batch.h"
#include "common/status.h"

namespace uload {

// TypeError unless `t` structurally matches `schema`: one field per
// attribute, atomic fields for atomic attributes (null allowed), collection
// fields for collection attributes, recursively. The message names the
// mismatched attribute path.
Status ValidateTupleShape(const Schema& schema, const Tuple& t);

// Validates every tuple of `batch` against `schema`, and the batch's own
// schema tag against `schema` (pointer fast path, deep Equals otherwise).
// The message carries the index of the first offending tuple.
Status ValidateBatch(const Schema& schema, const TupleBatch& batch);

}  // namespace uload

#endif  // ULOAD_VERIFY_BATCH_VALIDATOR_H_
