#include "verify/batch_validator.h"

namespace uload {

namespace {

Status ValidateShapeAt(const Schema& schema, const Tuple& t,
                       const std::string& at) {
  if (t.fields.size() != static_cast<size_t>(schema.size())) {
    return Status::TypeError(
        "tuple has " + std::to_string(t.fields.size()) + " fields, schema {" +
        schema.ToString() + "} expects " + std::to_string(schema.size()) +
        (at.empty() ? "" : " (at " + at + ")"));
  }
  for (int i = 0; i < schema.size(); ++i) {
    const Attribute& a = schema.attr(i);
    const Field& f = t.fields[static_cast<size_t>(i)];
    std::string here = at.empty() ? a.name : at + "." + a.name;
    if (a.is_collection != f.is_collection()) {
      return Status::TypeError(
          "attribute '" + here + "' is " +
          (a.is_collection ? "a collection" : "atomic") +
          " in the schema but the tuple field holds " +
          (f.is_collection() ? "a collection" : "an atom"));
    }
    if (f.is_collection()) {
      for (const Tuple& sub : f.collection()) {
        ULOAD_RETURN_NOT_OK(ValidateShapeAt(*a.nested, sub, here));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateTupleShape(const Schema& schema, const Tuple& t) {
  return ValidateShapeAt(schema, t, "");
}

Status ValidateBatch(const Schema& schema, const TupleBatch& batch) {
  if (&batch.schema() != &schema && !batch.schema().Equals(schema)) {
    return Status::TypeError("batch schema tag {" + batch.schema().ToString() +
                             "} does not match the operator schema {" +
                             schema.ToString() + "}");
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    Status s = ValidateTupleShape(schema, batch.tuple(i));
    if (!s.ok()) {
      return Status::TypeError("tuple " + std::to_string(i) + ": " +
                               s.message());
    }
  }
  return Status::Ok();
}

}  // namespace uload
