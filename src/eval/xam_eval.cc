#include "eval/xam_eval.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "eval/tag_collections.h"
#include "eval/tuple_intersect.h"
#include "exec/evaluator.h"

namespace uload {
namespace {

// Builds the relation for the subtree rooted at `id` (not ⊤). Internal
// invariant: the result always materializes <name>_ID as its first
// top-level attribute so parents can join against it; Π_χ trims later.
Result<NestedRelation> EvalSubtree(const Xam& xam, XamNodeId id,
                                   const DocumentStore& doc) {
  const XamNode& n = xam.node(id);

  // Base collection: always carry the ID; Tag/Val/Cont as specified.
  TagCollectionOptions opts;
  opts.prefix = n.name;
  opts.with_tag = n.stores_tag;
  opts.with_val = n.stores_val || !n.val_formula.IsTrue();
  opts.with_cont = n.stores_cont;
  opts.id_kind = n.id_kind;
  NestedRelation base =
      n.is_attribute
          ? AttributeCollection(
                doc,
                n.tag_value.empty() ? "" : n.tag_value.substr(1),  // drop '@'
                opts)
          : TagCollection(doc, n.tag_value, opts);

  // σ_χ: value-formula filter (applied here rather than via a plan Select so
  // general interval formulas work, not only v θ c atoms).
  if (!n.val_formula.IsTrue()) {
    NestedRelation filtered(base.schema_ptr(), base.kind());
    int val_idx = base.schema().IndexOf(n.name + "_Val");
    for (const Tuple& t : base.tuples()) {
      const AtomicValue& v = t.fields[val_idx].atom();
      // Untyped data: try both the string and its numeric reading.
      bool ok = n.val_formula.SatisfiedBy(v);
      if (!ok && v.is_string()) {
        double d;
        if (ParseNumber(v.as_string(), &d)) {
          ok = n.val_formula.SatisfiedBy(AtomicValue::Number(d));
        }
      }
      if (ok) filtered.Add(t);
    }
    base = std::move(filtered);
    // If the formula was only a predicate (Val not stored), drop the Val
    // column again so the schema matches ViewSchema.
    if (!n.stores_val) {
      std::vector<std::string> keep;
      for (const Attribute& a : base.schema().attrs()) {
        if (a.name != n.name + "_Val") keep.push_back(a.name);
      }
      EvalContext ctx;
      std::unordered_map<std::string, const NestedRelation*> rels{
          {"base", &base}};
      ctx.relations = rels;
      ULOAD_ASSIGN_OR_RETURN(
          base,
          Evaluate(*LogicalPlan::Project(LogicalPlan::Scan("base"), keep),
                   ctx));
    }
  }

  // Fold children left-to-right with structural joins (Def. 2.2.4).
  NestedRelation cur = std::move(base);
  for (const XamEdge& e : n.edges) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation child,
                           EvalSubtree(xam, e.child, doc));
    PlanPtr plan = LogicalPlan::StructuralJoin(
        LogicalPlan::Scan("L"), LogicalPlan::Scan("R"), n.name + "_ID",
        e.axis, xam.node(e.child).name + "_ID", e.variant,
        xam.node(e.child).name);
    std::unordered_map<std::string, const NestedRelation*> rels{
        {"L", &cur}, {"R", &child}};
    ULOAD_ASSIGN_OR_RETURN(cur, Evaluate(*plan, rels, &doc));
  }
  return cur;
}

// Dotted attribute paths of the view schema relative to the subtree rooted
// at `id`, with `prefix` accumulated from enclosing nested collections.
void CollectViewPaths(const Xam& xam, XamNodeId id, const std::string& prefix,
                      std::vector<std::string>* out) {
  const XamNode& n = xam.node(id);
  if (id != kXamRoot) {
    if (n.stores_id) out->push_back(prefix + n.name + "_ID");
    if (n.stores_tag) out->push_back(prefix + n.name + "_Tag");
    if (n.stores_val) out->push_back(prefix + n.name + "_Val");
    if (n.stores_cont) out->push_back(prefix + n.name + "_Cont");
  }
  for (const XamEdge& e : n.edges) {
    if (e.nested()) {
      // The nested collection attribute is named after the child node; the
      // child's own attributes live inside it.
      CollectViewPaths(xam, e.child,
                       prefix + xam.node(e.child).name + ".", out);
    } else if (e.semi()) {
      // Semijoined subtrees contribute no attributes.
    } else {
      CollectViewPaths(xam, e.child, prefix, out);
    }
  }
}

// Removes duplicate tuples inside nested collections (the top level is
// handled by the duplicate-eliminating projection); stable, so document
// order is preserved.
void DedupNestedCollections(const Schema& schema, TupleList* tuples) {
  for (int i = 0; i < schema.size(); ++i) {
    if (!schema.attr(i).is_collection) continue;
    for (Tuple& t : *tuples) {
      Field& f = t.fields[i];
      if (!f.is_collection()) continue;
      DedupNestedCollections(*schema.attr(i).nested, &f.collection());
      NestedRelation tmp(schema.attr(i).nested);
      tmp.mutable_tuples() = std::move(f.collection());
      tmp.Deduplicate();
      f.collection() = std::move(tmp.mutable_tuples());
    }
  }
}

}  // namespace

Result<NestedRelation> EvaluateXam(const Xam& xam, const DocumentStore& doc) {
  const XamNode& top = xam.node(kXamRoot);
  if (top.edges.empty()) {
    // ⊤ alone: a single tuple carrying the root id (Def. 2.2.2) — projected
    // to nothing by the view schema.
    return NestedRelation(Schema::Make({}));
  }

  // ⊤'s children: a / edge restricts matches to the root element; // allows
  // any element. Multiple children combine by cartesian product (they are
  // all descendants of the document root).
  NestedRelation cur;
  bool first = true;
  for (const XamEdge& e : top.edges) {
    ULOAD_ASSIGN_OR_RETURN(NestedRelation sub, EvalSubtree(xam, e.child, doc));
    if (e.axis == Axis::kChild) {
      // Keep only matches that are the document root element (or attributes
      // of the document node, which do not exist — so only the root).
      NestedRelation filtered(sub.schema_ptr(), sub.kind());
      const std::string id_attr = xam.node(e.child).name + "_ID";
      int idx = sub.schema().IndexOf(id_attr);
      NodeIndex root = doc.root();
      for (const Tuple& t : sub.tuples()) {
        const AtomicValue& v = t.fields[idx].atom();
        bool is_root = false;
        if (v.kind() == AtomicValue::Kind::kSid) {
          is_root = v.sid() == doc.sid(root);
        } else if (v.kind() == AtomicValue::Kind::kDewey) {
          is_root = v.dewey() == doc.Dewey(root);
        }
        if (is_root) filtered.Add(t);
      }
      sub = std::move(filtered);
    }
    if (e.semi()) {
      if (sub.empty()) {
        return NestedRelation(xam.ViewSchema(), CollectionKind::kList);
      }
      continue;  // existential only: no attributes contributed
    }
    if (e.nested()) {
      // Nest the whole subtree into a single tuple with one collection
      // (grouping at the root level). kNestOuter yields the tuple even when
      // the collection is empty; kNestJoin yields nothing then.
      if (sub.empty() && e.variant == JoinVariant::kNestJoin) {
        return NestedRelation(xam.ViewSchema(), CollectionKind::kList);
      }
      SchemaPtr ns = Schema::Make({Attribute::Collection(
          xam.node(e.child).name, sub.schema_ptr())});
      NestedRelation nested(ns, sub.kind());
      Tuple t;
      t.fields.emplace_back(sub.tuples());
      nested.Add(std::move(t));
      sub = std::move(nested);
    }
    if (first) {
      cur = std::move(sub);
      first = false;
    } else {
      std::unordered_map<std::string, const NestedRelation*> rels{
          {"L", &cur}, {"R", &sub}};
      ULOAD_ASSIGN_OR_RETURN(
          cur, Evaluate(*LogicalPlan::Product(LogicalPlan::Scan("L"),
                                              LogicalPlan::Scan("R")),
                        rels));
    }
  }

  // Order by document order of the first (outermost) ID column if requested.
  if (xam.ordered() && cur.schema().size() > 0) {
    cur.Sort();  // full-tuple sort; leading attr is the outermost ID
  }

  // Π_χ: retain exactly the specified attributes, then eliminate duplicate
  // tuples (Def. 2.2.3(2)(iii)). Pattern semantics are *sets* of return-node
  // tuples; for ordered XAMs the stable deduplication keeps the earliest
  // occurrence, preserving document order.
  std::vector<std::string> paths;
  CollectViewPaths(xam, kXamRoot, "", &paths);
  if (paths.empty()) {
    // No stored attributes anywhere: the view's information content is just
    // emptiness or not; represent as 0-column tuples.
    NestedRelation out(Schema::Make({}));
    for (int64_t i = 0; i < cur.size(); ++i) out.Add(Tuple{});
    out.Deduplicate();
    return out;
  }
  std::unordered_map<std::string, const NestedRelation*> rels{{"in", &cur}};
  ULOAD_ASSIGN_OR_RETURN(
      NestedRelation out,
      Evaluate(*LogicalPlan::Project(LogicalPlan::Scan("in"), paths,
                                     /*dedup=*/true),
               rels));
  DedupNestedCollections(out.schema(), &out.mutable_tuples());
  return out;
}

namespace {

void CollectBindingSchema(const Xam& xam, XamNodeId id,
                          std::vector<Attribute>* attrs) {
  const XamNode& n = xam.node(id);
  if (id != kXamRoot) {
    if (n.id_required) attrs->push_back(Attribute::Atomic(n.name + "_ID"));
    if (n.tag_required) attrs->push_back(Attribute::Atomic(n.name + "_Tag"));
    if (n.val_required) attrs->push_back(Attribute::Atomic(n.name + "_Val"));
  }
  for (const XamEdge& e : n.edges) {
    if (e.nested()) {
      std::vector<Attribute> sub;
      CollectBindingSchema(xam, e.child, &sub);
      if (!sub.empty()) {
        attrs->push_back(Attribute::Collection(xam.node(e.child).name,
                                               Schema::Make(sub)));
      }
    } else {
      CollectBindingSchema(xam, e.child, attrs);
    }
  }
}

}  // namespace

SchemaPtr BindingSchema(const Xam& xam) {
  std::vector<Attribute> attrs;
  CollectBindingSchema(xam, kXamRoot, &attrs);
  return Schema::Make(std::move(attrs));
}

Result<NestedRelation> EvaluateXamWithBindings(
    const Xam& xam, const DocumentStore& doc, const NestedRelation& bindings) {
  ULOAD_ASSIGN_OR_RETURN(NestedRelation full, EvaluateXam(xam, doc));
  NestedRelation out(full.schema_ptr(), full.kind());
  for (const Tuple& b : bindings.tuples()) {
    for (const Tuple& t : full.tuples()) {
      ULOAD_ASSIGN_OR_RETURN(
          std::optional<Tuple> m,
          TupleIntersect(full.schema(), t, bindings.schema(), b));
      if (m.has_value()) out.Add(std::move(*m));
    }
  }
  return out;
}

}  // namespace uload
