#include "eval/tuple_intersect.h"

namespace uload {

Result<std::optional<Tuple>> TupleIntersect(const Schema& t_schema,
                                            const Tuple& t,
                                            const Schema& b_schema,
                                            const Tuple& b) {
  Tuple out = t;
  for (int bi = 0; bi < b_schema.size(); ++bi) {
    const Attribute& battr = b_schema.attr(bi);
    int ti = t_schema.IndexOf(battr.name);
    if (ti < 0) {
      return Status::InvalidArgument("binding attribute '" + battr.name +
                                     "' not in tuple schema {" +
                                     t_schema.ToString() + "}");
    }
    const Attribute& tattr = t_schema.attr(ti);
    if (battr.is_collection != tattr.is_collection) {
      return Status::TypeError("binding attribute '" + battr.name +
                               "' kind mismatch");
    }
    if (!battr.is_collection) {
      // Lines 2-7: common atomic attributes must agree.
      const AtomicValue& tv = t.fields[ti].atom();
      const AtomicValue& bv = b.fields[bi].atom();
      if (bv.is_null()) continue;  // unconstrained binding slot
      if (!(tv == bv)) return std::optional<Tuple>();
      continue;
    }
    // Lines 8-11: common collection attributes intersect pairwise.
    const TupleList& tc = t.fields[ti].collection();
    const TupleList& bc = b.fields[bi].collection();
    TupleList merged;
    for (const Tuple& ts : tc) {
      for (const Tuple& bs : bc) {
        ULOAD_ASSIGN_OR_RETURN(
            std::optional<Tuple> sub,
            TupleIntersect(*tattr.nested, ts, *battr.nested, bs));
        if (sub.has_value()) {
          // ∪ is list concatenation; avoid exact duplicates from multiple
          // binding matches of the same sub-tuple.
          bool dup = false;
          for (const Tuple& m : merged) {
            if (TuplesEqual(m, *sub)) {
              dup = true;
              break;
            }
          }
          if (!dup) merged.push_back(std::move(*sub));
        }
      }
    }
    if (merged.empty()) return std::optional<Tuple>();
    out.fields[ti] = Field(std::move(merged));
  }
  return std::optional<Tuple>(std::move(out));
}

}  // namespace uload
