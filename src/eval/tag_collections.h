// Tag-derived collections (Def. 2.2.1): R_t / R_* over elements, R_t^α /
// R_*^α over attributes — the base relations of XAM semantics and of the
// XQuery algebraic translation. Computed against the storage-neutral
// DocumentStore interface, so every backend yields identical collections.
#ifndef ULOAD_EVAL_TAG_COLLECTIONS_H_
#define ULOAD_EVAL_TAG_COLLECTIONS_H_

#include <string>

#include "algebra/relation.h"
#include "xml/document_store.h"

namespace uload {

struct TagCollectionOptions {
  // Attribute-name prefix; the collection's columns are <prefix>_ID,
  // <prefix>_Tag, <prefix>_Val, <prefix>_Cont.
  std::string prefix = "e";
  bool with_tag = true;
  bool with_val = true;
  bool with_cont = true;
  // Identifier representation materialized in the ID column.
  IdKind id_kind = IdKind::kStructural;
};

// R_t(d) (elements with tag `label`), or R_*(d) when `label` is empty.
// Tuples follow document order.
NestedRelation TagCollection(const DocumentStore& doc,
                             const std::string& label,
                             const TagCollectionOptions& opts = {});

// R_t^α(d) (attributes named `name`), or R_*^α(d) when `name` is empty.
NestedRelation AttributeCollection(const DocumentStore& doc,
                                   const std::string& name,
                                   const TagCollectionOptions& opts = {});

// Identifier value of a document node under the chosen representation.
AtomicValue MakeNodeId(const DocumentStore& doc, NodeIndex n, IdKind kind);

}  // namespace uload

#endif  // ULOAD_EVAL_TAG_COLLECTIONS_H_
