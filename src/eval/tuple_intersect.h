// Nested tuple intersection t ∩ b (Algorithm 1 of §2.2.2): the data
// accessible from tuple t given binding tuple b. b's schema must be a
// (nested) projection of t's schema, matched by attribute names.
#ifndef ULOAD_EVAL_TUPLE_INTERSECT_H_
#define ULOAD_EVAL_TUPLE_INTERSECT_H_

#include <optional>

#include "algebra/relation.h"
#include "common/status.h"

namespace uload {

// Returns nullopt when no data of t is reachable given b (the "∅" case):
// some common atomic attribute disagrees, or a common collection attribute
// intersects to empty.
Result<std::optional<Tuple>> TupleIntersect(const Schema& t_schema,
                                            const Tuple& t,
                                            const Schema& b_schema,
                                            const Tuple& b);

}  // namespace uload

#endif  // ULOAD_EVAL_TUPLE_INTERSECT_H_
