// Algebraic XAM semantics over a document (thesis §2.2.2).
//
// [[χ]]_d is computed by a structural-join tree isomorphic to the XAM
// (Def. 2.2.4): each node contributes its tag-derived base collection
// filtered by its value formula; edges contribute structural
// (semi/outer/nest) joins; the final projection Π_χ retains exactly the
// specified attributes (Def. 2.2.5). R-marked XAMs are evaluated against a
// bindings list via nested tuple intersection (Def. 2.2.6).
#ifndef ULOAD_EVAL_XAM_EVAL_H_
#define ULOAD_EVAL_XAM_EVAL_H_

#include "algebra/relation.h"
#include "common/status.h"
#include "xam/xam.h"
#include "xml/document_store.h"

namespace uload {

// Evaluates a XAM without R markers (markers, if present, are ignored: this
// computes [[χ⁰]]_d). The result's schema is xam.ViewSchema(); if the XAM is
// ordered, tuples follow document order of the outermost returned node.
Result<NestedRelation> EvaluateXam(const Xam& xam, const DocumentStore& doc);

// Def. 2.2.6: the semantics of an access-restricted XAM given bindings.
// `bindings`' schema must use the same attribute names as the view schema,
// restricted to R-marked attributes.
Result<NestedRelation> EvaluateXamWithBindings(const Xam& xam,
                                               const DocumentStore& doc,
                                               const NestedRelation& bindings);

// The schema bindings for `xam` must have: its R-marked attributes, nested
// the same way as in ViewSchema().
SchemaPtr BindingSchema(const Xam& xam);

}  // namespace uload

#endif  // ULOAD_EVAL_XAM_EVAL_H_
