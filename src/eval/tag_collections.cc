#include "eval/tag_collections.h"

namespace uload {
namespace {

NestedRelation Collect(const DocumentStore& doc, const std::string& label,
                       bool attributes, const TagCollectionOptions& opts) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Atomic(opts.prefix + "_ID"));
  if (opts.with_tag) attrs.push_back(Attribute::Atomic(opts.prefix + "_Tag"));
  if (opts.with_val) attrs.push_back(Attribute::Atomic(opts.prefix + "_Val"));
  if (opts.with_cont) {
    attrs.push_back(Attribute::Atomic(opts.prefix + "_Cont"));
  }
  NestedRelation out(Schema::Make(std::move(attrs)), CollectionKind::kList);
  const int64_t n = doc.size();
  for (NodeIndex i = 1; i < n; ++i) {
    NodeKind k = doc.kind(i);
    if (attributes) {
      if (k != NodeKind::kAttribute) continue;
    } else {
      if (k != NodeKind::kElement) continue;
    }
    if (!label.empty() && doc.label(i) != label) continue;
    Tuple t;
    t.fields.emplace_back(MakeNodeId(doc, i, opts.id_kind));
    if (opts.with_tag) {
      t.fields.emplace_back(AtomicValue::String(std::string(doc.label(i))));
    }
    if (opts.with_val) {
      t.fields.emplace_back(AtomicValue::String(doc.Value(i)));
    }
    if (opts.with_cont) {
      t.fields.emplace_back(AtomicValue::String(doc.Content(i)));
    }
    out.Add(std::move(t));
  }
  return out;
}

}  // namespace

AtomicValue MakeNodeId(const DocumentStore& doc, NodeIndex n, IdKind kind) {
  if (kind == IdKind::kParental) {
    return AtomicValue::Dewey(doc.Dewey(n));
  }
  // Simple/ordered identifiers are physically materialized as the (pre,
  // post, depth) triple too; the XAM's IdKind governs what the *optimizer*
  // may assume about them, not the bytes on disk.
  return AtomicValue::Sid(doc.sid(n));
}

NestedRelation TagCollection(const DocumentStore& doc,
                             const std::string& label,
                             const TagCollectionOptions& opts) {
  return Collect(doc, label, /*attributes=*/false, opts);
}

NestedRelation AttributeCollection(const DocumentStore& doc,
                                   const std::string& name,
                                   const TagCollectionOptions& opts) {
  return Collect(doc, name, /*attributes=*/true, opts);
}

}  // namespace uload
