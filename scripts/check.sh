#!/usr/bin/env bash
# Tier-1 verification in both the normal and the sanitizer configuration:
#   scripts/check.sh          # build + ctest, then ASAN/UBSAN build + ctest
#   scripts/check.sh fast     # normal configuration only
set -euo pipefail
cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  (cd "$dir" && ctest --output-on-failure -j)
}

echo "== normal configuration =="
run_config build

if [[ "${1:-}" != "fast" ]]; then
  echo "== ASAN/UBSAN configuration =="
  run_config build-asan -DASAN=ON
fi

echo "All checks passed."
