#!/usr/bin/env bash
# Tier-1 verification in the normal and sanitizer configurations:
#   scripts/check.sh                    # normal, lint, bench smoke, ASAN/UBSAN, TSAN
#   scripts/check.sh fast               # normal configuration only
#   scripts/check.sh --fault-injection  # fault sweep + governor tests under
#                                       # ASAN/UBSAN and TSAN only
#   scripts/check.sh --backend-sweep    # pointer-vs-columnar differential
#                                       # grid + persisted-format robustness
#                                       # under ASAN/UBSAN only
#   scripts/check.sh --server-sweep     # query-service front-end: loopback
#                                       # server + differential tests, frame
#                                       # robustness under ASAN/UBSAN, the
#                                       # engine/server torture under TSAN,
#                                       # and a throughput-bench smoke run
# The lint leg runs clang-tidy (config in .clang-tidy) over src/ against the
# normal build's compile_commands.json; it is skipped with a notice when
# clang-tidy is not installed (CI installs it; see .github/workflows/ci.yml).
# The TSAN configuration runs only the threaded/executor tests (the Exchange
# worker pool, the physical engine, the parallel differential harness and the
# engine facade's batch/thread sweep); the rest of the suite is
# single-threaded and covered by the other configs.
# The fault-injection leg (DESIGN.md §8) sweeps injected operator failures,
# cancellations, timeouts, and budget exhaustion across the engine corpus:
# ASAN proves no aborted query leaks, TSAN proves the poison/drain/join
# teardown of the exchange pool is race-free.
# The server-sweep leg (DESIGN.md §10) covers the query service: the full
# server suite (sessions, admission, drain, malformed frames, wire-vs-
# in-process differential) in the normal build, the frame-parser robustness
# corpus under ASAN/UBSAN, the engine+server concurrency torture under TSAN
# (zero races is the acceptance bar), and the closed-loop throughput bench
# in --smoke mode, which also verifies every wire answer byte-identical to
# the in-process run.
# The backend-sweep leg (DESIGN.md §9) runs the storage-invariance bar under
# ASAN/UBSAN: the pointer-vs-columnar differential grid (byte-identical
# results across backends × batch sizes × thread budgets), the DocumentStore
# accessor parity + save/load round-trip suite, and the loader robustness
# corpus (truncations, bit flips, header lies on persisted images). It is
# single-threaded apart from the grid's thread sweep, which the ASAN build
# already exercises; no TSAN leg is needed beyond the main matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  (cd "$dir" && ctest --output-on-failure -j)
}

FAULT_FILTER='ExecFaultSweep.*:EngineGovernorTest.*:XmlParserRobustness.*'
BACKEND_FILTER='BackendDifferential.*:ColumnarStore.*:ColumnarRobustness.*'
SERVER_FILTER='ServerTest.*:ServerDifferentialTest.*:ServerFrameRobustness.*'
SERVER_FILTER="$SERVER_FILTER:WireCodes.*:AdmissionControl.*"
TORTURE_FILTER='*EngineConcurrencyTest*:ServerTest.*:AdmissionControl.*'

if [[ "${1:-}" == "--server-sweep" ]]; then
  echo "== server suite (normal configuration) =="
  cmake -B build -S .
  cmake --build build -j
  ./build/tests/uload_tests \
    --gtest_filter="$SERVER_FILTER:*EngineConcurrencyTest*"

  echo "== frame robustness + server suite under ASAN/UBSAN =="
  cmake -B build-asan -S . -DASAN=ON
  cmake --build build-asan -j
  ./build-asan/tests/uload_tests --gtest_filter="$SERVER_FILTER"

  echo "== concurrency torture under TSAN =="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/uload_tests \
    --gtest_filter="$TORTURE_FILTER"

  echo "== throughput bench smoke (Release) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j --target bench_server_throughput
  ./build-release/bench/bench_server_throughput --smoke

  echo "Server-sweep checks passed."
  exit 0
fi

if [[ "${1:-}" == "--backend-sweep" ]]; then
  echo "== backend sweep under ASAN/UBSAN =="
  cmake -B build-asan -S . -DASAN=ON
  cmake --build build-asan -j
  ./build-asan/tests/uload_tests --gtest_filter="$BACKEND_FILTER"

  echo "Backend-sweep checks passed."
  exit 0
fi

if [[ "${1:-}" == "--fault-injection" ]]; then
  echo "== fault injection under ASAN/UBSAN =="
  cmake -B build-asan -S . -DASAN=ON
  cmake --build build-asan -j
  ./build-asan/tests/uload_tests --gtest_filter="$FAULT_FILTER"

  echo "== fault injection under TSAN =="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/uload_tests \
    --gtest_filter="$FAULT_FILTER"

  echo "Fault-injection checks passed."
  exit 0
fi

echo "== normal configuration =="
run_config build

if [[ "${1:-}" != "fast" ]]; then
  echo "== lint (clang-tidy) =="
  # Any new diagnostic from the strict families in .clang-tidy fails the
  # build (WarningsAsErrors); readability-braces stays advisory.
  if command -v clang-tidy >/dev/null 2>&1; then
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build -quiet "src/.*\.cc$"
    else
      find src -name '*.cc' -print0 |
        xargs -0 -n 1 -P "$(nproc)" clang-tidy -p build --quiet
    fi
  else
    echo "clang-tidy not installed; skipping lint leg"
  fi

  echo "== bench smoke (Release) =="
  # Build every bench target in Release so bench sources can't rot, then run
  # the end-to-end query bench for one iteration over a tiny document — it
  # doubles as a Release-mode differential check (streaming vs legacy).
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j --target benches
  ./build-release/bench/bench_query_e2e --smoke

  echo "== ASAN/UBSAN configuration =="
  run_config build-asan -DASAN=ON

  echo "== TSAN configuration (executor tests) =="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/uload_tests \
    --gtest_filter='*Parallel*:*BoundedBatchQueue*:*Physical*:*Exec*:*Engine*:*IndexScan*:*Server*'
fi

echo "All checks passed."
