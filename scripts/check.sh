#!/usr/bin/env bash
# Tier-1 verification in the normal and sanitizer configurations:
#   scripts/check.sh          # normal, bench smoke, ASAN/UBSAN, TSAN
#   scripts/check.sh fast     # normal configuration only
# The TSAN configuration runs only the threaded/executor tests (the Exchange
# worker pool, the physical engine, the parallel differential harness and the
# engine facade's batch/thread sweep); the rest of the suite is
# single-threaded and covered by the other configs.
set -euo pipefail
cd "$(dirname "$0")/.."

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j
  (cd "$dir" && ctest --output-on-failure -j)
}

echo "== normal configuration =="
run_config build

if [[ "${1:-}" != "fast" ]]; then
  echo "== bench smoke (Release) =="
  # Build every bench target in Release so bench sources can't rot, then run
  # the end-to-end query bench for one iteration over a tiny document — it
  # doubles as a Release-mode differential check (streaming vs legacy).
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j --target benches
  ./build-release/bench/bench_query_e2e --smoke

  echo "== ASAN/UBSAN configuration =="
  run_config build-asan -DASAN=ON

  echo "== TSAN configuration (executor tests) =="
  cmake -B build-tsan -S . -DTSAN=ON
  cmake --build build-tsan -j
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/uload_tests \
    --gtest_filter='*Parallel*:*BoundedBatchQueue*:*Physical*:*Exec*:*Engine*:*IndexScan*'
fi

echo "All checks passed."
