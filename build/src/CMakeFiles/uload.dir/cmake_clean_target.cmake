file(REMOVE_RECURSE
  "libuload.a"
)
