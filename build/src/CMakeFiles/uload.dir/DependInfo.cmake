
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/logical_plan.cc" "src/CMakeFiles/uload.dir/algebra/logical_plan.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/logical_plan.cc.o.d"
  "/root/repo/src/algebra/predicate.cc" "src/CMakeFiles/uload.dir/algebra/predicate.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/predicate.cc.o.d"
  "/root/repo/src/algebra/relation.cc" "src/CMakeFiles/uload.dir/algebra/relation.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/relation.cc.o.d"
  "/root/repo/src/algebra/schema.cc" "src/CMakeFiles/uload.dir/algebra/schema.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/schema.cc.o.d"
  "/root/repo/src/algebra/tuple.cc" "src/CMakeFiles/uload.dir/algebra/tuple.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/tuple.cc.o.d"
  "/root/repo/src/algebra/value.cc" "src/CMakeFiles/uload.dir/algebra/value.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/value.cc.o.d"
  "/root/repo/src/algebra/xml_template.cc" "src/CMakeFiles/uload.dir/algebra/xml_template.cc.o" "gcc" "src/CMakeFiles/uload.dir/algebra/xml_template.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/uload.dir/common/status.cc.o" "gcc" "src/CMakeFiles/uload.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/uload.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/uload.dir/common/string_util.cc.o.d"
  "/root/repo/src/containment/canonical_model.cc" "src/CMakeFiles/uload.dir/containment/canonical_model.cc.o" "gcc" "src/CMakeFiles/uload.dir/containment/canonical_model.cc.o.d"
  "/root/repo/src/containment/containment.cc" "src/CMakeFiles/uload.dir/containment/containment.cc.o" "gcc" "src/CMakeFiles/uload.dir/containment/containment.cc.o.d"
  "/root/repo/src/containment/embedding.cc" "src/CMakeFiles/uload.dir/containment/embedding.cc.o" "gcc" "src/CMakeFiles/uload.dir/containment/embedding.cc.o.d"
  "/root/repo/src/containment/minimize.cc" "src/CMakeFiles/uload.dir/containment/minimize.cc.o" "gcc" "src/CMakeFiles/uload.dir/containment/minimize.cc.o.d"
  "/root/repo/src/eval/tag_collections.cc" "src/CMakeFiles/uload.dir/eval/tag_collections.cc.o" "gcc" "src/CMakeFiles/uload.dir/eval/tag_collections.cc.o.d"
  "/root/repo/src/eval/tuple_intersect.cc" "src/CMakeFiles/uload.dir/eval/tuple_intersect.cc.o" "gcc" "src/CMakeFiles/uload.dir/eval/tuple_intersect.cc.o.d"
  "/root/repo/src/eval/xam_eval.cc" "src/CMakeFiles/uload.dir/eval/xam_eval.cc.o" "gcc" "src/CMakeFiles/uload.dir/eval/xam_eval.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/uload.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/uload.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/order_descriptor.cc" "src/CMakeFiles/uload.dir/exec/order_descriptor.cc.o" "gcc" "src/CMakeFiles/uload.dir/exec/order_descriptor.cc.o.d"
  "/root/repo/src/exec/physical.cc" "src/CMakeFiles/uload.dir/exec/physical.cc.o" "gcc" "src/CMakeFiles/uload.dir/exec/physical.cc.o.d"
  "/root/repo/src/exec/plan_schemas.cc" "src/CMakeFiles/uload.dir/exec/plan_schemas.cc.o" "gcc" "src/CMakeFiles/uload.dir/exec/plan_schemas.cc.o.d"
  "/root/repo/src/exec/structural_join.cc" "src/CMakeFiles/uload.dir/exec/structural_join.cc.o" "gcc" "src/CMakeFiles/uload.dir/exec/structural_join.cc.o.d"
  "/root/repo/src/opt/cost.cc" "src/CMakeFiles/uload.dir/opt/cost.cc.o" "gcc" "src/CMakeFiles/uload.dir/opt/cost.cc.o.d"
  "/root/repo/src/rewrite/plan_pattern.cc" "src/CMakeFiles/uload.dir/rewrite/plan_pattern.cc.o" "gcc" "src/CMakeFiles/uload.dir/rewrite/plan_pattern.cc.o.d"
  "/root/repo/src/rewrite/query_rewriter.cc" "src/CMakeFiles/uload.dir/rewrite/query_rewriter.cc.o" "gcc" "src/CMakeFiles/uload.dir/rewrite/query_rewriter.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/CMakeFiles/uload.dir/rewrite/rewriter.cc.o" "gcc" "src/CMakeFiles/uload.dir/rewrite/rewriter.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/uload.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/uload.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/storage_models.cc" "src/CMakeFiles/uload.dir/storage/storage_models.cc.o" "gcc" "src/CMakeFiles/uload.dir/storage/storage_models.cc.o.d"
  "/root/repo/src/storage/store.cc" "src/CMakeFiles/uload.dir/storage/store.cc.o" "gcc" "src/CMakeFiles/uload.dir/storage/store.cc.o.d"
  "/root/repo/src/summary/path_summary.cc" "src/CMakeFiles/uload.dir/summary/path_summary.cc.o" "gcc" "src/CMakeFiles/uload.dir/summary/path_summary.cc.o.d"
  "/root/repo/src/workload/dataset_gen.cc" "src/CMakeFiles/uload.dir/workload/dataset_gen.cc.o" "gcc" "src/CMakeFiles/uload.dir/workload/dataset_gen.cc.o.d"
  "/root/repo/src/workload/dblp.cc" "src/CMakeFiles/uload.dir/workload/dblp.cc.o" "gcc" "src/CMakeFiles/uload.dir/workload/dblp.cc.o.d"
  "/root/repo/src/workload/pattern_gen.cc" "src/CMakeFiles/uload.dir/workload/pattern_gen.cc.o" "gcc" "src/CMakeFiles/uload.dir/workload/pattern_gen.cc.o.d"
  "/root/repo/src/workload/xmark.cc" "src/CMakeFiles/uload.dir/workload/xmark.cc.o" "gcc" "src/CMakeFiles/uload.dir/workload/xmark.cc.o.d"
  "/root/repo/src/workload/xmark_queries.cc" "src/CMakeFiles/uload.dir/workload/xmark_queries.cc.o" "gcc" "src/CMakeFiles/uload.dir/workload/xmark_queries.cc.o.d"
  "/root/repo/src/xam/formula.cc" "src/CMakeFiles/uload.dir/xam/formula.cc.o" "gcc" "src/CMakeFiles/uload.dir/xam/formula.cc.o.d"
  "/root/repo/src/xam/xam.cc" "src/CMakeFiles/uload.dir/xam/xam.cc.o" "gcc" "src/CMakeFiles/uload.dir/xam/xam.cc.o.d"
  "/root/repo/src/xam/xam_parser.cc" "src/CMakeFiles/uload.dir/xam/xam_parser.cc.o" "gcc" "src/CMakeFiles/uload.dir/xam/xam_parser.cc.o.d"
  "/root/repo/src/xam/xam_printer.cc" "src/CMakeFiles/uload.dir/xam/xam_printer.cc.o" "gcc" "src/CMakeFiles/uload.dir/xam/xam_printer.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/uload.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/uload.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/ids.cc" "src/CMakeFiles/uload.dir/xml/ids.cc.o" "gcc" "src/CMakeFiles/uload.dir/xml/ids.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/uload.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/uload.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/uload.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/uload.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serialize.cc" "src/CMakeFiles/uload.dir/xml/serialize.cc.o" "gcc" "src/CMakeFiles/uload.dir/xml/serialize.cc.o.d"
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/uload.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/uload.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/interp.cc" "src/CMakeFiles/uload.dir/xquery/interp.cc.o" "gcc" "src/CMakeFiles/uload.dir/xquery/interp.cc.o.d"
  "/root/repo/src/xquery/lexer.cc" "src/CMakeFiles/uload.dir/xquery/lexer.cc.o" "gcc" "src/CMakeFiles/uload.dir/xquery/lexer.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/uload.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/uload.dir/xquery/parser.cc.o.d"
  "/root/repo/src/xquery/pattern_extract.cc" "src/CMakeFiles/uload.dir/xquery/pattern_extract.cc.o" "gcc" "src/CMakeFiles/uload.dir/xquery/pattern_extract.cc.o.d"
  "/root/repo/src/xquery/translate.cc" "src/CMakeFiles/uload.dir/xquery/translate.cc.o" "gcc" "src/CMakeFiles/uload.dir/xquery/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
