# Empty compiler generated dependencies file for uload.
# This may be replaced when dependencies are built.
