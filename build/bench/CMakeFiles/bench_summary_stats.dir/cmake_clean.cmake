file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_stats.dir/bench_summary_stats.cc.o"
  "CMakeFiles/bench_summary_stats.dir/bench_summary_stats.cc.o.d"
  "bench_summary_stats"
  "bench_summary_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
