file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_xmark.dir/bench_containment_xmark.cc.o"
  "CMakeFiles/bench_containment_xmark.dir/bench_containment_xmark.cc.o.d"
  "bench_containment_xmark"
  "bench_containment_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
