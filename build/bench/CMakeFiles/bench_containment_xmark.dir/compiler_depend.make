# Empty compiler generated dependencies file for bench_containment_xmark.
# This may be replaced when dependencies are built.
