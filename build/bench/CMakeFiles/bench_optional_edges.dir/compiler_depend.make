# Empty compiler generated dependencies file for bench_optional_edges.
# This may be replaced when dependencies are built.
