file(REMOVE_RECURSE
  "CMakeFiles/bench_optional_edges.dir/bench_optional_edges.cc.o"
  "CMakeFiles/bench_optional_edges.dir/bench_optional_edges.cc.o.d"
  "bench_optional_edges"
  "bench_optional_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optional_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
