# Empty dependencies file for bench_pattern_extraction.
# This may be replaced when dependencies are built.
