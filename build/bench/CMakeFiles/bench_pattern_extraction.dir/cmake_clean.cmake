file(REMOVE_RECURSE
  "CMakeFiles/bench_pattern_extraction.dir/bench_pattern_extraction.cc.o"
  "CMakeFiles/bench_pattern_extraction.dir/bench_pattern_extraction.cc.o.d"
  "bench_pattern_extraction"
  "bench_pattern_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pattern_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
