# Empty compiler generated dependencies file for bench_containment_dblp.
# This may be replaced when dependencies are built.
