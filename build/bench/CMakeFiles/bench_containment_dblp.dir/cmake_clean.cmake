file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_dblp.dir/bench_containment_dblp.cc.o"
  "CMakeFiles/bench_containment_dblp.dir/bench_containment_dblp.cc.o.d"
  "bench_containment_dblp"
  "bench_containment_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
