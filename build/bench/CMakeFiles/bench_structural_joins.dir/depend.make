# Empty dependencies file for bench_structural_joins.
# This may be replaced when dependencies are built.
