file(REMOVE_RECURSE
  "CMakeFiles/bench_structural_joins.dir/bench_structural_joins.cc.o"
  "CMakeFiles/bench_structural_joins.dir/bench_structural_joins.cc.o.d"
  "bench_structural_joins"
  "bench_structural_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structural_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
