
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algebra_test.cc" "tests/CMakeFiles/uload_tests.dir/algebra_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/algebra_test.cc.o.d"
  "/root/repo/tests/containment_property_test.cc" "tests/CMakeFiles/uload_tests.dir/containment_property_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/containment_property_test.cc.o.d"
  "/root/repo/tests/containment_test.cc" "tests/CMakeFiles/uload_tests.dir/containment_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/containment_test.cc.o.d"
  "/root/repo/tests/cost_test.cc" "tests/CMakeFiles/uload_tests.dir/cost_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/cost_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/uload_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/formula_test.cc" "tests/CMakeFiles/uload_tests.dir/formula_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/formula_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/uload_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/minimize_test.cc" "tests/CMakeFiles/uload_tests.dir/minimize_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/minimize_test.cc.o.d"
  "/root/repo/tests/physical_test.cc" "tests/CMakeFiles/uload_tests.dir/physical_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/physical_test.cc.o.d"
  "/root/repo/tests/plan_pattern_test.cc" "tests/CMakeFiles/uload_tests.dir/plan_pattern_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/plan_pattern_test.cc.o.d"
  "/root/repo/tests/rewrite_test.cc" "tests/CMakeFiles/uload_tests.dir/rewrite_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/rewrite_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/uload_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/summary_test.cc" "tests/CMakeFiles/uload_tests.dir/summary_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/summary_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/uload_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/xam_eval_test.cc" "tests/CMakeFiles/uload_tests.dir/xam_eval_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/xam_eval_test.cc.o.d"
  "/root/repo/tests/xam_test.cc" "tests/CMakeFiles/uload_tests.dir/xam_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/xam_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/uload_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/xml_test.cc.o.d"
  "/root/repo/tests/xquery_test.cc" "tests/CMakeFiles/uload_tests.dir/xquery_test.cc.o" "gcc" "tests/CMakeFiles/uload_tests.dir/xquery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
