# Empty compiler generated dependencies file for uload_tests.
# This may be replaced when dependencies are built.
