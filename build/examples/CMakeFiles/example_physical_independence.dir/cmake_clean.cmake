file(REMOVE_RECURSE
  "CMakeFiles/example_physical_independence.dir/physical_independence.cpp.o"
  "CMakeFiles/example_physical_independence.dir/physical_independence.cpp.o.d"
  "example_physical_independence"
  "example_physical_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_physical_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
