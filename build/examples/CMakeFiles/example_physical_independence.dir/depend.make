# Empty dependencies file for example_physical_independence.
# This may be replaced when dependencies are built.
