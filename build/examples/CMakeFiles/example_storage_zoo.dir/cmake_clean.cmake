file(REMOVE_RECURSE
  "CMakeFiles/example_storage_zoo.dir/storage_zoo.cpp.o"
  "CMakeFiles/example_storage_zoo.dir/storage_zoo.cpp.o.d"
  "example_storage_zoo"
  "example_storage_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_storage_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
