# Empty dependencies file for example_storage_zoo.
# This may be replaced when dependencies are built.
