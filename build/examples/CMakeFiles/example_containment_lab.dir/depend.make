# Empty dependencies file for example_containment_lab.
# This may be replaced when dependencies are built.
