file(REMOVE_RECURSE
  "CMakeFiles/example_containment_lab.dir/containment_lab.cpp.o"
  "CMakeFiles/example_containment_lab.dir/containment_lab.cpp.o.d"
  "example_containment_lab"
  "example_containment_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_containment_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
