// Physical data independence in action (thesis Ch. 2): the SAME query runs
// over four different storage layouts. Only the XAM catalog changes; the
// optimizer derives a different plan each time, and all results agree.
#include <cstdio>

#include "rewrite/query_rewriter.h"
#include "storage/storage_models.h"
#include "workload/xmark.h"
#include "xquery/interp.h"
#include "xquery/parser.h"

int main() {
  using namespace uload;

  Document doc = GenerateXMark(XMarkScale(0.1));
  PathSummary summary = PathSummary::Build(&doc);
  std::printf("XMark-like document: %lld elements, summary %lld nodes\n\n",
              static_cast<long long>(doc.element_count()),
              static_cast<long long>(summary.size()));

  const char* query =
      "for $p in doc(\"x\")//people/person return "
      "<who>{$p/name/text()}</who>";
  auto ast = ParseQuery(query);
  if (!ast.ok()) return 1;
  auto direct = EvaluateQueryDirect(**ast, doc);
  if (!direct.ok()) return 1;

  struct Model {
    const char* name;
    std::vector<NamedXam> views;
  };
  std::vector<Model> models;
  models.push_back({"tag-partitioned (Timber/Natix-style)",
                    TagPartitionedModel(summary)});
  models.push_back({"path-partitioned (XQueC-style)",
                    PathPartitionedModel(summary)});
  models.push_back({"inlined shredding (Hybrid-style)",
                    InlinedShreddingModel(summary)});
  {
    std::vector<NamedXam> custom = TagPartitionedModel(summary);
    custom.push_back(TIndex("person", "name"));
    models.push_back({"tag-partitioned + tailored T-index",
                      std::move(custom)});
  }

  for (Model& model : models) {
    std::printf("=== storage: %s ===\n", model.name);
    Catalog catalog;
    for (NamedXam& v : model.views) {
      auto st = catalog.AddXam(v.name, std::move(v.xam), doc);
      if (!st.ok()) {
        std::printf("  %s\n", st.ToString().c_str());
        return 1;
      }
    }
    QueryRewriter rewriter(&summary, &catalog);
    auto rewritten = rewriter.Rewrite(**ast);
    if (!rewritten.ok()) {
      std::printf("  no rewriting: %s\n\n",
                  rewritten.status().ToString().c_str());
      continue;
    }
    const Rewriting& r = rewritten->pattern_rewritings[0];
    std::printf("  plan (%d operators, %zu views):\n", r.operator_count,
                r.views_used.size());
    std::printf("%s", r.plan->ToString().c_str());
    auto result = rewriter.Execute(*rewritten, &doc);
    std::printf("  result matches direct evaluation: %s\n\n",
                (result.ok() && *result == *direct) ? "yes" : "NO");
  }
  return 0;
}
