// A tour of the Chapter 4 machinery: canonical models, containment under
// summary constraints (including the cases only the summary makes true),
// decorated unions, and minimization.
#include <cstdio>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "workload/xmark.h"
#include "xam/xam_parser.h"

namespace {

uload::Xam P(const char* text) {
  auto x = uload::ParseXam(text);
  if (!x.ok()) {
    std::printf("pattern parse error: %s\n", x.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(x).value();
}

}  // namespace

int main() {
  using namespace uload;
  Document doc = GenerateXMark(XMarkScale(0.2));
  PathSummary summary = PathSummary::Build(&doc);
  std::printf("XMark summary: %lld nodes\n\n",
              static_cast<long long>(summary.size()));

  // 1. Canonical models (§4.3).
  Xam p = P(
      "xam\nnode e1 id=s\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  auto model = CanonicalModel(p, summary);
  std::printf("pattern //*[./name] has |mod_S(p)| = %zu canonical trees:\n",
              model.size());
  for (size_t i = 0; i < model.size() && i < 3; ++i) {
    std::printf("%s\n", model[i].ToString(summary).c_str());
  }

  // 2. Containment that only holds under the summary (§4.4).
  Xam via_star = P(
      "xam\nnode e1 label=people\nnode e2 id=s\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam person = P("xam\nnode e1 label=person id=s\nedge top // j e1\n");
  auto c1 = IsContained(via_star, person, summary);
  auto c2 = IsContained(person, via_star, summary);
  std::printf("//people/* vs //person: %s and %s -> %s under this summary\n",
              (c1.ok() && *c1) ? "⊆" : "⊄", (c2.ok() && *c2) ? "⊇" : "⊅",
              (c1.ok() && c2.ok() && *c1 && *c2) ? "equivalent"
                                                 : "not equivalent");

  // 3. Decorated union coverage (§4.4.2).
  Xam mid = P("xam\nnode e1 label=price id=s val>50\nedge top // j e1\n");
  Xam lo = P("xam\nnode e1 label=price id=s val<200\nedge top // j e1\n");
  Xam hi = P("xam\nnode e1 label=price id=s val>100\nedge top // j e1\n");
  auto single = IsContained(mid, lo, summary);
  auto both = IsContainedInUnion(mid, {&lo, &hi}, summary);
  std::printf("price>50 in price<200: %s; in (price<200 ∪ price>100): %s\n",
              (single.ok() && *single) ? "yes" : "no",
              (both.ok() && *both) ? "yes" : "no");

  // 4. Minimization (§4.5).
  Xam verbose = P(
      "xam\nnode e1 label=site\nnode e2 label=people\nnode e3 label=person\n"
      "node e4 label=name id=s val\n"
      "edge top / j e1\nedge e1 / j e2\nedge e2 / j e3\nedge e3 / j e4\n");
  auto minima = MinimizeGlobally(verbose, summary);
  if (minima.ok() && !minima->empty()) {
    std::printf("\n%d-node pattern minimizes to %d nodes:\n%s",
                verbose.size(), (*minima)[0].size(),
                (*minima)[0].ToString().c_str());
  }
  return 0;
}
