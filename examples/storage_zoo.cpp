// The storage zoo (thesis §2.3): express a spectrum of published storage
// schemes — Edge, Universal, node tables, structural-id tables, tag and
// path partitioning, blobs, value indexes — as XAM sets, materialize them
// for one document, and show what each stores.
#include <cstdio>

#include "storage/catalog.h"
#include "storage/storage_models.h"
#include "xam/xam_printer.h"
#include "xml/document.h"

int main() {
  using namespace uload;
  const char* xml =
      "<library>"
      "<book year=\"1999\"><title>Data on the Web</title>"
      "<author>Abiteboul</author><author>Suciu</author></book>"
      "<book year=\"2002\"><title>The Syntactic Web</title>"
      "<author>Tim</author></book>"
      "</library>";
  auto parsed = Document::Parse(xml);
  if (!parsed.ok()) return 1;
  Document doc = std::move(parsed).value();
  PathSummary summary = PathSummary::Build(&doc);

  struct Entry {
    const char* title;
    std::vector<NamedXam> views;
  };
  std::vector<Entry> zoo;
  zoo.push_back({"Edge model [Florescu&Kossmann]", EdgeModel()});
  zoo.push_back({"Universal table", UniversalModel(summary)});
  zoo.push_back({"Node table (Galax-style, native #1)", NodeTableModel()});
  zoo.push_back({"Structural ids (native #2)", StructuralIdModel()});
  zoo.push_back({"Tag-partitioned (Timber/Natix, native #3)",
                 TagPartitionedModel(summary)});
  zoo.push_back({"Path-partitioned (XQueC/Monet, native #4)",
                 PathPartitionedModel(summary)});
  zoo.push_back({"Inlined shredding (Shared/Hybrid)",
                 InlinedShreddingModel(summary)});
  zoo.push_back({"Blob store for books", {NonFragmentedStore("book")}});
  zoo.push_back({"Index: books by (year, title)",
                 {ValueIndex("book", {"year", "title"})}});
  zoo.push_back({"T-index on //book//author", {TIndex("book", "author")}});

  for (Entry& e : zoo) {
    std::printf("=== %s ===\n", e.title);
    Catalog catalog;
    int64_t tuples = 0;
    for (NamedXam& v : e.views) {
      auto st = catalog.AddXam(v.name, v.xam, doc);
      if (!st.ok()) {
        std::printf("  error: %s\n", st.ToString().c_str());
        continue;
      }
      tuples += catalog.Find(v.name)->data().size();
    }
    std::printf("  %zu structure(s), %lld tuples, ~%lld bytes\n",
                catalog.views().size(), static_cast<long long>(tuples),
                static_cast<long long>(catalog.TotalBytes()));
    // Show the first XAM of the model in the textual syntax.
    if (!e.views.empty()) {
      std::printf("  first XAM:\n");
      std::string text = PrintXam(e.views[0].xam);
      // Indent for readability.
      size_t pos = 0;
      while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) nl = text.size();
        std::printf("    %s\n", text.substr(pos, nl - pos).c_str());
        pos = nl + 1;
      }
    }
    // R-marked views support index lookups.
    const MaterializedView* idx = catalog.Find("idx_book_year_title");
    if (idx != nullptr) {
      auto hit = idx->Lookup({{"idx_book_year_title_n2_Val", AtomicValue::String("1999")},
                              {"idx_book_year_title_n3_Val",
                               AtomicValue::String("Data on the Web")}});
      if (hit.ok()) {
        std::printf("  index lookup (1999, 'Data on the Web') -> %lld row(s)\n",
                    static_cast<long long>(hit->size()));
      }
    }
    std::printf("\n");
  }
  return 0;
}
