// Quickstart: parse a document, build its summary, register materialized
// XAM views, and run an XQuery through the view-based rewriter — the whole
// physical-data-independence loop in one file.
#include <cstdio>

#include "rewrite/query_rewriter.h"
#include "storage/storage_models.h"
#include "xquery/interp.h"
#include "xquery/parser.h"

int main() {
  using namespace uload;

  // 1. An XML document.
  const char* xml =
      "<bib>"
      "<book><title>Data on the Web</title><year>1999</year>"
      "<author>Abiteboul</author><author>Suciu</author></book>"
      "<book><title>The Syntactic Web</title><year>2002</year>"
      "<author>Tim</author></book>"
      "</bib>";
  auto parsed = Document::Parse(xml);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Document doc = std::move(parsed).value();

  // 2. Its path summary (the structural constraints the optimizer uses).
  PathSummary summary = PathSummary::Build(&doc);
  std::printf("summary has %lld paths; e.g. book titles live on %s\n",
              static_cast<long long>(summary.size()),
              summary.PathString(summary.NodeByPath({"bib", "book", "title"}))
                  .c_str());

  // 3. A storage model, described to the optimizer purely as a XAM set.
  Catalog catalog;
  for (NamedXam& v : TagPartitionedModel(summary)) {
    auto st = catalog.AddXam(v.name, std::move(v.xam), doc);
    if (!st.ok()) {
      std::printf("materialization error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("catalog: %zu views, ~%lld bytes\n", catalog.views().size(),
              static_cast<long long>(catalog.TotalBytes()));

  // 4. An XQuery, rewritten over the views and executed.
  const char* query =
      "for $x in doc(\"bib.xml\")//book where $x/year = \"1999\" "
      "return <info>{$x/author}{$x/title}</info>";
  QueryRewriter rewriter(&summary, &catalog);
  auto rewritten = rewriter.Rewrite(query);
  if (!rewritten.ok()) {
    std::printf("rewrite error: %s\n", rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery pattern(s):\n%s",
              rewritten->translation.ToString().c_str());
  for (const Rewriting& r : rewritten->pattern_rewritings) {
    std::printf("rewritten plan (over views %s...):\n%s",
                r.views_used.empty() ? "-" : r.views_used[0].c_str(),
                r.plan->ToString().c_str());
  }
  auto result = rewriter.Execute(*rewritten, &doc);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nresult:\n%s\n", result->c_str());

  // 5. Cross-check against the direct interpreter.
  auto ast = ParseQuery(query);
  auto direct = EvaluateQueryDirect(**ast, doc);
  std::printf("\ndirect interpreter agrees: %s\n",
              (direct.ok() && *direct == *result) ? "yes" : "NO");
  return 0;
}
