// PlanVerifier tests (verify/plan_verifier.h): each class of ill-formed
// plan — dangling column references, misplaced parallel operators, bogus
// Sort_φ elisions, malformed templates — must fire a precise diagnostic,
// and every plan the engine actually compiles must verify clean (the
// corpus sweep at the bottom; the randomized harness in
// exec_parallel_test.cc sweeps generated patterns the same way).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "eval/tag_collections.h"
#include "exec/exchange.h"
#include "exec/physical.h"
#include "verify/batch_validator.h"
#include "verify/plan_verifier.h"
#include "workload/xmark.h"

namespace uload {
namespace {

class PlanVerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = GenerateXMark(XMarkScale(0.02));
    people_ = TagCollection(doc_, "person", {"p", true, true, false});
    names_ = TagCollection(doc_, "name", {"n", true, true, false});
    ctx_.relations = {{"people", &people_}, {"names", &names_}};
    ctx_.document = &doc_;
  }

  PlanPtr PeopleNamesJoin() {
    return LogicalPlan::StructuralJoin(
        LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
        Axis::kDescendant, "n_ID", JoinVariant::kInner);
  }

  Document doc_;
  NestedRelation people_;
  NestedRelation names_;
  EvalContext ctx_;
};

// --- Logical schema/type checking --------------------------------------------

TEST_F(PlanVerifierTest, CleanJoinPlanInfersOutputSchema) {
  auto schema = VerifyLogicalPlan(*PeopleNamesJoin(), ctx_);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(ResolveAttrPath(**schema, "p_ID").ok());
  EXPECT_TRUE(ResolveAttrPath(**schema, "n_Val").ok());
}

TEST_F(PlanVerifierTest, DanglingSelectColumnFiresDiagnostic) {
  PlanPtr plan = LogicalPlan::Select(
      LogicalPlan::Scan("people"),
      Predicate::CompareConst("p_Bogus", Comparator::kEq,
                              AtomicValue::String("x")));
  auto schema = VerifyLogicalPlan(*plan, ctx_);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kTypeError);
  // The diagnostic names the operator path, the column and the candidates.
  EXPECT_NE(schema.status().message().find("at Select"), std::string::npos)
      << schema.status().ToString();
  EXPECT_NE(schema.status().message().find("'p_Bogus'"), std::string::npos);
  EXPECT_NE(schema.status().message().find("candidates"), std::string::npos);
  EXPECT_NE(schema.status().message().find("p_ID"), std::string::npos);
}

TEST_F(PlanVerifierTest, DanglingProjectColumnFiresDiagnostic) {
  PlanPtr plan =
      LogicalPlan::Project(LogicalPlan::Scan("names"), {"n_ID", "n_Gone"});
  auto schema = VerifyLogicalPlan(*plan, ctx_);
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("projected column"),
            std::string::npos)
      << schema.status().ToString();
  EXPECT_NE(schema.status().message().find("'n_Gone'"), std::string::npos);
}

TEST_F(PlanVerifierTest, DanglingJoinColumnFiresDiagnostic) {
  PlanPtr plan = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
      Axis::kDescendant, "name_ID", JoinVariant::kInner);
  auto schema = VerifyLogicalPlan(*plan, ctx_);
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("right join column"),
            std::string::npos)
      << schema.status().ToString();
}

TEST_F(PlanVerifierTest, UnboundRelationFiresNotFound) {
  auto schema = VerifyLogicalPlan(*LogicalPlan::Scan("nope"), ctx_);
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kNotFound);
  EXPECT_NE(schema.status().message().find("'nope'"), std::string::npos);
}

TEST_F(PlanVerifierTest, SortOverCollectionAttributeFiresDiagnostic) {
  // Nest folds the whole input into one collection attribute; sorting on it
  // would read .atom() out of a collection field.
  PlanPtr plan = LogicalPlan::SortOp(
      LogicalPlan::Nest(LogicalPlan::Scan("people"), "grp"), {"grp"});
  auto schema = VerifyLogicalPlan(*plan, ctx_);
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("collection attribute"),
            std::string::npos)
      << schema.status().ToString();
}

TEST_F(PlanVerifierTest, ErrorsSurfaceThroughNestedOperators) {
  // The dangling column sits two operators deep; the path in the
  // diagnostic walks down to it.
  PlanPtr plan = LogicalPlan::SortOp(
      LogicalPlan::Select(
          LogicalPlan::Project(LogicalPlan::Scan("names"), {"n_Oops"}),
          Predicate::True()),
      {"n_ID"});
  auto schema = VerifyLogicalPlan(*plan, ctx_);
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("Sort/Select/Project"),
            std::string::npos)
      << schema.status().ToString();
}

// --- Template binding checks -------------------------------------------------

TEST_F(PlanVerifierTest, TemplateValueRefMustResolve) {
  XmlTemplate templ;
  templ.roots.push_back(TemplateNode::Element(
      "t", {TemplateNode::ValueRef("n_Missing")}));
  Status st = VerifyTemplate(templ, names_.schema());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("template value reference"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("'n_Missing'"), std::string::npos);

  templ.roots[0].children[0] = TemplateNode::ValueRef("n_Val");
  EXPECT_TRUE(VerifyTemplate(templ, names_.schema()).ok());
}

TEST_F(PlanVerifierTest, TemplateIterationRequiresCollection) {
  XmlTemplate templ;
  templ.roots.push_back(TemplateNode::Element(
      "t", {TemplateNode::Text("x")}, /*iterate=*/"n_Val"));
  Status st = VerifyTemplate(templ, names_.schema());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("iterates over atomic"), std::string::npos)
      << st.ToString();
}

// --- Physical placement and order soundness ----------------------------------

TEST_F(PlanVerifierTest, BareParallelScanIsRejected) {
  // A partitioned scan outside an exchange silently drops every other
  // partition's rows.
  ParallelScanPhys scan(&names_, "names", /*part=*/0, /*nparts=*/2);
  Status st = VerifyPhysicalPlan(scan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("outside an exchange"), std::string::npos)
      << st.ToString();
}

TEST_F(PlanVerifierTest, ExchangeProduceNeedsOrderWaiver) {
  auto make = [&] {
    std::vector<PhysicalPtr> workers;
    workers.push_back(
        std::make_unique<ParallelScanPhys>(&names_, "names", 0, 2));
    workers.push_back(
        std::make_unique<ParallelScanPhys>(&names_, "names", 1, 2));
    return std::make_unique<ExchangeProducePhys>(std::move(workers));
  };
  // Without the waiver the arrival-order collector is a verification error…
  Status st = VerifyPhysicalPlan(*make());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("allow_unordered_root"), std::string::npos)
      << st.ToString();
  // …with it, the same tree is legal.
  PhysicalVerifyOptions opts;
  opts.allow_unordered_root = true;
  EXPECT_TRUE(VerifyPhysicalPlan(*make(), opts).ok());
}

TEST_F(PlanVerifierTest, MergeAboveUnorderedWorkersIsRejected) {
  std::vector<PhysicalPtr> workers;
  workers.push_back(
      std::make_unique<ParallelScanPhys>(&names_, "names", 0, 2));
  workers.push_back(
      std::make_unique<ParallelScanPhys>(&names_, "names", 1, 2));
  ExchangeMergePhys merge(std::move(workers));
  Status st = VerifyPhysicalPlan(merge);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no merge keys"), std::string::npos)
      << st.ToString();
}

TEST_F(PlanVerifierTest, BogusSortElisionObligationIsCaught) {
  auto make_merge = [&] {
    std::vector<PhysicalPtr> workers;
    workers.push_back(std::make_unique<ParallelScanPhys>(
        &names_, "names", 0, 2, OrderDescriptor::On("n_ID")));
    workers.push_back(std::make_unique<ParallelScanPhys>(
        &names_, "names", 1, 2, OrderDescriptor::On("n_ID")));
    return std::make_unique<ExchangeMergePhys>(std::move(workers));
  };
  // Ordered workers make the merge legal on its own.
  auto merge = make_merge();
  ASSERT_TRUE(VerifyPhysicalPlan(*merge).ok());
  // An obligation recorded for an elided Sort_φ(n_Val) is not covered by
  // the merge's On(n_ID) order — eliding that sort was unsound.
  PhysicalVerifyOptions opts;
  opts.order_obligations.emplace_back(merge.get(),
                                      OrderDescriptor::On("n_Val"));
  Status st = VerifyPhysicalPlan(*merge, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("elided"), std::string::npos) << st.ToString();
  // A covered obligation passes.
  PhysicalVerifyOptions ok_opts;
  ok_opts.order_obligations.emplace_back(merge.get(),
                                         OrderDescriptor::On("n_ID"));
  EXPECT_TRUE(VerifyPhysicalPlan(*merge, ok_opts).ok());
}

// --- Batch validator (dynamic leg) -------------------------------------------

TEST_F(PlanVerifierTest, BatchValidatorCatchesShapeMismatch) {
  const Schema& schema = names_.schema();
  TupleBatch good(names_.schema_ptr(), 4);
  good.Add(names_.tuples()[0]);
  EXPECT_TRUE(ValidateBatch(schema, good).ok());

  TupleBatch bad(names_.schema_ptr(), 4);
  Tuple t;
  t.fields.emplace_back(AtomicValue::Number(1));  // too few fields
  bad.Add(std::move(t));
  Status st = ValidateBatch(schema, bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

// --- Corpus sweep ------------------------------------------------------------

// Every plan the engine compiles over the bib corpus must verify clean, and
// verification must not change any answer: Run with the verifier on equals
// Run with it off, query for query, model for model.
TEST(PlanVerifierCorpusTest, EngineCorpusVerifiesClean) {
  constexpr const char* kBib =
      "<bib>"
      "<book><title>Data on the Web</title><year>1999</year>"
      "<author>Abiteboul</author><author>Suciu</author></book>"
      "<book><title>The Syntactic Web</title><year>2002</year>"
      "<author>Tim</author></book>"
      "</bib>";
  const std::vector<std::string> queries = {
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>",
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>",
  };
  for (bool verify : {true, false}) {
    for (const std::string& q : queries) {
      auto d = Document::Parse(kBib);
      ASSERT_TRUE(d.ok());
      Engine::Options o;
      o.verify = verify;
      Engine engine(std::move(d).value(), o);
      ASSERT_TRUE(
          engine.InstallModel(TagPartitionedModel(engine.summary())).ok());
      auto run = engine.Run(q);
      ASSERT_TRUE(run.ok()) << "verify=" << verify << " " << q << ": "
                            << run.status().ToString();
      Engine::Options o2;
      o2.verify = !verify;
      auto d2 = Document::Parse(kBib);
      ASSERT_TRUE(d2.ok());
      Engine other(std::move(d2).value(), o2);
      ASSERT_TRUE(
          other.InstallModel(TagPartitionedModel(other.summary())).ok());
      auto run2 = other.Run(q);
      ASSERT_TRUE(run2.ok());
      EXPECT_EQ(*run, *run2) << q;
    }
  }
}

}  // namespace
}  // namespace uload
