#include <gtest/gtest.h>

#include "summary/path_summary.h"
#include "xml/document.h"

namespace uload {
namespace {

constexpr const char* kLibrary = R"(
<library>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</library>
)";

class SummaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = Document::Parse(kLibrary);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    doc_ = std::move(parsed).value();
    summary_ = PathSummary::Build(&doc_);
  }
  Document doc_;
  PathSummary summary_;
};

TEST_F(SummaryTest, OneNodePerPath) {
  // Paths: /library, /library/book, /library/book/@year,
  // /library/book/title, /library/book/title/#text, /library/book/author,
  // /library/book/author/#text, /library/phdthesis (+ its 5 sub-paths),
  // plus the document node.
  EXPECT_EQ(summary_.NodeByPath({"library"}), summary_.root());
  SummaryNodeId book = summary_.NodeByPath({"library", "book"});
  ASSERT_NE(book, kNoSummaryNode);
  // Both book elements map to one summary node.
  EXPECT_EQ(summary_.node(book).cardinality, 2);
  SummaryNodeId year = summary_.NodeByPath({"library", "book", "@year"});
  ASSERT_NE(year, kNoSummaryNode);
  EXPECT_EQ(summary_.node(year).cardinality, 1);
}

TEST_F(SummaryTest, PhiAnnotatesDocumentNodes) {
  SummaryNodeId book = summary_.NodeByPath({"library", "book"});
  NodeIndex b1 = doc_.Children(doc_.root())[0];
  NodeIndex b2 = doc_.Children(doc_.root())[1];
  EXPECT_EQ(doc_.node(b1).path_id, book);
  EXPECT_EQ(doc_.node(b2).path_id, book);
}

TEST_F(SummaryTest, EdgeAnnotations) {
  // Every book has exactly one title -> edge annotated '1'.
  SummaryNodeId title = summary_.NodeByPath({"library", "book", "title"});
  EXPECT_EQ(summary_.node(title).annotation, EdgeAnnotation::kOne);
  // Every book has >= 1 author, one has 2 -> '+'.
  SummaryNodeId author = summary_.NodeByPath({"library", "book", "author"});
  EXPECT_EQ(summary_.node(author).annotation, EdgeAnnotation::kPlus);
  // Only one of two books has @year -> '*'.
  SummaryNodeId year = summary_.NodeByPath({"library", "book", "@year"});
  EXPECT_EQ(summary_.node(year).annotation, EdgeAnnotation::kStar);
}

TEST_F(SummaryTest, AncestorQueries) {
  SummaryNodeId lib = summary_.root();
  SummaryNodeId title = summary_.NodeByPath({"library", "book", "title"});
  SummaryNodeId book = summary_.NodeByPath({"library", "book"});
  EXPECT_TRUE(summary_.IsAncestor(lib, title));
  EXPECT_TRUE(summary_.IsParent(book, title));
  EXPECT_FALSE(summary_.IsAncestor(title, book));
}

TEST_F(SummaryTest, DescendantsByLabel) {
  SummaryNodeId lib = summary_.root();
  std::vector<SummaryNodeId> titles = summary_.Descendants(lib, "title");
  EXPECT_EQ(titles.size(), 2u);  // book/title and phdthesis/title
  std::vector<SummaryNodeId> any = summary_.Descendants(lib, "");
  // All element+attribute descendants of /library.
  EXPECT_GT(any.size(), 6u);
}

TEST_F(SummaryTest, PathStrings) {
  SummaryNodeId title = summary_.NodeByPath({"library", "book", "title"});
  EXPECT_EQ(summary_.PathString(title), "/library/book/title");
}

TEST_F(SummaryTest, NodesWithLabel) {
  EXPECT_EQ(summary_.NodesWithLabel("title").size(), 2u);
  EXPECT_EQ(summary_.NodesWithLabel("book").size(), 1u);
  EXPECT_EQ(summary_.NodesWithLabel("nope").size(), 0u);
}

TEST_F(SummaryTest, StrongEdgeCountsIncludeOneToOne) {
  EXPECT_GT(summary_.strong_edge_count(), 0);
  EXPECT_GE(summary_.strong_edge_count(), summary_.one_to_one_edge_count());
}

TEST_F(SummaryTest, ConformanceOfOwnDocument) {
  EXPECT_TRUE(summary_.Conforms(doc_));
}

TEST_F(SummaryTest, NonConformingDocument) {
  auto other = Document::Parse("<library><journal/></library>");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(summary_.Conforms(*other));
}

TEST_F(SummaryTest, ConformingSubDocument) {
  // A document with a subset of paths that satisfies the annotations:
  // book needs title (1) and author (+).
  auto other = Document::Parse(
      "<library><book><title>t</title><author>a</author></book></library>");
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(summary_.Conforms(*other));
}

TEST_F(SummaryTest, AllOneToOneBetween) {
  SummaryNodeId lib = summary_.root();
  SummaryNodeId book = summary_.NodeByPath({"library", "book"});
  SummaryNodeId title = summary_.NodeByPath({"library", "book", "title"});
  // book -> title is 1; library -> book is not (two books under one library
  // still means ">= 1 per instance"... it is '+' at best, not '1').
  EXPECT_TRUE(summary_.AllOneToOneBetween(book, title));
  EXPECT_FALSE(summary_.AllOneToOneBetween(lib, title));
}

TEST(SummaryScaling, SummaryMuchSmallerThanDocument) {
  // Repeating structure: many books, one summary path set.
  std::string xml = "<lib>";
  for (int i = 0; i < 200; ++i) {
    xml += "<book><title>t</title><author>a</author></book>";
  }
  xml += "</lib>";
  auto doc = Document::Parse(xml);
  ASSERT_TRUE(doc.ok());
  Document d = std::move(doc).value();
  PathSummary s = PathSummary::Build(&d);
  EXPECT_LT(s.size(), 10);
  EXPECT_GT(d.element_count(), 400);
}

}  // namespace
}  // namespace uload

namespace uload {
namespace {

TEST(SummarySerialization, RoundTrip) {
  auto parsed = Document::Parse(
      "<lib><book year=\"1999\"><title>t</title><author>a</author>"
      "<author>b</author></book><book><title>u</title><author>c</author>"
      "</book></lib>");
  ASSERT_TRUE(parsed.ok());
  Document doc = std::move(parsed).value();
  PathSummary s = PathSummary::Build(&doc);
  std::string text = s.Serialize();
  auto restored = PathSummary::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), s.size());
  for (SummaryNodeId id = 0; id < s.size(); ++id) {
    EXPECT_EQ(restored->node(id).label, s.node(id).label);
    EXPECT_EQ(restored->node(id).parent, s.node(id).parent);
    EXPECT_EQ(restored->node(id).annotation, s.node(id).annotation);
    EXPECT_EQ(restored->node(id).cardinality, s.node(id).cardinality);
    EXPECT_EQ(restored->node(id).depth, s.node(id).depth);
  }
  EXPECT_EQ(restored->strong_edge_count(), s.strong_edge_count());
  EXPECT_EQ(restored->one_to_one_edge_count(), s.one_to_one_edge_count());
  // Structure queries behave identically.
  EXPECT_EQ(restored->PathString(restored->NodeByPath({"lib", "book"})),
            "/lib/book");
  EXPECT_TRUE(restored->IsAncestor(restored->root(),
                                   restored->NodeByPath(
                                       {"lib", "book", "title"})));
}

TEST(SummarySerialization, RejectsGarbage) {
  EXPECT_FALSE(PathSummary::Deserialize("nonsense").ok());
  EXPECT_FALSE(PathSummary::Deserialize("summary 5\n0 -1 0 2 1 a\n").ok());
}

}  // namespace
}  // namespace uload
