// Tests of XAM algebraic semantics (thesis §2.2.2) against the worked
// examples of Figures 2.5, 2.8, 2.9.
#include <gtest/gtest.h>

#include "eval/xam_eval.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

constexpr const char* kLibrary =
    "<library>"
    "<book year=\"1999\">"
    "<title>Data on the Web</title>"
    "<author>Abiteboul</author>"
    "<author>Suciu</author>"
    "</book>"
    "<book>"
    "<title>The Syntactic Web</title>"
    "<author>Tom Lerners-Bee</author>"
    "</book>"
    "<phdthesis year=\"2004\">"
    "<title>The Web: next generation</title>"
    "<author>Jim Smith</author>"
    "</phdthesis>"
    "</library>";

class XamEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = Document::Parse(kLibrary);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    doc_ = std::move(parsed).value();
  }

  Xam MustParse(const std::string& text) {
    auto x = ParseXam(text);
    EXPECT_TRUE(x.ok()) << x.status().ToString();
    return std::move(x).value();
  }

  NestedRelation Eval(const Xam& x) {
    auto r = EvaluateXam(x, doc_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Document doc_;
};

// χ1 of Fig. 2.8: //book with ID and Tag stored -> both books.
TEST_F(XamEvalTest, SimpleTagPattern) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s tag\n"
      "edge top // j e1\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 2);
  EXPECT_EQ(r.tuple(0).fields[1].atom().as_string(), "book");
  EXPECT_EQ(r.tuple(1).fields[1].atom().as_string(), "book");
}

// χ2 of Fig. 2.8: //book[s @year] — semijoin: only the 1999 book remains.
TEST_F(XamEvalTest, SemijoinEdge) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s tag\n"
      "node e2 label=@year\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 1);
  // Attributes of the semijoined child are absent.
  EXPECT_EQ(r.schema().size(), 2);
}

// χ3 of Fig. 2.8: nested join of titles under the year-filtered book.
TEST_F(XamEvalTest, NestedJoinEdge) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s tag\n"
      "node e2 label=@year\n"
      "node e3 label=title id=s tag val\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n"
      "edge e1 / nj e3\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 1);
  // Schema: e1_ID, e1_Tag, e3(...)
  int coll = r.schema().IndexOf("e3");
  ASSERT_GE(coll, 0);
  const TupleList& titles = r.tuple(0).fields[coll].collection();
  ASSERT_EQ(titles.size(), 1u);
  EXPECT_EQ(titles[0].fields[2].atom().as_string(), "Data on the Web");
}

// Value predicate: //book[year="1999"] via the @year attribute value.
TEST_F(XamEvalTest, ValuePredicate) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s\n"
      "node e2 label=@year val=\"1999\"\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n");
  NestedRelation r = Eval(x);
  EXPECT_EQ(r.size(), 1);

  Xam x2 = MustParse(
      "xam\n"
      "node e1 label=book id=s\n"
      "node e2 label=@year val=\"2004\"\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n");
  EXPECT_EQ(Eval(x2).size(), 0);
}

// Numeric comparison predicate on attribute values.
TEST_F(XamEvalTest, NumericRangePredicate) {
  Xam x = MustParse(
      "xam\n"
      "node e1 id=s tag\n"
      "node e2 label=@year val>2000\n"
      "edge top // j e1\n"
      "edge e1 / s e2\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 1);
  EXPECT_EQ(r.tuple(0).fields[1].atom().as_string(), "phdthesis");
}

// Outerjoin edge: all publications, year attached where present.
TEST_F(XamEvalTest, OuterjoinEdge) {
  Xam x = MustParse(
      "xam\n"
      "node e1 id=s tag\n"
      "node e2 label=@year val\n"
      "edge top // j e1\n"
      "edge e1 / o e2\n");
  NestedRelation r = Eval(x);
  // All elements: library, 2 books, phdthesis, 3 titles, 4 authors = 11.
  ASSERT_EQ(r.size(), 11);
  int with_year = 0;
  int val_idx = r.schema().IndexOf("e2_Val");
  for (const Tuple& t : r.tuples()) {
    if (!t.fields[val_idx].atom().is_null()) ++with_year;
  }
  EXPECT_EQ(with_year, 2);
}

// Descendant edge: //library//author spans both books and the thesis.
TEST_F(XamEvalTest, DescendantEdge) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=library id=s\n"
      "node e2 label=author val\n"
      "edge top / j e1\n"
      "edge e1 // j e2\n");
  NestedRelation r = Eval(x);
  EXPECT_EQ(r.size(), 4);
}

// Root / edge restricts to the document root element.
TEST_F(XamEvalTest, RootChildEdge) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s\n"
      "edge top / j e1\n");
  // book is not the root element.
  EXPECT_EQ(Eval(x).size(), 0);
  Xam x2 = MustParse(
      "xam\n"
      "node e1 label=library id=s\n"
      "edge top / j e1\n");
  EXPECT_EQ(Eval(x2).size(), 1);
}

// Multi-node conjunctive XAM: book with title value and author value pairs.
TEST_F(XamEvalTest, JoinTree) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s\n"
      "node e2 label=title val\n"
      "node e3 label=author val\n"
      "edge top // j e1\n"
      "edge e1 / j e2\n"
      "edge e1 / j e3\n");
  NestedRelation r = Eval(x);
  // Book1: 1 title x 2 authors = 2; book2: 1 x 1 = 1.
  EXPECT_EQ(r.size(), 3);
}

// Fig. 2.9 (χ4/χ5): restricted XAM evaluated with bindings.
TEST_F(XamEvalTest, RestrictedXamWithBindings) {
  Xam x = MustParse(
      "xam\n"
      "node e1 id=s tag!\n"
      "node e2 label=title val!\n"
      "node e3 label=author val\n"
      "edge top // j e1\n"
      "edge e1 / j e2\n"
      "edge e1 / nj e3\n");
  // Binding: Tag="book", title Val="Data on the Web".
  SchemaPtr bschema = BindingSchema(x);
  ASSERT_EQ(bschema->size(), 2);  // e1_Tag, e2_Val
  NestedRelation bindings(bschema);
  Tuple b;
  b.fields.emplace_back(AtomicValue::String("book"));
  b.fields.emplace_back(AtomicValue::String("Data on the Web"));
  bindings.Add(std::move(b));

  auto r = EvaluateXamWithBindings(x, doc_, bindings);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1);

  // A binding for an absent article yields nothing.
  NestedRelation bindings2(bschema);
  Tuple b2;
  b2.fields.emplace_back(AtomicValue::String("article"));
  b2.fields.emplace_back(AtomicValue::String("Data on the Web"));
  bindings2.Add(std::move(b2));
  auto r2 = EvaluateXamWithBindings(x, doc_, bindings2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 0);

  // Two bindings produce the union (Example 2.2.2): both books.
  NestedRelation bindings3(bschema);
  Tuple b3a;
  b3a.fields.emplace_back(AtomicValue::String("book"));
  b3a.fields.emplace_back(AtomicValue::String("Data on the Web"));
  bindings3.Add(std::move(b3a));
  Tuple b3b;
  b3b.fields.emplace_back(AtomicValue::String("book"));
  b3b.fields.emplace_back(AtomicValue::String("The Syntactic Web"));
  bindings3.Add(std::move(b3b));
  auto r3 = EvaluateXamWithBindings(x, doc_, bindings3);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 2);
}

// Content storage: non-fragmented (§2.1.1) — the whole subtree serialized.
TEST_F(XamEvalTest, ContentStorage) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s cont\n"
      "edge top // j e1\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 2);
  int cont = r.schema().IndexOf("e1_Cont");
  EXPECT_NE(r.tuple(0).fields[cont].atom().as_string().find(
                "<title>Data on the Web</title>"),
            std::string::npos);
}

// Ordered XAMs produce document order; unordered deduplicate.
TEST_F(XamEvalTest, OrderedSemantics) {
  Xam x = MustParse(
      "xam ordered\n"
      "node e1 label=author id=s val\n"
      "edge top // j e1\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 4);
  EXPECT_EQ(r.tuple(0).fields[1].atom().as_string(), "Abiteboul");
  EXPECT_EQ(r.tuple(3).fields[1].atom().as_string(), "Jim Smith");
}

// Duplicate elimination for unordered XAMs (Π with dedup): a Val-only view
// over authors has 4 rows but distinct values may collapse.
TEST_F(XamEvalTest, DedupOnUnordered) {
  auto dup = Document::Parse(
      "<r><a>x</a><a>x</a><a>y</a></r>");
  ASSERT_TRUE(dup.ok());
  Xam x = MustParse(
      "xam\n"
      "node e1 label=a val\n"
      "edge top // j e1\n");
  auto r = EvaluateXam(x, *dup);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2);  // "x", "y"
}

// Dewey identifiers materialize when the node declares id=p.
TEST_F(XamEvalTest, ParentalIdKind) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=title id=p\n"
      "edge top // j e1\n");
  NestedRelation r = Eval(x);
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r.tuple(0).fields[0].atom().kind(), AtomicValue::Kind::kDewey);
}

// View schema shape matches the specification.
TEST_F(XamEvalTest, ViewSchemaShape) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s tag\n"
      "node e2 label=author val\n"
      "edge top // j e1\n"
      "edge e1 / nj e2\n");
  SchemaPtr s = x.ViewSchema();
  EXPECT_EQ(s->ToString(), "e1_ID, e1_Tag, e2(e2_Val)");
  NestedRelation r = Eval(x);
  EXPECT_TRUE(r.schema().Equals(*s));
}

}  // namespace
}  // namespace uload

namespace uload {
namespace {

// Nested bindings (Example 2.2.2's shape): the required value sits inside a
// nested collection, so binding tuples carry nested lists and intersection
// recurses (Algorithm 1 lines 8-11).
TEST_F(XamEvalTest, RestrictedXamWithNestedBindings) {
  Xam x = MustParse(
      "xam\n"
      "node e1 label=book id=s\n"
      "node e2 label=author val!\n"
      "edge top // j e1\n"
      "edge e1 / nj e2\n");
  SchemaPtr bschema = BindingSchema(x);
  // Required Val nested inside the e2 collection.
  ASSERT_EQ(bschema->size(), 1);
  ASSERT_TRUE(bschema->attr(0).is_collection);

  NestedRelation bindings(bschema);
  Tuple b;
  TupleList authors;
  Tuple a;
  a.fields.emplace_back(AtomicValue::String("Suciu"));
  authors.push_back(std::move(a));
  b.fields.emplace_back(std::move(authors));
  bindings.Add(std::move(b));

  auto r = EvaluateXamWithBindings(x, doc_, bindings);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Only the first book has Suciu; its author collection intersects down to
  // the matching entry.
  ASSERT_EQ(r->size(), 1);
  int coll = r->schema().IndexOf("e2");
  ASSERT_GE(coll, 0);
  EXPECT_EQ(r->tuple(0).fields[coll].collection().size(), 1u);
}

}  // namespace
}  // namespace uload
