// Workload generators: structural sanity and summary-profile checks
// (Fig. 4.13 reproduction depends on these shapes).
#include <gtest/gtest.h>

#include "containment/embedding.h"
#include "workload/dataset_gen.h"
#include "workload/dblp.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"
#include "workload/xmark_queries.h"

namespace uload {
namespace {

TEST(XMarkGen, StructureAndSummary) {
  XMarkOptions opts;
  Document doc = GenerateXMark(opts);
  ASSERT_TRUE(doc.finalized());
  PathSummary s = PathSummary::Build(&doc);
  EXPECT_EQ(doc.node(doc.root()).label, "site");
  // Rich structure: summary in the hundreds, far smaller than the document.
  EXPECT_GT(s.size(), 150);
  EXPECT_LT(s.size(), 800);
  EXPECT_GT(doc.element_count(), 10 * s.size());
  // The signature XMark paths exist.
  EXPECT_NE(s.NodeByPath({"site", "regions", "europe", "item"}),
            kNoSummaryNode);
  EXPECT_NE(s.NodeByPath({"site", "people", "person", "profile"}),
            kNoSummaryNode);
  // Recursive parlist/listitem unfolds a few levels.
  EXPECT_FALSE(s.NodesWithLabel("listitem").empty());
  EXPECT_GT(s.NodesWithLabel("parlist").size(), 1u);
  // Markup tags occur on many paths (the thesis notes bold/emph inflate the
  // XMark summary).
  EXPECT_GT(s.NodesWithLabel("keyword").size(), 3u);
}

TEST(XMarkGen, DeterministicForSeed) {
  XMarkOptions opts;
  opts.items = 5;
  opts.people = 5;
  Document a = GenerateXMark(opts);
  Document b = GenerateXMark(opts);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.Content(a.root()), b.Content(b.root()));
}

TEST(XMarkGen, SummaryGrowsSublinearly) {
  Document small = GenerateXMark(XMarkScale(0.2));
  Document large = GenerateXMark(XMarkScale(1.0));
  PathSummary ss = PathSummary::Build(&small);
  PathSummary sl = PathSummary::Build(&large);
  EXPECT_GT(large.element_count(), 3 * small.element_count());
  // Summary grows by far less than the document (Fig. 4.13's observation).
  EXPECT_LT(static_cast<double>(sl.size()),
            1.5 * static_cast<double>(ss.size()));
}

TEST(DblpGen, Structure) {
  Document doc = GenerateDblp({300, 7});
  PathSummary s = PathSummary::Build(&doc);
  EXPECT_EQ(doc.node(doc.root()).label, "dblp");
  // DBLP's summary is small (thesis: 41-47 nodes).
  EXPECT_GT(s.size(), 20);
  EXPECT_LT(s.size(), 90);
  EXPECT_FALSE(s.NodesWithLabel("author").empty());
  EXPECT_FALSE(s.NodesWithLabel("title").empty());
}

TEST(DatasetGen, SummarySizeOrdering) {
  Document shakespeare = GenerateShakespeareLike();
  Document nasa = GenerateNasaLike();
  Document swissprot = GenerateSwissProtLike();
  Document xmark = GenerateXMark(XMarkScale(0.3));
  PathSummary s1 = PathSummary::Build(&shakespeare);
  PathSummary s2 = PathSummary::Build(&nasa);
  PathSummary s3 = PathSummary::Build(&swissprot);
  PathSummary s4 = PathSummary::Build(&xmark);
  // The thesis's relative order: Shakespeare < Nasa < SwissProt < XMark.
  EXPECT_LT(s1.size(), s2.size());
  EXPECT_LT(s2.size(), s3.size());
  EXPECT_LT(s3.size(), s4.size());
}

class PatternGenTest : public ::testing::TestWithParam<int> {};

TEST_P(PatternGenTest, GeneratedPatternsAreSatisfiable) {
  Document doc = GenerateXMark(XMarkScale(0.2));
  PathSummary s = PathSummary::Build(&doc);
  PatternGenerator gen(&s, 1000 + GetParam());
  PatternGenOptions opts;
  opts.nodes = 3 + GetParam() % 11;
  opts.return_nodes = 1 + GetParam() % 3;
  Xam p = gen.Generate(opts);
  EXPECT_GE(p.size(), 2);  // at least ⊤ + 1
  EXPECT_TRUE(IsSatisfiable(p, s)) << p.ToString();
  EXPECT_EQ(p.ReturnNodes().size(),
            static_cast<size_t>(opts.return_nodes));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PatternGenTest, ::testing::Range(0, 24));

TEST(XMarkQueries, AllTwentyParseAndEmbed) {
  Document doc = GenerateXMark(XMarkScale(0.3));
  PathSummary s = PathSummary::Build(&doc);
  std::vector<NamedXam> queries = XMarkQueryPatterns();
  ASSERT_EQ(queries.size(), 20u);
  for (const NamedXam& q : queries) {
    EXPECT_GT(q.xam.size(), 1) << q.name << " failed to parse";
    EXPECT_TRUE(IsSatisfiable(q.xam, s)) << q.name << "\n" << q.xam.ToString();
  }
}

}  // namespace
}  // namespace uload
