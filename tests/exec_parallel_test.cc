// Differential and property tests for the parallel exchange executor
// (exec/exchange.h): randomized XAM patterns are compiled into logical
// plans and executed three ways — materializing evaluator, serial batched
// engine, and parallel engine across thread budgets and batch sizes. The
// evaluator is compared canonically (sorted byte-for-byte); every parallel
// configuration must reproduce the serial engine's output *exactly*,
// because ExchangeMerge re-establishes the order descriptor and breaks
// ties toward lower worker indexes.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "eval/tag_collections.h"
#include "exec/exchange.h"
#include "exec/physical.h"
#include "verify/plan_verifier.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"

namespace uload {
namespace {

// --- BoundedBatchQueue primitives -------------------------------------------

TupleBatch OneTupleBatch(int64_t v) {
  TupleBatch b(Schema::Make({Attribute::Atomic("x")}), 4);
  Tuple t;
  t.fields.emplace_back(AtomicValue::Number(static_cast<double>(v)));
  b.Add(std::move(t));
  return b;
}

TEST(BoundedBatchQueueTest, FifoAcrossThreads) {
  BoundedBatchQueue q(/*capacity=*/2, /*producers=*/1);
  constexpr int kBatches = 100;
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) ASSERT_TRUE(q.Push(OneTupleBatch(i)));
    q.ProducerDone();
  });
  for (int i = 0; i < kBatches; ++i) {
    std::optional<TupleBatch> b = q.Pop();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->tuple(0).fields[0].atom().as_number(), i);
  }
  EXPECT_FALSE(q.Pop().has_value());
  producer.join();
}

TEST(BoundedBatchQueueTest, ShutdownUnblocksProducer) {
  BoundedBatchQueue q(/*capacity=*/1, /*producers=*/1);
  ASSERT_TRUE(q.Push(OneTupleBatch(0)));
  std::thread producer([&] {
    // The queue is full: this Push blocks until Shutdown rejects it.
    EXPECT_FALSE(q.Push(OneTupleBatch(1)));
    q.ProducerDone();
  });
  q.Shutdown();
  producer.join();
}

TEST(BoundedBatchQueueTest, PopDrainsAfterProducersDone) {
  BoundedBatchQueue q(/*capacity=*/4, /*producers=*/2);
  ASSERT_TRUE(q.Push(OneTupleBatch(1)));
  q.ProducerDone();
  q.ProducerDone();
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());
}

// --- Fixture over an XMark document -----------------------------------------

class ExecParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = GenerateXMark(XMarkScale(0.02));
    summary_ = PathSummary::Build(&doc_);
    people_ = TagCollection(doc_, "person", {"p", true, true, false});
    names_ = TagCollection(doc_, "name", {"n", true, true, false});
    ctx_.relations = {{"people", &people_}, {"names", &names_}};
    ctx_.document = &doc_;
  }

  PlanPtr PeopleNamesJoin() {
    return LogicalPlan::StructuralJoin(
        LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
        Axis::kDescendant, "n_ID", JoinVariant::kInner);
  }

  // Compiles `plan` into a logical plan over fresh base tag collections,
  // mirroring the XAM semantics (eval/xam_eval.cc): one collection per
  // pattern node, σ for the value formula, structural joins folding the
  // children left-to-right, a product across ⊤'s branches.
  PlanPtr BuildPlan(const Xam& xam, EvalContext* ctx) {
    PlanPtr plan;
    for (const XamEdge& e : xam.node(kXamRoot).edges) {
      PlanPtr sub = SubtreePlan(xam, e.child, ctx);
      plan = plan == nullptr
                 ? std::move(sub)
                 : LogicalPlan::Product(std::move(plan), std::move(sub));
    }
    return plan;
  }

  PlanPtr SubtreePlan(const Xam& xam, XamNodeId id, EvalContext* ctx) {
    const XamNode& n = xam.node(id);
    TagCollectionOptions opts;
    opts.prefix = n.name;
    opts.with_tag = n.stores_tag;
    opts.with_val = n.stores_val || !n.val_formula.IsTrue();
    opts.with_cont = n.stores_cont;
    opts.id_kind = n.id_kind;
    base_rels_.push_back(std::make_unique<NestedRelation>(
        n.is_attribute
            ? AttributeCollection(
                  doc_,
                  n.tag_value.empty() ? "" : n.tag_value.substr(1), opts)
            : TagCollection(doc_, n.tag_value, opts)));
    std::string rname = "base" + std::to_string(base_rels_.size());
    ctx->relations[rname] = base_rels_.back().get();
    PlanPtr plan = LogicalPlan::Scan(rname);
    if (!n.val_formula.IsTrue()) {
      plan = LogicalPlan::Select(std::move(plan),
                                 n.val_formula.ToPredicate(n.name + "_Val"));
    }
    for (const XamEdge& e : n.edges) {
      PlanPtr child = SubtreePlan(xam, e.child, ctx);
      plan = LogicalPlan::StructuralJoin(
          std::move(plan), std::move(child), n.name + "_ID", e.axis,
          xam.node(e.child).name + "_ID", e.variant, xam.node(e.child).name);
    }
    return plan;
  }

  // The core differential check: evaluator vs serial engine (canonical
  // order), then serial vs every (thread budget × batch size) combination
  // (exact order — ExchangeMerge keeps parallel execution deterministic).
  void CheckDifferential(const PlanPtr& plan, const EvalContext& ctx,
                         const std::string& what) {
    // Static analysis leg: every generated plan must pass the logical
    // verifier before anything executes. (The physical verifier runs inside
    // every CompilePhysicalPlan below — verify_plans defaults on — so each
    // compiled tree, serial and parallel, is order/placement-checked too.)
    auto verified = VerifyLogicalPlan(*plan, ctx);
    ASSERT_TRUE(verified.ok()) << what << ": " << verified.status().ToString();

    auto reference = Evaluate(*plan, ctx);
    ASSERT_TRUE(reference.ok()) << what << ": " << reference.status().ToString();

    ExecContext serial_exec;
    serial_exec.set_thread_budget(1);
    auto serial = ExecutePhysicalPlan(plan, ctx, &serial_exec);
    ASSERT_TRUE(serial.ok()) << what << ": " << serial.status().ToString();

    NestedRelation canonical_ref = *reference;
    NestedRelation canonical_serial = *serial;
    canonical_ref.Sort();
    canonical_serial.Sort();
    ASSERT_TRUE(canonical_ref.Equals(canonical_serial))
        << what << ": evaluator rows=" << reference->size()
        << " physical rows=" << serial->size();

    for (size_t budget : {size_t{1}, size_t{2}, size_t{8}}) {
      for (size_t batch : {size_t{1}, size_t{7}, size_t{1024}}) {
        ExecContext exec(batch);
        exec.set_thread_budget(budget);
        auto got = ExecutePhysicalPlan(plan, ctx, &exec);
        ASSERT_TRUE(got.ok())
            << what << " budget=" << budget << " batch=" << batch << ": "
            << got.status().ToString();
        ASSERT_TRUE(serial->Equals(*got))
            << what << " budget=" << budget << " batch=" << batch
            << ": parallel output diverges from serial (rows "
            << got->size() << " vs " << serial->size() << ")";
      }
    }
  }

  Document doc_;
  PathSummary summary_;
  NestedRelation people_;
  NestedRelation names_;
  EvalContext ctx_;
  std::vector<std::unique_ptr<NestedRelation>> base_rels_;
};

// --- ParallelScan ------------------------------------------------------------

TEST_F(ExecParallelTest, ParallelScanPartitionsCoverRelation) {
  for (size_t nparts : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                        size_t{1000000}}) {
    NestedRelation all(names_.schema_ptr());
    for (size_t part = 0; part < nparts; ++part) {
      ParallelScanPhys scan(&names_, "names", part, nparts);
      auto rel = ExecutePhysical(&scan);
      ASSERT_TRUE(rel.ok());
      for (const Tuple& t : rel->tuples()) all.Add(t);
      if (nparts > static_cast<size_t>(names_.size()) &&
          part > static_cast<size_t>(names_.size())) {
        break;  // remaining slices are empty by construction; sample a few
      }
    }
    if (nparts <= static_cast<size_t>(names_.size())) {
      EXPECT_TRUE(all.Equals(names_)) << "nparts=" << nparts;
    }
  }
}

TEST_F(ExecParallelTest, ParallelScanAdoptsProvenOrder) {
  ParallelScanPhys scan(&names_, "names", 0, 2);
  EXPECT_TRUE(scan.order().empty());
  EXPECT_TRUE(scan.TryAdoptOrder(OrderDescriptor::On("n_ID")));
  EXPECT_EQ(scan.order().keys()[0].attr, "n_ID");
  // An order the relation does not satisfy is not adopted.
  ParallelScanPhys scan2(&names_, "names", 0, 2);
  EXPECT_FALSE(scan2.TryAdoptOrder(OrderDescriptor::On("n_Val")));
}

// --- Exchange placement and determinism --------------------------------------

TEST_F(ExecParallelTest, ThreadBudgetOneStaysSerial) {
  ExecContext exec;
  exec.set_thread_budget(1);
  auto phys = CompilePhysicalPlan(PeopleNamesJoin(), ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ((*phys)->Describe().find("Exchange"), std::string::npos)
      << (*phys)->Describe();
}

TEST_F(ExecParallelTest, StructuralJoinParallelPlacement) {
  ExecContext exec;
  exec.set_thread_budget(4);
  auto phys = CompilePhysicalPlan(PeopleNamesJoin(), ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  std::string desc = (*phys)->Describe();
  EXPECT_NE(desc.find("ExchangeMerge_phi"), std::string::npos) << desc;
  EXPECT_NE(desc.find("ParallelScan_phi"), std::string::npos) << desc;
  EXPECT_NE(desc.find("StackTreeDesc_phi"), std::string::npos) << desc;
  // Document-ordered scans prove their order; no replicated Sort_phi.
  EXPECT_EQ(desc.find("Sort_phi"), std::string::npos) << desc;
}

TEST_F(ExecParallelTest, ParallelJoinBitIdenticalToSerial) {
  PlanPtr join = PeopleNamesJoin();
  ExecContext serial_exec;
  serial_exec.set_thread_budget(1);
  auto serial = ExecutePhysicalPlan(join, ctx_, &serial_exec);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->size(), 0);
  for (size_t budget : {size_t{2}, size_t{4}, size_t{8}}) {
    ExecContext exec;
    exec.set_thread_budget(budget);
    auto parallel = ExecutePhysicalPlan(join, ctx_, &exec);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(serial->Equals(*parallel)) << "budget=" << budget;
  }
}

TEST_F(ExecParallelTest, ParallelJoinReopenIsRepeatable) {
  ExecContext exec;
  exec.set_thread_budget(4);
  auto phys = CompilePhysicalPlan(PeopleNamesJoin(), ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  auto first = ExecutePhysical(phys->get());
  auto second = ExecutePhysical(phys->get());
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(first->Equals(*second));
}

TEST_F(ExecParallelTest, UnorderedRootCollectsThroughProduce) {
  PlanPtr join = PeopleNamesJoin();
  ExecContext serial_exec;
  serial_exec.set_thread_budget(1);
  auto serial = ExecutePhysicalPlan(join, ctx_, &serial_exec);
  ASSERT_TRUE(serial.ok());

  ExecContext exec;
  exec.set_thread_budget(4);
  exec.set_allow_unordered_root(true);
  auto phys = CompilePhysicalPlan(join, ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  EXPECT_NE((*phys)->Describe().find("ExchangeProduce_phi"),
            std::string::npos)
      << (*phys)->Describe();
  auto parallel = ExecutePhysical(phys->get());
  ASSERT_TRUE(parallel.ok());
  // Arrival order carries no guarantee; canonical compare only.
  NestedRelation canonical_serial = *serial;
  NestedRelation canonical_parallel = *parallel;
  canonical_serial.Sort();
  canonical_parallel.Sort();
  EXPECT_TRUE(canonical_serial.Equals(canonical_parallel));
}

TEST_F(ExecParallelTest, RootFilterChainParallelizesWhenUnordered) {
  PlanPtr chain = LogicalPlan::Select(
      LogicalPlan::Scan("names"),
      Predicate::NotNull("n_ID"));
  ExecContext serial_exec;
  serial_exec.set_thread_budget(1);
  auto serial = ExecutePhysicalPlan(chain, ctx_, &serial_exec);
  ASSERT_TRUE(serial.ok());

  ExecContext exec;
  exec.set_thread_budget(4);
  exec.set_allow_unordered_root(true);
  auto phys = CompilePhysicalPlan(chain, ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  EXPECT_NE((*phys)->Describe().find("ExchangeProduce_phi"),
            std::string::npos)
      << (*phys)->Describe();
  auto parallel = ExecutePhysical(phys->get());
  ASSERT_TRUE(parallel.ok());
  NestedRelation canonical_serial = *serial;
  NestedRelation canonical_parallel = *parallel;
  canonical_serial.Sort();
  canonical_parallel.Sort();
  EXPECT_TRUE(canonical_serial.Equals(canonical_parallel));
}

TEST_F(ExecParallelTest, AnalyzeRollsUpWorkerCounters) {
  ExecContext exec;
  exec.set_thread_budget(4);
  auto rel = ExecutePhysicalPlan(PeopleNamesJoin(), ctx_, &exec);
  ASSERT_TRUE(rel.ok());
  // After Close, workers 1..N-1 are folded into the template pipeline's
  // slots, so the partitioned scan's counter shows the whole relation.
  int64_t scan_tuples = 0;
  int64_t join_tuples = 0;
  for (const OperatorMetrics& m : exec.metrics()) {
    if (m.label.find("ParallelScan_phi") != std::string::npos) {
      scan_tuples += m.tuples_produced;
    }
    if (m.label.find("StackTreeDesc_phi") != std::string::npos) {
      join_tuples += m.tuples_produced;
    }
  }
  EXPECT_EQ(scan_tuples, names_.size());
  EXPECT_EQ(join_tuples, rel->size());
}

// --- Randomized differential harness -----------------------------------------

TEST_F(ExecParallelTest, RandomizedPatternsDifferential) {
  constexpr int kPatterns = 200;
  PatternGenOptions opts;
  int checked = 0;
  for (uint32_t seed = 1; seed <= kPatterns; ++seed) {
    PatternGenerator gen(&summary_, seed);
    Xam pattern = gen.Generate(opts);
    EvalContext ctx;
    ctx.document = &doc_;
    PlanPtr plan = BuildPlan(pattern, &ctx);
    ASSERT_NE(plan, nullptr) << "seed=" << seed;
    CheckDifferential(plan, ctx, "seed=" + std::to_string(seed));
    ++checked;
  }
  EXPECT_EQ(checked, kPatterns);
}

}  // namespace
}  // namespace uload
