// Backend-swap invariance, the PR's acceptance bar for physical data
// independence: the same query over the same storage model must produce
// byte-identical XML whether the document lives in the pointer tree or the
// columnar store — across the engine corpus (bib / DBLP / XMark), storage
// models, batch sizes {1, 1024}, and thread budgets {1, 4}. The pointer
// backend at defaults is the oracle; every other (backend, batch, threads)
// cell must match it exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "storage/storage_models.h"
#include "workload/dblp.h"
#include "workload/xmark.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book id=\"b1\"><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

struct CorpusDoc {
  const char* name;
  Document doc;
};

std::vector<CorpusDoc> MakeCorpus() {
  std::vector<CorpusDoc> corpus;
  {
    auto d = Document::Parse(kBib);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    corpus.push_back({"bib", std::move(d).value()});
  }
  corpus.push_back({"dblp", GenerateDblp({150, 7})});
  corpus.push_back({"xmark", GenerateXMark(XMarkScale(0.05))});
  return corpus;
}

std::vector<std::string> QueriesFor(const std::string& corpus) {
  if (corpus == "bib") {
    return {
        "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>",
        "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
        "return <a>{$x/author/text()}</a>",
        "for $x in doc(\"bib\")//phdthesis return <t>{$x/title/text()}</t>",
    };
  }
  if (corpus == "dblp") {
    return {
        "for $x in doc(\"d\")//article return <t>{$x/title/text()}</t>",
        "for $x in doc(\"d\")//inproceedings "
        "return <a>{$x/author/text()}</a>",
    };
  }
  return {
      "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>",
      "for $x in doc(\"x\")//item return <l>{$x/location/text()}</l>",
  };
}

struct ModelSpec {
  const char* name;
  std::vector<NamedXam> (*make)(const PathSummary&);
};

const ModelSpec kModels[] = {
    {"tag-partitioned", +[](const PathSummary& s) {
       return TagPartitionedModel(s);
     }},
    {"path-partitioned", +[](const PathSummary& s) {
       return PathPartitionedModel(s);
     }},
};

TEST(BackendDifferential, ByteIdenticalResultsAcrossTheWholeGrid) {
  const size_t kBatches[] = {1, 1024};
  const size_t kThreads[] = {1, 4};
  for (CorpusDoc& c : MakeCorpus()) {
    for (const ModelSpec& m : kModels) {
      // Oracle: pointer backend, default batch, one thread. A query a model
      // cannot rewrite (e.g. nested paths over path partitioning) is part of
      // the contract too: every cell must fail with the same code.
      std::vector<Result<std::string>> expected;
      {
        Engine oracle{Document(c.doc)};
        auto st = oracle.InstallModel(m.make(oracle.summary()));
        ASSERT_TRUE(st.ok()) << c.name << "/" << m.name << ": " << st.ToString();
        for (const std::string& q : QueriesFor(c.name)) {
          expected.push_back(oracle.Run(q));
        }
      }
      for (auto backend : {Engine::Options::Backend::kPointer,
                           Engine::Options::Backend::kColumnar}) {
        for (size_t batch : kBatches) {
          for (size_t threads : kThreads) {
            Engine::Options o;
            o.backend = backend;
            o.batch_size = batch;
            o.thread_budget = threads;
            Engine engine{Document(c.doc), o};
            auto st = engine.InstallModel(m.make(engine.summary()));
            ASSERT_TRUE(st.ok()) << st.ToString();
            const std::vector<std::string> queries = QueriesFor(c.name);
            for (size_t qi = 0; qi < queries.size(); ++qi) {
              auto out = engine.Run(queries[qi]);
              std::string cell =
                  std::string(c.name) + "/" + m.name +
                  (backend == Engine::Options::Backend::kColumnar
                       ? "/columnar"
                       : "/pointer") +
                  "/b=" + std::to_string(batch) +
                  "/t=" + std::to_string(threads) + "/q" + std::to_string(qi);
              if (expected[qi].ok()) {
                ASSERT_TRUE(out.ok())
                    << cell << ": " << out.status().ToString();
                EXPECT_EQ(*expected[qi], *out) << cell;
              } else {
                ASSERT_FALSE(out.ok()) << cell << ": oracle failed ("
                                       << expected[qi].status().ToString()
                                       << ") but this cell succeeded";
                EXPECT_EQ(expected[qi].status().code(), out.status().code())
                    << cell;
              }
            }
          }
        }
      }
    }
  }
}

TEST(BackendDifferential, SaveLoadEngineJoinsTheGridUnchanged) {
  // A Load()ed engine (mmap-backed columns) must agree with the in-memory
  // engines on the same queries.
  auto d = Document::Parse(kBib);
  ASSERT_TRUE(d.ok());
  Engine oracle{std::move(d).value()};
  auto st = oracle.InstallModel(TagPartitionedModel(oracle.summary()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string path = std::string(::testing::TempDir()) + "/grid.uldcol";
  st = oracle.Save(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = Engine::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  st = (*loaded)->InstallModel(TagPartitionedModel((*loaded)->summary()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (const std::string& q : QueriesFor("bib")) {
    auto a = oracle.Run(q);
    auto b = (*loaded)->Run(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*a, *b) << q;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uload
