// View-based rewriting (thesis Ch. 5): the rewriter must find S-equivalent
// plans over the storage XAMs, and executing those plans must produce the
// same data as evaluating the query pattern directly on the document.
#include <gtest/gtest.h>

#include "eval/xam_eval.h"
#include "rewrite/rewriter.h"
#include "storage/catalog.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

constexpr const char* kShop =
    "<site>"
    "<regions>"
    "<europe>"
    "<item id=\"i1\">"
    "<name>bike</name>"
    "<description><parlist><listitem><keyword>fast</keyword>"
    "</listitem></parlist></description>"
    "<mailbox><mail>m1</mail></mailbox>"
    "</item>"
    "<item id=\"i2\"><name>car</name>"
    "<description><parlist><listitem><keyword>red</keyword>"
    "</listitem></parlist></description>"
    "</item>"
    "</europe>"
    "</regions>"
    "<people><person><name>Ann</name><age>30</age></person>"
    "<person><name>Bob</name><age>40</age></person></people>"
    "</site>";

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kShop);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }

  Xam P(const std::string& text) {
    auto x = ParseXam(text);
    EXPECT_TRUE(x.ok()) << x.status().ToString();
    return std::move(x).value();
  }

  // Registers `views` in a catalog and returns a rewriter over them.
  void Setup(std::vector<NamedXam> views) {
    catalog_ = Catalog();
    for (const NamedXam& v : views) {
      auto st = catalog_.AddXam(v.name, v.xam, doc_);
      ASSERT_TRUE(st.ok()) << v.name << ": " << st.ToString();
    }
    views_ = std::move(views);
  }

  // Rewrites `query`, executes the best plan, and checks the result data
  // equals the query pattern's direct evaluation (ignoring column names).
  void CheckRewriteExecutes(const Xam& query, int expect_min_results = 1,
                            const RewriteOptions& opts = {}) {
    Rewriter rewriter(&summary_, views_);
    RewriteStats stats;
    auto rewritings = rewriter.Rewrite(query, opts, &stats);
    ASSERT_TRUE(rewritings.ok()) << rewritings.status().ToString();
    ASSERT_GE(static_cast<int>(rewritings->size()), expect_min_results)
        << "no rewriting found; candidates=" << stats.candidates_generated;
    auto direct = EvaluateXam(query, doc_);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EvalContext ctx = catalog_.MakeEvalContext(&doc_);
    for (const Rewriting& r : *rewritings) {
      auto got = Evaluate(*r.plan, ctx);
      ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n"
                            << r.plan->ToString();
      EXPECT_TRUE(SameData(*direct, *got))
          << "plan:\n"
          << r.plan->ToString() << "pattern:\n"
          << r.pattern.ToString() << "direct:\n"
          << direct->ToString() << "got:\n"
          << got->ToString();
    }
  }

  // Bag equality ignoring attribute names (positions must line up).
  static bool SameData(const NestedRelation& a, const NestedRelation& b) {
    if (a.size() != b.size()) return false;
    if (a.schema().size() != b.schema().size()) return false;
    NestedRelation x = a;
    NestedRelation y = b;
    x.Sort();
    y.Sort();
    for (int64_t i = 0; i < x.size(); ++i) {
      if (!TuplesEqual(x.tuple(i), y.tuple(i))) return false;
    }
    return true;
  }

  Document doc_;
  PathSummary summary_;
  Catalog catalog_;
  std::vector<NamedXam> views_;
};

TEST_F(RewriteTest, IdenticalViewIsARewriting) {
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Setup({{"exact", q}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, ProjectionOfWiderView) {
  // The view stores more attributes than the query needs.
  Xam v = P(
      "xam\nnode e1 label=person id=s tag cont\nnode e2 label=name id=s val "
      "cont\nedge top // j e1\nedge e1 / j e2\n");
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Setup({{"wide", v}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, StructuralJoinOfTagViews) {
  // Tag-partitioned storage: person ids and name ids+values in separate
  // views; the rewriting is a structural join (QEP6-style).
  Setup(TagPartitionedModel(summary_));
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, PathPartitionedRewriting) {
  Setup(PathPartitionedModel(summary_));
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, ValueSelectionCompensation) {
  // View stores all ages; query wants age = 30: σ compensates (§5.3).
  Xam v = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=age id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=age id=s val val=\"30\"\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Setup({{"ages", v}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, OptionalViewStrictQuery) {
  // The view keeps items without mail (optional); the query wants only
  // items with mail: σ not-null compensates (§5.2's "summary-based
  // optimization" in reverse).
  Xam v = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=mail id=s val\n"
      "edge top // j e1\nedge e1 // o e2\n");
  Xam q = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=mail id=s val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  Setup({{"maybe_mail", v}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, NavigationFromStoredIds) {
  // No view stores keywords; the item view's ids let the rewriter navigate.
  Xam v = P(
      "xam\nnode e1 label=item id=s\n"
      "edge top // j e1\n");
  Xam q = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=keyword id=s val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  Setup({{"items", v}});
  // Navigation emits per-match tuples: with the strict query edge the
  // variant is inner.
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, SummaryEquivalentLabels) {
  // View stores //item ids+names; query asks for //europe/* with a
  // description — equivalent to item under this summary (§5.2).
  Xam v = P(
      "xam\nnode e1 label=item id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q = P(
      "xam\nnode e0 label=europe\nnode e1 id=s\nnode e3 label=description\n"
      "node e2 label=name id=s val\n"
      "edge top // j e0\nedge e0 / j e1\nedge e1 / s e3\nedge e1 / j e2\n");
  Setup({{"items", v}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, DeweyParentDerivation) {
  // Both views store Dewey ids; the description view joins with the
  // keyword view via ancestor derivation even though containment could
  // also be used; ensure at least one rewriting exists and executes.
  Xam v1 = P(
      "xam\nnode e1 label=description id=p\n"
      "edge top // j e1\n");
  Xam v2 = P(
      "xam\nnode e1 label=keyword id=p val\n"
      "edge top // j e1\n");
  Xam q = P(
      "xam\nnode e1 label=description id=p\nnode e2 label=keyword id=p val\n"
      "edge top // j e1\nedge e1 // j e2\n");
  Setup({{"descs", v1}, {"kws", v2}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, UnionRewriting) {
  // q = //name (all names); views store person names and item names — only
  // their union covers the query (Fig. 5.4-style).
  Xam v1 = P(
      "xam\nnode e1 label=person\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam v2 = P(
      "xam\nnode e1 label=item\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q = P(
      "xam\nnode e1 label=name id=s val\nedge top // j e1\n");
  Setup({{"pnames", v1}, {"inames", v2}});
  CheckRewriteExecutes(q);
}

TEST_F(RewriteTest, NoRewritingWhenDataMissing) {
  // Views only know about people; the query needs keywords and there is no
  // id to navigate from.
  Xam v = P(
      "xam\nnode e1 label=person\nnode e2 label=name val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  Xam q = P(
      "xam\nnode e1 label=keyword id=s val\nedge top // j e1\n");
  Setup({{"pnames", v}});
  Rewriter rewriter(&summary_, views_);
  auto rewritings = rewriter.Rewrite(q);
  ASSERT_TRUE(rewritings.ok());
  EXPECT_TRUE(rewritings->empty());
}

TEST_F(RewriteTest, CheapestPlanFirst) {
  // Both an exact view and the tag-partitioned pieces can serve the query;
  // the single-view plan must rank first.
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  std::vector<NamedXam> views = TagPartitionedModel(summary_);
  views.push_back({"exact", q});
  Setup(views);
  Rewriter rewriter(&summary_, views_);
  auto rewritings = rewriter.Rewrite(q);
  ASSERT_TRUE(rewritings.ok());
  ASSERT_FALSE(rewritings->empty());
  EXPECT_EQ((*rewritings)[0].views_used, std::vector<std::string>{"exact"});
}

}  // namespace
}  // namespace uload

namespace uload {
namespace {

TEST_F(RewriteTest, IndexViewUsedWhenQueryPinsKey) {
  // booksByYearTitle-style index (QEP11): usable only because the query
  // pins both key values with equalities.
  std::vector<NamedXam> views;
  views.push_back(ValueIndex("person", {"name"}));
  Setup(views);
  Xam q = P(
      "xam\nnode e1 label=person id=s\nnode e2 label=name val=\"Ann\"\n"
      "edge top // j e1\nedge e1 / s e2\n");
  Rewriter rewriter(&summary_, views_);
  auto r = rewriter.Rewrite(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->empty());
  // The plan is an IndexScan.
  EXPECT_NE((*r)[0].plan->ToString().find("IndexScan"), std::string::npos)
      << (*r)[0].plan->ToString();
  // And executes correctly against the catalog.
  EvalContext ctx = catalog_.MakeEvalContext(&doc_);
  auto got = Evaluate(*(*r)[0].plan, ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 1);  // only Ann
}

TEST_F(RewriteTest, IndexViewUnusableWithoutBindings) {
  // The same index cannot serve a query that does not pin the key.
  std::vector<NamedXam> views;
  views.push_back(ValueIndex("person", {"name"}));
  Setup(views);
  Xam q = P(
      "xam\nnode e1 label=person id=s\nedge top // j e1\n");
  Rewriter rewriter(&summary_, views_);
  auto r = rewriter.Rewrite(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace uload
