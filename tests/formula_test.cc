#include <gtest/gtest.h>

#include "xam/formula.h"

namespace uload {
namespace {

AtomicValue N(double d) { return AtomicValue::Number(d); }
AtomicValue S(const std::string& s) { return AtomicValue::String(s); }

TEST(Formula, TrueFalseBasics) {
  EXPECT_TRUE(ValueFormula::True().IsTrue());
  EXPECT_TRUE(ValueFormula::False().IsFalse());
  EXPECT_TRUE(ValueFormula::True().Not().IsFalse());
  EXPECT_TRUE(ValueFormula::False().Not().IsTrue());
}

TEST(Formula, AtomSatisfaction) {
  ValueFormula lt5 = ValueFormula::Atom(Comparator::kLt, N(5));
  EXPECT_TRUE(lt5.SatisfiedBy(N(4)));
  EXPECT_FALSE(lt5.SatisfiedBy(N(5)));
  ValueFormula le5 = ValueFormula::Atom(Comparator::kLe, N(5));
  EXPECT_TRUE(le5.SatisfiedBy(N(5)));
  ValueFormula eq = ValueFormula::Equals(S("web"));
  EXPECT_TRUE(eq.SatisfiedBy(S("web")));
  EXPECT_FALSE(eq.SatisfiedBy(S("Web")));
  ValueFormula ne = ValueFormula::Atom(Comparator::kNe, N(3));
  EXPECT_TRUE(ne.SatisfiedBy(N(2)));
  EXPECT_FALSE(ne.SatisfiedBy(N(3)));
  EXPECT_TRUE(ne.SatisfiedBy(N(4)));
}

TEST(Formula, ConjunctionIntervals) {
  ValueFormula f = ValueFormula::Atom(Comparator::kGt, N(1))
                       .And(ValueFormula::Atom(Comparator::kLt, N(5)));
  EXPECT_TRUE(f.SatisfiedBy(N(3)));
  EXPECT_FALSE(f.SatisfiedBy(N(1)));
  EXPECT_FALSE(f.SatisfiedBy(N(5)));
  // Contradiction.
  ValueFormula g = ValueFormula::Atom(Comparator::kLt, N(1))
                       .And(ValueFormula::Atom(Comparator::kGt, N(5)));
  EXPECT_TRUE(g.IsFalse());
}

TEST(Formula, DisjunctionMerging) {
  ValueFormula f = ValueFormula::Atom(Comparator::kLe, N(2))
                       .Or(ValueFormula::Atom(Comparator::kGe, N(2)));
  EXPECT_TRUE(f.IsTrue());
  ValueFormula g = ValueFormula::Atom(Comparator::kLt, N(2))
                       .Or(ValueFormula::Atom(Comparator::kGt, N(2)));
  EXPECT_FALSE(g.IsTrue());
  EXPECT_FALSE(g.SatisfiedBy(N(2)));
}

TEST(Formula, NegationRoundTrip) {
  ValueFormula f = ValueFormula::Atom(Comparator::kGe, N(3))
                       .And(ValueFormula::Atom(Comparator::kLt, N(7)));
  ValueFormula nf = f.Not();
  EXPECT_TRUE(nf.SatisfiedBy(N(2)));
  EXPECT_FALSE(nf.SatisfiedBy(N(3)));
  EXPECT_TRUE(nf.SatisfiedBy(N(7)));
  EXPECT_TRUE(nf.Not().EquivalentTo(f));
}

TEST(Formula, Implication) {
  ValueFormula narrow = ValueFormula::Atom(Comparator::kGt, N(2))
                            .And(ValueFormula::Atom(Comparator::kLt, N(4)));
  ValueFormula wide = ValueFormula::Atom(Comparator::kGt, N(1));
  EXPECT_TRUE(narrow.Implies(wide));
  EXPECT_FALSE(wide.Implies(narrow));
  EXPECT_TRUE(ValueFormula::False().Implies(narrow));
  EXPECT_TRUE(narrow.Implies(ValueFormula::True()));
  // v=3 implies (v>1 or v<0).
  ValueFormula disj = ValueFormula::Atom(Comparator::kGt, N(1))
                          .Or(ValueFormula::Atom(Comparator::kLt, N(0)));
  EXPECT_TRUE(ValueFormula::Equals(N(3)).Implies(disj));
  EXPECT_FALSE(ValueFormula::Equals(N(0.5)).Implies(disj));
}

TEST(Formula, ThesisSection442Example) {
  // φ_(t''φ2) = (v6 > 0) and the union check against (v6 < 5) ∨ (v6 > 2):
  // single-variable version: v>0 ⇒ (v<5 ∨ v>2) holds since intervals cover.
  ValueFormula gt0 = ValueFormula::Atom(Comparator::kGt, N(0));
  ValueFormula cover = ValueFormula::Atom(Comparator::kLt, N(5))
                           .Or(ValueFormula::Atom(Comparator::kGt, N(2)));
  EXPECT_TRUE(gt0.Implies(cover));
}

TEST(Formula, Witness) {
  ValueFormula f = ValueFormula::Atom(Comparator::kGt, N(10))
                       .And(ValueFormula::Atom(Comparator::kLt, N(12)));
  AtomicValue w = f.Witness();
  EXPECT_TRUE(f.SatisfiedBy(w));
  EXPECT_TRUE(ValueFormula::Equals(S("x")).SatisfiedBy(
      ValueFormula::Equals(S("x")).Witness()));
  EXPECT_TRUE(ValueFormula::False().Witness().is_null());
  ValueFormula open = ValueFormula::Atom(Comparator::kGt, N(7));
  EXPECT_TRUE(open.SatisfiedBy(open.Witness()));
  ValueFormula below = ValueFormula::Atom(Comparator::kLt, N(7));
  EXPECT_TRUE(below.SatisfiedBy(below.Witness()));
}

TEST(Formula, SingleEquality) {
  AtomicValue c;
  EXPECT_TRUE(ValueFormula::Equals(N(1999)).IsSingleEquality(&c));
  EXPECT_TRUE(c == N(1999));
  EXPECT_FALSE(ValueFormula::Atom(Comparator::kLt, N(5)).IsSingleEquality(&c));
  EXPECT_FALSE(ValueFormula::True().IsSingleEquality(&c));
}

TEST(Formula, StringOrdering) {
  ValueFormula f = ValueFormula::Atom(Comparator::kGe, S("b"));
  EXPECT_TRUE(f.SatisfiedBy(S("c")));
  EXPECT_FALSE(f.SatisfiedBy(S("a")));
}

// Property sweep: random interval formulas obey boolean algebra laws.
class FormulaProperty : public ::testing::TestWithParam<int> {};

ValueFormula RandomFormula(unsigned* seed) {
  auto next = [&]() {
    *seed = *seed * 1103515245 + 12345;
    return (*seed >> 16) & 0x7fff;
  };
  ValueFormula f = ValueFormula::False();
  int atoms = 1 + next() % 3;
  for (int i = 0; i < atoms; ++i) {
    Comparator cmps[] = {Comparator::kEq, Comparator::kNe, Comparator::kLt,
                         Comparator::kLe, Comparator::kGt, Comparator::kGe};
    ValueFormula atom =
        ValueFormula::Atom(cmps[next() % 6], N(next() % 10));
    f = (next() % 2 == 0) ? f.Or(atom) : f.And(atom).Or(atom);
  }
  return f;
}

TEST_P(FormulaProperty, BooleanLaws) {
  unsigned seed = GetParam() * 2654435761u + 17;
  ValueFormula a = RandomFormula(&seed);
  ValueFormula b = RandomFormula(&seed);
  // De Morgan.
  EXPECT_TRUE(a.And(b).Not().EquivalentTo(a.Not().Or(b.Not())));
  EXPECT_TRUE(a.Or(b).Not().EquivalentTo(a.Not().And(b.Not())));
  // Double negation.
  EXPECT_TRUE(a.Not().Not().EquivalentTo(a));
  // Absorption.
  EXPECT_TRUE(a.And(a.Or(b)).EquivalentTo(a));
  EXPECT_TRUE(a.Or(a.And(b)).EquivalentTo(a));
  // Implication is reflexive and respects conjunction.
  EXPECT_TRUE(a.Implies(a));
  EXPECT_TRUE(a.And(b).Implies(a));
  EXPECT_TRUE(a.Implies(a.Or(b)));
  // Pointwise agreement on sample values.
  for (int v = -2; v <= 12; ++v) {
    bool lhs = a.And(b).SatisfiedBy(N(v));
    EXPECT_EQ(lhs, a.SatisfiedBy(N(v)) && b.SatisfiedBy(N(v)));
    bool rhs = a.Or(b).SatisfiedBy(N(v));
    EXPECT_EQ(rhs, a.SatisfiedBy(N(v)) || b.SatisfiedBy(N(v)));
    EXPECT_EQ(a.Not().SatisfiedBy(N(v)), !a.SatisfiedBy(N(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, FormulaProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace uload
