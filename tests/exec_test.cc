// Execution-engine units: structural join kernels, order descriptors, and
// the plan evaluator's operators.
#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "exec/order_descriptor.h"
#include "exec/structural_join.h"
#include "workload/xmark.h"

namespace uload {
namespace {

// Ids of a small handmade tree:
//        a(1,7,1)
//      b(2,3,2)   e(5,6,2)
//    c(3,1,3) d(4,2,3)  f(6,4,3) g(7,5,3)
std::vector<StructuralId> Tree() {
  return {{1, 7, 1}, {2, 3, 2}, {3, 1, 3}, {4, 2, 3},
          {5, 6, 2}, {6, 4, 3}, {7, 5, 3}};
}

TEST(StructuralJoinKernel, DescVsAncSamePairs) {
  auto ids = Tree();
  std::vector<StructuralId> anc = {ids[0], ids[1], ids[4]};  // a, b, e
  std::vector<StructuralId> desc = {ids[2], ids[3], ids[5], ids[6]};
  auto d = StackTreeDesc(anc, desc, Axis::kDescendant);
  auto a = StackTreeAnc(anc, desc, Axis::kDescendant);
  auto n = NestedLoopStructuralJoin(anc, desc, Axis::kDescendant);
  EXPECT_EQ(d.size(), n.size());
  EXPECT_EQ(a.size(), n.size());
  // a contains all four leaves; b contains c,d; e contains f,g -> 8 pairs.
  EXPECT_EQ(n.size(), 8u);
}

TEST(StructuralJoinKernel, ParentChildAxis) {
  auto ids = Tree();
  std::vector<StructuralId> anc = {ids[0], ids[1]};         // a, b
  std::vector<StructuralId> desc = {ids[1], ids[2], ids[5]};  // b, c, f
  auto pairs = StackTreeAnc(anc, desc, Axis::kChild);
  // a/b and b/c are parent-child; f's parent (e) is absent.
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(StructuralJoinKernel, OrderingGuarantees) {
  Document doc = GenerateXMark(XMarkScale(0.1));
  std::vector<StructuralId> anc;
  std::vector<StructuralId> desc;
  for (NodeIndex i = 1; i < doc.size(); ++i) {
    const Node& n = doc.node(i);
    if (!n.is_element()) continue;
    if (n.label == "item") anc.push_back(n.sid);
    if (n.label == "keyword") desc.push_back(n.sid);
  }
  auto by_desc = StackTreeDesc(anc, desc, Axis::kDescendant);
  for (size_t i = 1; i < by_desc.size(); ++i) {
    EXPECT_LE(desc[by_desc[i - 1].descendant].pre,
              desc[by_desc[i].descendant].pre);
  }
  auto by_anc = StackTreeAnc(anc, desc, Axis::kDescendant);
  for (size_t i = 1; i < by_anc.size(); ++i) {
    EXPECT_LE(anc[by_anc[i - 1].ancestor].pre, anc[by_anc[i].ancestor].pre);
  }
  // Same pair multiset as the reference implementation.
  auto ref = NestedLoopStructuralJoin(anc, desc, Axis::kDescendant);
  EXPECT_EQ(by_desc.size(), ref.size());
  EXPECT_EQ(by_anc.size(), ref.size());
}

// --- Evaluator operators --------------------------------------------------

NestedRelation MakeRel(std::vector<std::pair<double, std::string>> rows) {
  NestedRelation rel(Schema::Make(
      {Attribute::Atomic("k"), Attribute::Atomic("v")}));
  for (auto& [k, v] : rows) {
    Tuple t;
    t.fields.emplace_back(AtomicValue::Number(k));
    t.fields.emplace_back(AtomicValue::String(v));
    rel.Add(std::move(t));
  }
  return rel;
}

TEST(Evaluator, SelectProjectUnionDifference) {
  NestedRelation r = MakeRel({{1, "a"}, {2, "b"}, {3, "c"}, {2, "b"}});
  std::unordered_map<std::string, const NestedRelation*> rels{{"r", &r}};

  auto sel = Evaluate(*LogicalPlan::Select(
                          LogicalPlan::Scan("r"),
                          Predicate::CompareConst("k", Comparator::kGe,
                                                  AtomicValue::Number(2))),
                      rels);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 3);

  auto proj = Evaluate(*LogicalPlan::Project(LogicalPlan::Scan("r"), {"v"},
                                             /*dedup=*/true),
                       rels);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->size(), 3);  // a, b, c

  auto uni = Evaluate(
      *LogicalPlan::Union(LogicalPlan::Scan("r"), LogicalPlan::Scan("r")),
      rels);
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->size(), 8);  // duplicate-preserving

  auto diff = Evaluate(
      *LogicalPlan::Difference(LogicalPlan::Scan("r"), LogicalPlan::Scan("r")),
      rels);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 0);  // bag difference cancels one-for-one
}

TEST(Evaluator, ValueJoinVariants) {
  NestedRelation l = MakeRel({{1, "x"}, {2, "y"}, {3, "z"}});
  NestedRelation r = MakeRel({{2, "Y"}, {3, "Z"}, {3, "ZZ"}});
  std::unordered_map<std::string, const NestedRelation*> rels{{"l", &l},
                                                              {"r", &r}};
  auto inner = Evaluate(
      *LogicalPlan::ValueJoin(LogicalPlan::Scan("l"), LogicalPlan::Scan("r"),
                              "k", Comparator::kEq, "k"),
      rels);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->size(), 3);  // (2), (3)x2

  auto semi = Evaluate(
      *LogicalPlan::ValueJoin(LogicalPlan::Scan("l"), LogicalPlan::Scan("r"),
                              "k", Comparator::kEq, "k", JoinVariant::kSemi),
      rels);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi->size(), 2);
  EXPECT_EQ(semi->schema().size(), 2);

  auto outer = Evaluate(
      *LogicalPlan::ValueJoin(LogicalPlan::Scan("l"), LogicalPlan::Scan("r"),
                              "k", Comparator::kEq, "k",
                              JoinVariant::kLeftOuter),
      rels);
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->size(), 4);  // 1 with nulls

  auto nest = Evaluate(
      *LogicalPlan::ValueJoin(LogicalPlan::Scan("l"), LogicalPlan::Scan("r"),
                              "k", Comparator::kEq, "k",
                              JoinVariant::kNestOuter, "grp"),
      rels);
  ASSERT_TRUE(nest.ok());
  EXPECT_EQ(nest->size(), 3);
  int grp = nest->schema().IndexOf("grp");
  ASSERT_GE(grp, 0);
  EXPECT_EQ(nest->tuple(0).fields[grp].collection().size(), 0u);
  EXPECT_EQ(nest->tuple(2).fields[grp].collection().size(), 2u);

  auto less = Evaluate(
      *LogicalPlan::ValueJoin(LogicalPlan::Scan("l"), LogicalPlan::Scan("r"),
                              "k", Comparator::kLt, "k"),
      rels);
  ASSERT_TRUE(less.ok());
  EXPECT_EQ(less->size(), 5);  // 1<2,1<3,1<3,2<3,2<3
}

TEST(Evaluator, NestAndUnnestRoundTrip) {
  NestedRelation r = MakeRel({{1, "a"}, {2, "b"}});
  std::unordered_map<std::string, const NestedRelation*> rels{{"r", &r}};
  auto nested = Evaluate(*LogicalPlan::Nest(LogicalPlan::Scan("r"), "all"),
                         rels);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->size(), 1);
  std::unordered_map<std::string, const NestedRelation*> rels2{
      {"n", &*nested}};
  auto flat = Evaluate(*LogicalPlan::Unnest(LogicalPlan::Scan("n"), "all"),
                       rels2);
  ASSERT_TRUE(flat.ok());
  EXPECT_TRUE(flat->EqualsUnordered(r));
}

TEST(Evaluator, PrefixNamesRenamesAllLevels) {
  NestedRelation r = MakeRel({{1, "a"}});
  std::unordered_map<std::string, const NestedRelation*> rels{{"r", &r}};
  auto nested = Evaluate(*LogicalPlan::Nest(LogicalPlan::Scan("r"), "all"),
                         rels);
  ASSERT_TRUE(nested.ok());
  std::unordered_map<std::string, const NestedRelation*> rels2{
      {"n", &*nested}};
  auto renamed = Evaluate(
      *LogicalPlan::PrefixNames(LogicalPlan::Scan("n"), "p_"), rels2);
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->schema().attr(0).name, "p_all");
  EXPECT_EQ(renamed->schema().attr(0).nested->attr(0).name, "p_k");
}

TEST(Evaluator, DeriveParentOnDewey) {
  NestedRelation rel(Schema::Make({Attribute::Atomic("id")}));
  Tuple t;
  t.fields.emplace_back(AtomicValue::Dewey(DeweyId{1, 2, 3}));
  rel.Add(std::move(t));
  std::unordered_map<std::string, const NestedRelation*> rels{{"r", &rel}};
  auto derived = Evaluate(
      *LogicalPlan::DeriveParent(LogicalPlan::Scan("r"), "id", "anc", 2),
      rels);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->tuple(0).fields[1].atom().dewey(), (DeweyId{1, 2}));

  // Sids cannot derive parents — that is the point of the 'p' property.
  NestedRelation bad(Schema::Make({Attribute::Atomic("id")}));
  Tuple t2;
  t2.fields.emplace_back(AtomicValue::Sid(StructuralId{1, 2, 3}));
  bad.Add(std::move(t2));
  std::unordered_map<std::string, const NestedRelation*> rels2{{"r", &bad}};
  auto err = Evaluate(
      *LogicalPlan::DeriveParent(LogicalPlan::Scan("r"), "id", "anc", 2),
      rels2);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kTypeError);
}

TEST(OrderDescriptors, SortAndCheck) {
  NestedRelation r = MakeRel({{3, "c"}, {1, "a"}, {2, "b"}});
  OrderDescriptor by_k = OrderDescriptor::On("k");
  auto sorted0 = IsSortedBy(by_k, r);
  ASSERT_TRUE(sorted0.ok());
  EXPECT_FALSE(*sorted0);
  ASSERT_TRUE(SortBy(by_k, &r).ok());
  auto sorted1 = IsSortedBy(by_k, r);
  ASSERT_TRUE(sorted1.ok());
  EXPECT_TRUE(*sorted1);
  EXPECT_EQ(r.tuple(0).fields[1].atom().as_string(), "a");
}

TEST(OrderDescriptors, NestedKeySortsInsideCollections) {
  // One tuple holding an unsorted collection.
  SchemaPtr inner = Schema::Make({Attribute::Atomic("x")});
  NestedRelation rel(
      Schema::Make({Attribute::Collection("c", inner)}));
  TupleList coll;
  for (double v : {3.0, 1.0, 2.0}) {
    Tuple s;
    s.fields.emplace_back(AtomicValue::Number(v));
    coll.push_back(std::move(s));
  }
  Tuple t;
  t.fields.emplace_back(std::move(coll));
  rel.Add(std::move(t));
  OrderDescriptor nested({OrderKey{"c.x", true}});
  ASSERT_TRUE(SortBy(nested, &rel).ok());
  const TupleList& out = rel.tuple(0).fields[0].collection();
  EXPECT_EQ(out[0].fields[0].atom().as_number(), 1.0);
  EXPECT_EQ(out[2].fields[0].atom().as_number(), 3.0);
}

TEST(Evaluator, ErrorsSurfaceCleanly) {
  NestedRelation r = MakeRel({{1, "a"}});
  std::unordered_map<std::string, const NestedRelation*> rels{{"r", &r}};
  // Unknown relation.
  auto missing = Evaluate(*LogicalPlan::Scan("nope"), rels);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Unknown attribute in a projection.
  auto bad = Evaluate(*LogicalPlan::Project(LogicalPlan::Scan("r"), {"zz"}),
                      rels);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  // Navigate without a document.
  NavEmit emit;
  emit.id = true;
  emit.prefix = "n";
  auto nav = Evaluate(*LogicalPlan::Navigate(LogicalPlan::Scan("r"), "k",
                                             {NavStep{}}, emit),
                      rels);
  EXPECT_EQ(nav.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace uload
