// Loader hardening corpus for the persisted columnar format, mirroring the
// parser corpus (xml_parser_robustness_test.cc): a truncated, corrupted, or
// hostile image of any kind must come back from LoadColumnar as a clean
// ParseError Status — never a crash, out-of-bounds read, or document that
// later misbehaves. The corpus covers truncation at every section boundary
// (and a byte sweep around them), bad magic, unsupported versions, flipped
// payload bytes against the checksums, and header-field lies (row count,
// section count, offsets, total size).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "storage/columnar/columnar_format.h"
#include "summary/path_summary.h"
#include "workload/dblp.h"

namespace uload {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// One well-formed persisted image, built once, mutated per test.
class ColumnarRobustness : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Document doc = GenerateDblp({40, 7});
    PathSummary summary = PathSummary::Build(&doc);
    ColumnarDocument col = ColumnarDocument::FromDocument(doc);
    const std::string path = TempPath("good.uldcol");
    auto st = SaveColumnar(col, summary.Serialize(), path);
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    image_ = new std::string((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    ASSERT_GT(image_->size(), 32u);
  }
  static void TearDownTestSuite() {
    delete image_;
    image_ = nullptr;
  }

  // Writes `bytes` to a scratch file and loads it.
  static Result<LoadedColumnar> LoadBytes(const std::string& bytes) {
    const std::string path = TempPath("mutant.uldcol");
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    Result<LoadedColumnar> r = LoadColumnar(path);
    std::remove(path.c_str());
    return r;
  }

  static void ExpectCleanFailure(const std::string& bytes,
                                 const std::string& what) {
    auto r = LoadBytes(bytes);
    ASSERT_FALSE(r.ok()) << what << ": loader accepted a corrupt image";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError)
        << what << ": " << r.status().ToString();
  }

  // Section table offsets: entries start at byte 32, 32 bytes each, with
  // the payload offset at entry+8 (see columnar_format.h layout).
  static std::vector<size_t> SectionBoundaries() {
    const std::string& img = *image_;
    uint32_t sections = 0;
    std::memcpy(&sections, img.data() + 12, sizeof(sections));
    std::vector<size_t> cuts = {0, 8, 12, 16, 24, 32};
    for (uint32_t s = 0; s < sections; ++s) {
      size_t entry = 32 + size_t{s} * 32;
      cuts.push_back(entry);
      uint64_t offset = 0, length = 0;
      std::memcpy(&offset, img.data() + entry + 8, sizeof(offset));
      std::memcpy(&length, img.data() + entry + 16, sizeof(length));
      cuts.push_back(offset);
      cuts.push_back(offset + length);
    }
    return cuts;
  }

  static std::string* image_;
};

std::string* ColumnarRobustness::image_ = nullptr;

TEST_F(ColumnarRobustness, GoodImageStillLoads) {
  auto r = LoadBytes(*image_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->document.size(), 0);
}

TEST_F(ColumnarRobustness, TruncationAtEverySectionBoundaryIsAStatus) {
  for (size_t cut : SectionBoundaries()) {
    // The boundary itself plus a sweep of nearby lengths on both sides.
    for (int d = -3; d <= 3; ++d) {
      int64_t len = static_cast<int64_t>(cut) + d;
      if (len < 0 || len >= static_cast<int64_t>(image_->size())) continue;
      ExpectCleanFailure(image_->substr(0, static_cast<size_t>(len)),
                         "truncated to " + std::to_string(len) + " bytes");
    }
  }
}

TEST_F(ColumnarRobustness, CoarseTruncationSweepNeverCrashes) {
  // Beyond exact boundaries: cut every ~1/64 of the file.
  size_t step = image_->size() / 64 + 1;
  for (size_t len = 0; len < image_->size(); len += step) {
    ExpectCleanFailure(image_->substr(0, len),
                       "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST_F(ColumnarRobustness, BadMagicIsRejected) {
  std::string img = *image_;
  img[0] = 'X';
  ExpectCleanFailure(img, "bad magic");
  ExpectCleanFailure(std::string(64, '\0'), "zero magic");
  ExpectCleanFailure("short", "five-byte file");
  ExpectCleanFailure("", "empty file");
}

TEST_F(ColumnarRobustness, UnsupportedVersionIsRejected) {
  std::string img = *image_;
  uint32_t bad = kColumnarFormatVersion + 1;
  std::memcpy(img.data() + 8, &bad, sizeof(bad));
  ExpectCleanFailure(img, "future version");
  bad = 0;
  std::memcpy(img.data() + 8, &bad, sizeof(bad));
  ExpectCleanFailure(img, "version 0");
}

TEST_F(ColumnarRobustness, FlippedPayloadBytesTripTheChecksums) {
  // One flipped byte inside every section payload must be caught by that
  // section's FNV-1a checksum.
  const std::string& good = *image_;
  uint32_t sections = 0;
  std::memcpy(&sections, good.data() + 12, sizeof(sections));
  for (uint32_t s = 0; s < sections; ++s) {
    size_t entry = 32 + size_t{s} * 32;
    uint64_t offset = 0, length = 0;
    std::memcpy(&offset, good.data() + entry + 8, sizeof(offset));
    std::memcpy(&length, good.data() + entry + 16, sizeof(length));
    if (length == 0) continue;
    std::string img = good;
    img[offset + length / 2] ^= 0x5a;
    ExpectCleanFailure(img, "flipped byte in section " + std::to_string(s));
  }
}

TEST_F(ColumnarRobustness, HeaderFieldLiesAreRejected) {
  {  // Row count inflated: columns no longer cover the claimed rows.
    std::string img = *image_;
    uint64_t rows = 0;
    std::memcpy(&rows, img.data() + 16, sizeof(rows));
    rows *= 2;
    std::memcpy(img.data() + 16, &rows, sizeof(rows));
    ExpectCleanFailure(img, "inflated row count");
  }
  {  // Total-size field disagrees with the actual file size.
    std::string img = *image_;
    uint64_t total = img.size() + 1024;
    std::memcpy(img.data() + 24, &total, sizeof(total));
    ExpectCleanFailure(img, "lying total size");
  }
  {  // Section count pointing past the file.
    std::string img = *image_;
    uint32_t sections = 10'000;
    std::memcpy(img.data() + 12, &sections, sizeof(sections));
    ExpectCleanFailure(img, "huge section count");
  }
  {  // A section offset pointing outside the file.
    std::string img = *image_;
    uint64_t offset = img.size() + 64;
    std::memcpy(img.data() + 32 + 8, &offset, sizeof(offset));
    ExpectCleanFailure(img, "out-of-bounds section offset");
  }
  {  // Misaligned section offset.
    std::string img = *image_;
    uint64_t offset = 0;
    std::memcpy(&offset, img.data() + 32 + 8, sizeof(offset));
    offset += 1;
    std::memcpy(img.data() + 32 + 8, &offset, sizeof(offset));
    ExpectCleanFailure(img, "misaligned section offset");
  }
}

TEST_F(ColumnarRobustness, MissingFileIsACleanStatus) {
  auto r = LoadColumnar(TempPath("does-not-exist.uldcol"));
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace uload
