// Access-path parity: a kIndexScan over an R-marked view must be
// byte-identical to the full-scan-plus-select plan over the same bindings —
// through both access paths (the streaming index_bind row handout and the
// materializing index_lookup fallback), for every generated binding.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exec/physical.h"
#include "storage/catalog.h"
#include "storage/storage_models.h"
#include "summary/path_summary.h"
#include "xml/document.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<book><title>Patterns</title><year>1999</year>"
    "<author>Arion</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

class IndexScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kBib);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
    NamedXam idx = ValueIndex("book", {"year"});
    name_ = idx.name;
    auto st = catalog_.AddXam(idx.name, std::move(idx.xam), doc_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  // Schema attribute names are builder-generated; discover them by suffix.
  std::string AttrEndingWith(const Schema& s, const std::string& suffix) {
    for (int i = 0; i < s.size(); ++i) {
      const std::string& n = s.attr(i).name;
      if (n.size() >= suffix.size() &&
          n.compare(n.size() - suffix.size(), suffix.size(), suffix) == 0) {
        return n;
      }
    }
    return "";
  }

  Document doc_;
  PathSummary summary_;
  Catalog catalog_;
  std::string name_;
};

TEST_F(IndexScanTest, LookupMatchesScanPlusSelectForEveryKey) {
  const MaterializedView* view = catalog_.Find(name_);
  ASSERT_NE(view, nullptr);
  ASSERT_TRUE(view->access_restricted());
  const std::string key_attr = AttrEndingWith(view->data().schema(), "_Val");
  ASSERT_FALSE(key_attr.empty());
  int key_idx = view->data().schema().IndexOf(key_attr);
  ASSERT_GE(key_idx, 0);

  // Every stored key value, plus one value with no matches.
  std::set<std::string> keys;
  for (const Tuple& t : view->data().tuples()) {
    keys.insert(t.fields[key_idx].atom().as_string());
  }
  ASSERT_GE(keys.size(), 2u);
  keys.insert("1871");

  EvalContext streaming = catalog_.MakeEvalContext(&doc_);
  EvalContext fallback = streaming;
  fallback.index_bind = nullptr;  // forces the materializing lookup hook

  for (const std::string& key : keys) {
    AtomicValue val = AtomicValue::String(key);
    PlanPtr index_plan = LogicalPlan::IndexScan(name_, {{key_attr, val}});
    PlanPtr scan_plan = LogicalPlan::Select(
        LogicalPlan::Scan(name_),
        Predicate::CompareConst(key_attr, Comparator::kEq, val));

    auto want = ExecutePhysicalPlan(scan_plan, streaming);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    auto direct = view->Lookup({{key_attr, val}});
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    for (const EvalContext* ctx : {&streaming, &fallback}) {
      auto got = ExecutePhysicalPlan(index_plan, *ctx);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      // Byte-identical: same tuples, same (storage) order.
      EXPECT_TRUE(got->Equals(*want)) << "key " << key;
      EXPECT_EQ(got->ToString(), want->ToString()) << "key " << key;
      EXPECT_EQ(got->ToString(), direct->ToString()) << "key " << key;
    }
  }
}

TEST_F(IndexScanTest, StreamingPathCompilesToIndexScanOperator) {
  const MaterializedView* view = catalog_.Find(name_);
  ASSERT_NE(view, nullptr);
  const std::string key_attr = AttrEndingWith(view->data().schema(), "_Val");
  EvalContext ctx = catalog_.MakeEvalContext(&doc_);
  PlanPtr plan = LogicalPlan::IndexScan(
      name_, {{key_attr, AtomicValue::String("1999")}});
  auto root = CompilePhysicalPlan(plan, ctx);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_NE((*root)->Describe().find("IndexScan_phi"), std::string::npos);

  EvalContext fallback = ctx;
  fallback.index_bind = nullptr;
  auto mat = CompilePhysicalPlan(plan, fallback);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  EXPECT_NE((*mat)->Describe().find("IndexLookup_phi"), std::string::npos);
}

TEST_F(IndexScanTest, IndexScanAdvertisesStorageOrder) {
  // The selected rows keep storage (document) order, so the id attribute's
  // order is adoptable without a Sort_φ enforcer.
  const MaterializedView* view = catalog_.Find(name_);
  ASSERT_NE(view, nullptr);
  const std::string key_attr = AttrEndingWith(view->data().schema(), "_Val");
  const std::string id_attr = AttrEndingWith(view->data().schema(), "_ID");
  ASSERT_FALSE(id_attr.empty());
  EvalContext ctx = catalog_.MakeEvalContext(&doc_);
  PlanPtr plan = LogicalPlan::IndexScan(
      name_, {{key_attr, AtomicValue::String("1999")}});
  auto root = CompilePhysicalPlan(plan, ctx);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_TRUE((*root)->TryAdoptOrder(OrderDescriptor::On(id_attr)));
  EXPECT_FALSE((*root)->order().empty());
}

}  // namespace
}  // namespace uload
