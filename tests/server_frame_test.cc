// Frame-parser robustness corpus (mirrors columnar_robustness_test.cc for
// the wire layer): FrameReader and the payload codecs must turn every
// malformed, truncated, oversized, or garbage byte sequence into a clean
// Status — never a crash, never an allocation sized by attacker-controlled
// bytes. Run under ASAN/UBSAN in the --server-sweep CI leg.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "server/wire.h"

namespace uload {
namespace {

// Deterministic xorshift so corpus runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : s_(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t Next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  size_t Uniform(size_t n) { return n ? Next() % n : 0; }

 private:
  uint64_t s_;
};

std::string ValidFrame(FrameType type, std::string_view payload) {
  return EncodeFrame(type, payload);
}

TEST(ServerFrameRobustness, EncodeDecodeRoundTripsWholeFrames) {
  const std::string payloads[] = {
      "", "q", std::string(1000, 'x'),
      std::string("\x00\x01\x02\xff binary \x00", 12)};
  for (const auto& payload : payloads) {
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(ValidFrame(FrameType::kRun, payload)).ok());
    auto f = reader.Next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kRun);
    EXPECT_EQ(f->payload, payload);
    EXPECT_FALSE(reader.Next().has_value());
    EXPECT_FALSE(reader.mid_frame());
  }
}

TEST(ServerFrameRobustness, ByteAtATimeDeliveryReassembles) {
  std::string stream = ValidFrame(FrameType::kHello, "client") +
                       ValidFrame(FrameType::kRun, "doc(\"bib\")//book") +
                       ValidFrame(FrameType::kGoodbye, "");
  FrameReader reader;
  std::vector<Frame> got;
  for (char c : stream) {
    ASSERT_TRUE(reader.Feed(&c, 1).ok());
    while (auto f = reader.Next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].type, FrameType::kHello);
  EXPECT_EQ(got[0].payload, "client");
  EXPECT_EQ(got[1].type, FrameType::kRun);
  EXPECT_EQ(got[1].payload, "doc(\"bib\")//book");
  EXPECT_EQ(got[2].type, FrameType::kGoodbye);
  EXPECT_TRUE(got[2].payload.empty());
  EXPECT_FALSE(reader.mid_frame());
}

TEST(ServerFrameRobustness, RandomChunkingNeverChangesTheFrames) {
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    stream += ValidFrame(FrameType::kRun,
                         "query #" + std::to_string(i) +
                             std::string(static_cast<size_t>(i) * 17, 'p'));
  }
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    FrameReader reader;
    std::vector<Frame> got;
    size_t off = 0;
    while (off < stream.size()) {
      size_t n = 1 + rng.Uniform(97);
      n = std::min(n, stream.size() - off);
      ASSERT_TRUE(reader.Feed(stream.data() + off, n).ok());
      off += n;
      while (auto f = reader.Next()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), 20u) << "trial " << trial;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(i)].payload,
                "query #" + std::to_string(i) +
                    std::string(static_cast<size_t>(i) * 17, 'p'));
    }
  }
}

TEST(ServerFrameRobustness, TruncationAtEveryBoundaryIsMidFrameNotCrash) {
  std::string frame = ValidFrame(FrameType::kRun, "for $x in ... return $x");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameReader reader;
    ASSERT_TRUE(reader.Feed(frame.data(), cut).ok()) << "cut=" << cut;
    EXPECT_FALSE(reader.Next().has_value()) << "cut=" << cut;
    EXPECT_EQ(reader.mid_frame(), cut > 0) << "cut=" << cut;
    // Completing the remainder always yields the one frame.
    ASSERT_TRUE(reader.Feed(frame.data() + cut, frame.size() - cut).ok());
    auto f = reader.Next();
    ASSERT_TRUE(f.has_value()) << "cut=" << cut;
    EXPECT_EQ(f->payload, "for $x in ... return $x");
  }
}

TEST(ServerFrameRobustness, ZeroLengthDeclarationIsRejected) {
  FrameReader reader;
  Status st = reader.Feed(std::string("\x00\x00\x00\x00", 4));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(reader.poisoned());
}

TEST(ServerFrameRobustness, OversizedDeclarationFailsBeforeBuffering) {
  // A tiny cap proves the check happens on the declared size, not on the
  // arrived bytes: 4 prefix bytes is all the reader ever sees.
  FrameReader reader(/*max_frame_bytes=*/64);
  std::string prefix;
  AppendU32(&prefix, 1u << 20);  // declares 1 MiB
  Status st = reader.Feed(prefix);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("cap is"), std::string::npos);
}

TEST(ServerFrameRobustness, MaxFrameExactlyAtCapIsAccepted) {
  constexpr size_t kCap = 128;
  FrameReader reader(kCap);
  // len == cap: 1 type byte + (cap-1) payload bytes.
  std::string payload(kCap - 1, 'z');
  ASSERT_TRUE(reader.Feed(ValidFrame(FrameType::kRun, payload)).ok());
  auto f = reader.Next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload.size(), kCap - 1);

  // One byte over the cap is rejected.
  FrameReader reader2(kCap);
  std::string prefix;
  AppendU32(&prefix, kCap + 1);
  EXPECT_FALSE(reader2.Feed(prefix).ok());
}

TEST(ServerFrameRobustness, PoisonedReaderStaysPoisoned) {
  FrameReader reader;
  ASSERT_FALSE(reader.Feed(std::string("\x00\x00\x00\x00", 4)).ok());
  // A perfectly valid frame after the violation still fails: framing is
  // lost, the stream must be torn down.
  Status st = reader.Feed(ValidFrame(FrameType::kRun, "ok"));
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(ServerFrameRobustness, GarbageStreamsErrorCleanly) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    size_t n = 1 + rng.Uniform(300);
    garbage.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    FrameReader reader(/*max_frame_bytes=*/4096);
    Status st = reader.Feed(garbage);
    // Either the bytes happen to parse as frames (fine) or the reader
    // reports a violation — but it never crashes and never over-allocates.
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
      EXPECT_TRUE(reader.poisoned());
    }
    while (reader.Next().has_value()) {
    }
  }
}

TEST(ServerFrameRobustness, EmbeddedNulsSurviveTheCodec) {
  std::string payload("ab\0cd\0\0ef", 9);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(ValidFrame(FrameType::kResult, payload)).ok());
  auto f = reader.Next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload, payload);
  EXPECT_EQ(f->payload.size(), 9u);
}

TEST(ServerFrameRobustness, ErrorPayloadDecodingToleratesByteSalad) {
  // Well-formed round trip.
  Status in = Status::ResourceExhausted("admission queue full");
  Status out = DecodeErrorPayload(EncodeErrorPayload(in));
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());

  // Truncated payloads (shorter than the 4-byte code) degrade to kInternal.
  for (size_t n = 0; n < 4; ++n) {
    Status s = DecodeErrorPayload(std::string(n, '\x01'));
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInternal);
  }

  // Unknown wire codes degrade to kInternal, message preserved.
  std::string raw;
  AppendU32(&raw, 0x7fffffffu);
  raw += "novel failure";
  Status s = DecodeErrorPayload(raw);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("novel failure"), std::string::npos);
}

TEST(ServerFrameRobustness, HelloOkPayloadDecodingToleratesByteSalad) {
  std::string good = EncodeHelloOkPayload(0x1122334455667788ull, "uload");
  uint64_t id = 0;
  std::string banner;
  ASSERT_TRUE(DecodeHelloOkPayload(good, &id, &banner));
  EXPECT_EQ(id, 0x1122334455667788ull);
  EXPECT_EQ(banner, "uload");
  for (size_t n = 0; n < 8; ++n) {
    EXPECT_FALSE(DecodeHelloOkPayload(std::string(n, '\x02'), &id, &banner))
        << n;
  }
}

TEST(ServerFrameRobustness, ScalarHelpersRejectShortReads) {
  std::string buf;
  AppendU32(&buf, 0xdeadbeef);
  AppendU64(&buf, 0x0123456789abcdefull);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(ReadU32(buf, 0, &u32));
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(ReadU64(buf, 4, &u64));
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_FALSE(ReadU32(buf, buf.size() - 3, &u32));
  EXPECT_FALSE(ReadU64(buf, buf.size() - 7, &u64));
  EXPECT_FALSE(ReadU32("", 0, &u32));
  // Offset past the end must not wrap.
  EXPECT_FALSE(ReadU32(buf, buf.size() + 100, &u32));
}

}  // namespace
}  // namespace uload
