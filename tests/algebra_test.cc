// Algebra basics: atomic values, comparisons, tuples, relations, predicates
// and XML construction templates.
#include <gtest/gtest.h>

#include "algebra/predicate.h"
#include "algebra/relation.h"
#include "algebra/xml_template.h"

namespace uload {
namespace {

TEST(AtomicValues, KindsAndAccessors) {
  EXPECT_TRUE(AtomicValue::Null().is_null());
  EXPECT_EQ(AtomicValue::String("x").as_string(), "x");
  EXPECT_EQ(AtomicValue::Number(3.5).as_number(), 3.5);
  AtomicValue sid = AtomicValue::Sid(StructuralId{1, 2, 3});
  EXPECT_TRUE(sid.is_id());
  EXPECT_EQ(sid.sid().post, 2u);
  AtomicValue dew = AtomicValue::Dewey(DeweyId{1, 4});
  EXPECT_TRUE(dew.is_id());
}

TEST(AtomicValues, UntypedEqualityCoercion) {
  EXPECT_TRUE(AtomicValue::String("30") == AtomicValue::Number(30));
  EXPECT_TRUE(AtomicValue::Number(30) == AtomicValue::String("30"));
  EXPECT_FALSE(AtomicValue::String("30a") == AtomicValue::Number(30));
  EXPECT_TRUE(AtomicValue::String("a") == AtomicValue::String("a"));
  EXPECT_FALSE(AtomicValue::Null() == AtomicValue::Number(0));
}

TEST(AtomicValues, TotalOrder) {
  EXPECT_LT(AtomicValue::Compare(AtomicValue::Number(1),
                                 AtomicValue::Number(2)),
            0);
  EXPECT_LT(AtomicValue::Compare(AtomicValue::String("10"),
                                 AtomicValue::Number(30)),
            0);  // numeric coercion
  EXPECT_LT(AtomicValue::Compare(AtomicValue::String("a"),
                                 AtomicValue::String("b")),
            0);
  // Ids order by document order.
  EXPECT_LT(AtomicValue::Compare(AtomicValue::Sid({1, 5, 1}),
                                 AtomicValue::Sid({3, 2, 2})),
            0);
  EXPECT_LT(AtomicValue::Compare(AtomicValue::Dewey({1, 1}),
                                 AtomicValue::Dewey({1, 2})),
            0);
}

TEST(AtomicValues, StructuralPredicates) {
  AtomicValue parent = AtomicValue::Sid({1, 9, 1});
  AtomicValue child = AtomicValue::Sid({2, 3, 2});
  AtomicValue grandchild = AtomicValue::Sid({3, 1, 3});
  EXPECT_TRUE(AtomicValue::IsParentOf(parent, child));
  EXPECT_TRUE(AtomicValue::IsAncestorOf(parent, grandchild));
  EXPECT_FALSE(AtomicValue::IsParentOf(parent, grandchild));
  // Mixed representations never relate.
  EXPECT_FALSE(
      AtomicValue::IsAncestorOf(parent, AtomicValue::Dewey({1, 1, 1})));
  EXPECT_TRUE(AtomicValue::IsAncestorOf(AtomicValue::Dewey({1}),
                                        AtomicValue::Dewey({1, 2, 1})));
  EXPECT_TRUE(AtomicValue::IsParentOf(AtomicValue::Dewey({1, 2}),
                                      AtomicValue::Dewey({1, 2, 1})));
}

TEST(Predicates, CompareAtomsSemantics) {
  EXPECT_TRUE(CompareAtoms(AtomicValue::Number(3), Comparator::kLt,
                           AtomicValue::Number(5)));
  EXPECT_FALSE(CompareAtoms(AtomicValue::Null(), Comparator::kEq,
                            AtomicValue::Null()));  // null compares false
  EXPECT_TRUE(CompareAtoms(AtomicValue::String("red fox"),
                           Comparator::kContainsWord,
                           AtomicValue::String("fox")));
  EXPECT_FALSE(CompareAtoms(AtomicValue::String("foxtrot"),
                            Comparator::kContainsWord,
                            AtomicValue::String("fox")));
}

TEST(Predicates, NestedExistentialEval) {
  SchemaPtr inner = Schema::Make({Attribute::Atomic("v")});
  SchemaPtr schema = Schema::Make(
      {Attribute::Atomic("k"), Attribute::Collection("c", inner)});
  Tuple t;
  t.fields.emplace_back(AtomicValue::Number(1));
  TupleList coll;
  for (double v : {2.0, 7.0}) {
    Tuple s;
    s.fields.emplace_back(AtomicValue::Number(v));
    coll.push_back(std::move(s));
  }
  t.fields.emplace_back(std::move(coll));

  auto exists7 = Predicate::CompareConst("c.v", Comparator::kEq,
                                         AtomicValue::Number(7));
  auto exists9 = Predicate::CompareConst("c.v", Comparator::kEq,
                                         AtomicValue::Number(9));
  auto r7 = exists7->Eval(*schema, t);
  auto r9 = exists9->Eval(*schema, t);
  ASSERT_TRUE(r7.ok() && r9.ok());
  EXPECT_TRUE(*r7);
  EXPECT_FALSE(*r9);

  auto both = Predicate::And(exists7, Predicate::Not(exists9));
  auto rb = both->Eval(*schema, t);
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(*rb);

  auto isnull = Predicate::IsNull("k");
  auto notnull = Predicate::NotNull("k");
  EXPECT_FALSE(*isnull->Eval(*schema, t));
  EXPECT_TRUE(*notnull->Eval(*schema, t));
}

TEST(Relations, SortDedupEquality) {
  NestedRelation r(Schema::Make({Attribute::Atomic("x")}));
  for (double v : {3.0, 1.0, 2.0, 1.0}) {
    Tuple t;
    t.fields.emplace_back(AtomicValue::Number(v));
    r.Add(std::move(t));
  }
  NestedRelation sorted = r;
  sorted.Sort();
  EXPECT_EQ(sorted.tuple(0).fields[0].atom().as_number(), 1.0);
  NestedRelation dedup = r;
  dedup.Deduplicate();
  EXPECT_EQ(dedup.size(), 3);
  // Dedup preserves first-occurrence order: 3, 1, 2.
  EXPECT_EQ(dedup.tuple(0).fields[0].atom().as_number(), 3.0);
  EXPECT_TRUE(r.EqualsUnordered(r));
  EXPECT_FALSE(r.Equals(sorted));
}

TEST(Templates, ElementsValuesIterationAbsolute) {
  SchemaPtr inner = Schema::Make({Attribute::Atomic("v")});
  SchemaPtr schema = Schema::Make(
      {Attribute::Atomic("name"), Attribute::Collection("kids", inner)});
  NestedRelation rel(schema);
  Tuple t;
  t.fields.emplace_back(AtomicValue::String("A&B"));
  TupleList kids;
  for (const char* v : {"x", "y"}) {
    Tuple s;
    s.fields.emplace_back(AtomicValue::String(v));
    kids.push_back(std::move(s));
  }
  t.fields.emplace_back(std::move(kids));
  rel.Add(std::move(t));

  XmlTemplate templ;
  templ.roots.push_back(TemplateNode::Element(
      "r",
      {TemplateNode::ValueRef("name"),
       TemplateNode::Element("k", {TemplateNode::ValueRef("v")}, "kids"),
       TemplateNode::Group({TemplateNode::ValueRef("name",
                                                   /*raw=*/false,
                                                   /*absolute=*/true)},
                           "kids")}));
  auto out = ApplyTemplate(templ, rel);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Escaping, per-kid <k> elements, and the absolute ref resolving to the
  // root tuple from inside the iterate scope (twice).
  EXPECT_EQ(*out, "<r>A&amp;B<k>x</k><k>y</k>A&amp;BA&amp;B</r>");
}

TEST(Templates, RawContentNotEscaped) {
  SchemaPtr schema = Schema::Make({Attribute::Atomic("c")});
  NestedRelation rel(schema);
  Tuple t;
  t.fields.emplace_back(AtomicValue::String("<b>bold</b>"));
  rel.Add(std::move(t));
  XmlTemplate templ;
  templ.roots.push_back(TemplateNode::ValueRef("c", /*raw=*/true));
  auto out = ApplyTemplate(templ, rel);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<b>bold</b>");
}

TEST(Schemas, PathsAndConcat) {
  SchemaPtr inner = Schema::Make({Attribute::Atomic("v")});
  SchemaPtr a = Schema::Make(
      {Attribute::Atomic("x"), Attribute::Collection("c", inner)});
  SchemaPtr b = Schema::Make({Attribute::Atomic("x")});
  SchemaPtr cat = Schema::Concat(*a, *b);
  EXPECT_EQ(cat->attr(2).name, "x#");  // clash suffixed

  auto path = ResolveAttrPath(*a, "c.v");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 2u);
  EXPECT_EQ(CollectionDepth(*a, *path), 1);
  EXPECT_FALSE(ResolveAttrPath(*a, "x.v").ok());  // atomic crossed
  EXPECT_FALSE(ResolveAttrPath(*a, "zz").ok());
}

}  // namespace
}  // namespace uload
