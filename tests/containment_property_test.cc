// Property sweeps tying Chapter 4's decision procedures to Chapter 2's
// evaluation semantics:
//  * soundness: whenever IsContained(p, q) holds, p's extent over a
//    document conforming to the summary is a subset of q's extent;
//  * canonical models: every mod_S(p) tree realizes a satisfiable shape and
//    return paths match the pattern's annotations;
//  * translation: random generated queries agree between the interpreter
//    and the algebraic evaluation.
#include <gtest/gtest.h>

#include "containment/containment.h"
#include "eval/xam_eval.h"
#include "workload/pattern_gen.h"
#include "workload/xmark.h"
#include "xquery/interp.h"
#include "xquery/parser.h"
#include "xquery/translate.h"

namespace uload {
namespace {

// Multiset inclusion of a's tuples in b's (names ignored, positions used).
bool SubsetOf(const NestedRelation& a, const NestedRelation& b) {
  if (a.schema().size() != b.schema().size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const Tuple& t : a.tuples()) {
    bool found = false;
    for (int64_t j = 0; j < b.size(); ++j) {
      if (!used[j] && TuplesEqual(t, b.tuple(j))) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

class ContainmentSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentSoundness, PositiveContainmentImpliesExtentInclusion) {
  Document doc = GenerateXMark(XMarkScale(0.1));
  PathSummary summary = PathSummary::Build(&doc);
  PatternGenerator gen(&summary, 31337u + GetParam() * 7919u);
  PatternGenOptions opts;
  opts.nodes = 3 + GetParam() % 7;
  opts.return_nodes = 1 + GetParam() % 2;
  // Nested edges disagree on sequences almost always (thesis note), so the
  // sweep uses optional/strict edges only — the generator's default.
  std::vector<Xam> patterns;
  for (int i = 0; i < 6; ++i) patterns.push_back(gen.Generate(opts));
  ContainmentOptions copts;
  copts.model_limit = 4096;
  int positives = 0;
  for (const Xam& p : patterns) {
    for (const Xam& q : patterns) {
      auto contained = IsContained(p, q, summary, copts);
      ASSERT_TRUE(contained.ok()) << contained.status().ToString();
      if (!*contained) continue;
      ++positives;
      auto pd = EvaluateXam(p, doc);
      auto qd = EvaluateXam(q, doc);
      ASSERT_TRUE(pd.ok()) << pd.status().ToString();
      ASSERT_TRUE(qd.ok()) << qd.status().ToString();
      EXPECT_TRUE(SubsetOf(*pd, *qd))
          << "containment claimed but extents disagree\np:\n"
          << p.ToString() << "q:\n"
          << q.ToString() << "p(d):\n"
          << pd->ToString() << "q(d):\n"
          << qd->ToString();
    }
  }
  // Self-containment guarantees at least |patterns| positives.
  EXPECT_GE(positives, 6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContainmentSoundness, ::testing::Range(0, 10));

class CanonicalModelProps : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalModelProps, TreesMatchAnnotations) {
  Document doc = GenerateXMark(XMarkScale(0.1));
  PathSummary summary = PathSummary::Build(&doc);
  PatternGenerator gen(&summary, 999u + GetParam());
  PatternGenOptions opts;
  opts.nodes = 3 + GetParam() % 6;
  opts.return_nodes = 1;
  Xam p = gen.Generate(opts);
  auto annots = PathAnnotations(p, summary);
  auto model = CanonicalModel(p, summary, 4096);
  ASSERT_FALSE(model.empty()) << p.ToString();
  std::vector<XamNodeId> returns = p.ReturnNodes();
  for (const CanonicalTree& t : model) {
    ASSERT_EQ(t.return_paths.size(), returns.size());
    for (size_t i = 0; i < returns.size(); ++i) {
      if (t.return_paths[i] == kNoSummaryNode) continue;  // erased optional
      const auto& allowed = annots[returns[i]];
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), t.return_paths[i]),
                allowed.end())
          << "return path outside the node's annotation";
    }
    // Tree edges respect the summary's parent relation.
    for (size_t n = 1; n < t.nodes.size(); ++n) {
      int parent = t.nodes[n].parent;
      ASSERT_GE(parent, 0);
      EXPECT_EQ(summary.node(t.nodes[n].path).parent, t.nodes[parent].path);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CanonicalModelProps, ::testing::Range(0, 12));

// Random query generator over the XMark structure: simple FLWRs with
// where predicates and constructed results.
std::string RandomQuery(unsigned* seed) {
  auto next = [&]() {
    *seed = *seed * 1103515245u + 12345u;
    return (*seed >> 16) & 0x7fff;
  };
  const char* vars[] = {"person", "item", "open_auction", "closed_auction"};
  const char* subs[][2] = {{"name", "emailaddress"},
                           {"name", "location"},
                           {"initial", "current"},
                           {"price", "date"}};
  int v = next() % 4;
  std::string q = "for $x in doc(\"x\")//" + std::string(vars[v]);
  int mode = next() % 3;
  if (mode == 1) {
    q += " where $x/" + std::string(subs[v][1]) + " ";
  } else if (mode == 2) {
    q += std::string(" where $x/") + subs[v][0] + " != \"zzz\" ";
  }
  q += " return <r>{$x/" + std::string(subs[v][next() % 2]) +
       "/text()}</r>";
  return q;
}

class TranslationAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TranslationAgreement, InterpreterVsAlgebra) {
  Document doc = GenerateXMark(XMarkScale(0.05));
  unsigned seed = 5u + GetParam() * 97u;
  for (int i = 0; i < 3; ++i) {
    std::string q = RandomQuery(&seed);
    auto ast = ParseQuery(q);
    ASSERT_TRUE(ast.ok()) << q;
    auto direct = EvaluateQueryDirect(**ast, doc);
    ASSERT_TRUE(direct.ok()) << q;
    auto tr = TranslateQuery(**ast);
    ASSERT_TRUE(tr.ok()) << q << " -> " << tr.status().ToString();
    auto alg = EvaluateTranslated(*tr, doc);
    ASSERT_TRUE(alg.ok()) << q << " -> " << alg.status().ToString();
    EXPECT_EQ(*direct, *alg) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TranslationAgreement, ::testing::Range(0, 8));

}  // namespace
}  // namespace uload
