// Cardinality estimation from summaries and plan-cost ranking.
#include <gtest/gtest.h>

#include "eval/xam_eval.h"
#include "opt/cost.h"
#include "rewrite/rewriter.h"
#include "storage/storage_models.h"
#include "xam/xam_parser.h"
#include "xml/document.h"

namespace uload {
namespace {

constexpr const char* kLib =
    "<library>"
    "<book><title>A</title><author>x</author><author>y</author></book>"
    "<book><title>B</title><author>z</author></book>"
    "<book><title>C</title><author>w</author></book>"
    "</library>";

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = Document::Parse(kLib);
    ASSERT_TRUE(d.ok());
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }
  Xam P(const std::string& text) {
    auto x = ParseXam(text);
    EXPECT_TRUE(x.ok()) << x.status().ToString();
    return std::move(x).value();
  }
  Document doc_;
  PathSummary summary_;
};

TEST_F(CostTest, ExactForSinglePathPatterns) {
  Xam books = P("xam\nnode e1 label=book id=s\nedge top // j e1\n");
  EXPECT_DOUBLE_EQ(EstimateCardinality(books, summary_), 3.0);
  Xam authors = P("xam\nnode e1 label=author id=s\nedge top // j e1\n");
  EXPECT_DOUBLE_EQ(EstimateCardinality(authors, summary_), 4.0);
}

TEST_F(CostTest, JoinTreesMultiplyPerParent) {
  // book with author: 4 (book, author) pairs.
  Xam p = P(
      "xam\nnode e1 label=book id=s\nnode e2 label=author id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  auto exact = EvaluateXam(p, doc_);
  ASSERT_TRUE(exact.ok());
  double est = EstimateCardinality(p, summary_);
  EXPECT_NEAR(est, static_cast<double>(exact->size()), 0.5);
}

TEST_F(CostTest, PredicatesReduceEstimates) {
  Xam all = P("xam\nnode e1 label=title id=s val\nedge top // j e1\n");
  Xam some = P("xam\nnode e1 label=title id=s val val=\"A\"\n"
               "edge top // j e1\n");
  EXPECT_LT(EstimateCardinality(some, summary_),
            EstimateCardinality(all, summary_));
}

TEST_F(CostTest, NestingCapsMultiplicity) {
  Xam nested = P(
      "xam\nnode e1 label=book id=s\nnode e2 label=author val\n"
      "edge top // j e1\nedge e1 / nj e2\n");
  // One tuple per book regardless of author count.
  EXPECT_NEAR(EstimateCardinality(nested, summary_), 3.0, 0.5);
}

TEST_F(CostTest, PlanCostsOrderSensibly) {
  auto card = [](const std::string&) { return 100.0; };
  PlanPtr scan = LogicalPlan::Scan("v");
  PlanPtr joined = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("v"), LogicalPlan::Scan("w"), "a", Axis::kDescendant,
      "b", JoinVariant::kInner);
  PlanPtr nav = LogicalPlan::Navigate(
      LogicalPlan::Scan("v"), "a", {NavStep{Axis::kDescendant, "x"}},
      NavEmit{true, false, false, false, IdKind::kStructural, "n"});
  double c_scan = EstimatePlanCost(*scan, summary_, card);
  double c_join = EstimatePlanCost(*joined, summary_, card);
  double c_nav = EstimatePlanCost(*nav, summary_, card);
  EXPECT_LT(c_scan, c_join);
  EXPECT_LT(c_scan, c_nav);
  // Index lookups are cheaper than full scans.
  double c_idx = EstimatePlanCost(
      *LogicalPlan::IndexScan("v", {}), summary_, card);
  EXPECT_LT(c_idx, c_scan);
}

TEST_F(CostTest, RewriterPrefersCheaperAccessPath) {
  // An exact tailored view vs assembling from tag views: the tailored view
  // must rank first by cost.
  Xam q = P(
      "xam\nnode e1 label=book id=s\nnode e2 label=title id=s val\n"
      "edge top // j e1\nedge e1 / j e2\n");
  std::vector<NamedXam> views = TagPartitionedModel(summary_);
  views.push_back({"tailored", q});
  Rewriter rewriter(&summary_, views);
  auto r = rewriter.Rewrite(q);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  EXPECT_EQ((*r)[0].views_used, std::vector<std::string>{"tailored"});
  EXPECT_GT((*r)[0].estimated_cost, 0.0);
  // Later (more complex) rewritings cost at least as much.
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_GE((*r)[i].estimated_cost, (*r)[0].estimated_cost);
  }
}

TEST(ChooseWorkerCountTest, RespectsBudgetRowsAndCap) {
  // Serial when the budget or the input is too small to split.
  EXPECT_EQ(ChooseWorkerCount(1000, 0), 1u);
  EXPECT_EQ(ChooseWorkerCount(1000, 1), 1u);
  EXPECT_EQ(ChooseWorkerCount(0, 8), 1u);
  EXPECT_EQ(ChooseWorkerCount(1, 8), 1u);
  // Otherwise min(budget, rows, 64): never more workers than rows, never
  // more than the hard cap.
  EXPECT_EQ(ChooseWorkerCount(1000, 4), 4u);
  EXPECT_EQ(ChooseWorkerCount(3, 8), 3u);
  EXPECT_EQ(ChooseWorkerCount(1'000'000, 1000), 64u);
}

TEST_F(CostTest, ParallelJoinCostReflectsStartup) {
  // With a generous thread budget a big structural join estimates cheaper
  // than serial (the join work divides across workers), while a tiny join
  // stays serial-priced (ChooseWorkerCount refuses to split it).
  PlanPtr join = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("v"), LogicalPlan::Scan("w"), "a", Axis::kDescendant,
      "b", JoinVariant::kInner);
  auto big = [](const std::string&) { return 100000.0; };
  auto tiny = [](const std::string&) { return 1.0; };
  CostModel serial;
  CostModel parallel;
  parallel.thread_budget = 8;
  EXPECT_LT(EstimatePlanCost(*join, summary_, big, parallel),
            EstimatePlanCost(*join, summary_, big, serial));
  EXPECT_EQ(EstimatePlanCost(*join, summary_, tiny, parallel),
            EstimatePlanCost(*join, summary_, tiny, serial));
}

}  // namespace
}  // namespace uload
