// End-to-end physical data independence: the same XQuery runs unchanged over
// widely different storage models — only the catalog (XAM set) changes —
// and always produces the direct interpreter's result (thesis Fig. 5.1).
#include <gtest/gtest.h>

#include "rewrite/query_rewriter.h"
#include "storage/storage_models.h"
#include "workload/xmark.h"
#include "xquery/interp.h"
#include "xquery/parser.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

class IntegrationTest : public ::testing::Test {
 protected:
  void Load(const char* xml) {
    auto d = Document::Parse(xml);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }
  void LoadXMark() {
    doc_ = GenerateXMark(XMarkScale(0.1));
    summary_ = PathSummary::Build(&doc_);
  }

  void InstallModel(std::vector<NamedXam> model) {
    catalog_ = Catalog();
    for (NamedXam& v : model) {
      auto st = catalog_.AddXam(v.name, std::move(v.xam), doc_);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }

  // The physical-independence check: rewritten execution == direct result.
  void CheckQuery(const std::string& query) {
    auto ast = ParseQuery(query);
    ASSERT_TRUE(ast.ok()) << ast.status().ToString();
    auto direct = EvaluateQueryDirect(**ast, doc_);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    QueryRewriter qr(&summary_, &catalog_);
    auto rewritten = qr.Rewrite(**ast);
    ASSERT_TRUE(rewritten.ok())
        << query << " -> " << rewritten.status().ToString();
    auto result = qr.Execute(*rewritten, &doc_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*direct, *result) << "query: " << query;
  }

  Document doc_;
  PathSummary summary_;
  Catalog catalog_;
};

TEST_F(IntegrationTest, BibOverTagPartitionedStore) {
  Load(kBib);
  InstallModel(TagPartitionedModel(summary_));
  CheckQuery("for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>");
  CheckQuery(
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>");
}

TEST_F(IntegrationTest, BibOverPathPartitionedStore) {
  Load(kBib);
  InstallModel(PathPartitionedModel(summary_));
  CheckQuery("for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>");
  CheckQuery(
      "for $x in doc(\"bib\")//phdthesis return <t>{$x/title/text()}</t>");
}

TEST_F(IntegrationTest, SameQueryAcrossStores) {
  Load(kBib);
  const std::string q =
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>";
  auto ast = ParseQuery(q);
  ASSERT_TRUE(ast.ok());
  auto direct = EvaluateQueryDirect(**ast, doc_);
  ASSERT_TRUE(direct.ok());

  std::vector<std::vector<NamedXam>> models;
  models.push_back(TagPartitionedModel(summary_));
  models.push_back(PathPartitionedModel(summary_));
  for (auto& model : models) {
    InstallModel(std::move(model));
    QueryRewriter qr(&summary_, &catalog_);
    auto rewritten = qr.Rewrite(**ast);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    auto result = qr.Execute(*rewritten, &doc_);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*direct, *result);
  }
}

TEST_F(IntegrationTest, CustomViewBeatsGenericStore) {
  Load(kBib);
  // A tailored view plus the generic store: the rewriter must pick the
  // cheaper single-view plan for the matching query.
  std::vector<NamedXam> model = TagPartitionedModel(summary_);
  model.push_back(TIndex("book", "title"));
  InstallModel(std::move(model));
  QueryRewriter qr(&summary_, &catalog_);
  auto r = qr.Rewrite("for $x in doc(\"b\")//book return <t>{$x/title/text()}</t>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->pattern_rewritings.size(), 1u);
  // Prefer plans scanning fewer views.
  EXPECT_LE(r->pattern_rewritings[0].views_used.size(), 2u);
}

TEST_F(IntegrationTest, XMarkQueriesOverTagStore) {
  LoadXMark();
  InstallModel(TagPartitionedModel(summary_));
  CheckQuery(
      "for $x in doc(\"x\")//people/person return "
      "<p>{$x/name/text()}</p>");
  CheckQuery(
      "for $x in doc(\"x\")//closed_auction where $x/price > 100 "
      "return <p>{$x/price/text()}</p>");
}

TEST_F(IntegrationTest, MissingViewsSurfaceNotFound) {
  Load(kBib);
  InstallModel({});  // empty catalog
  QueryRewriter qr(&summary_, &catalog_);
  auto r = qr.Rewrite("doc(\"b\")//book/title");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace uload
