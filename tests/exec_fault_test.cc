// Fault-injection sweep over the streaming engine (the robustness contract
// of DESIGN.md §8): any operator call may fail at any point — injected via
// ExecContext's FaultSpec — and the engine must always return a clean
// Status: no crash, no hang, no leak (ASAN), no race (TSAN), every exchange
// worker joined, every budget charge returned, and the *same* Engine must
// answer the next query byte-identically to an unfaulted run.
//
// The sweep enumerates fault points by registration ordinal × call site ×
// call number across the engine-test corpus at thread budgets {1, 4} and
// batch sizes {1, 1024}, plus a seeded random-failure mode. scripts/check.sh
// --fault-injection runs exactly this binary under ASAN and TSAN.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "workload/dblp.h"

namespace uload {
namespace {

// Per-test hang enforcement: a hung teardown (deadlocked join, Pop on an
// unpoisoned queue) would otherwise stall the sanitizer CI legs for their
// whole job timeout. The watchdog aborts the process with a diagnostic
// instead, which gtest reports as a failed test.
class Watchdog {
 public:
  explicit Watchdog(int seconds) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, std::chrono::seconds(seconds),
                        [this] { return done_; })) {
        std::fprintf(stderr,
                     "fault-sweep watchdog: test still running after %d s — "
                     "aborting (suspected hang)\n",
                     seconds);
        std::abort();
      }
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

struct Config {
  size_t batch_size;
  size_t threads;
};

const Config kConfigs[] = {
    {1, 1}, {1024, 1}, {1, 4}, {1024, 4},
};

// Small but exchange-capable corpus: enough rows that thread_budget=4
// actually fans structural joins out over workers.
Document MakeDoc() {
  DblpOptions o;
  o.records = 60;
  return GenerateDblp(o);
}

const char* kQuery =
    "for $x in doc(\"dblp\")//article return <t>{$x/title/text()}</t>";

std::unique_ptr<Engine> MakeEngine(const Config& c) {
  Engine::Options o;
  o.batch_size = c.batch_size;
  o.thread_budget = c.threads;
  // A generous budget keeps the tracker engaged (all charges exercised)
  // without tripping; the sweep asserts it returns to zero either way.
  o.memory_limit_bytes = int64_t{1} << 30;
  auto engine = std::make_unique<Engine>(MakeDoc(), o);
  EXPECT_TRUE(engine->InstallModel(TagPartitionedModel(engine->summary())).ok());
  return engine;
}

// One faulted run followed by one clean run on the same engine. The faulted
// run must either fail cleanly (the injected kInternal, or a governor code)
// or — when the targeted call is never reached — succeed byte-identically.
// The clean run must always reproduce `expected`.
void RunFaultedThenRecover(Engine* engine, const FaultSpec& fault,
                           const std::string& expected,
                           const std::string& where) {
  Engine::Options o = engine->options();
  o.fault = fault;
  engine->SetOptions(o);
  Result<std::string> faulted = engine->Run(kQuery);
  if (faulted.ok()) {
    EXPECT_EQ(*faulted, expected) << where;
  } else {
    EXPECT_EQ(faulted.status().code(), StatusCode::kInternal) << where;
    EXPECT_NE(faulted.status().message().find("injected fault"),
              std::string::npos)
        << where << ": " << faulted.status().ToString();
  }
  // Aborted or not, every budget charge must have been returned.
  EXPECT_EQ(engine->memory().used(), 0) << where;
  // The engine must answer the next, unfaulted query as if nothing
  // happened.
  o.fault = FaultSpec();
  engine->SetOptions(o);
  Result<std::string> clean = engine->Run(kQuery);
  ASSERT_TRUE(clean.ok()) << where << ": " << clean.status().ToString();
  EXPECT_EQ(*clean, expected) << where;
  EXPECT_EQ(engine->memory().used(), 0) << where;
}

TEST(ExecFaultSweep, DeterministicInjectionAcrossAllOperators) {
  Watchdog watchdog(480);
  for (const Config& c : kConfigs) {
    std::unique_ptr<Engine> engine = MakeEngine(c);
    Result<std::string> baseline = engine->Run(kQuery);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    // Registration ordinals address the fault points; the published metrics
    // of the baseline run enumerate them (worker pipelines use the same
    // ordinal space per worker context, a subset of [0, n)).
    int n = static_cast<int>(engine->LastQueryMetrics().size());
    ASSERT_GT(n, 0);
    for (int op = 0; op < n; ++op) {
      for (FaultSpec::Site site :
           {FaultSpec::Site::kOpen, FaultSpec::Site::kNextBatch}) {
        for (int64_t call : {int64_t{0}, int64_t{2}}) {
          FaultSpec f;
          f.op_index = op;
          f.site = site;
          f.call_index = call;
          std::string where =
              "batch=" + std::to_string(c.batch_size) +
              " threads=" + std::to_string(c.threads) +
              " op=" + std::to_string(op) +
              " site=" + (site == FaultSpec::Site::kOpen ? "open" : "next") +
              " call=" + std::to_string(call);
          RunFaultedThenRecover(engine.get(), f, *baseline, where);
        }
      }
    }
  }
}

TEST(ExecFaultSweep, AnyOperatorFirstCallFails) {
  Watchdog watchdog(240);
  for (const Config& c : kConfigs) {
    std::unique_ptr<Engine> engine = MakeEngine(c);
    Result<std::string> baseline = engine->Run(kQuery);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    FaultSpec f;
    f.op_index = -1;  // every operator
    f.call_index = 0;
    RunFaultedThenRecover(engine.get(), f, *baseline,
                          "any-op batch=" + std::to_string(c.batch_size) +
                              " threads=" + std::to_string(c.threads));
  }
}

TEST(ExecFaultSweep, SeededRandomInjection) {
  Watchdog watchdog(240);
  for (const Config& c : kConfigs) {
    std::unique_ptr<Engine> engine = MakeEngine(c);
    Result<std::string> baseline = engine->Run(kQuery);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      FaultSpec f;
      f.random_seed = seed;
      f.random_prob = 0.05;
      RunFaultedThenRecover(engine.get(), f, *baseline,
                            "seed=" + std::to_string(seed) +
                                " batch=" + std::to_string(c.batch_size) +
                                " threads=" + std::to_string(c.threads));
    }
  }
}

// Faults restricted to the exchange collectors: the worker-pool teardown
// path (poisoned queues, joined threads, drained budget charges) is the
// deadlock-prone one, so it gets its own targeted sweep.
TEST(ExecFaultSweep, ExchangeCollectorFaults) {
  Watchdog watchdog(240);
  Config c{1024, 4};
  std::unique_ptr<Engine> engine = MakeEngine(c);
  Result<std::string> baseline = engine->Run(kQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (const char* target : {"Exchange", "ParallelScan", "Sort_phi"}) {
    for (int64_t call : {int64_t{0}, int64_t{1}, int64_t{3}}) {
      FaultSpec f;
      f.op_substring = target;
      f.call_index = call;
      RunFaultedThenRecover(
          engine.get(), f, *baseline,
          std::string("target=") + target + " call=" + std::to_string(call));
    }
  }
}

}  // namespace
}  // namespace uload
