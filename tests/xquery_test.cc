// Parser, interpreter, translation and pattern extraction (thesis Ch. 3).
// The key property: alg(q) evaluated through XAM semantics produces exactly
// the same serialized output as the direct navigational interpreter.
#include <gtest/gtest.h>

#include "xquery/interp.h"
#include "xquery/parser.h"
#include "xquery/pattern_extract.h"
#include "xquery/translate.h"

namespace uload {
namespace {

constexpr const char* kBib =
    "<bib>"
    "<book year=\"1999\">"
    "<title>Data on the Web</title>"
    "<author>Abiteboul</author>"
    "<author>Suciu</author>"
    "</book>"
    "<book year=\"2002\">"
    "<title>The Syntactic Web</title>"
    "<author>Tom Lerners-Bee</author>"
    "</book>"
    "<phdthesis year=\"2004\">"
    "<title>The Web: next generation</title>"
    "<author>Jim Smith</author>"
    "</phdthesis>"
    "</bib>";

// The Fig. 3.1-shaped document: a tree exercising nested blocks, optional
// branches and value predicates.
constexpr const char* kAbc =
    "<a>"
    "<x1><c>c1</c><c>c2</c></x1>"
    "<x2></x2>"
    "<b>"
    "<e>e1</e>"
    "<d><f><g>5</g><h>h1</h></f><f><g>7</g><h>h2</h></f></d>"
    "</b>"
    "<b>"
    "<e>e2</e>"
    "</b>"
    "<b>"
    "<d><f><g>5</g><h>h3</h></f></d>"
    "</b>"
    "</a>";

class XQueryTest : public ::testing::Test {
 protected:
  Document Parse(const char* xml) {
    auto d = Document::Parse(xml);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return std::move(d).value();
  }

  // Asserts interpreter(q) == EvaluateTranslated(alg(q)) and returns it.
  std::string CheckAgree(const std::string& query, const Document& doc) {
    auto ast = ParseQuery(query);
    EXPECT_TRUE(ast.ok()) << query << " -> " << ast.status().ToString();
    if (!ast.ok()) return "";
    auto direct = EvaluateQueryDirect(**ast, doc);
    EXPECT_TRUE(direct.ok()) << direct.status().ToString();
    auto tr = TranslateQuery(**ast);
    EXPECT_TRUE(tr.ok()) << query << " -> " << tr.status().ToString();
    if (!tr.ok()) return "";
    auto algv = EvaluateTranslated(*tr, doc);
    EXPECT_TRUE(algv.ok()) << query << " -> " << algv.status().ToString();
    if (!direct.ok() || !algv.ok()) return "";
    EXPECT_EQ(*direct, *algv) << "query: " << query << "\ntranslation:\n"
                              << tr->ToString();
    return *direct;
  }
};

TEST_F(XQueryTest, ParseSimplePath) {
  auto q = ParseQuery("doc(\"bib.xml\")//book/title");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->kind, Expr::Kind::kPath);
  EXPECT_EQ((*q)->path.steps.size(), 2u);
  EXPECT_TRUE((*q)->path.steps[0].descendant);
}

TEST_F(XQueryTest, ParseFlwr) {
  auto q = ParseQuery(
      "for $x in doc(\"bib.xml\")//book "
      "where $x/year = \"1999\" and $x/title = \"Data on the Web\" "
      "return $x/author");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->kind, Expr::Kind::kFlwr);
  EXPECT_EQ((*q)->flwr.bindings.size(), 1u);
  EXPECT_EQ((*q)->flwr.where.size(), 2u);
}

TEST_F(XQueryTest, ParseNestedConstructor) {
  auto q = ParseQuery(
      "for $x in doc(\"x\")//item return "
      "<res_item>{$x/name}, {for $y in $x//description return "
      "<res_desc>{$y//listitem}</res_desc>}</res_item>");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST_F(XQueryTest, ParseErrors) {
  EXPECT_FALSE(ParseQuery("for $x in").ok());
  EXPECT_FALSE(ParseQuery("//a[").ok());
  EXPECT_FALSE(ParseQuery("for $x doc(\"d\")//a return $x").ok());
  EXPECT_FALSE(ParseQuery("<a>{//b}</c>").ok());
}

TEST_F(XQueryTest, DirectInterpPath) {
  Document doc = Parse(kBib);
  auto q = ParseQuery("doc(\"bib.xml\")//book/title");
  ASSERT_TRUE(q.ok());
  auto r = EvaluateQueryDirect(**q, doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r,
            "<title>Data on the Web</title>"
            "<title>The Syntactic Web</title>");
}

TEST_F(XQueryTest, AgreePlainPaths) {
  Document doc = Parse(kBib);
  CheckAgree("doc(\"bib.xml\")//book/title", doc);
  CheckAgree("doc(\"bib.xml\")/bib/book/author", doc);
  CheckAgree("doc(\"bib.xml\")//author", doc);
  CheckAgree("doc(\"bib.xml\")//*/title/text()", doc);
  CheckAgree("doc(\"bib.xml\")//book[@year=\"1999\"]/title", doc);
  CheckAgree("doc(\"bib.xml\")//book[@year]/title", doc);
  CheckAgree("doc(\"bib.xml\")//book[author=\"Suciu\"]/title", doc);
}

TEST_F(XQueryTest, AgreeSimpleFlwr) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree(
      "for $x in doc(\"b\")//book where $x/@year = \"1999\" "
      "return <info>{$x/author}{$x/title}</info>",
      doc);
  EXPECT_EQ(r,
            "<info><author>Abiteboul</author><author>Suciu</author>"
            "<title>Data on the Web</title></info>");
}

TEST_F(XQueryTest, AgreeFlwrAllBooks) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree(
      "for $x in doc(\"b\")//book return <info>{$x/title/text()}</info>",
      doc);
  EXPECT_EQ(r, "<info>Data on the Web</info><info>The Syntactic Web</info>");
}

TEST_F(XQueryTest, AgreeWhereExistence) {
  Document doc = Parse(kBib);
  CheckAgree("for $x in doc(\"b\")//* where $x/@year return $x/title", doc);
}

TEST_F(XQueryTest, AgreeNumericComparison) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree(
      "for $x in doc(\"b\")//book where $x/@year > 2000 "
      "return $x/title/text()",
      doc);
  EXPECT_EQ(r, "The Syntactic Web");
}

TEST_F(XQueryTest, AgreeChainedVariables) {
  Document doc = Parse(kBib);
  CheckAgree(
      "for $x in doc(\"b\")//book, $y in $x/author "
      "return <pair>{$x/title/text()}{$y/text()}</pair>",
      doc);
}

TEST_F(XQueryTest, AgreeUnrelatedVariables) {
  Document doc = Parse(kBib);
  // Cartesian product of books and theses.
  CheckAgree(
      "for $x in doc(\"b\")//book, $y in doc(\"b\")//phdthesis "
      "return <p>{$x/title/text()}{$y/title/text()}</p>",
      doc);
}

TEST_F(XQueryTest, AgreeValueJoin) {
  Document doc = Parse(kBib);
  // Books and theses from the same year (none here) and <= (some).
  CheckAgree(
      "for $x in doc(\"b\")//book, $y in doc(\"b\")//phdthesis "
      "where $x/@year = $y/@year return <p>{$x/title}</p>",
      doc);
  CheckAgree(
      "for $x in doc(\"b\")//book, $y in doc(\"b\")//phdthesis "
      "where $x/@year < $y/@year return <p>{$x/title/text()}</p>",
      doc);
}

TEST_F(XQueryTest, AgreeTopLevelConstructor) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree("<all>{doc(\"b\")//author}</all>", doc);
  EXPECT_EQ(r.substr(0, 5), "<all>");
  // Exactly one <all> element.
  EXPECT_EQ(r.find("<all>", 1), std::string::npos);
}

TEST_F(XQueryTest, AgreeNestedBlocks) {
  Document doc = Parse(kAbc);
  // Nested FLWR grouped inside the outer constructor.
  std::string r = CheckAgree(
      "for $y in doc(\"d\")//b return "
      "<res>{$y/e}{for $z in $y//d return <inner>{$z//h}</inner>}</res>",
      doc);
  // Three <res> (one per b); first has e1 + inner with h1 h2; second e2 and
  // no inner; third inner with h3.
  EXPECT_EQ(r,
            "<res><e>e1</e><inner><h>h1</h><h>h2</h></inner></res>"
            "<res><e>e2</e></res>"
            "<res><inner><h>h3</h></inner></res>");
}

TEST_F(XQueryTest, AgreeNestedBlockWithWhere) {
  Document doc = Parse(kAbc);
  std::string r = CheckAgree(
      "for $y in doc(\"d\")//b return "
      "<res>{for $z in $y//f where $z/g = 5 return <k>{$z/h}</k>}</res>",
      doc);
  EXPECT_EQ(r,
            "<res><k><h>h1</h></k></res>"
            "<res></res>"
            "<res><k><h>h3</h></k></res>");
}

TEST_F(XQueryTest, AgreeFig31Shape) {
  Document doc = Parse(kAbc);
  // The motivating query shape of §3.1: two unrelated variables, optional
  // return paths, a nested block spanning two more variables.
  CheckAgree(
      "for $x in doc(\"d\")/a/*, $y in doc(\"d\")//b return "
      "<res1>{$x//c,"
      "<res2>{$y//e,"
      "for $z in $y//d, $t in $z//f where $t/g = 5 "
      "return <res3>{$t//h}</res3>}</res2>}</res1>",
      doc);
}

TEST_F(XQueryTest, Fig31PatternShapes) {
  auto ep = ExtractPatterns(
      "for $x in doc(\"d\")/a/*, $y in doc(\"d\")//b return "
      "<res1>{$x//c,"
      "<res2>{$y//e,"
      "for $z in $y//d, $t in $z//f where $t/g = 5 "
      "return <res3>{$t//h}</res3>}</res2>}</res1>");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  // Two maximal patterns (V10 for $x, V11 for $y) — the nested block did NOT
  // open a new pattern: patterns span nested FLWR blocks.
  ASSERT_EQ(ep->patterns.size(), 2u);
  const Xam& v10 = ep->patterns[0];
  const Xam& v11 = ep->patterns[1];
  // V10: top -/ a -/ * (ID) -//no c (Cont). 4 nodes incl. top.
  EXPECT_EQ(v10.size(), 4);
  EXPECT_TRUE(v10.HasOptionalEdges());
  // V11: top -// b (ID) -//no e(Cont), -//no d (ID) -// f (ID) -/s g[=5]
  // -//no h (Cont): 7 nodes incl. top.
  EXPECT_EQ(v11.size(), 7);
  EXPECT_TRUE(v11.HasNestedEdges());
  // The where predicate was pushed into the pattern as a decorated node.
  EXPECT_TRUE(v11.IsDecorated());
}

TEST_F(XQueryTest, CompensationRecordedForOuterRefInNestedBlock) {
  // e is emitted inside the d-loop but belongs to $y: the pattern cannot
  // express the d -> e dependency; a compensating selection is recorded.
  auto ep = ExtractPatterns(
      "for $y in doc(\"d\")//b return "
      "<res1>{for $z in $y//d return <res2>{$y//e}</res2>}</res1>");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  ASSERT_EQ(ep->patterns.size(), 1u);
  ASSERT_EQ(ep->compensations.size(), 1u);
  std::string comp = ep->compensations[0]->ToString();
  EXPECT_NE(comp.find("is not null"), std::string::npos);
  EXPECT_NE(comp.find("is null"), std::string::npos);
}

TEST_F(XQueryTest, AgreeOuterRefInNestedBlock) {
  Document doc = Parse(kAbc);
  std::string r = CheckAgree(
      "for $y in doc(\"d\")//b return "
      "<res1>{for $z in $y//d return <res2>{$y/e}</res2>}</res1>",
      doc);
  EXPECT_EQ(r,
            "<res1><res2><e>e1</e></res2></res1>"
            "<res1></res1>"
            "<res1><res2></res2></res1>");
}

TEST_F(XQueryTest, AgreeContains) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree(
      "for $x in doc(\"b\")//book/title where $x contains \"Web\" "
      "return $x/text()",
      doc);
  EXPECT_EQ(r, "Data on the WebThe Syntactic Web");
}

TEST_F(XQueryTest, PatternsAreMaximal) {
  // A chained query stays in ONE pattern even across a nested block.
  auto ep = ExtractPatterns(
      "for $x in doc(\"d\")//b return "
      "<r>{for $z in $x//d return <s>{$z//h}</s>}</r>");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep->patterns.size(), 1u);
  // Unrelated roots split patterns.
  auto ep2 = ExtractPatterns(
      "for $x in doc(\"d\")//b, $y in doc(\"d\")//a return <r></r>");
  ASSERT_TRUE(ep2.ok());
  EXPECT_EQ(ep2->patterns.size(), 2u);
}

TEST_F(XQueryTest, AgreeEmptyResults) {
  Document doc = Parse(kBib);
  EXPECT_EQ(CheckAgree("doc(\"b\")//nonexistent", doc), "");
  EXPECT_EQ(CheckAgree(
                "for $x in doc(\"b\")//book where $x/@year = \"1800\" "
                "return $x/title",
                doc),
            "");
}

TEST_F(XQueryTest, AgreeAttributeOutput) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree(
      "for $x in doc(\"b\")//book return <y>{$x/@year}</y>", doc);
  // Attribute value emitted (serialized as its value through Val storage).
  EXPECT_NE(r.find("1999"), std::string::npos);
}

}  // namespace
}  // namespace uload

namespace uload {
namespace {

class LetClauseTest : public XQueryTest {};

TEST_F(LetClauseTest, LetAliasInReturnAndWhere) {
  Document doc = Parse(kBib);
  std::string r = CheckAgree(
      "for $x in doc(\"b\")//book let $t := $x/title "
      "where $t = \"Data on the Web\" return <r>{$t/text()}</r>",
      doc);
  EXPECT_EQ(r, "<r>Data on the Web</r>");
}

TEST_F(LetClauseTest, LetChaining) {
  Document doc = Parse(kBib);
  CheckAgree(
      "for $x in doc(\"b\")//book let $t := $x/title, $v := $t "
      "return <r>{$v/text()}</r>",
      doc);
}

TEST_F(LetClauseTest, LetInForBinding) {
  Document doc = Parse(kAbc);
  CheckAgree(
      "for $y in doc(\"d\")//b let $d := $y//d return "
      "<r>{for $f in $d//f where $f/g = 5 return <k>{$f/h}</k>}</r>",
      doc);
}

TEST_F(LetClauseTest, LenientEqualsSpelling) {
  auto q = ParseQuery(
      "for $x in doc(\"b\")//book let $t = $x/title return $t");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
}

}  // namespace
}  // namespace uload
