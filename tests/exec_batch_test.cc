// Differential test for the batch-at-a-time physical engine: for every plan
// in the corpus, the batched executor must produce the same relation as the
// materializing Evaluate(), and its own output must be byte-identical across
// batch sizes 1, 2, and 1024 — the sizes that exercise batch-boundary edges
// (every-tuple-a-boundary, odd split, everything-in-one-batch).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/tag_collections.h"
#include "exec/physical.h"
#include "rewrite/query_rewriter.h"
#include "storage/storage_models.h"
#include "workload/xmark.h"
#include "xquery/parser.h"

namespace uload {
namespace {

const size_t kBatchSizes[] = {1, 2, TupleBatch::kDefaultCapacity};

constexpr const char* kBib =
    "<bib>"
    "<book><title>Data on the Web</title><year>1999</year>"
    "<author>Abiteboul</author><author>Suciu</author></book>"
    "<book><title>The Syntactic Web</title><year>2002</year>"
    "<author>Tim</author></book>"
    "<phdthesis><title>XAMs</title><year>2007</year>"
    "<author>Arion</author></phdthesis>"
    "</bib>";

// Runs `plan` through the physical engine at every batch size and checks
// (a) bag equality with the materializing evaluator, and (b) byte-identical
// output (schema, tuple order, tuple contents) across all batch sizes.
void CheckPlanDifferential(const PlanPtr& plan, const EvalContext& ctx) {
  auto materialized = Evaluate(*plan, ctx);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

  std::vector<NestedRelation> per_size;
  for (size_t bs : kBatchSizes) {
    ExecContext exec(bs);
    auto r = ExecutePhysicalPlan(plan, ctx, &exec);
    ASSERT_TRUE(r.ok()) << "batch=" << bs << ": " << r.status().ToString();
    EXPECT_TRUE(materialized->EqualsUnordered(*r))
        << "batch=" << bs << " evaluator rows=" << materialized->size()
        << " physical rows=" << r->size();
    per_size.push_back(std::move(*r));
  }
  for (size_t i = 1; i < per_size.size(); ++i) {
    EXPECT_TRUE(per_size[0].Equals(per_size[i]))
        << "batch=" << kBatchSizes[i] << " diverges from batch="
        << kBatchSizes[0];
    EXPECT_EQ(per_size[0].ToString(), per_size[i].ToString());
  }
}

class ExecBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = GenerateXMark(XMarkScale(0.05));
    people_ = TagCollection(doc_, "person", {"p", true, true, false});
    names_ = TagCollection(doc_, "name", {"n", true, true, false});
    ctx_.relations = {{"people", &people_}, {"names", &names_}};
    ctx_.document = &doc_;
  }

  Document doc_;
  NestedRelation people_;
  NestedRelation names_;
  EvalContext ctx_;
};

TEST_F(ExecBatchTest, ScanSelectProjectSort) {
  CheckPlanDifferential(LogicalPlan::Scan("people"), ctx_);
  CheckPlanDifferential(
      LogicalPlan::Select(LogicalPlan::Scan("names"),
                          Predicate::NotNull("n_ID")),
      ctx_);
  CheckPlanDifferential(LogicalPlan::Project(LogicalPlan::Scan("names"),
                                             {"n_Val"}, /*dedup=*/true),
                        ctx_);
}

TEST_F(ExecBatchTest, JoinsAcrossVariants) {
  for (JoinVariant v : {JoinVariant::kInner, JoinVariant::kSemi,
                        JoinVariant::kLeftOuter, JoinVariant::kNestJoin,
                        JoinVariant::kNestOuter}) {
    CheckPlanDifferential(
        LogicalPlan::ValueJoin(LogicalPlan::Scan("people"),
                               LogicalPlan::Scan("names"), "p_Val",
                               Comparator::kEq, "n_Val", v, "grp"),
        ctx_);
    CheckPlanDifferential(
        LogicalPlan::StructuralJoin(LogicalPlan::Scan("people"),
                                    LogicalPlan::Scan("names"), "p_ID",
                                    Axis::kDescendant, "n_ID", v, "grp"),
        ctx_);
  }
}

TEST_F(ExecBatchTest, ProductUnionNavigate) {
  CheckPlanDifferential(LogicalPlan::Product(LogicalPlan::Scan("people"),
                                             LogicalPlan::Scan("names")),
                        ctx_);
  CheckPlanDifferential(LogicalPlan::Union(LogicalPlan::Scan("names"),
                                           LogicalPlan::Scan("names")),
                        ctx_);
  NavEmit emit;
  emit.id = true;
  emit.val = true;
  emit.prefix = "em";
  CheckPlanDifferential(
      LogicalPlan::Navigate(LogicalPlan::Scan("people"), "p_ID",
                            {NavStep{Axis::kChild, "emailaddress"}}, emit,
                            JoinVariant::kLeftOuter),
      ctx_);
}

// The integration-test query corpus: every rewritten pattern plan must agree
// between the batched executor and the evaluator at every batch size.
class ExecBatchCorpusTest : public ::testing::Test {
 protected:
  void Load(const char* xml) {
    auto d = Document::Parse(xml);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    doc_ = std::move(d).value();
    summary_ = PathSummary::Build(&doc_);
  }
  void LoadXMark() {
    doc_ = GenerateXMark(XMarkScale(0.1));
    summary_ = PathSummary::Build(&doc_);
  }
  void InstallModel(std::vector<NamedXam> model) {
    catalog_ = Catalog();
    for (NamedXam& v : model) {
      auto st = catalog_.AddXam(v.name, std::move(v.xam), doc_);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }
  void CheckQueryPlans(const std::string& query) {
    QueryRewriter qr(&summary_, &catalog_);
    auto r = qr.Rewrite(query);
    ASSERT_TRUE(r.ok()) << query << " -> " << r.status().ToString();
    EvalContext ctx = catalog_.MakeEvalContext(&doc_);
    for (const Rewriting& rw : r->pattern_rewritings) {
      CheckPlanDifferential(rw.plan, ctx);
    }
  }

  Document doc_;
  PathSummary summary_;
  Catalog catalog_;
};

TEST_F(ExecBatchCorpusTest, BibQueriesOverTagStore) {
  Load(kBib);
  InstallModel(TagPartitionedModel(summary_));
  CheckQueryPlans(
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>");
  CheckQueryPlans(
      "for $x in doc(\"bib\")//book where $x/year = \"1999\" "
      "return <a>{$x/author/text()}</a>");
}

TEST_F(ExecBatchCorpusTest, BibQueriesOverPathStore) {
  Load(kBib);
  InstallModel(PathPartitionedModel(summary_));
  CheckQueryPlans(
      "for $x in doc(\"bib\")//book return <t>{$x/title/text()}</t>");
  CheckQueryPlans(
      "for $x in doc(\"bib\")//phdthesis return <t>{$x/title/text()}</t>");
}

TEST_F(ExecBatchCorpusTest, XMarkQueriesOverTagStore) {
  LoadXMark();
  InstallModel(TagPartitionedModel(summary_));
  CheckQueryPlans(
      "for $x in doc(\"x\")//people/person return <p>{$x/name/text()}</p>");
  CheckQueryPlans(
      "for $x in doc(\"x\")//closed_auction where $x/price > 100 "
      "return <p>{$x/price/text()}</p>");
}

// EXPLAIN ANALYZE: after an execution the context-bound tree renders its
// per-operator batch/tuple/time counters, and the counters add up.
TEST_F(ExecBatchTest, DescribeAnalyzeReportsCounters) {
  PlanPtr join = LogicalPlan::StructuralJoin(
      LogicalPlan::Scan("people"), LogicalPlan::Scan("names"), "p_ID",
      Axis::kChild, "n_ID", JoinVariant::kInner);
  ExecContext exec(/*batch_size=*/64);
  auto phys = CompilePhysicalPlan(join, ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  auto rel = ExecutePhysical(phys->get());
  ASSERT_TRUE(rel.ok());

  std::string analyze = (*phys)->DescribeAnalyze();
  EXPECT_NE(analyze.find("StackTreeDesc_phi"), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("batches="), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("tuples="), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("next="), std::string::npos) << analyze;

  // The root's counters describe exactly the produced relation.
  const OperatorMetrics& root = (*phys)->metrics();
  EXPECT_EQ(root.tuples_produced, rel->size());
  EXPECT_GE(root.batches_produced, (rel->size() + 63) / 64);
  // Every operator registered with the context; scans produced at least the
  // base relations.
  EXPECT_GE(exec.metrics().size(), 3u);
  EXPECT_GE(exec.total_tuples(), rel->size());
}

// Batches respect the configured fill target.
TEST_F(ExecBatchTest, BatchSizeIsHonored) {
  ExecContext exec(/*batch_size=*/7);
  auto phys = CompilePhysicalPlan(LogicalPlan::Scan("people"), ctx_, &exec);
  ASSERT_TRUE(phys.ok());
  ASSERT_TRUE((*phys)->Open().ok());
  int64_t total = 0;
  for (;;) {
    auto b = (*phys)->NextBatch();
    ASSERT_TRUE(b.ok());
    if (!b->has_value()) break;
    EXPECT_LE((*b)->size(), 7u);
    EXPECT_FALSE((*b)->empty());
    total += static_cast<int64_t>((*b)->size());
  }
  (*phys)->Close();
  EXPECT_EQ(total, people_.size());
}

// The NextTuple() adapter replays the stream exactly, including re-opens.
TEST_F(ExecBatchTest, NextTupleAdapterMatchesBatches) {
  auto phys = CompilePhysicalPlan(LogicalPlan::Scan("names"), ctx_);
  ASSERT_TRUE(phys.ok());
  ASSERT_TRUE((*phys)->Open().ok());
  TupleList streamed;
  for (;;) {
    auto t = (*phys)->NextTuple();
    ASSERT_TRUE(t.ok());
    if (!t->has_value()) break;
    streamed.push_back(std::move(**t));
  }
  (*phys)->Close();
  ASSERT_EQ(static_cast<int64_t>(streamed.size()), names_.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(TuplesEqual(streamed[i], names_.tuple(i)));
  }
}

}  // namespace
}  // namespace uload
