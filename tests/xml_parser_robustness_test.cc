// Parser hardening corpus: the ingestion edge of the engine must uphold the
// same failure contract as the executor (DESIGN.md §8) — malformed input of
// any kind comes back as a clean ParseError Status, never a crash, hang, or
// stack overflow. The corpus covers truncation at every byte boundary,
// garbage and binary bytes, unterminated constructs, mismatched tags,
// entity edge cases, and nesting past the explicit recursion depth limit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "xml/parser.h"

namespace uload {
namespace {

// A representative well-formed document exercising every construct the
// parser supports.
const char* kGood =
    "<?xml version=\"1.0\"?>"
    "<!DOCTYPE bib [<!ELEMENT bib ANY>]>"
    "<bib id=\"b1\">"
    "<!-- a comment -->"
    "<book year='1999' title=\"Data &amp; the Web\">"
    "<author>Abiteboul &lt;Serge&gt;</author>"
    "<![CDATA[raw <chars> &amp; kept]]>"
    "<?pi target?>"
    "text &#65;&#x42; tail"
    "</book>"
    "</bib>";

TEST(XmlParserRobustness, GoodDocumentStillParses) {
  auto d = ParseXml(kGood);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
}

TEST(XmlParserRobustness, TruncationAtEveryByteIsAStatusNeverACrash) {
  std::string good(kGood);
  for (size_t len = 0; len < good.size(); ++len) {
    auto d = ParseXml(std::string_view(good).substr(0, len));
    // Any prefix is either a (rare) complete document or a ParseError; the
    // assertion is simply that we got a Status back at all.
    if (!d.ok()) {
      EXPECT_EQ(d.status().code(), StatusCode::kParseError)
          << "len=" << len << ": " << d.status().ToString();
    }
  }
}

TEST(XmlParserRobustness, GarbageInputsReturnParseError) {
  const std::vector<std::string> garbage = {
      "",
      " \t\n ",
      "not xml at all",
      "<",
      "<>",
      "</close-before-open>",
      "<a></b>",
      "<a attr></a>",
      "<a attr=></a>",
      "<a attr=unquoted></a>",
      "<a attr=\"unterminated></a>",
      "<a><!-- unterminated comment</a>",
      "<a><![CDATA[unterminated</a>",
      "<a><?pi unterminated</a>",
      "<a>text",
      "<a/><a/>",                   // two roots
      "<a></a>trailing<garbage/>",  // trailing content
      "<1tag></1tag>",              // name can't start with a digit
      "<a b=\"v\" b2='w\"></a>",    // quote mismatch
      "<?xml version=\"1.0\"?>",    // prolog only, no root
      "<!DOCTYPE unterminated [",
  };
  for (const std::string& g : garbage) {
    auto d = ParseXml(g);
    EXPECT_FALSE(d.ok()) << "input: " << g;
    if (!d.ok()) {
      EXPECT_EQ(d.status().code(), StatusCode::kParseError) << "input: " << g;
    }
  }
}

TEST(XmlParserRobustness, BinaryBytesNeverCrash) {
  // Deterministic xorshift stream of raw bytes, wrapped and unwrapped.
  uint64_t s = 0x9e3779b97f4a7c15ull;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<char>(s & 0xff);
  };
  for (int round = 0; round < 64; ++round) {
    std::string noise;
    for (int i = 0; i < 200; ++i) noise += next();
    (void)ParseXml(noise);
    (void)ParseXml("<a>" + noise + "</a>");
    (void)ParseXml("<a b=\"" + noise + "\"/>");
  }
}

TEST(XmlParserRobustness, EntityEdgeCasesDegradeGracefully) {
  // Unknown entities kept literally, oversized/unterminated references
  // treated as text, out-of-range numeric references degraded — never UB.
  auto d = ParseXml(
      "<a>&unknown; &amp &#xFFFFFFFFFF; &#-5; &#x110000; &; "
      "&waytoolongentityname;</a>");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
}

TEST(XmlParserRobustness, NestingBelowTheLimitParses) {
  size_t depth = kMaxXmlParseDepth - 1;
  std::string doc;
  for (size_t i = 0; i < depth; ++i) doc += "<d>";
  doc += "x";
  for (size_t i = 0; i < depth; ++i) doc += "</d>";
  auto d = ParseXml(doc);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
}

TEST(XmlParserRobustness, NestingPastTheLimitIsAParseErrorNotAStackOverflow) {
  // Well past the limit: without the explicit cap this would recurse ~100k
  // frames deep. The cap must convert it into a ParseError.
  size_t depth = 100'000;
  std::string doc;
  for (size_t i = 0; i < depth; ++i) doc += "<d>";
  // No closing tags needed: the parser must refuse before consuming them.
  auto d = ParseXml(doc);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kParseError);
  EXPECT_NE(d.status().message().find("depth"), std::string::npos)
      << d.status().ToString();
}

TEST(XmlParserRobustness, UnbalancedCloseTagsAtDepthReturnCleanly) {
  std::string doc;
  for (size_t i = 0; i < 64; ++i) doc += "<d>";
  doc += "</mismatch>";
  auto d = ParseXml(doc);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace uload
