#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/ids.h"
#include "xml/parser.h"

namespace uload {
namespace {

constexpr const char* kLibrary = R"(
<library>
  <book year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Suciu</author>
  </book>
  <book>
    <title>The Syntactic Web</title>
    <author>Tom Lerners-Bee</author>
  </book>
  <phdthesis year="2004">
    <title>The Web: next generation</title>
    <author>Jim Smith</author>
  </phdthesis>
</library>
)";

TEST(Parser, ParsesSampleDocument) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Node& root = doc->node(doc->root());
  EXPECT_EQ(root.label, "library");
  EXPECT_EQ(doc->Children(doc->root()).size(), 3u);
}

TEST(Parser, AttributesAndTexts) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok());
  NodeIndex book1 = doc->Children(doc->root())[0];
  std::vector<NodeIndex> kids = doc->Children(book1);
  // year attribute, title, author, author.
  ASSERT_EQ(kids.size(), 4u);
  EXPECT_TRUE(doc->node(kids[0]).is_attribute());
  EXPECT_EQ(doc->node(kids[0]).label, "year");
  EXPECT_EQ(doc->node(kids[0]).value, "1999");
  EXPECT_EQ(doc->Value(kids[1]), "Data on the Web");
}

TEST(Parser, EntityDecoding) {
  auto doc = Document::Parse("<a t=\"x&amp;y\">1 &lt; 2 &#65;</a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Value(doc->root()), "1 < 2 A");
  NodeIndex attr = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->node(attr).value, "x&y");
}

TEST(Parser, CdataAndComments) {
  auto doc = Document::Parse(
      "<a><!-- note --><![CDATA[<raw> & stuff]]></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Value(doc->root()), "<raw> & stuff");
}

TEST(Parser, SelfClosingAndNesting) {
  auto doc = Document::Parse("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->element_count(), 4);
}

TEST(Parser, RejectsMismatchedTags) {
  auto doc = Document::Parse("<a><b></a></b>");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(Parser, RejectsTrailingContent) {
  auto doc = Document::Parse("<a/><b/>");
  EXPECT_FALSE(doc.ok());
}

TEST(Parser, SkipsPrologAndDoctype) {
  auto doc = Document::Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a>x</a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Value(doc->root()), "x");
}

TEST(StructuralIds, PrePostDepthRelations) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok());
  NodeIndex lib = doc->root();
  NodeIndex book1 = doc->Children(lib)[0];
  NodeIndex title1 = doc->Children(book1)[1];
  const StructuralId& slib = doc->node(lib).sid;
  const StructuralId& sbook = doc->node(book1).sid;
  const StructuralId& stitle = doc->node(title1).sid;
  EXPECT_TRUE(IsParent(slib, sbook));
  EXPECT_TRUE(IsAncestor(slib, stitle));
  EXPECT_FALSE(IsParent(slib, stitle));
  EXPECT_TRUE(IsAncestor(sbook, stitle));
  // Second book follows first book's title.
  NodeIndex book2 = doc->Children(lib)[1];
  EXPECT_TRUE(Precedes(stitle, doc->node(book2).sid));
  EXPECT_FALSE(IsAncestor(sbook, doc->node(book2).sid));
}

TEST(StructuralIds, DepthLabels) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(doc->root()).sid.depth, 1u);
  NodeIndex book1 = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->node(book1).sid.depth, 2u);
}

TEST(DeweyIds, PrefixRelations) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok());
  NodeIndex book1 = doc->Children(doc->root())[0];
  NodeIndex title1 = doc->Children(book1)[1];
  DeweyId dlib = doc->Dewey(doc->root());
  DeweyId dbook = doc->Dewey(book1);
  DeweyId dtitle = doc->Dewey(title1);
  EXPECT_EQ(dlib, (DeweyId{1}));
  EXPECT_EQ(dbook, (DeweyId{1, 1}));
  EXPECT_EQ(dtitle, (DeweyId{1, 1, 2}));
  EXPECT_TRUE(DeweyIsAncestor(dlib, dtitle));
  EXPECT_TRUE(DeweyIsParent(dbook, dtitle));
  EXPECT_EQ(DeweyParent(dtitle), dbook);
  EXPECT_EQ(DeweyAncestorAtDepth(dtitle, 1), dlib);
  EXPECT_LT(DeweyCompare(dbook, dtitle), 0);
}

TEST(Document, ContentSerialization) {
  auto doc = Document::Parse("<a x=\"1\"><b>hi</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Content(doc->root()), "<a x=\"1\"><b>hi</b></a>");
  // Attribute content matches Fig. 2.6: name="value".
  NodeIndex attr = doc->Children(doc->root())[0];
  EXPECT_EQ(doc->Content(attr), "x=\"1\"");
}

TEST(Document, ValueConcatenatesTextDescendants) {
  auto doc = Document::Parse("<a>x<b>y</b>z</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Value(doc->root()), "xyz");
}

TEST(Document, NodeByPre) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok());
  for (NodeIndex i = 1; i < doc->size(); ++i) {
    EXPECT_EQ(doc->NodeByPre(doc->node(i).sid.pre), i);
  }
  EXPECT_EQ(doc->NodeByPre(0), kNoNode);
  EXPECT_EQ(doc->NodeByPre(100000), kNoNode);
}

TEST(Document, PostOrderIsConsistent) {
  auto doc = Document::Parse(kLibrary);
  ASSERT_TRUE(doc.ok());
  // For every parent-child pair: pre(parent) < pre(child), post(child) <
  // post(parent).
  for (NodeIndex i = 1; i < doc->size(); ++i) {
    NodeIndex p = doc->node(i).parent;
    if (p == 0) continue;
    EXPECT_LT(doc->node(p).sid.pre, doc->node(i).sid.pre);
    EXPECT_LT(doc->node(i).sid.post, doc->node(p).sid.post);
  }
}

}  // namespace
}  // namespace uload
